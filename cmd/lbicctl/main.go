// Command lbicctl is the operator's console for lbicd. It submits or
// attaches to sweep jobs and watches them live, exports a job's span trace,
// and checks server health:
//
//	lbicctl top -bench compress,li -ports bank-4,lbic-4x2 -insts 500000
//	lbicctl top -job sweep-3                 # attach to a running job
//	lbicctl trace -job sweep-3 -o sweep3.trace.json   # chrome://tracing
//	lbicctl trace -job sweep-3 -format jsonl -o sweep3.jsonl
//	lbicctl health
//
// top renders a live two-line status (cells done, failures, cache-hit rate,
// and p50/p95/p99 server-side cell latency) when stdout is a terminal, and
// one line per finished cell otherwise — so it is pipe- and CI-safe.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"sort"
	"strings"
	"syscall"
	"time"

	"lbic"
	"lbic/client"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "top":
		err = cmdTop(os.Args[2:])
	case "trace":
		err = cmdTrace(os.Args[2:])
	case "health":
		err = cmdHealth(os.Args[2:])
	case "cluster":
		err = cmdCluster(os.Args[2:])
	case "-h", "-help", "--help", "help":
		usage()
		return
	default:
		fmt.Fprintf(os.Stderr, "lbicctl: unknown command %q\n\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "lbicctl:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprint(os.Stderr, `usage: lbicctl <command> [flags]

commands:
  top     submit a sweep (or attach with -job) and watch it live
  trace   export a job's span trace (chrome://tracing or JSONL)
  health  print the server's health and build identity
  cluster print a coordinator's worker membership and dispatch counters

run "lbicctl <command> -h" for the command's flags
`)
}

// signalContext returns a context canceled on SIGINT/SIGTERM.
func signalContext() (context.Context, context.CancelFunc) {
	return signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
}

func cmdTop(args []string) error {
	fs := flag.NewFlagSet("top", flag.ExitOnError)
	var (
		server = fs.String("server", "http://localhost:8329", "lbicd base URL")
		jobID  = fs.String("job", "", "attach to this existing job instead of submitting a sweep")
		bench  = fs.String("bench", "", "comma-separated benchmarks to sweep (empty = all)")
		ports  = fs.String("ports", "bank-4,lbic-4x2", "comma-separated port organizations")
		insts  = fs.Uint64("insts", 1_000_000, "per-cell instruction budget")
	)
	fs.Parse(args)
	ctx, stop := signalContext()
	defer stop()
	c := client.New(*server)

	id := *jobID
	if id == "" {
		req := client.SweepRequest{Insts: *insts}
		if *bench != "" {
			req.Benchmarks = splitList(*bench)
		}
		for _, p := range splitList(*ports) {
			req.Ports = append(req.Ports, client.Port(p))
		}
		st, err := c.Sweep(ctx, req)
		if err != nil {
			return err
		}
		id = st.ID
		fmt.Printf("submitted job %s (%d cells)\n", id, st.Total)
	}

	st, err := c.Job(ctx, id)
	if err != nil {
		return err
	}
	mon := newMonitor(os.Stdout, id, st.Total)
	if err := c.StreamSSE(ctx, id, mon.observe); err != nil {
		return err
	}
	mon.finish()
	if mon.failed > 0 {
		return fmt.Errorf("job %s finished with %d failed cells", id, mon.failed)
	}
	return nil
}

func cmdTrace(args []string) error {
	fs := flag.NewFlagSet("trace", flag.ExitOnError)
	var (
		server = fs.String("server", "http://localhost:8329", "lbicd base URL")
		jobID  = fs.String("job", "", "job whose trace to export (required)")
		out    = fs.String("o", "", "output file (default <job>.trace.json, - for stdout)")
		format = fs.String("format", "chrome", "output format: chrome | jsonl")
	)
	fs.Parse(args)
	if *jobID == "" {
		return fmt.Errorf("trace: -job is required")
	}
	ctx, stop := signalContext()
	defer stop()
	c := client.New(*server)
	h, spans, err := c.JobTrace(ctx, *jobID)
	if err != nil {
		return err
	}

	path := *out
	if path == "" {
		path = *jobID + ".trace.json"
		if *format == "jsonl" {
			path = *jobID + ".trace.jsonl"
		}
	}
	w := io.Writer(os.Stdout)
	if path != "-" {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	switch *format {
	case "chrome":
		err = lbic.WriteChromeTrace(w, h.Name, spans)
	case "jsonl":
		err = lbic.WriteTraceJSONL(w, h.Name, h.EpochUnixNS, spans)
	default:
		return fmt.Errorf("trace: unknown -format %q (want chrome or jsonl)", *format)
	}
	if err != nil {
		return err
	}
	if path != "-" {
		fmt.Fprintf(os.Stderr, "wrote %d spans to %s\n", len(spans), path)
	}
	return nil
}

func cmdHealth(args []string) error {
	fs := flag.NewFlagSet("health", flag.ExitOnError)
	server := fs.String("server", "http://localhost:8329", "lbicd base URL")
	fs.Parse(args)
	ctx, stop := signalContext()
	defer stop()
	h, err := client.New(*server).Health(ctx)
	if err != nil {
		return err
	}
	fmt.Printf("status:   %s\n", h.Status)
	fmt.Printf("uptime:   %s\n", time.Duration(h.UptimeSeconds*float64(time.Second)).Round(time.Second))
	fmt.Printf("go:       %s\n", h.GoVersion)
	fmt.Printf("module:   %s %s\n", h.Module, h.Version)
	if h.Revision != "" {
		fmt.Printf("revision: %s\n", h.Revision)
	}
	return nil
}

func cmdCluster(args []string) error {
	fs := flag.NewFlagSet("cluster", flag.ExitOnError)
	server := fs.String("server", "http://localhost:8329", "coordinator base URL")
	fs.Parse(args)
	ctx, stop := signalContext()
	defer stop()
	st, err := client.New(*server).Cluster(ctx)
	if err != nil {
		return err
	}
	fmt.Printf("fingerprint: %s\n", st.Fingerprint)
	fmt.Printf("dispatched:  %d (%d remote, %d retries, %d unavailable)\n",
		st.Dispatched, st.RemoteOK, st.Retries, st.Unavailable)
	fmt.Printf("hedges:      %d fired, %d won\n", st.Hedges, st.HedgeWins)
	fmt.Printf("store:       %d hits, %d misses, %d puts\n", st.StoreHits, st.StoreMisses, st.StorePuts)
	fmt.Printf("workers:     %d\n", len(st.Workers))
	for _, w := range st.Workers {
		state := "healthy"
		if !w.Healthy {
			state = fmt.Sprintf("EVICTED (%d consecutive fails)", w.ConsecutiveFails)
		}
		age := "never"
		if w.LastSeenAgeSeconds >= 0 {
			age = fmt.Sprintf("%.1fs ago", w.LastSeenAgeSeconds)
		}
		fmt.Printf("  %-30s %-12s seen %-10s cap %d queued %d  %d dispatched / %d served / %d errors\n",
			w.Addr, state, age, w.MaxParallel, w.QueuedCells, w.Dispatched, w.Served, w.Errors)
	}
	return nil
}

func splitList(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

// monitor accumulates stream events and renders progress: a live redrawn
// block on a terminal, one line per cell otherwise.
type monitor struct {
	w       io.Writer
	tty     bool
	id      string
	total   int
	done    int
	failed  int
	cached  int
	elapsed []time.Duration // server-side per-cell wall time, sorted on demand
	last    string
	drawn   int // lines currently on screen (tty mode)
}

func newMonitor(w *os.File, id string, total int) *monitor {
	tty := false
	if fi, err := w.Stat(); err == nil {
		tty = fi.Mode()&os.ModeCharDevice != 0
	}
	return &monitor{w: w, tty: tty, id: id, total: total}
}

func (m *monitor) observe(ev client.StreamEvent) error {
	switch ev.Type {
	case "cell":
		cr := ev.Cell
		m.done++
		if cr.Error != "" {
			m.failed++
		}
		if cr.Cached {
			m.cached++
		}
		if cr.ElapsedNS > 0 {
			m.elapsed = append(m.elapsed, time.Duration(cr.ElapsedNS))
		}
		state := "miss"
		if cr.Cached {
			state = "cached"
		}
		if cr.Error != "" {
			state = "FAILED: " + cr.Error
		}
		m.last = fmt.Sprintf("%s  (%s, %s)", cr.Key, state, time.Duration(cr.ElapsedNS).Round(time.Microsecond))
		m.render()
	case "done":
		if ev.Status != nil {
			m.failed = ev.Status.Failed
		}
	}
	return nil
}

func (m *monitor) quantile(q float64) time.Duration {
	if len(m.elapsed) == 0 {
		return 0
	}
	s := append([]time.Duration(nil), m.elapsed...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	idx := int(q * float64(len(s)-1))
	return s[idx]
}

func (m *monitor) statusLines() []string {
	hitRate := 0.0
	if m.done > 0 {
		hitRate = 100 * float64(m.cached) / float64(m.done)
	}
	bar := progressBar(m.done, m.total, 30)
	return []string{
		fmt.Sprintf("job %s  %s %d/%d done  %d failed  %d cached (%.1f%% hit)",
			m.id, bar, m.done, m.total, m.failed, m.cached, hitRate),
		fmt.Sprintf("cell latency  p50 %s  p95 %s  p99 %s",
			m.quantile(0.50).Round(time.Microsecond),
			m.quantile(0.95).Round(time.Microsecond),
			m.quantile(0.99).Round(time.Microsecond)),
		"last: " + m.last,
	}
}

func progressBar(done, total, width int) string {
	if total <= 0 {
		return ""
	}
	fill := done * width / total
	return "[" + strings.Repeat("#", fill) + strings.Repeat(".", width-fill) + "]"
}

func (m *monitor) render() {
	if !m.tty {
		fmt.Fprintf(m.w, "[%d/%d] %s\n", m.done, m.total, m.last)
		return
	}
	// Redraw in place: move up over the previous block, clearing each line.
	if m.drawn > 0 {
		fmt.Fprintf(m.w, "\033[%dA", m.drawn)
	}
	lines := m.statusLines()
	for _, l := range lines {
		fmt.Fprintf(m.w, "\033[2K%s\n", l)
	}
	m.drawn = len(lines)
}

// finish prints the closing summary (the live block already shows it on a
// terminal; pipes get one final line).
func (m *monitor) finish() {
	if m.tty {
		return
	}
	for _, l := range m.statusLines()[:2] {
		fmt.Fprintln(m.w, l)
	}
}
