// Command lbicasm assembles a .s file for the simulator's ISA and either
// runs it functionally or simulates it under a cache port organization:
//
//	lbicasm prog.s                          # functional run, print exit state
//	lbicasm -sim -port lbic -banks 4 -lineports 2 prog.s
//	lbicasm -insts 500000 -sim prog.s
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"lbic"
)

func main() {
	var (
		sim       = flag.Bool("sim", false, "run the timing simulation (default: functional only)")
		portKind  = flag.String("port", "ideal", "port organization: ideal | repl | banked | lbic, or any stable port name (bank-8, coded-4x2-spec, ...)")
		width     = flag.Int("width", 1, "port count (ideal, repl)")
		banks     = flag.Int("banks", 4, "bank count (banked, lbic)")
		linePorts = flag.Int("lineports", 2, "per-bank line-buffer ports (lbic)")
		insts     = flag.Uint64("insts", 1_000_000, "instruction budget")
		disasm    = flag.Bool("d", false, "print the disassembly listing and exit")
		jsonOut   = flag.String("json", "", "with -sim: write the machine-readable run report to this file (- for stdout)")
		metrics   = flag.Bool("metrics", false, "with -sim: print histogram and gauge tables")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: lbicasm [flags] prog.s")
		flag.Usage()
		os.Exit(2)
	}
	path := flag.Arg(0)
	src, err := os.ReadFile(path)
	if err != nil {
		fatal(err)
	}
	name := strings.TrimSuffix(filepath.Base(path), filepath.Ext(path))
	prog, err := lbic.Assemble(name, string(src))
	if err != nil {
		fatal(err)
	}
	fmt.Printf("assembled %q: %d instructions, %d data bytes\n",
		name, len(prog.Code), prog.DataBytes())

	if *disasm {
		if err := prog.Disassemble(os.Stdout); err != nil {
			fatal(err)
		}
		return
	}

	if !*sim {
		stats, err := lbic.Characterize(context.Background(), prog, lbic.CharacterizeOptions{Insts: *insts})
		if err != nil {
			fatal(err)
		}
		fmt.Printf("functional run: %d instructions (%d loads, %d stores)\n",
			stats.Insts, stats.Loads, stats.Stores)
		fmt.Printf("mem%%=%.1f  store/load=%.2f  32KB-DM miss=%.4f\n",
			stats.MemPct, stats.StoreToLoad, stats.MissRate)
		return
	}

	var port lbic.PortConfig
	switch strings.ToLower(*portKind) {
	case "ideal", "true":
		port = lbic.IdealPort(*width)
	case "repl", "replicated":
		port = lbic.ReplicatedPort(*width)
	case "bank", "banked":
		port = lbic.BankedPort(*banks)
	case "lbic":
		port = lbic.LBICPort(*banks, *linePorts)
	default:
		// Any registered organization parses from its stable name.
		p, err := lbic.ParsePortName(*portKind)
		if err != nil {
			fatal(fmt.Errorf("unknown port organization %q: %v", *portKind, err))
		}
		port = p
	}
	cfg := lbic.DefaultConfig()
	cfg.Port = port
	cfg.MaxInsts = *insts
	res, err := lbic.Simulate(prog, cfg)
	if err != nil {
		fatal(err)
	}
	if *jsonOut != "" {
		f := os.Stdout
		if *jsonOut != "-" {
			f, err = os.Create(*jsonOut)
			if err != nil {
				fatal(err)
			}
			defer f.Close()
		}
		if err := lbic.NewReport(res).WriteJSON(f); err != nil {
			fatal(err)
		}
		if *jsonOut == "-" {
			return
		}
		fmt.Printf("report written to %s\n", *jsonOut)
	}
	fmt.Printf("simulated on %s: IPC %.3f (%d instructions, %d cycles)\n",
		port.Name(), res.IPC, res.Insts, res.Cycles)
	if *metrics {
		fmt.Println()
		if err := res.Metrics.WriteText(os.Stdout); err != nil {
			fatal(err)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "lbicasm:", err)
	os.Exit(1)
}
