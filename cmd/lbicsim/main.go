// Command lbicsim runs one benchmark under one cache port organization and
// prints the measured statistics:
//
//	lbicsim -bench compress -port ideal -width 4
//	lbicsim -bench swim -port banked -banks 8
//	lbicsim -bench mgrid -port lbic -banks 4 -lineports 2 -insts 2000000
//	lbicsim -list
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"lbic"
)

func main() {
	var (
		bench     = flag.String("bench", "compress", "benchmark kernel to run")
		pattern   = flag.String("pattern", "", "run an access-pattern microbenchmark instead of -bench")
		portKind  = flag.String("port", "ideal", "port organization: ideal | repl | banked | lbic")
		width     = flag.Int("width", 1, "port count (ideal, repl)")
		banks     = flag.Int("banks", 4, "bank count (banked, lbic)")
		linePorts = flag.Int("lineports", 2, "per-bank line-buffer ports (lbic)")
		insts     = flag.Uint64("insts", 1_000_000, "instructions to simulate")
		list      = flag.Bool("list", false, "list benchmarks and exit")
		verbose   = flag.Bool("v", false, "print detailed CPU and memory statistics")
	)
	flag.Parse()

	if *list {
		for _, in := range lbic.Benchmarks() {
			fmt.Printf("%-9s (%s)  %s\n", in.Name, in.Suite, in.Description)
		}
		fmt.Println("\naccess-pattern microbenchmarks (-pattern):")
		for _, p := range lbic.Patterns() {
			fmt.Printf("%-16s %s\n", p.Name, p.Description)
		}
		return
	}

	var port lbic.PortConfig
	switch strings.ToLower(*portKind) {
	case "ideal", "true":
		port = lbic.IdealPort(*width)
	case "repl", "replicated":
		port = lbic.ReplicatedPort(*width)
	case "bank", "banked":
		port = lbic.BankedPort(*banks)
	case "lbic":
		port = lbic.LBICPort(*banks, *linePorts)
	default:
		fatal(fmt.Errorf("unknown port organization %q", *portKind))
	}

	var prog *lbic.Program
	var err error
	if *pattern != "" {
		prog, err = lbic.BuildPattern(*pattern)
	} else {
		prog, err = lbic.BuildBenchmark(*bench)
	}
	if err != nil {
		fatal(err)
	}
	cfg := lbic.DefaultConfig()
	cfg.Port = port
	cfg.MaxInsts = *insts
	res, err := lbic.Simulate(prog, cfg)
	if err != nil {
		fatal(err)
	}

	fmt.Printf("benchmark:   %s\n", res.Benchmark)
	fmt.Printf("ports:       %s (peak %d accesses/cycle)\n", port.Name(), peak(port))
	fmt.Printf("insts:       %d\n", res.Insts)
	fmt.Printf("cycles:      %d\n", res.Cycles)
	fmt.Printf("IPC:         %.3f\n", res.IPC)
	fmt.Printf("loads:       %d (%d forwarded in the LSQ)\n", res.CPU.Loads, res.CPU.Forwards)
	fmt.Printf("stores:      %d\n", res.CPU.Stores)
	fmt.Printf("L1 miss:     %.4f (%d accesses)\n", res.Mem.MissRate(), res.Mem.Accesses)
	if res.BankConflicts > 0 {
		fmt.Printf("bank conflicts: %d\n", res.BankConflicts)
	}
	if res.LBIC != nil {
		fmt.Printf("lbic: leading=%d combined=%d line-conflicts=%d drains=%d\n",
			res.LBIC.Leading, res.LBIC.Combined, res.LBIC.LineConflicts, res.LBIC.StoreDrains)
	}
	if *verbose {
		fmt.Printf("\ncpu: %+v\n", res.CPU)
		fmt.Printf("mem: %+v\n", res.Mem)
	}
}

func peak(p lbic.PortConfig) int {
	switch p.Kind {
	case lbic.Ideal, lbic.Replicated:
		return p.Width
	case lbic.Banked:
		return p.Banks
	case lbic.LBIC:
		return p.Banks * p.LinePorts
	}
	return 0
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "lbicsim:", err)
	os.Exit(1)
}
