// Command lbicsim runs one benchmark under one cache port organization and
// prints the measured statistics:
//
//	lbicsim -bench compress -port ideal -width 4
//	lbicsim -bench swim -port banked -banks 8
//	lbicsim -bench mgrid -port lbic -banks 4 -lineports 2 -insts 2000000
//	lbicsim -bench compress -port lbic -banks 4 -lineports 2 -json run.json
//	lbicsim -bench compress -port banked -banks 4 -metrics
//	lbicsim -bench compress -port lbic-4x2-greedy
//	lbicsim -bench compress -config run.json
//	lbicsim -bench compress -port lbic-4x2 -trace-out trace.json   # chrome://tracing
//	lbicsim -gen zipf -port banked -banks 4                        # synthetic stream
//	lbicsim -gen '{"kind":"zipf","skew_pct":99}' -port lbic-4x2
//	lbicsim -bench compress -insts 100000 -trace-dump compress.lbictrace
//	lbicsim -trace-in compress.lbictrace -port lbic-4x2 -json -
//	lbicsim -list
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	"lbic"
)

func main() {
	var (
		bench      = flag.String("bench", "compress", "benchmark kernel to run")
		pattern    = flag.String("pattern", "", "run an access-pattern microbenchmark instead of -bench")
		genSpec    = flag.String("gen", "", "run a synthetic generator stream instead of -bench: a catalog kind (see -list) or an inline GenParams JSON object")
		traceIn    = flag.String("trace-in", "", "replay a serialized lbic-trace-stream/v1 file instead of -bench (- for stdin); without an explicit -insts the whole trace runs")
		traceDump  = flag.String("trace-dump", "", "record the selected workload for -insts instructions, write it as lbic-trace-stream/v1 to this file (- for stdout), and exit without simulating")
		configPath = flag.String("config", "", "load the full simulation Config from this JSON file (flags set explicitly still override)")
		portKind   = flag.String("port", "ideal", "port organization: ideal | repl | banked | banksq | mpb | lbic | coded, or a full name like lbic-4x2 or coded-4x1-spec")
		width      = flag.Int("width", 1, "port count (ideal, repl, mpb ports per bank)")
		banks      = flag.Int("banks", 4, "bank count (banked, banksq, mpb, lbic, coded)")
		linePorts  = flag.Int("lineports", 2, "per-bank line-buffer ports (lbic)")
		parity     = flag.Int("parity", 1, "XOR parity bank count (coded)")
		insts      = flag.Uint64("insts", 1_000_000, "instructions to simulate")
		timeout    = flag.Duration("timeout", 0, "abort the run after this wall-clock time (0 = none)")
		list       = flag.Bool("list", false, "list benchmarks and exit")
		verbose    = flag.Bool("v", false, "print detailed CPU and memory statistics")
		verify     = flag.Bool("verify", false, "attach the correctness oracle: check every grant, value, and queue against sequential semantics")
		showMetric = flag.Bool("metrics", false, "print histogram and gauge tables (CPI stack, per-bank conflicts, ...)")
		jsonOut    = flag.String("json", "", "write the machine-readable run report to this file (- for stdout)")
		eventsOut  = flag.String("events", "", "write the structured JSONL event trace to this file (- for stdout)")
		traceOut   = flag.String("trace-out", "", "write a Chrome trace-event file of the run's spans to this file (load in chrome://tracing)")
		cpuProfile = flag.String("cpuprofile", "", "write a pprof CPU profile of the run to this file")
		memProfile = flag.String("memprofile", "", "write a pprof heap profile after the run to this file")
	)
	flag.Parse()

	if *list {
		for _, in := range lbic.Benchmarks() {
			fmt.Printf("%-9s (%s)  %s\n", in.Name, in.Suite, in.Description)
		}
		fmt.Println("\naccess-pattern microbenchmarks (-pattern):")
		for _, p := range lbic.Patterns() {
			fmt.Printf("%-16s %s\n", p.Name, p.Description)
		}
		fmt.Println("\nsynthetic stream generators (-gen):")
		for _, g := range lbic.Generators() {
			fmt.Printf("%-16s %s\n", g.Kind, g.Description)
		}
		return
	}

	// Flags given explicitly on the command line override a -config file.
	set := map[string]bool{}
	flag.Visit(func(f *flag.Flag) { set[f.Name] = true })

	cfg := lbic.DefaultConfig()
	if *configPath != "" {
		raw, err := os.ReadFile(*configPath)
		if err != nil {
			fatal(err)
		}
		if err := json.Unmarshal(raw, &cfg); err != nil {
			fatal(fmt.Errorf("parsing %s: %w", *configPath, err))
		}
	}
	if *configPath == "" || set["port"] || set["width"] || set["banks"] || set["lineports"] {
		cfg.Port = parsePort(*portKind, *width, *banks, *linePorts, *parity)
	}
	if *configPath == "" || set["insts"] {
		cfg.MaxInsts = *insts
	}
	if *configPath == "" || set["verify"] {
		cfg.Verify = *verify
	}
	if *traceIn != "" && !set["insts"] && *configPath == "" {
		// Replaying a serialized trace: the natural budget is the whole trace.
		cfg.MaxInsts = 0
	}
	if err := cfg.Validate(); err != nil {
		fatal(err)
	}
	port := cfg.Port

	exclusive := 0
	for _, s := range []string{*pattern, *genSpec, *traceIn} {
		if s != "" {
			exclusive++
		}
	}
	if exclusive > 1 {
		fatal(fmt.Errorf("-pattern, -gen and -trace-in are mutually exclusive"))
	}
	if *traceDump != "" && *traceIn != "" {
		fatal(fmt.Errorf("-trace-dump cannot be combined with -trace-in"))
	}

	var (
		prog     *lbic.Program
		genParam lbic.GenParams
		replay   *lbic.RecordedTrace
		name     string
		err      error
	)
	switch {
	case *traceIn != "":
		var f *os.File
		if *traceIn == "-" {
			f = os.Stdin
		} else if f, err = os.Open(*traceIn); err != nil {
			fatal(err)
		}
		replay, err = lbic.ReadTraceStream(f)
		if *traceIn != "-" {
			f.Close()
		}
		if err != nil {
			fatal(fmt.Errorf("reading %s: %w", *traceIn, err))
		}
		name = replay.Name()
	case *genSpec != "":
		if genParam, err = parseGen(*genSpec); err != nil {
			fatal(err)
		}
		name = genParam.Key()
	case *pattern != "":
		if prog, err = lbic.BuildPattern(*pattern); err != nil {
			fatal(err)
		}
		name = prog.Name
	default:
		if prog, err = lbic.BuildBenchmark(*bench); err != nil {
			fatal(err)
		}
		name = prog.Name
	}

	if *traceDump != "" {
		dumpTrace(*traceDump, prog, genParam, *genSpec != "", cfg.MaxInsts)
		return
	}

	var eventSink *lbic.JSONLEventSink
	if *eventsOut != "" {
		f, closeFn, err := create(*eventsOut)
		if err != nil {
			fatal(err)
		}
		defer closeFn()
		eventSink = lbic.NewJSONLEventSink(f)
		cfg.Events = eventSink
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer pprof.StopCPUProfile()
	}

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	var spanTrace *lbic.RequestTrace
	if *traceOut != "" {
		spanTrace = lbic.NewRequestTrace()
		ctx = lbic.WithTrace(ctx, spanTrace)
	}
	var res lbic.Result
	switch {
	case replay != nil:
		res, err = lbic.SimulateTrace(ctx, replay, cfg)
	case *genSpec != "":
		res, err = lbic.SimulateGenerator(ctx, genParam, cfg)
	default:
		res, err = lbic.SimulateContext(ctx, prog, cfg)
	}
	if spanTrace != nil {
		f, closeFn, ferr := create(*traceOut)
		if ferr != nil {
			fatal(ferr)
		}
		if werr := lbic.WriteChromeTrace(f, name, spanTrace.Snapshot()); werr != nil {
			fatal(werr)
		}
		closeFn()
	}
	if err != nil {
		fatal(err)
	}
	if eventSink != nil {
		if err := eventSink.Err(); err != nil {
			fatal(fmt.Errorf("writing event trace: %w", err))
		}
	}

	if *memProfile != "" {
		f, err := os.Create(*memProfile)
		if err != nil {
			fatal(err)
		}
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fatal(err)
		}
		f.Close()
	}

	if *jsonOut != "" {
		f, closeFn, err := create(*jsonOut)
		if err != nil {
			fatal(err)
		}
		if err := lbic.NewReport(res).WriteJSON(f); err != nil {
			fatal(err)
		}
		closeFn()
		if *jsonOut == "-" {
			return
		}
	}
	// Events streamed to stdout: keep the stream pure JSONL.
	if *eventsOut == "-" {
		return
	}

	fmt.Printf("benchmark:   %s\n", res.Benchmark)
	fmt.Printf("ports:       %s (peak %d accesses/cycle)\n", port.Name(), port.PeakWidth())
	fmt.Printf("insts:       %d\n", res.Insts)
	fmt.Printf("cycles:      %d\n", res.Cycles)
	fmt.Printf("IPC:         %.3f\n", res.IPC)
	fmt.Printf("loads:       %d (%d forwarded in the LSQ)\n", res.CPU.Loads, res.CPU.Forwards)
	fmt.Printf("stores:      %d\n", res.CPU.Stores)
	fmt.Printf("L1 miss:     %.4f (%d accesses)\n", res.Mem.MissRate(), res.Mem.Accesses)
	if res.BankConflicts > 0 {
		fmt.Printf("bank conflicts: %d\n", res.BankConflicts)
	}
	if res.LBIC != nil {
		fmt.Printf("lbic: leading=%d combined=%d line-conflicts=%d drains=%d\n",
			res.LBIC.Leading, res.LBIC.Combined, res.LBIC.LineConflicts, res.LBIC.StoreDrains)
	}
	if res.Verify != nil {
		fmt.Printf("verify:      ok (%d grants, %d load values, %d forwards, %d stores checked over %d cycles)\n",
			res.Verify.Grants, res.Verify.Loads, res.Verify.Forwards, res.Verify.Stores, res.Verify.Cycles)
	}
	if *verbose {
		fmt.Println()
		render(lbic.CPIStackTable(res))
		render(lbic.CPUStatsTable(res.CPU))
		render(lbic.MemStatsTable(res.Mem))
	}
	if *showMetric {
		fmt.Println()
		if err := res.Metrics.WriteText(os.Stdout); err != nil {
			fatal(err)
		}
	}
}

// parsePort resolves -port: a kind keyword combined with -width/-banks/
// -lineports/-parity, or a full compact name like "lbic-4x2-greedy" or
// "coded-4x1-spec" (the ParsePortName grammar).
func parsePort(kind string, width, banks, linePorts, parity int) lbic.PortConfig {
	switch strings.ToLower(kind) {
	case "ideal", "true":
		return lbic.IdealPort(width)
	case "repl", "replicated":
		return lbic.ReplicatedPort(width)
	case "bank", "banked":
		return lbic.BankedPort(banks)
	case "banksq":
		return lbic.BankedSQPort(banks)
	case "mpb":
		return lbic.MultiPortedBanksPort(banks, width)
	case "lbic":
		return lbic.LBICPort(banks, linePorts)
	case "coded":
		return lbic.CodedPort(banks, parity)
	}
	port, err := lbic.ParsePortName(kind)
	if err != nil {
		fatal(fmt.Errorf("unknown port organization %q", kind))
	}
	return port
}

// parseGen resolves -gen: a catalog kind name, or an inline GenParams JSON
// object for tuned parameters.
func parseGen(spec string) (lbic.GenParams, error) {
	var p lbic.GenParams
	if strings.HasPrefix(strings.TrimSpace(spec), "{") {
		if err := json.Unmarshal([]byte(spec), &p); err != nil {
			return p, fmt.Errorf("parsing -gen: %w", err)
		}
	} else {
		p.Kind = spec
	}
	return p.Resolve()
}

// dumpTrace records the selected workload for insts instructions and writes
// it as an lbic-trace-stream/v1 file.
func dumpTrace(path string, prog *lbic.Program, gp lbic.GenParams, isGen bool, insts uint64) {
	if insts == 0 {
		fatal(fmt.Errorf("-trace-dump needs a positive -insts budget"))
	}
	var rt *lbic.RecordedTrace
	var err error
	if isGen {
		rt, err = lbic.RecordGeneratorTrace(gp, insts)
	} else {
		rt, err = lbic.RecordBenchmarkTrace(prog, insts)
	}
	if err != nil {
		fatal(err)
	}
	f, closeFn, err := create(path)
	if err != nil {
		fatal(err)
	}
	if err := lbic.WriteTraceStream(f, rt); err != nil {
		fatal(err)
	}
	closeFn()
	if path != "-" {
		fmt.Printf("wrote %s: %q, %d insts, %d trace bytes\n", path, rt.Name(), rt.Len(), rt.SizeBytes())
	}
}

func render(t *lbic.Table) {
	if err := t.Render(os.Stdout); err != nil {
		fatal(err)
	}
	fmt.Println()
}

// create opens path for writing; "-" selects stdout (with a no-op close).
func create(path string) (*os.File, func(), error) {
	if path == "-" {
		return os.Stdout, func() {}, nil
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, nil, err
	}
	return f, func() { f.Close() }, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "lbicsim:", err)
	os.Exit(1)
}
