// Command lbicadv searches for adversarial workloads: generator parameter
// settings that maximize same-bank conflict rate (or minimize IPC) on a
// chosen port organization. The search is deterministic for a given flag
// set, so a discovered workload can be re-derived from its meta record.
//
//	lbicadv -port bank-4 -insts 60000                 # search, print ranking
//	lbicadv -port bank-4 -insts 60000 -top 10
//	lbicadv -port lbic-4x2 -objective ipc             # minimize IPC instead
//	lbicadv -search-ports -insts 60000                # roam the whole port axis
//	lbicadv -port bank-4 -out testdata/adversarial -name conflict-storm-bank-4
//
// With -out, the best candidate is minted as a regression artifact triple:
// <name>.lbictrace (the serialized lbic-trace-stream/v1 recording),
// <name>.report.json (the byte-exact lbic-run-report/v1 of replaying it on
// the target port), and <name>.meta.json (the parameters, score, and search
// coordinates that produced it).
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"

	"lbic"
	"lbic/internal/advsearch"
)

func main() {
	var (
		portName  = flag.String("port", "bank-4", "port organization under attack (PortConfig.Key grammar)")
		insts     = flag.Uint64("insts", 60_000, "per-candidate instruction budget")
		kinds     = flag.String("kinds", "", "comma-separated generator kinds to search (default: whole catalog)")
		rounds    = flag.Int("rounds", 4, "mutation rounds after the seed evaluation")
		seed      = flag.Uint64("seed", 1, "search randomness seed")
		parallel  = flag.Int("parallel", runtime.NumCPU(), "concurrently simulated candidates")
		objective = flag.String("objective", "rate", "what to optimize: rate (maximize bank-conflict rate) or ipc (minimize IPC)")
		top       = flag.Int("top", 5, "ranking rows to print")
		outDir    = flag.String("out", "", "mint the best candidate into this directory (.lbictrace/.report.json/.meta.json)")
		name      = flag.String("name", "", "artifact base name for -out (default adv-<port>)")
		quiet     = flag.Bool("q", false, "suppress per-round progress")
		roamPorts = flag.Bool("search-ports", false, "also mutate the port-organization axis (every registered kind); -port then only anchors the mutant broods")
	)
	flag.Parse()

	port, err := lbic.ParsePortName(*portName)
	if err != nil {
		fatal(err)
	}
	switch *objective {
	case "rate", "ipc":
	default:
		fatal(fmt.Errorf("unknown -objective %q (want rate or ipc)", *objective))
	}
	opt := advsearch.Options{
		Port:        port,
		Insts:       *insts,
		Rounds:      *rounds,
		Seed:        *seed,
		Parallel:    *parallel,
		MinimizeIPC: *objective == "ipc",
		SearchPorts: *roamPorts,
	}
	if *kinds != "" {
		opt.Kinds = strings.Split(*kinds, ",")
	}
	if !*quiet {
		opt.Log = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
	}

	ranking, err := advsearch.Search(context.Background(), opt)
	if err != nil {
		fatal(err)
	}
	if len(ranking) == 0 {
		fatal(fmt.Errorf("no candidate survived evaluation"))
	}

	n := *top
	if n > len(ranking) {
		n = len(ranking)
	}
	if *roamPorts {
		fmt.Printf("%-4s %-12s %-10s %-8s %-14s %s\n", "rank", "conflicts", "rate", "ipc", "port", "params")
	} else {
		fmt.Printf("%-4s %-12s %-10s %-8s %s\n", "rank", "conflicts", "rate", "ipc", "params")
	}
	for i := 0; i < n; i++ {
		c := ranking[i]
		if *roamPorts {
			pk := port.Key()
			if c.Port != nil {
				pk = c.Port.Key()
			}
			fmt.Printf("%-4d %-12d %-10.4f %-8.3f %-14s %s\n", i+1, c.Score.Conflicts, c.Score.ConflictRate, c.Score.IPC, pk, c.Params.Key())
		} else {
			fmt.Printf("%-4d %-12d %-10.4f %-8.3f %s\n", i+1, c.Score.Conflicts, c.Score.ConflictRate, c.Score.IPC, c.Params.Key())
		}
	}

	if *outDir != "" {
		base := *name
		if base == "" {
			base = "adv-" + port.Key()
		}
		coords := advsearch.SearchCoords{Seed: *seed, Rounds: *rounds, Objective: *objective, Kinds: *kinds}
		m, err := advsearch.Mint(*outDir, base, port, *insts, ranking[0], coords)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("minted %s: %q, conflict rate %.4f on %s\n",
			filepath.Join(*outDir, base+".lbictrace"), m.Params.Key(), m.Score.ConflictRate, m.Port)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "lbicadv:", err)
	os.Exit(1)
}
