// Command lbictrace prints a per-cycle pipeline occupancy timeline for a
// benchmark under a port organization — the tool for seeing *why* a
// configuration stalls:
//
//	lbictrace -bench swim -port banked -banks 4 -skip 2000 -cycles 40
//	lbictrace -bench swim -port lbic -banks 4 -lineports 2 -skip 2000 -cycles 40
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"lbic"
)

func main() {
	var (
		bench     = flag.String("bench", "compress", "benchmark kernel")
		portKind  = flag.String("port", "ideal", "ideal | repl | banked | lbic, or any stable port name (bank-8, coded-4x2-spec, ...)")
		width     = flag.Int("width", 1, "port count (ideal, repl)")
		banks     = flag.Int("banks", 4, "bank count (banked, lbic)")
		linePorts = flag.Int("lineports", 2, "line-buffer ports (lbic)")
		insts     = flag.Uint64("insts", 50_000, "instruction budget")
		skip      = flag.Uint64("skip", 1000, "cycles to fast-forward before printing")
		cycles    = flag.Uint64("cycles", 50, "cycles to print (0 = all)")
		every     = flag.Uint64("every", 1, "print one line per N cycles")
		eventsOut = flag.String("events", "", "write the structured JSONL event trace to this file")
	)
	flag.Parse()

	var port lbic.PortConfig
	switch strings.ToLower(*portKind) {
	case "ideal", "true":
		port = lbic.IdealPort(*width)
	case "repl", "replicated":
		port = lbic.ReplicatedPort(*width)
	case "bank", "banked":
		port = lbic.BankedPort(*banks)
	case "lbic":
		port = lbic.LBICPort(*banks, *linePorts)
	default:
		// Any registered organization parses from its stable name.
		p, err := lbic.ParsePortName(*portKind)
		if err != nil {
			fatal(fmt.Errorf("unknown port organization %q: %v", *portKind, err))
		}
		port = p
	}

	prog, err := lbic.BuildBenchmark(*bench)
	if err != nil {
		fatal(err)
	}
	cfg := lbic.DefaultConfig()
	cfg.Port = port
	cfg.MaxInsts = *insts

	var eventSink *lbic.JSONLEventSink
	if *eventsOut != "" {
		f, err := os.Create(*eventsOut)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		eventSink = lbic.NewJSONLEventSink(f)
		cfg.Events = eventSink
	}

	fmt.Printf("%s on %s\n\n", *bench, port.Name())
	if _, err := lbic.TraceSimulation(prog, cfg, os.Stdout, lbic.TraceOptions{
		SkipCycles: *skip,
		MaxCycles:  *cycles,
		Every:      *every,
	}); err != nil {
		fatal(err)
	}
	if eventSink != nil {
		if err := eventSink.Err(); err != nil {
			fatal(fmt.Errorf("writing event trace: %w", err))
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "lbictrace:", err)
	os.Exit(1)
}
