// Command lbicd serves simulations over HTTP: single runs (/v1/simulate),
// whole sweeps as streamable jobs (/v1/sweep, /v1/jobs/{id}), health and
// metrics endpoints — with one process-wide trace cache and result cache so
// repeated requests replay instead of re-simulating.
//
//	lbicd -addr :8329
//	curl -s localhost:8329/healthz
//	curl -s localhost:8329/metrics          # Prometheus text exposition
//	curl -s -d '{"schema":"lbic-sim-request/v1","benchmark":"compress","port":"lbic-4x2","insts":100000}' \
//	     localhost:8329/v1/simulate
//
// Logs are structured (log/slog, text format) on stderr; -log-json switches
// to JSON. -debug-addr serves net/http/pprof on a separate listener so the
// profiling surface is never exposed on the serving address.
//
// On SIGTERM or SIGINT the server drains gracefully: new requests are
// rejected with 503 while in-flight requests and accepted jobs finish (up
// to -drain-timeout); a second signal aborts immediately.
package main

import (
	"context"
	"errors"
	"flag"
	"log/slog"
	"net"
	"net/http"
	_ "net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"lbic/internal/server"
)

func main() {
	var (
		addr         = flag.String("addr", ":8329", "listen address")
		debugAddr    = flag.String("debug-addr", "", "serve net/http/pprof on this address (empty = disabled)")
		logJSON      = flag.Bool("log-json", false, "emit logs as JSON instead of text")
		logLevel     = flag.String("log-level", "info", "minimum log level: debug | info | warn | error")
		jobs         = flag.Int("jobs", 0, "max concurrently executing cells (0 = GOMAXPROCS)")
		queueLimit   = flag.Int("queue", 1024, "max admitted-but-unfinished cells before 429 (-1 = unlimited)")
		cellTimeout  = flag.Duration("cell-timeout", 5*time.Minute, "per-cell deadline (0 = none)")
		retries      = flag.Int("retries", 0, "re-attempts for failed (non-timeout) cells")
		traceCacheMB = flag.Int64("trace-cache-mb", 256, "trace cache budget in MiB (-1 = disable)")
		resultMB     = flag.Int64("result-cache-mb", 64, "result cache budget in MiB (-1 = disable)")
		drainTimeout = flag.Duration("drain-timeout", 2*time.Minute, "graceful drain deadline on SIGTERM")
	)
	flag.Parse()

	var level slog.Level
	if err := level.UnmarshalText([]byte(*logLevel)); err != nil {
		slog.Error("bad -log-level", "value", *logLevel, "err", err)
		os.Exit(2)
	}
	hopts := &slog.HandlerOptions{Level: level}
	var handler slog.Handler = slog.NewTextHandler(os.Stderr, hopts)
	if *logJSON {
		handler = slog.NewJSONHandler(os.Stderr, hopts)
	}
	log := slog.New(handler)
	slog.SetDefault(log)

	mb := func(v int64) int64 {
		if v < 0 {
			return -1
		}
		return v << 20
	}
	cellT := *cellTimeout
	if cellT == 0 {
		cellT = -1 // Options maps <0 to "no deadline"; 0 means "default".
	}
	srv := server.New(server.Options{
		MaxParallel:      *jobs,
		QueueLimit:       *queueLimit,
		CellTimeout:      cellT,
		Retries:          *retries,
		TraceCacheBytes:  mb(*traceCacheMB),
		ResultCacheBytes: mb(*resultMB),
		Log:              log,
	})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Error("listen failed", "addr", *addr, "err", err)
		os.Exit(1)
	}
	hs := &http.Server{
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	log.Info("listening", "addr", ln.Addr().String())

	if *debugAddr != "" {
		// The pprof import above registers on http.DefaultServeMux; serve
		// only that mux, only here — never on the main listener.
		dln, err := net.Listen("tcp", *debugAddr)
		if err != nil {
			log.Error("debug listen failed", "addr", *debugAddr, "err", err)
			os.Exit(1)
		}
		log.Info("debug server listening (pprof)", "addr", dln.Addr().String())
		go func() {
			ds := &http.Server{Handler: http.DefaultServeMux, ReadHeaderTimeout: 10 * time.Second}
			if err := ds.Serve(dln); err != nil && !errors.Is(err, http.ErrServerClosed) {
				log.Error("debug server failed", "err", err)
			}
		}()
	}

	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()

	sig := make(chan os.Signal, 2)
	signal.Notify(sig, syscall.SIGTERM, os.Interrupt)
	select {
	case err := <-errc:
		log.Error("serve failed", "err", err)
		os.Exit(1)
	case s := <-sig:
		log.Info("draining (in-flight jobs finish; signal again to abort)", "signal", s.String())
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	go func() {
		<-sig
		log.Warn("second signal, aborting")
		cancel()
	}()
	if err := srv.Drain(ctx); err != nil {
		log.Warn("drain incomplete", "err", err)
	}
	sctx, scancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer scancel()
	if err := hs.Shutdown(sctx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Warn("shutdown", "err", err)
	}
	log.Info("bye")
}
