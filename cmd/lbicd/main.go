// Command lbicd serves simulations over HTTP: single runs (/v1/simulate),
// whole sweeps as streamable jobs (/v1/sweep, /v1/jobs/{id}), health and
// metrics endpoints — with one process-wide trace cache and result cache so
// repeated requests replay instead of re-simulating.
//
//	lbicd -addr :8329
//	curl -s localhost:8329/healthz
//	curl -s -d '{"schema":"lbic-sim-request/v1","benchmark":"compress","port":"lbic-4x2","insts":100000}' \
//	     localhost:8329/v1/simulate
//
// On SIGTERM or SIGINT the server drains gracefully: new requests are
// rejected with 503 while in-flight requests and accepted jobs finish (up
// to -drain-timeout); a second signal aborts immediately.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"lbic/internal/server"
)

func main() {
	var (
		addr         = flag.String("addr", ":8329", "listen address")
		jobs         = flag.Int("jobs", 0, "max concurrently executing cells (0 = GOMAXPROCS)")
		queueLimit   = flag.Int("queue", 1024, "max admitted-but-unfinished cells before 429 (-1 = unlimited)")
		cellTimeout  = flag.Duration("cell-timeout", 5*time.Minute, "per-cell deadline (0 = none)")
		retries      = flag.Int("retries", 0, "re-attempts for failed (non-timeout) cells")
		traceCacheMB = flag.Int64("trace-cache-mb", 256, "trace cache budget in MiB (-1 = disable)")
		resultMB     = flag.Int64("result-cache-mb", 64, "result cache budget in MiB (-1 = disable)")
		drainTimeout = flag.Duration("drain-timeout", 2*time.Minute, "graceful drain deadline on SIGTERM")
	)
	flag.Parse()

	mb := func(v int64) int64 {
		if v < 0 {
			return -1
		}
		return v << 20
	}
	cellT := *cellTimeout
	if cellT == 0 {
		cellT = -1 // Options maps <0 to "no deadline"; 0 means "default".
	}
	srv := server.New(server.Options{
		MaxParallel:      *jobs,
		QueueLimit:       *queueLimit,
		CellTimeout:      cellT,
		Retries:          *retries,
		TraceCacheBytes:  mb(*traceCacheMB),
		ResultCacheBytes: mb(*resultMB),
	})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("lbicd: %v", err)
	}
	hs := &http.Server{
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	log.Printf("lbicd: listening on %s", ln.Addr())

	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()

	sig := make(chan os.Signal, 2)
	signal.Notify(sig, syscall.SIGTERM, os.Interrupt)
	select {
	case err := <-errc:
		log.Fatalf("lbicd: %v", err)
	case s := <-sig:
		log.Printf("lbicd: %v received, draining (in-flight jobs finish; again to abort)", s)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	go func() {
		<-sig
		log.Printf("lbicd: second signal, aborting")
		cancel()
	}()
	if err := srv.Drain(ctx); err != nil {
		log.Printf("lbicd: drain incomplete: %v", err)
	}
	sctx, scancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer scancel()
	if err := hs.Shutdown(sctx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Printf("lbicd: shutdown: %v", err)
	}
	fmt.Println("lbicd: bye")
}
