// Command lbicd serves simulations over HTTP: single runs (/v1/simulate),
// whole sweeps as streamable jobs (/v1/sweep, /v1/jobs/{id}), health and
// metrics endpoints — with one process-wide trace cache and result cache so
// repeated requests replay instead of re-simulating.
//
//	lbicd -addr :8329
//	curl -s localhost:8329/healthz
//	curl -s localhost:8329/metrics          # Prometheus text exposition
//	curl -s -d '{"schema":"lbic-sim-request/v1","benchmark":"compress","port":"lbic-4x2","insts":100000}' \
//	     localhost:8329/v1/simulate
//
// Logs are structured (log/slog, text format) on stderr; -log-json switches
// to JSON. -debug-addr serves net/http/pprof on a separate listener so the
// profiling surface is never exposed on the serving address.
//
// On SIGTERM or SIGINT the server drains gracefully: new requests are
// rejected with 503 while in-flight requests and accepted jobs finish (up
// to -drain-timeout); a second signal aborts immediately.
//
// # Cluster roles
//
// The same binary serves three roles. Standalone (default) runs every cell
// in-process. -worker is the same serving plane, advertised as a cluster
// member via its /healthz capacity fields. -coordinator -workers a,b,c
// consistent-hashes each cell onto the healthy workers, with retry onto a
// different worker, hedged duplicates for stragglers (-hedge-after),
// heartbeat-driven eviction/readmission, an optional content-addressed
// result store (-store-dir), and graceful degradation to in-process
// execution when no worker can serve a cell:
//
//	lbicd -worker -addr :8331
//	lbicd -coordinator -workers localhost:8331,localhost:8332,localhost:8333 \
//	      -store-dir /var/lib/lbicd/store -addr :8329
//
// The -chaos-* flags inject faults on a worker's API routes (never on
// /healthz or /metrics) for resilience drills: -chaos-drop-rate severs
// connections mid-request, -chaos-slow-ms delays responses, and
// -chaos-kill-after SIGKILLs the process after N served simulate calls.
package main

import (
	"context"
	"errors"
	"flag"
	"log/slog"
	"net"
	"net/http"
	_ "net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"lbic/internal/cluster"
	"lbic/internal/server"
)

func main() {
	var (
		addr         = flag.String("addr", ":8329", "listen address")
		debugAddr    = flag.String("debug-addr", "", "serve net/http/pprof on this address (empty = disabled)")
		logJSON      = flag.Bool("log-json", false, "emit logs as JSON instead of text")
		logLevel     = flag.String("log-level", "info", "minimum log level: debug | info | warn | error")
		jobs         = flag.Int("jobs", 0, "max concurrently executing cells (0 = GOMAXPROCS)")
		queueLimit   = flag.Int("queue", 1024, "max admitted-but-unfinished cells before 429 (-1 = unlimited)")
		cellTimeout  = flag.Duration("cell-timeout", 5*time.Minute, "per-cell deadline (0 = none)")
		retries      = flag.Int("retries", 0, "re-attempts for failed (non-timeout) cells")
		lanes        = flag.Int("lanes", 0, "lane-batch width for sweep cells sharing one instruction stream (0 or 1 = scalar)")
		traceCacheMB = flag.Int64("trace-cache-mb", 256, "trace cache budget in MiB (-1 = disable)")
		resultMB     = flag.Int64("result-cache-mb", 64, "result cache budget in MiB (-1 = disable)")
		drainTimeout = flag.Duration("drain-timeout", 2*time.Minute, "graceful drain deadline on SIGTERM")

		worker      = flag.Bool("worker", false, "serve as a cluster worker (advertises capacity on /healthz)")
		coordinator = flag.Bool("coordinator", false, "serve as a cluster coordinator dispatching cells to -workers")
		workers     = flag.String("workers", "", "comma-separated worker base URLs or host:port pairs (coordinator)")
		storeDir    = flag.String("store-dir", "", "content-addressed result store directory (coordinator; empty = none)")
		heartbeat   = flag.Duration("heartbeat", time.Second, "worker heartbeat interval (coordinator)")
		evictAfter  = flag.Int("evict-after", 3, "consecutive missed heartbeats before a worker is evicted")
		hedgeAfter  = flag.Duration("hedge-after", 0, "duplicate a dispatch onto another worker after this wait (0 = off)")
		rAttempts   = flag.Int("remote-attempts", 3, "dispatch attempts per cell before degrading to local execution")

		chaosKill = flag.Int("chaos-kill-after", 0, "SIGKILL self after serving this many /v1/simulate requests (0 = off)")
		chaosDrop = flag.Float64("chaos-drop-rate", 0, "probability of severing an API request's connection")
		chaosSlow = flag.Int("chaos-slow-ms", 0, "fixed latency in milliseconds injected before each API request")
		chaosSeed = flag.Int64("chaos-seed", 0, "seed for the chaos drop pattern (0 = clock)")
	)
	flag.Parse()

	var level slog.Level
	if err := level.UnmarshalText([]byte(*logLevel)); err != nil {
		slog.Error("bad -log-level", "value", *logLevel, "err", err)
		os.Exit(2)
	}
	hopts := &slog.HandlerOptions{Level: level}
	var handler slog.Handler = slog.NewTextHandler(os.Stderr, hopts)
	if *logJSON {
		handler = slog.NewJSONHandler(os.Stderr, hopts)
	}
	log := slog.New(handler)
	slog.SetDefault(log)

	mb := func(v int64) int64 {
		if v < 0 {
			return -1
		}
		return v << 20
	}
	cellT := *cellTimeout
	if cellT == 0 {
		cellT = -1 // Options maps <0 to "no deadline"; 0 means "default".
	}
	if *worker && *coordinator {
		log.Error("-worker and -coordinator are mutually exclusive")
		os.Exit(2)
	}
	role := "standalone"
	switch {
	case *worker:
		role = "worker"
	case *coordinator:
		role = "coordinator"
	}

	clusterCtx, clusterStop := context.WithCancel(context.Background())
	defer clusterStop()
	var remote server.RemoteExecutor
	if *coordinator {
		var addrs []string
		for _, a := range strings.Split(*workers, ",") {
			a = strings.TrimSpace(a)
			if a == "" {
				continue
			}
			if !strings.Contains(a, "://") {
				a = "http://" + a
			}
			addrs = append(addrs, a)
		}
		if len(addrs) == 0 {
			log.Error("-coordinator requires -workers host:port,...")
			os.Exit(2)
		}
		pool := cluster.NewPool(addrs, cluster.PoolOptions{
			Interval:   *heartbeat,
			EvictAfter: *evictAfter,
			Log:        log,
		})
		pool.Start(clusterCtx)
		var store *cluster.Store
		if *storeDir != "" {
			var err error
			if store, err = cluster.OpenStore(*storeDir, cluster.Fingerprint()); err != nil {
				log.Error("opening result store", "dir", *storeDir, "err", err)
				os.Exit(1)
			}
		}
		remote = cluster.NewDispatcher(pool, store, cluster.Options{
			Attempts:   *rAttempts,
			HedgeAfter: *hedgeAfter,
			Log:        log,
		})
		log.Info("coordinating", "workers", addrs, "store", *storeDir)
	}

	srv := server.New(server.Options{
		MaxParallel:      *jobs,
		QueueLimit:       *queueLimit,
		CellTimeout:      cellT,
		Retries:          *retries,
		Lanes:            *lanes,
		TraceCacheBytes:  mb(*traceCacheMB),
		ResultCacheBytes: mb(*resultMB),
		Log:              log,
		Role:             role,
		Remote:           remote,
	})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Error("listen failed", "addr", *addr, "err", err)
		os.Exit(1)
	}
	httpHandler := cluster.Chaos(srv.Handler(), cluster.ChaosOptions{
		DropRate:  *chaosDrop,
		Slow:      time.Duration(*chaosSlow) * time.Millisecond,
		KillAfter: *chaosKill,
		Seed:      *chaosSeed,
		Log:       log,
	})
	hs := &http.Server{
		Handler:           httpHandler,
		ReadHeaderTimeout: 10 * time.Second,
	}
	log.Info("listening", "addr", ln.Addr().String())

	if *debugAddr != "" {
		// The pprof import above registers on http.DefaultServeMux; serve
		// only that mux, only here — never on the main listener.
		dln, err := net.Listen("tcp", *debugAddr)
		if err != nil {
			log.Error("debug listen failed", "addr", *debugAddr, "err", err)
			os.Exit(1)
		}
		log.Info("debug server listening (pprof)", "addr", dln.Addr().String())
		go func() {
			ds := &http.Server{Handler: http.DefaultServeMux, ReadHeaderTimeout: 10 * time.Second}
			if err := ds.Serve(dln); err != nil && !errors.Is(err, http.ErrServerClosed) {
				log.Error("debug server failed", "err", err)
			}
		}()
	}

	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()

	sig := make(chan os.Signal, 2)
	signal.Notify(sig, syscall.SIGTERM, os.Interrupt)
	select {
	case err := <-errc:
		log.Error("serve failed", "err", err)
		os.Exit(1)
	case s := <-sig:
		log.Info("draining (in-flight jobs finish; signal again to abort)", "signal", s.String())
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	go func() {
		<-sig
		log.Warn("second signal, aborting")
		cancel()
	}()
	if err := srv.Drain(ctx); err != nil {
		log.Warn("drain incomplete", "err", err)
	}
	sctx, scancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer scancel()
	if err := hs.Shutdown(sctx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Warn("shutdown", "err", err)
	}
	log.Info("bye")
}
