// Command lbictables regenerates the tables and figures of the paper's
// evaluation section:
//
//	lbictables -table 2          # benchmark characteristics (vs paper)
//	lbictables -table 3          # True/Repl/Bank IPC sweep
//	lbictables -figure 3         # consecutive-reference bank mapping
//	lbictables -table 4          # MxN LBIC IPC sweep
//	lbictables -all              # everything
//	lbictables -all -markdown    # Markdown output (for EXPERIMENTS.md)
//	lbictables -all -insts 2000000
//
// Sweeps run cells in parallel (-jobs) with per-cell fault isolation: a
// panicking or hung simulation costs one table cell (rendered ERR, detailed
// in a stderr appendix), not the run. -timeout bounds each cell, -keep-going
// renders every table even when cells fail, and -journal FILE -resume
// checkpoints completed cells so an interrupted sweep reruns only what is
// missing. The first ^C stops launching new cells and renders what finished;
// a second ^C aborts.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"strings"
	"syscall"

	"lbic"
	"lbic/internal/experiments"
	"lbic/internal/runner"
	"lbic/internal/stats"
)

func main() {
	var (
		table      = flag.Int("table", 0, "regenerate table 2, 3 or 4")
		figure     = flag.Int("figure", 0, "regenerate figure 3")
		all        = flag.Bool("all", false, "regenerate every table and figure")
		ablations  = flag.Bool("ablations", false, "run the design-choice ablation studies")
		workloads  = flag.Bool("workloads", false, "run the modern-workload generator matrices")
		insts      = flag.Uint64("insts", experiments.DefaultInsts, "instructions simulated per run")
		markdown   = flag.Bool("markdown", false, "emit Markdown tables")
		jsonOut    = flag.Bool("json", false, "emit JSON tables")
		quiet      = flag.Bool("q", false, "suppress progress output")
		jobs       = flag.Int("jobs", runtime.NumCPU(), "cells simulated concurrently")
		lanes      = flag.Int("lanes", 0, "lane-batch width for cells sharing one instruction stream (0 = whole port axis, 1 = scalar)")
		timeout    = flag.Duration("timeout", 0, "per-cell time limit (0 = none)")
		retries    = flag.Int("retries", 1, "re-attempts for failed (non-timeout) cells")
		keepGoing  = flag.Bool("keep-going", false, "render tables with ERR cells instead of stopping at the first failure")
		journalP   = flag.String("journal", "", "checkpoint completed cells to this file")
		resume     = flag.Bool("resume", false, "serve cells already in -journal from the checkpoint")
		injPanic   = flag.String("inject-panic", "", "comma-separated key substrings whose cells panic (fault-injection testing)")
		injHang    = flag.String("inject-hang", "", "comma-separated key substrings whose cells hang (fault-injection testing)")
		cpuProfile = flag.String("cpuprofile", "", "write a pprof CPU profile to this file")
		memProfile = flag.String("memprofile", "", "write a pprof heap profile on exit to this file")
		noTrace    = flag.Bool("no-trace-cache", false, "re-execute the emulator for every cell instead of replaying recorded traces")
		traceMB    = flag.Int("trace-cache-mb", 256, "trace cache memory budget in MiB")
		traceOut   = flag.String("trace-out", "", "write a Chrome trace-event file of every sweep cell's spans to this file (load in chrome://tracing)")
	)
	flag.Parse()

	if !*all && !*ablations && !*workloads && *table == 0 && *figure == 0 {
		flag.Usage()
		os.Exit(2)
	}
	if *resume && *journalP == "" {
		fmt.Fprintln(os.Stderr, "lbictables: -resume requires -journal FILE")
		os.Exit(2)
	}
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fatal(err)
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fatal(err)
			}
		}()
	}

	sw := experiments.NewSweep(*insts)
	if !*noTrace {
		// Record each benchmark's dynamic trace once and replay it for every
		// port organization; tables are byte-identical either way.
		sw.Trace = lbic.NewTraceCache(int64(*traceMB) << 20)
	}
	sw.Jobs = *jobs
	// -lanes 0 batches each full shared-stream group (the port axis of a
	// table row); N >= 2 caps the width; 1 forces the scalar path. Results
	// are byte-identical at every setting.
	switch {
	case *lanes == 0:
		sw.Lanes = -1
	case *lanes >= 1:
		sw.Lanes = *lanes
	default:
		fmt.Fprintln(os.Stderr, "lbictables: -lanes must be >= 0")
		os.Exit(2)
	}
	sw.Timeout = *timeout
	sw.Retries = *retries
	sw.KeepGoing = *keepGoing
	sw.InjectPanic = splitList(*injPanic)
	sw.InjectHang = splitList(*injHang)
	if *traceOut != "" {
		sw.Spans = lbic.NewRequestTrace()
		defer func() {
			f, err := os.Create(*traceOut)
			if err != nil {
				fatal(err)
			}
			defer f.Close()
			if err := lbic.WriteChromeTrace(f, "lbictables", sw.Spans.Snapshot()); err != nil {
				fatal(err)
			}
		}()
	}
	if !*quiet {
		sw.OnCell = func(key string, err error) {
			if err != nil {
				fmt.Fprintf(os.Stderr, "  FAIL %s: %v\n", key, err)
			}
		}
	}

	if *journalP != "" {
		j, err := runner.OpenJournal(*journalP, *resume)
		if err != nil {
			fatal(err)
		}
		defer func() {
			if err := j.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "lbictables:", err)
			}
		}()
		if *resume && !*quiet {
			fmt.Fprintf(os.Stderr, "resuming: %d cells checkpointed in %s\n", j.Resumed(), *journalP)
		}
		sw.Journal = j
	}

	// Two-stage interrupt: the first ^C requests graceful shutdown (in-flight
	// cells finish or time out, tables render with the rest marked ERR); the
	// second aborts the run.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	sw.Ctx = ctx
	stop := make(chan struct{})
	sw.Stop = stop
	sigs := make(chan os.Signal, 2)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sigs)
	go func() {
		<-sigs
		fmt.Fprintln(os.Stderr, "lbictables: interrupted — finishing in-flight cells (^C again to abort)")
		close(stop)
		<-sigs
		fmt.Fprintln(os.Stderr, "lbictables: aborting")
		cancel()
	}()

	progress := func(name string) {
		if !*quiet {
			fmt.Fprintf(os.Stderr, "  %s...\n", name)
		}
	}
	render := func(t *stats.Table) {
		var err error
		switch {
		case *jsonOut:
			err = t.JSON(os.Stdout)
		case *markdown:
			err = t.Markdown(os.Stdout)
		default:
			err = t.Render(os.Stdout)
			fmt.Println()
		}
		if err != nil {
			fatal(err)
		}
	}

	if *all || *table == 2 {
		note("Table 2")
		rows, err := experiments.Table2(sw)
		if err != nil {
			fatal(err)
		}
		render(experiments.Table2Table(rows))
	}
	if *all || *table == 3 {
		note("Table 3 (130 simulations)")
		d, err := experiments.Table3(sw)
		if err != nil {
			fatal(err)
		}
		render(experiments.Table3Table(d))
	}
	if *all || *figure == 3 {
		note("Figure 3")
		rows, err := experiments.Figure3(sw)
		if err != nil {
			fatal(err)
		}
		render(experiments.Figure3Table(rows))
	}
	if *all || *table == 4 {
		note("Table 4 (60 simulations)")
		d, err := experiments.Table4(sw)
		if err != nil {
			fatal(err)
		}
		render(experiments.Table4Table(d))
	}
	if *all {
		note("coded banks vs. line buffers (60 simulations)")
		t, err := experiments.CodedTable(sw)
		if err != nil {
			fatal(err)
		}
		render(t)
	}
	if *all || *workloads {
		note("workload matrices (2 tables)")
		for _, gen := range []func(*experiments.Sweep) (*stats.Table, error){
			experiments.WorkloadMatrix, experiments.WorkloadConflicts,
		} {
			t, err := gen(sw)
			if err != nil {
				fatal(err)
			}
			render(t)
		}
	}
	if *ablations {
		note("ablation studies")
		budget := *insts
		if budget > experiments.AblationInsts && *insts == experiments.DefaultInsts {
			budget = experiments.AblationInsts
		}
		tables, err := experiments.Ablations(sw.WithInsts(budget), progress)
		if err != nil {
			fatal(err)
		}
		for _, t := range tables {
			render(t)
		}
	}

	if sw.Trace != nil && !*quiet {
		ts := sw.Trace.Stats()
		fmt.Fprintf(os.Stderr,
			"trace cache: %d recordings, %d replays, %.1f MiB peak (%d evicted)\n",
			ts.Records, ts.Hits, float64(ts.BytesPeak)/(1<<20), ts.Evictions)
	}

	// Failure appendix: every ERR cell, on stderr so -json/-markdown stdout
	// stays machine-readable. Failed-but-rendered sweeps exit zero — the
	// tables are the product, and a -resume rerun repairs the holes.
	if fails := sw.Failures(); len(fails) > 0 {
		fmt.Fprintf(os.Stderr, "\n%d cell(s) failed or were skipped:\n", len(fails))
		for _, f := range fails {
			fmt.Fprintf(os.Stderr, "  %s: %v\n", f.Key, f.Err)
		}
		if *journalP != "" {
			fmt.Fprintf(os.Stderr, "rerun with -journal %s -resume to retry only these cells\n", *journalP)
		}
	}
}

func splitList(s string) []string {
	if s == "" {
		return nil
	}
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

func note(what string) {
	fmt.Fprintf(os.Stderr, "generating %s...\n", what)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "lbictables:", err)
	os.Exit(1)
}
