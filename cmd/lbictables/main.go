// Command lbictables regenerates the tables and figures of the paper's
// evaluation section:
//
//	lbictables -table 2          # benchmark characteristics (vs paper)
//	lbictables -table 3          # True/Repl/Bank IPC sweep
//	lbictables -figure 3         # consecutive-reference bank mapping
//	lbictables -table 4          # MxN LBIC IPC sweep
//	lbictables -all              # everything
//	lbictables -all -markdown    # Markdown output (for EXPERIMENTS.md)
//	lbictables -all -insts 2000000
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"

	"lbic/internal/experiments"
	"lbic/internal/stats"
)

func main() {
	var (
		table      = flag.Int("table", 0, "regenerate table 2, 3 or 4")
		figure     = flag.Int("figure", 0, "regenerate figure 3")
		all        = flag.Bool("all", false, "regenerate every table and figure")
		ablations  = flag.Bool("ablations", false, "run the design-choice ablation studies")
		insts      = flag.Uint64("insts", experiments.DefaultInsts, "instructions simulated per run")
		markdown   = flag.Bool("markdown", false, "emit Markdown tables")
		jsonOut    = flag.Bool("json", false, "emit JSON tables")
		quiet      = flag.Bool("q", false, "suppress progress output")
		cpuProfile = flag.String("cpuprofile", "", "write a pprof CPU profile to this file")
		memProfile = flag.String("memprofile", "", "write a pprof heap profile on exit to this file")
	)
	flag.Parse()

	if !*all && !*ablations && *table == 0 && *figure == 0 {
		flag.Usage()
		os.Exit(2)
	}
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fatal(err)
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fatal(err)
			}
		}()
	}
	progress := func(name string) {
		if !*quiet {
			fmt.Fprintf(os.Stderr, "  %s...\n", name)
		}
	}
	render := func(t *stats.Table) {
		var err error
		switch {
		case *jsonOut:
			err = t.JSON(os.Stdout)
		case *markdown:
			err = t.Markdown(os.Stdout)
		default:
			err = t.Render(os.Stdout)
			fmt.Println()
		}
		if err != nil {
			fatal(err)
		}
	}

	if *all || *table == 2 {
		note("Table 2")
		rows, err := experiments.Table2(*insts)
		if err != nil {
			fatal(err)
		}
		render(experiments.Table2Table(rows))
	}
	if *all || *table == 3 {
		note("Table 3 (130 simulations)")
		d, err := experiments.Table3(*insts, progress)
		if err != nil {
			fatal(err)
		}
		render(experiments.Table3Table(d))
	}
	if *all || *figure == 3 {
		note("Figure 3")
		rows, err := experiments.Figure3(*insts)
		if err != nil {
			fatal(err)
		}
		render(experiments.Figure3Table(rows))
	}
	if *all || *table == 4 {
		note("Table 4 (60 simulations)")
		d, err := experiments.Table4(*insts, progress)
		if err != nil {
			fatal(err)
		}
		render(experiments.Table4Table(d))
	}
	if *ablations {
		note("ablation studies")
		budget := *insts
		if budget > experiments.AblationInsts && *insts == experiments.DefaultInsts {
			budget = experiments.AblationInsts
		}
		tables, err := experiments.Ablations(budget, progress)
		if err != nil {
			fatal(err)
		}
		for _, t := range tables {
			render(t)
		}
	}
}

func note(what string) {
	fmt.Fprintf(os.Stderr, "generating %s...\n", what)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "lbictables:", err)
	os.Exit(1)
}
