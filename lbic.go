// Package lbic is a from-scratch reproduction of "On High-Bandwidth Data
// Cache Design for Multi-Issue Processors" (Rivers, Tyson, Davidson, Austin —
// MICRO-30, 1997): an execution-driven simulator of a wide out-of-order
// processor whose L1 data-cache port organization is pluggable — ideal
// multi-ported, replicated, multi-banked, or the paper's Locality-Based
// Interleaved Cache (LBIC) — together with ten synthetic SPEC95-like
// workloads and drivers that regenerate every table and figure of the
// paper's evaluation.
//
// The typical flow:
//
//	prog, _ := lbic.BuildBenchmark("compress")
//	cfg := lbic.DefaultConfig()
//	cfg.Port = lbic.LBICPort(4, 2) // a 4x2 LBIC
//	cfg.MaxInsts = 1_000_000
//	res, _ := lbic.Simulate(prog, cfg)
//	fmt.Println(res.IPC)
package lbic

import (
	"context"
	"fmt"
	"runtime/debug"

	"lbic/internal/cache"
	"lbic/internal/core"
	"lbic/internal/cpu"
	"lbic/internal/emu"
	"lbic/internal/isa"
	"lbic/internal/oracle"
	"lbic/internal/ports"
	"lbic/internal/refstream"
	"lbic/internal/trace"
	"lbic/internal/tracecache"
	"lbic/internal/tracing"
	"lbic/internal/vm"
	"lbic/internal/workload"
)

// Re-exported building blocks, so applications need only this package.
type (
	// Program is an executable for the simulator's MIPS-like ISA.
	Program = isa.Program
	// Builder assembles custom Programs.
	Builder = isa.Builder
	// Reg names a register operand.
	Reg = isa.Reg
	// CPUConfig sets the processor window/width parameters (Table 1).
	CPUConfig = cpu.Config
	// CPUStats reports per-run processor activity.
	CPUStats = cpu.Stats
	// MemParams sets the cache hierarchy geometry and latencies (Table 1).
	MemParams = cache.Params
	// MemStats reports cache hierarchy activity.
	MemStats = cache.Stats
	// Geometry describes one cache level.
	Geometry = cache.Geometry
	// BenchmarkInfo describes one of the ten SPEC95-like kernels.
	BenchmarkInfo = workload.Info
	// BenchmarkStats is a kernel's measured Table 2 characteristics.
	BenchmarkStats = workload.Stats
	// Distribution is a Figure 3 consecutive-reference histogram.
	Distribution = refstream.Distribution
	// LBICStats reports combining activity of an LBIC run.
	LBICStats = core.Stats
	// CodedStats reports reconstruction and code-update activity of a
	// coded-banks run.
	CodedStats = ports.CodedStats
	// VerifySummary reports what a verified run's invariant checker
	// actually covered (see Config.Verify).
	VerifySummary = oracle.Summary
	// TraceCache is a record-once/replay-many store of dynamic traces (see
	// NewTraceCache and Config.Trace).
	TraceCache = tracecache.Cache
	// TraceCacheStats snapshots a TraceCache's hit/record/byte counters.
	TraceCacheStats = tracecache.Stats
)

// NewTraceCache returns an empty trace cache bounded to budgetBytes of
// recorded trace data (<= 0 for unlimited). A sweep that simulates the same
// program under many port organizations records its dynamic trace once and
// replays the compact encoding for every subsequent run, skipping the
// emulator entirely; replayed runs are bit-identical to live runs. Share one
// cache across a whole sweep via Config.Trace (it is concurrency-safe, and
// concurrent runs of the same program share a single recording).
func NewTraceCache(budgetBytes int64) *TraceCache { return tracecache.New(budgetBytes) }

// NewBuilder starts assembling a custom program.
func NewBuilder(name string) *Builder { return isa.NewBuilder(name) }

// R names integer register i (R(0) is hardwired zero).
func R(i int) Reg { return isa.R(i) }

// F names floating-point register i.
func F(i int) Reg { return isa.F(i) }

// PortKind selects the L1 port organization under test.
type PortKind int

const (
	// Ideal is true multi-porting: Width accesses per cycle, any addresses.
	Ideal PortKind = iota
	// Replicated keeps Width full cache copies; stores broadcast and cannot
	// pair with other accesses (DEC 21164 style).
	Replicated
	// Banked is a traditional line-interleaved multi-bank cache with Banks
	// single-ported banks (MIPS R10000 style).
	Banked
	// LBIC is the paper's contribution: Banks banks, each with an
	// N-ported single-line buffer combining up to LinePorts same-line
	// accesses per cycle.
	LBIC
	// VirtualMultiport is time-division multiplexing (IBM Power2 / DEC
	// 21264 style): the SRAM runs Width times the core clock. Its grant
	// behaviour is identical to Ideal — the cost is the clock multiple —
	// which is why the paper drops it beyond two ports (§1). Included to
	// complete the taxonomy.
	VirtualMultiport
	// BankedStoreQueue is a multi-bank cache whose banks carry PA8000-style
	// store queues (the implementations §5.2 cites via [18]) but no line
	// buffers: stores stop competing with loads, yet nothing combines. It
	// separates how much of the LBIC's win comes from store queues versus
	// from combining.
	BankedStoreQueue
	// MultiPortedBanks is the Sohi & Franklin hybrid (§7's related work):
	// Banks line-interleaved banks with Width true ports each — any Width
	// requests per bank per cycle, at true multi-porting's cost per bank.
	MultiPortedBanks
	// Coded emulates a second read port with XOR parity banks (arXiv
	// 2001.09599): Banks single-ported data banks in ParityBanks groups, each
	// group backed by one parity bank storing the XOR of its members, so a
	// second read of a busy bank is reconstructed from the other members plus
	// parity instead of stalling. Stores pay a code-update cost queued on
	// idle parity cycles; the Speculative variant issues a single parity read
	// and replays on stale code (arXiv 2502.00147).
	Coded
)

// String returns the organization name used in the paper's tables,
// registry-derived.
func (k PortKind) String() string {
	if o, ok := portOrgFor(k); ok {
		return o.display
	}
	return "port(?)"
}

// BankSelectorKind selects the bank selection function for Banked ports
// (the §3.2 selection-function ablation).
type BankSelectorKind = ports.SelectorKind

// Bank selection functions.
const (
	// BitSelect is the paper's line-interleaved bit selection (Fig 2c).
	BitSelect = ports.BitSelect
	// XorFold is a cheap pseudo-random interleaving (Rau-style).
	XorFold = ports.XorFold
	// WordInterleave banks at word granularity (vector-machine style; its
	// real cost is tag replication, which the paper rules out for caches).
	WordInterleave = ports.WordInterleave
)

// PortConfig describes one cache port organization instance. It marshals to
// JSON with the kind and selector as their canonical name tokens, so the CLI,
// the lbicd service schema, and sweep journals share one serialization; the
// compact one-line form is Key (parsed back by ParsePortName). Custom ports
// do not round-trip — the factory is a function — and fail to unmarshal.
type PortConfig struct {
	Kind PortKind `json:"kind"`
	// Width is the port count for Ideal and Replicated.
	Width int `json:"width,omitempty"`
	// Banks is the bank count for Banked and LBIC.
	Banks int `json:"banks,omitempty"`
	// LinePorts is N, the per-bank line-buffer port count, for LBIC.
	LinePorts int `json:"line_ports,omitempty"`
	// Selector overrides the bank selection function for Banked (the LBIC
	// requires line interleaving, §5.1). Zero value is BitSelect.
	Selector BankSelectorKind `json:"selector,omitempty"`
	// Greedy selects the §5.2 largest-group line policy for LBIC.
	Greedy bool `json:"greedy,omitempty"`
	// StoreQueueDepth overrides the LBIC per-bank store queue depth, or the
	// Coded per-group code-update queue depth (0 = default).
	StoreQueueDepth int `json:"store_queue_depth,omitempty"`
	// ParityBanks is the XOR parity bank count for Coded; the data banks
	// split into this many contiguous groups.
	ParityBanks int `json:"parity_banks,omitempty"`
	// Speculative selects Coded's single-read reconstruction variant
	// (speculative parity read, replay on stale code).
	Speculative bool `json:"speculative,omitempty"`
	// Label distinguishes custom arbiters from each other in names, journal
	// cell keys, and the lbicd result cache (see CustomPort).
	Label string `json:"label,omitempty"`

	// custom holds a user-supplied arbiter factory (see CustomPort).
	custom func(lineSize int) (ports.Arbiter, error)
}

// IdealPort returns an ideal multi-port configuration.
func IdealPort(width int) PortConfig { return PortConfig{Kind: Ideal, Width: width} }

// ReplicatedPort returns a replicated multi-port configuration.
func ReplicatedPort(width int) PortConfig { return PortConfig{Kind: Replicated, Width: width} }

// BankedPort returns a multi-bank configuration.
func BankedPort(banks int) PortConfig { return PortConfig{Kind: Banked, Banks: banks} }

// LBICPort returns an MxN LBIC configuration.
func LBICPort(banks, linePorts int) PortConfig {
	return PortConfig{Kind: LBIC, Banks: banks, LinePorts: linePorts}
}

// VirtualPort returns a time-division multiplexed configuration (the SRAM
// runs width times the core clock; grants match IdealPort exactly).
func VirtualPort(width int) PortConfig { return PortConfig{Kind: VirtualMultiport, Width: width} }

// BankedSQPort returns a multi-bank configuration with PA8000-style per-bank
// store queues but no combining.
func BankedSQPort(banks int) PortConfig { return PortConfig{Kind: BankedStoreQueue, Banks: banks} }

// MultiPortedBanksPort returns banks line-interleaved banks with
// portsPerBank true ports each (the Sohi & Franklin hybrid).
func MultiPortedBanksPort(banks, portsPerBank int) PortConfig {
	return PortConfig{Kind: MultiPortedBanks, Banks: banks, Width: portsPerBank}
}

// CodedPort returns a coded-banks configuration: banks single-ported data
// banks in parityBanks XOR-coded groups (arXiv 2001.09599). Set LinePorts to
// compose LBIC-style line buffers over the coded banks, and Speculative for
// the single-read replay variant.
func CodedPort(banks, parityBanks int) PortConfig {
	return PortConfig{Kind: Coded, Banks: banks, ParityBanks: parityBanks}
}

// Name returns a short identifier, e.g. "true-4", "lbic-4x2", "coded-4x1".
// The grammar is registry-derived.
func (p PortConfig) Name() string {
	if o, ok := portOrgFor(p.Kind); ok {
		return o.name(p)
	}
	return "port(?)"
}

// Key returns the port's full configuration identity: Name plus the
// store-queue depth override, which the display name deliberately omits.
// It is the serialization used by sweep journal cell keys and the lbicd
// result cache, and (custom ports aside) ParsePortName inverts it.
func (p PortConfig) Key() string {
	name := p.Name()
	if p.StoreQueueDepth != 0 {
		name += fmt.Sprintf("-sq%d", p.StoreQueueDepth)
	}
	return name
}

// Config is a complete simulation configuration. It marshals to JSON —
// the serialization shared by `lbicsim -config`, the lbicd service schema,
// and run reports — with the process-local fields (Events, Trace) excluded.
type Config struct {
	// Port selects the L1 port organization.
	Port PortConfig `json:"port"`
	// MaxInsts stops the run after this many instructions (0 = stream end).
	MaxInsts uint64 `json:"max_insts,omitempty"`
	// CPU overrides the Table 1 processor baseline when non-nil.
	CPU *CPUConfig `json:"cpu,omitempty"`
	// Mem overrides the Table 1 memory hierarchy baseline when non-nil.
	Mem *MemParams `json:"mem,omitempty"`
	// Events, when non-nil, receives one structured event per cache access,
	// bank conflict, line combine, miss, and writeback (see
	// NewJSONLEventSink). Deterministic for a given program and config.
	Events EventSink `json:"-"`
	// Trace, when non-nil, sources the run's dynamic instruction stream from
	// the cache: the first run of a program records its trace once, and every
	// later run at the same instruction budget replays the compact recording
	// instead of re-executing the emulator. Results are bit-identical either
	// way. Ignored when MaxInsts is 0 (an unbounded recording of a
	// non-halting program would never finish) or Verify is set (the oracle
	// needs the live machine's memory image).
	Trace *TraceCache `json:"-"`
	// Verify attaches the internal/oracle invariant checker to the run:
	// every cycle's grant set is validated against the organization's
	// structural rules, no request may be granted twice, loads may not
	// bypass older overlapping stores, store queues must drain FIFO, every
	// load must observe exactly the sequential machine's value, and the
	// final memory image must match. Violations fail the run with a
	// descriptive error. Complete runs only get the end-of-run checks;
	// truncated traces (TraceOptions.MaxCycles) are verified per cycle.
	Verify bool `json:"verify,omitempty"`
}

// DefaultConfig returns the paper's baseline with a single ideal port and a
// one-million-instruction budget.
func DefaultConfig() Config {
	return Config{Port: IdealPort(1), MaxInsts: 1_000_000}
}

// Result is the outcome of one simulation.
type Result struct {
	Benchmark string
	Port      PortConfig
	Cycles    uint64
	Insts     uint64
	IPC       float64
	CPU       CPUStats
	Mem       MemStats
	// LBIC carries combining statistics for LBIC runs, nil otherwise.
	LBIC *LBICStats
	// BankConflicts carries conflict counts for Banked runs.
	BankConflicts uint64
	// Coded carries reconstruction and code-update statistics for Coded
	// runs, nil otherwise.
	Coded *CodedStats
	// Metrics holds the run's histograms and gauges (CPI stall stack,
	// per-bank access/conflict counts, grants per cycle, occupancies).
	Metrics *MetricsRegistry
	// Verify summarizes what the invariant checker covered; nil unless
	// Config.Verify was set.
	Verify *VerifySummary
	// TraceCache snapshots the shared trace cache's counters as of this
	// run's end; nil for runs that executed the live emulator.
	TraceCache *TraceCacheStats
}

// Benchmarks lists the ten SPEC95-like kernels in the paper's Table 2 order.
func Benchmarks() []BenchmarkInfo { return workload.All() }

// PatternInfo describes a synthetic access-pattern microbenchmark.
type PatternInfo = workload.PatternInfo

// Patterns lists the access-pattern microbenchmarks: single-property streams
// (unit stride, same-line bursts, pathological bank strides, random,
// pointer chase, store bursts) that isolate each port organization's
// behaviour.
func Patterns() []PatternInfo { return workload.Patterns() }

// BuildPattern constructs a named access-pattern microbenchmark.
func BuildPattern(name string) (*Program, error) {
	p, ok := workload.PatternByName(name)
	if !ok {
		names := make([]string, 0, len(workload.Patterns()))
		for _, in := range workload.Patterns() {
			names = append(names, in.Name)
		}
		return nil, fmt.Errorf("lbic: unknown pattern %q (have %v)", name, names)
	}
	return p.Build(), nil
}

// BenchmarkNames lists the kernel names in canonical order.
func BenchmarkNames() []string { return workload.Names() }

// BuildBenchmark constructs a named kernel program.
func BuildBenchmark(name string) (*Program, error) {
	in, ok := workload.ByName(name)
	if !ok {
		return nil, fmt.Errorf("lbic: unknown benchmark %q (have %v)", name, workload.Names())
	}
	return in.Build(), nil
}

// buildArbiter constructs the port model for a configuration,
// registry-derived.
func buildArbiter(p PortConfig, lineSize int) (ports.Arbiter, error) {
	o, ok := portOrgFor(p.Kind)
	if !ok {
		return nil, fmt.Errorf("lbic: unknown port kind %d", p.Kind)
	}
	return o.build(p, lineSize)
}

// sim bundles one run's wired-up components, shared by Simulate and
// TraceSimulation.
type sim struct {
	arb  ports.Arbiter
	hier *cache.Hierarchy
	core *cpu.Core
	// machine is the live emulator; nil when the run replays a recorded
	// trace (Config.Trace).
	machine *emu.Machine
	// tcache is the trace cache the run replayed from, nil otherwise.
	tcache *TraceCache
	// check is the attached invariant checker, nil unless Config.Verify.
	check *oracle.Checker
}

// newSim constructs the arbiter and hierarchy for a configuration — the
// components every run needs regardless of where its instruction stream
// comes from.
func newSim(cfg Config) (*sim, error) {
	memParams := cache.DefaultParams()
	if cfg.Mem != nil {
		memParams = *cfg.Mem
	}
	arb, err := buildArbiter(cfg.Port, memParams.L1.LineSize)
	if err != nil {
		return nil, err
	}
	hier, err := cache.NewHierarchy(memParams)
	if err != nil {
		return nil, err
	}
	return &sim{arb: arb, hier: hier}, nil
}

// wireCore attaches the timing core to a stream and hooks up cfg.Events.
func (s *sim) wireCore(stream trace.Stream, cfg Config) error {
	cpuCfg := cpu.DefaultConfig()
	if cfg.CPU != nil {
		cpuCfg = *cfg.CPU
	}
	cpuCfg.MaxInsts = cfg.MaxInsts
	c, err := cpu.New(stream, s.hier, s.arb, cpuCfg)
	if err != nil {
		return err
	}
	s.core = c
	if cfg.Events != nil {
		c.SetEventSink(cfg.Events)
		s.hier.SetEventSink(cfg.Events)
		if er, ok := s.arb.(ports.EventRecorder); ok {
			er.SetEventSink(cfg.Events)
		}
	}
	return nil
}

// buildSim constructs and wires the arbiter, hierarchy, and core for one run,
// attaching cfg.Events to every layer that records structured events. The
// instruction stream comes from cfg.Trace when eligible (recording on the
// first request may block on ctx), from a fresh emulator otherwise.
func buildSim(ctx context.Context, prog *Program, cfg Config) (*sim, error) {
	s, err := newSim(cfg)
	if err != nil {
		return nil, err
	}
	var stream trace.Stream
	if cfg.Trace != nil && cfg.MaxInsts > 0 && !cfg.Verify {
		stream, err = cfg.Trace.Stream(ctx, prog, cfg.MaxInsts)
		if err != nil {
			return nil, err
		}
		s.tcache = cfg.Trace
	} else {
		s.machine, err = emu.New(prog)
		if err != nil {
			return nil, err
		}
		stream = s.machine
	}
	if err := s.wireCore(stream, cfg); err != nil {
		return nil, err
	}
	if cfg.Verify {
		s.check = oracle.NewChecker(prog, s.arb)
		s.core.SetVerifier(s.check)
	}
	return s, nil
}

// finishVerify closes the attached checker against the emulator's final
// memory; complete is false for runs cut short (truncated traces), where
// in-flight operations legitimately remain.
func (s *sim) finishVerify(complete bool) error {
	if s.check == nil || !complete {
		return nil
	}
	return s.check.Finish(s.machine.Mem())
}

// result assembles the Result of a finished run, including the metrics
// registry.
func (s *sim) result(name string, cfg Config, st cpu.Stats) Result {
	res := Result{
		Benchmark: name,
		Port:      cfg.Port,
		Cycles:    st.Cycles,
		Insts:     st.Committed,
		IPC:       st.IPC(),
		CPU:       st,
		Mem:       s.hier.Stats(),
		Metrics:   buildMetricsRegistry(s.core, s.hier, s.arb, st),
	}
	if o, ok := portOrgFor(cfg.Port.Kind); ok && o.collect != nil {
		o.collect(s.arb, &res)
	}
	if s.check != nil {
		sum := s.check.Summary()
		res.Verify = &sum
	}
	if s.tcache != nil {
		ts := s.tcache.Stats()
		res.TraceCache = &ts
	}
	return res
}

// recoverSimPanic converts panics escaping a simulation into errors: guest
// faults (*vm.Fault — bad addresses, unimplemented opcodes) become a
// "program faulted" error, and any other panic — a bug in a user-supplied
// arbiter, or in the simulator itself — becomes an error carrying the panic
// value and stack instead of tearing down the process. This is what lets the
// sweep runner isolate one broken cell from the rest of a table. Call it
// directly in a defer statement so recover sees the panicking frame.
func recoverSimPanic(prog *Program, errp *error) { recoverRunPanic(prog.Name, errp, recover()) }

// recoverRunPanic is the name-keyed core of recoverSimPanic, shared by runs
// whose stream has no backing Program (trace replays, generators). It takes
// the recover() value explicitly so wrappers can call it from their own defer.
func recoverRunPanic(name string, errp *error, r any) {
	if r == nil {
		return
	}
	if f, ok := r.(*vm.Fault); ok {
		*errp = fmt.Errorf("lbic: program %q faulted: %w", name, f)
		return
	}
	*errp = fmt.Errorf("lbic: simulating %q panicked: %v\n%s", name, r, debug.Stack())
}

// Simulate runs prog on the paper's processor model under the configured
// port organization and returns the measured statistics. It is
// SimulateContext without cancellation.
func Simulate(prog *Program, cfg Config) (Result, error) {
	return SimulateContext(context.Background(), prog, cfg)
}

// SimulateContext is Simulate under a context: canceling ctx (or its deadline
// expiring) stops the run at the next cycle-poll boundary with the context's
// error. Guest faults and internal panics surface as errors, never panics.
//
// When ctx carries a trace (see WithTrace) the run contributes one terminal
// span named "simulate <program>" with the run's coordinates and outcome —
// port, instruction budget, cycles, IPC, whether the dynamic stream replayed
// from the trace cache — so a traced sweep accounts simulation time down to
// individual runs. Without a trace on ctx the span machinery costs nothing.
func SimulateContext(ctx context.Context, prog *Program, cfg Config) (res Result, err error) {
	ctx, span := tracing.Start(ctx, "simulate "+prog.Name)
	defer span.End()
	defer recoverSimPanic(prog, &err)
	defer func() {
		if err != nil {
			span.SetAttr("error", err.Error())
		}
	}()
	span.SetAttr("benchmark", prog.Name)
	span.SetAttr("port", cfg.Port.Key())
	if cfg.Trace != nil && cfg.MaxInsts > 0 && !cfg.Verify {
		if cfg.Trace.Contains(prog, cfg.MaxInsts) {
			span.SetAttr("trace_cache", "hit")
		} else {
			span.SetAttr("trace_cache", "miss")
		}
	} else {
		span.SetAttr("trace_cache", "off")
	}

	s, err := buildSim(ctx, prog, cfg)
	if err != nil {
		return Result{}, err
	}
	span.SetAttr("replayed", s.tcache != nil)
	span.Event("core start")
	st, err := s.core.RunContext(ctx)
	if err != nil {
		return Result{}, fmt.Errorf("lbic: simulating %q on %s: %w", prog.Name, cfg.Port.Name(), err)
	}
	if err := s.finishVerify(true); err != nil {
		return Result{}, fmt.Errorf("lbic: simulating %q on %s: %w", prog.Name, cfg.Port.Name(), err)
	}
	res = s.result(prog.Name, cfg, st)
	span.SetAttr("cycles", res.Cycles)
	span.SetAttr("insts", res.Insts)
	span.SetAttr("ipc", res.IPC)
	if res.BankConflicts > 0 {
		span.SetAttr("bank_conflicts", res.BankConflicts)
	}
	if res.LBIC != nil {
		span.SetAttr("lbic_line_conflicts", res.LBIC.LineConflicts)
		span.SetAttr("lbic_combined", res.LBIC.Combined)
	}
	return res, nil
}

// CharacterizeOptions configures Characterize. The zero value measures the
// paper's Table 2 statistics against the default 32KB direct-mapped L1 over
// a live emulator; set Insts to bound the measured stream.
type CharacterizeOptions struct {
	// Insts bounds the measured dynamic stream; it must be positive (the
	// characterized kernels are non-halting steady-state loops).
	Insts uint64
	// Geom is the L1 geometry miss rates are measured against, for capacity
	// and associativity sensitivity studies. The zero value selects the
	// paper's 32KB direct-mapped, 32-byte-line cache.
	Geom Geometry
	// Trace, when non-nil, sources the dynamic stream from the trace cache
	// (recording on first use, replaying thereafter): a sweep that
	// characterizes a benchmark before simulating it warms the cache with
	// the same recording the simulations replay.
	Trace *TraceCache
}

// defaultCharacterizeGeom is the paper's Table 2 measurement cache.
func defaultCharacterizeGeom() Geometry {
	return Geometry{Size: 32 << 10, LineSize: 32, Assoc: 1}
}

// Characterize measures a program's Table 2 statistics (memory instruction
// fraction, store-to-load ratio, miss rate against opts.Geom) functionally.
// Canceling ctx stops a recording in progress (see CharacterizeOptions.Trace).
func Characterize(ctx context.Context, prog *Program, opts CharacterizeOptions) (BenchmarkStats, error) {
	geom := opts.Geom
	if geom == (Geometry{}) {
		geom = defaultCharacterizeGeom()
	}
	s, err := streamFor(ctx, opts.Trace, prog, opts.Insts)
	if err != nil {
		return BenchmarkStats{}, err
	}
	return workload.CharacterizeStream(prog.Name, s, opts.Insts, geom)
}

// streamFor sources prog's dynamic stream from tc when a cache and a finite
// budget are available, from a fresh emulator otherwise.
func streamFor(ctx context.Context, tc *TraceCache, prog *Program, insts uint64) (trace.Stream, error) {
	if tc != nil && insts > 0 {
		return tc.Stream(ctx, prog, insts)
	}
	return emu.New(prog)
}

// DefaultCPUConfig returns the paper's Table 1 processor baseline, for
// callers that override individual parameters via Config.CPU.
func DefaultCPUConfig() CPUConfig { return cpu.DefaultConfig() }

// DefaultMemParams returns the paper's Table 1 memory hierarchy baseline,
// for callers that override individual parameters via Config.Mem.
func DefaultMemParams() MemParams { return cache.DefaultParams() }

// FUClass indexes CPUConfig.FUCount, for overriding Table 1's functional
// unit pool.
type FUClass = isa.Class

// Functional-unit classes (Table 1).
const (
	ClassIntALU = isa.ClassIntALU
	ClassIntMul = isa.ClassIntMul
	ClassIntDiv = isa.ClassIntDiv
	ClassFPAdd  = isa.ClassFPAdd
	ClassFPMul  = isa.ClassFPMul
	ClassFPDiv  = isa.ClassFPDiv
	ClassLoad   = isa.ClassLoad
	ClassStore  = isa.ClassStore
)

// RefStreamOptions configures AnalyzeRefStream. Zero fields take the
// paper's Figure 3 defaults: 4 banks, 32-byte lines, unbounded stream.
type RefStreamOptions struct {
	// Banks is the bank count of the modeled infinite line-interleaved
	// cache; 0 selects the paper's 4.
	Banks int
	// LineSize is the interleaving granularity in bytes; 0 selects 32.
	LineSize int
	// Insts bounds the analyzed dynamic stream; 0 means run to completion
	// (only meaningful for halting programs).
	Insts uint64
	// Trace, when non-nil and Insts > 0, sources the dynamic stream from
	// the trace cache instead of a live emulator.
	Trace *TraceCache
}

// AnalyzeRefStream computes the Figure 3 consecutive-reference distribution
// of a program over an infinite banks-way line-interleaved cache.
func AnalyzeRefStream(ctx context.Context, prog *Program, opts RefStreamOptions) (Distribution, error) {
	banks, lineSize := opts.Banks, opts.LineSize
	if banks == 0 {
		banks = 4
	}
	if lineSize == 0 {
		lineSize = 32
	}
	s, err := streamFor(ctx, opts.Trace, prog, opts.Insts)
	if err != nil {
		return Distribution{}, err
	}
	return refstream.Analyze(s, banks, lineSize, opts.Insts)
}

// compile-time check: the emulator satisfies the stream contract.
var _ trace.Stream = (*emu.Machine)(nil)
