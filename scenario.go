package lbic

import (
	"fmt"

	"lbic/internal/ports"
)

// Ref is one memory reference in a hand-built port scenario.
type Ref struct {
	Addr  uint64
	Store bool
}

// ScenarioCycles drives only the port arbiter of the given organization with
// a set of simultaneously ready references (as if they all sat ready in the
// LSQ) and returns how many cycles elapse before every reference has been
// granted a cache access. It is the one-shot analysis the paper performs by
// hand for Figure 4c: the full pipeline, caches and latencies are out of the
// picture, isolating pure port/bank/combining behaviour.
//
// A limit of scenarioCyclesPerRef cycles per reference plus
// scenarioCycleSlack guards against starvation bugs; exceeding it is
// reported as an error naming how many references never drained.
func ScenarioCycles(port PortConfig, refs []Ref) (int, error) {
	lineSize := DefaultConfig().memLineSize()
	arb, err := buildArbiter(port, lineSize)
	if err != nil {
		return 0, err
	}
	ready := make([]ports.Request, len(refs))
	for i, r := range refs {
		ready[i] = ports.Request{Seq: uint64(i), Addr: r.Addr, Store: r.Store}
	}
	cycles := 0
	limit := scenarioCyclesPerRef*len(refs) + scenarioCycleSlack
	for now := uint64(0); len(ready) > 0; now++ {
		if cycles >= limit {
			return 0, fmt.Errorf("lbic: scenario did not drain on %s: %d of %d references still ready after %d cycles (limit %d)",
				port.Name(), len(ready), len(refs), cycles, limit)
		}
		granted := arb.Grant(now, ready, nil)
		for i := len(granted) - 1; i >= 0; i-- {
			ready = append(ready[:granted[i]], ready[granted[i]+1:]...)
		}
		cycles++
	}
	return cycles, nil
}

// scenarioCyclesPerRef and scenarioCycleSlack bound a ScenarioCycles drain:
// every organization in the taxonomy grants at least one ready reference per
// cycle, so the budget of ten cycles per reference (plus slack for empty or
// tiny sets) is generous; only a starving arbiter can exhaust it.
const (
	scenarioCyclesPerRef = 10
	scenarioCycleSlack   = 16
)

// memLineSize resolves the L1 line size a Config implies.
func (c Config) memLineSize() int {
	if c.Mem != nil {
		return c.Mem.L1.LineSize
	}
	return 32
}
