// Command benchjson converts `go test -bench` output piped to stdin into a
// stable JSON document suitable for checking in and diffing across PRs
// (see BENCH_PR4.json and the `make bench` target).
//
// Input lines are passed through to stdout unchanged, so the tool can sit at
// the end of a pipeline without hiding benchmark progress. Lines that are
// not benchmark results (logs, pass/fail summaries) are ignored.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Result is one parsed benchmark line.
type Result struct {
	Pkg        string  `json:"pkg"`
	Name       string  `json:"name"`
	Procs      int     `json:"procs,omitempty"`
	Iterations int64   `json:"iterations"`
	NsPerOp    float64 `json:"ns_per_op"`
	MBPerS     float64 `json:"mb_per_s,omitempty"`
	BPerOp     int64   `json:"b_per_op"`
	AllocsQuot int64   `json:"allocs_per_op"`
	hasMem     bool
}

// Doc is the checked-in JSON shape.
type Doc struct {
	Goos       string   `json:"goos,omitempty"`
	Goarch     string   `json:"goarch,omitempty"`
	CPU        string   `json:"cpu,omitempty"`
	Benchmarks []Result `json:"benchmarks"`
}

func main() {
	out := flag.String("o", "", "output file (default stdout JSON is suppressed; raw input always echoes)")
	flag.Parse()

	var doc Doc
	pkg := ""
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		fmt.Println(line)
		switch {
		case strings.HasPrefix(line, "goos: "):
			doc.Goos = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			doc.Goarch = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "cpu: "):
			doc.CPU = strings.TrimPrefix(line, "cpu: ")
		case strings.HasPrefix(line, "pkg: "):
			pkg = strings.TrimPrefix(line, "pkg: ")
		case strings.HasPrefix(line, "Benchmark"):
			if r, ok := parseBench(line); ok {
				r.Pkg = pkg
				doc.Benchmarks = append(doc.Benchmarks, r)
			}
		}
	}
	if err := sc.Err(); err != nil {
		fatal(err)
	}
	if len(doc.Benchmarks) == 0 {
		fatal(fmt.Errorf("no benchmark lines found on stdin"))
	}

	data, err := json.MarshalIndent(&doc, "", "  ")
	if err != nil {
		fatal(err)
	}
	data = append(data, '\n')
	if *out == "" || *out == "-" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %d benchmarks to %s\n", len(doc.Benchmarks), *out)
}

// parseBench parses a standard benchmark result line:
//
//	BenchmarkName/sub-8   123   456 ns/op   7.8 MB/s   9 B/op   0 allocs/op
func parseBench(line string) (Result, bool) {
	f := strings.Fields(line)
	if len(f) < 4 {
		return Result{}, false
	}
	r := Result{Name: f[0]}
	// The trailing "-N" is GOMAXPROCS, appended by the testing package.
	if i := strings.LastIndexByte(r.Name, '-'); i > 0 {
		if p, err := strconv.Atoi(r.Name[i+1:]); err == nil {
			r.Name, r.Procs = r.Name[:i], p
		}
	}
	n, err := strconv.ParseInt(f[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	r.Iterations = n
	for i := 2; i+1 < len(f); i += 2 {
		v, err := strconv.ParseFloat(f[i], 64)
		if err != nil {
			return Result{}, false
		}
		switch f[i+1] {
		case "ns/op":
			r.NsPerOp = v
		case "MB/s":
			r.MBPerS = v
		case "B/op":
			r.BPerOp = int64(v)
			r.hasMem = true
		case "allocs/op":
			r.AllocsQuot = int64(v)
			r.hasMem = true
		}
	}
	if r.NsPerOp == 0 && !r.hasMem {
		return Result{}, false
	}
	return r, true
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(1)
}
