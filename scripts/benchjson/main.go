// Command benchjson converts `go test -bench` output piped to stdin into a
// stable JSON document suitable for checking in and diffing across PRs
// (see BENCH_PR4.json and the `make bench` target).
//
// Input lines are passed through to stdout unchanged, so the tool can sit at
// the end of a pipeline without hiding benchmark progress. Lines that are
// not benchmark results (logs, pass/fail summaries) are ignored.
//
// With -diff it becomes the perf regression gate instead of a converter:
//
//	benchjson -diff BENCH_PR4.json -against BENCH_PR5.json \
//	          -threshold 10 -allowlist BENCH_ALLOWLIST.json
//
// Every benchmark present in both files is compared on ns/op; a slowdown
// past the threshold fails the run (exit 1) unless an allowlist entry
// acknowledges it with a reason and a per-entry cap. Under GitHub Actions
// the findings are emitted as workflow annotations.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path"
	"strconv"
	"strings"
)

// Result is one parsed benchmark line.
type Result struct {
	Pkg        string  `json:"pkg"`
	Name       string  `json:"name"`
	Procs      int     `json:"procs,omitempty"`
	Iterations int64   `json:"iterations"`
	NsPerOp    float64 `json:"ns_per_op"`
	MBPerS     float64 `json:"mb_per_s,omitempty"`
	BPerOp     int64   `json:"b_per_op"`
	AllocsQuot int64   `json:"allocs_per_op"`
	hasMem     bool
}

// Doc is the checked-in JSON shape.
type Doc struct {
	Goos       string   `json:"goos,omitempty"`
	Goarch     string   `json:"goarch,omitempty"`
	CPU        string   `json:"cpu,omitempty"`
	Benchmarks []Result `json:"benchmarks"`
}

func main() {
	out := flag.String("o", "", "output file (default stdout JSON is suppressed; raw input always echoes)")
	diffOld := flag.String("diff", "", "regression-gate mode: baseline BENCH_*.json to diff from")
	diffNew := flag.String("against", "", "candidate BENCH_*.json to diff against the -diff baseline")
	threshold := flag.Float64("threshold", 10, "ns/op slowdown percentage that fails the gate")
	allowlist := flag.String("allowlist", "", "JSON file of acknowledged regressions (see BENCH_ALLOWLIST.json)")
	flag.Parse()

	if *diffOld != "" || *diffNew != "" {
		if *diffOld == "" || *diffNew == "" {
			fatal(fmt.Errorf("-diff and -against must both be set"))
		}
		if err := diff(*diffOld, *diffNew, *threshold, *allowlist); err != nil {
			fatal(err)
		}
		return
	}

	var doc Doc
	pkg := ""
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		fmt.Println(line)
		switch {
		case strings.HasPrefix(line, "goos: "):
			doc.Goos = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			doc.Goarch = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "cpu: "):
			doc.CPU = strings.TrimPrefix(line, "cpu: ")
		case strings.HasPrefix(line, "pkg: "):
			pkg = strings.TrimPrefix(line, "pkg: ")
		case strings.HasPrefix(line, "Benchmark"):
			if r, ok := parseBench(line); ok {
				r.Pkg = pkg
				doc.Benchmarks = append(doc.Benchmarks, r)
			}
		}
	}
	if err := sc.Err(); err != nil {
		fatal(err)
	}
	if len(doc.Benchmarks) == 0 {
		fatal(fmt.Errorf("no benchmark lines found on stdin"))
	}

	data, err := json.MarshalIndent(&doc, "", "  ")
	if err != nil {
		fatal(err)
	}
	data = append(data, '\n')
	if *out == "" || *out == "-" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %d benchmarks to %s\n", len(doc.Benchmarks), *out)
}

// parseBench parses a standard benchmark result line:
//
//	BenchmarkName/sub-8   123   456 ns/op   7.8 MB/s   9 B/op   0 allocs/op
func parseBench(line string) (Result, bool) {
	f := strings.Fields(line)
	if len(f) < 4 {
		return Result{}, false
	}
	r := Result{Name: f[0]}
	// The trailing "-N" is GOMAXPROCS, appended by the testing package.
	if i := strings.LastIndexByte(r.Name, '-'); i > 0 {
		if p, err := strconv.Atoi(r.Name[i+1:]); err == nil {
			r.Name, r.Procs = r.Name[:i], p
		}
	}
	n, err := strconv.ParseInt(f[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	r.Iterations = n
	for i := 2; i+1 < len(f); i += 2 {
		v, err := strconv.ParseFloat(f[i], 64)
		if err != nil {
			return Result{}, false
		}
		switch f[i+1] {
		case "ns/op":
			r.NsPerOp = v
		case "MB/s":
			r.MBPerS = v
		case "B/op":
			r.BPerOp = int64(v)
			r.hasMem = true
		case "allocs/op":
			r.AllocsQuot = int64(v)
			r.hasMem = true
		}
	}
	if r.NsPerOp == 0 && !r.hasMem {
		return Result{}, false
	}
	return r, true
}

// Allowlist is the checked-in set of acknowledged regressions. Entries match
// by pkg and name (path.Match globs); the first match wins, so put specific
// entries before broad ones.
type Allowlist struct {
	// Comment is free-form documentation; the tool ignores it.
	Comment string       `json:"comment,omitempty"`
	Entries []AllowEntry `json:"entries"`
}

// AllowEntry acknowledges one (pattern of) regression.
type AllowEntry struct {
	Pkg  string `json:"pkg"`
	Name string `json:"name"`
	// MaxRegressionPct replaces the global threshold for matching benchmarks:
	// a slowdown up to this percentage is allowed (annotated, not fatal).
	MaxRegressionPct float64 `json:"max_regression_pct"`
	// Reason documents why the regression is acknowledged. Required: an
	// allowlist entry without a reason is a gate hole, not an acknowledgment.
	Reason string `json:"reason"`
}

// matchPattern is path.Match plus a bare "*" that matches anything —
// sub-benchmark names contain "/", which path.Match's "*" will not cross.
func matchPattern(pattern, s string) bool {
	if pattern == "*" {
		return true
	}
	ok, err := path.Match(pattern, s)
	return err == nil && ok
}

func (a *Allowlist) match(pkg, name string) *AllowEntry {
	for i := range a.Entries {
		e := &a.Entries[i]
		if matchPattern(e.Pkg, pkg) && matchPattern(e.Name, name) {
			return e
		}
	}
	return nil
}

func loadDoc(p string) (map[string]Result, error) {
	raw, err := os.ReadFile(p)
	if err != nil {
		return nil, err
	}
	var doc Doc
	if err := json.Unmarshal(raw, &doc); err != nil {
		return nil, fmt.Errorf("parsing %s: %w", p, err)
	}
	m := make(map[string]Result, len(doc.Benchmarks))
	for _, b := range doc.Benchmarks {
		m[b.Pkg+" "+b.Name] = b
	}
	return m, nil
}

// annotate emits a GitHub Actions workflow annotation when running under CI,
// a plain stderr line otherwise.
func annotate(level, msg string) {
	if os.Getenv("GITHUB_ACTIONS") == "true" {
		fmt.Printf("::%s ::%s\n", level, msg)
		return
	}
	fmt.Fprintln(os.Stderr, strings.ToUpper(level)+": "+msg)
}

// diff compares ns/op between two checked-in benchmark documents and fails
// on regressions past the threshold that no allowlist entry acknowledges.
func diff(oldPath, newPath string, threshold float64, allowPath string) error {
	oldDoc, err := loadDoc(oldPath)
	if err != nil {
		return err
	}
	if _, err := loadDoc(newPath); err != nil {
		return err
	}
	var allow Allowlist
	if allowPath != "" {
		raw, err := os.ReadFile(allowPath)
		if err != nil {
			return err
		}
		if err := json.Unmarshal(raw, &allow); err != nil {
			return fmt.Errorf("parsing %s: %w", allowPath, err)
		}
		for _, e := range allow.Entries {
			if strings.TrimSpace(e.Reason) == "" {
				return fmt.Errorf("%s: entry %s %s has no reason; acknowledged regressions must say why", allowPath, e.Pkg, e.Name)
			}
		}
	}

	// Stable output order: the candidate document's order.
	raw, _ := os.ReadFile(newPath)
	var ordered Doc
	_ = json.Unmarshal(raw, &ordered)

	fmt.Printf("benchjson: %s -> %s (threshold %.0f%%)\n", oldPath, newPath, threshold)
	failures := 0
	for _, nb := range ordered.Benchmarks {
		key := nb.Pkg + " " + nb.Name
		ob, ok := oldDoc[key]
		if !ok {
			fmt.Printf("  new      %-60s %12.0f ns/op\n", key, nb.NsPerOp)
			continue
		}
		delete(oldDoc, key)
		if ob.NsPerOp <= 0 {
			continue
		}
		pct := 100 * (nb.NsPerOp - ob.NsPerOp) / ob.NsPerOp
		switch {
		case pct <= threshold:
			fmt.Printf("  ok       %-60s %+7.1f%%\n", key, pct)
		default:
			if e := allow.match(nb.Pkg, nb.Name); e != nil && pct <= e.MaxRegressionPct {
				fmt.Printf("  allowed  %-60s %+7.1f%%  (%s)\n", key, pct, e.Reason)
				annotate("warning", fmt.Sprintf("%s: %+.1f%% ns/op, allowed: %s", key, pct, e.Reason))
				continue
			}
			failures++
			fmt.Printf("  FAIL     %-60s %+7.1f%%\n", key, pct)
			annotate("error", fmt.Sprintf("%s regressed %+.1f%% ns/op (threshold %.0f%%) — fix it or acknowledge it in the allowlist with a reason", key, pct, threshold))
		}
	}
	for key := range oldDoc {
		fmt.Printf("  missing  %-60s (present in %s only)\n", key, oldPath)
	}
	if failures > 0 {
		return fmt.Errorf("%d benchmark regression(s) past %.0f%%", failures, threshold)
	}
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(1)
}
