// Command reportdiff compares two machine-readable run reports written by
// `lbicsim -json` and prints the IPC, stall-stack, and conflict deltas — the
// quick answer to "what did this port change buy?":
//
//	go run ./cmd/lbicsim -bench swim -port banked -banks 4 -json bank.json
//	go run ./cmd/lbicsim -bench swim -port lbic -banks 4 -lineports 2 -json lbic.json
//	go run ./scripts/reportdiff bank.json lbic.json
package main

import (
	"fmt"
	"os"

	"lbic"
	"lbic/internal/stats"
)

func main() {
	if len(os.Args) != 3 {
		fmt.Fprintln(os.Stderr, "usage: reportdiff <baseline.json> <candidate.json>")
		os.Exit(2)
	}
	a := read(os.Args[1])
	b := read(os.Args[2])

	if a.Benchmark != b.Benchmark {
		fmt.Fprintf(os.Stderr, "reportdiff: warning: comparing different benchmarks (%s vs %s)\n",
			a.Benchmark, b.Benchmark)
	}

	t := stats.NewTable(
		fmt.Sprintf("%s: %s -> %s", b.Benchmark, a.Port.Name, b.Port.Name),
		"metric", a.Port.Name, b.Port.Name, "delta")
	addU := func(name string, x, y uint64) {
		t.AddRow(name, fmt.Sprintf("%d", x), fmt.Sprintf("%d", y), deltaU(x, y))
	}
	t.AddRow("IPC", fmt.Sprintf("%.3f", a.IPC), fmt.Sprintf("%.3f", b.IPC), deltaF(a.IPC, b.IPC))
	addU("cycles", a.Cycles, b.Cycles)
	addU("insts", a.Insts, b.Insts)
	addU("L1 accesses", a.Mem.Accesses, b.Mem.Accesses)
	t.AddRow("L1 miss rate",
		fmt.Sprintf("%.4f", a.Mem.MissRate()), fmt.Sprintf("%.4f", b.Mem.MissRate()),
		deltaF(a.Mem.MissRate(), b.Mem.MissRate()))
	addU("port conflicts", conflicts(a), conflicts(b))
	if a.LBIC != nil || b.LBIC != nil {
		addU("lbic combined", lbicCombined(a), lbicCombined(b))
	}
	if err := t.Render(os.Stdout); err != nil {
		fatal(err)
	}
	fmt.Println()

	// Stall-stack delta: which causes gained or lost cycles.
	st := stats.NewTable("CPI stall stack delta", "cause", a.Port.Name, b.Port.Name, "delta")
	for i, ba := range a.CPIStack {
		var bb lbic.StallBucket
		if i < len(b.CPIStack) {
			bb = b.CPIStack[i]
		}
		st.AddRow(ba.Cause, fmt.Sprintf("%d", ba.Cycles), fmt.Sprintf("%d", bb.Cycles),
			deltaU(ba.Cycles, bb.Cycles))
	}
	if err := st.Render(os.Stdout); err != nil {
		fatal(err)
	}
}

// conflicts totals the per-bank conflict histogram, falling back to the
// aggregate Banked counter for reports without one.
func conflicts(r lbic.Report) uint64 {
	for _, h := range r.Metrics.Histograms {
		if h.Name == "port.bank_conflicts" {
			var n uint64
			for _, b := range h.Buckets {
				n += b
			}
			return n
		}
	}
	return r.BankConflicts
}

func lbicCombined(r lbic.Report) uint64 {
	if r.LBIC == nil {
		return 0
	}
	return r.LBIC.Combined
}

func deltaU(a, b uint64) string {
	d := int64(b) - int64(a)
	if a == 0 {
		return fmt.Sprintf("%+d", d)
	}
	return fmt.Sprintf("%+d (%+.1f%%)", d, 100*float64(d)/float64(a))
}

func deltaF(a, b float64) string {
	if a == 0 {
		return fmt.Sprintf("%+.3f", b-a)
	}
	return fmt.Sprintf("%+.3f (%+.1f%%)", b-a, 100*(b-a)/a)
}

func read(path string) lbic.Report {
	f, err := os.Open(path)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	rep, err := lbic.ReadReport(f)
	if err != nil {
		fatal(fmt.Errorf("%s: %w", path, err))
	}
	return rep
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "reportdiff:", err)
	os.Exit(1)
}
