#!/bin/sh
# Reproduce every result in EXPERIMENTS.md from scratch.
set -e
cd "$(dirname "$0")/.."

echo "== build =="
go build ./...
go vet ./...

echo "== tests =="
go test ./...

echo "== tables and figures (Tables 2-4, Figure 3) =="
go run ./cmd/lbictables -all -q

echo "== ablation studies =="
go run ./cmd/lbictables -ablations -q

echo "== benchmarks =="
go test -bench=. -benchmem -benchtime=1x .
