// Command clusterchaos drills the distributed lbicd plane: it boots a real
// coordinator plus worker processes, applies faults, and checks the cluster's
// robustness claims end to end.
//
// Smoke mode (-smoke) is the CI gate:
//
//	go build -o /tmp/lbicd ./cmd/lbicd
//	go run ./scripts/clusterchaos -smoke -lbicd /tmp/lbicd
//
// It runs a sweep across a coordinator with three workers, SIGKILLs one
// worker as soon as the first cell lands, and fails unless the job still
// completes with every report byte-identical to the same cells simulated
// in-process. It then points a coordinator at dead ports and requires the
// same sweep to complete by graceful degradation to local execution.
//
// Drill mode (the default) is the load generator: workers run with drop and
// latency chaos (plus one that SIGKILLs itself mid-run and is restarted, so
// eviction and readmission both happen under load) while mixed simulate
// traffic hammers the coordinator. Request latencies and the cluster's
// dispatch counters land in a JSON benchmark document (-out BENCH_PR8.json).
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/exec"
	"sort"
	"strings"
	"sync"
	"syscall"
	"time"

	"lbic"
	"lbic/client"
)

func main() {
	var (
		lbicd   = flag.String("lbicd", "/tmp/lbicd", "path to the built lbicd binary")
		smoke   = flag.Bool("smoke", false, "run the CI smoke drill instead of the load generator")
		workers = flag.Int("workers", 3, "cluster size")
		reqs    = flag.Int("requests", 60, "drill mode: total simulate requests")
		conc    = flag.Int("concurrency", 4, "drill mode: concurrent load generators")
		insts   = flag.Uint64("insts", 100_000, "per-cell instruction budget")
		out     = flag.String("out", "BENCH_PR8.json", "drill mode: benchmark JSON output path")
	)
	flag.Parse()
	if _, err := os.Stat(*lbicd); err != nil {
		log.Fatalf("clusterchaos: lbicd binary: %v (build it: go build -o /tmp/lbicd ./cmd/lbicd)", err)
	}
	if *smoke {
		runSmoke(*lbicd, *workers, *insts)
		return
	}
	runDrill(*lbicd, *workers, *reqs, *conc, *insts, *out)
}

// proc is one managed lbicd subprocess.
type proc struct {
	cmd  *exec.Cmd
	addr string // base URL
	port string
}

// freePort reserves an ephemeral port and releases it for the subprocess.
func freePort() string {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatalf("clusterchaos: %v", err)
	}
	defer ln.Close()
	_, port, _ := net.SplitHostPort(ln.Addr().String())
	return port
}

// start launches lbicd with args and waits for /healthz.
func start(bin string, args ...string) *proc {
	port := freePort()
	full := append([]string{"-addr", "127.0.0.1:" + port}, args...)
	cmd := exec.Command(bin, full...)
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		log.Fatalf("clusterchaos: starting lbicd: %v", err)
	}
	p := &proc{cmd: cmd, addr: "http://127.0.0.1:" + port, port: port}
	c := client.New(p.addr)
	deadline := time.Now().Add(15 * time.Second)
	for {
		if err := c.Healthz(context.Background()); err == nil {
			return p
		} else if time.Now().After(deadline) {
			log.Fatalf("clusterchaos: %s not healthy in time: %v", p.addr, err)
		}
		time.Sleep(100 * time.Millisecond)
	}
}

// restart relaunches a dead worker on its original port (readmission needs
// the address to stay stable).
func restart(bin string, dead *proc, args ...string) *proc {
	full := append([]string{"-addr", "127.0.0.1:" + dead.port}, args...)
	cmd := exec.Command(bin, full...)
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		log.Fatalf("clusterchaos: restarting worker: %v", err)
	}
	return &proc{cmd: cmd, addr: dead.addr, port: dead.port}
}

func (p *proc) sigkill() {
	p.cmd.Process.Kill()
	p.cmd.Wait()
}

func (p *proc) stop() {
	if p == nil || p.cmd.Process == nil {
		return
	}
	p.cmd.Process.Signal(syscall.SIGTERM)
	done := make(chan struct{})
	go func() { p.cmd.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		p.cmd.Process.Kill()
		<-done
	}
}

// directReport computes the authoritative report bytes for one cell.
func directReport(bench, portName string, insts uint64) ([]byte, error) {
	prog, err := lbic.BuildBenchmark(bench)
	if err != nil {
		return nil, err
	}
	cfg := lbic.DefaultConfig()
	if cfg.Port, err = lbic.ParsePortName(portName); err != nil {
		return nil, err
	}
	cfg.MaxInsts = insts
	res, err := lbic.Simulate(prog, cfg)
	if err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	if err := lbic.NewReport(res).WriteJSON(&buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

func runSmoke(bin string, nWorkers int, insts uint64) {
	ctx := context.Background()

	var ws []*proc
	var addrs []string
	for i := 0; i < nWorkers; i++ {
		w := start(bin, "-worker", "-log-level", "error")
		ws = append(ws, w)
		addrs = append(addrs, w.addr)
	}
	coord := start(bin, "-coordinator", "-workers", strings.Join(addrs, ","),
		"-heartbeat", "250ms", "-evict-after", "2", "-hedge-after", "2s", "-log-level", "error")
	defer func() {
		coord.stop()
		for _, w := range ws {
			w.stop()
		}
	}()

	c := client.New(coord.addr)
	benches := []string{"compress", "li", "gcc", "perl"}
	ports := []client.PortSpec{client.Port("bank-4"), client.Port("lbic-4x2")}
	st, err := c.Sweep(ctx, client.SweepRequest{Benchmarks: benches, Ports: ports, Insts: insts})
	if err != nil {
		log.Fatalf("clusterchaos: sweep: %v", err)
	}
	fmt.Printf("clusterchaos: smoke job %s (%d cells) across %d workers\n", st.ID, st.Total, nWorkers)

	// Collect the stream; SIGKILL a worker the moment the first cell lands,
	// so the kill is mid-job and its in-flight cells must re-shard.
	killed := false
	seen := 0
	err = c.StreamSSE(ctx, st.ID, func(ev client.StreamEvent) error {
		if ev.Type != "cell" {
			return nil
		}
		if ev.Cell.Error != "" {
			return fmt.Errorf("cell %s failed: %s", ev.Cell.Key, ev.Cell.Error)
		}
		seen++
		if !killed {
			killed = true
			fmt.Printf("clusterchaos: SIGKILL worker %s mid-job\n", ws[0].addr)
			ws[0].sigkill()
		}
		return nil
	})
	if err != nil {
		log.Fatalf("clusterchaos: streaming %s: %v", st.ID, err)
	}
	if seen != st.Total {
		log.Fatalf("clusterchaos: job delivered %d of %d cells", seen, st.Total)
	}

	// Every cell must match the single-process bytes exactly. The raw
	// /v1/simulate body is the coordinator's cached copy of exactly what the
	// surviving cluster produced, so this compares the served bytes — not a
	// re-marshaled stream payload — against ground truth.
	verified := 0
	for _, b := range benches {
		for _, p := range []string{"bank-4", "lbic-4x2"} {
			served, err := c.Simulate(ctx, client.SimulateRequest{
				Benchmark: b, Port: client.Port(p), Insts: insts,
			})
			if err != nil {
				log.Fatalf("clusterchaos: refetch %s/%s: %v", b, p, err)
			}
			want, err := directReport(b, p, insts)
			if err != nil {
				log.Fatalf("clusterchaos: direct %s/%s: %v", b, p, err)
			}
			if !bytes.Equal(served, want) {
				log.Fatalf("clusterchaos: cell %s/%s served under a SIGKILLed worker differs from single-process bytes", b, p)
			}
			verified++
		}
	}
	cst, err := c.Cluster(ctx)
	if err != nil {
		log.Fatalf("clusterchaos: /v1/cluster: %v", err)
	}
	fmt.Printf("clusterchaos: smoke ok — %d/%d cells byte-identical with a worker SIGKILLed mid-job "+
		"(dispatched %d, retries %d, hedges %d, local fallbacks visible at /metrics)\n",
		verified, st.Total, cst.Dispatched, cst.Retries, cst.Hedges)

	smokeDegraded(bin, insts)
}

// smokeDegraded proves the zero-workers story: a coordinator whose entire
// worker list is unreachable must complete the sweep in-process, still
// byte-identical.
func smokeDegraded(bin string, insts uint64) {
	ctx := context.Background()
	deadAddr := "http://127.0.0.1:" + freePort()
	coord := start(bin, "-coordinator", "-workers", deadAddr,
		"-heartbeat", "100ms", "-evict-after", "1", "-remote-attempts", "1", "-log-level", "error")
	defer coord.stop()

	c := client.New(coord.addr)
	served, err := c.Simulate(ctx, client.SimulateRequest{
		Benchmark: "compress", Port: client.Port("lbic-4x2"), Insts: insts,
	})
	if err != nil {
		log.Fatalf("clusterchaos: degraded simulate: %v", err)
	}
	want, err := directReport("compress", "lbic-4x2", insts)
	if err != nil {
		log.Fatal(err)
	}
	if !bytes.Equal(served, want) {
		log.Fatalf("clusterchaos: degraded report differs from single-process bytes")
	}
	cst, err := c.Cluster(ctx)
	if err != nil {
		log.Fatalf("clusterchaos: degraded /v1/cluster: %v", err)
	}
	if cst.Unavailable == 0 {
		log.Fatalf("clusterchaos: degraded coordinator reported no unavailable dispatches: %+v", cst)
	}
	fmt.Printf("clusterchaos: degradation ok — zero reachable workers, served in-process byte-identical "+
		"(%d dispatches degraded)\n", cst.Unavailable)
}

// benchDoc is the drill's JSON output (BENCH_PR8.json).
type benchDoc struct {
	Schema    string               `json:"schema"`
	Workers   int                  `json:"workers"`
	Requests  int                  `json:"requests"`
	Failed    int                  `json:"failed"`
	Chaos     map[string]any       `json:"chaos"`
	ElapsedS  float64              `json:"elapsed_s"`
	Rps       float64              `json:"requests_per_second"`
	LatencyMS map[string]float64   `json:"latency_ms"`
	Cluster   client.ClusterStatus `json:"cluster"`
}

func runDrill(bin string, nWorkers, reqs, conc int, insts uint64, out string) {
	ctx := context.Background()
	chaos := map[string]any{"drop_rate": 0.15, "slow_ms": 10, "kill_after": reqs / 6}

	var ws []*proc
	var addrs []string
	for i := 0; i < nWorkers; i++ {
		args := []string{"-worker", "-log-level", "error",
			"-chaos-drop-rate", "0.15", "-chaos-slow-ms", "10", "-chaos-seed", fmt.Sprint(i + 1)}
		if i == 0 {
			// One worker crashes itself partway through and is restarted
			// below, so the run exercises eviction and readmission.
			args = append(args, "-chaos-kill-after", fmt.Sprint(reqs/6))
		}
		w := start(bin, args...)
		ws = append(ws, w)
		addrs = append(addrs, w.addr)
	}
	coord := start(bin, "-coordinator", "-workers", strings.Join(addrs, ","),
		"-heartbeat", "250ms", "-evict-after", "2", "-hedge-after", "1s", "-log-level", "error")
	defer func() {
		coord.stop()
		for _, w := range ws {
			w.stop()
		}
	}()

	// Resurrect the self-killing worker once it dies: readmission under load.
	go func() {
		ws[0].cmd.Wait()
		fmt.Printf("clusterchaos: worker %s died (chaos kill), restarting\n", ws[0].addr)
		ws[0] = restart(bin, ws[0], "-worker", "-log-level", "error",
			"-chaos-drop-rate", "0.15", "-chaos-slow-ms", "10", "-chaos-seed", "99")
	}()

	benches := []string{"compress", "li", "gcc", "perl", "mgrid"}
	ports := []string{"bank-4", "lbic-4x2", "true-2"}
	c := client.New(coord.addr)

	type res struct {
		d  time.Duration
		ok bool
	}
	results := make([]res, reqs)
	var wg sync.WaitGroup
	sem := make(chan struct{}, conc)
	startAt := time.Now()
	for i := 0; i < reqs; i++ {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int) {
			defer func() { wg.Done(); <-sem }()
			req := client.SimulateRequest{
				Benchmark: benches[i%len(benches)],
				Port:      client.Port(ports[(i/len(benches))%len(ports)]),
				// Distinct budgets defeat the caches: every request is real work.
				Insts: insts + uint64(i),
			}
			t0 := time.Now()
			_, err := c.Simulate(ctx, req)
			results[i] = res{time.Since(t0), err == nil}
			if err != nil {
				fmt.Fprintf(os.Stderr, "clusterchaos: request %d: %v\n", i, err)
			}
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(startAt)

	var lat []float64
	failed := 0
	for _, r := range results {
		if !r.ok {
			failed++
			continue
		}
		lat = append(lat, float64(r.d.Microseconds())/1000)
	}
	if len(lat) == 0 {
		log.Fatal("clusterchaos: every drill request failed")
	}
	sort.Float64s(lat)
	pct := func(p float64) float64 { return lat[int(p*float64(len(lat)-1))] }

	cst, err := c.Cluster(ctx)
	if err != nil {
		log.Fatalf("clusterchaos: /v1/cluster: %v", err)
	}
	doc := benchDoc{
		Schema:   "lbic-cluster-bench/v1",
		Workers:  nWorkers,
		Requests: reqs,
		Failed:   failed,
		Chaos:    chaos,
		ElapsedS: elapsed.Seconds(),
		Rps:      float64(reqs-failed) / elapsed.Seconds(),
		LatencyMS: map[string]float64{
			"p50": pct(0.50), "p95": pct(0.95), "p99": pct(0.99), "max": lat[len(lat)-1],
		},
		Cluster: cst,
	}
	f, err := os.Create(out)
	if err != nil {
		log.Fatalf("clusterchaos: %v", err)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		log.Fatalf("clusterchaos: writing %s: %v", out, err)
	}
	if err := f.Close(); err != nil {
		log.Fatalf("clusterchaos: %v", err)
	}
	fmt.Printf("clusterchaos: drill ok — %d/%d served under chaos (p50 %.1fms p95 %.1fms, %d retries, %d hedges, %d fell back locally) -> %s\n",
		reqs-failed, reqs, doc.LatencyMS["p50"], doc.LatencyMS["p95"], cst.Retries, cst.Hedges, cst.Unavailable, out)
	if failed > 0 {
		log.Fatalf("clusterchaos: %d of %d requests failed under chaos — robustness story broken", failed, reqs)
	}
}
