// Command lbicdsmoke is the CI smoke test for lbicd: against a running
// server it requests one simulation through the client package, runs the
// same configuration directly in-process, and fails unless the served
// report is byte-identical to the direct one. A second identical request
// must then be served from the result cache (no new cell execution).
//
// It then exercises the observability surface: a 2×2 traced sweep whose
// exported span tree must validate (single job root, every span reaching
// it, simulate spans carrying cycles and trace-cache attribution), and a
// /metrics scrape that must be valid Prometheus text exposition with
// nonzero request counters. With -trace-artifact the sweep's span JSONL is
// written there, for upload as a CI workflow artifact.
//
//	lbicd -addr 127.0.0.1:8329 &
//	lbicdsmoke -addr http://127.0.0.1:8329 -trace-artifact job-trace.jsonl
package main

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"

	"lbic"
	"lbic/client"
	"lbic/internal/metrics"
)

func main() {
	var (
		addr          = flag.String("addr", "http://127.0.0.1:8329", "lbicd base URL")
		bench         = flag.String("bench", "compress", "benchmark to request")
		port          = flag.String("port", "lbic-4x2", "port organization name")
		insts         = flag.Uint64("insts", 100_000, "instruction budget")
		wait          = flag.Duration("wait", 15*time.Second, "how long to wait for the server to come up")
		traceArtifact = flag.String("trace-artifact", "", "write the traced sweep's span JSONL here (for CI artifact upload)")
	)
	flag.Parse()
	ctx := context.Background()
	c := client.New(*addr)

	deadline := time.Now().Add(*wait)
	for {
		if err := c.Healthz(ctx); err == nil {
			break
		} else if time.Now().After(deadline) {
			log.Fatalf("lbicdsmoke: server at %s not healthy within %v: %v", *addr, *wait, err)
		}
		time.Sleep(200 * time.Millisecond)
	}

	req := client.SimulateRequest{Benchmark: *bench, Port: client.Port(*port), Insts: *insts}
	served, err := c.Simulate(ctx, req)
	if err != nil {
		log.Fatalf("lbicdsmoke: /v1/simulate: %v", err)
	}

	prog, err := lbic.BuildBenchmark(*bench)
	if err != nil {
		log.Fatal(err)
	}
	cfg := lbic.DefaultConfig()
	cfg.Port, err = lbic.ParsePortName(*port)
	if err != nil {
		log.Fatal(err)
	}
	cfg.MaxInsts = *insts
	res, err := lbic.Simulate(prog, cfg)
	if err != nil {
		log.Fatalf("lbicdsmoke: direct Simulate: %v", err)
	}
	var direct bytes.Buffer
	if err := lbic.NewReport(res).WriteJSON(&direct); err != nil {
		log.Fatal(err)
	}
	if !bytes.Equal(served, direct.Bytes()) {
		os.Stderr.WriteString("--- served ---\n")
		os.Stderr.Write(served)
		os.Stderr.WriteString("--- direct ---\n")
		os.Stderr.Write(direct.Bytes())
		log.Fatalf("lbicdsmoke: served report (%d bytes) differs from direct report (%d bytes)",
			len(served), direct.Len())
	}

	before, err := c.Metrics(ctx)
	if err != nil {
		log.Fatalf("lbicdsmoke: /metrics: %v", err)
	}
	again, err := c.Simulate(ctx, req)
	if err != nil {
		log.Fatalf("lbicdsmoke: repeat /v1/simulate: %v", err)
	}
	if !bytes.Equal(again, served) {
		log.Fatalf("lbicdsmoke: repeated request returned different bytes")
	}
	after, err := c.Metrics(ctx)
	if err != nil {
		log.Fatalf("lbicdsmoke: /metrics: %v", err)
	}
	cellsBefore, _ := client.CounterValue(before, "server.cells_executed")
	cellsAfter, _ := client.CounterValue(after, "server.cells_executed")
	if cellsAfter != cellsBefore {
		log.Fatalf("lbicdsmoke: repeat request executed %d new cells (want cache hit)", cellsAfter-cellsBefore)
	}
	hits, _ := client.CounterValue(after, "resultcache.hits")
	fmt.Printf("lbicdsmoke: ok (%d report bytes byte-identical; repeat served from cache, %d result-cache hits)\n",
		len(served), hits)

	smokeTrace(ctx, c, *insts, *traceArtifact)
	smokeMetrics(*addr)
}

// smokeTrace runs a 2×2 sweep (ports chosen to not collide with the earlier
// simulate call's cell) and validates the exported span tree.
func smokeTrace(ctx context.Context, c *client.Client, insts uint64, artifact string) {
	st, err := c.Sweep(ctx, client.SweepRequest{
		Benchmarks: []string{"compress", "li"},
		Ports:      []client.PortSpec{client.Port("bank-4"), client.Port("true-2")},
		Insts:      insts,
	})
	if err != nil {
		log.Fatalf("lbicdsmoke: /v1/sweep: %v", err)
	}
	if _, err := c.Wait(ctx, st.ID); err != nil {
		log.Fatalf("lbicdsmoke: waiting for %s: %v", st.ID, err)
	}
	h, spans, err := c.JobTrace(ctx, st.ID)
	if err != nil {
		log.Fatalf("lbicdsmoke: fetching trace for %s: %v", st.ID, err)
	}
	if _, err := lbic.ValidateTraceTree(spans, true); err != nil {
		log.Fatalf("lbicdsmoke: span tree for %s invalid: %v", st.ID, err)
	}
	simSpans := 0
	for _, sp := range spans {
		if sp.Open {
			log.Fatalf("lbicdsmoke: span %q still open in finished job %s", sp.Name, st.ID)
		}
		if !strings.HasPrefix(sp.Name, "simulate ") {
			continue
		}
		simSpans++
		if sp.Attrs["cycles"] == nil {
			log.Fatalf("lbicdsmoke: simulate span %q has no cycles attr: %v", sp.Name, sp.Attrs)
		}
		if tc, _ := sp.Attrs["trace_cache"].(string); tc != "hit" && tc != "miss" {
			log.Fatalf("lbicdsmoke: simulate span %q trace_cache = %q, want hit or miss", sp.Name, sp.Attrs["trace_cache"])
		}
	}
	if simSpans != st.Total {
		log.Fatalf("lbicdsmoke: %d simulate spans for %d cells", simSpans, st.Total)
	}
	if artifact != "" {
		f, err := os.Create(artifact)
		if err != nil {
			log.Fatalf("lbicdsmoke: %v", err)
		}
		if err := lbic.WriteTraceJSONL(f, h.Name, h.EpochUnixNS, spans); err != nil {
			log.Fatalf("lbicdsmoke: writing %s: %v", artifact, err)
		}
		if err := f.Close(); err != nil {
			log.Fatalf("lbicdsmoke: %v", err)
		}
	}
	fmt.Printf("lbicdsmoke: trace ok (job %s: %d spans, root %q, %d simulate spans attributed)\n",
		st.ID, len(spans), spans[0].Name, simSpans)
}

// smokeMetrics scrapes /metrics and fails unless it is valid Prometheus text
// exposition with a nonzero request counter.
func smokeMetrics(addr string) {
	resp, err := http.Get(addr + "/metrics")
	if err != nil {
		log.Fatalf("lbicdsmoke: scraping /metrics: %v", err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		log.Fatalf("lbicdsmoke: /metrics Content-Type = %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		log.Fatalf("lbicdsmoke: reading /metrics: %v", err)
	}
	samples, err := metrics.ValidateExposition(bytes.NewReader(body))
	if err != nil {
		log.Fatalf("lbicdsmoke: /metrics is not valid exposition format: %v", err)
	}
	requests := 0.0
	for _, line := range strings.Split(string(body), "\n") {
		if !strings.HasPrefix(line, "server_requests_total") {
			continue
		}
		f := strings.Fields(line)
		v, err := strconv.ParseFloat(f[len(f)-1], 64)
		if err != nil {
			log.Fatalf("lbicdsmoke: parsing %q: %v", line, err)
		}
		requests += v
	}
	if requests == 0 {
		log.Fatalf("lbicdsmoke: server_requests_total is zero after a full smoke run")
	}
	fmt.Printf("lbicdsmoke: metrics ok (%d samples valid, %.0f requests counted)\n", samples, requests)
}
