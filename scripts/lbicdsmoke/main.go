// Command lbicdsmoke is the CI smoke test for lbicd: against a running
// server it requests one simulation through the client package, runs the
// same configuration directly in-process, and fails unless the served
// report is byte-identical to the direct one. A second identical request
// must then be served from the result cache (no new cell execution).
//
//	lbicd -addr 127.0.0.1:8329 &
//	lbicdsmoke -addr http://127.0.0.1:8329
package main

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"lbic"
	"lbic/client"
)

func main() {
	var (
		addr  = flag.String("addr", "http://127.0.0.1:8329", "lbicd base URL")
		bench = flag.String("bench", "compress", "benchmark to request")
		port  = flag.String("port", "lbic-4x2", "port organization name")
		insts = flag.Uint64("insts", 100_000, "instruction budget")
		wait  = flag.Duration("wait", 15*time.Second, "how long to wait for the server to come up")
	)
	flag.Parse()
	ctx := context.Background()
	c := client.New(*addr)

	deadline := time.Now().Add(*wait)
	for {
		if err := c.Healthz(ctx); err == nil {
			break
		} else if time.Now().After(deadline) {
			log.Fatalf("lbicdsmoke: server at %s not healthy within %v: %v", *addr, *wait, err)
		}
		time.Sleep(200 * time.Millisecond)
	}

	req := client.SimulateRequest{Benchmark: *bench, Port: client.Port(*port), Insts: *insts}
	served, err := c.Simulate(ctx, req)
	if err != nil {
		log.Fatalf("lbicdsmoke: /v1/simulate: %v", err)
	}

	prog, err := lbic.BuildBenchmark(*bench)
	if err != nil {
		log.Fatal(err)
	}
	cfg := lbic.DefaultConfig()
	cfg.Port, err = lbic.ParsePortName(*port)
	if err != nil {
		log.Fatal(err)
	}
	cfg.MaxInsts = *insts
	res, err := lbic.Simulate(prog, cfg)
	if err != nil {
		log.Fatalf("lbicdsmoke: direct Simulate: %v", err)
	}
	var direct bytes.Buffer
	if err := lbic.NewReport(res).WriteJSON(&direct); err != nil {
		log.Fatal(err)
	}
	if !bytes.Equal(served, direct.Bytes()) {
		os.Stderr.WriteString("--- served ---\n")
		os.Stderr.Write(served)
		os.Stderr.WriteString("--- direct ---\n")
		os.Stderr.Write(direct.Bytes())
		log.Fatalf("lbicdsmoke: served report (%d bytes) differs from direct report (%d bytes)",
			len(served), direct.Len())
	}

	before, err := c.Metrics(ctx)
	if err != nil {
		log.Fatalf("lbicdsmoke: /metrics: %v", err)
	}
	again, err := c.Simulate(ctx, req)
	if err != nil {
		log.Fatalf("lbicdsmoke: repeat /v1/simulate: %v", err)
	}
	if !bytes.Equal(again, served) {
		log.Fatalf("lbicdsmoke: repeated request returned different bytes")
	}
	after, err := c.Metrics(ctx)
	if err != nil {
		log.Fatalf("lbicdsmoke: /metrics: %v", err)
	}
	cellsBefore, _ := client.CounterValue(before, "server.cells_executed")
	cellsAfter, _ := client.CounterValue(after, "server.cells_executed")
	if cellsAfter != cellsBefore {
		log.Fatalf("lbicdsmoke: repeat request executed %d new cells (want cache hit)", cellsAfter-cellsBefore)
	}
	hits, _ := client.CounterValue(after, "resultcache.hits")
	fmt.Printf("lbicdsmoke: ok (%d report bytes byte-identical; repeat served from cache, %d result-cache hits)\n",
		len(served), hits)
}
