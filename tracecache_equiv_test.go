package lbic_test

import (
	"bytes"
	"testing"

	"lbic"
)

// equivPorts is every port organization the simulator models; the replay
// equivalence below must hold for each of them.
func equivPorts() []lbic.PortConfig {
	return []lbic.PortConfig{
		lbic.IdealPort(2),
		lbic.ReplicatedPort(2),
		lbic.VirtualPort(2),
		lbic.BankedPort(4),
		lbic.BankedSQPort(4),
		lbic.MultiPortedBanksPort(2, 2),
		lbic.LBICPort(4, 2),
		{Kind: lbic.LBIC, Banks: 4, LinePorts: 2, Greedy: true},
	}
}

// reportBytes renders a result's full machine-readable report — every
// counter, histogram, and gauge — for byte-level comparison. The trace-cache
// snapshot is cleared first: it describes the shared cache, not the run, and
// legitimately differs between a live and a replayed run.
func reportBytes(t *testing.T, res lbic.Result) []byte {
	t.Helper()
	res.TraceCache = nil
	var buf bytes.Buffer
	if err := lbic.NewReport(res).WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestTraceReplayMatchesLive is the trace cache's load-bearing property: a
// recorded-then-replayed stream must drive the simulator to a byte-identical
// report — cycles, stall stack, histograms, gauges, port statistics — as the
// live emulator, for every port organization. The subtests run in parallel
// against one shared cache, so under -race this also exercises the
// singleflight recording path.
func TestTraceReplayMatchesLive(t *testing.T) {
	prog, err := lbic.BuildBenchmark("compress")
	if err != nil {
		t.Fatal(err)
	}
	const insts = 30_000
	tc := lbic.NewTraceCache(0)
	orgs := equivPorts()
	for _, port := range orgs {
		t.Run(port.Name(), func(t *testing.T) {
			t.Parallel()
			cfg := lbic.DefaultConfig()
			cfg.Port = port
			cfg.MaxInsts = insts
			live, err := lbic.Simulate(prog, cfg)
			if err != nil {
				t.Fatal(err)
			}
			cfg.Trace = tc
			recorded, err := lbic.Simulate(prog, cfg)
			if err != nil {
				t.Fatal(err)
			}
			replayed, err := lbic.Simulate(prog, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if recorded.TraceCache == nil || replayed.TraceCache == nil {
				t.Error("cached runs carry no trace-cache snapshot")
			}
			want := reportBytes(t, live)
			if got := reportBytes(t, recorded); !bytes.Equal(want, got) {
				t.Errorf("first cached run diverges from live run:\nlive:   %s\ncached: %s",
					firstDiff(want, got), firstDiff(got, want))
			}
			if got := reportBytes(t, replayed); !bytes.Equal(want, got) {
				t.Errorf("replayed run diverges from live run:\nlive:     %s\nreplayed: %s",
					firstDiff(want, got), firstDiff(got, want))
			}
		})
	}
	t.Cleanup(func() {
		// One program at one budget: exactly one recording, every other
		// request a hit, no matter how the parallel subtests interleaved.
		s := tc.Stats()
		if s.Records != 1 {
			t.Errorf("cache recorded %d times, want 1", s.Records)
		}
		if want := uint64(2*len(orgs) - 1); s.Hits != want {
			t.Errorf("cache served %d hits, want %d", s.Hits, want)
		}
		if s.RecordFailures != 0 || s.Evictions != 0 {
			t.Errorf("unexpected failures/evictions: %+v", s)
		}
	})
}

// firstDiff returns a window of a around the first byte where a and b differ.
func firstDiff(a, b []byte) []byte {
	i := 0
	for i < len(a) && i < len(b) && a[i] == b[i] {
		i++
	}
	lo := i - 40
	if lo < 0 {
		lo = 0
	}
	hi := i + 40
	if hi > len(a) {
		hi = len(a)
	}
	return a[lo:hi]
}

// TestTraceReplayVerifiedRunsStayLive: Config.Verify needs the live machine,
// so a verified run must ignore the cache and still pass its oracle.
func TestTraceReplayVerifiedRunsStayLive(t *testing.T) {
	prog, err := lbic.BuildBenchmark("li")
	if err != nil {
		t.Fatal(err)
	}
	cfg := lbic.DefaultConfig()
	cfg.Port = lbic.LBICPort(4, 2)
	cfg.MaxInsts = 10_000
	cfg.Trace = lbic.NewTraceCache(0)
	cfg.Verify = true
	res, err := lbic.Simulate(prog, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Verify == nil {
		t.Fatal("verified run carries no verification summary")
	}
	if res.TraceCache != nil {
		t.Error("verified run replayed from the trace cache")
	}
	if s := cfg.Trace.Stats(); s.Records != 0 || s.Hits != 0 {
		t.Errorf("verified run touched the trace cache: %+v", s)
	}
}
