package lbic

// This file is the batched (vectorized) front end of the simulator: one
// dynamic instruction stream driving K independent machine configurations in
// loose lockstep. Every table in the paper sweeps the same reference stream
// across many port organizations; the scalar API decodes (or emulates) that
// stream once per cell, so a K-wide sweep pays K identical passes over
// identical bytes. SimulateBatch pays one: the stream feeds a
// tracecache.SharedCursor, each lane gets a LaneReader over it, and
// cpu.RunLanes bursts the lanes through the shared decode window. Each
// lane's Result is byte-identical to the scalar path — the lanes run the
// exact scalar step loop over the exact scalar record sequence.

import (
	"context"
	"fmt"

	"lbic/internal/cpu"
	"lbic/internal/emu"
	"lbic/internal/oracle"
	"lbic/internal/trace"
	"lbic/internal/tracecache"
	"lbic/internal/tracing"
)

// batchWindow is the shared cursor's decode window: two scheduler chunks, so
// the lane at the frontier never laps the lane that has not run this round.
const batchWindow = 2 * cpu.LaneChunk

// checkBatchConfigs validates the batch-wide invariants: at least one lane,
// and one shared positive instruction budget. Equal budgets are what let a
// live source (emulator or generator) stop at exactly the right instruction
// for every lane — including a Verify lane's final-memory check.
func checkBatchConfigs(name string, cfgs []Config) (uint64, error) {
	if len(cfgs) == 0 {
		return 0, fmt.Errorf("lbic: batch of %q has no lanes", name)
	}
	insts := cfgs[0].MaxInsts
	if insts == 0 {
		return 0, fmt.Errorf("lbic: batch of %q needs a positive shared MaxInsts", name)
	}
	for i, cfg := range cfgs {
		if cfg.MaxInsts != insts {
			return 0, fmt.Errorf("lbic: batch of %q mixes instruction budgets (lane 0 %d, lane %d %d)",
				name, insts, i, cfg.MaxInsts)
		}
	}
	return insts, nil
}

// runBatch wires one sim per configuration onto lane readers of a shared
// cursor over src, runs the lanes, and assembles per-lane results. machine
// is the live emulator behind src when there is one (Verify lanes finish
// against its memory); tcache is the cache src replays from, if any.
func runBatch(ctx context.Context, verb, name string, src trace.Stream, machine *emu.Machine,
	tcache *TraceCache, prog *Program, cfgs []Config) ([]Result, []error, error) {
	cur := tracecache.NewSharedCursor(src, batchWindow)
	if machine == nil {
		// Replayed and synthetic sources may be read ahead freely; only a
		// live emulator must be drawn exactly as far as the lanes consume.
		cur.SetBatchFill(cpu.LaneChunk)
	}
	sims := make([]*sim, len(cfgs))
	cores := make([]*cpu.Core, len(cfgs))
	for i, cfg := range cfgs {
		s, err := newSim(cfg)
		if err != nil {
			return nil, nil, fmt.Errorf("lbic: batch lane %d (%s): %w", i, cfg.Port.Name(), err)
		}
		s.machine = machine
		s.tcache = tcache
		if err := s.wireCore(cur.NewLaneReader(), cfg); err != nil {
			return nil, nil, fmt.Errorf("lbic: batch lane %d (%s): %w", i, cfg.Port.Name(), err)
		}
		if cfg.Verify {
			s.check = oracle.NewChecker(prog, s.arb)
			s.core.SetVerifier(s.check)
		}
		sims[i] = s
		cores[i] = s.core
	}
	laneErrs := cpu.RunLanes(ctx, cores)
	results := make([]Result, len(cfgs))
	for i, s := range sims {
		if laneErrs[i] != nil {
			laneErrs[i] = fmt.Errorf("lbic: %s %q on %s: %w", verb, name, cfgs[i].Port.Name(), laneErrs[i])
			continue
		}
		if err := s.finishVerify(true); err != nil {
			laneErrs[i] = fmt.Errorf("lbic: %s %q on %s: %w", verb, name, cfgs[i].Port.Name(), err)
			continue
		}
		results[i] = s.result(name, cfgs[i], s.core.Stats())
	}
	return results, laneErrs, nil
}

// laneSpans opens one "simulate <name>" child span per lane (siblings under
// the caller's batch span) and returns a closer that stamps each lane's
// outcome, so a traced batched sweep still accounts simulation down to
// individual runs with the attributes observability consumers rely on.
func laneSpans(ctx context.Context, name, traceCache string, cfgs []Config) (func([]Result, []error), []*tracing.Span) {
	spans := make([]*tracing.Span, len(cfgs))
	for i, cfg := range cfgs {
		_, sp := tracing.Start(ctx, "simulate "+name)
		sp.SetAttr("benchmark", name)
		sp.SetAttr("port", cfg.Port.Key())
		sp.SetAttr("lane", i)
		sp.SetAttr("trace_cache", traceCache)
		spans[i] = sp
	}
	return func(results []Result, errs []error) {
		for i, sp := range spans {
			if errs != nil && errs[i] != nil {
				sp.SetAttr("error", errs[i].Error())
			} else if results != nil {
				sp.SetAttr("cycles", results[i].Cycles)
				sp.SetAttr("insts", results[i].Insts)
				sp.SetAttr("ipc", results[i].IPC)
			}
			sp.End()
		}
	}, spans
}

// SimulateBatch runs prog under every configuration in cfgs — typically the
// port axis of one sweep row — stepping all lanes off one shared stream
// cursor: one decode (or one live emulation) per dynamic instruction instead
// of one per lane. All lanes must share one positive MaxInsts. Lanes may
// set Verify (each verified lane gets its own invariant checker; the shared
// live emulator provides the final memory image), but a batch with any
// Verify lane runs the emulator rather than replaying the trace cache, like
// the scalar path does.
//
// Per-lane Results (and their serialized run reports) are byte-identical to
// SimulateContext of the same configuration. The returned slices are
// parallel to cfgs: errs[i] is nil exactly when results[i] is valid. The
// batch-level error reports setup failures (or a panic escaping any lane's
// simulation), in which case no lane completed.
func SimulateBatch(ctx context.Context, prog *Program, cfgs []Config) (results []Result, errs []error, err error) {
	insts, err := checkBatchConfigs(prog.Name, cfgs)
	if err != nil {
		return nil, nil, err
	}
	if len(cfgs) == 1 {
		res, rerr := SimulateContext(ctx, prog, cfgs[0])
		return []Result{res}, []error{rerr}, nil
	}
	ctx, span := tracing.Start(ctx, fmt.Sprintf("simulate batch %s x%d", prog.Name, len(cfgs)))
	defer span.End()
	defer recoverSimPanic(prog, &err)
	defer func() {
		if err != nil {
			span.SetAttr("error", err.Error())
		}
	}()
	span.SetAttr("benchmark", prog.Name)
	span.SetAttr("lanes", len(cfgs))
	span.SetAttr("insts", insts)

	replay := true
	tc := cfgs[0].Trace
	for _, cfg := range cfgs {
		if cfg.Trace == nil || cfg.Trace != tc || cfg.Verify {
			replay = false
			break
		}
	}
	var (
		src     trace.Stream
		machine *emu.Machine
		tcache  *TraceCache
		tcAttr  string
	)
	if replay {
		tcAttr = "miss"
		if tc.Contains(prog, insts) {
			tcAttr = "hit"
		}
		tr, rerr := tc.Recorded(ctx, prog, insts)
		if rerr != nil {
			return nil, nil, rerr
		}
		src, tcache = tr.NewReader(), tc
	} else {
		tcAttr = "off"
		machine, err = emu.New(prog)
		if err != nil {
			return nil, nil, err
		}
		src = machine
	}
	span.SetAttr("trace_cache", tcAttr)
	span.SetAttr("replayed", replay)
	finish, _ := laneSpans(ctx, prog.Name, tcAttr, cfgs)
	results, errs, err = runBatch(ctx, "simulating", prog.Name, src, machine, tcache, prog, cfgs)
	finish(results, errs)
	return results, errs, err
}

// SimulateGeneratorBatch is SimulateBatch for a synthetic generator stream:
// the generator synthesizes each dynamic instruction once and every lane
// consumes it. Verify is rejected exactly as in SimulateGenerator. Per-lane
// Results are byte-identical to SimulateGenerator of the same configuration.
func SimulateGeneratorBatch(ctx context.Context, p GenParams, cfgs []Config) (results []Result, errs []error, err error) {
	rp, err := p.Resolve()
	if err != nil {
		return nil, nil, err
	}
	name := rp.Key()
	insts, err := checkBatchConfigs(name, cfgs)
	if err != nil {
		return nil, nil, err
	}
	for i, cfg := range cfgs {
		if cfg.Verify {
			return nil, nil, fmt.Errorf("lbic: generating %q: lane %d sets Verify, which needs a live program, not a synthetic stream", name, i)
		}
	}
	if len(cfgs) == 1 {
		res, rerr := SimulateGenerator(ctx, p, cfgs[0])
		return []Result{res}, []error{rerr}, nil
	}
	ctx, span := tracing.Start(ctx, fmt.Sprintf("simulate batch %s x%d", name, len(cfgs)))
	defer span.End()
	defer func() { recoverRunPanic(name, &err, recover()) }()
	defer func() {
		if err != nil {
			span.SetAttr("error", err.Error())
		}
	}()
	span.SetAttr("benchmark", name)
	span.SetAttr("lanes", len(cfgs))
	span.SetAttr("insts", insts)
	span.SetAttr("trace_cache", "off")

	src, err := rp.Stream()
	if err != nil {
		return nil, nil, err
	}
	finish, _ := laneSpans(ctx, name, "off", cfgs)
	results, errs, err = runBatch(ctx, "generating", name, src, nil, nil, nil, cfgs)
	finish(results, errs)
	return results, errs, err
}
