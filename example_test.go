package lbic_test

import (
	"context"
	"fmt"
	"log"

	"lbic"
)

// ExampleScenarioCycles replays the paper's Figure 4c analysis: four ready
// references drain in 3, 2 and 1 cycles on the three organizations.
func ExampleScenarioCycles() {
	refs := []lbic.Ref{
		{Addr: 12*64 + 0, Store: true}, // bank 0, line 12
		{Addr: 10*64 + 32 + 4},         // bank 1, line 10
		{Addr: 10*64 + 32 + 8},         // bank 1, line 10
		{Addr: 12*64 + 12, Store: true},
	}
	for _, port := range []lbic.PortConfig{
		lbic.ReplicatedPort(2),
		lbic.BankedPort(2),
		lbic.LBICPort(2, 2),
	} {
		cycles, err := lbic.ScenarioCycles(port, refs)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s: %d\n", port.Name(), cycles)
	}
	// Output:
	// repl-2: 3
	// bank-2: 2
	// lbic-2x2: 1
}

// ExampleAssemble builds a program from assembly text and runs it
// functionally.
func ExampleAssemble() {
	prog, err := lbic.Assemble("sum", `
		.alloc data 32 8
		.word64 data 40
		.word64 data+8 2
		li r1, data
		ld r2, 0(r1)
		ld r3, 8(r1)
		add r4, r2, r3
		sd r4, 16(r1)
		halt
	`)
	if err != nil {
		log.Fatal(err)
	}
	stats, err := lbic.Characterize(context.Background(), prog, lbic.CharacterizeOptions{Insts: 100})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d instructions, %d loads, %d stores\n", stats.Insts, stats.Loads, stats.Stores)
	// Output:
	// 6 instructions, 2 loads, 1 stores
}

// ExamplePortConfig_Name shows the identifiers used throughout the tables.
func ExamplePortConfig_Name() {
	fmt.Println(lbic.IdealPort(4).Name())
	fmt.Println(lbic.ReplicatedPort(2).Name())
	fmt.Println(lbic.BankedPort(8).Name())
	fmt.Println(lbic.LBICPort(4, 2).Name())
	fmt.Println(lbic.VirtualPort(2).Name())
	// Output:
	// true-4
	// repl-2
	// bank-8
	// lbic-4x2
	// virt-2
}

// ExampleBenchmarkNames lists the ten SPEC95 stand-ins.
func ExampleBenchmarkNames() {
	for _, name := range lbic.BenchmarkNames() {
		fmt.Println(name)
	}
	// Output:
	// compress
	// gcc
	// go
	// li
	// perl
	// hydro2d
	// mgrid
	// su2cor
	// swim
	// wave5
}
