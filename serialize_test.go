package lbic_test

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"lbic"
)

// roundTripPorts is the catalogue of serializable configurations: every
// built-in kind, plus selector, greedy, and store-queue variations.
func roundTripPorts() []lbic.PortConfig {
	bankXor := lbic.BankedPort(8)
	bankXor.Selector = lbic.XorFold
	bankWord := lbic.BankedPort(4)
	bankWord.Selector = lbic.WordInterleave
	greedy := lbic.LBICPort(4, 2)
	greedy.Greedy = true
	lbicSQ := lbic.LBICPort(8, 2)
	lbicSQ.StoreQueueDepth = 4
	banksqDeep := lbic.BankedSQPort(8)
	banksqDeep.StoreQueueDepth = 6
	codedSpec := lbic.CodedPort(4, 1)
	codedSpec.Speculative = true
	codedComposed := lbic.CodedPort(8, 2)
	codedComposed.LinePorts = 2
	codedComposed.Speculative = true
	codedSQ := lbic.CodedPort(4, 2)
	codedSQ.StoreQueueDepth = 4
	return []lbic.PortConfig{
		lbic.IdealPort(1),
		lbic.IdealPort(4),
		lbic.ReplicatedPort(2),
		lbic.BankedPort(8),
		bankXor,
		bankWord,
		lbic.VirtualPort(2),
		lbic.BankedSQPort(4),
		banksqDeep,
		lbic.LBICPort(4, 2),
		greedy,
		lbicSQ,
		lbic.MultiPortedBanksPort(2, 2),
		lbic.CodedPort(4, 1),
		codedSpec,
		codedComposed,
		codedSQ,
	}
}

func TestPortConfigJSONRoundTrip(t *testing.T) {
	for _, p := range roundTripPorts() {
		raw, err := json.Marshal(p)
		if err != nil {
			t.Fatalf("%s: marshal: %v", p.Key(), err)
		}
		var back lbic.PortConfig
		if err := json.Unmarshal(raw, &back); err != nil {
			t.Fatalf("%s: unmarshal %s: %v", p.Key(), raw, err)
		}
		if !reflect.DeepEqual(back, p) {
			t.Errorf("%s: round trip %s -> %+v != %+v", p.Key(), raw, back, p)
		}
	}
}

func TestParsePortNameRoundTrip(t *testing.T) {
	for _, p := range roundTripPorts() {
		back, err := lbic.ParsePortName(p.Key())
		if err != nil {
			t.Fatalf("ParsePortName(%q): %v", p.Key(), err)
		}
		if !reflect.DeepEqual(back, p) {
			t.Errorf("ParsePortName(%q) = %+v, want %+v", p.Key(), back, p)
		}
	}
	// The alias and the display-name form (no -sq suffix) also parse.
	if p, err := lbic.ParsePortName("ideal-4"); err != nil || !reflect.DeepEqual(p, lbic.IdealPort(4)) {
		t.Errorf("ideal-4 = %+v, %v", p, err)
	}
	if p, err := lbic.ParsePortName("lbic-4x2-greedy"); err != nil || !p.Greedy {
		t.Errorf("lbic-4x2-greedy = %+v, %v", p, err)
	}
}

func TestParsePortNameErrors(t *testing.T) {
	for _, name := range []string{
		"", "bogus", "true", "true-x", "lbic-4", "lbic-4x", "mpb-2",
		"bank-8-mystery", "custom", "custom-foo", "lbic-4x2-sneaky",
		"bank-3",             // not a power of two: Validate rejects it
		"true-0",             // width must be >= 1
		"true--1",            // negative width
		"coded-4",            // missing parity dimension
		"coded-3x1",          // banks not a power of two
		"coded-4x0",          // parity banks must be >= 1
		"coded-4x3",          // parity banks must divide banks
		"coded-4x1-lb1",      // a 1-port line buffer is no line buffer
		"coded-4x1-spec-lb2", // suffixes out of canonical order
	} {
		if p, err := lbic.ParsePortName(name); err == nil {
			t.Errorf("ParsePortName(%q) = %+v, want error", name, p)
		}
	}
}

func TestPortConfigValidate(t *testing.T) {
	bad := []lbic.PortConfig{
		lbic.IdealPort(0),
		lbic.ReplicatedPort(-1),
		lbic.BankedPort(3),
		lbic.BankedPort(0),
		lbic.BankedSQPort(5),
		lbic.LBICPort(6, 2),
		lbic.LBICPort(4, 0),
		lbic.MultiPortedBanksPort(4, 0),
		lbic.MultiPortedBanksPort(3, 2),
		{Kind: lbic.PortKind(42)},
	}
	negSQ := lbic.LBICPort(4, 2)
	negSQ.StoreQueueDepth = -2
	bad = append(bad, negSQ)
	for _, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("Validate(%+v) = nil, want error", p)
		}
	}
	for _, p := range roundTripPorts() {
		if err := p.Validate(); err != nil {
			t.Errorf("Validate(%s): %v", p.Key(), err)
		}
	}
}

func TestCustomPortSerialization(t *testing.T) {
	p := lbic.CustomPort("my-arbiter", func(int) (lbic.Arbiter, error) { return nil, nil })
	if got := p.Name(); got != "custom-my-arbiter" {
		t.Errorf("Name() = %q", got)
	}
	if err := p.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
	if _, err := json.Marshal(p); err == nil {
		t.Error("marshaling a custom port should fail (factory cannot serialize)")
	}
	var back lbic.PortConfig
	if err := json.Unmarshal([]byte(`{"kind":"custom"}`), &back); err == nil {
		t.Error("unmarshaling kind custom should fail")
	}
	if _, err := lbic.ParsePortName(p.Key()); err == nil {
		t.Error("parsing a custom port name should fail")
	}
}

func TestConfigJSONRoundTrip(t *testing.T) {
	cpuCfg := lbic.DefaultCPUConfig()
	cpuCfg.FetchWidth = 16
	memCfg := lbic.DefaultMemParams()
	cfg := lbic.Config{
		Port:     lbic.LBICPort(4, 2),
		MaxInsts: 250_000,
		CPU:      &cpuCfg,
		Mem:      &memCfg,
		Verify:   true,
		// Process-local fields must not leak into the serialization.
		Trace: lbic.NewTraceCache(0),
	}
	raw, err := json.Marshal(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(raw), "Trace") || strings.Contains(string(raw), "trace") {
		t.Errorf("serialized config leaks process-local fields: %s", raw)
	}
	var back lbic.Config
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if err := back.Validate(); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back.Port, cfg.Port) || back.MaxInsts != cfg.MaxInsts || back.Verify != cfg.Verify {
		t.Errorf("round trip: %+v != %+v", back, cfg)
	}
	if back.CPU == nil || back.CPU.FetchWidth != 16 {
		t.Errorf("CPU override lost: %+v", back.CPU)
	}
	if back.Mem == nil || *back.Mem != memCfg {
		t.Errorf("Mem override lost: %+v", back.Mem)
	}
	if back.Trace != nil || back.Events != nil {
		t.Error("process-local fields must stay nil after unmarshal")
	}
}

func TestConfigValidateRejectsBadOverrides(t *testing.T) {
	cfg := lbic.DefaultConfig()
	cfg.Port = lbic.BankedPort(3)
	if err := cfg.Validate(); err == nil {
		t.Error("bad port accepted")
	}
	cfg = lbic.DefaultConfig()
	badCPU := lbic.DefaultCPUConfig()
	badCPU.FetchWidth = -1
	cfg.CPU = &badCPU
	if err := cfg.Validate(); err == nil {
		t.Error("bad CPU override accepted")
	}
}

func TestSelectorKindText(t *testing.T) {
	for _, k := range []lbic.BankSelectorKind{lbic.BitSelect, lbic.XorFold, lbic.WordInterleave} {
		raw, err := json.Marshal(k)
		if err != nil {
			t.Fatal(err)
		}
		var back lbic.BankSelectorKind
		if err := json.Unmarshal(raw, &back); err != nil {
			t.Fatal(err)
		}
		if back != k {
			t.Errorf("selector %v -> %s -> %v", k, raw, back)
		}
	}
	var k lbic.BankSelectorKind
	if err := json.Unmarshal([]byte(`"hash-o-matic"`), &k); err == nil {
		t.Error("unknown selector accepted")
	}
}
