package lbic

// This file is the public face of the lbic-trace-stream/v1 external trace
// format (see WORKLOADS.md and internal/tracecache/stream.go for the byte
// layout) and of the internal/workload generator family. Together they open
// the workload aperture beyond the ten built-in SPEC95-like kernels: any
// address trace — captured from a real program, emitted by a parameterized
// generator, or minted by the adversarial search harness — becomes a
// first-class simulation input that produces the same Result (and the same
// lbic-run-report/v1 JSON) as a built-in benchmark run.

import (
	"context"
	"fmt"
	"io"

	"lbic/internal/emu"
	"lbic/internal/tracecache"
	"lbic/internal/tracing"
	"lbic/internal/workload"
)

// TraceStreamSchema identifies the external serialized trace format written
// by WriteTraceStream and accepted by ReadTraceStream and lbicd.
const TraceStreamSchema = tracecache.StreamSchema

// Generator / stream re-exports, so applications need only this package.
type (
	// GenParams parameterizes one synthetic workload generator (see
	// Generators for the catalog). The zero value of every field selects the
	// catalog default for its kind.
	GenParams = workload.GenParams
	// GenInfo describes one generator kind in the catalog.
	GenInfo = workload.GenInfo
	// GenField describes one tunable generator parameter with its legal
	// range — the mutation surface the adversarial search harness perturbs.
	GenField = workload.GenField
)

// Generators lists the synthetic stream generator catalog: zipfian KV GETs,
// hash-join probes, pointer chasing, GC sweeps, and context-interleaved
// multiprogrammed mixes. Every generator is seeded and deterministic: the
// same GenParams produce the same instruction stream on every platform.
func Generators() []GenInfo { return workload.Generators() }

// GeneratorKinds lists the generator kind names in catalog order.
func GeneratorKinds() []string { return workload.GenKinds() }

// DefaultGeneratorParams returns the catalog defaults for a generator kind.
func DefaultGeneratorParams(kind string) (GenParams, error) {
	return workload.DefaultGenParams(kind)
}

// GeneratorFields lists the tunable parameters of a generator kind with
// their legal ranges (empty for unknown kinds).
func GeneratorFields(kind string) []GenField { return workload.GenFieldsOf(kind) }

// RecordedTrace is a finite, replayable dynamic instruction trace with a
// name, held in the same delta-coded encoding the in-process trace cache
// uses. Obtain one from RecordBenchmarkTrace, RecordGeneratorTrace, or
// ReadTraceStream; replay it with SimulateTrace; persist it with
// WriteTraceStream. A RecordedTrace is immutable and safe for concurrent
// replay.
type RecordedTrace struct {
	name string
	tr   *tracecache.Trace
}

// Name returns the trace's self-describing stream name (the benchmark name
// or generator parameter key it was recorded from, or whatever the producer
// of an imported stream chose).
func (t *RecordedTrace) Name() string { return t.name }

// Len returns the number of dynamic instructions in the trace.
func (t *RecordedTrace) Len() uint64 { return t.tr.Len() }

// SizeBytes returns the encoded size of the trace body.
func (t *RecordedTrace) SizeBytes() int64 { return t.tr.SizeBytes() }

// ValuesElided reports whether load/store data values were dropped at
// record time (generator traces always elide values; timing results are
// unaffected).
func (t *RecordedTrace) ValuesElided() bool { return t.tr.ValuesElided() }

// RecordBenchmarkTrace executes prog on the live emulator and records its
// first insts dynamic instructions as a replayable trace named after the
// program. insts must be positive: the built-in kernels are non-halting
// steady-state loops, so an unbounded recording would never finish.
func RecordBenchmarkTrace(prog *Program, insts uint64) (t *RecordedTrace, err error) {
	if insts == 0 {
		return nil, fmt.Errorf("lbic: recording %q: instruction budget must be positive", prog.Name)
	}
	defer func() { recoverRunPanic(prog.Name, &err, recover()) }()
	m, err := emu.New(prog)
	if err != nil {
		return nil, err
	}
	return &RecordedTrace{name: prog.Name, tr: tracecache.RecordWith(m, tracecache.RecordOptions{MaxInsts: insts})}, nil
}

// RecordGeneratorTrace materializes the first insts instructions of a
// generator stream as a replayable trace named by the resolved parameter
// key (GenParams.Key), with data values elided — generators synthesize
// addresses, not data, and timing is value-independent. insts must be
// positive; generator streams never end on their own.
func RecordGeneratorTrace(p GenParams, insts uint64) (*RecordedTrace, error) {
	rp, err := p.Resolve()
	if err != nil {
		return nil, err
	}
	if insts == 0 {
		return nil, fmt.Errorf("lbic: recording %q: instruction budget must be positive", rp.Key())
	}
	s, err := rp.Stream()
	if err != nil {
		return nil, err
	}
	return &RecordedTrace{
		name: rp.Key(),
		tr:   tracecache.RecordWith(s, tracecache.RecordOptions{MaxInsts: insts, OmitValues: true}),
	}, nil
}

// WriteTraceStream serializes t to w in the lbic-trace-stream/v1 format: a
// self-describing header (magic, flags, stream name, static instruction
// table), the delta-coded dynamic section, and a CRC-32 footer. The encoding
// is canonical — re-encoding a decoded trace is byte-identical.
func WriteTraceStream(w io.Writer, t *RecordedTrace) error {
	return tracecache.WriteStream(w, t.name, t.tr)
}

// ReadTraceStream parses one lbic-trace-stream/v1 stream from r. It fully
// validates the input — header bounds, static-table invariants, dynamic
// section framing, CRC footer, and absence of trailing bytes — so untrusted
// streams (uploads to lbicd, fuzzer output) are safe to load; malformed
// input yields an error wrapping tracecache.ErrBadStream, never a panic.
func ReadTraceStream(r io.Reader) (*RecordedTrace, error) {
	name, tr, err := tracecache.ReadStream(r)
	if err != nil {
		return nil, err
	}
	return &RecordedTrace{name: name, tr: tr}, nil
}

// SimulateTrace replays a recorded trace through the full timing model —
// the same processor core, cache hierarchy, and port arbiter a benchmark
// run uses — and returns the measured Result with Benchmark set to the
// trace's name. cfg.MaxInsts of 0 runs to the end of the trace; a smaller
// budget truncates it. cfg.Trace is ignored (the stream is already a
// recording) and cfg.Verify is rejected: the invariant oracle needs the
// live machine's memory image, which a bare address trace does not carry.
//
// Replaying a trace recorded from a generator yields a Result — and a
// run-report serialization — byte-identical to simulating the generator's
// stream directly via SimulateGenerator at the same budget.
func SimulateTrace(ctx context.Context, t *RecordedTrace, cfg Config) (res Result, err error) {
	ctx, span := tracing.Start(ctx, "simulate trace "+t.name)
	defer span.End()
	defer func() { recoverRunPanic(t.name, &err, recover()) }()
	defer func() {
		if err != nil {
			span.SetAttr("error", err.Error())
		}
	}()
	span.SetAttr("benchmark", t.name)
	span.SetAttr("port", cfg.Port.Key())
	span.SetAttr("trace_len", t.Len())
	if cfg.Verify {
		return Result{}, fmt.Errorf("lbic: replaying %q: Verify needs a live program, not a recorded trace", t.name)
	}
	// Clamp the budget to the trace: the core then stops at an explicit
	// instruction count instead of discovering stream end one fetch late,
	// which keeps stall accounting — and therefore the serialized run
	// report — byte-identical to a direct run at the same budget.
	if cfg.MaxInsts == 0 || cfg.MaxInsts > t.Len() {
		cfg.MaxInsts = t.Len()
	}
	s, err := newSim(cfg)
	if err != nil {
		return Result{}, err
	}
	if err := s.wireCore(t.tr.NewReader(), cfg); err != nil {
		return Result{}, err
	}
	st, err := s.core.RunContext(ctx)
	if err != nil {
		return Result{}, fmt.Errorf("lbic: replaying %q on %s: %w", t.name, cfg.Port.Name(), err)
	}
	res = s.result(t.name, cfg, st)
	span.SetAttr("cycles", res.Cycles)
	span.SetAttr("ipc", res.IPC)
	return res, nil
}

// SimulateGenerator runs a synthetic generator stream through the full
// timing model, with Benchmark set to the resolved parameter key. Generator
// streams never end, so cfg.MaxInsts must be positive. cfg.Verify is
// rejected for the same reason as SimulateTrace. The Result is
// byte-identical (as a serialized run report) to recording the generator at
// the same budget and replaying it with SimulateTrace.
func SimulateGenerator(ctx context.Context, p GenParams, cfg Config) (res Result, err error) {
	rp, err := p.Resolve()
	if err != nil {
		return Result{}, err
	}
	name := rp.Key()
	ctx, span := tracing.Start(ctx, "simulate gen "+name)
	defer span.End()
	defer func() { recoverRunPanic(name, &err, recover()) }()
	defer func() {
		if err != nil {
			span.SetAttr("error", err.Error())
		}
	}()
	span.SetAttr("benchmark", name)
	span.SetAttr("port", cfg.Port.Key())
	if cfg.Verify {
		return Result{}, fmt.Errorf("lbic: generating %q: Verify needs a live program, not a synthetic stream", name)
	}
	if cfg.MaxInsts == 0 {
		return Result{}, fmt.Errorf("lbic: generating %q: generator streams never end; set Config.MaxInsts", name)
	}
	stream, err := rp.Stream()
	if err != nil {
		return Result{}, err
	}
	s, err := newSim(cfg)
	if err != nil {
		return Result{}, err
	}
	if err := s.wireCore(stream, cfg); err != nil {
		return Result{}, err
	}
	st, err := s.core.RunContext(ctx)
	if err != nil {
		return Result{}, fmt.Errorf("lbic: generating %q on %s: %w", name, cfg.Port.Name(), err)
	}
	res = s.result(name, cfg, st)
	span.SetAttr("cycles", res.Cycles)
	span.SetAttr("ipc", res.IPC)
	return res, nil
}

// PortConflicts returns the run's total same-bank conflict count — requests
// stalled because their bank (or line buffer) was busy — uniformly across
// the banked organizations (Banked, BankedStoreQueue, MultiPortedBanks,
// LBIC). Organizations without banks (Ideal, Replicated, Virtual) report 0.
func (r *Result) PortConflicts() uint64 {
	if r.Metrics != nil {
		if h := r.Metrics.FindHistogram("port.bank_conflicts"); h != nil {
			return h.Count()
		}
	}
	return r.BankConflicts
}

// PortAccesses returns the run's total granted bank accesses, the
// denominator of PortConflictRate. 0 for organizations without banks.
func (r *Result) PortAccesses() uint64 {
	if r.Metrics != nil {
		if h := r.Metrics.FindHistogram("port.bank_accesses"); h != nil {
			return h.Count()
		}
	}
	return 0
}

// PortConflictRate returns conflicts per granted access (the §3 conflict
// characterization as a rate), or 0 when the organization has no banks.
func (r *Result) PortConflictRate() float64 {
	acc := r.PortAccesses()
	if acc == 0 {
		return 0
	}
	return float64(r.PortConflicts()) / float64(acc)
}
