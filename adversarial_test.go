package lbic_test

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"lbic"
	"lbic/internal/advsearch"
)

// loadAdversarialMetas discovers the checked-in adversarial workload corpus
// (testdata/adversarial/*.meta.json).
func loadAdversarialMetas(t *testing.T) []advsearch.Meta {
	t.Helper()
	paths, err := filepath.Glob(filepath.Join("testdata", "adversarial", "*.meta.json"))
	if err != nil {
		t.Fatal(err)
	}
	metas := make([]advsearch.Meta, len(paths))
	for i, p := range paths {
		if metas[i], err = advsearch.LoadMeta(p); err != nil {
			t.Fatal(err)
		}
	}
	return metas
}

// TestAdversarialCorpusPresent pins the acceptance floor: the repository
// carries at least two search-discovered adversarial streams.
func TestAdversarialCorpusPresent(t *testing.T) {
	if n := len(loadAdversarialMetas(t)); n < 2 {
		t.Fatalf("adversarial corpus has %d workloads, want >= 2", n)
	}
}

// TestAdversarialReplayByteIdentical is the permanent-regression contract:
// replaying each checked-in .lbictrace on its target port reproduces the
// stored .report.json byte-for-byte, and the stream itself is re-derivable
// from the recorded generator parameters. Any drift in the generators, the
// trace codec, the timing core, or the report serialization fails here.
func TestAdversarialReplayByteIdentical(t *testing.T) {
	for _, m := range loadAdversarialMetas(t) {
		m := m
		t.Run(m.Name, func(t *testing.T) {
			t.Parallel()
			dir := filepath.Join("testdata", "adversarial")
			raw, err := os.ReadFile(filepath.Join(dir, m.Name+".lbictrace"))
			if err != nil {
				t.Fatal(err)
			}
			rt, err := lbic.ReadTraceStream(bytes.NewReader(raw))
			if err != nil {
				t.Fatal(err)
			}
			if rt.Name() != m.Params.Key() {
				t.Errorf("stream name %q != params key %q", rt.Name(), m.Params.Key())
			}

			// Provenance: the parameters in the meta record regenerate the
			// checked-in stream exactly.
			regen, err := lbic.RecordGeneratorTrace(m.Params, m.Insts)
			if err != nil {
				t.Fatal(err)
			}
			var reenc bytes.Buffer
			if err := lbic.WriteTraceStream(&reenc, regen); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(raw, reenc.Bytes()) {
				t.Error("re-generating from meta params does not reproduce the checked-in stream")
			}

			// Regression: replaying the stream reproduces the stored report.
			port, err := lbic.ParsePortName(m.Port)
			if err != nil {
				t.Fatal(err)
			}
			cfg := lbic.DefaultConfig()
			cfg.Port = port
			cfg.MaxInsts = 0 // whole trace
			res, err := lbic.SimulateTrace(context.Background(), rt, cfg)
			if err != nil {
				t.Fatal(err)
			}
			want, err := os.ReadFile(filepath.Join(dir, m.Name+".report.json"))
			if err != nil {
				t.Fatal(err)
			}
			var got bytes.Buffer
			if err := lbic.NewReport(res).WriteJSON(&got); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got.Bytes(), want) {
				t.Errorf("replayed report differs from stored %s.report.json (%d vs %d bytes); regenerate deliberately with scripts/advsearch",
					m.Name, got.Len(), len(want))
			}
			if rate := res.PortConflictRate(); rate < m.Score.ConflictRate*0.999 || rate > m.Score.ConflictRate*1.001 {
				t.Errorf("replayed conflict rate %.4f drifted from minted score %.4f", rate, m.Score.ConflictRate)
			}
		})
	}
}

// TestAdversarialBeatsEveryKernel is the discovery claim: each minted
// stream's same-bank conflict rate on its target organization exceeds that
// of every synthetic SPEC95 kernel at the same instruction budget. The
// search genuinely found pressure the paper's workload suite does not
// exercise.
func TestAdversarialBeatsEveryKernel(t *testing.T) {
	if testing.Short() {
		t.Skip("10-kernel sweep per artifact in -short mode")
	}
	for _, m := range loadAdversarialMetas(t) {
		m := m
		t.Run(m.Name, func(t *testing.T) {
			t.Parallel()
			port, err := lbic.ParsePortName(m.Port)
			if err != nil {
				t.Fatal(err)
			}
			advRate := m.Score.ConflictRate
			if advRate <= 0 {
				t.Fatalf("minted score has no conflicts (rate %f)", advRate)
			}
			for _, name := range lbic.BenchmarkNames() {
				prog, err := lbic.BuildBenchmark(name)
				if err != nil {
					t.Fatal(err)
				}
				cfg := lbic.DefaultConfig()
				cfg.Port = port
				cfg.MaxInsts = m.Insts
				res, err := lbic.Simulate(prog, cfg)
				if err != nil {
					t.Fatal(err)
				}
				if rate := res.PortConflictRate(); rate >= advRate {
					t.Errorf("kernel %s conflict rate %.4f >= adversarial %.4f on %s — the stream is not adversarial",
						name, rate, advRate, m.Port)
				}
			}
		})
	}
}

// TestAdversarialMetaWellFormed keeps the corpus self-consistent: schema,
// ports, and params all parse, and the artifact triple is complete.
func TestAdversarialMetaWellFormed(t *testing.T) {
	for _, m := range loadAdversarialMetas(t) {
		if !strings.HasPrefix(m.Schema, "lbic-adversarial-meta/") {
			t.Errorf("%s: schema %q", m.Name, m.Schema)
		}
		if _, err := lbic.ParsePortName(m.Port); err != nil {
			t.Errorf("%s: port: %v", m.Name, err)
		}
		if _, err := m.Params.Resolve(); err != nil {
			t.Errorf("%s: params: %v", m.Name, err)
		}
		if m.Insts == 0 {
			t.Errorf("%s: zero insts", m.Name)
		}
		for _, suffix := range []string{".lbictrace", ".report.json"} {
			if _, err := os.Stat(filepath.Join("testdata", "adversarial", m.Name+suffix)); err != nil {
				t.Errorf("%s: missing artifact: %v", m.Name, err)
			}
		}
	}
}
