package lbic

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

func runLBIC(t *testing.T, bench string, insts uint64, mut func(*Config)) Result {
	t.Helper()
	prog, err := BuildBenchmark(bench)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.Port = LBICPort(4, 2)
	cfg.MaxInsts = insts
	if mut != nil {
		mut(&cfg)
	}
	res, err := Simulate(prog, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestResultCPIStackSumsToCycles(t *testing.T) {
	for _, port := range []PortConfig{IdealPort(2), BankedPort(4), LBICPort(4, 2)} {
		t.Run(port.Name(), func(t *testing.T) {
			res := runLBIC(t, "compress", 50_000, func(c *Config) { c.Port = port })
			var total uint64
			for _, b := range res.CPIStack() {
				total += b.Cycles
			}
			if total != res.Cycles {
				t.Errorf("CPI stack sums to %d, want Cycles = %d", total, res.Cycles)
			}
		})
	}
}

func TestReportRoundTrip(t *testing.T) {
	res := runLBIC(t, "compress", 50_000, nil)
	rep := NewReport(res)

	if rep.Schema != ReportSchema {
		t.Errorf("schema = %q", rep.Schema)
	}
	if rep.Port.PeakWidth != 8 || rep.Port.Banks != 4 || rep.Port.LinePorts != 2 {
		t.Errorf("port = %+v", rep.Port)
	}
	var cpi uint64
	for _, b := range rep.CPIStack {
		cpi += b.Cycles
	}
	if cpi != rep.Cycles {
		t.Errorf("report CPI stack sums to %d, want %d", cpi, rep.Cycles)
	}

	find := func(name string) *HistogramSnapshotCheck {
		for i := range rep.Metrics.Histograms {
			if rep.Metrics.Histograms[i].Name == name {
				return &HistogramSnapshotCheck{t, name, rep.Metrics.Histograms[i].Buckets}
			}
		}
		t.Fatalf("report has no histogram %q", name)
		return nil
	}
	find("port.bank_conflicts").NonEmpty()
	find("lbic.combine_width").NonEmpty()
	find("cpu.cpi_stack").SumIs(rep.Cycles)
	find("cpu.grants_per_cycle").SumCountIs(rep.Cycles)

	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadReport(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Cycles != rep.Cycles || back.IPC != rep.IPC || back.Benchmark != rep.Benchmark {
		t.Errorf("round trip mutated the report: %+v vs %+v", back, rep)
	}
	if len(back.Metrics.Histograms) != len(rep.Metrics.Histograms) {
		t.Errorf("round trip lost histograms: %d vs %d",
			len(back.Metrics.Histograms), len(rep.Metrics.Histograms))
	}
}

// HistogramSnapshotCheck wraps bucket assertions for TestReportRoundTrip.
type HistogramSnapshotCheck struct {
	t       *testing.T
	name    string
	buckets []uint64
}

func (h *HistogramSnapshotCheck) total() uint64 {
	var n uint64
	for _, b := range h.buckets {
		n += b
	}
	return n
}

func (h *HistogramSnapshotCheck) NonEmpty() {
	h.t.Helper()
	if h.total() == 0 {
		h.t.Errorf("histogram %q is empty", h.name)
	}
}

func (h *HistogramSnapshotCheck) SumIs(want uint64) {
	h.t.Helper()
	if got := h.total(); got != want {
		h.t.Errorf("histogram %q sums to %d, want %d", h.name, got, want)
	}
}

// SumCountIs asserts one observation per cycle (the count, not the weighted
// sum).
func (h *HistogramSnapshotCheck) SumCountIs(want uint64) {
	h.t.Helper()
	if got := h.total(); got != want {
		h.t.Errorf("histogram %q holds %d observations, want one per cycle = %d",
			h.name, got, want)
	}
}

func TestReadReportRejectsUnknownSchema(t *testing.T) {
	if _, err := ReadReport(strings.NewReader(`{"schema":"bogus/v9"}`)); err == nil {
		t.Fatal("unknown schema accepted")
	}
	if _, err := ReadReport(strings.NewReader(`not json`)); err == nil {
		t.Fatal("bad JSON accepted")
	}
}

func TestTraceSimulationCarriesMetrics(t *testing.T) {
	prog, err := BuildBenchmark("compress")
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.Port = LBICPort(4, 2)
	cfg.MaxInsts = 20_000
	var buf bytes.Buffer
	res, err := TraceSimulation(prog, cfg, &buf, TraceOptions{SkipCycles: 1 << 40})
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics == nil {
		t.Fatal("TraceSimulation result has no metrics registry")
	}
	if res.LBIC == nil {
		t.Error("TraceSimulation result has no LBIC stats")
	}
	if strings.Contains(buf.String(), "stbuf") {
		t.Error("header printed although the whole run was skipped")
	}
}

// collectEvents runs a short deterministic pattern and returns its event
// trace as JSONL.
func collectEvents(t *testing.T) []byte {
	t.Helper()
	prog, err := BuildPattern("same-line-burst")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	cfg := DefaultConfig()
	cfg.Port = LBICPort(2, 2)
	cfg.MaxInsts = 120
	sink := NewJSONLEventSink(&buf)
	cfg.Events = sink
	if _, err := Simulate(prog, cfg); err != nil {
		t.Fatal(err)
	}
	if err := sink.Err(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestEventTraceGolden(t *testing.T) {
	got := collectEvents(t)
	golden := filepath.Join("testdata", "events_same-line-burst_lbic-2x2.golden.jsonl")
	if *updateGolden {
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run `go test -run TestEventTraceGolden -update` to create it)", err)
	}
	if !bytes.Equal(got, want) {
		gl := strings.Split(string(got), "\n")
		wl := strings.Split(string(want), "\n")
		line := 0
		for line < len(gl) && line < len(wl) && gl[line] == wl[line] {
			line++
		}
		g, w := "<EOF>", "<EOF>"
		if line < len(gl) {
			g = gl[line]
		}
		if line < len(wl) {
			w = wl[line]
		}
		t.Fatalf("event trace diverges from golden at line %d:\n got: %s\nwant: %s\n(%d vs %d lines; -update to regenerate)",
			line+1, g, w, len(gl), len(wl))
	}

	// Every line must be a valid Event with all fields present.
	for i, line := range bytes.Split(bytes.TrimSpace(got), []byte("\n")) {
		var m map[string]any
		if err := json.Unmarshal(line, &m); err != nil {
			t.Fatalf("line %d: %v", i+1, err)
		}
		for _, k := range []string{"cycle", "kind", "seq", "bank", "line", "cause"} {
			if _, ok := m[k]; !ok {
				t.Fatalf("line %d missing field %q: %s", i+1, k, line)
			}
		}
	}
}

func TestEventTraceDeterministic(t *testing.T) {
	a := collectEvents(t)
	b := collectEvents(t)
	if !bytes.Equal(a, b) {
		t.Fatal("two identical runs produced different event traces")
	}
}
