# Reproduction of "On High-Bandwidth Data Cache Design for Multi-Issue
# Processors" (MICRO-30, 1997). Stdlib-only Go; no network needed.

GO ?= go

.PHONY: all build vet test test-short check bench tables figures ablations fuzz reproduce clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# check is the CI gate: vet, the full suite under the race detector, and
# one plain pass so the fuzz corpus seeds run as regression tests.
check:
	$(GO) vet ./...
	$(GO) test -race ./...
	$(GO) test ./internal/asm/ ./internal/oracle/

test-short:
	$(GO) test -short ./...

bench:
	$(GO) test -bench=. -benchmem -benchtime=1x .

tables:
	$(GO) run ./cmd/lbictables -all

ablations:
	$(GO) run ./cmd/lbictables -ablations

# fuzz gives each target a 30s smoke run (go's engine allows one -fuzz
# target per invocation). Corpus seeds live in each package's testdata/fuzz/.
FUZZTIME ?= 30s
fuzz:
	$(GO) test ./internal/asm/ -fuzz FuzzAssemble -fuzztime $(FUZZTIME)
	$(GO) test ./internal/oracle/ -fuzz FuzzArbiterGrant -fuzztime $(FUZZTIME)
	$(GO) test ./internal/oracle/ -fuzz FuzzCombining -fuzztime $(FUZZTIME)
	$(GO) test ./internal/oracle/ -fuzz FuzzStoreQueue -fuzztime $(FUZZTIME)

reproduce:
	./scripts/reproduce.sh

clean:
	$(GO) clean ./...
