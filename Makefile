# Reproduction of "On High-Bandwidth Data Cache Design for Multi-Issue
# Processors" (MICRO-30, 1997). Stdlib-only Go; no network needed.

GO ?= go

.PHONY: all build vet test test-short check bench bench-smoke bench-diff lbicd-smoke cluster-smoke advsearch-smoke tables figures ablations workloads fuzz reproduce clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# check is the CI gate: vet, the full suite under the race detector, and
# one plain pass so the fuzz corpus seeds run as regression tests.
check:
	$(GO) vet ./...
	$(GO) test -race ./...
	$(GO) test ./internal/asm/ ./internal/oracle/ ./internal/tracecache/

test-short:
	$(GO) test -short ./...

# bench runs the full benchmark suite (table regenerations, simulator
# throughput live vs trace replay, the zero-alloc core microbenchmark, the
# lane-batched stepping microbenchmark, the coded-banks arbiter step cost,
# and the lbicd served-vs-direct latency comparison) and records the results
# as JSON. BENCH_PR10.json in the repo root is the checked-in snapshot;
# regenerate it here after performance work.
BENCH_OUT ?= BENCH_PR10.json
bench:
	$(GO) test -run '^$$' -bench . -benchmem . ./internal/cpu/ ./internal/server/ \
		| $(GO) run ./scripts/benchjson -o $(BENCH_OUT)

# bench-smoke is the CI gate: one iteration of every benchmark, parsed by
# benchjson so a broken benchmark or malformed output fails the build, plus
# one lane-batched table sweep so the -lanes path is exercised end to end.
bench-smoke:
	$(GO) test -run '^$$' -bench . -benchmem -benchtime 1x . ./internal/cpu/ ./internal/server/ \
		| $(GO) run ./scripts/benchjson -o /dev/null
	$(GO) run ./cmd/lbictables -all -insts 5000 -jobs 4 -lanes 4 > /dev/null

# bench-diff is the perf regression gate: ns/op drift between the two most
# recent checked-in benchmark snapshots past the threshold fails unless
# BENCH_ALLOWLIST.json acknowledges it with a reason.
BENCH_OLD ?= BENCH_PR9.json
BENCH_NEW ?= BENCH_PR10.json
bench-diff:
	$(GO) run ./scripts/benchjson -diff $(BENCH_OLD) -against $(BENCH_NEW) \
		-threshold 10 -allowlist BENCH_ALLOWLIST.json

# lbicd-smoke starts a real lbicd, checks a served report is byte-identical
# to the direct in-process run, that a repeat request is a cache hit, that a
# traced sweep exports a valid span tree (written to TRACE_ARTIFACT for CI
# upload), and that /metrics is valid Prometheus exposition with nonzero
# request counters.
TRACE_ARTIFACT ?= /tmp/lbicd-job-trace.jsonl
lbicd-smoke:
	$(GO) build -o /tmp/lbicd ./cmd/lbicd
	/tmp/lbicd -addr 127.0.0.1:8329 & echo $$! > /tmp/lbicd.pid; \
	trap 'kill $$(cat /tmp/lbicd.pid) 2>/dev/null' EXIT; \
	$(GO) run ./scripts/lbicdsmoke -addr http://127.0.0.1:8329 -trace-artifact $(TRACE_ARTIFACT)

# cluster-smoke is the CI gate for the distributed plane: a coordinator plus
# three worker processes run a sweep, one worker is SIGKILLed mid-job, and
# every cell must still complete byte-identical to the single-process run.
# It then points a coordinator at dead ports and requires the same request to
# complete by graceful degradation to in-process execution.
cluster-smoke:
	$(GO) build -o /tmp/lbicd ./cmd/lbicd
	$(GO) run ./scripts/clusterchaos -smoke -lbicd /tmp/lbicd

# advsearch-smoke is the CI gate for the adversarial-workload loop: a tiny
# fixed-seed search must complete (once against plain banking, once against
# the coded organization), and replaying the checked-in regression stream
# must reproduce its stored report byte-for-byte.
advsearch-smoke:
	$(GO) run ./cmd/lbicadv -port bank-4 -insts 5000 -rounds 1 -seed 1 -q -top 3
	$(GO) run ./cmd/lbicadv -port coded-4x1 -insts 5000 -rounds 1 -seed 1 -q -top 3
	$(GO) run ./cmd/lbicsim -trace-in testdata/adversarial/conflict-storm-bank-4.lbictrace \
		-port bank-4 -json - \
		| cmp - testdata/adversarial/conflict-storm-bank-4.report.json

tables:
	$(GO) run ./cmd/lbictables -all

ablations:
	$(GO) run ./cmd/lbictables -ablations

workloads:
	$(GO) run ./cmd/lbictables -workloads

# fuzz gives each target a 30s smoke run (go's engine allows one -fuzz
# target per invocation). Corpus seeds live in each package's testdata/fuzz/.
FUZZTIME ?= 30s
fuzz:
	$(GO) test ./internal/asm/ -fuzz FuzzAssemble -fuzztime $(FUZZTIME)
	$(GO) test ./internal/oracle/ -fuzz FuzzArbiterGrant -fuzztime $(FUZZTIME)
	$(GO) test ./internal/oracle/ -fuzz FuzzCombining -fuzztime $(FUZZTIME)
	$(GO) test ./internal/oracle/ -fuzz FuzzStoreQueue -fuzztime $(FUZZTIME)
	$(GO) test ./internal/tracecache/ -fuzz FuzzTraceStreamDecode -fuzztime $(FUZZTIME)

reproduce:
	./scripts/reproduce.sh

clean:
	$(GO) clean ./...
