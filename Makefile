# Reproduction of "On High-Bandwidth Data Cache Design for Multi-Issue
# Processors" (MICRO-30, 1997). Stdlib-only Go; no network needed.

GO ?= go

.PHONY: all build vet test test-short check bench tables figures ablations fuzz reproduce clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# check is the CI gate: vet plus the full suite under the race detector.
check:
	$(GO) vet ./...
	$(GO) test -race ./...

test-short:
	$(GO) test -short ./...

bench:
	$(GO) test -bench=. -benchmem -benchtime=1x .

tables:
	$(GO) run ./cmd/lbictables -all

ablations:
	$(GO) run ./cmd/lbictables -ablations

fuzz:
	$(GO) test ./internal/asm/ -fuzz FuzzAssemble -fuzztime 30s

reproduce:
	./scripts/reproduce.sh

clean:
	$(GO) clean ./...
