package server

import (
	"container/list"
	"sync"
)

// resultCache is a byte-budget LRU of finished cell reports keyed by the
// stable cell key (program identity + full configuration). It is the second
// layer of the server's reuse story: the trace cache avoids re-emulating a
// program, the result cache avoids re-simulating a (program, config) pair
// at all — a repeated sweep is served without running anything.
type resultCache struct {
	mu     sync.Mutex
	budget int64
	live   int64
	lru    *list.List // front = most recent; values are *resultEntry
	byKey  map[string]*list.Element

	hits      uint64
	misses    uint64
	evictions uint64
}

type resultEntry struct {
	key   string
	bytes []byte
}

// newResultCache returns a cache bounded to budgetBytes of report bytes
// (<= 0 for unlimited).
func newResultCache(budgetBytes int64) *resultCache {
	return &resultCache{budget: budgetBytes, lru: list.New(), byKey: make(map[string]*list.Element)}
}

// get returns the cached report for key, marking it most recently used.
// A nil receiver (cache disabled) always misses.
func (c *resultCache) get(key string) ([]byte, bool) {
	if c == nil {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.byKey[key]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.lru.MoveToFront(el)
	return el.Value.(*resultEntry).bytes, true
}

// put stores a report, evicting least-recently-used entries past the
// budget. Reports larger than the whole budget are not cached.
func (c *resultCache) put(key string, b []byte) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.budget > 0 && int64(len(b)) > c.budget {
		return
	}
	if el, ok := c.byKey[key]; ok {
		old := el.Value.(*resultEntry)
		c.live += int64(len(b)) - int64(len(old.bytes))
		old.bytes = b
		c.lru.MoveToFront(el)
	} else {
		c.byKey[key] = c.lru.PushFront(&resultEntry{key: key, bytes: b})
		c.live += int64(len(b))
	}
	for c.budget > 0 && c.live > c.budget {
		back := c.lru.Back()
		if back == nil {
			break
		}
		e := back.Value.(*resultEntry)
		c.lru.Remove(back)
		delete(c.byKey, e.key)
		c.live -= int64(len(e.bytes))
		c.evictions++
	}
}

// resultCacheStats is a snapshot of the cache's counters for /metrics.
type resultCacheStats struct {
	Hits      uint64
	Misses    uint64
	Evictions uint64
	Entries   int
	BytesLive int64
}

func (c *resultCache) stats() resultCacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return resultCacheStats{
		Hits: c.hits, Misses: c.misses, Evictions: c.evictions,
		Entries: len(c.byKey), BytesLive: c.live,
	}
}
