package server_test

import (
	"bytes"
	"context"
	"encoding/json"
	"testing"

	"lbic"
	"lbic/client"
	"lbic/internal/server"
)

// TestSweepLanedByteIdentical: with Options.Lanes set, a sweep job's cells
// that share one (benchmark, budget) stream run as lane batches — and every
// served report must still be byte-identical to direct scalar simulation,
// with per-cell results published, counted, and result-cached exactly like
// the scalar server path.
func TestSweepLanedByteIdentical(t *testing.T) {
	_, c := newTestServer(t, server.Options{Lanes: 4})
	ctx := context.Background()
	ports := []string{"true-1", "bank-4", "lbic-4x2", "true-2", "bank-8", "repl-2"}
	specs := make([]client.PortSpec, len(ports))
	for i, p := range ports {
		specs[i] = client.Port(p)
	}
	benches := []string{"compress", "li"}
	req := client.SweepRequest{Benchmarks: benches, Ports: specs, Insts: testInsts}

	st, err := c.Sweep(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if want := len(benches) * len(ports); st.Total != want {
		t.Fatalf("job total = %d, want %d", st.Total, want)
	}
	final, err := c.Wait(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != client.JobDone || final.Done != st.Total || final.Failed != 0 {
		t.Fatalf("job finished %+v", final)
	}
	byKey := make(map[string]client.CellResult)
	for _, cell := range final.Results {
		byKey[cell.Key] = cell
		if cell.Benchmark == "" || cell.Port == "" {
			t.Errorf("cell %q published without coordinates: %+v", cell.Key, cell)
		}
		if cell.ElapsedNS <= 0 {
			t.Errorf("cell %q published with ElapsedNS = %d", cell.Key, cell.ElapsedNS)
		}
	}
	if len(byKey) != st.Total {
		t.Fatalf("published %d distinct cells, want %d", len(byKey), st.Total)
	}
	for _, bench := range benches {
		for _, port := range ports {
			var direct bytes.Buffer
			if err := json.Compact(&direct, directReport(t, bench, port, testInsts)); err != nil {
				t.Fatal(err)
			}
			var found bool
			for _, cell := range byKey {
				if cell.Benchmark == bench && cell.Port == port {
					found = true
					if !bytes.Equal(cell.Report, direct.Bytes()) {
						t.Errorf("%s/%s: laned cell differs from direct report", bench, port)
					}
				}
			}
			if !found {
				t.Errorf("no cell published for %s/%s", bench, port)
			}
		}
	}
	if executed := counter(t, c, "server.cells_executed"); executed != uint64(st.Total) {
		t.Errorf("cells_executed = %d, want %d", executed, st.Total)
	}
	// One recording per benchmark, shared by all its lanes.
	if records := counter(t, c, "tracecache.records"); records != uint64(len(benches)) {
		t.Errorf("tracecache.records = %d, want %d", records, len(benches))
	}

	// The identical sweep again: every member of every former batch must be
	// served from the result cache without executing anything.
	st2, err := c.Sweep(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	final2, err := c.Wait(ctx, st2.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final2.State != client.JobDone || final2.Failed != 0 {
		t.Fatalf("second job finished %+v", final2)
	}
	for _, cell := range final2.Results {
		if !cell.Cached {
			t.Errorf("%s: second sweep cell not served from the result cache", cell.Key)
		}
		if !bytes.Equal(cell.Report, byKey[cell.Key].Report) {
			t.Errorf("%s: second sweep cell bytes differ", cell.Key)
		}
	}
	if executed := counter(t, c, "server.cells_executed"); executed != uint64(st.Total) {
		t.Errorf("second sweep executed %d new cells, want 0", executed-uint64(st.Total))
	}
}

// TestSweepLanedMatchesScalarServer runs the same sweep on a laned and a
// scalar server and requires identical report bytes for every cell.
func TestSweepLanedMatchesScalarServer(t *testing.T) {
	req := client.SweepRequest{
		Benchmarks: []string{"compress"},
		Ports:      []client.PortSpec{client.Port("true-1"), client.Port("bank-4"), client.Port("lbic-4x2")},
		Insts:      testInsts,
	}
	run := func(opts server.Options) map[string][]byte {
		_, c := newTestServer(t, opts)
		st, err := c.Sweep(context.Background(), req)
		if err != nil {
			t.Fatal(err)
		}
		final, err := c.Wait(context.Background(), st.ID)
		if err != nil {
			t.Fatal(err)
		}
		if final.State != client.JobDone || final.Failed != 0 {
			t.Fatalf("job finished %+v", final)
		}
		out := make(map[string][]byte, len(final.Results))
		for _, cell := range final.Results {
			out[cell.Key] = cell.Report
		}
		return out
	}
	scalar := run(server.Options{})
	laned := run(server.Options{Lanes: 8})
	if len(scalar) != len(laned) {
		t.Fatalf("scalar served %d cells, laned %d", len(scalar), len(laned))
	}
	for key, want := range scalar {
		if !bytes.Equal(want, laned[key]) {
			t.Errorf("%s: laned server report differs from scalar server", key)
		}
	}
}

// TestSweepLanedUploadedTraceStaysScalar: a sweep is not the only job shape —
// uploaded-trace cells must keep the scalar path even on a laned server.
func TestSweepLanedUploadedTraceStaysScalar(t *testing.T) {
	_, c := newTestServer(t, server.Options{Lanes: 4})
	ctx := context.Background()
	rt, err := lbic.RecordGeneratorTrace(lbic.GenParams{Kind: "zipf"}, testInsts)
	if err != nil {
		t.Fatal(err)
	}
	var enc bytes.Buffer
	if err := lbic.WriteTraceStream(&enc, rt); err != nil {
		t.Fatal(err)
	}
	served, err := c.Simulate(ctx, client.SimulateRequest{Trace: enc.Bytes(), Port: client.Port("lbic-4x2")})
	if err != nil {
		t.Fatal(err)
	}
	port, err := lbic.ParsePortName("lbic-4x2")
	if err != nil {
		t.Fatal(err)
	}
	cfg := lbic.DefaultConfig()
	cfg.Port = port
	cfg.MaxInsts = 0
	res, err := lbic.SimulateTrace(ctx, rt, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var direct bytes.Buffer
	if err := lbic.NewReport(res).WriteJSON(&direct); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(served, direct.Bytes()) {
		t.Errorf("uploaded-trace report on a laned server differs from direct replay")
	}
}
