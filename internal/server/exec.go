package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"time"

	"lbic"
	"lbic/client"
	"lbic/internal/runner"
	"lbic/internal/tracing"
)

// cellSpec is one validated unit of simulation work: a named program under
// a full configuration, with the stable key the result cache, singleflight,
// and journal-style identities all share.
type cellSpec struct {
	// benchmark or pattern names the program, or trace holds an uploaded
	// recorded stream; exactly one is set.
	benchmark string
	pattern   string
	trace     *lbic.RecordedTrace
	// rawTrace keeps the uploaded stream's encoded bytes so a coordinator
	// can forward the cell to a worker without re-encoding.
	rawTrace []byte
	port     lbic.PortConfig
	insts    uint64
	cpu      *lbic.CPUConfig
	mem      *lbic.MemParams
	key      string
}

// wireRequest reconstructs the lbic-sim-request/v1 document for this cell,
// for dispatch to a cluster worker over the same API the client used.
func (sp *cellSpec) wireRequest() client.SimulateRequest {
	return client.SimulateRequest{
		Schema:    client.RequestSchema,
		Benchmark: sp.benchmark,
		Pattern:   sp.pattern,
		Trace:     sp.rawTrace,
		Port:      client.PortOf(sp.port),
		Insts:     sp.insts,
		CPU:       sp.cpu,
		Mem:       sp.mem,
	}
}

// progToken is the program's name component of the cell key.
func (sp *cellSpec) progToken() string {
	switch {
	case sp.pattern != "":
		return "pat:" + sp.pattern
	case sp.trace != nil:
		return "trace:" + keyToken(sp.trace.Name())
	}
	return sp.benchmark
}

// keyToken makes an arbitrary stream name safe for cell keys and response
// headers: any byte outside printable ASCII (or a space) becomes '_'.
func keyToken(name string) string {
	b := []byte(name)
	for i, c := range b {
		if c <= ' ' || c > '~' {
			b[i] = '_'
		}
	}
	return string(b)
}

// compileSpec validates one (program, port, budget) point against the
// request schema's rules and computes its stable key.
func (s *Server) compileSpec(benchmark, pattern string, port client.PortSpec, insts uint64, cpu *lbic.CPUConfig, mem *lbic.MemParams) (cellSpec, error) {
	sp := cellSpec{benchmark: benchmark, pattern: pattern, insts: insts, cpu: cpu, mem: mem}
	switch {
	case benchmark == "" && pattern == "":
		return sp, fmt.Errorf("one of benchmark or pattern is required")
	case benchmark != "" && pattern != "":
		return sp, fmt.Errorf("benchmark and pattern are mutually exclusive")
	}
	if insts == 0 {
		return sp, fmt.Errorf("insts must be positive (the kernels are non-halting steady-state loops)")
	}
	// Build now so an unknown name fails the request, not the cell; the
	// instance is cached for the simulation itself.
	if _, err := s.program(&sp); err != nil {
		return sp, err
	}
	p, err := port.Resolve()
	if err != nil {
		return sp, err
	}
	sp.port = p
	cfg := lbic.DefaultConfig()
	cfg.Port = p
	cfg.MaxInsts = insts
	cfg.CPU = cpu
	cfg.Mem = mem
	if err := cfg.Validate(); err != nil {
		return sp, err
	}
	sp.key = fmt.Sprintf("sim/%s/%s/i%d", sp.progToken(), p.Key(), insts)
	tok, err := overrideToken(cpu, mem)
	if err != nil {
		return sp, err
	}
	sp.key += tok
	return sp, nil
}

// overrideToken hashes CPU/memory baseline overrides into a key suffix.
// Overrides are not in the readable key; a hash of their JSON keeps distinct
// configurations from colliding in the caches.
func overrideToken(cpu *lbic.CPUConfig, mem *lbic.MemParams) (string, error) {
	if cpu == nil && mem == nil {
		return "", nil
	}
	h := fnv.New64a()
	enc, err := json.Marshal(struct {
		CPU *lbic.CPUConfig `json:"cpu,omitempty"`
		Mem *lbic.MemParams `json:"mem,omitempty"`
	}{cpu, mem})
	if err != nil {
		return "", err
	}
	h.Write(enc)
	return fmt.Sprintf("/c%x", h.Sum64()), nil
}

// compileTraceSpec validates one uploaded-trace cell. The stream must parse
// and validate in full — header bounds, framing, CRC — before any work is
// admitted. insts of 0 replays the whole trace; the key's budget token is
// the effective (clamped) instruction count, so "replay everything" shares
// a cache entry with an explicit full-length budget. The key also carries a
// hash of the raw upload: two traces that share a name but differ in
// content never collide.
func (s *Server) compileTraceSpec(raw []byte, port client.PortSpec, insts uint64, cpu *lbic.CPUConfig, mem *lbic.MemParams) (cellSpec, error) {
	rt, err := lbic.ReadTraceStream(bytes.NewReader(raw))
	if err != nil {
		return cellSpec{}, fmt.Errorf("invalid trace upload: %v", err)
	}
	sp := cellSpec{trace: rt, rawTrace: raw, insts: insts, cpu: cpu, mem: mem}
	p, err := port.Resolve()
	if err != nil {
		return sp, err
	}
	sp.port = p
	cfg := lbic.DefaultConfig()
	cfg.Port = p
	cfg.MaxInsts = insts
	cfg.CPU = cpu
	cfg.Mem = mem
	if err := cfg.Validate(); err != nil {
		return sp, err
	}
	eff := rt.Len()
	if insts > 0 && insts < eff {
		eff = insts
	}
	h := fnv.New64a()
	h.Write(raw)
	sp.key = fmt.Sprintf("sim/%s@%x/%s/i%d", sp.progToken(), h.Sum64(), p.Key(), eff)
	tok, err := overrideToken(cpu, mem)
	if err != nil {
		return sp, err
	}
	sp.key += tok
	return sp, nil
}

// program returns the cell's built program, cached per name so the whole
// process shares one instance (and therefore one memoized fingerprint and
// one trace-cache recording) per program.
func (s *Server) program(sp *cellSpec) (*lbic.Program, error) {
	token := sp.progToken()
	s.progMu.Lock()
	defer s.progMu.Unlock()
	if p, ok := s.programs[token]; ok {
		return p, nil
	}
	var (
		p   *lbic.Program
		err error
	)
	if sp.pattern != "" {
		p, err = lbic.BuildPattern(sp.pattern)
	} else {
		p, err = lbic.BuildBenchmark(sp.benchmark)
	}
	if err != nil {
		return nil, err
	}
	s.programs[token] = p
	return p, nil
}

// flight is one in-progress cell execution; concurrent requests for the
// same key wait on done instead of running their own copy.
type flight struct {
	done  chan struct{}
	bytes []byte
	err   error
}

// executeCell produces one cell's report: result cache, then singleflight
// dedup, then an actual bounded, isolated simulation. ctx only governs this
// caller's wait — the simulation itself runs under the server's lifetime so
// one impatient client cannot poison the waiters sharing its flight.
//
// When ctx carries a trace, the cell contributes an "exec <key>" span
// annotated with which reuse layer served it: result-cache hit, singleflight
// follower, or singleflight leader (the one that actually simulates).
func (s *Server) executeCell(ctx context.Context, sp cellSpec) client.CellResult {
	start := time.Now()
	ctx, span := tracing.Start(ctx, "exec "+sp.key)
	defer span.End()
	done := func(cr client.CellResult) client.CellResult {
		cr.ElapsedNS = time.Since(start).Nanoseconds()
		if cr.Error != "" {
			span.SetAttr("error", cr.Error)
		}
		return cr
	}
	cr := client.CellResult{Key: sp.key, Benchmark: sp.progToken(), Port: sp.port.Key()}
	if b, ok := s.results.get(sp.key); ok {
		span.SetAttr("result_cache", "hit")
		cr.Cached = true
		cr.Report = b
		return done(cr)
	}
	span.SetAttr("result_cache", "miss")

	s.flightMu.Lock()
	if f, ok := s.inflight[sp.key]; ok {
		s.flightMu.Unlock()
		span.SetAttr("singleflight", "follower")
		select {
		case <-f.done:
			s.mSingleflightShared.Add(1)
			if f.err != nil {
				cr.Error = f.err.Error()
			} else {
				cr.Report = f.bytes
			}
		case <-ctx.Done():
			cr.Error = ctx.Err().Error()
		}
		return done(cr)
	}
	f := &flight{done: make(chan struct{})}
	s.inflight[sp.key] = f
	s.flightMu.Unlock()
	span.SetAttr("singleflight", "leader")

	f.bytes, f.err = s.simulateCell(ctx, sp)
	if f.err == nil {
		s.results.put(sp.key, f.bytes)
	}
	s.flightMu.Lock()
	delete(s.inflight, sp.key)
	s.flightMu.Unlock()
	close(f.done)

	if f.err != nil {
		cr.Error = f.err.Error()
	} else {
		cr.Report = f.bytes
	}
	return done(cr)
}

// simulateCell runs the actual simulation: one slot of the server-wide
// parallelism bound, one runner cell for the per-cell deadline and panic
// isolation, the shared trace cache for record-once/replay-many streaming.
// The simulation runs under the server's lifetime context — deliberately
// detached from the caller's cancellation — but adopts the caller's trace,
// so the runner's cell span and the simulate span still land in the
// request's (or job's) tree.
func (s *Server) simulateCell(ctx context.Context, sp cellSpec) ([]byte, error) {
	// A coordinator tries the cluster first — the worker owns the compute and
	// this process never burns a local slot on a remotely-served cell. Any
	// dispatch error degrades gracefully: the cell falls through to the local
	// path below, which is authoritative for both results and errors, so a
	// sweep completes byte-identically whether zero, some, or all workers are
	// reachable. Dispatch happens inside singleflight leadership, so
	// concurrent identical cells still collapse to one remote call.
	if s.opts.Remote != nil {
		rctx, rspan := tracing.Start(ctx, "remote "+sp.key)
		b, err := s.opts.Remote.Execute(tracing.Adopt(s.baseCtx, rctx), sp.wireRequest(), sp.key)
		if err == nil {
			rspan.End()
			s.mRemoteCells.Add(1)
			return b, nil
		}
		rspan.SetAttr("fallback", err.Error())
		rspan.End()
		s.mLocalFallbacks.Add(1)
	}

	// The queue span is a leaf measuring the wait for a parallelism slot.
	_, span := tracing.Start(ctx, "queue "+sp.key)
	select {
	case s.sem <- struct{}{}:
	case <-s.baseCtx.Done():
		span.End()
		return nil, s.baseCtx.Err()
	}
	span.End()
	defer func() { <-s.sem }()

	cell := runner.Cell[[]byte]{Key: sp.key, Run: func(ctx context.Context) ([]byte, error) {
		cfg := lbic.DefaultConfig()
		cfg.Port = sp.port
		cfg.MaxInsts = sp.insts
		cfg.CPU = sp.cpu
		cfg.Mem = sp.mem
		var res lbic.Result
		var err error
		if sp.trace != nil {
			// An uploaded trace is already a recording; the shared trace
			// cache has nothing to add.
			res, err = lbic.SimulateTrace(ctx, sp.trace, cfg)
		} else {
			var prog *lbic.Program
			if prog, err = s.program(&sp); err != nil {
				return nil, err
			}
			cfg.Trace = s.traces
			res, err = lbic.SimulateContext(ctx, prog, cfg)
		}
		if err != nil {
			return nil, err
		}
		// Replayed runs are bit-identical to live ones; dropping the trace
		// cache counters makes the served report byte-identical to a direct
		// Simulate + NewReport of the same configuration.
		res.TraceCache = nil
		var buf bytes.Buffer
		if err := lbic.NewReport(res).WriteJSON(&buf); err != nil {
			return nil, err
		}
		return buf.Bytes(), nil
	}}
	cellStart := time.Now()
	out, _ := runner.Run(tracing.Adopt(s.baseCtx, ctx), []runner.Cell[[]byte]{cell}, runner.Options{
		Timeout:   s.opts.CellTimeout,
		Retries:   s.opts.Retries,
		KeepGoing: true,
	})
	r := out.Results[0]
	s.mCellsExecuted.Add(1)
	// Feed the duration estimator behind Retry-After with real executed-cell
	// wall time (queue wait excluded — Retry-After already models the queue).
	s.observeCell(time.Since(cellStart))
	if r.Err != nil {
		s.mCellFailures.Add(1)
		return nil, r.Err
	}
	return r.Value, nil
}
