package server_test

import (
	"bytes"
	"context"
	"encoding/json"
	"log/slog"
	"net/http"
	"strings"
	"testing"

	"lbic"
	"lbic/client"
	"lbic/internal/server"
)

// TestJobTraceTree drives a small sweep and checks the acceptance shape of
// its exported trace: one job root, every cell span reaching it, simulate
// spans carrying cycle counts and trace-cache attribution, and a Chrome
// export that parses.
func TestJobTraceTree(t *testing.T) {
	_, c := newTestServer(t, server.Options{})
	ctx := context.Background()
	st, err := c.Sweep(ctx, client.SweepRequest{
		Benchmarks: []string{"compress", "li"},
		Ports:      []client.PortSpec{client.Port("bank-4"), client.Port("true-2")},
		Insts:      testInsts,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Wait(ctx, st.ID); err != nil {
		t.Fatal(err)
	}

	h, spans, err := c.JobTrace(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if h.Schema != lbic.TraceSchema || h.Name != st.ID || h.Spans != len(spans) {
		t.Errorf("trace header = %+v (%d spans)", h, len(spans))
	}
	roots, err := lbic.ValidateTraceTree(spans, true)
	if err != nil {
		t.Fatalf("trace tree invalid: %v", err)
	}
	byID := make(map[uint64]lbic.TraceSpan, len(spans))
	for _, sp := range spans {
		byID[sp.ID] = sp
		if sp.Open {
			t.Errorf("span %q still open in a finished job's trace", sp.Name)
		}
	}
	root := byID[roots[0]]
	if !strings.HasPrefix(root.Name, "job ") {
		t.Errorf("root span = %q, want job root", root.Name)
	}

	// Every cell span must reach the job root (transitively), and the four
	// simulate spans must carry outcome and trace-cache attribution.
	reachesRoot := func(sp lbic.TraceSpan) bool {
		for sp.Parent != 0 {
			sp = byID[sp.Parent]
		}
		return sp.ID == root.ID
	}
	var cellSpans, simSpans int
	for _, sp := range spans {
		if !reachesRoot(sp) {
			t.Errorf("span %q does not reach the job root", sp.Name)
		}
		switch {
		case strings.HasPrefix(sp.Name, "cell "):
			cellSpans++
			if sp.Attrs["journal_cached"] == nil && sp.Attrs["attempts"] == nil {
				t.Errorf("cell span %q missing attempts attr: %v", sp.Name, sp.Attrs)
			}
		case strings.HasPrefix(sp.Name, "simulate "):
			simSpans++
			if sp.Attrs["cycles"] == nil || sp.Attrs["insts"] == nil {
				t.Errorf("simulate span %q missing cycle attrs: %v", sp.Name, sp.Attrs)
			}
			tc, _ := sp.Attrs["trace_cache"].(string)
			if tc != "hit" && tc != "miss" {
				t.Errorf("simulate span %q trace_cache = %q, want hit or miss", sp.Name, tc)
			}
		case strings.HasPrefix(sp.Name, "exec "):
			if sp.Attrs["result_cache"] == nil || sp.Attrs["singleflight"] == nil {
				t.Errorf("exec span %q missing reuse attrs: %v", sp.Name, sp.Attrs)
			}
		}
	}
	// 2 benchmarks × 2 ports, an outer and an inner runner cell span each.
	if cellSpans != 2*st.Total {
		t.Errorf("cell spans = %d, want %d", cellSpans, 2*st.Total)
	}
	if simSpans != st.Total {
		t.Errorf("simulate spans = %d, want %d", simSpans, st.Total)
	}

	// The Chrome export of the same job must be a loadable document.
	var chrome bytes.Buffer
	if err := lbic.WriteChromeTrace(&chrome, st.ID, spans); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(chrome.Bytes(), &doc); err != nil {
		t.Fatalf("chrome export unparseable: %v", err)
	}
	if len(doc.TraceEvents) < len(spans) {
		t.Errorf("chrome export has %d events for %d spans", len(doc.TraceEvents), len(spans))
	}

	// And the server serves that same document directly.
	resp, err := http.Get(c.BaseURL + "/v1/jobs/" + st.ID + "/trace?format=chrome")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var served struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&served); err != nil {
		t.Fatalf("served chrome trace unparseable: %v", err)
	}
	if len(served.TraceEvents) != len(doc.TraceEvents) {
		t.Errorf("served %d chrome events, exported %d", len(served.TraceEvents), len(doc.TraceEvents))
	}
}

func TestRequestIDPropagated(t *testing.T) {
	_, c := newTestServer(t, server.Options{})
	req, _ := http.NewRequest(http.MethodGet, c.BaseURL+"/healthz", nil)
	req.Header.Set("X-Request-Id", "caller-chosen-7")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get("X-Request-Id"); got != "caller-chosen-7" {
		t.Errorf("propagated id = %q", got)
	}

	resp2, err := http.Get(c.BaseURL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if got := resp2.Header.Get("X-Request-Id"); !strings.HasPrefix(got, "req-") {
		t.Errorf("generated id = %q, want req-N", got)
	}
}

func TestHealthzBuildInfo(t *testing.T) {
	_, c := newTestServer(t, server.Options{})
	h, err := c.Health(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" {
		t.Errorf("status = %q", h.Status)
	}
	if h.GoVersion == "" || h.Module == "" {
		t.Errorf("build info incomplete: %+v", h)
	}
	if h.UptimeSeconds < 0 {
		t.Errorf("uptime = %v", h.UptimeSeconds)
	}
}

// TestRequestLog pins the structured request log: one line per request with
// the request ID, route, status, and duration attributes.
func TestRequestLog(t *testing.T) {
	var buf bytes.Buffer
	log := slog.New(slog.NewTextHandler(&buf, nil))
	_, c := newTestServer(t, server.Options{Log: log})
	req, _ := http.NewRequest(http.MethodGet, c.BaseURL+"/healthz", nil)
	req.Header.Set("X-Request-Id", "log-probe-1")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	line := buf.String()
	for _, want := range []string{"msg=request", "id=log-probe-1", `route="GET /healthz"`, "status=200", "dur="} {
		if !strings.Contains(line, want) {
			t.Errorf("request log missing %q:\n%s", want, line)
		}
	}
}

// TestStreamSSEClient checks the SSE client parser end to end against the
// server's SSE framing.
func TestStreamSSEClient(t *testing.T) {
	_, c := newTestServer(t, server.Options{})
	ctx := context.Background()
	st, err := c.Sweep(ctx, client.SweepRequest{
		Benchmarks: []string{"compress"},
		Ports:      []client.PortSpec{client.Port("true-1")},
		Insts:      testInsts,
	})
	if err != nil {
		t.Fatal(err)
	}
	var cells, dones int
	if err := c.StreamSSE(ctx, st.ID, func(ev client.StreamEvent) error {
		switch ev.Type {
		case "cell":
			cells++
			if ev.Cell == nil || ev.Cell.ElapsedNS <= 0 {
				t.Errorf("cell event without elapsed time: %+v", ev.Cell)
			}
		case "done":
			dones++
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if cells != st.Total || dones != 1 {
		t.Errorf("SSE saw %d cells, %d done events; want %d and 1", cells, dones, st.Total)
	}
}
