package server_test

import (
	"bytes"
	"context"
	"errors"
	"io"
	"net/http"
	"strconv"
	"sync"
	"testing"
	"time"

	"lbic"
	"lbic/client"
	"lbic/internal/server"
)

// fakeRemote is a scripted RemoteExecutor: either serves canned bytes or
// fails every dispatch, and records the keys it was asked for.
type fakeRemote struct {
	report []byte
	err    error

	mu   sync.Mutex
	keys []string
}

func (f *fakeRemote) Execute(ctx context.Context, req client.SimulateRequest, key string) ([]byte, error) {
	f.mu.Lock()
	f.keys = append(f.keys, key)
	f.mu.Unlock()
	return f.report, f.err
}

func (f *fakeRemote) Status() client.ClusterStatus {
	return client.ClusterStatus{Fingerprint: "fake"}
}

func (f *fakeRemote) calls() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.keys)
}

func TestRemoteExecutorServesVerbatim(t *testing.T) {
	canned := []byte(`{"schema":"lbic-run-report/v1","canned":true}`)
	remote := &fakeRemote{report: canned}
	_, c := newTestServer(t, server.Options{Remote: remote, Role: "coordinator"})
	got, err := c.Simulate(context.Background(), client.SimulateRequest{
		Benchmark: "compress", Port: client.Port("true-1"), Insts: testInsts,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, canned) {
		t.Errorf("served %s, want the remote's bytes passed through verbatim", got)
	}
	if remote.calls() != 1 {
		t.Errorf("remote dispatched %d times, want 1", remote.calls())
	}
	if n := counter(t, c, "server.remote_cells"); n != 1 {
		t.Errorf("server.remote_cells = %d, want 1", n)
	}
}

func TestRemoteExecutorFailureFallsBackByteIdentical(t *testing.T) {
	remote := &fakeRemote{err: errors.New("no healthy workers")}
	_, c := newTestServer(t, server.Options{Remote: remote, Role: "coordinator"})
	got, err := c.Simulate(context.Background(), client.SimulateRequest{
		Benchmark: "compress", Port: client.Port("lbic-4x2"), Insts: testInsts,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Graceful degradation: with the whole cluster unreachable, the
	// coordinator's own execution must serve the exact standalone bytes.
	if want := directReport(t, "compress", "lbic-4x2", testInsts); !bytes.Equal(got, want) {
		t.Error("degraded report differs from direct simulation")
	}
	if n := counter(t, c, "server.local_fallbacks"); n != 1 {
		t.Errorf("server.local_fallbacks = %d, want 1", n)
	}
}

func TestRemoteExecutorSkippedOnResultCacheHit(t *testing.T) {
	remote := &fakeRemote{err: errors.New("down")}
	_, c := newTestServer(t, server.Options{Remote: remote, Role: "coordinator"})
	req := client.SimulateRequest{Benchmark: "compress", Port: client.Port("true-1"), Insts: testInsts}
	ctx := context.Background()
	if _, err := c.Simulate(ctx, req); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Simulate(ctx, req); err != nil {
		t.Fatal(err)
	}
	// The second request is a result-cache hit; the cluster must not be
	// consulted again for a cell this process already holds.
	if remote.calls() != 1 {
		t.Errorf("remote dispatched %d times, want 1 (cache hit must not re-dispatch)", remote.calls())
	}
}

func TestClusterEndpoint(t *testing.T) {
	_, standalone := newTestServer(t, server.Options{})
	if _, err := standalone.Cluster(context.Background()); err == nil {
		t.Error("GET /v1/cluster on a standalone server succeeded, want 404")
	} else {
		var apiErr *client.APIError
		if !errors.As(err, &apiErr) || apiErr.StatusCode != http.StatusNotFound {
			t.Errorf("standalone /v1/cluster error = %v, want 404", err)
		}
	}

	_, coord := newTestServer(t, server.Options{Remote: &fakeRemote{}, Role: "coordinator"})
	st, err := coord.Cluster(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st.Fingerprint != "fake" {
		t.Errorf("cluster status fingerprint = %q, want the executor's snapshot", st.Fingerprint)
	}
	h, err := coord.Health(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if h.Role != "coordinator" {
		t.Errorf("health role = %q, want coordinator", h.Role)
	}
}

func TestRetryAfterGrowsWithQueueDepth(t *testing.T) {
	// The backlog estimate before any cell settles assumes 1s/cell, so with
	// MaxParallel 1 a rejected request should be told to come back in about
	// queue-depth seconds. Big per-cell budgets keep the sweep's cells
	// unfinished while the rejections are provoked.
	retryAfter := func(depth int) int {
		t.Helper()
		// TraceCacheBytes -1 keeps the heavy cells on the emulator-driven
		// path, which honors cancellation: Close must not leave a 50M-inst
		// trace recording burning CPU under the rest of the suite.
		_, c := newTestServer(t, server.Options{MaxParallel: 1, QueueLimit: depth, TraceCacheBytes: -1})
		ctx := context.Background()
		// One sweep of depth distinct heavy cells fills the queue exactly
		// (identical cells would collapse into one unit of work).
		if _, err := c.Sweep(ctx, client.SweepRequest{
			Benchmarks: lbic.BenchmarkNames()[:depth],
			Ports:      []client.PortSpec{client.Port("true-1")},
			Insts:      50_000_000,
		}); err != nil {
			t.Fatal(err)
		}
		resp, err := http.Post(c.BaseURL+"/v1/simulate", "application/json",
			bytes.NewReader([]byte(`{"schema":"lbic-sim-request/v1","benchmark":"compress","port":"true-1","insts":1000}`)))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusTooManyRequests {
			t.Fatalf("status = %d, want 429", resp.StatusCode)
		}
		ra, err := strconv.Atoi(resp.Header.Get("Retry-After"))
		if err != nil {
			t.Fatalf("Retry-After %q not an integer: %v", resp.Header.Get("Retry-After"), err)
		}
		return ra
	}
	shallow := retryAfter(2)
	deep := retryAfter(8)
	if deep <= shallow {
		t.Errorf("Retry-After did not grow with queue depth: depth 2 -> %ds, depth 8 -> %ds", shallow, deep)
	}
	if shallow < 1 || deep > 120 {
		t.Errorf("Retry-After outside [1, 120]: %d, %d", shallow, deep)
	}
}

func TestRetryAfterDrainingFloor(t *testing.T) {
	srv, c := newTestServer(t, server.Options{})
	srv.BeginDrain()
	resp, err := http.Post(c.BaseURL+"/v1/simulate", "application/json",
		bytes.NewReader([]byte(`{"schema":"lbic-sim-request/v1","benchmark":"compress","port":"true-1","insts":1000}`)))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503 while draining", resp.StatusCode)
	}
	ra, err := strconv.Atoi(resp.Header.Get("Retry-After"))
	if err != nil {
		t.Fatal(err)
	}
	if ra < 5 {
		t.Errorf("draining Retry-After = %d, want the 5s rolling-restart floor", ra)
	}
}

func TestDrainUnderLoadCompletesInFlightSweep(t *testing.T) {
	srv, c := newTestServer(t, server.Options{MaxParallel: 2})
	ctx := context.Background()
	st, err := c.Sweep(ctx, client.SweepRequest{
		Benchmarks: []string{"compress", "li"},
		Ports:      []client.PortSpec{client.Port("true-1"), client.Port("bank-4")},
		Insts:      testInsts,
	})
	if err != nil {
		t.Fatal(err)
	}

	// Race the drain against the running job: admission must close
	// immediately, while the accepted job keeps its right to finish.
	srv.BeginDrain()
	if _, err := c.Sweep(ctx, client.SweepRequest{
		Benchmarks: []string{"compress"}, Ports: []client.PortSpec{client.Port("true-1")}, Insts: testInsts,
	}); err == nil {
		t.Error("sweep accepted while draining")
	}

	dctx, cancel := context.WithTimeout(ctx, 60*time.Second)
	defer cancel()
	if err := srv.Drain(dctx); err != nil {
		t.Fatalf("drain did not settle the in-flight sweep: %v", err)
	}
	final, err := c.Job(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != "done" || final.Done != final.Total || final.Failed != 0 {
		t.Errorf("after drain job = %+v, want all %d cells done", final, final.Total)
	}
}

func TestJobStreamSSEResume(t *testing.T) {
	_, c := newTestServer(t, server.Options{})
	ctx := context.Background()
	st, err := c.Sweep(ctx, client.SweepRequest{
		Benchmarks: []string{"compress", "li"},
		Ports:      []client.PortSpec{client.Port("true-1")},
		Insts:      testInsts,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Wait(ctx, st.ID); err != nil {
		t.Fatal(err)
	}
	// 2 cells + done = ids 0, 1, 2. A resume from id 0 must replay only the
	// unseen suffix — no double-counting on reconnect.
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+"/v1/jobs/"+st.ID+"/stream", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Accept", "text/event-stream")
	req.Header.Set("Last-Event-ID", "0")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(body, []byte("id: 0\n")) {
		t.Errorf("resumed stream replayed the consumed prefix:\n%s", body)
	}
	if !bytes.Contains(body, []byte("id: 1\n")) || !bytes.Contains(body, []byte("id: 2\n")) {
		t.Errorf("resumed stream missing the unseen suffix:\n%s", body)
	}
}
