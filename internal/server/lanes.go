package server

// Laned sweep-job execution: when Options.Lanes >= 2 and the server owns its
// compute (no cluster dispatch), a job's cells that share one (program,
// budget) instruction stream are grouped into lane batches and stepped in
// lockstep off a shared decode cursor (lbic.SimulateBatch) — one pass over
// the trace per batch instead of one per cell. Every member still gets its
// own result-cache entry, singleflight registration, published CellResult,
// and metrics, and each served report is byte-identical to the scalar path.

import (
	"bytes"
	"context"
	"fmt"
	"hash/fnv"
	"strconv"
	"time"

	"lbic"
	"lbic/client"
	"lbic/internal/runner"
	"lbic/internal/tracing"
)

// scalarJobCell is the unbatched per-cell unit of a sweep job.
func (s *Server) scalarJobCell(j *job, sp cellSpec) runner.Cell[struct{}] {
	return runner.Cell[struct{}]{Key: sp.key, Run: func(ctx context.Context) (struct{}, error) {
		j.publishCell(s.executeCell(ctx, sp))
		return struct{}{}, nil
	}}
}

// lanedJobCells converts a job's specs into runner cells with shared-stream
// groups batched. Uploaded-trace cells and batch remainders of one run the
// ordinary scalar path; a coordinator never batches (each cell is offered to
// the cluster individually).
func (s *Server) lanedJobCells(j *job, specs []cellSpec) []runner.Cell[struct{}] {
	var (
		cells  []runner.Cell[struct{}]
		groups = map[string][]cellSpec{}
		order  []string
	)
	for _, sp := range specs {
		if sp.trace != nil {
			// An uploaded recording is its own replay source; batching it
			// would need per-upload cursors for no decode saving.
			cells = append(cells, s.scalarJobCell(j, sp))
			continue
		}
		g := fmt.Sprintf("%s/i%d", sp.progToken(), sp.insts)
		if _, ok := groups[g]; !ok {
			order = append(order, g)
		}
		groups[g] = append(groups[g], sp)
	}
	for _, g := range order {
		ms := groups[g]
		for len(ms) > 0 {
			k := len(ms)
			if s.opts.Lanes < k {
				k = s.opts.Lanes
			}
			if k < 2 {
				cells = append(cells, s.scalarJobCell(j, ms[0]))
				ms = ms[1:]
				continue
			}
			chunk := ms[:k:k]
			ms = ms[k:]
			cells = append(cells, s.batchJobCell(j, g, chunk))
		}
	}
	return cells
}

// batchJobCell wraps one lane batch as a single runner cell of the job.
func (s *Server) batchJobCell(j *job, group string, sps []cellSpec) runner.Cell[struct{}] {
	h := fnv.New64a()
	for _, sp := range sps {
		h.Write([]byte(sp.key))
		h.Write([]byte{0})
	}
	key := fmt.Sprintf("lane/%s/k%d/%x", group, len(sps), h.Sum64())
	return runner.Cell[struct{}]{
		Key:    key,
		Labels: []string{"lanes", strconv.Itoa(len(sps))},
		Run: func(ctx context.Context) (struct{}, error) {
			s.executeBatch(ctx, j, sps)
			return struct{}{}, nil
		},
	}
}

// executeBatch produces and publishes every member cell of one lane batch.
// Members already served by the result cache — or being computed by another
// request's flight — take the ordinary executeCell path; the rest register
// as singleflight leaders and simulate together under one parallelism slot.
func (s *Server) executeBatch(ctx context.Context, j *job, sps []cellSpec) {
	var lanes []cellSpec
	for _, sp := range sps {
		if _, ok := s.results.get(sp.key); ok {
			j.publishCell(s.executeCell(ctx, sp))
			continue
		}
		lanes = append(lanes, sp)
	}
	// Register leadership for every lane in one critical section; a lane
	// whose key is already in flight elsewhere follows that flight instead.
	var (
		lead    []cellSpec
		flights []*flight
	)
	s.flightMu.Lock()
	for _, sp := range lanes {
		if _, ok := s.inflight[sp.key]; ok {
			continue // follower: handled below, outside the lock
		}
		f := &flight{done: make(chan struct{})}
		s.inflight[sp.key] = f
		lead = append(lead, sp)
		flights = append(flights, f)
	}
	s.flightMu.Unlock()
	for _, sp := range lanes {
		if !isLead(lead, sp.key) {
			j.publishCell(s.executeCell(ctx, sp))
		}
	}
	if len(lead) == 0 {
		return
	}

	start := time.Now()
	spans := make([]*tracing.Span, len(lead))
	for i, sp := range lead {
		_, spans[i] = tracing.Start(ctx, "exec "+sp.key)
		spans[i].SetAttr("result_cache", "miss")
		spans[i].SetAttr("singleflight", "leader")
		spans[i].SetAttr("lanes", len(lead))
	}
	reports, errs := s.simulateBatchCells(ctx, lead)
	elapsed := time.Since(start)
	perLane := elapsed / time.Duration(len(lead))
	s.flightMu.Lock()
	for _, sp := range lead {
		delete(s.inflight, sp.key)
	}
	s.flightMu.Unlock()
	for i, sp := range lead {
		f := flights[i]
		f.bytes, f.err = reports[i], errs[i]
		if f.err == nil {
			s.results.put(sp.key, f.bytes)
		}
		close(f.done)
		cr := client.CellResult{
			Key: sp.key, Benchmark: sp.progToken(), Port: sp.port.Key(),
			ElapsedNS: perLane.Nanoseconds(),
		}
		s.mCellsExecuted.Add(1)
		if f.err != nil {
			s.mCellFailures.Add(1)
			cr.Error = f.err.Error()
			spans[i].SetAttr("error", cr.Error)
		} else {
			cr.Report = f.bytes
		}
		spans[i].End()
		j.publishCell(cr)
		s.observeCell(perLane)
	}
}

func isLead(lead []cellSpec, key string) bool {
	for _, sp := range lead {
		if sp.key == key {
			return true
		}
	}
	return false
}

// simulateBatchCells runs the lead lanes of one batch under a single
// parallelism slot, with the same deadline/retry/panic isolation the scalar
// simulateCell gets — the per-cell timeout scaled by the lane count, since
// the batch is one runner cell doing K lanes of work.
func (s *Server) simulateBatchCells(ctx context.Context, lead []cellSpec) ([][]byte, []error) {
	reports := make([][]byte, len(lead))
	errs := make([]error, len(lead))
	fail := func(err error) ([][]byte, []error) {
		for i := range errs {
			errs[i] = err
		}
		return reports, errs
	}

	_, span := tracing.Start(ctx, "queue batch "+lead[0].key)
	select {
	case s.sem <- struct{}{}:
	case <-s.baseCtx.Done():
		span.End()
		return fail(s.baseCtx.Err())
	}
	span.End()
	defer func() { <-s.sem }()

	prog, err := s.program(&lead[0])
	if err != nil {
		return fail(err)
	}
	cell := runner.Cell[struct{}]{Key: "batch", Run: func(ctx context.Context) (struct{}, error) {
		// A retried batch starts clean: outcomes from a failed attempt must
		// not leak into this one.
		for i := range lead {
			reports[i], errs[i] = nil, nil
		}
		cfgs := make([]lbic.Config, len(lead))
		for i, sp := range lead {
			cfg := lbic.DefaultConfig()
			cfg.Port = sp.port
			cfg.MaxInsts = sp.insts
			cfg.CPU = sp.cpu
			cfg.Mem = sp.mem
			cfg.Trace = s.traces
			cfgs[i] = cfg
		}
		results, laneErrs, berr := lbic.SimulateBatch(ctx, prog, cfgs)
		if berr != nil {
			return struct{}{}, berr
		}
		for i := range lead {
			if laneErrs[i] != nil {
				errs[i] = laneErrs[i]
				continue
			}
			res := results[i]
			// Same serialization as the scalar path: replayed runs are
			// bit-identical to live ones, and dropping the trace-cache
			// counters makes the report byte-identical to a direct
			// Simulate + NewReport of the same configuration.
			res.TraceCache = nil
			var buf bytes.Buffer
			if werr := lbic.NewReport(res).WriteJSON(&buf); werr != nil {
				errs[i] = werr
				continue
			}
			reports[i] = buf.Bytes()
		}
		return struct{}{}, nil
	}}
	timeout := s.opts.CellTimeout
	if timeout > 0 {
		timeout *= time.Duration(len(lead))
	}
	out, _ := runner.Run(tracing.Adopt(s.baseCtx, ctx), []runner.Cell[struct{}]{cell}, runner.Options{
		Timeout:   timeout,
		Retries:   s.opts.Retries,
		KeepGoing: true,
	})
	if rerr := out.Results[0].Err; rerr != nil {
		return fail(rerr)
	}
	return reports, errs
}
