package server_test

import (
	"bytes"
	"context"
	"net/http/httptest"
	"testing"

	"lbic"
	"lbic/client"
	"lbic/internal/server"
)

// The benchmarks below measure the cost of serving a simulation through
// lbicd relative to calling Simulate in-process: a cold request pays the
// full simulation, a warm repeat is one result-cache lookup plus HTTP
// round trip, and the direct call is the baseline both are compared to.
const benchInsts = 100_000

func benchClient(b *testing.B, opts server.Options) (*server.Server, *client.Client) {
	b.Helper()
	srv := server.New(opts)
	ts := httptest.NewServer(srv.Handler())
	b.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	return srv, client.New(ts.URL)
}

// BenchmarkServedSimulateCold measures a /v1/simulate request whose result
// cache entry has been dropped each iteration, so every request executes a
// cell (the trace cache stays warm, mirroring a long-lived server).
func BenchmarkServedSimulateCold(b *testing.B) {
	srv, c := benchClient(b, server.Options{ResultCacheBytes: -1})
	_ = srv
	req := client.SimulateRequest{Benchmark: "compress", Port: client.Port("lbic-4x2"), Insts: benchInsts}
	ctx := context.Background()
	if _, err := c.Simulate(ctx, req); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Simulate(ctx, req); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkServedSimulateWarm measures a repeated /v1/simulate request
// served entirely from the result cache: no cell executes, the cost is
// admission, one cache lookup, and the HTTP round trip.
func BenchmarkServedSimulateWarm(b *testing.B) {
	_, c := benchClient(b, server.Options{})
	req := client.SimulateRequest{Benchmark: "compress", Port: client.Port("lbic-4x2"), Insts: benchInsts}
	ctx := context.Background()
	if _, err := c.Simulate(ctx, req); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Simulate(ctx, req); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDirectSimulate is the in-process baseline for the served
// benchmarks: the same configuration run through lbic.Simulate with a warm
// trace cache, report serialization included.
func BenchmarkDirectSimulate(b *testing.B) {
	prog, err := lbic.BuildBenchmark("compress")
	if err != nil {
		b.Fatal(err)
	}
	port, err := lbic.ParsePortName("lbic-4x2")
	if err != nil {
		b.Fatal(err)
	}
	tc := lbic.NewTraceCache(0)
	run := func() {
		cfg := lbic.DefaultConfig()
		cfg.Port = port
		cfg.MaxInsts = benchInsts
		cfg.Trace = tc
		res, err := lbic.Simulate(prog, cfg)
		if err != nil {
			b.Fatal(err)
		}
		res.TraceCache = nil
		var buf bytes.Buffer
		if err := lbic.NewReport(res).WriteJSON(&buf); err != nil {
			b.Fatal(err)
		}
	}
	run() // warm the trace cache
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		run()
	}
}
