// Package server implements lbicd, the batched simulation service: an HTTP
// JSON front end over the library's simulation pieces. Single runs
// (/v1/simulate) and whole sweeps (/v1/sweep) are validated against the
// versioned lbic-sim-request/v1 schema, scheduled onto internal/runner with
// bounded parallelism, per-cell deadlines, and panic isolation, deduplicated
// across concurrent identical requests by a singleflight keyed on the stable
// cell key, and served from two reuse layers — a process-wide trace cache
// (record once, replay many) and an LRU result cache keyed by (program,
// config) — so a repeated table regeneration costs no simulation at all.
// Jobs stream per-cell progress as JSONL or SSE, /metrics exports the
// registry, and a graceful drain finishes in-flight work before exit.
package server

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"runtime"
	"runtime/debug"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"lbic"
	"lbic/client"
	"lbic/internal/metrics"
	"lbic/internal/runner"
	"lbic/internal/tracing"
)

// Options configures a Server. Zero values select the documented defaults.
type Options struct {
	// MaxParallel bounds concurrently executing simulation cells across all
	// requests and jobs. Default: GOMAXPROCS.
	MaxParallel int
	// QueueLimit bounds admitted-but-unfinished cells; past it requests are
	// rejected with 429 + Retry-After. Default 1024; < 0 for unlimited.
	QueueLimit int
	// CellTimeout bounds each cell attempt (runner deadline + abandonment).
	// Default 5m; < 0 for none.
	CellTimeout time.Duration
	// Retries re-attempts failed (non-timeout) cells. Default 0.
	Retries int
	// TraceCacheBytes budgets the shared trace cache. Default 256 MiB;
	// < 0 disables trace caching (every run re-emulates).
	TraceCacheBytes int64
	// ResultCacheBytes budgets the report LRU. Default 64 MiB; < 0 disables
	// result caching.
	ResultCacheBytes int64
	// MaxJobs bounds retained sweep jobs; when full, the oldest finished job
	// is evicted, and if none has finished new sweeps are rejected with 429.
	// Default 64.
	MaxJobs int
	// Log receives one structured line per HTTP request (request ID, method,
	// route, status, bytes, duration). Default: discard.
	Log *slog.Logger
	// Lanes, when >= 2, batches a sweep job's cells that share one
	// (program, budget) instruction stream into lane groups of up to this
	// width, stepped in lockstep off a shared decode cursor
	// (lbic.SimulateBatch) — one pass over the trace per batch instead of
	// one per cell. Served reports are byte-identical to the scalar path,
	// and every member keeps its own result-cache entry, singleflight
	// identity, and job-stream event. Default 0 (scalar); ignored on a
	// coordinator, whose cells are dispatched to the cluster individually.
	Lanes int
	// Role names how this process serves: "standalone" (default), "worker",
	// or "coordinator". Reported on /healthz so heartbeats and operators can
	// tell who answered.
	Role string
	// Remote, when non-nil, makes this server a cluster coordinator: cells
	// that miss the result cache are offered to the remote executor first
	// (which shards them onto workers with retry and hedging) and only run
	// in-process when it reports the cluster unavailable — the graceful
	// degradation path that keeps a sweep completing with zero reachable
	// workers.
	Remote RemoteExecutor
}

// RemoteExecutor is the cluster dispatch contract (implemented by
// internal/cluster.Dispatcher; an interface here so the server does not
// depend on the cluster machinery). Execute returns the cell's report
// bytes, or an error meaning "the cluster could not serve this cell — run
// it locally". Status feeds GET /v1/cluster.
type RemoteExecutor interface {
	Execute(ctx context.Context, req client.SimulateRequest, key string) ([]byte, error)
	Status() client.ClusterStatus
}

func (o Options) withDefaults() Options {
	if o.MaxParallel <= 0 {
		o.MaxParallel = runtime.GOMAXPROCS(0)
	}
	if o.QueueLimit == 0 {
		o.QueueLimit = 1024
	}
	if o.CellTimeout == 0 {
		o.CellTimeout = 5 * time.Minute
	} else if o.CellTimeout < 0 {
		o.CellTimeout = 0
	}
	if o.TraceCacheBytes == 0 {
		o.TraceCacheBytes = 256 << 20
	}
	if o.ResultCacheBytes == 0 {
		o.ResultCacheBytes = 64 << 20
	}
	if o.MaxJobs <= 0 {
		o.MaxJobs = 64
	}
	if o.Role == "" {
		o.Role = "standalone"
	}
	return o
}

// Server is the lbicd service. Create with New, mount Handler, and on
// shutdown call Drain (graceful) or Close (immediate).
type Server struct {
	opts  Options
	log   *slog.Logger
	start time.Time

	baseCtx context.Context
	cancel  context.CancelFunc

	// sem bounds concurrently executing cells server-wide.
	sem chan struct{}
	// traces is the process-wide record-once/replay-many trace cache; nil
	// when disabled.
	traces *lbic.TraceCache
	// results is the report LRU; nil when disabled.
	results *resultCache

	progMu   sync.Mutex
	programs map[string]*lbic.Program

	flightMu sync.Mutex
	inflight map[string]*flight

	// admitMu guards the admission state: wg.Add must be decided under the
	// same lock that Drain uses to flip draining, or a request could slip in
	// after the drain started waiting.
	admitMu  sync.Mutex
	draining bool
	queued   int
	wg       sync.WaitGroup

	jobsMu  sync.Mutex
	jobs    map[string]*job
	jobSeq  []string // ids in creation order, for MaxJobs eviction
	nextJob atomic.Uint64

	mRequests         atomic.Uint64
	mSimRequests      atomic.Uint64
	mSweepRequests    atomic.Uint64
	mBadRequests      atomic.Uint64
	mRejectedQueue    atomic.Uint64
	mRejectedDraining atomic.Uint64
	mCellsExecuted    atomic.Uint64
	mCellFailures     atomic.Uint64

	mSingleflightShared atomic.Uint64
	mRemoteCells        atomic.Uint64
	mLocalFallbacks     atomic.Uint64

	// avgCellNS is an EWMA of executed-cell wall time, feeding the computed
	// Retry-After on 429/503 (backlog depth × average cell time / slots).
	avgCellNS atomic.Int64

	// nextReq numbers generated request IDs (requests arriving without an
	// X-Request-Id header).
	nextReq atomic.Uint64
	// latMu guards routeLat, the per-route request latency histograms
	// created on first hit.
	latMu    sync.Mutex
	routeLat map[string]*metrics.LatencyHistogram
}

// New returns a ready Server.
func New(opts Options) *Server {
	opts = opts.withDefaults()
	ctx, cancel := context.WithCancel(context.Background())
	log := opts.Log
	if log == nil {
		log = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	s := &Server{
		opts:     opts,
		log:      log,
		start:    time.Now(),
		baseCtx:  ctx,
		cancel:   cancel,
		sem:      make(chan struct{}, opts.MaxParallel),
		programs: make(map[string]*lbic.Program),
		inflight: make(map[string]*flight),
		jobs:     make(map[string]*job),
		routeLat: make(map[string]*metrics.LatencyHistogram),
	}
	if opts.TraceCacheBytes >= 0 {
		s.traces = lbic.NewTraceCache(opts.TraceCacheBytes)
	}
	if opts.ResultCacheBytes >= 0 {
		s.results = newResultCache(opts.ResultCacheBytes)
	}
	return s
}

// Handler returns the service's route multiplexer, wrapped in the
// observability middleware: every request gets an X-Request-Id (propagated
// from the caller or generated), a root span on a per-request trace, one
// structured log line, and a sample in its route's latency histogram.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	routes := []struct {
		pattern string
		h       http.HandlerFunc
	}{
		{"POST /v1/simulate", s.handleSimulate},
		{"POST /v1/sweep", s.handleSweep},
		{"GET /v1/jobs/{id}", s.handleJob},
		{"GET /v1/jobs/{id}/stream", s.handleJobStream},
		{"GET /v1/jobs/{id}/trace", s.handleJobTrace},
		{"GET /v1/cluster", s.handleCluster},
		{"GET /healthz", s.handleHealthz},
		{"GET /metrics", s.handleMetrics},
	}
	for _, rt := range routes {
		mux.HandleFunc(rt.pattern, rt.h)
		// Pre-create the latency histogram so every route appears in the
		// exposition from the first scrape, not only after its first hit.
		s.routeLatency(rt.pattern)
	}
	return s.observe(mux)
}

// statusWriter captures the status and byte count of a response, passing
// Flush through so streaming handlers keep working.
type statusWriter struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	n, err := w.ResponseWriter.Write(b)
	w.bytes += int64(n)
	return n, err
}

func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// observe wraps mux with the per-request observability envelope. The route
// label comes from the mux's own pattern match (e.g. "POST /v1/simulate"),
// so metrics and logs never explode on unbounded path cardinality.
func (s *Server) observe(mux *http.ServeMux) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		reqID := r.Header.Get("X-Request-Id")
		if reqID == "" {
			reqID = fmt.Sprintf("req-%d", s.nextReq.Add(1))
		}
		w.Header().Set("X-Request-Id", reqID)
		_, route := mux.Handler(r)
		if route == "" {
			route = r.Method + " unmatched"
		}

		tr := tracing.New()
		ctx := tracing.NewContext(r.Context(), tr)
		ctx, span := tracing.Start(ctx, route)
		span.SetAttr("request_id", reqID)

		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		mux.ServeHTTP(sw, r.WithContext(ctx))

		span.SetAttr("status", sw.status)
		span.End()
		elapsed := time.Since(start)
		s.routeLatency(route).Observe(elapsed)
		s.log.LogAttrs(ctx, slog.LevelInfo, "request",
			slog.String("id", reqID),
			slog.String("method", r.Method),
			slog.String("route", route),
			slog.Int("status", sw.status),
			slog.Int64("bytes", sw.bytes),
			slog.Duration("dur", elapsed),
		)
	})
}

// routeLatency returns (creating on first hit) the latency histogram for a
// route label.
func (s *Server) routeLatency(route string) *metrics.LatencyHistogram {
	s.latMu.Lock()
	defer s.latMu.Unlock()
	h, ok := s.routeLat[route]
	if !ok {
		h = metrics.NewLatencyHistogram("server.request_duration_seconds",
			"HTTP request latency by route.", fmt.Sprintf("route=%q", route), nil)
		s.routeLat[route] = h
	}
	return h
}

// BeginDrain stops admitting new work; in-flight requests and jobs keep
// running. Safe to call more than once.
func (s *Server) BeginDrain() {
	s.admitMu.Lock()
	s.draining = true
	s.admitMu.Unlock()
}

// Drain begins the drain and waits for every admitted request and job to
// finish, or for ctx; either way the server is shut down on return.
func (s *Server) Drain(ctx context.Context) error {
	s.BeginDrain()
	done := make(chan struct{})
	go func() { s.wg.Wait(); close(done) }()
	var err error
	select {
	case <-done:
	case <-ctx.Done():
		err = ctx.Err()
	}
	s.cancel()
	return err
}

// Close shuts the server down immediately: running cells are canceled and
// unfinished jobs end in the canceled state.
func (s *Server) Close() {
	s.BeginDrain()
	s.cancel()
}

// TraceCache exposes the shared trace cache (nil when disabled) so an
// embedding process can pre-warm or inspect it.
func (s *Server) TraceCache() *lbic.TraceCache { return s.traces }

// errQueueFull and errDraining distinguish the two admission rejections.
var (
	errQueueFull = fmt.Errorf("queue full")
	errDraining  = fmt.Errorf("server is draining")
)

// admit reserves n cells of queue space and a membership in the drain wait
// group; the returned release undoes both when the work settles.
func (s *Server) admit(n int) (release func(), err error) {
	s.admitMu.Lock()
	defer s.admitMu.Unlock()
	if s.draining {
		return nil, errDraining
	}
	if s.opts.QueueLimit > 0 && s.queued+n > s.opts.QueueLimit {
		return nil, errQueueFull
	}
	s.queued += n
	s.wg.Add(1)
	var once sync.Once
	return func() {
		once.Do(func() {
			s.admitMu.Lock()
			s.queued -= n
			s.admitMu.Unlock()
			s.wg.Done()
		})
	}, nil
}

// writeJSON writes v as the response body.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	// Compact, unescaped output keeps embedded RawMessage reports equal to
	// json.Compact of the direct WriteJSON bytes.
	enc.SetEscapeHTML(false)
	enc.Encode(v)
}

// writeError writes the uniform error body; 429 and 503 carry a computed
// Retry-After.
func (s *Server) writeError(w http.ResponseWriter, code int, msg string) {
	if code == http.StatusTooManyRequests || code == http.StatusServiceUnavailable {
		w.Header().Set("Retry-After", strconv.Itoa(s.retryAfterSeconds()))
	}
	writeJSON(w, code, client.ErrorResponse{Error: msg})
}

// retryAfterSeconds estimates when a rejected client should come back: the
// time for the current admission backlog to drain through the parallelism
// bound at the observed average cell duration (1s assumed before the first
// cell settles), clamped to [1, 120]. While draining, the floor rises to
// 5s — the process is going away and, in a rolling restart, will take at
// least that long to come back.
func (s *Server) retryAfterSeconds() int {
	s.admitMu.Lock()
	queued, draining := s.queued, s.draining
	s.admitMu.Unlock()
	avg := time.Duration(s.avgCellNS.Load())
	if avg <= 0 {
		avg = time.Second
	}
	est := time.Duration(queued) * avg / time.Duration(s.opts.MaxParallel)
	secs := int((est + time.Second - 1) / time.Second)
	lo := 1
	if draining {
		lo = 5
	}
	if secs < lo {
		secs = lo
	}
	if secs > 120 {
		secs = 120
	}
	return secs
}

// observeCell feeds one executed cell's wall time into the EWMA behind
// retryAfterSeconds (α = 1/4).
func (s *Server) observeCell(elapsed time.Duration) {
	for {
		old := s.avgCellNS.Load()
		upd := old + (int64(elapsed)-old)/4
		if old == 0 {
			upd = int64(elapsed)
		}
		if s.avgCellNS.CompareAndSwap(old, upd) {
			return
		}
	}
}

// rejectAdmission maps an admit error to its status.
func (s *Server) rejectAdmission(w http.ResponseWriter, err error) {
	if err == errDraining {
		s.mRejectedDraining.Add(1)
		s.writeError(w, http.StatusServiceUnavailable, err.Error())
		return
	}
	s.mRejectedQueue.Add(1)
	s.writeError(w, http.StatusTooManyRequests, err.Error())
}

// decodeRequest strictly decodes a schema-versioned request body of at most
// limit bytes.
func decodeRequest(r *http.Request, v any, schema *string, limit int64) error {
	dec := json.NewDecoder(http.MaxBytesReader(nil, r.Body, limit))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("invalid request body: %v", err)
	}
	if *schema != client.RequestSchema {
		return fmt.Errorf("unknown request schema %q (want %q)", *schema, client.RequestSchema)
	}
	return nil
}

func (s *Server) handleSimulate(w http.ResponseWriter, r *http.Request) {
	s.mRequests.Add(1)
	s.mSimRequests.Add(1)
	var req client.SimulateRequest
	// Trace uploads ride inside the JSON body, so /v1/simulate accepts a
	// larger request than the name-only endpoints.
	if err := decodeRequest(r, &req, &req.Schema, 8<<20); err != nil {
		s.mBadRequests.Add(1)
		s.writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	var sp cellSpec
	var err error
	if len(req.Trace) > 0 {
		if req.Benchmark != "" || req.Pattern != "" {
			s.mBadRequests.Add(1)
			s.writeError(w, http.StatusBadRequest, "trace is mutually exclusive with benchmark and pattern")
			return
		}
		sp, err = s.compileTraceSpec(req.Trace, req.Port, req.Insts, req.CPU, req.Mem)
	} else {
		sp, err = s.compileSpec(req.Benchmark, req.Pattern, req.Port, req.Insts, req.CPU, req.Mem)
	}
	if err != nil {
		s.mBadRequests.Add(1)
		s.writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	release, err := s.admit(1)
	if err != nil {
		s.rejectAdmission(w, err)
		return
	}
	defer release()
	cr := s.executeCell(r.Context(), sp)
	if cr.Error != "" {
		s.writeError(w, http.StatusInternalServerError, cr.Error)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Lbicd-Cell-Key", cr.Key)
	if cr.Cached {
		w.Header().Set("X-Lbicd-Cache", "hit")
	} else {
		w.Header().Set("X-Lbicd-Cache", "miss")
	}
	// The raw report bytes, exactly as a direct Simulate + WriteJSON emits.
	w.Write(cr.Report)
}

func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	s.mRequests.Add(1)
	s.mSweepRequests.Add(1)
	var req client.SweepRequest
	if err := decodeRequest(r, &req, &req.Schema, 1<<20); err != nil {
		s.mBadRequests.Add(1)
		s.writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	if len(req.Ports) == 0 {
		s.mBadRequests.Add(1)
		s.writeError(w, http.StatusBadRequest, "ports must list at least one organization")
		return
	}
	benchmarks := req.Benchmarks
	if len(benchmarks) == 0 {
		benchmarks = lbic.BenchmarkNames()
	}
	var specs []cellSpec
	seen := make(map[string]bool)
	for _, b := range benchmarks {
		for _, p := range req.Ports {
			sp, err := s.compileSpec(b, "", p, req.Insts, req.CPU, req.Mem)
			if err != nil {
				s.mBadRequests.Add(1)
				s.writeError(w, http.StatusBadRequest, fmt.Sprintf("%s × %s: %v", b, p, err))
				return
			}
			// Identical cells listed twice are one unit of work.
			if !seen[sp.key] {
				seen[sp.key] = true
				specs = append(specs, sp)
			}
		}
	}
	release, err := s.admit(len(specs))
	if err != nil {
		s.rejectAdmission(w, err)
		return
	}
	j, err := s.registerJob(len(specs))
	if err != nil {
		release()
		s.mRejectedQueue.Add(1)
		s.writeError(w, http.StatusTooManyRequests, err.Error())
		return
	}
	go s.runJob(j, specs, release)
	writeJSON(w, http.StatusAccepted, j.status(false))
}

// registerJob allocates a job slot, evicting the oldest finished job when
// the retention cap is reached.
func (s *Server) registerJob(total int) (*job, error) {
	s.jobsMu.Lock()
	defer s.jobsMu.Unlock()
	for len(s.jobs) >= s.opts.MaxJobs {
		evicted := false
		for i, id := range s.jobSeq {
			if j, ok := s.jobs[id]; ok && j.status(false).State != client.JobRunning {
				delete(s.jobs, id)
				s.jobSeq = append(s.jobSeq[:i], s.jobSeq[i+1:]...)
				evicted = true
				break
			}
		}
		if !evicted {
			return nil, fmt.Errorf("job table full (%d running jobs)", len(s.jobs))
		}
	}
	id := fmt.Sprintf("job-%d", s.nextJob.Add(1))
	j := newJob(id, total)
	s.jobs[id] = j
	s.jobSeq = append(s.jobSeq, id)
	return j, nil
}

// runJob executes a sweep's cells on the runner under the server's
// parallelism bound and publishes each settled cell to the job's stream.
// The whole sweep records into the job's own trace: one root span for the
// job, one subtree per cell, down to the simulate spans — exported live or
// after the fact by GET /v1/jobs/{id}/trace.
func (s *Server) runJob(j *job, specs []cellSpec, release func()) {
	defer release()
	jctx, root := j.trace.Start(tracing.NewContext(s.baseCtx, j.trace), "job "+j.id)
	root.SetAttr("cells", len(specs))
	var cells []runner.Cell[struct{}]
	if s.opts.Lanes >= 2 && s.opts.Remote == nil {
		cells = s.lanedJobCells(j, specs)
	} else {
		cells = make([]runner.Cell[struct{}], len(specs))
		for i, sp := range specs {
			cells[i] = s.scalarJobCell(j, sp)
		}
	}
	// The per-cell deadline, retry, and panic story lives inside
	// executeCell's own runner invocation (shared with /v1/simulate); this
	// outer run provides the fan-out and honors server shutdown.
	runner.Run(jctx, cells, runner.Options{Jobs: s.opts.MaxParallel, KeepGoing: true})
	root.End()
	j.finish()
	s.log.LogAttrs(s.baseCtx, slog.LevelInfo, "job finished",
		slog.String("id", j.id), slog.Int("cells", len(specs)))
}

func (s *Server) lookupJob(id string) (*job, bool) {
	s.jobsMu.Lock()
	defer s.jobsMu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	s.mRequests.Add(1)
	j, ok := s.lookupJob(r.PathValue("id"))
	if !ok {
		s.writeError(w, http.StatusNotFound, "unknown job")
		return
	}
	writeJSON(w, http.StatusOK, j.status(true))
}

func (s *Server) handleJobStream(w http.ResponseWriter, r *http.Request) {
	s.mRequests.Add(1)
	j, ok := s.lookupJob(r.PathValue("id"))
	if !ok {
		s.writeError(w, http.StatusNotFound, "unknown job")
		return
	}
	sse := strings.Contains(r.Header.Get("Accept"), "text/event-stream")
	if sse {
		w.Header().Set("Content-Type", "text/event-stream")
		w.Header().Set("Cache-Control", "no-cache")
	} else {
		w.Header().Set("Content-Type", "application/jsonl")
	}
	i := 0
	// SSE reconnects resume: the id: field on every event is its index in
	// the job's stream, and a Last-Event-ID header (sent automatically by
	// EventSource and by client.StreamSSE) skips the prefix the subscriber
	// already consumed — no cell is ever double-counted across a dropped
	// connection.
	if sse {
		if last, err := strconv.Atoi(r.Header.Get("Last-Event-ID")); err == nil && last >= 0 {
			i = last + 1
		}
	}
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	for {
		evs, wake, final := j.next(i)
		for k, ev := range evs {
			if sse {
				fmt.Fprintf(w, "event: %s\nid: %d\ndata: ", ev.Type, i+k)
			}
			if err := enc.Encode(ev); err != nil {
				return
			}
			if sse {
				fmt.Fprint(w, "\n")
			}
		}
		i += len(evs)
		if flusher != nil && len(evs) > 0 {
			flusher.Flush()
		}
		if final && len(evs) == 0 {
			return
		}
		if len(evs) == 0 {
			select {
			case <-wake:
			case <-r.Context().Done():
				return
			case <-s.baseCtx.Done():
				return
			}
		}
	}
}

// buildHealth assembles the health body: status plus the binary's build
// identity, so "which lbicd answered?" is one curl away.
func (s *Server) buildHealth(status string) client.Health {
	s.admitMu.Lock()
	queued := s.queued
	s.admitMu.Unlock()
	h := client.Health{
		Status:        status,
		Role:          s.opts.Role,
		UptimeSeconds: time.Since(s.start).Seconds(),
		MaxParallel:   s.opts.MaxParallel,
		QueuedCells:   queued,
	}
	if bi, ok := debug.ReadBuildInfo(); ok {
		h.GoVersion = bi.GoVersion
		h.Module = bi.Main.Path
		h.Version = bi.Main.Version
		for _, kv := range bi.Settings {
			if kv.Key == "vcs.revision" {
				h.Revision = kv.Value
			}
		}
	}
	return h
}

// handleCluster serves the coordinator's membership and dispatch view. On a
// worker or standalone server (no remote executor) it is a 404: there is no
// cluster to describe.
func (s *Server) handleCluster(w http.ResponseWriter, r *http.Request) {
	s.mRequests.Add(1)
	if s.opts.Remote == nil {
		s.writeError(w, http.StatusNotFound, "not a coordinator (no cluster configured)")
		return
	}
	writeJSON(w, http.StatusOK, s.opts.Remote.Status())
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.admitMu.Lock()
	draining := s.draining
	s.admitMu.Unlock()
	if draining {
		writeJSON(w, http.StatusServiceUnavailable, s.buildHealth("draining"))
		return
	}
	writeJSON(w, http.StatusOK, s.buildHealth("ok"))
}

// handleJobTrace exports a job's span tree: the default is the lbic-trace/v1
// JSONL stream; ?format=chrome serves a chrome://tracing-loadable document.
// The trace is available while the job runs (open spans are marked) and
// after it finishes, for as long as the job is retained.
func (s *Server) handleJobTrace(w http.ResponseWriter, r *http.Request) {
	s.mRequests.Add(1)
	j, ok := s.lookupJob(r.PathValue("id"))
	if !ok {
		s.writeError(w, http.StatusNotFound, "unknown job")
		return
	}
	spans := j.trace.Snapshot()
	if r.URL.Query().Get("format") == "chrome" {
		w.Header().Set("Content-Type", "application/json")
		lbic.WriteChromeTrace(w, j.id, spans)
		return
	}
	w.Header().Set("Content-Type", "application/jsonl")
	lbic.WriteTraceJSONL(w, j.id, j.trace.Epoch().UnixNano(), spans)
}

// metricsRegistry assembles a fresh registry from the server's live
// counters and the two caches' stats, in stable order.
func (s *Server) metricsRegistry() *metrics.Registry {
	reg := metrics.NewRegistry()
	add := func(name, help string, v uint64) {
		reg.Counter(name, help).Add(v)
	}
	add("server.requests", "HTTP requests received", s.mRequests.Load())
	add("server.sim_requests", "POST /v1/simulate requests", s.mSimRequests.Load())
	add("server.sweep_requests", "POST /v1/sweep requests", s.mSweepRequests.Load())
	add("server.bad_requests", "requests rejected by schema validation", s.mBadRequests.Load())
	add("server.rejected_queue_full", "requests rejected with 429 (queue full)", s.mRejectedQueue.Load())
	add("server.rejected_draining", "requests rejected with 503 (draining)", s.mRejectedDraining.Load())
	add("server.cells_executed", "simulation cells actually run (not served from a cache or shared flight)", s.mCellsExecuted.Load())
	add("server.cell_failures", "executed cells that failed", s.mCellFailures.Load())
	add("server.singleflight_shared", "requests served by waiting on an identical in-flight cell", s.mSingleflightShared.Load())
	if s.opts.Remote != nil {
		add("server.remote_cells", "cells served by the worker cluster", s.mRemoteCells.Load())
		add("server.local_fallbacks", "cells run in-process because the cluster was unavailable", s.mLocalFallbacks.Load())
	}
	s.admitMu.Lock()
	queued := s.queued
	s.admitMu.Unlock()
	add("server.queued_cells", "admitted cells not yet settled", uint64(queued))
	s.jobsMu.Lock()
	add("server.jobs", "sweep jobs accepted", s.nextJob.Load())
	s.jobsMu.Unlock()
	if s.results != nil {
		st := s.results.stats()
		add("resultcache.hits", "cells served from the result cache", st.Hits)
		add("resultcache.misses", "result cache lookups that missed", st.Misses)
		add("resultcache.evictions", "reports evicted by the byte-budget LRU", st.Evictions)
		add("resultcache.entries", "resident cached reports", uint64(st.Entries))
		add("resultcache.bytes_live", "resident cached report bytes", uint64(st.BytesLive))
	}
	if s.traces != nil {
		st := s.traces.Stats()
		add("tracecache.hits", "runs served from a present or in-flight recording", st.Hits)
		add("tracecache.records", "trace recordings started", st.Records)
		add("tracecache.record_failures", "trace recordings that failed", st.RecordFailures)
		add("tracecache.evictions", "recordings evicted by the byte-budget LRU", st.Evictions)
		add("tracecache.entries", "resident recordings", uint64(st.Entries))
		add("tracecache.bytes_live", "resident recording bytes", uint64(st.BytesLive))
	}
	s.latMu.Lock()
	lats := make([]*metrics.LatencyHistogram, 0, len(s.routeLat))
	for _, h := range s.routeLat {
		lats = append(lats, h)
	}
	s.latMu.Unlock()
	sort.Slice(lats, func(i, j int) bool { return lats[i].Labels < lats[j].Labels })
	reg.AddLatency(lats...)
	return reg
}

// handleMetrics serves the registry. The default is the Prometheus text
// exposition format (scrapeable); ?format=json serves the structured
// snapshot and ?format=text the human-aligned tables.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	reg := s.metricsRegistry()
	switch r.URL.Query().Get("format") {
	case "json":
		writeJSON(w, http.StatusOK, reg.Snapshot())
	case "text":
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		reg.WriteText(w)
	default:
		w.Header().Set("Content-Type", metrics.ExpositionContentType)
		reg.WritePrometheus(w)
	}
}
