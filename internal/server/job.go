package server

import (
	"sync"

	"lbic/client"
	"lbic/internal/tracing"
)

// job tracks one accepted sweep: its cells' results in completion order and
// a broadcast channel for streaming subscribers. Publishing appends the
// event and wakes every waiter by closing-and-replacing the wake channel,
// so a late subscriber replays the backlog and then tails live events with
// no per-subscriber queues to overflow.
type job struct {
	id    string
	total int
	// trace collects the sweep's span tree (job root → cells → simulate);
	// it lives as long as the job, serving GET /v1/jobs/{id}/trace.
	trace *tracing.Trace

	mu     sync.Mutex
	events []client.StreamEvent
	wake   chan struct{}
	done   int
	failed int
	final  bool
}

func newJob(id string, total int) *job {
	return &job{id: id, total: total, trace: tracing.New(), wake: make(chan struct{})}
}

// publishCell records one finished cell.
func (j *job) publishCell(cr client.CellResult) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if cr.Error != "" {
		j.failed++
	}
	j.done++
	j.events = append(j.events, client.StreamEvent{Type: "cell", Cell: &cr})
	j.broadcast()
}

// finish marks the job complete: done when every cell settled, canceled
// when the server shut down first.
func (j *job) finish() {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.final = true
	st := j.statusLocked(false)
	j.events = append(j.events, client.StreamEvent{Type: "done", Status: &st})
	j.broadcast()
}

func (j *job) broadcast() {
	close(j.wake)
	j.wake = make(chan struct{})
}

// statusLocked assembles the job's status; withResults includes the cell
// bulk. Callers hold j.mu.
func (j *job) statusLocked(withResults bool) client.JobStatus {
	st := client.JobStatus{
		ID: j.id, State: client.JobRunning,
		Total: j.total, Done: j.done, Failed: j.failed,
	}
	if j.final {
		st.State = client.JobDone
		if j.done < j.total {
			st.State = client.JobCanceled
		}
	}
	if withResults {
		for _, ev := range j.events {
			if ev.Type == "cell" && ev.Cell != nil {
				st.Results = append(st.Results, *ev.Cell)
			}
		}
	}
	return st
}

// status snapshots the job.
func (j *job) status(withResults bool) client.JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.statusLocked(withResults)
}

// next returns the backlog events from index i on, plus a wake channel that
// closes when more arrive, plus whether the job is final. An empty slice
// with final=false means wait on wake.
func (j *job) next(i int) (evs []client.StreamEvent, wake <-chan struct{}, final bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if i < len(j.events) {
		evs = j.events[i:len(j.events):len(j.events)]
	}
	return evs, j.wake, j.final
}
