package server_test

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"lbic"
	"lbic/client"
	"lbic/internal/metrics"
	"lbic/internal/server"
)

// testInsts keeps served cells quick; identity claims hold at any budget.
const testInsts = 20_000

func newTestServer(t *testing.T, opts server.Options) (*server.Server, *client.Client) {
	t.Helper()
	srv := server.New(opts)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() { ts.Close(); srv.Close() })
	return srv, client.New(ts.URL)
}

// directReport runs the same configuration in-process, the way lbicsim
// would, and returns the exact bytes Report.WriteJSON emits.
func directReport(t *testing.T, bench, portName string, insts uint64) []byte {
	t.Helper()
	prog, err := lbic.BuildBenchmark(bench)
	if err != nil {
		t.Fatal(err)
	}
	port, err := lbic.ParsePortName(portName)
	if err != nil {
		t.Fatal(err)
	}
	cfg := lbic.DefaultConfig()
	cfg.Port = port
	cfg.MaxInsts = insts
	res, err := lbic.Simulate(prog, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := lbic.NewReport(res).WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func counter(t *testing.T, c *client.Client, name string) uint64 {
	t.Helper()
	snap, err := c.Metrics(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	v, _ := client.CounterValue(snap, name)
	return v
}

func TestServedSimulateByteIdentical(t *testing.T) {
	_, c := newTestServer(t, server.Options{})
	req := client.SimulateRequest{Benchmark: "compress", Port: client.Port("lbic-4x2"), Insts: testInsts}
	served, err := c.Simulate(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	direct := directReport(t, "compress", "lbic-4x2", testInsts)
	if !bytes.Equal(served, direct) {
		t.Fatalf("served report (%d bytes) differs from direct report (%d bytes)", len(served), len(direct))
	}
}

// TestSimulateTraceUpload exercises the /v1/simulate uploaded-trace path:
// the served report must be byte-identical to replaying the same stream
// in-process, and a second upload of the same bytes must hit the result
// cache.
func TestSimulateTraceUpload(t *testing.T) {
	_, c := newTestServer(t, server.Options{})
	ctx := context.Background()

	rt, err := lbic.RecordGeneratorTrace(lbic.GenParams{Kind: "zipf"}, testInsts)
	if err != nil {
		t.Fatal(err)
	}
	var enc bytes.Buffer
	if err := lbic.WriteTraceStream(&enc, rt); err != nil {
		t.Fatal(err)
	}

	req := client.SimulateRequest{Trace: enc.Bytes(), Port: client.Port("lbic-4x2")}
	served, err := c.Simulate(ctx, req)
	if err != nil {
		t.Fatal(err)
	}

	port, err := lbic.ParsePortName("lbic-4x2")
	if err != nil {
		t.Fatal(err)
	}
	cfg := lbic.DefaultConfig()
	cfg.Port = port
	cfg.MaxInsts = 0 // whole trace
	res, err := lbic.SimulateTrace(ctx, rt, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var direct bytes.Buffer
	if err := lbic.NewReport(res).WriteJSON(&direct); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(served, direct.Bytes()) {
		t.Fatalf("served trace report (%d bytes) differs from direct replay (%d bytes)", len(served), direct.Len())
	}
	if got := res.Benchmark; got != rt.Name() {
		t.Fatalf("replay Benchmark = %q, want the stream name %q", got, rt.Name())
	}

	// Same upload again: the result cache must serve it.
	before := counter(t, c, "resultcache.hits")
	if _, err := c.Simulate(ctx, req); err != nil {
		t.Fatal(err)
	}
	if after := counter(t, c, "resultcache.hits"); after != before+1 {
		t.Errorf("result cache hits %d -> %d, want +1", before, after)
	}

	// Hostile uploads are rejected up front, never simulated.
	bad := bytes.Clone(enc.Bytes())
	bad[len(bad)-1] ^= 0x01 // break the CRC footer
	for name, trace := range map[string][]byte{
		"corrupt": bad,
		"garbage": []byte("not a trace"),
	} {
		_, err := c.Simulate(ctx, client.SimulateRequest{Trace: trace, Port: client.Port("true-1")})
		var apiErr *client.APIError
		if !errors.As(err, &apiErr) || apiErr.StatusCode != http.StatusBadRequest {
			t.Errorf("%s upload: err = %v, want HTTP 400", name, err)
		}
	}
	_, err = c.Simulate(ctx, client.SimulateRequest{Trace: enc.Bytes(), Benchmark: "compress", Port: client.Port("true-1"), Insts: 1000})
	var apiErr *client.APIError
	if !errors.As(err, &apiErr) || apiErr.StatusCode != http.StatusBadRequest {
		t.Errorf("trace+benchmark: err = %v, want HTTP 400", err)
	}
}

func TestSimulateValidation(t *testing.T) {
	_, c := newTestServer(t, server.Options{})
	ctx := context.Background()
	cases := []struct {
		name string
		req  client.SimulateRequest
	}{
		{"no program", client.SimulateRequest{Port: client.Port("true-1"), Insts: 1000}},
		{"both programs", client.SimulateRequest{Benchmark: "compress", Pattern: "unit-stride", Port: client.Port("true-1"), Insts: 1000}},
		{"unknown benchmark", client.SimulateRequest{Benchmark: "doom", Port: client.Port("true-1"), Insts: 1000}},
		{"zero insts", client.SimulateRequest{Benchmark: "compress", Port: client.Port("true-1")}},
		{"bad port", client.SimulateRequest{Benchmark: "compress", Port: client.Port("warp-9"), Insts: 1000}},
		{"invalid port", client.SimulateRequest{Benchmark: "compress", Port: client.Port("bank-3"), Insts: 1000}},
		{"bad schema", client.SimulateRequest{Schema: "lbic-sim-request/v99", Benchmark: "compress", Port: client.Port("true-1"), Insts: 1000}},
	}
	for _, tc := range cases {
		_, err := c.Simulate(ctx, tc.req)
		var apiErr *client.APIError
		if !errors.As(err, &apiErr) || apiErr.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: err = %v, want HTTP 400", tc.name, err)
		}
	}
	// Unknown fields are rejected too (strict schema).
	resp, err := http.Post(c.BaseURL+"/v1/simulate", "application/json",
		bytes.NewReader([]byte(`{"schema":"lbic-sim-request/v1","benchmark":"compress","port":"true-1","insts":1000,"surprise":1}`)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown field: HTTP %d, want 400", resp.StatusCode)
	}
}

func TestConcurrentIdenticalRequestsRunOnce(t *testing.T) {
	_, c := newTestServer(t, server.Options{MaxParallel: 4})
	ctx := context.Background()
	req := client.SimulateRequest{Benchmark: "li", Port: client.Port("bank-4"), Insts: testInsts}

	const n = 8
	var wg sync.WaitGroup
	responses := make([][]byte, n)
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			responses[i], errs[i] = c.Simulate(ctx, req)
		}(i)
	}
	wg.Wait()
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("request %d: %v", i, errs[i])
		}
		if !bytes.Equal(responses[i], responses[0]) {
			t.Errorf("request %d returned different bytes", i)
		}
	}
	if got := counter(t, c, "server.cells_executed"); got != 1 {
		t.Errorf("cells_executed = %d, want 1 (singleflight + result cache)", got)
	}
	if got := counter(t, c, "tracecache.records"); got != 1 {
		t.Errorf("tracecache.records = %d, want 1 recording", got)
	}
}

// TestSweepByteIdenticalAndCached is the acceptance criterion: a /v1/sweep
// over the ten-benchmark table returns cells byte-identical to direct
// simulation, and an identical second request is served entirely from the
// result cache with zero new trace recordings.
func TestSweepByteIdenticalAndCached(t *testing.T) {
	if testing.Short() {
		t.Skip("ten-benchmark sweep in -short mode")
	}
	_, c := newTestServer(t, server.Options{})
	ctx := context.Background()
	req := client.SweepRequest{Ports: []client.PortSpec{client.Port("lbic-4x2")}, Insts: testInsts}

	st, err := c.Sweep(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if st.Total != len(lbic.BenchmarkNames()) {
		t.Fatalf("job total = %d, want %d", st.Total, len(lbic.BenchmarkNames()))
	}
	final, err := c.Wait(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != client.JobDone || final.Done != st.Total || final.Failed != 0 {
		t.Fatalf("job finished %+v", final)
	}
	byBench := make(map[string]client.CellResult)
	for _, cell := range final.Results {
		byBench[cell.Benchmark] = cell
	}
	for _, bench := range lbic.BenchmarkNames() {
		cell, ok := byBench[bench]
		if !ok {
			t.Fatalf("no cell for %s", bench)
		}
		// Job responses embed reports as json.RawMessage, which re-marshaling
		// compacts; compare against the compacted direct bytes.
		var direct bytes.Buffer
		if err := json.Compact(&direct, directReport(t, bench, "lbic-4x2", testInsts)); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(cell.Report, direct.Bytes()) {
			t.Errorf("%s: served cell differs from direct report", bench)
		}
	}

	records := counter(t, c, "tracecache.records")
	executed := counter(t, c, "server.cells_executed")
	if records != uint64(st.Total) || executed != uint64(st.Total) {
		t.Fatalf("first sweep: records=%d executed=%d, want %d each", records, executed, st.Total)
	}

	st2, err := c.Sweep(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	final2, err := c.Wait(ctx, st2.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final2.State != client.JobDone || final2.Failed != 0 {
		t.Fatalf("second job finished %+v", final2)
	}
	for _, cell := range final2.Results {
		if !cell.Cached {
			t.Errorf("%s: second sweep cell not served from the result cache", cell.Benchmark)
		}
		if !bytes.Equal(cell.Report, byBench[cell.Benchmark].Report) {
			t.Errorf("%s: second sweep cell bytes differ", cell.Benchmark)
		}
	}
	if got := counter(t, c, "tracecache.records"); got != records {
		t.Errorf("second sweep recorded %d new traces, want 0", got-records)
	}
	if got := counter(t, c, "server.cells_executed"); got != executed {
		t.Errorf("second sweep executed %d new cells, want 0", got-executed)
	}
	if hits := counter(t, c, "resultcache.hits"); hits < uint64(st.Total) {
		t.Errorf("resultcache.hits = %d, want >= %d", hits, st.Total)
	}
}

func TestGracefulDrainFinishesInFlightJobs(t *testing.T) {
	srv, c := newTestServer(t, server.Options{MaxParallel: 2})
	ctx := context.Background()
	st, err := c.Sweep(ctx, client.SweepRequest{
		Benchmarks: []string{"compress", "li"},
		Ports:      []client.PortSpec{client.Port("true-1"), client.Port("bank-4")},
		Insts:      testInsts,
	})
	if err != nil {
		t.Fatal(err)
	}

	srv.BeginDrain()
	// New work is rejected with 503 while the job keeps running.
	_, err = c.Simulate(ctx, client.SimulateRequest{Benchmark: "compress", Port: client.Port("true-1"), Insts: testInsts})
	var apiErr *client.APIError
	if !errors.As(err, &apiErr) || apiErr.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("during drain: err = %v, want HTTP 503", err)
	}
	if apiErr.RetryAfter < 1 {
		t.Errorf("503 without Retry-After")
	}
	if err := c.Healthz(ctx); err == nil {
		t.Error("healthz should fail while draining")
	}

	dctx, cancel := context.WithTimeout(ctx, time.Minute)
	defer cancel()
	if err := srv.Drain(dctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	// The in-flight job ran to completion during the drain.
	final, err := c.Job(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != client.JobDone || final.Done != final.Total || final.Failed != 0 {
		t.Fatalf("after drain, job = %+v, want all %d cells done", final, final.Total)
	}
}

func TestQueueFullBackpressure(t *testing.T) {
	_, c := newTestServer(t, server.Options{QueueLimit: 1})
	_, err := c.Sweep(context.Background(), client.SweepRequest{
		Benchmarks: []string{"compress", "li"},
		Ports:      []client.PortSpec{client.Port("true-1")},
		Insts:      testInsts,
	})
	var apiErr *client.APIError
	if !errors.As(err, &apiErr) || apiErr.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("err = %v, want HTTP 429", err)
	}
	if apiErr.RetryAfter < 1 {
		t.Errorf("429 without Retry-After")
	}
}

func TestUnknownJob(t *testing.T) {
	_, c := newTestServer(t, server.Options{})
	_, err := c.Job(context.Background(), "job-999")
	var apiErr *client.APIError
	if !errors.As(err, &apiErr) || apiErr.StatusCode != http.StatusNotFound {
		t.Fatalf("err = %v, want HTTP 404", err)
	}
}

func TestJobStreamDeliversEveryCell(t *testing.T) {
	_, c := newTestServer(t, server.Options{})
	ctx := context.Background()
	st, err := c.Sweep(ctx, client.SweepRequest{
		Benchmarks: []string{"compress", "li"},
		Ports:      []client.PortSpec{client.Port("true-2")},
		Insts:      testInsts,
	})
	if err != nil {
		t.Fatal(err)
	}
	var cells, dones int
	err = c.Stream(ctx, st.ID, func(ev client.StreamEvent) error {
		switch ev.Type {
		case "cell":
			if ev.Cell == nil || ev.Cell.Error != "" {
				return fmt.Errorf("bad cell event %+v", ev)
			}
			cells++
		case "done":
			if ev.Status == nil || ev.Status.State != client.JobDone {
				return fmt.Errorf("bad done event %+v", ev)
			}
			dones++
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if cells != st.Total || dones != 1 {
		t.Errorf("stream delivered %d cells / %d done events, want %d / 1", cells, dones, st.Total)
	}
}

func TestJobStreamSSE(t *testing.T) {
	_, c := newTestServer(t, server.Options{})
	ctx := context.Background()
	st, err := c.Sweep(ctx, client.SweepRequest{
		Benchmarks: []string{"compress"},
		Ports:      []client.PortSpec{client.Port("true-1")},
		Insts:      testInsts,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Wait(ctx, st.ID); err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+"/v1/jobs/"+st.ID+"/stream", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Accept", "text/event-stream")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Errorf("Content-Type = %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(body, []byte("event: cell\nid: 0\ndata: ")) || !bytes.Contains(body, []byte("event: done\nid: 1\ndata: ")) {
		t.Errorf("SSE body missing events (with id fields):\n%s", body)
	}
}

func TestMetricsTextExport(t *testing.T) {
	_, c := newTestServer(t, server.Options{})
	// The default is the Prometheus exposition format: valid per the
	// package's own validator and carrying the core counter families.
	resp, err := http.Get(c.BaseURL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if n, err := metrics.ValidateExposition(bytes.NewReader(body)); err != nil {
		t.Errorf("exposition invalid: %v\n%s", err, body)
	} else if n == 0 {
		t.Error("exposition has no samples")
	}
	for _, want := range []string{"server_requests_total", "tracecache_records_total", "resultcache_hits_total", "server_request_duration_seconds_bucket"} {
		if !bytes.Contains(body, []byte(want)) {
			t.Errorf("exposition missing %q:\n%s", want, body)
		}
	}

	// ?format=text keeps the human-aligned table view with dotted names.
	resp2, err := http.Get(c.BaseURL + "/metrics?format=text")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	body2, err := io.ReadAll(resp2.Body)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"server.requests", "tracecache.records", "resultcache.hits"} {
		if !bytes.Contains(body2, []byte(want)) {
			t.Errorf("text metrics missing %q:\n%s", want, body2)
		}
	}
}
