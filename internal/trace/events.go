package trace

import (
	"encoding/json"
	"io"
)

// Event is one structured simulator event: a cache access with its outcome,
// a bank conflict with its cause, a combined access, a miss, a writeback.
// Events stream as JSON Lines (one object per line) so a run's trace can be
// filtered and aggregated with standard tools; the §3/§4 same-bank and
// same-line conflict characterization of the paper can be recomputed from
// the "conflict" events alone.
//
// All fields are always present, so consumers need no schema negotiation:
// Seq and Bank are -1 where the event has no instruction or bank, Line is
// the L1 line *number* (address >> log2(lineSize)), and Cause refines Kind
// ("hit", "miss", "same-line", "store-queue-full", ...).
type Event struct {
	Cycle uint64 `json:"cycle"`
	Kind  string `json:"kind"`
	Seq   int64  `json:"seq"`
	Bank  int    `json:"bank"`
	Line  uint64 `json:"line"`
	Cause string `json:"cause"`
}

// Event kinds emitted by the instrumented layers.
const (
	// EvAccess is a granted L1 access; Cause carries the outcome
	// ("hit", "miss", "blocked") and Kind distinguishes loads
	// ("access") from committed-store writes ("write").
	EvAccess = "access"
	EvWrite  = "write"
	// EvConflict is a request stalled by its port organization; Cause names
	// why ("bank-busy", "same-line", "line-conflict", "port-saturation",
	// "store-queue-full", "greedy-bypass").
	EvConflict = "conflict"
	// EvCombine is a request granted by combining with a leading same-line
	// request in an LBIC line buffer.
	EvCombine = "combine"
	// EvMiss is an L1 demand miss allocating an MSHR.
	EvMiss = "miss"
	// EvWriteback is a dirty L1 victim written to L2.
	EvWriteback = "writeback"
)

// EventSink receives structured events. Implementations must tolerate the
// simulator's full event rate; emission sites are skipped entirely when the
// configured sink is nil.
type EventSink interface {
	Emit(Event)
}

// JSONLSink writes each event as one JSON line. Errors are sticky and
// latched rather than returned per event (the simulator hot path cannot
// unwind on a trace write failure); check Err after the run.
type JSONLSink struct {
	enc *json.Encoder
	err error
}

// NewJSONLSink returns a sink writing JSON Lines to w.
func NewJSONLSink(w io.Writer) *JSONLSink {
	return &JSONLSink{enc: json.NewEncoder(w)}
}

// Emit implements EventSink.
func (s *JSONLSink) Emit(e Event) {
	if s.err != nil {
		return
	}
	s.err = s.enc.Encode(e)
}

// Err returns the first write error, if any.
func (s *JSONLSink) Err() error { return s.err }

// CollectSink accumulates events in memory, for tests and programmatic
// consumers.
type CollectSink struct {
	Events []Event
}

// Emit implements EventSink.
func (s *CollectSink) Emit(e Event) { s.Events = append(s.Events, e) }
