package trace

import (
	"bytes"
	"encoding/json"
	"errors"
	"strings"
	"testing"
)

func TestJSONLSink(t *testing.T) {
	var buf bytes.Buffer
	s := NewJSONLSink(&buf)
	s.Emit(Event{Cycle: 3, Kind: EvConflict, Seq: 17, Bank: 2, Line: 40, Cause: "same-line"})
	s.Emit(Event{Cycle: 4, Kind: EvAccess, Seq: -1, Bank: -1, Line: 9, Cause: "hit"})
	if s.Err() != nil {
		t.Fatal(s.Err())
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want 2", len(lines))
	}
	var e Event
	if err := json.Unmarshal([]byte(lines[0]), &e); err != nil {
		t.Fatal(err)
	}
	if e.Cycle != 3 || e.Kind != EvConflict || e.Seq != 17 || e.Bank != 2 || e.Line != 40 || e.Cause != "same-line" {
		t.Fatalf("round trip = %+v", e)
	}
	// Every field is present on every line, even zero/absent values.
	for _, key := range []string{"cycle", "kind", "seq", "bank", "line", "cause"} {
		if !strings.Contains(lines[1], `"`+key+`"`) {
			t.Errorf("line %q missing field %q", lines[1], key)
		}
	}
}

type failWriter struct{ after int }

func (w *failWriter) Write(p []byte) (int, error) {
	if w.after <= 0 {
		return 0, errors.New("disk full")
	}
	w.after--
	return len(p), nil
}

func TestJSONLSinkStickyError(t *testing.T) {
	s := NewJSONLSink(&failWriter{after: 1})
	s.Emit(Event{Cycle: 1})
	if s.Err() != nil {
		t.Fatalf("first emit failed: %v", s.Err())
	}
	s.Emit(Event{Cycle: 2})
	if s.Err() == nil {
		t.Fatal("expected sticky error after writer failure")
	}
	s.Emit(Event{Cycle: 3}) // must not panic or clear the error
	if s.Err() == nil {
		t.Fatal("error was cleared")
	}
}

func TestCollectSink(t *testing.T) {
	var s CollectSink
	s.Emit(Event{Cycle: 1, Kind: EvMiss})
	s.Emit(Event{Cycle: 2, Kind: EvCombine})
	if len(s.Events) != 2 || s.Events[1].Kind != EvCombine {
		t.Fatalf("events = %+v", s.Events)
	}
}
