package trace

import (
	"testing"

	"lbic/internal/isa"
)

func TestSliceStreamRenumbersAndYields(t *testing.T) {
	s := NewSliceStream([]Dyn{
		{Op: isa.Add, Seq: 99},
		{Op: isa.Lw, Seq: 99},
	})
	var d Dyn
	if !s.Next(&d) || d.Seq != 0 {
		t.Errorf("first = %+v", d)
	}
	if !s.Next(&d) || d.Seq != 1 {
		t.Errorf("second = %+v", d)
	}
	if d.Class != isa.ClassLoad {
		t.Errorf("class not backfilled: %v", d.Class)
	}
	if s.Next(&d) {
		t.Error("stream should be exhausted")
	}
}

func TestDynPredicates(t *testing.T) {
	ld := Dyn{Class: isa.ClassLoad}
	st := Dyn{Class: isa.ClassStore}
	al := Dyn{Class: isa.ClassIntALU}
	if !ld.IsLoad() || !ld.IsMem() || ld.IsStore() {
		t.Error("load predicates wrong")
	}
	if !st.IsStore() || !st.IsMem() || st.IsLoad() {
		t.Error("store predicates wrong")
	}
	if al.IsMem() {
		t.Error("alu is not mem")
	}
}

func TestLimit(t *testing.T) {
	s := NewSliceStream(make([]Dyn, 10))
	l := &Limit{S: s, N: 3}
	var d Dyn
	n := 0
	for l.Next(&d) {
		n++
	}
	if n != 3 {
		t.Errorf("limit yielded %d, want 3", n)
	}
}

func TestLimitShortStream(t *testing.T) {
	s := NewSliceStream(make([]Dyn, 2))
	l := &Limit{S: s, N: 10}
	var d Dyn
	n := 0
	for l.Next(&d) {
		n++
	}
	if n != 2 {
		t.Errorf("limit yielded %d, want 2", n)
	}
}
