// Package trace defines the dynamic instruction stream that connects the
// functional emulator to the timing core. The paper's processor model has a
// perfect front end (perfect I-cache and branch prediction, §2.1) and its
// reported results carry no speculation effect (§2.2), so the committed path
// produced by functional-first execution is exactly the stream the timing
// model must process.
package trace

import "lbic/internal/isa"

// Dyn is one dynamic (executed) instruction.
type Dyn struct {
	// Seq is the dynamic instruction number, starting at 0.
	Seq uint64
	// PC is the static code index the instruction came from.
	PC int
	// Op is the opcode; Class caches Op.ClassOf().
	Op    isa.Op
	Class isa.Class
	// Src1, Src2 are source register dependencies (RegNone if absent).
	Src1, Src2 isa.Reg
	// Dst is the destination register (RegNone if absent).
	Dst isa.Reg
	// Addr and Size describe the memory access of loads and stores.
	Addr uint64
	Size uint8
	// Value carries the access's data, little-endian in the low Size bytes:
	// for loads the raw bytes read (before any sign extension), for stores
	// the bytes written. The timing core ignores it; the verification oracle
	// uses it as the ground truth the timed memory system must reproduce.
	Value uint64
}

// IsLoad reports whether the instruction reads memory.
func (d *Dyn) IsLoad() bool { return d.Class == isa.ClassLoad }

// IsStore reports whether the instruction writes memory.
func (d *Dyn) IsStore() bool { return d.Class == isa.ClassStore }

// IsMem reports whether the instruction accesses memory.
func (d *Dyn) IsMem() bool { return d.IsLoad() || d.IsStore() }

// Stream supplies dynamic instructions in program order.
type Stream interface {
	// Next fills d with the next dynamic instruction and reports whether one
	// was available. Once Next returns false the stream is exhausted.
	Next(d *Dyn) bool
}

// SliceStream adapts a pre-built []Dyn to a Stream; tests use it to drive
// the timing core with hand-crafted sequences.
type SliceStream struct {
	insts []Dyn
	pos   int
}

// NewSliceStream returns a Stream yielding the given instructions. Seq
// fields are renumbered to be consecutive from 0.
func NewSliceStream(insts []Dyn) *SliceStream {
	for i := range insts {
		insts[i].Seq = uint64(i)
		if insts[i].Class == isa.ClassNone && insts[i].Op != isa.Nop && insts[i].Op != isa.Halt {
			insts[i].Class = insts[i].Op.ClassOf()
		}
	}
	return &SliceStream{insts: insts}
}

// Next implements Stream.
func (s *SliceStream) Next(d *Dyn) bool {
	if s.pos >= len(s.insts) {
		return false
	}
	*d = s.insts[s.pos]
	s.pos++
	return true
}

// Limit wraps a stream, cutting it off after n instructions.
type Limit struct {
	S Stream
	N uint64

	seen uint64
}

// Next implements Stream.
func (l *Limit) Next(d *Dyn) bool {
	if l.seen >= l.N {
		return false
	}
	if !l.S.Next(d) {
		return false
	}
	l.seen++
	return true
}
