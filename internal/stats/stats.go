// Package stats provides small table-building and formatting helpers used by
// the experiment drivers to print the paper's tables and figures as text or
// Markdown.
package stats

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"text/tabwriter"
)

// Table is a simple column-oriented results table.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// NewTable returns a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row; cells beyond the header count are dropped, missing
// cells are blank.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.Headers))
	for i := range row {
		if i < len(cells) {
			row[i] = cells[i]
		}
	}
	t.Rows = append(t.Rows, row)
}

// AddRowf appends a row formatted from values: strings pass through, floats
// are rendered with three significant decimals, integers plainly.
func (t *Table) AddRowf(cells ...any) {
	row := make([]string, 0, len(cells))
	for _, c := range cells {
		row = append(row, formatCell(c))
	}
	t.AddRow(row...)
}

func formatCell(c any) string {
	switch v := c.(type) {
	case string:
		return v
	case float64:
		return FormatIPC(v)
	case float32:
		return FormatIPC(float64(v))
	case int, int64, uint64, uint32:
		return fmt.Sprintf("%d", v)
	default:
		return fmt.Sprint(v)
	}
}

// FormatIPC renders an IPC value the way the paper does: three fractional
// digits below 10, two at 10 and above (e.g. "6.202", "10.7").
func FormatIPC(v float64) string {
	if v >= 10 {
		return fmt.Sprintf("%.2f", v)
	}
	return fmt.Sprintf("%.3f", v)
}

// FormatPct renders a fraction as a percentage with one decimal.
func FormatPct(frac float64) string {
	return fmt.Sprintf("%.1f%%", 100*frac)
}

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) error {
	if t.Title != "" {
		if _, err := fmt.Fprintf(w, "%s\n%s\n", t.Title, strings.Repeat("=", len(t.Title))); err != nil {
			return err
		}
	}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, strings.Join(t.Headers, "\t"))
	for _, row := range t.Rows {
		fmt.Fprintln(tw, strings.Join(row, "\t"))
	}
	return tw.Flush()
}

// Markdown writes the table as a GitHub-flavored Markdown table.
func (t *Table) Markdown(w io.Writer) error {
	if t.Title != "" {
		if _, err := fmt.Fprintf(w, "### %s\n\n", t.Title); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "| %s |\n", strings.Join(t.Headers, " | ")); err != nil {
		return err
	}
	seps := make([]string, len(t.Headers))
	for i := range seps {
		seps[i] = "---"
	}
	if _, err := fmt.Fprintf(w, "|%s|\n", strings.Join(seps, "|")); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if _, err := fmt.Fprintf(w, "| %s |\n", strings.Join(row, " | ")); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

// JSON writes the table as a JSON object {title, headers, rows}, for
// machine-readable experiment output.
func (t *Table) JSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(struct {
		Title   string     `json:"title"`
		Headers []string   `json:"headers"`
		Rows    [][]string `json:"rows"`
	}{t.Title, t.Headers, t.Rows})
}

// Mean returns the arithmetic mean of vs (0 for empty input).
func Mean(vs []float64) float64 {
	if len(vs) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range vs {
		sum += v
	}
	return sum / float64(len(vs))
}
