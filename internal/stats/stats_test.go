package stats

import (
	"strings"
	"testing"
)

func TestTableRender(t *testing.T) {
	tab := NewTable("Demo", "A", "B")
	tab.AddRow("x", "1")
	tab.AddRow("yy", "22")
	var sb strings.Builder
	if err := tab.Render(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"Demo", "====", "A", "B", "x", "22"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q in:\n%s", want, out)
		}
	}
}

func TestTableMarkdown(t *testing.T) {
	tab := NewTable("Demo", "A", "B")
	tab.AddRow("x", "1")
	var sb strings.Builder
	if err := tab.Markdown(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "### Demo") {
		t.Error("missing markdown title")
	}
	if !strings.Contains(out, "| A | B |") {
		t.Errorf("missing header row:\n%s", out)
	}
	if !strings.Contains(out, "|---|---|") {
		t.Error("missing separator row")
	}
	if !strings.Contains(out, "| x | 1 |") {
		t.Error("missing data row")
	}
}

func TestAddRowPadsAndTruncates(t *testing.T) {
	tab := NewTable("", "A", "B")
	tab.AddRow("only")
	tab.AddRow("a", "b", "dropped")
	if len(tab.Rows[0]) != 2 || tab.Rows[0][1] != "" {
		t.Errorf("row 0 = %v", tab.Rows[0])
	}
	if len(tab.Rows[1]) != 2 {
		t.Errorf("row 1 = %v", tab.Rows[1])
	}
}

func TestAddRowf(t *testing.T) {
	tab := NewTable("", "A", "B", "C")
	tab.AddRowf("s", 3.14159, 42)
	if tab.Rows[0][0] != "s" {
		t.Errorf("string cell = %q", tab.Rows[0][0])
	}
	if tab.Rows[0][1] != "3.142" {
		t.Errorf("float cell = %q", tab.Rows[0][1])
	}
	if tab.Rows[0][2] != "42" {
		t.Errorf("int cell = %q", tab.Rows[0][2])
	}
}

func TestFormatIPC(t *testing.T) {
	cases := map[float64]string{
		6.2024: "6.202",
		10.73:  "10.73",
		0:      "0.000",
	}
	for v, want := range cases {
		if got := FormatIPC(v); got != want {
			t.Errorf("FormatIPC(%v) = %q, want %q", v, got, want)
		}
	}
}

func TestFormatPct(t *testing.T) {
	if got := FormatPct(0.354); got != "35.4%" {
		t.Errorf("FormatPct = %q", got)
	}
}

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Error("Mean(nil) != 0")
	}
	if got := Mean([]float64{1, 2, 3}); got != 2 {
		t.Errorf("Mean = %v", got)
	}
}

func TestTableNoTitle(t *testing.T) {
	tab := NewTable("", "A")
	tab.AddRow("x")
	var sb strings.Builder
	if err := tab.Render(&sb); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(sb.String(), "=") {
		t.Error("untitled table should have no underline")
	}
}

func TestTableJSON(t *testing.T) {
	tab := NewTable("Demo", "A", "B")
	tab.AddRow("x", "1")
	var sb strings.Builder
	if err := tab.JSON(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{`"title": "Demo"`, `"headers"`, `"x"`} {
		if !strings.Contains(out, want) {
			t.Errorf("json missing %s:\n%s", want, out)
		}
	}
}
