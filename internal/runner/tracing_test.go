package runner

import (
	"context"
	"strings"
	"testing"
	"time"

	"lbic/internal/tracing"
)

// TestCellSpansCloseOnFaults checks that every cell opened under a trace ends
// exactly once even when cells panic, retry, time out, or are abandoned for
// ignoring cancellation. Run under -race this also exercises the span
// ownership rule: attempt goroutines never annotate the cell span directly.
func TestCellSpansCloseOnFaults(t *testing.T) {
	oldGrace := abandonGrace
	abandonGrace = 20 * time.Millisecond
	defer func() { abandonGrace = oldGrace }()

	tr := tracing.New()
	ctx := tracing.NewContext(context.Background(), tr)
	ctx, root := tr.Start(ctx, "sweep")

	hangDone := make(chan struct{})
	cells := []Cell[int]{
		{Key: "ok", Run: func(ctx context.Context) (int, error) { return 1, nil }},
		{Key: "boom", Run: func(ctx context.Context) (int, error) { panic("kaboom") }},
		{Key: "hang", Run: func(ctx context.Context) (int, error) {
			// Ignore cancellation long past the grace window so the attempt
			// is abandoned, then exit so the test doesn't leak forever.
			defer close(hangDone)
			<-ctx.Done()
			time.Sleep(5 * abandonGrace)
			return 0, ctx.Err()
		}},
	}
	out, err := Run(ctx, cells, Options{
		Jobs:      3,
		Timeout:   30 * time.Millisecond,
		Retries:   1,
		KeepGoing: true,
	})
	root.End()
	if err != nil {
		t.Fatalf("Run with KeepGoing returned %v", err)
	}
	if out.Done != 1 || out.Failed != 2 {
		t.Fatalf("outcome = %d done, %d failed; want 1 and 2", out.Done, out.Failed)
	}
	<-hangDone // abandoned goroutine must still exit before we snapshot

	spans := tr.Snapshot()
	if _, err := tracing.ValidateTree(spans, true); err != nil {
		t.Fatalf("trace tree invalid: %v", err)
	}
	closed := map[string]int{}
	for _, sp := range spans {
		if !strings.HasPrefix(sp.Name, "cell ") {
			continue
		}
		if sp.Open {
			t.Errorf("span %q left open", sp.Name)
			continue
		}
		closed[sp.Name]++
		if sp.Attrs["attempts"] == nil {
			t.Errorf("span %q missing attempts attr: %v", sp.Name, sp.Attrs)
		}
	}
	for _, key := range []string{"ok", "boom", "hang"} {
		if n := closed["cell "+key]; n != 1 {
			t.Errorf("cell %q closed %d spans, want exactly 1", key, n)
		}
	}

	// Fault detail lands on the right spans: the panic cell records its
	// retry and error, the abandoned cell records the abandonment event.
	byName := map[string]tracing.SpanData{}
	for _, sp := range spans {
		byName[sp.Name] = sp
	}
	if sp := byName["cell boom"]; sp.Attrs["error"] == nil || sp.Attrs["attempts"] != 2 {
		t.Errorf("panic cell span = %+v, want error attr and 2 attempts", sp.Attrs)
	}
	var abandoned bool
	for _, ev := range byName["cell hang"].Events {
		if ev.Name == "abandoned" {
			abandoned = true
		}
	}
	if !abandoned {
		t.Errorf("hung cell span missing abandoned event: %+v", byName["cell hang"])
	}
}
