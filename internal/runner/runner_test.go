package runner

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func intCell(key string, v int) Cell[int] {
	return Cell[int]{Key: key, Run: func(context.Context) (int, error) { return v, nil }}
}

func TestRunSerialAndParallelAgree(t *testing.T) {
	cells := make([]Cell[int], 20)
	for i := range cells {
		cells[i] = intCell(fmt.Sprintf("c%02d", i), i*i)
	}
	for _, jobs := range []int{0, 1, 4, 32} {
		out, err := Run(context.Background(), cells, Options{Jobs: jobs})
		if err != nil {
			t.Fatalf("jobs=%d: %v", jobs, err)
		}
		if out.Done != len(cells) || out.Failed != 0 || out.Skipped != 0 {
			t.Fatalf("jobs=%d: tallies %+v", jobs, out)
		}
		for i, r := range out.Results {
			if r.Key != cells[i].Key || r.Value != i*i || r.Err != nil {
				t.Fatalf("jobs=%d cell %d: %+v", jobs, i, r)
			}
		}
	}
}

func TestRunRejectsDuplicateKeys(t *testing.T) {
	cells := []Cell[int]{intCell("a", 1), intCell("a", 2)}
	if _, err := Run(context.Background(), cells, Options{}); err == nil {
		t.Fatal("duplicate keys accepted")
	}
	if _, err := Run(context.Background(), []Cell[int]{{Key: ""}}, Options{}); err == nil {
		t.Fatal("empty key accepted")
	}
}

func TestPanicIsolatedToOneCell(t *testing.T) {
	cells := []Cell[int]{
		intCell("ok1", 1),
		{Key: "boom", Run: func(context.Context) (int, error) { panic("cell exploded") }},
		intCell("ok2", 2),
	}
	out, err := Run(context.Background(), cells, Options{Jobs: 2, KeepGoing: true})
	if err != nil {
		t.Fatalf("KeepGoing run errored: %v", err)
	}
	if out.Done != 2 || out.Failed != 1 {
		t.Fatalf("tallies %+v", out)
	}
	var pe *PanicError
	if !errors.As(out.Results[1].Err, &pe) {
		t.Fatalf("boom err = %v, want *PanicError", out.Results[1].Err)
	}
	if fmt.Sprint(pe.Value) != "cell exploded" || len(pe.Stack) == 0 {
		t.Errorf("PanicError = {%v, %d stack bytes}", pe.Value, len(pe.Stack))
	}
	if out.Results[0].Err != nil || out.Results[2].Err != nil {
		t.Error("healthy cells affected by neighbour panic")
	}
}

func TestFailFastSkipsRemainder(t *testing.T) {
	ran := int32(0)
	cells := []Cell[int]{
		{Key: "bad", Run: func(context.Context) (int, error) { return 0, errors.New("broken") }},
		{Key: "later", Run: func(context.Context) (int, error) {
			atomic.AddInt32(&ran, 1)
			return 1, nil
		}},
	}
	out, err := Run(context.Background(), cells, Options{}) // serial, fail-fast
	if err == nil {
		t.Fatal("fail-fast run returned nil error despite a failed cell")
	}
	if got := atomic.LoadInt32(&ran); got != 0 {
		t.Errorf("later cell ran %d times after failure", got)
	}
	if !errors.Is(out.Results[1].Err, ErrSkipped) || out.Skipped != 1 {
		t.Errorf("later cell = %+v, want ErrSkipped", out.Results[1])
	}
}

func TestTimeoutFiresAndIsReported(t *testing.T) {
	old := abandonGrace
	abandonGrace = 10 * time.Millisecond
	defer func() { abandonGrace = old }()

	cells := []Cell[int]{
		{Key: "hang", Run: func(ctx context.Context) (int, error) {
			<-ctx.Done() // cooperative: unwinds on cancellation
			return 0, ctx.Err()
		}},
		{Key: "wedge", Run: func(context.Context) (int, error) {
			select {} // ignores cancellation entirely
		}},
		intCell("ok", 7),
	}
	start := time.Now()
	out, err := Run(context.Background(), cells,
		Options{Jobs: 3, Timeout: 30 * time.Millisecond, KeepGoing: true})
	if err != nil {
		t.Fatalf("KeepGoing run errored: %v", err)
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("timeout did not bound the sweep")
	}
	for _, i := range []int{0, 1} {
		if !errors.Is(out.Results[i].Err, context.DeadlineExceeded) {
			t.Errorf("%s err = %v, want deadline exceeded", out.Results[i].Key, out.Results[i].Err)
		}
	}
	if out.Results[2].Err != nil || out.Results[2].Value != 7 {
		t.Errorf("healthy cell affected: %+v", out.Results[2])
	}
}

func TestRetryOnTransientFailure(t *testing.T) {
	tries := 0
	cells := []Cell[int]{{Key: "flaky", Run: func(context.Context) (int, error) {
		tries++
		if tries == 1 {
			return 0, errors.New("transient")
		}
		return 42, nil
	}}}
	out, err := Run(context.Background(), cells, Options{Retries: 1})
	if err != nil {
		t.Fatal(err)
	}
	if out.Results[0].Value != 42 || out.Results[0].Attempts != 2 {
		t.Fatalf("flaky cell = %+v, want value 42 after 2 attempts", out.Results[0])
	}
}

func TestTimeoutIsNotRetried(t *testing.T) {
	old := abandonGrace
	abandonGrace = 5 * time.Millisecond
	defer func() { abandonGrace = old }()
	tries := int32(0)
	cells := []Cell[int]{{Key: "slow", Run: func(ctx context.Context) (int, error) {
		atomic.AddInt32(&tries, 1)
		<-ctx.Done()
		return 0, ctx.Err()
	}}}
	out, _ := Run(context.Background(), cells,
		Options{Timeout: 10 * time.Millisecond, Retries: 3, KeepGoing: true})
	if got := atomic.LoadInt32(&tries); got != 1 {
		t.Errorf("timed-out cell attempted %d times, want 1", got)
	}
	if out.Results[0].Attempts != 1 {
		t.Errorf("Attempts = %d, want 1", out.Results[0].Attempts)
	}
}

func TestStopChannelGracefulSkip(t *testing.T) {
	stop := make(chan struct{})
	started := make(chan struct{})
	release := make(chan struct{})
	cells := []Cell[int]{
		{Key: "inflight", Run: func(context.Context) (int, error) {
			close(started)
			<-release
			return 1, nil
		}},
		intCell("never", 2),
	}
	go func() {
		<-started
		close(stop) // request graceful shutdown while cell 0 is in flight
		close(release)
	}()
	out, err := Run(context.Background(), cells, Options{Jobs: 1, Stop: stop})
	if err != nil {
		t.Fatalf("graceful stop returned error: %v", err)
	}
	if out.Results[0].Err != nil || out.Results[0].Value != 1 {
		t.Errorf("in-flight cell = %+v, want it to finish", out.Results[0])
	}
	if !errors.Is(out.Results[1].Err, ErrSkipped) {
		t.Errorf("queued cell = %+v, want ErrSkipped", out.Results[1])
	}
}

func TestJournalRoundTripResume(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.jsonl")

	// First pass: two successes, one failure.
	j, err := OpenJournal(path, false)
	if err != nil {
		t.Fatal(err)
	}
	cells := []Cell[int]{
		intCell("a", 10),
		{Key: "b", Run: func(context.Context) (int, error) { return 0, errors.New("first pass fails") }},
		intCell("c", 30),
	}
	out, err := Run(context.Background(), cells, Options{Journal: j, KeepGoing: true})
	if err != nil || out.Done != 2 || out.Failed != 1 {
		t.Fatalf("first pass: %v %+v", err, out)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	// Second pass resumes: a and c must come from the journal, only b runs.
	j2, err := OpenJournal(path, true)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if j2.Resumed() != 2 {
		t.Fatalf("Resumed() = %d, want 2", j2.Resumed())
	}
	executed := map[string]bool{}
	cells2 := []Cell[int]{
		{Key: "a", Run: func(context.Context) (int, error) { executed["a"] = true; return -1, nil }},
		{Key: "b", Run: func(context.Context) (int, error) { executed["b"] = true; return 20, nil }},
		{Key: "c", Run: func(context.Context) (int, error) { executed["c"] = true; return -1, nil }},
	}
	out2, err := Run(context.Background(), cells2, Options{Journal: j2})
	if err != nil {
		t.Fatal(err)
	}
	if executed["a"] || executed["c"] || !executed["b"] {
		t.Fatalf("executed = %v, want only b", executed)
	}
	want := map[string]int{"a": 10, "b": 20, "c": 30}
	for _, r := range out2.Results {
		if r.Value != want[r.Key] {
			t.Errorf("%s = %d, want %d", r.Key, r.Value, want[r.Key])
		}
	}
	if !out2.Results[0].Cached || out2.Results[1].Cached || !out2.Results[2].Cached {
		t.Errorf("cached flags = %v %v %v, want true false true",
			out2.Results[0].Cached, out2.Results[1].Cached, out2.Results[2].Cached)
	}
}

func TestJournalSkipsCorruptLines(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.jsonl")
	j, err := OpenJournal(path, false)
	if err != nil {
		t.Fatal(err)
	}
	j.Record("good", 5)
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	// Simulate a torn write from a killed process.
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"v":1,"key":"torn","val`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	j2, err := OpenJournal(path, true)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if j2.Resumed() != 1 {
		t.Fatalf("Resumed() = %d, want 1 (corrupt line skipped)", j2.Resumed())
	}
	if _, ok := j2.Lookup("good"); !ok {
		t.Error("intact entry lost")
	}
	if _, ok := j2.Lookup("torn"); ok {
		t.Error("corrupt entry resurrected")
	}
}

// TestJournalMidWriteFailureLeavesResumableJournal: a write failure halfway
// through a sweep (the fd goes bad under the journal — disk full, killed
// process, revoked mount) must not poison the checkpoint: entries recorded
// before the failure stay resumable, later records are served from memory
// for the running sweep, and Close surfaces the sticky write error.
func TestJournalMidWriteFailureLeavesResumableJournal(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.jsonl")
	j, err := OpenJournal(path, false)
	if err != nil {
		t.Fatal(err)
	}
	j.Record("before", 1)
	// Kill the fd out from under the journal: every later write fails the
	// way it would if the process lost the file mid-sweep.
	if err := j.f.Close(); err != nil {
		t.Fatal(err)
	}
	j.Record("after", 2)

	// The running sweep still benefits from the in-memory entry.
	if _, ok := j.Lookup("after"); !ok {
		t.Error("in-memory entry lost after write failure")
	}
	// fail() is what Record's marshal path uses; a direct failure must also
	// be sticky and must not displace the first error.
	j.fail(errors.New("second failure"))
	err = j.Close()
	if err == nil {
		t.Fatal("Close() = nil, want the sticky write error")
	}
	if got := err.Error(); !strings.Contains(got, `"after"`) {
		t.Errorf("Close() = %v, want the first (mid-write) failure", err)
	}

	// The journal on disk is still a valid checkpoint: resuming loads the
	// pre-failure entry and reruns only the lost cell.
	j2, err := OpenJournal(path, true)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if j2.Resumed() != 1 {
		t.Fatalf("Resumed() = %d, want 1", j2.Resumed())
	}
	if _, ok := j2.Lookup("before"); !ok {
		t.Error("pre-failure entry lost")
	}
	if _, ok := j2.Lookup("after"); ok {
		t.Error("failed write resurrected on resume")
	}
}

func TestContextCancelReturnsError(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	cells := []Cell[int]{intCell("a", 1)}
	out, err := Run(ctx, cells, Options{})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Run(canceled ctx) = %v, want context.Canceled", err)
	}
	if !errors.Is(out.Results[0].Err, ErrSkipped) {
		t.Errorf("cell = %+v, want ErrSkipped", out.Results[0])
	}
}
