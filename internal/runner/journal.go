package runner

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"sync"
)

// Journal is a checkpoint of completed sweep cells: one JSONL line per
// success, keyed by the cell's stable configuration key. Opening it in
// resume mode loads every prior entry, so a rerun serves finished cells from
// the checkpoint and only re-executes the cells that failed or never ran —
// failures are deliberately not recorded. A Journal is safe for concurrent
// use by one process; it does not lock the file against other processes.
type Journal struct {
	mu       sync.Mutex
	f        *os.File
	entries  map[string]json.RawMessage
	loaded   int // entries read from an existing file at open
	writeErr error
}

// journalLine is the on-disk record. The version field guards against
// reading a future format as data.
type journalLine struct {
	V     int             `json:"v"`
	Key   string          `json:"key"`
	Value json.RawMessage `json:"value"`
}

const journalVersion = 1

// OpenJournal opens (or creates) a journal at path. With resume, existing
// entries are loaded and new ones appended; without, the file is truncated.
// Corrupt lines — a torn write from a killed process — are skipped, not
// fatal: the affected cells simply rerun.
func OpenJournal(path string, resume bool) (*Journal, error) {
	j := &Journal{entries: make(map[string]json.RawMessage)}
	if resume {
		if err := j.load(path); err != nil {
			return nil, err
		}
	}
	flags := os.O_CREATE | os.O_WRONLY
	if resume {
		flags |= os.O_APPEND
	} else {
		flags |= os.O_TRUNC
	}
	f, err := os.OpenFile(path, flags, 0o644)
	if err != nil {
		return nil, fmt.Errorf("runner: opening journal: %w", err)
	}
	j.f = f
	return j, nil
}

func (j *Journal) load(path string) error {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return nil // first run of a sweep the user already marked resumable
	}
	if err != nil {
		return fmt.Errorf("runner: reading journal: %w", err)
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<24)
	for sc.Scan() {
		var line journalLine
		if json.Unmarshal(sc.Bytes(), &line) != nil || line.V != journalVersion || line.Key == "" {
			continue
		}
		j.entries[line.Key] = line.Value
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("runner: reading journal: %w", err)
	}
	j.loaded = len(j.entries)
	return nil
}

// Lookup returns the recorded value for key, if present.
func (j *Journal) Lookup(key string) (json.RawMessage, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	raw, ok := j.entries[key]
	return raw, ok
}

// Record checkpoints a completed cell. Write errors are sticky and surface
// from Close; the in-memory entry is kept either way so the running sweep
// still benefits.
func (j *Journal) Record(key string, value any) {
	raw, err := json.Marshal(value)
	if err != nil {
		j.fail(fmt.Errorf("runner: journaling %q: %w", key, err))
		return
	}
	line, err := json.Marshal(journalLine{V: journalVersion, Key: key, Value: raw})
	if err != nil {
		j.fail(fmt.Errorf("runner: journaling %q: %w", key, err))
		return
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	j.entries[key] = raw
	if j.f == nil {
		return
	}
	if _, err := j.f.Write(append(line, '\n')); err != nil && j.writeErr == nil {
		j.writeErr = fmt.Errorf("runner: journaling %q: %w", key, err)
	}
}

func (j *Journal) fail(err error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.writeErr == nil {
		j.writeErr = err
	}
}

// Resumed returns how many entries were loaded from disk at open.
func (j *Journal) Resumed() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.loaded
}

// Len returns the number of checkpointed cells, loaded plus recorded.
func (j *Journal) Len() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return len(j.entries)
}

// Close flushes the journal file and reports the first write error, if any.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f != nil {
		if err := j.f.Close(); err != nil && j.writeErr == nil {
			j.writeErr = fmt.Errorf("runner: closing journal: %w", err)
		}
		j.f = nil
	}
	return j.writeErr
}
