package runner

import (
	"context"
	"errors"
	"testing"
	"time"
)

// TestBackoffScheduleShape asserts the nominal schedule: exponential growth
// from Base by Factor, capped at Max, with jitter bounding each delay to
// [nominal*(1-J), nominal*(1+J)) — all pure computation, no sleeping.
func TestBackoffScheduleShape(t *testing.T) {
	b := Backoff{Base: 100 * time.Millisecond, Max: 5 * time.Second, Factor: 2, Jitter: 0.5}
	nominal := []time.Duration{
		100 * time.Millisecond, // attempt 1
		200 * time.Millisecond,
		400 * time.Millisecond,
		800 * time.Millisecond,
		1600 * time.Millisecond,
		3200 * time.Millisecond,
		5 * time.Second, // capped
		5 * time.Second,
	}
	for i, n := range nominal {
		attempt := i + 1
		d := b.Delay("sim/compress/lbic-4x2/i1000000", attempt)
		lo := time.Duration(float64(n) * 0.5)
		hi := time.Duration(float64(n) * 1.5)
		if hi > b.Max {
			hi = b.Max
		}
		if d < lo || d > hi {
			t.Errorf("attempt %d: delay %v outside [%v, %v]", attempt, d, lo, hi)
		}
	}
}

// TestBackoffDeterministicJitter: same (key, attempt) always produces the
// same delay; different keys decorrelate.
func TestBackoffDeterministicJitter(t *testing.T) {
	b := Backoff{} // default schedule
	for attempt := 1; attempt <= 5; attempt++ {
		a := b.Delay("cell-a", attempt)
		if again := b.Delay("cell-a", attempt); again != a {
			t.Fatalf("attempt %d: delay not deterministic (%v then %v)", attempt, a, again)
		}
	}
	same := 0
	for attempt := 1; attempt <= 8; attempt++ {
		if b.Delay("cell-a", attempt) == b.Delay("cell-b", attempt) {
			same++
		}
	}
	if same == 8 {
		t.Error("jitter identical across keys for all attempts; keys do not decorrelate")
	}
}

func TestBackoffZeroValueIsDefault(t *testing.T) {
	var b Backoff
	d := b.Delay("k", 1)
	if d <= 0 || d > DefaultBackoff.Max {
		t.Errorf("zero-value Backoff attempt-1 delay = %v, want within the default schedule", d)
	}
	none := Backoff{Base: -1}
	for attempt := 1; attempt <= 4; attempt++ {
		if d := none.Delay("k", attempt); d != 0 {
			t.Errorf("Base<0 attempt %d: delay = %v, want 0", attempt, d)
		}
	}
}

func TestBackoffJitterClamped(t *testing.T) {
	b := Backoff{Base: time.Second, Max: time.Minute, Factor: 2, Jitter: 5}
	for attempt := 1; attempt <= 6; attempt++ {
		d := b.Delay("k", attempt)
		if d < 0 || d > time.Minute {
			t.Errorf("attempt %d: delay %v outside [0, Max]", attempt, d)
		}
	}
}

// TestRunRetryFollowsBackoffSchedule swaps the package sleep hook so the
// retry loop's schedule is recorded instead of slept: Options.Retries worth
// of waits, each exactly Backoff.Delay(key, attempt), no wall-clock cost.
func TestRunRetryFollowsBackoffSchedule(t *testing.T) {
	var recorded []time.Duration
	old := sleepFn
	sleepFn = func(ctx context.Context, d time.Duration) error {
		recorded = append(recorded, d)
		return ctx.Err()
	}
	defer func() { sleepFn = old }()

	b := Backoff{Base: 50 * time.Millisecond, Max: time.Second, Factor: 3, Jitter: 0.25}
	const retries = 3
	tries := 0
	cells := []Cell[int]{{Key: "flaky/cell", Run: func(context.Context) (int, error) {
		tries++
		return 0, errors.New("always fails")
	}}}
	out, _ := Run(context.Background(), cells, Options{Retries: retries, Backoff: b, KeepGoing: true})

	if tries != retries+1 {
		t.Fatalf("cell executed %d times, want %d (Options.Retries honored)", tries, retries+1)
	}
	if out.Results[0].Attempts != retries+1 {
		t.Errorf("Attempts = %d, want %d", out.Results[0].Attempts, retries+1)
	}
	if len(recorded) != retries {
		t.Fatalf("recorded %d backoff waits, want %d", len(recorded), retries)
	}
	for i, d := range recorded {
		want := b.Delay("flaky/cell", i+1)
		if d != want {
			t.Errorf("wait %d = %v, want Delay(key, %d) = %v", i, d, i+1, want)
		}
	}
	// The schedule must grow: attempt 2's nominal delay triples attempt 1's,
	// which jitter (±25%) cannot invert.
	if recorded[1] <= recorded[0] {
		t.Errorf("backoff not growing: %v then %v", recorded[0], recorded[1])
	}
}

// TestRunBackoffSleepCanceledStopsRetrying: a context canceled during the
// backoff wait ends the cell with its own error instead of burning the
// remaining attempts.
func TestRunBackoffSleepCanceledStopsRetrying(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	old := sleepFn
	sleepFn = func(ctx context.Context, d time.Duration) error {
		cancel() // cancellation arrives mid-wait
		return context.Canceled
	}
	defer func() { sleepFn = old }()

	tries := 0
	cells := []Cell[int]{{Key: "c", Run: func(context.Context) (int, error) {
		tries++
		return 0, errors.New("transient")
	}}}
	out, err := Run(ctx, cells, Options{Retries: 5, KeepGoing: true})
	if tries != 1 {
		t.Errorf("cell executed %d times, want 1 (no retries after canceled wait)", tries)
	}
	if out.Results[0].Err == nil {
		t.Error("cell error lost")
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("Run err = %v, want context.Canceled", err)
	}
}
