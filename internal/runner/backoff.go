package runner

import (
	"context"
	"hash/fnv"
	"time"
)

// Backoff computes the delay before each re-attempt of a failed cell:
// capped exponential growth with deterministic jitter. The jitter is a pure
// function of the cell key and attempt number, so a given sweep produces the
// same retry schedule on every run — reproducibility is a project invariant,
// and "retry timing" must not be the one nondeterministic part of it — while
// distinct cells still decorrelate (no retry stampede when a whole sweep's
// worth of cells fails at once against a shared resource).
type Backoff struct {
	// Base is the nominal delay before the first retry. Default 100ms.
	Base time.Duration
	// Max caps the post-jitter delay. Default 5s.
	Max time.Duration
	// Factor multiplies the delay each further attempt. Default 2.
	Factor float64
	// Jitter spreads each delay multiplicatively over
	// [1-Jitter, 1+Jitter). Default 0.5; 0 disables jitter. Values are
	// clamped to [0, 1).
	Jitter float64
}

// DefaultBackoff is the schedule used when Options.Backoff is the zero
// value: 100ms nominal first retry, doubling, capped at 5s, ±50% jitter.
var DefaultBackoff = Backoff{
	Base:   100 * time.Millisecond,
	Max:    5 * time.Second,
	Factor: 2,
	Jitter: 0.5,
}

// withDefaults fills zero fields from DefaultBackoff. A wholly zero Backoff
// becomes the default schedule; set Base < 0 to request no delay at all.
func (b Backoff) withDefaults() Backoff {
	if b.Base == 0 {
		b.Base = DefaultBackoff.Base
	}
	if b.Max == 0 {
		b.Max = DefaultBackoff.Max
	}
	if b.Factor == 0 {
		b.Factor = DefaultBackoff.Factor
	}
	if b.Jitter == 0 {
		b.Jitter = DefaultBackoff.Jitter
	}
	if b.Jitter < 0 {
		b.Jitter = 0
	}
	if b.Jitter >= 1 {
		b.Jitter = 0.999
	}
	return b
}

// Delay returns the wait before retry number attempt (1-based: attempt 1 is
// the delay between the first failure and the second execution) of the cell
// identified by key. Negative Base disables waiting entirely.
func (b Backoff) Delay(key string, attempt int) time.Duration {
	b = b.withDefaults()
	if b.Base < 0 {
		return 0
	}
	if attempt < 1 {
		attempt = 1
	}
	d := float64(b.Base)
	for i := 1; i < attempt; i++ {
		d *= b.Factor
		if d >= float64(b.Max) {
			d = float64(b.Max)
			break
		}
	}
	if b.Jitter > 0 {
		// Deterministic jitter: a 64-bit hash of (key, attempt) mapped to
		// [0, 1) scales the delay into [1-J, 1+J).
		h := fnv.New64a()
		h.Write([]byte(key))
		h.Write([]byte{byte(attempt), byte(attempt >> 8), byte(attempt >> 16), byte(attempt >> 24)})
		u := float64(h.Sum64()>>11) / float64(1<<53) // 53 uniform bits in [0,1)
		d *= 1 - b.Jitter + 2*b.Jitter*u
	}
	if d > float64(b.Max) {
		d = float64(b.Max)
	}
	if d < 0 {
		d = 0
	}
	return time.Duration(d)
}

// sleepFn waits for d or until ctx is done, returning ctx.Err() in the
// latter case. Package variable so backoff tests can record the schedule
// without sleeping wall-clock time.
var sleepFn = func(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
