// Package runner executes sweeps of independent simulation cells — one cell
// per (program, port organization, budget) point — with bounded parallelism,
// per-cell fault isolation, and checkpoint/resume. It exists so a single
// panicking arbiter, hung pipeline, or impatient ^C costs one table cell, not
// a whole evaluation run: every failure is contained in its cell's Result,
// and a journal of completed cells lets an interrupted sweep pick up where it
// left off.
package runner

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"runtime/debug"
	"runtime/pprof"
	"sync"
	"time"

	"lbic/internal/tracing"
)

// Cell is one independent unit of sweep work.
type Cell[T any] struct {
	// Key identifies the cell across runs; it must be unique within a sweep
	// and stable for a given configuration, because it is the journal's
	// checkpoint key. Use a readable encoding of the full configuration,
	// e.g. "sim/compress/lbic-4x2/i1000000".
	Key string
	// Run computes the cell. It must honor ctx promptly: a cell that ignores
	// cancellation is abandoned (its goroutine leaks until it returns) once
	// the grace window after its deadline expires.
	Run func(ctx context.Context) (T, error)
	// Labels are extra pprof label key/value pairs attached to the cell's
	// execution, alongside the always-present "cell" key. A batched sweep
	// sets ("lanes", K) here so a CPU profile attributes scalar vs laned
	// stepping per cell.
	Labels []string
}

// Result is the outcome of one cell.
type Result[T any] struct {
	Key   string
	Value T
	// Err is nil on success, ErrSkipped if the sweep stopped before the cell
	// started, a *PanicError if the cell panicked, or the cell's own error.
	Err error
	// Attempts counts executions (0 for cached or skipped cells).
	Attempts int
	// Elapsed is the total wall-clock time across attempts.
	Elapsed time.Duration
	// Cached reports that the value was served from the journal.
	Cached bool
}

// Options configures a sweep.
type Options struct {
	// Jobs bounds concurrently running cells; 0 or 1 means serial.
	Jobs int
	// Timeout bounds each attempt of each cell (0 = none).
	Timeout time.Duration
	// Retries is how many times a failed cell is re-attempted. Timeouts,
	// cancellations, and skips are never retried — a hung cell would just
	// hang again.
	Retries int
	// Backoff schedules the wait before each re-attempt. The zero value
	// selects DefaultBackoff (capped exponential with deterministic jitter);
	// set Backoff.Base < 0 for immediate retries.
	Backoff Backoff
	// KeepGoing makes Run return a nil error even when cells failed, leaving
	// per-cell errors in the Outcome; without it the first failure stops the
	// sweep (in-flight cells finish, unstarted ones are marked ErrSkipped).
	KeepGoing bool
	// Journal, when non-nil, serves previously completed cells from its
	// checkpoint and records each new success.
	Journal *Journal
	// Stop, when non-nil, requests graceful shutdown when it becomes
	// readable: no new cells start, in-flight cells finish (or time out),
	// and the remainder are marked ErrSkipped. Unlike ctx cancellation it is
	// not an error: Run returns the partial Outcome with a nil error.
	Stop <-chan struct{}
	// OnCell, when non-nil, is called after each cell settles (success,
	// failure, cache hit, or skip), serialized across workers.
	OnCell func(key string, err error)
}

// Outcome is the result of a sweep: one Result per input cell, in input
// order, plus tallies.
type Outcome[T any] struct {
	Results []Result[T]
	Done    int // succeeded, including journal cache hits
	Failed  int // ran and failed
	Skipped int // never started (stop requested or fail-fast)
}

// ErrSkipped marks cells that never ran because the sweep stopped first.
var ErrSkipped = errors.New("runner: cell skipped")

// PanicError is a panic recovered from a cell, with the stack at the point
// of the panic.
type PanicError struct {
	Value any
	Stack []byte
}

// Error implements error. The stack is deliberately not included — render it
// from the Stack field when wanted.
func (e *PanicError) Error() string { return fmt.Sprintf("panic: %v", e.Value) }

// abandonGrace is how long a timed-out cell gets to notice cancellation
// before its goroutine is abandoned. Package variable for tests.
var abandonGrace = 100 * time.Millisecond

// Run executes the cells and returns one Result each, in input order. The
// returned error is nil unless the context was canceled, a cell key is
// duplicated or empty, or (without Options.KeepGoing) a cell failed — in
// which case it wraps the first failure in input order. The Outcome is valid
// in every case, including on error.
func Run[T any](ctx context.Context, cells []Cell[T], opts Options) (Outcome[T], error) {
	out := Outcome[T]{Results: make([]Result[T], len(cells))}
	seen := make(map[string]struct{}, len(cells))
	for i, c := range cells {
		if c.Key == "" {
			return out, fmt.Errorf("runner: cell %d has an empty key", i)
		}
		if _, dup := seen[c.Key]; dup {
			return out, fmt.Errorf("runner: duplicate cell key %q", c.Key)
		}
		seen[c.Key] = struct{}{}
	}

	jobs := opts.Jobs
	if jobs < 1 {
		jobs = 1
	}

	var (
		wg       sync.WaitGroup
		mu       sync.Mutex // guards settle() and fail-fast bookkeeping
		sem      = make(chan struct{}, jobs)
		halt     = make(chan struct{}) // closed to stop launching new cells
		haltOnce sync.Once
		allDone  = make(chan struct{})
	)
	stop := func() { haltOnce.Do(func() { close(halt) }) }
	if opts.Stop != nil {
		go func() {
			select {
			case <-opts.Stop:
				stop()
			case <-allDone:
			}
		}()
	}

	settle := func(i int, r Result[T]) {
		mu.Lock()
		defer mu.Unlock()
		out.Results[i] = r
		switch {
		case r.Err == nil:
			out.Done++
		case errors.Is(r.Err, ErrSkipped):
			out.Skipped++
		default:
			out.Failed++
			if !opts.KeepGoing {
				stop()
			}
		}
		if opts.OnCell != nil {
			opts.OnCell(r.Key, r.Err)
		}
	}

	// stopRequested gives halt and Stop priority over a free worker slot: a
	// bare select picks among ready cases at random, which would let a cell
	// launch after shutdown was already requested.
	stopRequested := func() bool {
		if ctx.Err() != nil {
			return true
		}
		select {
		case <-halt:
			return true
		default:
		}
		if opts.Stop != nil {
			select {
			case <-opts.Stop:
				stop()
				return true
			default:
			}
		}
		return false
	}

	for i := range cells {
		skip := stopRequested()
		if !skip {
			select {
			case <-ctx.Done():
				skip = true
			case <-halt:
				skip = true
			case sem <- struct{}{}:
				// A stop may have arrived while we waited for the slot.
				if skip = stopRequested(); skip {
					<-sem
				}
			}
		}
		if skip {
			settle(i, Result[T]{Key: cells[i].Key, Err: ErrSkipped})
			continue
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			settle(i, runCell(ctx, cells[i], opts))
		}(i)
	}
	wg.Wait()
	close(allDone)

	if err := ctx.Err(); err != nil {
		return out, err
	}
	if !opts.KeepGoing {
		for _, r := range out.Results {
			if r.Err != nil && !errors.Is(r.Err, ErrSkipped) {
				return out, fmt.Errorf("runner: cell %q: %w", r.Key, r.Err)
			}
		}
	}
	return out, nil
}

// runCell serves one cell from the journal or executes it with retries.
//
// When ctx carries a trace, the cell contributes a "cell <key>" span
// covering journal lookup through final attempt. Only this goroutine
// annotates or ends the span — the attempt goroutine (which may outlive an
// abandoned cell) opens its own child spans instead — so a span is closed
// exactly once even across panics, deadlines, and abandonment.
func runCell[T any](ctx context.Context, c Cell[T], opts Options) Result[T] {
	ctx, span := tracing.Start(ctx, "cell "+c.Key)
	defer span.End()
	res := Result[T]{Key: c.Key}
	if opts.Journal != nil {
		if raw, ok := opts.Journal.Lookup(c.Key); ok {
			// An entry that no longer unmarshals (the Result type changed
			// between versions) is treated as absent, not fatal.
			var v T
			if err := json.Unmarshal(raw, &v); err == nil {
				res.Value, res.Cached = v, true
				span.SetAttr("journal_cached", true)
				return res
			}
		}
	}
	start := time.Now()
	for attempt := 1; ; attempt++ {
		res.Attempts = attempt
		v, err := runOnce(ctx, c, opts.Timeout)
		res.Value, res.Err = v, err
		if err == nil || attempt > opts.Retries || !retriable(err) {
			break
		}
		// Capped exponential backoff with deterministic jitter before the
		// next attempt; a canceled sweep stops waiting and keeps the cell's
		// own error (the cancellation is reported at the Run level).
		d := opts.Backoff.Delay(c.Key, attempt)
		span.Event("retry")
		span.SetAttr("backoff_ns", d.Nanoseconds())
		if sleepFn(ctx, d) != nil {
			break
		}
	}
	res.Elapsed = time.Since(start)
	span.SetAttr("attempts", res.Attempts)
	if res.Err != nil {
		span.SetAttr("error", res.Err.Error())
	}
	if res.Err == nil && opts.Journal != nil {
		// Journal write failures are reported at Close, not charged to the
		// cell: the value itself is good.
		opts.Journal.Record(c.Key, res.Value)
	}
	return res
}

// retriable reports whether an error is worth one more attempt: timeouts and
// cancellations are not (a hung cell hangs again; a canceled sweep is over),
// everything else — including panics, which may be data races or transient
// resource failures — is.
func retriable(err error) bool {
	return !errors.Is(err, context.DeadlineExceeded) && !errors.Is(err, context.Canceled)
}

// runOnce executes one attempt under the per-cell timeout, converting panics
// to *PanicError. If the cell ignores cancellation past the grace window its
// goroutine is abandoned: it leaks until the cell function returns, but the
// sweep moves on.
func runOnce[T any](ctx context.Context, c Cell[T], timeout time.Duration) (T, error) {
	cctx, cancel := ctx, func() {}
	if timeout > 0 {
		cctx, cancel = context.WithTimeout(ctx, timeout)
	}
	defer cancel()

	type attempt struct {
		v   T
		err error
	}
	ch := make(chan attempt, 1)
	go func() {
		defer func() {
			if r := recover(); r != nil {
				var zero T
				ch <- attempt{zero, &PanicError{Value: r, Stack: debug.Stack()}}
			}
		}()
		// The pprof labels make per-cell cost visible in CPU profiles:
		// every sample inside the attempt carries the cell key plus any
		// caller labels (e.g. lane count), so `go tool pprof -tagfocus`
		// separates one cell — or scalar vs laned stepping — from a sweep.
		labels := make([]string, 0, 2+len(c.Labels))
		labels = append(labels, "cell", c.Key)
		labels = append(labels, c.Labels...)
		var v T
		var err error
		pprof.Do(cctx, pprof.Labels(labels...), func(ctx context.Context) {
			v, err = c.Run(ctx)
		})
		ch <- attempt{v, err}
	}()

	// recordSlack notes how much of the per-cell deadline was left when the
	// attempt settled — the margin before the next tuning of Timeout starts
	// killing healthy cells. The span is owned by this (runCell's) goroutine.
	recordSlack := func() {
		if timeout > 0 {
			if dl, ok := cctx.Deadline(); ok {
				tracing.SpanFromContext(ctx).SetAttr("deadline_slack_ns", time.Until(dl).Nanoseconds())
			}
		}
	}
	select {
	case a := <-ch:
		recordSlack()
		return a.v, a.err
	case <-cctx.Done():
	}
	// Deadline or cancellation: give a cooperative cell a moment to unwind
	// (and accept a success that races the deadline), then abandon it.
	select {
	case a := <-ch:
		recordSlack()
		return a.v, a.err
	case <-time.After(abandonGrace):
		tracing.SpanFromContext(ctx).Event("abandoned")
		var zero T
		return zero, fmt.Errorf("runner: cell %q abandoned (did not stop within %v of cancellation): %w",
			c.Key, abandonGrace, cctx.Err())
	}
}
