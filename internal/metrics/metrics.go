// Package metrics provides the simulator's observability primitives:
// monotonic counters, fixed-bucket integer histograms, and per-cycle
// occupancy gauges, collected into an ordered Registry that exports as
// aligned text, Markdown (via internal/stats tables), or JSON.
//
// The hot layers (cpu, cache, ports, core) own their metric objects
// directly — Observe and Sample are plain slice/field updates with no
// locking or interface dispatch — and a run's Registry adopts them at
// configuration time, so snapshotting at the end of a run is free of
// double counting.
package metrics

import (
	"fmt"
	"io"

	"lbic/internal/stats"
)

// Counter is a monotonically increasing event count.
type Counter struct {
	Name string
	Help string
	v    uint64
}

// NewCounter returns a named counter starting at zero.
func NewCounter(name, help string) *Counter {
	return &Counter{Name: name, Help: help}
}

// Inc adds one.
func (c *Counter) Inc() { c.v++ }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v += n }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v }

// Histogram counts observations of small non-negative integers in fixed
// buckets [0, size): bucket i counts observations of value i, the last
// bucket absorbs larger values, and negatives clamp to bucket zero. This
// fits everything the simulator distributes over — bank indices, grant
// counts per cycle, combining widths, queue occupancies — without the
// boundary configuration of a general-purpose histogram.
type Histogram struct {
	Name string
	Help string
	// Label names what a bucket index means ("bank", "width", "grants");
	// it prefixes bucket rows in rendered tables.
	Label string
	// BucketNames optionally names each bucket (e.g. CPI stall causes);
	// when set it overrides Label in tables and is carried in snapshots.
	BucketNames []string

	buckets []uint64
	count   uint64
	sum     uint64
}

// NewHistogram returns a histogram with size buckets for values 0..size-1.
func NewHistogram(name, help, label string, size int) *Histogram {
	if size < 1 {
		size = 1
	}
	return &Histogram{Name: name, Help: help, Label: label, buckets: make([]uint64, size)}
}

// Observe records one observation of v.
func (h *Histogram) Observe(v int) { h.ObserveN(v, 1) }

// ObserveN records n observations of v.
func (h *Histogram) ObserveN(v int, n uint64) {
	if v < 0 {
		v = 0
	}
	if v >= len(h.buckets) {
		v = len(h.buckets) - 1
	}
	h.buckets[v] += n
	h.count += n
	h.sum += uint64(v) * n
}

// Buckets returns the bucket counts (the live slice; callers must not
// modify it).
func (h *Histogram) Buckets() []uint64 { return h.buckets }

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 { return h.count }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() uint64 { return h.sum }

// Mean returns the average observed value (0 for an empty histogram).
func (h *Histogram) Mean() float64 {
	if h.count == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.count)
}

// Gauge samples a level once per cycle (an occupancy: RUU entries in use,
// MSHRs live, store-buffer depth) and keeps the summary a run report needs:
// sample count, sum, and maximum.
type Gauge struct {
	Name string
	Help string

	samples uint64
	sum     uint64
	max     uint64
}

// NewGauge returns a named gauge with no samples.
func NewGauge(name, help string) *Gauge {
	return &Gauge{Name: name, Help: help}
}

// Sample records the level for one cycle.
func (g *Gauge) Sample(v uint64) {
	g.samples++
	g.sum += v
	if v > g.max {
		g.max = v
	}
}

// Samples returns the number of recorded samples.
func (g *Gauge) Samples() uint64 { return g.samples }

// Max returns the highest sampled level.
func (g *Gauge) Max() uint64 { return g.max }

// Mean returns the average sampled level (0 with no samples).
func (g *Gauge) Mean() float64 {
	if g.samples == 0 {
		return 0
	}
	return float64(g.sum) / float64(g.samples)
}

// Registry holds a run's metrics in registration order.
type Registry struct {
	counters   []*Counter
	histograms []*Histogram
	gauges     []*Gauge
	latencies  []*LatencyHistogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{} }

// AddCounter adopts existing counters.
func (r *Registry) AddCounter(cs ...*Counter) { r.counters = append(r.counters, cs...) }

// AddHistogram adopts existing histograms.
func (r *Registry) AddHistogram(hs ...*Histogram) { r.histograms = append(r.histograms, hs...) }

// AddGauge adopts existing gauges.
func (r *Registry) AddGauge(gs ...*Gauge) { r.gauges = append(r.gauges, gs...) }

// Counter creates and registers a counter.
func (r *Registry) Counter(name, help string) *Counter {
	c := NewCounter(name, help)
	r.AddCounter(c)
	return c
}

// Histogram creates and registers a histogram.
func (r *Registry) Histogram(name, help, label string, size int) *Histogram {
	h := NewHistogram(name, help, label, size)
	r.AddHistogram(h)
	return h
}

// Gauge creates and registers a gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	g := NewGauge(name, help)
	r.AddGauge(g)
	return g
}

// AddLatency adopts existing latency histograms.
func (r *Registry) AddLatency(hs ...*LatencyHistogram) { r.latencies = append(r.latencies, hs...) }

// Latency creates and registers a latency histogram (nil bounds selects
// DefaultLatencyBounds).
func (r *Registry) Latency(name, help, labels string, bounds []float64) *LatencyHistogram {
	h := NewLatencyHistogram(name, help, labels, bounds)
	r.AddLatency(h)
	return h
}

// FindHistogram returns the registered histogram with the given name, or nil.
func (r *Registry) FindHistogram(name string) *Histogram {
	for _, h := range r.histograms {
		if h.Name == name {
			return h
		}
	}
	return nil
}

// CounterSnapshot is a counter's exportable state.
type CounterSnapshot struct {
	Name  string `json:"name"`
	Help  string `json:"help,omitempty"`
	Value uint64 `json:"value"`
}

// HistogramSnapshot is a histogram's exportable state.
type HistogramSnapshot struct {
	Name        string   `json:"name"`
	Help        string   `json:"help,omitempty"`
	Label       string   `json:"label,omitempty"`
	BucketNames []string `json:"bucket_names,omitempty"`
	Buckets     []uint64 `json:"buckets"`
	Count       uint64   `json:"count"`
	Sum         uint64   `json:"sum"`
}

// GaugeSnapshot is a gauge's exportable state.
type GaugeSnapshot struct {
	Name    string  `json:"name"`
	Help    string  `json:"help,omitempty"`
	Samples uint64  `json:"samples"`
	Mean    float64 `json:"mean"`
	Max     uint64  `json:"max"`
}

// Snapshot is a registry's complete exportable state; it marshals to the
// "metrics" section of a run report and round-trips through JSON.
type Snapshot struct {
	Counters   []CounterSnapshot   `json:"counters,omitempty"`
	Histograms []HistogramSnapshot `json:"histograms,omitempty"`
	Gauges     []GaugeSnapshot     `json:"gauges,omitempty"`
	Latencies  []LatencySnapshot   `json:"latencies,omitempty"`
}

// Snapshot captures the registry's current state. Bucket slices are copied,
// so the snapshot is stable even if the run continues.
func (r *Registry) Snapshot() Snapshot {
	var s Snapshot
	for _, c := range r.counters {
		s.Counters = append(s.Counters, CounterSnapshot{Name: c.Name, Help: c.Help, Value: c.v})
	}
	for _, h := range r.histograms {
		buckets := make([]uint64, len(h.buckets))
		copy(buckets, h.buckets)
		var names []string
		if len(h.BucketNames) > 0 {
			names = append(names, h.BucketNames...)
		}
		s.Histograms = append(s.Histograms, HistogramSnapshot{
			Name: h.Name, Help: h.Help, Label: h.Label, BucketNames: names,
			Buckets: buckets, Count: h.count, Sum: h.sum,
		})
	}
	for _, g := range r.gauges {
		s.Gauges = append(s.Gauges, GaugeSnapshot{
			Name: g.Name, Help: g.Help, Samples: g.samples, Mean: g.Mean(), Max: g.max,
		})
	}
	for _, h := range r.latencies {
		s.Latencies = append(s.Latencies, h.snapshot())
	}
	return s
}

// bucketLabel names bucket i of h for table rendering.
func bucketLabel(h *Histogram, i int) string {
	if i < len(h.BucketNames) {
		return h.BucketNames[i]
	}
	label := h.Label
	if label == "" {
		label = "value"
	}
	return fmt.Sprintf("%s %d", label, i)
}

// Tables renders the registry as stats tables: one for all counters (if
// any), one for all gauges (if any), and one per histogram with per-bucket
// counts and shares. Empty histogram buckets above the highest observed
// value are elided; named buckets always print.
func (r *Registry) Tables() []*stats.Table {
	var out []*stats.Table
	if len(r.counters) > 0 {
		t := stats.NewTable("counters", "counter", "value")
		for _, c := range r.counters {
			t.AddRowf(c.Name, c.v)
		}
		out = append(out, t)
	}
	if len(r.gauges) > 0 {
		t := stats.NewTable("gauges (per-cycle occupancy)", "gauge", "mean", "max", "samples")
		for _, g := range r.gauges {
			t.AddRow(g.Name, fmt.Sprintf("%.2f", g.Mean()), fmt.Sprintf("%d", g.max),
				fmt.Sprintf("%d", g.samples))
		}
		out = append(out, t)
	}
	for _, h := range r.histograms {
		title := h.Name
		if h.Help != "" {
			title = fmt.Sprintf("%s — %s", h.Name, h.Help)
		}
		t := stats.NewTable(title, "bucket", "count", "share")
		top := len(h.buckets) - 1
		if len(h.BucketNames) == 0 {
			for top > 0 && h.buckets[top] == 0 {
				top--
			}
		}
		for i := 0; i <= top; i++ {
			share := 0.0
			if h.count > 0 {
				share = float64(h.buckets[i]) / float64(h.count)
			}
			t.AddRow(bucketLabel(h, i), fmt.Sprintf("%d", h.buckets[i]), stats.FormatPct(share))
		}
		t.AddRow("total", fmt.Sprintf("%d", h.count), "")
		out = append(out, t)
	}
	return out
}

// WriteText renders every table as aligned text.
func (r *Registry) WriteText(w io.Writer) error {
	for _, t := range r.Tables() {
		if err := t.Render(w); err != nil {
			return err
		}
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
	}
	return nil
}

// WriteMarkdown renders every table as GitHub-flavored Markdown.
func (r *Registry) WriteMarkdown(w io.Writer) error {
	for _, t := range r.Tables() {
		if err := t.Markdown(w); err != nil {
			return err
		}
	}
	return nil
}
