package metrics

import (
	"bytes"
	"encoding/json"
	"reflect"
	"strings"
	"testing"
)

func TestCounter(t *testing.T) {
	c := NewCounter("events", "test events")
	if c.Value() != 0 {
		t.Fatalf("new counter = %d, want 0", c.Value())
	}
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("counter = %d, want 5", c.Value())
	}
}

func TestHistogramClamping(t *testing.T) {
	h := NewHistogram("widths", "", "width", 4)
	h.Observe(0)
	h.Observe(2)
	h.Observe(3)
	h.Observe(9)  // clamps into the last bucket
	h.Observe(-1) // clamps into bucket 0
	want := []uint64{2, 0, 1, 2}
	if !reflect.DeepEqual(h.Buckets(), want) {
		t.Fatalf("buckets = %v, want %v", h.Buckets(), want)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d, want 5", h.Count())
	}
	// Sum uses the clamped values: 0+2+3+3+0 = 8.
	if h.Sum() != 8 {
		t.Fatalf("sum = %d, want 8", h.Sum())
	}
	if got, want := h.Mean(), 8.0/5.0; got != want {
		t.Fatalf("mean = %v, want %v", got, want)
	}
}

func TestHistogramObserveN(t *testing.T) {
	h := NewHistogram("grants", "", "grants", 3)
	h.ObserveN(1, 10)
	h.ObserveN(2, 5)
	if h.Count() != 15 || h.Sum() != 20 {
		t.Fatalf("count/sum = %d/%d, want 15/20", h.Count(), h.Sum())
	}
}

func TestGauge(t *testing.T) {
	g := NewGauge("occupancy", "")
	if g.Mean() != 0 {
		t.Fatalf("empty gauge mean = %v", g.Mean())
	}
	g.Sample(2)
	g.Sample(4)
	g.Sample(0)
	if g.Samples() != 3 || g.Max() != 4 {
		t.Fatalf("samples/max = %d/%d, want 3/4", g.Samples(), g.Max())
	}
	if g.Mean() != 2 {
		t.Fatalf("mean = %v, want 2", g.Mean())
	}
}

func TestSnapshotJSONRoundTrip(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("cpu.grants", "port grants")
	c.Add(42)
	h := r.Histogram("port.bank_accesses", "grants per bank", "bank", 4)
	h.BucketNames = []string{"bank 0", "bank 1", "bank 2", "bank 3"}
	h.ObserveN(0, 7)
	h.ObserveN(3, 2)
	g := r.Gauge("mem.mshr_occupancy", "live MSHRs")
	g.Sample(3)
	g.Sample(5)

	snap := r.Snapshot()
	data, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(snap, back) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", back, snap)
	}
	if back.Histograms[0].Count != 9 || back.Histograms[0].Sum != 6 {
		t.Fatalf("histogram snapshot count/sum = %d/%d, want 9/6",
			back.Histograms[0].Count, back.Histograms[0].Sum)
	}
}

func TestSnapshotIsStable(t *testing.T) {
	h := NewHistogram("h", "", "v", 2)
	h.Observe(1)
	r := NewRegistry()
	r.AddHistogram(h)
	snap := r.Snapshot()
	h.Observe(1) // must not alter the earlier snapshot
	if snap.Histograms[0].Buckets[1] != 1 {
		t.Fatalf("snapshot mutated by later observation: %v", snap.Histograms[0].Buckets)
	}
}

func TestTablesRender(t *testing.T) {
	r := NewRegistry()
	r.Counter("c", "help").Add(1)
	h := r.Histogram("cpi_stack", "cycles by cause", "", 3)
	h.BucketNames = []string{"committing", "waiting-on-miss", "drained"}
	h.ObserveN(0, 10)
	h.ObserveN(1, 5)
	r.Gauge("ruu", "").Sample(7)

	tables := r.Tables()
	if len(tables) != 3 {
		t.Fatalf("got %d tables, want 3", len(tables))
	}
	var buf bytes.Buffer
	if err := r.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"committing", "waiting-on-miss", "66.7%", "cpi_stack", "ruu"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered tables missing %q:\n%s", want, out)
		}
	}
	buf.Reset()
	if err := r.WriteMarkdown(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "| committing | 10 |") {
		t.Errorf("markdown output missing bucket row:\n%s", buf.String())
	}
}

func TestHistogramElidesEmptyTail(t *testing.T) {
	h := NewHistogram("grants", "", "grants", 64)
	h.Observe(0)
	h.Observe(2)
	r := NewRegistry()
	r.AddHistogram(h)
	tables := r.Tables()
	// buckets 0..2 plus the total row
	if got := len(tables[0].Rows); got != 4 {
		t.Fatalf("got %d rows, want 4 (empty tail elided)", got)
	}
}
