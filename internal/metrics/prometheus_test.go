package metrics

import (
	"bytes"
	"flag"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// promRegistry builds a registry with one of everything, deterministically
// populated, for the golden exposition test.
func promRegistry() *Registry {
	r := NewRegistry()
	c := r.Counter("server.requests", "HTTP requests accepted.")
	c.Add(42)
	g := r.Gauge("core.ruu_occupancy", "RUU entries in use")
	g.Sample(3)
	g.Sample(5)
	h := r.Histogram("ports.grants", "Port grants per cycle.", "grants", 4)
	h.ObserveN(0, 10)
	h.ObserveN(1, 5)
	h.ObserveN(3, 2)
	lat := r.Latency("http_request_duration_seconds", "HTTP request latency.",
		`route="simulate"`, []float64{0.001, 0.01, 0.1, 1})
	lat.Observe(500 * time.Microsecond)
	lat.Observe(5 * time.Millisecond)
	lat.Observe(2 * time.Second)
	// A second histogram in the same family: HELP/TYPE must print once.
	lat2 := r.Latency("http_request_duration_seconds", "HTTP request latency.",
		`route="sweep"`, []float64{0.001, 0.01, 0.1, 1})
	lat2.Observe(20 * time.Millisecond)
	return r
}

func TestWritePrometheusGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := promRegistry().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "prometheus.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("reading golden (run with -update to create): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("exposition differs from golden:\n--- got ---\n%s--- want ---\n%s", buf.Bytes(), want)
	}
	if n, err := ValidateExposition(bytes.NewReader(buf.Bytes())); err != nil {
		t.Errorf("golden exposition fails validation: %v", err)
	} else if n == 0 {
		t.Error("no samples validated")
	}
}

// TestPrometheusNameSanitization pins the registry-name to metric-name
// mapping: dots become underscores and the counter suffix applies.
func TestPrometheusNameSanitization(t *testing.T) {
	r := NewRegistry()
	r.Counter("server.cells-executed", "x").Inc()
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "server_cells_executed_total 1") {
		t.Errorf("sanitized counter missing:\n%s", out)
	}
	if strings.Contains(out, "server.cells") {
		t.Errorf("raw dotted name leaked:\n%s", out)
	}
}

// TestHistogramBucketMonotonicity is the property test: any pattern of
// concurrent observations must yield cumulative buckets that are
// non-decreasing, end at a +Inf bucket equal to _count, and survive
// ValidateExposition.
func TestHistogramBucketMonotonicity(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 20; trial++ {
		h := NewLatencyHistogram("trial_seconds", "property trial", "", nil)
		var wg sync.WaitGroup
		for w := 0; w < 4; w++ {
			seed := rng.Int63()
			wg.Add(1)
			go func() {
				defer wg.Done()
				local := rand.New(rand.NewSource(seed))
				for i := 0; i < 200; i++ {
					// Span the full bucket range, microseconds to minutes.
					d := time.Duration(local.Int63n(int64(90 * time.Second)))
					h.Observe(d)
				}
			}()
		}
		wg.Wait()

		cum := h.Cumulative()
		if len(cum) != len(h.Bounds())+1 {
			t.Fatalf("trial %d: %d cumulative buckets for %d bounds", trial, len(cum), len(h.Bounds()))
		}
		for i := 1; i < len(cum); i++ {
			if cum[i] < cum[i-1] {
				t.Fatalf("trial %d: bucket %d not cumulative: %d < %d", trial, i, cum[i], cum[i-1])
			}
		}
		if got, want := cum[len(cum)-1], uint64(800); got != want {
			t.Fatalf("trial %d: +Inf bucket = %d, want %d", trial, got, want)
		}
		if h.Count() != 800 {
			t.Fatalf("trial %d: count = %d", trial, h.Count())
		}

		r := NewRegistry()
		r.AddLatency(h)
		var buf bytes.Buffer
		if err := r.WritePrometheus(&buf); err != nil {
			t.Fatal(err)
		}
		if _, err := ValidateExposition(bytes.NewReader(buf.Bytes())); err != nil {
			t.Fatalf("trial %d: %v\n%s", trial, err, buf.String())
		}
	}
}

func TestLatencyQuantiles(t *testing.T) {
	h := NewLatencyHistogram("q", "", "", []float64{0.01, 0.1, 1})
	for i := 0; i < 90; i++ {
		h.Observe(5 * time.Millisecond) // first bucket
	}
	for i := 0; i < 10; i++ {
		h.Observe(500 * time.Millisecond) // third bucket
	}
	if p50 := h.Quantile(0.50); p50 <= 0 || p50 > 0.01 {
		t.Errorf("p50 = %v, want within first bucket (0, 0.01]", p50)
	}
	if p99 := h.Quantile(0.99); p99 <= 0.1 || p99 > 1 {
		t.Errorf("p99 = %v, want within (0.1, 1]", p99)
	}
	if z := NewLatencyHistogram("z", "", "", nil).Quantile(0.5); z != 0 {
		t.Errorf("empty histogram quantile = %v, want 0", z)
	}
}

func TestValidateExpositionRejects(t *testing.T) {
	cases := map[string]string{
		"empty":            "",
		"bad name":         "9bad 1\n",
		"bad value":        "x nope\n",
		"bad type":         "# TYPE x widget\nx 1\n",
		"unterminated":     "x{a=\"1\" 2\n",
		"non-cumulative":   "# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_bucket{le=\"+Inf\"} 3\n",
		"missing inf":      "# TYPE h histogram\nh_bucket{le=\"1\"} 5\n",
		"count mismatch":   "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 5\nh_count 4\n",
		"unsorted buckets": "# TYPE h histogram\nh_bucket{le=\"2\"} 1\nh_bucket{le=\"1\"} 2\nh_bucket{le=\"+Inf\"} 3\n",
	}
	for name, in := range cases {
		if _, err := ValidateExposition(strings.NewReader(in)); err == nil {
			t.Errorf("%s: validation passed, want error", name)
		}
	}
	// Distinct label sets are distinct series; both must hold independently.
	ok := "# TYPE h histogram\n" +
		"h_bucket{route=\"a\",le=\"1\"} 2\nh_bucket{route=\"a\",le=\"+Inf\"} 3\nh_count{route=\"a\"} 3\n" +
		"h_bucket{route=\"b\",le=\"1\"} 7\nh_bucket{route=\"b\",le=\"+Inf\"} 7\nh_count{route=\"b\"} 7\n"
	if _, err := ValidateExposition(strings.NewReader(ok)); err != nil {
		t.Errorf("labeled series: %v", err)
	}
}

// TestSnapshotIncludesLatencies pins the JSON side: latency histograms ride
// in the registry snapshot with consistent count/cumulative.
func TestSnapshotIncludesLatencies(t *testing.T) {
	r := NewRegistry()
	h := r.Latency("x_seconds", "help", "", []float64{0.1, 1})
	h.Observe(50 * time.Millisecond)
	h.Observe(5 * time.Second)
	s := r.Snapshot()
	if len(s.Latencies) != 1 {
		t.Fatalf("latencies in snapshot = %d", len(s.Latencies))
	}
	ls := s.Latencies[0]
	if ls.Count != 2 || ls.Cumulative[len(ls.Cumulative)-1] != ls.Count {
		t.Errorf("snapshot count %d inconsistent with cumulative %v", ls.Count, ls.Cumulative)
	}
	if ls.SumSeconds < 5.0 || ls.SumSeconds > 5.1 {
		t.Errorf("sum = %v", ls.SumSeconds)
	}
}
