package metrics

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// ExpositionContentType is the Content-Type of the Prometheus text
// exposition format this package writes.
const ExpositionContentType = "text/plain; version=0.0.4; charset=utf-8"

// promName sanitizes a registry metric name into a valid Prometheus metric
// name: dots (the registry's namespace separator) and any other illegal
// runes become underscores.
func promName(name string) string {
	var b strings.Builder
	b.Grow(len(name))
	for i, r := range name {
		ok := r == '_' || r == ':' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(i > 0 && r >= '0' && r <= '9')
		if !ok {
			r = '_'
		}
		b.WriteRune(r)
	}
	return b.String()
}

// promFloat formats a sample value.
func promFloat(v float64) string {
	if math.IsInf(v, +1) {
		return "+Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// escapeHelp escapes a HELP string per the exposition format.
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// promWriter accumulates exposition lines, emitting each family's HELP and
// TYPE header exactly once even when several registered objects (for
// example per-route latency histograms) share a family name.
type promWriter struct {
	w      *bufio.Writer
	headed map[string]bool
	err    error
}

func (p *promWriter) header(name, help, typ string) {
	if p.headed[name] {
		return
	}
	p.headed[name] = true
	if help != "" {
		p.printf("# HELP %s %s\n", name, escapeHelp(help))
	}
	p.printf("# TYPE %s %s\n", name, typ)
}

func (p *promWriter) printf(format string, args ...any) {
	if p.err != nil {
		return
	}
	_, p.err = fmt.Fprintf(p.w, format, args...)
}

// sample writes one sample line; labels is the pre-rendered inner label
// text ("" for none).
func (p *promWriter) sample(name, labels, value string) {
	if labels == "" {
		p.printf("%s %s\n", name, value)
		return
	}
	p.printf("%s{%s} %s\n", name, labels, value)
}

// joinLabels merges two pre-rendered label fragments.
func joinLabels(a, b string) string {
	switch {
	case a == "":
		return b
	case b == "":
		return a
	default:
		return a + "," + b
	}
}

// WritePrometheus renders the registry in the Prometheus text exposition
// format (version 0.0.4):
//
//   - Counters export as "<name>_total".
//   - Gauges (per-cycle occupancy samplers) export as two gauge families,
//     "<name>_mean" and "<name>_max".
//   - Integer Histograms export as cumulative histograms whose le bounds
//     are the integer bucket values (the last, absorbing bucket becomes
//     +Inf).
//   - LatencyHistograms export as cumulative histograms in seconds, with
//     any registered label set merged into each sample; histograms sharing
//     a name form one family with one HELP/TYPE header.
func (r *Registry) WritePrometheus(w io.Writer) error {
	p := &promWriter{w: bufio.NewWriter(w), headed: make(map[string]bool)}
	for _, c := range r.counters {
		name := promName(c.Name) + "_total"
		p.header(name, c.Help, "counter")
		p.sample(name, "", strconv.FormatUint(c.Value(), 10))
	}
	for _, g := range r.gauges {
		mean := promName(g.Name) + "_mean"
		p.header(mean, g.Help+" (mean per-cycle level)", "gauge")
		p.sample(mean, "", promFloat(g.Mean()))
		max := promName(g.Name) + "_max"
		p.header(max, g.Help+" (peak per-cycle level)", "gauge")
		p.sample(max, "", strconv.FormatUint(g.Max(), 10))
	}
	for _, h := range r.histograms {
		name := promName(h.Name)
		p.header(name, h.Help, "histogram")
		var cum uint64
		buckets := h.Buckets()
		for i, c := range buckets {
			cum += c
			le := promFloat(float64(i))
			if i == len(buckets)-1 {
				le = "+Inf"
			}
			p.sample(name+"_bucket", `le="`+le+`"`, strconv.FormatUint(cum, 10))
		}
		p.sample(name+"_sum", "", strconv.FormatUint(h.Sum(), 10))
		p.sample(name+"_count", "", strconv.FormatUint(cum, 10))
	}
	for _, h := range r.latencies {
		name := promName(h.Name)
		p.header(name, h.Help, "histogram")
		cum := h.Cumulative()
		for i, c := range cum {
			le := "+Inf"
			if i < len(h.bounds) {
				le = promFloat(h.bounds[i])
			}
			p.sample(name+"_bucket", joinLabels(h.Labels, `le="`+le+`"`), strconv.FormatUint(c, 10))
		}
		p.sample(name+"_sum", h.Labels, promFloat(h.Sum()))
		p.sample(name+"_count", h.Labels, strconv.FormatUint(cum[len(cum)-1], 10))
	}
	if p.err != nil {
		return p.err
	}
	return p.w.Flush()
}

// ValidateExposition parses r as Prometheus text exposition format and
// checks the invariants a scraper relies on: every line parses, each
// histogram family's buckets are cumulative (non-decreasing in le order),
// every bucket series ends at le="+Inf", and each series' _count equals its
// +Inf bucket. It returns the number of sample lines on success.
func ValidateExposition(r io.Reader) (samples int, err error) {
	type series struct {
		// le -> cumulative value, in encounter order.
		les    []float64
		counts []float64
		count  *float64
	}
	histograms := map[string]*series{} // family + labels(without le)
	typeOf := map[string]string{}

	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 16<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimRight(sc.Text(), " \t")
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			f := strings.Fields(line)
			if len(f) >= 3 && (f[1] == "TYPE" || f[1] == "HELP") {
				if !validPromName(f[2]) {
					return samples, fmt.Errorf("line %d: invalid metric name %q in %s", lineNo, f[2], f[1])
				}
				if f[1] == "TYPE" {
					if len(f) != 4 {
						return samples, fmt.Errorf("line %d: TYPE wants exactly a name and a type", lineNo)
					}
					switch f[3] {
					case "counter", "gauge", "histogram", "summary", "untyped":
					default:
						return samples, fmt.Errorf("line %d: unknown metric type %q", lineNo, f[3])
					}
					if _, dup := typeOf[f[2]]; dup {
						return samples, fmt.Errorf("line %d: duplicate TYPE for %q", lineNo, f[2])
					}
					typeOf[f[2]] = f[3]
				}
			}
			continue
		}
		name, labels, value, perr := parseSample(line)
		if perr != nil {
			return samples, fmt.Errorf("line %d: %v", lineNo, perr)
		}
		samples++

		// Histogram bookkeeping: group by family identity.
		family, suffix := name, ""
		for _, s := range []string{"_bucket", "_sum", "_count"} {
			if base, ok := strings.CutSuffix(name, s); ok && typeOf[base] == "histogram" {
				family, suffix = base, s
				break
			}
		}
		if suffix == "" {
			continue
		}
		le, rest := splitLE(labels)
		key := family + "{" + rest + "}"
		s := histograms[key]
		if s == nil {
			s = &series{}
			histograms[key] = s
		}
		switch suffix {
		case "_bucket":
			if le == "" {
				return samples, fmt.Errorf("line %d: histogram bucket without le label", lineNo)
			}
			bound := math.Inf(+1)
			if le != "+Inf" {
				bound, perr = strconv.ParseFloat(le, 64)
				if perr != nil {
					return samples, fmt.Errorf("line %d: bad le %q: %v", lineNo, le, perr)
				}
			}
			s.les = append(s.les, bound)
			s.counts = append(s.counts, value)
		case "_count":
			v := value
			s.count = &v
		}
	}
	if err := sc.Err(); err != nil {
		return samples, err
	}
	if samples == 0 {
		return 0, fmt.Errorf("no samples in exposition")
	}
	for key, s := range histograms {
		if len(s.les) == 0 {
			continue
		}
		if !sort.Float64sAreSorted(s.les) {
			return samples, fmt.Errorf("%s: buckets not in ascending le order", key)
		}
		for i := 1; i < len(s.counts); i++ {
			if s.counts[i] < s.counts[i-1] {
				return samples, fmt.Errorf("%s: bucket counts not cumulative (le=%v: %v < %v)",
					key, s.les[i], s.counts[i], s.counts[i-1])
			}
		}
		last := s.les[len(s.les)-1]
		if !math.IsInf(last, +1) {
			return samples, fmt.Errorf("%s: bucket series does not end at le=\"+Inf\"", key)
		}
		if s.count != nil && *s.count != s.counts[len(s.counts)-1] {
			return samples, fmt.Errorf("%s: _count %v != +Inf bucket %v", key, *s.count, s.counts[len(s.counts)-1])
		}
	}
	return samples, nil
}

// validPromName reports whether s is a legal Prometheus metric name.
func validPromName(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		ok := r == '_' || r == ':' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(i > 0 && r >= '0' && r <= '9')
		if !ok {
			return false
		}
	}
	return true
}

// parseSample parses one `name{labels} value [timestamp]` line.
func parseSample(line string) (name, labels string, value float64, err error) {
	i := strings.IndexAny(line, "{ ")
	if i < 0 {
		return "", "", 0, fmt.Errorf("malformed sample %q", line)
	}
	name = line[:i]
	if !validPromName(name) {
		return "", "", 0, fmt.Errorf("invalid metric name %q", name)
	}
	rest := line[i:]
	if rest[0] == '{' {
		// The closing brace must be found outside quotes: label values may
		// contain '}' (e.g. route="GET /v1/jobs/{id}").
		end := -1
		inQuote := false
		for j := 1; j < len(rest); j++ {
			switch rest[j] {
			case '\\':
				if inQuote {
					j++
				}
			case '"':
				inQuote = !inQuote
			case '}':
				if !inQuote {
					end = j
				}
			}
			if end >= 0 {
				break
			}
		}
		if end < 0 {
			return "", "", 0, fmt.Errorf("unterminated label set in %q", line)
		}
		labels = rest[1:end]
		if err := validateLabels(labels); err != nil {
			return "", "", 0, err
		}
		rest = rest[end+1:]
	}
	f := strings.Fields(rest)
	if len(f) < 1 || len(f) > 2 {
		return "", "", 0, fmt.Errorf("malformed sample value in %q", line)
	}
	value, err = strconv.ParseFloat(f[0], 64)
	if err != nil {
		return "", "", 0, fmt.Errorf("bad sample value %q: %v", f[0], err)
	}
	if len(f) == 2 {
		if _, err := strconv.ParseInt(f[1], 10, 64); err != nil {
			return "", "", 0, fmt.Errorf("bad timestamp %q", f[1])
		}
	}
	return name, labels, value, nil
}

// validateLabels checks a {..}-inner label fragment: comma-separated
// key="value" pairs with quoted values.
func validateLabels(labels string) error {
	for _, pair := range splitLabelPairs(labels) {
		k, v, ok := strings.Cut(pair, "=")
		if !ok || !validPromName(k) {
			return fmt.Errorf("malformed label pair %q", pair)
		}
		if len(v) < 2 || v[0] != '"' || v[len(v)-1] != '"' {
			return fmt.Errorf("unquoted label value in %q", pair)
		}
	}
	return nil
}

// splitLabelPairs splits on commas outside quotes.
func splitLabelPairs(labels string) []string {
	var out []string
	depth := false
	start := 0
	for i := 0; i < len(labels); i++ {
		switch labels[i] {
		case '"':
			if i == 0 || labels[i-1] != '\\' {
				depth = !depth
			}
		case ',':
			if !depth {
				out = append(out, labels[start:i])
				start = i + 1
			}
		}
	}
	if start < len(labels) {
		out = append(out, labels[start:])
	}
	return out
}

// splitLE extracts the le label from a rendered label fragment, returning
// the le value and the remaining labels (series identity).
func splitLE(labels string) (le, rest string) {
	var keep []string
	for _, pair := range splitLabelPairs(labels) {
		if v, ok := strings.CutPrefix(pair, "le="); ok {
			le = strings.Trim(v, `"`)
			continue
		}
		keep = append(keep, pair)
	}
	return le, strings.Join(keep, ",")
}
