package metrics

import (
	"sync/atomic"
	"time"
)

// DefaultLatencyBounds are the upper bounds (seconds) of the default
// latency buckets: roughly exponential from 100µs to a minute, matching the
// range from a warm result-cache hit to a cold million-instruction cell.
var DefaultLatencyBounds = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
	0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30, 60,
}

// LatencyHistogram is a concurrency-safe duration histogram with
// Prometheus-style cumulative export: bucket i counts observations at or
// under Bounds[i], with one extra +Inf bucket. Unlike Histogram (a
// single-goroutine integer distribution owned by the simulator's hot
// layers), this type is written from concurrent HTTP handlers and sweep
// cells, so every update is a single atomic add.
type LatencyHistogram struct {
	Name string
	Help string
	// Labels is an optional pre-rendered Prometheus label set (for example
	// `route="simulate"`), rendered inside {} in the exposition; histograms
	// sharing a Name but differing in Labels export as one metric family.
	Labels string

	bounds []float64
	// counts[i] counts observations in (bounds[i-1], bounds[i]];
	// counts[len(bounds)] is the +Inf bucket.
	counts []atomic.Uint64
	count  atomic.Uint64
	sumNS  atomic.Int64
}

// NewLatencyHistogram returns a latency histogram over the given bucket
// upper bounds (nil selects DefaultLatencyBounds). Bounds must be sorted
// ascending.
func NewLatencyHistogram(name, help, labels string, bounds []float64) *LatencyHistogram {
	if bounds == nil {
		bounds = DefaultLatencyBounds
	}
	return &LatencyHistogram{
		Name:   name,
		Help:   help,
		Labels: labels,
		bounds: bounds,
		counts: make([]atomic.Uint64, len(bounds)+1),
	}
}

// Observe records one duration. Safe for concurrent use.
func (h *LatencyHistogram) Observe(d time.Duration) {
	s := d.Seconds()
	i := 0
	for i < len(h.bounds) && s > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sumNS.Add(d.Nanoseconds())
}

// Count returns the total number of observations.
func (h *LatencyHistogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of observed durations in seconds.
func (h *LatencyHistogram) Sum() float64 { return float64(h.sumNS.Load()) / 1e9 }

// Bounds returns the bucket upper bounds (callers must not modify).
func (h *LatencyHistogram) Bounds() []float64 { return h.bounds }

// Cumulative returns the cumulative bucket counts: element i is the number
// of observations at or under Bounds[i], and the final element (the +Inf
// bucket) equals Count. The slice is a fresh snapshot.
func (h *LatencyHistogram) Cumulative() []uint64 {
	out := make([]uint64, len(h.counts))
	var cum uint64
	for i := range h.counts {
		cum += h.counts[i].Load()
		out[i] = cum
	}
	return out
}

// Quantile estimates the q-quantile (0 < q <= 1) in seconds by linear
// interpolation within the bucket containing it; observations past the last
// bound report the last bound. Returns 0 with no observations.
func (h *LatencyHistogram) Quantile(q float64) float64 {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	rank := q * float64(total)
	var cum uint64
	for i := range h.counts {
		c := h.counts[i].Load()
		if c == 0 {
			cum += c
			continue
		}
		if float64(cum+c) >= rank {
			lo := 0.0
			if i > 0 {
				lo = h.bounds[i-1]
			}
			hi := lo
			if i < len(h.bounds) {
				hi = h.bounds[i]
			}
			frac := (rank - float64(cum)) / float64(c)
			if frac < 0 {
				frac = 0
			}
			return lo + (hi-lo)*frac
		}
		cum += c
	}
	return h.bounds[len(h.bounds)-1]
}

// LatencySnapshot is a latency histogram's exportable state.
type LatencySnapshot struct {
	Name   string `json:"name"`
	Help   string `json:"help,omitempty"`
	Labels string `json:"labels,omitempty"`
	// Bounds are the bucket upper bounds in seconds; Cumulative[i] counts
	// observations at or under Bounds[i], with a final +Inf element.
	Bounds     []float64 `json:"bounds"`
	Cumulative []uint64  `json:"cumulative"`
	Count      uint64    `json:"count"`
	SumSeconds float64   `json:"sum_seconds"`
	P50        float64   `json:"p50"`
	P95        float64   `json:"p95"`
	P99        float64   `json:"p99"`
}

// snapshot captures the histogram. Count is taken from the cumulative +Inf
// bucket, not the separate counter, so a snapshot racing concurrent
// observations stays internally consistent (count == last bucket).
func (h *LatencyHistogram) snapshot() LatencySnapshot {
	cum := h.Cumulative()
	return LatencySnapshot{
		Name:       h.Name,
		Help:       h.Help,
		Labels:     h.Labels,
		Bounds:     h.bounds,
		Cumulative: cum,
		Count:      cum[len(cum)-1],
		SumSeconds: h.Sum(),
		P50:        h.Quantile(0.50),
		P95:        h.Quantile(0.95),
		P99:        h.Quantile(0.99),
	}
}
