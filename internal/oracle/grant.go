package oracle

import (
	"fmt"

	"lbic/internal/core"
	"lbic/internal/ports"
)

// GrantValidator checks, cycle by cycle, that an arbiter's grant sets are
// structurally legal for its organization. For the organizations whose Grant
// is a pure function of the ready list (ideal, virtual, replicated, banked,
// multi-ported banks) it recomputes the exact expected set; for the
// queue-backed designs (LBIC, banked+store-queue) it asserts the structural
// rules the hardware imposes — per-bank port limits, same-line combining,
// the oldest ready request per bank always winning. Unknown (custom)
// arbiters get only the generic contract checks.
type GrantValidator struct {
	arb  ports.Arbiter
	peak int

	// Per-bank scratch for bank-organized arbiters.
	used  []int
	aux   []int
	mark  []int
	seen  []bool
	lines []uint64
	// expect is the recomputed grant set for deterministic arbiters.
	expect []int
}

// NewGrantValidator returns a validator for arb.
func NewGrantValidator(arb ports.Arbiter) *GrantValidator {
	v := &GrantValidator{arb: arb, peak: arb.PeakWidth()}
	switch a := arb.(type) {
	case *ports.Banked:
		v.grow(a.Selector().Banks())
	case *ports.MultiPortedBanks:
		v.grow(a.Selector().Banks())
	case *ports.BankedSQ:
		v.grow(a.Selector().Banks())
	case *core.LBIC:
		v.grow(a.Config().Banks)
	case *ports.Coded:
		v.grow(a.Config().Banks)
	}
	return v
}

func (v *GrantValidator) grow(banks int) {
	v.used = make([]int, banks)
	v.aux = make([]int, banks)
	v.mark = make([]int, banks)
	v.seen = make([]bool, banks)
	v.lines = make([]uint64, banks)
}

// Validate checks one cycle's grant set against the ready list the arbiter
// saw. It must be called with the same now/ready the arbiter's Grant was.
func (v *GrantValidator) Validate(now uint64, ready []ports.Request, granted []int) error {
	if len(granted) > v.peak {
		return fmt.Errorf("cycle %d: %s granted %d requests, peak width is %d",
			now, v.arb.Name(), len(granted), v.peak)
	}
	prev := -1
	for _, g := range granted {
		if g <= prev || g >= len(ready) {
			return fmt.Errorf("cycle %d: %s grant indices %v are not strictly increasing within the %d ready requests",
				now, v.arb.Name(), granted, len(ready))
		}
		prev = g
	}
	for i := 1; i < len(ready); i++ {
		if ready[i].Seq <= ready[i-1].Seq {
			return fmt.Errorf("cycle %d: ready list not age-ordered: seq %d at index %d after seq %d",
				now, ready[i].Seq, i, ready[i-1].Seq)
		}
	}

	switch a := v.arb.(type) {
	case *ports.Ideal, *ports.Virtual:
		n := len(ready)
		if n > v.peak {
			n = v.peak
		}
		return v.comparePrefixN(now, n, granted)
	case *ports.Replicated:
		return v.validateReplicated(now, ready, granted)
	case *ports.Banked:
		return v.validateBanked(now, a.Selector(), 1, ready, granted)
	case *ports.MultiPortedBanks:
		return v.validateBanked(now, a.Selector(), a.PortsPerBank(), ready, granted)
	case *ports.BankedSQ:
		return v.validateBankedSQ(now, a, ready, granted)
	case *core.LBIC:
		return v.validateLBIC(now, a, ready, granted)
	case *ports.Coded:
		return v.validateCoded(now, a, ready, granted)
	}
	return nil
}

// comparePrefixN asserts granted is exactly the indices 0..n-1 (ideal and
// virtual multi-porting grant the oldest requests unconditionally).
func (v *GrantValidator) comparePrefixN(now uint64, n int, granted []int) error {
	ok := len(granted) == n
	for i := 0; ok && i < n; i++ {
		ok = granted[i] == i
	}
	if !ok {
		return fmt.Errorf("cycle %d: %s granted %v, want the oldest %d requests",
			now, v.arb.Name(), granted, n)
	}
	return nil
}

// validateReplicated recomputes the replication design's exact grant: a
// leading store broadcasts alone; otherwise the store-free prefix of loads,
// capped at the port count.
func (v *GrantValidator) validateReplicated(now uint64, ready []ports.Request, granted []int) error {
	v.expect = v.expect[:0]
	if len(ready) > 0 {
		if ready[0].Store {
			v.expect = append(v.expect, 0)
		} else {
			for i := 0; i < len(ready) && len(v.expect) < v.peak && !ready[i].Store; i++ {
				v.expect = append(v.expect, i)
			}
		}
	}
	if !equalInts(granted, v.expect) {
		return fmt.Errorf("cycle %d: %s granted %v, want %v (stores broadcast alone, loads may not pass a store)",
			now, v.arb.Name(), granted, v.expect)
	}
	return nil
}

// validateBanked recomputes the exact oldest-first bank arbitration: a
// request is granted iff fewer than perBank older requests already hold its
// bank. With perBank=1 this is the traditional banked cache; with perBank=P
// the multi-ported-banks design.
func (v *GrantValidator) validateBanked(now uint64, sel ports.BankSelector, perBank int, ready []ports.Request, granted []int) error {
	for i := range v.used {
		v.used[i] = 0
	}
	v.expect = v.expect[:0]
	for i := range ready {
		b := sel.BankOf(ready[i].Addr)
		if v.used[b] < perBank {
			v.used[b]++
			v.expect = append(v.expect, i)
		}
	}
	if !equalInts(granted, v.expect) {
		return fmt.Errorf("cycle %d: %s granted %v, want %v (%d port(s) per bank, oldest first)",
			now, v.arb.Name(), granted, v.expect, perBank)
	}
	return nil
}

// validateBankedSQ checks the structural rules of the banked+store-queue
// design: at most two grants per bank per cycle (one array port plus one
// store-queue acceptance, so a second grant requires a store among them),
// the oldest ready request of each bank always granted, and queues within
// capacity.
func (v *GrantValidator) validateBankedSQ(now uint64, a *ports.BankedSQ, ready []ports.Request, granted []int) error {
	sel := a.Selector()
	for i := range v.used {
		v.used[i] = 0
		v.aux[i] = 0
	}
	for _, g := range granted {
		b := sel.BankOf(ready[g].Addr)
		v.used[b]++
		if ready[g].Store {
			v.aux[b]++
		}
	}
	for b, n := range v.used {
		switch {
		case n > 2:
			return fmt.Errorf("cycle %d: %s granted %d requests in bank %d, at most 2 (port + queue acceptance)",
				now, v.arb.Name(), n, b)
		case n == 2 && v.aux[b] == 0:
			return fmt.Errorf("cycle %d: %s granted two loads in bank %d, but the second grant needs the store queue",
				now, v.arb.Name(), b)
		}
		if q := a.StoreQueueLen(b); q > a.Depth() {
			return fmt.Errorf("cycle %d: %s bank %d store queue holds %d lines, capacity %d",
				now, v.arb.Name(), b, q, a.Depth())
		}
	}
	return v.oldestPerBankGranted(now, sel, ready, granted)
}

// validateLBIC checks the LBIC's combining rules: every bank's grants touch
// one line, at most LinePorts of them, and (under the leading policy) the
// oldest ready request per bank is granted. Store queues stay within depth.
func (v *GrantValidator) validateLBIC(now uint64, a *core.LBIC, ready []ports.Request, granted []int) error {
	cfg := a.Config()
	sel := a.Selector()
	for i := range v.used {
		v.used[i] = 0
	}
	for _, g := range granted {
		b := sel.BankOf(ready[g].Addr)
		line := sel.LineOf(ready[g].Addr)
		if v.used[b] == 0 {
			v.lines[b] = line
		} else if v.lines[b] != line {
			return fmt.Errorf("cycle %d: %s combined lines %d and %d in bank %d; combining must stay on the open line",
				now, v.arb.Name(), v.lines[b], line, b)
		}
		v.used[b]++
		if v.used[b] > cfg.LinePorts {
			return fmt.Errorf("cycle %d: %s granted %d same-line requests in bank %d, line buffer has %d ports",
				now, v.arb.Name(), v.used[b], b, cfg.LinePorts)
		}
	}
	for b := 0; b < cfg.Banks; b++ {
		if q := a.StoreQueueLen(b); q > cfg.StoreQueueDepth {
			return fmt.Errorf("cycle %d: %s bank %d store queue holds %d lines, capacity %d",
				now, v.arb.Name(), b, q, cfg.StoreQueueDepth)
		}
	}
	if cfg.Policy == core.PolicyLeading {
		return v.oldestPerBankGranted(now, sel, ready, granted)
	}
	return nil
}

// validateCoded checks the coded-banks structural rules: one leader grant
// per data bank (stores must lead), later same-line loads only through the
// composed line buffer within its port count, any other load into a busy
// bank is a reconstruction — at most one per parity group, and in the
// non-speculative design a reconstructing group's grants must all target the
// reconstructed bank (the other members' ports are consumed by the code
// read). Update queues stay within depth, and the oldest ready load of each
// bank is always served unless a strict reconstruction consumed its port.
func (v *GrantValidator) validateCoded(now uint64, a *ports.Coded, ready []ports.Request, granted []int) error {
	cfg := a.Config()
	sel := a.Selector()
	for b := 0; b < cfg.Banks; b++ {
		v.used[b] = 0
	}
	for g := 0; g < cfg.ParityBanks; g++ {
		v.aux[g] = 0
		v.mark[g] = -1
	}
	for _, gi := range granted {
		r := ready[gi]
		b := sel.BankOf(r.Addr)
		grp := a.GroupOf(b)
		line := sel.LineOf(r.Addr)
		if v.used[b] == 0 {
			// The leader takes the bank's port and opens its line.
			v.used[b] = 1
			v.lines[b] = line
			continue
		}
		if r.Store {
			return fmt.Errorf("cycle %d: %s granted a store (seq %d) into busy bank %d; stores cannot combine or reconstruct",
				now, v.arb.Name(), r.Seq, b)
		}
		if cfg.LinePorts >= 2 && line == v.lines[b] && v.used[b] < cfg.LinePorts {
			v.used[b]++ // same-line combine through the composed line buffer
			continue
		}
		v.aux[grp]++
		if v.aux[grp] > 1 {
			return fmt.Errorf("cycle %d: %s reconstructed %d reads in group %d, the parity bank has one port",
				now, v.arb.Name(), v.aux[grp], grp)
		}
		v.mark[grp] = b
	}
	if !cfg.Speculative {
		for _, gi := range granted {
			b := sel.BankOf(ready[gi].Addr)
			grp := a.GroupOf(b)
			if v.mark[grp] >= 0 && v.mark[grp] != b {
				return fmt.Errorf("cycle %d: %s granted bank %d while reconstructing bank %d in group %d (the members' ports are consumed by the code read)",
					now, v.arb.Name(), b, v.mark[grp], grp)
			}
		}
	}
	for g := 0; g < cfg.ParityBanks; g++ {
		if q := a.UpdateQueueLen(g); q > a.Depth() {
			return fmt.Errorf("cycle %d: %s group %d update queue holds %d lines, capacity %d",
				now, v.arb.Name(), g, q, a.Depth())
		}
	}
	gi := 0
	for b := range v.seen {
		v.seen[b] = false
	}
	for i := range ready {
		b := sel.BankOf(ready[i].Addr)
		hit := false
		for ; gi < len(granted) && granted[gi] <= i; gi++ {
			if granted[gi] == i {
				hit = true
			}
		}
		if v.seen[b] {
			continue
		}
		v.seen[b] = true
		if hit || ready[i].Store {
			continue
		}
		if grp := a.GroupOf(b); cfg.Speculative || v.mark[grp] < 0 || v.mark[grp] == b {
			return fmt.Errorf("cycle %d: %s did not grant seq %d, the oldest ready load of idle bank %d",
				now, v.arb.Name(), ready[i].Seq, b)
		}
	}
	return nil
}

// oldestPerBankGranted asserts that for every bank with at least one ready
// request, the oldest such request was granted — the no-starvation property
// shared by every bank-organized design here except the greedy LBIC.
func (v *GrantValidator) oldestPerBankGranted(now uint64, sel ports.BankSelector, ready []ports.Request, granted []int) error {
	g := 0
	for i := range v.seen {
		v.seen[i] = false
	}
	for i := range ready {
		b := sel.BankOf(ready[i].Addr)
		if v.seen[b] {
			continue
		}
		v.seen[b] = true
		hit := false
		for ; g < len(granted) && granted[g] <= i; g++ {
			if granted[g] == i {
				hit = true
			}
		}
		if !hit {
			return fmt.Errorf("cycle %d: %s did not grant seq %d, the oldest ready request of bank %d",
				now, v.arb.Name(), ready[i].Seq, b)
		}
	}
	return nil
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
