// Package oracle is the correctness harness for the simulator's port and
// LSQ layers. The paper's claims — the LBIC matching ideal multi-porting,
// replicated stores serializing, bank conflicts being mostly same-line —
// only mean anything if every port organization implements the *same*
// memory semantics and differs only in timing. This package machine-checks
// that property three ways:
//
//   - Reference: a trivially-correct sequential machine — one access per
//     cycle, in program order, over a value-tracking memory — that any
//     ports.Arbiter + cache.Hierarchy stack is differentially checked
//     against (same final memory image, same per-load values, timing
//     sandwiched between ideal multi-porting and a single ideal port).
//
//   - Checker: an invariant monitor implementing cpu.Verifier. Attached to
//     a timed run (Config.Verify / lbicsim -verify) it asserts, every
//     cycle, the structural promises the design makes: no request granted
//     twice, no load bypassing an older overlapping store, grant sets
//     respecting each organization's port/bank/line limits, per-bank store
//     queues draining FIFO, and every load observing exactly the value the
//     sequential machine would have produced.
//
//   - Fuzzing: Go-native fuzz targets that synthesize random ready-sets
//     and replay them through every organization under the same grant
//     validator, hunting for arbitration bugs no hand-written scenario
//     covers.
package oracle

import (
	"fmt"

	"lbic/internal/emu"
	"lbic/internal/isa"
	"lbic/internal/trace"
	"lbic/internal/vm"
)

// Reference is the sequential machine's ground truth for one program: the
// per-load values and final memory bytes that any correct port organization
// must reproduce, plus the cycle count of the one-access-per-cycle machine.
type Reference struct {
	// Loads and Stores count the memory operations replayed.
	Loads, Stores uint64
	// MemOps is Loads+Stores; the sequential machine performs one access
	// per cycle in program order, so it is also the machine's access-cycle
	// count.
	MemOps uint64
	// LoadValues maps each load's dynamic sequence number to the raw value
	// it read (little-endian in the low Size bytes, before sign extension).
	LoadValues map[uint64]uint64
	// Image holds every byte written by a store, at its final value.
	Image map[uint64]byte
}

// RunReference executes at most maxInsts instructions of prog (0 = to
// completion) on the sequential reference machine and returns its ground
// truth. Program faults are returned as errors.
func RunReference(prog *isa.Program, maxInsts uint64) (ref *Reference, err error) {
	defer func() {
		if r := recover(); r != nil {
			if f, ok := r.(*vm.Fault); ok {
				ref, err = nil, fmt.Errorf("oracle: reference run of %q faulted: %w", prog.Name, f)
				return
			}
			panic(r)
		}
	}()
	m, err := emu.New(prog)
	if err != nil {
		return nil, err
	}
	ref = &Reference{
		LoadValues: make(map[uint64]uint64),
		Image:      make(map[uint64]byte),
	}
	var d trace.Dyn
	for n := uint64(0); maxInsts == 0 || n < maxInsts; n++ {
		if !m.Next(&d) {
			break
		}
		switch {
		case d.IsLoad():
			ref.Loads++
			ref.LoadValues[d.Seq] = d.Value
		case d.IsStore():
			ref.Stores++
			for i := uint64(0); i < uint64(d.Size); i++ {
				ref.Image[d.Addr+i] = byte(d.Value >> (8 * i))
			}
		}
	}
	ref.MemOps = ref.Loads + ref.Stores
	return ref, nil
}
