package oracle

import (
	"fmt"

	"lbic/internal/cache"
	"lbic/internal/cpu"
	"lbic/internal/emu"
	"lbic/internal/isa"
	"lbic/internal/ports"
	"lbic/internal/vm"
)

// StackResult is one verified run of the full timed stack.
type StackResult struct {
	// Cycles and Committed are the timed run's totals.
	Cycles    uint64
	Committed uint64
	// Summary reports what the attached checker verified.
	Summary Summary
	// LoadValues holds each load's checked value by sequence number when
	// keepValues was requested, for differential comparison.
	LoadValues map[uint64]uint64
}

// RunStack runs prog through the full timing stack — functional emulator,
// Table 1 out-of-order core, default two-level hierarchy — guarded by arb,
// with the invariant checker attached, and closes the run with Finish
// against the emulator's final memory. Any violated invariant is an error.
func RunStack(prog *isa.Program, arb ports.Arbiter, maxInsts uint64, keepValues bool) (res StackResult, err error) {
	defer func() {
		if r := recover(); r != nil {
			if f, ok := r.(*vm.Fault); ok {
				res, err = StackResult{}, fmt.Errorf("oracle: %q faulted under %s: %w", prog.Name, arb.Name(), f)
				return
			}
			panic(r)
		}
	}()

	hier, err := cache.NewHierarchy(cache.DefaultParams())
	if err != nil {
		return StackResult{}, err
	}
	machine, err := emu.New(prog)
	if err != nil {
		return StackResult{}, err
	}
	cfg := cpu.DefaultConfig()
	cfg.MaxInsts = maxInsts
	if maxInsts > 0 {
		// Deadlock guard: a correct organization services at least one
		// request every few cycles; a starving one should fail, not hang.
		cfg.MaxCycles = 200*maxInsts + 100_000
	}
	c, err := cpu.New(machine, hier, arb, cfg)
	if err != nil {
		return StackResult{}, err
	}
	ck := NewChecker(prog, arb)
	if keepValues {
		ck.KeepLoadValues()
	}
	c.SetVerifier(ck)
	st, err := c.Run()
	if err != nil {
		return StackResult{}, fmt.Errorf("oracle: %q under %s: %w", prog.Name, arb.Name(), err)
	}
	if err := ck.Finish(machine.Mem()); err != nil {
		return StackResult{}, fmt.Errorf("oracle: %q under %s: %w", prog.Name, arb.Name(), err)
	}
	return StackResult{
		Cycles:     st.Cycles,
		Committed:  st.Committed,
		Summary:    ck.Summary(),
		LoadValues: ck.LoadValues(),
	}, nil
}

// DiffResult is the outcome of one differential check.
type DiffResult struct {
	// Name is the organization under test.
	Name string
	// Ref is the sequential reference machine's ground truth.
	Ref *Reference
	// Cycles is the organization's timed cycle count; IdealWide and
	// IdealOne bracket it (ideal multi-porting at the organization's peak
	// width, and a single ideal port).
	Cycles    uint64
	IdealWide uint64
	IdealOne  uint64
	// Summary reports what the run's checker verified.
	Summary Summary
}

// Diff differentially checks the organization built by factory against the
// sequential reference machine: the timed run must satisfy every cycle-level
// invariant, reproduce the reference's per-load values exactly, and land
// between ideal multi-porting at its peak width and a single ideal port in
// cycles. The factory receives the hierarchy's L1 line size and is called
// once; fresh Ideal arbiters provide the bounds.
func Diff(prog *isa.Program, factory func(lineSize int) (ports.Arbiter, error), maxInsts uint64) (*DiffResult, error) {
	lineSize := cache.DefaultParams().L1.LineSize
	arb, err := factory(lineSize)
	if err != nil {
		return nil, err
	}
	res, err := RunStack(prog, arb, maxInsts, true)
	if err != nil {
		return nil, err
	}
	ref, err := RunReference(prog, maxInsts)
	if err != nil {
		return nil, err
	}
	if got, want := uint64(len(res.LoadValues)), ref.Loads; got != want {
		return nil, fmt.Errorf("oracle: %q under %s serviced %d loads, reference executed %d",
			prog.Name, arb.Name(), got, want)
	}
	for seq, want := range ref.LoadValues {
		got, ok := res.LoadValues[seq]
		if !ok {
			return nil, fmt.Errorf("oracle: %q under %s never serviced load seq %d", prog.Name, arb.Name(), seq)
		}
		if got != want {
			return nil, fmt.Errorf("oracle: %q under %s: load seq %d read %#x, reference read %#x",
				prog.Name, arb.Name(), seq, got, want)
		}
	}

	wide, err := idealCycles(prog, arb.PeakWidth(), maxInsts)
	if err != nil {
		return nil, err
	}
	one, err := idealCycles(prog, 1, maxInsts)
	if err != nil {
		return nil, err
	}
	d := &DiffResult{
		Name:      arb.Name(),
		Ref:       ref,
		Cycles:    res.Cycles,
		IdealWide: wide,
		IdealOne:  one,
		Summary:   res.Summary,
	}
	if d.Cycles < d.IdealWide {
		return nil, fmt.Errorf("oracle: %q under %s took %d cycles, beating ideal %d-porting's %d",
			prog.Name, d.Name, d.Cycles, arb.PeakWidth(), d.IdealWide)
	}
	if d.Cycles > d.IdealOne {
		return nil, fmt.Errorf("oracle: %q under %s took %d cycles, worse than a single ideal port's %d",
			prog.Name, d.Name, d.Cycles, d.IdealOne)
	}
	return d, nil
}

// idealCycles runs prog under an ideal width-port cache and returns the
// cycle count (itself verified).
func idealCycles(prog *isa.Program, width int, maxInsts uint64) (uint64, error) {
	arb, err := ports.NewIdeal(width)
	if err != nil {
		return 0, err
	}
	res, err := RunStack(prog, arb, maxInsts, false)
	if err != nil {
		return 0, err
	}
	return res.Cycles, nil
}
