package oracle

import (
	"testing"

	"lbic/internal/core"
	"lbic/internal/ports"
)

// The fuzz targets synthesize random ready-sets from raw bytes and replay
// them through the port organizations under the grant validator, checking
// the properties no fixed scenario pins down: no starvation, no illegal
// grant set, drain-cycle ordering between organizations, and FIFO store
// queues. Each target also runs its seed corpus as a regular test.

const fuzzLineSize = 32

// decodeRefs turns two bytes per request into an age-ordered ready list
// over a 2KB region (64 lines of 32 bytes): byte 0 picks an 8-byte-aligned
// address, byte 1's low bit marks a store.
func decodeRefs(data []byte, maxRefs int) []ports.Request {
	refs := make([]ports.Request, 0, maxRefs)
	for i := 0; i+1 < len(data) && len(refs) < maxRefs; i += 2 {
		refs = append(refs, ports.Request{
			Seq:   uint64(len(refs) + 1),
			Addr:  uint64(data[i]) * 8,
			Store: data[i+1]&1 == 1,
		})
	}
	return refs
}

// drainAll replays refs through arb, validating every cycle's grant set,
// until all are granted; it fails the test on starvation and returns the
// grant cycles consumed.
func drainAll(t *testing.T, arb ports.Arbiter, refs []ports.Request) int {
	t.Helper()
	v := NewGrantValidator(arb)
	qm := newQueueMonitor(arb)
	ready := append([]ports.Request(nil), refs...)
	limit := 10*len(ready) + 64
	cycles := 0
	var dst []int
	for len(ready) > 0 {
		if cycles >= limit {
			t.Fatalf("%s starved: %d requests still ready after %d cycles", arb.Name(), len(ready), cycles)
		}
		dst = arb.Grant(uint64(cycles), ready, dst[:0])
		if err := v.Validate(uint64(cycles), ready, dst); err != nil {
			t.Fatal(err)
		}
		if qm != nil {
			if err := qm.check(uint64(cycles)); err != nil {
				t.Fatal(err)
			}
		}
		for k := len(dst) - 1; k >= 0; k-- {
			i := dst[k]
			ready = append(ready[:i], ready[i+1:]...)
		}
		cycles++
	}
	return cycles
}

// queueDepthLeft returns the longest store queue of a queue-backed arbiter,
// or 0.
func queueDepthLeft(arb ports.Arbiter) int {
	longest := 0
	switch a := arb.(type) {
	case *core.LBIC:
		for b := 0; b < a.Config().Banks; b++ {
			if n := a.StoreQueueLen(b); n > longest {
				longest = n
			}
		}
	case *ports.BankedSQ:
		for b := 0; b < a.Selector().Banks(); b++ {
			if n := a.StoreQueueLen(b); n > longest {
				longest = n
			}
		}
	}
	return longest
}

// flushQueues runs idle grant cycles until every store queue is empty;
// banks drain in parallel, so depth+2 cycles must always suffice.
func flushQueues(t *testing.T, arb ports.Arbiter, depth, startCycle int) {
	t.Helper()
	qm := newQueueMonitor(arb)
	var dst []int
	for i := 0; queueDepthLeft(arb) > 0; i++ {
		if i > depth+2 {
			t.Fatalf("%s store queues not empty after %d idle cycles (deepest %d)",
				arb.Name(), i, queueDepthLeft(arb))
		}
		dst = arb.Grant(uint64(startCycle+i), nil, dst[:0])
		if len(dst) != 0 {
			t.Fatalf("%s granted %v with no ready requests", arb.Name(), dst)
		}
		if qm != nil {
			if err := qm.check(uint64(startCycle + i)); err != nil {
				t.Fatal(err)
			}
		}
	}
}

func ceilDiv(a, b int) int { return (a + b - 1) / b }

// FuzzArbiterGrant replays a random ready-set through the whole taxonomy:
// every organization must satisfy its grant validator every cycle, starve
// nothing, flush its store queues, and drain no faster than ideal
// multi-porting at its own peak width. Ideal drains in exactly ceil(n/P)
// cycles and the virtual multi-port must match it.
func FuzzArbiterGrant(f *testing.F) {
	f.Add([]byte{0, 0, 1, 0, 2, 0, 3, 0})            // same-line load burst
	f.Add([]byte{0, 1, 0, 1, 4, 1, 8, 1})            // same-line store burst
	f.Add([]byte{0, 0, 32, 0, 64, 0, 96, 0, 128, 0}) // spread across lines
	f.Add([]byte{96, 1, 84, 0, 85, 0, 97, 1, 12, 0}) // Figure 4c-like mix
	f.Fuzz(func(t *testing.T, data []byte) {
		refs := decodeRefs(data, 48)
		if len(refs) == 0 {
			t.Skip()
		}
		factories := []func() (ports.Arbiter, error){
			func() (ports.Arbiter, error) { return ports.NewIdeal(4) },
			func() (ports.Arbiter, error) { return ports.NewVirtual(4) },
			func() (ports.Arbiter, error) { return ports.NewReplicated(4) },
			func() (ports.Arbiter, error) { return ports.NewBanked(4, fuzzLineSize) },
			func() (ports.Arbiter, error) { return ports.NewBankedSQ(4, fuzzLineSize, 2) },
			func() (ports.Arbiter, error) { return ports.NewMultiPortedBanks(2, 2, fuzzLineSize) },
			func() (ports.Arbiter, error) {
				return core.New(core.Config{Banks: 4, LinePorts: 2, LineSize: fuzzLineSize, StoreQueueDepth: 1})
			},
			func() (ports.Arbiter, error) {
				return core.New(core.Config{Banks: 2, LinePorts: 4, LineSize: fuzzLineSize, Policy: core.PolicyGreedy})
			},
		}
		idealCyc := 0
		for i, mk := range factories {
			arb, err := mk()
			if err != nil {
				t.Fatal(err)
			}
			cyc := drainAll(t, arb, refs)
			flushQueues(t, arb, core.DefaultStoreQueueDepth, cyc)
			if lower := ceilDiv(len(refs), arb.PeakWidth()); cyc < lower {
				t.Fatalf("%s drained %d requests in %d cycles, below its bandwidth bound %d",
					arb.Name(), len(refs), cyc, lower)
			}
			switch i {
			case 0:
				idealCyc = cyc
				if want := ceilDiv(len(refs), 4); cyc != want {
					t.Fatalf("ideal-4 drained %d requests in %d cycles, want exactly %d", len(refs), cyc, want)
				}
			case 1:
				if cyc != idealCyc {
					t.Fatalf("virt-4 drained in %d cycles, ideal-4 in %d — must be identical", cyc, idealCyc)
				}
			}
		}
	})
}

// FuzzCombining concentrates random references on 8 lines of a 4-bank cache
// and checks the paper's central ordering: a leading-policy LBIC never
// drains slower than the traditional banked cache (combining only adds
// bandwidth) and never faster than ideal multi-porting at its peak width.
// Every granted request is either a leading access or a combine.
func FuzzCombining(f *testing.F) {
	f.Add([]byte{0, 8, 16, 24})          // one line, four offsets
	f.Add([]byte{0, 32, 64, 96})         // four lines, four banks
	f.Add([]byte{64, 72, 64, 72, 80})    // repeated same-line loads
	f.Add([]byte{192, 200, 208, 216, 0}) // store bits set on one line
	f.Fuzz(func(t *testing.T, data []byte) {
		refs := make([]ports.Request, 0, 48)
		for _, b := range data {
			if len(refs) == cap(refs) {
				break
			}
			line := uint64(b & 7)
			offset := uint64((b>>3)&3) * 8
			refs = append(refs, ports.Request{
				Seq:   uint64(len(refs) + 1),
				Addr:  line*fuzzLineSize + offset,
				Store: b&0x40 != 0,
			})
		}
		if len(refs) == 0 {
			t.Skip()
		}
		lbic, err := core.New(core.Config{Banks: 4, LinePorts: 2, LineSize: fuzzLineSize})
		if err != nil {
			t.Fatal(err)
		}
		banked, err := ports.NewBanked(4, fuzzLineSize)
		if err != nil {
			t.Fatal(err)
		}
		ideal, err := ports.NewIdeal(lbic.PeakWidth())
		if err != nil {
			t.Fatal(err)
		}
		cycLBIC := drainAll(t, lbic, refs)
		flushQueues(t, lbic, core.DefaultStoreQueueDepth, cycLBIC)
		cycBank := drainAll(t, banked, refs)
		cycIdeal := drainAll(t, ideal, refs)
		if cycLBIC > cycBank {
			t.Fatalf("lbic-4x2 drained in %d cycles, banked in %d — combining may never lose cycles", cycLBIC, cycBank)
		}
		if cycLBIC < cycIdeal {
			t.Fatalf("lbic-4x2 drained in %d cycles, beating ideal-%d's %d", cycLBIC, lbic.PeakWidth(), cycIdeal)
		}
		st := lbic.Stats()
		if st.Leading+st.Combined != uint64(len(refs)) {
			t.Fatalf("leading %d + combined %d grants != %d requests", st.Leading, st.Combined, len(refs))
		}
	})
}

// FuzzStoreQueue hammers the two queue-backed organizations with
// store-heavy reference sets at randomized queue depths: queues must evolve
// FIFO every cycle (checked inside drainAll), never exceed capacity, drain
// fully on idle cycles, and starve nothing.
func FuzzStoreQueue(f *testing.F) {
	f.Add([]byte{1, 0xC0, 0xC4, 0xC8, 0xE0, 0xE4})       // store run on two lines
	f.Add([]byte{2, 0xC0, 0x40, 0xC0, 0x40, 0xC0, 0x40}) // load/store interleave, one line
	f.Add([]byte{1, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF}) // depth-1 queue saturation
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 2 {
			t.Skip()
		}
		depth := int(data[0]&3) + 1
		refs := make([]ports.Request, 0, 48)
		for _, b := range data[1:] {
			if len(refs) == cap(refs) {
				break
			}
			line := uint64(b & 3)
			offset := uint64((b>>2)&3) * 8
			refs = append(refs, ports.Request{
				Seq:   uint64(len(refs) + 1),
				Addr:  line*fuzzLineSize + offset,
				Store: b&0xC0 != 0, // three quarters of the encodings are stores
			})
		}
		if len(refs) == 0 {
			t.Skip()
		}
		lbic, err := core.New(core.Config{Banks: 2, LinePorts: 2, LineSize: fuzzLineSize, StoreQueueDepth: depth})
		if err != nil {
			t.Fatal(err)
		}
		bsq, err := ports.NewBankedSQ(2, fuzzLineSize, depth)
		if err != nil {
			t.Fatal(err)
		}
		cyc := drainAll(t, lbic, refs)
		flushQueues(t, lbic, depth, cyc)
		cyc = drainAll(t, bsq, refs)
		flushQueues(t, bsq, depth, cyc)
	})
}
