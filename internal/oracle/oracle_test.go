package oracle

import (
	"strings"
	"testing"

	"lbic/internal/core"
	"lbic/internal/isa"
	"lbic/internal/ports"
	"lbic/internal/trace"
	"lbic/internal/workload"
)

// handProg builds a small program with a known memory history: initialized
// data, overlapping stores, store-to-load forwarding distance zero, and a
// final read-back of everything.
func handProg(t *testing.T) *isa.Program {
	t.Helper()
	b := isa.NewBuilder("oracle-hand")
	buf := b.Alloc(64, 64)
	b.Entry()
	b.Li(isa.R(1), int64(buf))
	b.Li(isa.R(2), 0x1122334455667788)
	b.Sd(isa.R(2), isa.R(1), 0) // [buf, buf+8) = 0x1122334455667788
	b.Ld(isa.R(3), isa.R(1), 0) // forwardable, full cover
	b.Li(isa.R(4), 0xABCD)
	b.Sw(isa.R(4), isa.R(1), 4)  // overlaps the Sd's high word
	b.Lw(isa.R(5), isa.R(1), 4)  // must see 0x0000ABCD
	b.Lw(isa.R(6), isa.R(1), 0)  // must still see 0x55667788
	b.Sb(isa.R(4), isa.R(1), 16) // isolated byte store (0xCD)
	b.Lbu(isa.R(7), isa.R(1), 16)
	b.Halt()
	p, err := b.Build()
	if err != nil {
		t.Fatalf("building hand program: %v", err)
	}
	return p
}

func TestRunReference(t *testing.T) {
	ref, err := RunReference(handProg(t), 0)
	if err != nil {
		t.Fatalf("RunReference: %v", err)
	}
	if ref.Loads != 4 || ref.Stores != 3 {
		t.Fatalf("got %d loads, %d stores, want 4 and 3", ref.Loads, ref.Stores)
	}
	if ref.MemOps != 7 {
		t.Fatalf("MemOps = %d, want 7", ref.MemOps)
	}
	want := []uint64{0x1122334455667788, 0xABCD, 0x55667788, 0xCD}
	got := make([]uint64, 0, len(ref.LoadValues))
	// Load seqs are ordered; collect in seq order.
	seqs := make([]uint64, 0, len(ref.LoadValues))
	for s := range ref.LoadValues {
		seqs = append(seqs, s)
	}
	for i := 0; i < len(seqs); i++ {
		for j := i + 1; j < len(seqs); j++ {
			if seqs[j] < seqs[i] {
				seqs[i], seqs[j] = seqs[j], seqs[i]
			}
		}
	}
	for _, s := range seqs {
		got = append(got, ref.LoadValues[s])
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("load %d read %#x, want %#x", i, got[i], want[i])
		}
	}
	if len(ref.Image) != 9 { // 8 bytes from Sd/Sw + 1 from Sb
		t.Errorf("image covers %d bytes, want 9", len(ref.Image))
	}
}

// organizations lists one factory per port organization, the full taxonomy.
var organizations = []struct {
	name string
	make func(lineSize int) (ports.Arbiter, error)
}{
	{"ideal-4", func(ls int) (ports.Arbiter, error) { return ports.NewIdeal(4) }},
	{"virt-4", func(ls int) (ports.Arbiter, error) { return ports.NewVirtual(4) }},
	{"repl-4", func(ls int) (ports.Arbiter, error) { return ports.NewReplicated(4) }},
	{"bank-4", func(ls int) (ports.Arbiter, error) { return ports.NewBanked(4, ls) }},
	{"banksq-4", func(ls int) (ports.Arbiter, error) { return ports.NewBankedSQ(4, ls, 0) }},
	{"mpb-2x2", func(ls int) (ports.Arbiter, error) { return ports.NewMultiPortedBanks(2, 2, ls) }},
	{"lbic-4x2", func(ls int) (ports.Arbiter, error) {
		return core.New(core.Config{Banks: 4, LinePorts: 2, LineSize: ls})
	}},
	{"lbic-4x2-greedy", func(ls int) (ports.Arbiter, error) {
		return core.New(core.Config{Banks: 4, LinePorts: 2, LineSize: ls, Policy: core.PolicyGreedy})
	}},
	{"coded-4x1", func(ls int) (ports.Arbiter, error) {
		return ports.NewCoded(ports.CodedConfig{Banks: 4, ParityBanks: 1, LineSize: ls})
	}},
	{"coded-4x2-spec", func(ls int) (ports.Arbiter, error) {
		return ports.NewCoded(ports.CodedConfig{Banks: 4, ParityBanks: 2, LineSize: ls, Speculative: true})
	}},
	{"coded-4x2-lb2", func(ls int) (ports.Arbiter, error) {
		return ports.NewCoded(ports.CodedConfig{Banks: 4, ParityBanks: 2, LineSize: ls, LinePorts: 2})
	}},
}

// TestDiffAllOrganizations differentially checks every port organization on
// every built-in access-pattern microbenchmark: all invariants hold, load
// values match the sequential reference exactly, and cycles land between
// ideal multi-porting at the organization's peak width and a single ideal
// port.
func TestDiffAllOrganizations(t *testing.T) {
	const maxInsts = 2000
	for _, pat := range workload.Patterns() {
		prog := pat.Build()
		for _, org := range organizations {
			t.Run(pat.Name+"/"+org.name, func(t *testing.T) {
				d, err := Diff(prog, org.make, maxInsts)
				if err != nil {
					t.Fatal(err)
				}
				if d.Summary.Loads+d.Summary.Forwards != d.Ref.Loads {
					t.Errorf("checked %d+%d loads, reference executed %d",
						d.Summary.Loads, d.Summary.Forwards, d.Ref.Loads)
				}
				if d.Summary.Stores != d.Ref.Stores {
					t.Errorf("applied %d stores, reference executed %d", d.Summary.Stores, d.Ref.Stores)
				}
			})
		}
	}
}

// TestDiffHandProgram pins the differential check on the hand-built program
// whose memory history is known exactly.
func TestDiffHandProgram(t *testing.T) {
	for _, org := range organizations {
		t.Run(org.name, func(t *testing.T) {
			if _, err := Diff(handProg(t), org.make, 0); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestVirtualMatchesIdeal checks the taxonomy identity the virtual
// multi-port design promises: cycle-for-cycle equality with ideal
// multi-porting of the same width.
func TestVirtualMatchesIdeal(t *testing.T) {
	const maxInsts = 2000
	for _, width := range []int{2, 4} {
		for _, pat := range workload.Patterns() {
			prog := pat.Build()
			id, err := ports.NewIdeal(width)
			if err != nil {
				t.Fatal(err)
			}
			vt, err := ports.NewVirtual(width)
			if err != nil {
				t.Fatal(err)
			}
			ri, err := RunStack(prog, id, maxInsts, false)
			if err != nil {
				t.Fatal(err)
			}
			rv, err := RunStack(prog, vt, maxInsts, false)
			if err != nil {
				t.Fatal(err)
			}
			if ri.Cycles != rv.Cycles {
				t.Errorf("%s width %d: virtual took %d cycles, ideal %d — must be identical",
					pat.Name, width, rv.Cycles, ri.Cycles)
			}
		}
	}
}

func dyn(seq uint64, store bool, addr uint64, size uint8, value uint64) *trace.Dyn {
	d := &trace.Dyn{Seq: seq, Addr: addr, Size: size, Value: value, Class: isa.ClassLoad}
	if store {
		d.Class = isa.ClassStore
	}
	return d
}

func wantFailure(t *testing.T, c *Checker, frag string) {
	t.Helper()
	err := c.Err()
	if err == nil {
		t.Fatalf("checker accepted a violation; wanted an error containing %q", frag)
	}
	if !strings.Contains(err.Error(), frag) {
		t.Fatalf("checker error %q does not mention %q", err, frag)
	}
}

// The negative tests fabricate event sequences a correct core can never
// produce and assert the checker rejects each one with a telling error.

func TestCheckerRejectsDoubleGrant(t *testing.T) {
	arb, _ := ports.NewIdeal(4)
	c := NewChecker(nil, arb)
	c.ObserveDispatch(dyn(1, false, 0x2000, 8, 0))
	c.ObserveAccess(0, 1, false, false)
	c.ObserveAccess(1, 1, false, false)
	wantFailure(t, c, "twice")
}

func TestCheckerRejectsLoadBypassingStore(t *testing.T) {
	arb, _ := ports.NewIdeal(4)
	c := NewChecker(nil, arb)
	c.ObserveDispatch(dyn(1, true, 0x2000, 8, 0xFF))
	c.ObserveDispatch(dyn(2, false, 0x2004, 4, 0))
	c.ObserveAccess(0, 2, false, false) // load accesses cache with the store still pending
	wantFailure(t, c, "bypassed older overlapping store")
}

func TestCheckerRejectsStoreReordering(t *testing.T) {
	arb, _ := ports.NewIdeal(4)
	c := NewChecker(nil, arb)
	c.ObserveDispatch(dyn(1, true, 0x2000, 8, 0x11))
	c.ObserveDispatch(dyn(2, true, 0x2004, 8, 0x22))
	c.ObserveAccess(0, 2, true, false) // younger overlapping store written first
	wantFailure(t, c, "before older overlapping store")
}

func TestCheckerRejectsWrongLoadValue(t *testing.T) {
	arb, _ := ports.NewIdeal(4)
	c := NewChecker(nil, arb)
	c.ObserveDispatch(dyn(1, true, 0x2000, 8, 0x1234))
	c.ObserveAccess(0, 1, true, false)
	c.ObserveDispatch(dyn(2, false, 0x2000, 8, 0x9999)) // ground truth disagrees with shadow
	c.ObserveAccess(1, 2, false, false)
	wantFailure(t, c, "oracle memory holds")
}

func TestCheckerRejectsBadForward(t *testing.T) {
	t.Run("not-pending", func(t *testing.T) {
		arb, _ := ports.NewIdeal(4)
		c := NewChecker(nil, arb)
		c.ObserveDispatch(dyn(2, false, 0x2000, 8, 0))
		c.ObserveForward(0, 2, 1)
		wantFailure(t, c, "not pending")
	})
	t.Run("no-cover", func(t *testing.T) {
		arb, _ := ports.NewIdeal(4)
		c := NewChecker(nil, arb)
		c.ObserveDispatch(dyn(1, true, 0x2000, 4, 0x7))
		c.ObserveDispatch(dyn(2, false, 0x2000, 8, 0x7))
		c.ObserveForward(0, 2, 1)
		wantFailure(t, c, "does not cover")
	})
	t.Run("wrong-value", func(t *testing.T) {
		arb, _ := ports.NewIdeal(4)
		c := NewChecker(nil, arb)
		c.ObserveDispatch(dyn(1, true, 0x2000, 8, 0x1122334455667788))
		c.ObserveDispatch(dyn(2, false, 0x2004, 4, 0xBAD))
		c.ObserveForward(0, 2, 1)
		wantFailure(t, c, "ground truth is")
	})
	t.Run("stale", func(t *testing.T) {
		arb, _ := ports.NewIdeal(4)
		c := NewChecker(nil, arb)
		c.ObserveDispatch(dyn(1, true, 0x2000, 8, 0x11))
		c.ObserveDispatch(dyn(2, true, 0x2000, 8, 0x22))
		c.ObserveDispatch(dyn(3, false, 0x2000, 8, 0x11))
		c.ObserveForward(0, 3, 1) // forwards from seq 1 past the newer seq 2
		wantFailure(t, c, "past newer overlapping store")
	})
}

func TestCheckerRejectsStallSumDrift(t *testing.T) {
	// The CPI bucket identity itself is asserted inside cpu.Step; here we
	// only pin that a run with the checker attached still passes it (the
	// positive case is exercised by every Diff test above).
	arb, _ := ports.NewIdeal(1)
	if _, err := RunStack(handProg(t), arb, 0, false); err != nil {
		t.Fatal(err)
	}
}

// TestGrantValidator feeds hand-built illegal grant sets to each
// organization's validator.
func TestGrantValidator(t *testing.T) {
	const lineSize = 32
	reqs := func(specs ...[2]uint64) []ports.Request {
		r := make([]ports.Request, len(specs))
		for i, s := range specs {
			r[i] = ports.Request{Seq: uint64(i + 1), Addr: s[0], Store: s[1] == 1}
		}
		return r
	}
	mk := func(t *testing.T, f func() (ports.Arbiter, error)) ports.Arbiter {
		t.Helper()
		a, err := f()
		if err != nil {
			t.Fatal(err)
		}
		return a
	}
	cases := []struct {
		name    string
		arb     func() (ports.Arbiter, error)
		ready   []ports.Request
		granted []int
		frag    string // "" = must pass
	}{
		{"over-peak", func() (ports.Arbiter, error) { return ports.NewIdeal(2) },
			reqs([2]uint64{0, 0}, [2]uint64{8, 0}, [2]uint64{16, 0}), []int{0, 1, 2}, "peak width"},
		{"not-increasing", func() (ports.Arbiter, error) { return ports.NewIdeal(4) },
			reqs([2]uint64{0, 0}, [2]uint64{8, 0}), []int{1, 0}, "strictly increasing"},
		{"ideal-skip", func() (ports.Arbiter, error) { return ports.NewIdeal(4) },
			reqs([2]uint64{0, 0}, [2]uint64{8, 0}), []int{1}, "oldest"},
		{"ideal-ok", func() (ports.Arbiter, error) { return ports.NewIdeal(4) },
			reqs([2]uint64{0, 0}, [2]uint64{8, 0}), []int{0, 1}, ""},
		{"repl-store-pair", func() (ports.Arbiter, error) { return ports.NewReplicated(4) },
			reqs([2]uint64{0, 1}, [2]uint64{8, 0}), []int{0, 1}, "broadcast"},
		{"repl-ok", func() (ports.Arbiter, error) { return ports.NewReplicated(4) },
			reqs([2]uint64{0, 1}, [2]uint64{8, 0}), []int{0}, ""},
		{"bank-double", func() (ports.Arbiter, error) { return ports.NewBanked(4, lineSize) },
			reqs([2]uint64{0, 0}, [2]uint64{8, 0}), []int{0, 1}, "oldest first"},
		{"bank-ok", func() (ports.Arbiter, error) { return ports.NewBanked(4, lineSize) },
			reqs([2]uint64{0, 0}, [2]uint64{32, 0}), []int{0, 1}, ""},
		{"mpb-over", func() (ports.Arbiter, error) { return ports.NewMultiPortedBanks(2, 2, lineSize) },
			reqs([2]uint64{0, 0}, [2]uint64{8, 0}, [2]uint64{64, 0}), []int{0, 1, 2}, "oldest first"},
		{"lbic-cross-line", func() (ports.Arbiter, error) {
			return core.New(core.Config{Banks: 4, LinePorts: 2, LineSize: lineSize})
		}, reqs([2]uint64{0, 0}, [2]uint64{128, 0}), []int{0, 1}, "open line"},
		{"lbic-over-width", func() (ports.Arbiter, error) {
			return core.New(core.Config{Banks: 4, LinePorts: 2, LineSize: lineSize})
		}, reqs([2]uint64{0, 0}, [2]uint64{8, 0}, [2]uint64{16, 0}), []int{0, 1, 2}, "line buffer has"},
		{"lbic-starved-lead", func() (ports.Arbiter, error) {
			return core.New(core.Config{Banks: 4, LinePorts: 2, LineSize: lineSize})
		}, reqs([2]uint64{0, 0}, [2]uint64{32, 0}), []int{1}, "oldest ready request"},
		{"lbic-ok", func() (ports.Arbiter, error) {
			return core.New(core.Config{Banks: 4, LinePorts: 2, LineSize: lineSize})
		}, reqs([2]uint64{0, 0}, [2]uint64{8, 0}, [2]uint64{32, 0}), []int{0, 1, 2}, ""},
		{"banksq-two-loads", func() (ports.Arbiter, error) { return ports.NewBankedSQ(2, lineSize, 0) },
			reqs([2]uint64{0, 0}, [2]uint64{64, 0}), []int{0, 1}, "store queue"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			v := NewGrantValidator(mk(t, tc.arb))
			err := v.Validate(0, tc.ready, tc.granted)
			if tc.frag == "" {
				if err != nil {
					t.Fatalf("legal grant rejected: %v", err)
				}
				return
			}
			if err == nil {
				t.Fatalf("illegal grant accepted; wanted an error containing %q", tc.frag)
			}
			if !strings.Contains(err.Error(), tc.frag) {
				t.Fatalf("error %q does not mention %q", err, tc.frag)
			}
		})
	}
}

// fakeQueues drives the FIFO monitor with scripted snapshots.
type fakeQueues struct {
	n, d int
	q    []uint64
}

func (f *fakeQueues) banks() int                         { return f.n }
func (f *fakeQueues) depth() int                         { return f.d }
func (f *fakeQueues) lines(_ int, dst []uint64) []uint64 { return append(dst, f.q...) }

func TestQueueMonitorRejectsNonFIFO(t *testing.T) {
	f := &fakeQueues{n: 1, d: 4}
	m := &queueMonitor{src: f, name: "fake", prev: make([][]uint64, 1), cur: make([][]uint64, 1)}
	f.q = []uint64{10, 11}
	if err := m.check(0); err != nil {
		t.Fatalf("initial snapshot rejected: %v", err)
	}
	f.q = []uint64{10, 11, 12}
	if err := m.check(1); err != nil {
		t.Fatalf("append rejected: %v", err)
	}
	f.q = []uint64{11, 12}
	if err := m.check(2); err != nil {
		t.Fatalf("front retire rejected: %v", err)
	}
	f.q = []uint64{12} // retires front entry 11
	if err := m.check(3); err != nil {
		t.Fatalf("second retire rejected: %v", err)
	}
	f.q = []uint64{99} // replaces the remaining entry: not FIFO
	if err := m.check(4); err == nil || !strings.Contains(err.Error(), "FIFO") {
		t.Fatalf("non-FIFO transition accepted (err=%v)", err)
	}
	f2 := &fakeQueues{n: 1, d: 1, q: []uint64{1, 2}}
	m2 := &queueMonitor{src: f2, name: "fake", prev: make([][]uint64, 1), cur: make([][]uint64, 1)}
	if err := m2.check(0); err == nil || !strings.Contains(err.Error(), "capacity") {
		t.Fatalf("over-capacity queue accepted (err=%v)", err)
	}
}
