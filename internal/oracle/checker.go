package oracle

import (
	"fmt"

	"lbic/internal/core"
	"lbic/internal/isa"
	"lbic/internal/ports"
	"lbic/internal/trace"
	"lbic/internal/vm"
)

// granuleShift groups addresses into 8-byte granules for the checker's
// pending-store overlap index, mirroring the LSQ's disambiguation grain.
const granuleShift = 3

// Summary counts what a verified run actually checked, so "verify passed"
// is auditable: a run that never exercised forwarding or store draining
// proves less than one that did.
type Summary struct {
	// Cycles is the number of arbitration cycles observed.
	Cycles uint64
	// Grants counts successful (non-blocked) cache accesses checked.
	Grants uint64
	// Blocked counts accesses the hierarchy rejected (retried later).
	Blocked uint64
	// Loads counts load values checked against the shadow memory.
	Loads uint64
	// Forwards counts store-to-load forwards checked against the pending
	// store's value.
	Forwards uint64
	// Stores counts stores applied to the shadow memory in a legal order.
	Stores uint64
}

// memRec is one dispatched memory operation awaiting its access.
type memRec struct {
	addr  uint64
	size  int
	value uint64
}

// Checker is the invariant monitor. It implements cpu.Verifier: the timed
// core reports every dispatch, grant, cache access, and store-to-load
// forward, and the checker replays them against a shadow value-tracking
// memory, failing the run on the first violated invariant. The zero cost of
// an unattached checker is the point: verification is opt-in per run.
type Checker struct {
	arb ports.Arbiter
	gv  *GrantValidator
	qm  *queueMonitor

	base   *vm.Memory        // initial data image
	shadow map[uint64]byte   // bytes written by applied stores
	stores map[uint64]memRec // dispatched stores not yet applied
	loads  map[uint64]memRec // dispatched loads not yet serviced
	// storeIdx maps an 8-byte granule to the pending stores touching it,
	// so overlap checks do not scan every pending store.
	storeIdx map[uint64][]uint64
	// granted marks seqs that completed a cache access; seqs are dense
	// instruction numbers, so a bitmap beats a map at verify rates.
	granted []uint64

	keepValues bool
	loadValues map[uint64]uint64

	sum Summary
	err error
}

// NewChecker returns a checker for runs of prog through arb. prog may be
// nil when the checker is driven synthetically (unit tests, fuzzing).
func NewChecker(prog *isa.Program, arb ports.Arbiter) *Checker {
	base := vm.NewMemory()
	if prog != nil {
		for _, s := range prog.Data {
			base.Copy(s.Base, s.Bytes)
		}
	}
	return &Checker{
		arb:      arb,
		gv:       NewGrantValidator(arb),
		qm:       newQueueMonitor(arb),
		base:     base,
		shadow:   make(map[uint64]byte),
		stores:   make(map[uint64]memRec),
		loads:    make(map[uint64]memRec),
		storeIdx: make(map[uint64][]uint64),
	}
}

// KeepLoadValues makes the checker retain every checked load value, keyed by
// sequence number, for differential comparison against RunReference.
func (c *Checker) KeepLoadValues() {
	c.keepValues = true
	c.loadValues = make(map[uint64]uint64)
}

// LoadValues returns the retained load values (nil unless KeepLoadValues).
func (c *Checker) LoadValues() map[uint64]uint64 { return c.loadValues }

// Summary returns what has been checked so far.
func (c *Checker) Summary() Summary { return c.sum }

// Err implements cpu.Verifier: the first violated invariant, or nil.
func (c *Checker) Err() error { return c.err }

func (c *Checker) fail(format string, args ...any) {
	if c.err == nil {
		c.err = fmt.Errorf("oracle: "+format, args...)
	}
}

func granules(addr uint64, size int) (lo, hi uint64) {
	return addr >> granuleShift, (addr + uint64(size) - 1) >> granuleShift
}

func overlaps(a memRec, addr uint64, size int) bool {
	return a.addr < addr+uint64(size) && addr < a.addr+uint64(a.size)
}

// ObserveDispatch implements cpu.Verifier: a memory instruction entered the
// window with its resolved address and ground-truth value.
func (c *Checker) ObserveDispatch(d *trace.Dyn) {
	if !d.IsMem() {
		return
	}
	rec := memRec{addr: d.Addr, size: int(d.Size), value: d.Value}
	if rec.size <= 0 {
		c.fail("seq %d dispatched a memory access of size %d", d.Seq, rec.size)
		return
	}
	if d.IsStore() {
		c.stores[d.Seq] = rec
		lo, hi := granules(rec.addr, rec.size)
		for g := lo; g <= hi; g++ {
			c.storeIdx[g] = append(c.storeIdx[g], d.Seq)
		}
		return
	}
	c.loads[d.Seq] = rec
}

// ObserveGrant implements cpu.Verifier: one arbitration cycle happened with
// the given ready list and grant set. It runs the per-organization grant
// validator and the store-queue FIFO monitor.
func (c *Checker) ObserveGrant(now uint64, ready []ports.Request, granted []int) {
	c.sum.Cycles++
	if err := c.gv.Validate(now, ready, granted); err != nil {
		c.fail("%s", err)
	}
	if c.qm != nil {
		if err := c.qm.check(now); err != nil {
			c.fail("%s", err)
		}
	}
}

// ObserveAccess implements cpu.Verifier: a granted request reached the cache
// hierarchy. Blocked accesses are retried by the core and do not count as
// serviced; a successful access is checked and may not recur.
func (c *Checker) ObserveAccess(now uint64, seq uint64, store, blocked bool) {
	if blocked {
		c.sum.Blocked++
		return
	}
	if c.wasGranted(seq) {
		c.fail("cycle %d: seq %d completed a cache access twice", now, seq)
		return
	}
	c.setGranted(seq)
	c.sum.Grants++
	if store {
		c.applyStore(now, seq)
		return
	}
	c.checkLoad(now, seq)
}

func (c *Checker) wasGranted(seq uint64) bool {
	w := seq >> 6
	return w < uint64(len(c.granted)) && c.granted[w]&(1<<(seq&63)) != 0
}

func (c *Checker) setGranted(seq uint64) {
	w := seq >> 6
	for uint64(len(c.granted)) <= w {
		c.granted = append(c.granted, 0)
	}
	c.granted[w] |= 1 << (seq & 63)
}

// oldestOverlapping returns the oldest pending store older than seq whose
// bytes overlap [addr, addr+size).
func (c *Checker) oldestOverlapping(addr uint64, size int, seq uint64) (uint64, bool) {
	best, found := uint64(0), false
	lo, hi := granules(addr, size)
	for g := lo; g <= hi; g++ {
		for _, s := range c.storeIdx[g] {
			if s >= seq {
				continue
			}
			if rec, ok := c.stores[s]; ok && overlaps(rec, addr, size) && (!found || s < best) {
				best, found = s, true
			}
		}
	}
	return best, found
}

func (c *Checker) applyStore(now uint64, seq uint64) {
	rec, ok := c.stores[seq]
	if !ok {
		c.fail("cycle %d: store seq %d accessed the cache but was never dispatched", now, seq)
		return
	}
	if older, found := c.oldestOverlapping(rec.addr, rec.size, seq); found {
		c.fail("cycle %d: store seq %d (addr %#x) wrote the array before older overlapping store seq %d",
			now, seq, rec.addr, older)
		return
	}
	for i := 0; i < rec.size; i++ {
		c.shadow[rec.addr+uint64(i)] = byte(rec.value >> (8 * uint(i)))
	}
	c.removeStore(seq, rec)
	c.sum.Stores++
}

func (c *Checker) removeStore(seq uint64, rec memRec) {
	delete(c.stores, seq)
	lo, hi := granules(rec.addr, rec.size)
	for g := lo; g <= hi; g++ {
		list := c.storeIdx[g]
		for i, s := range list {
			if s == seq {
				c.storeIdx[g] = append(list[:i], list[i+1:]...)
				break
			}
		}
		if len(c.storeIdx[g]) == 0 {
			delete(c.storeIdx, g)
		}
	}
}

// shadowRead assembles a little-endian value from the shadow memory,
// falling back to the program's initial data image for untouched bytes.
func (c *Checker) shadowRead(addr uint64, size int) uint64 {
	var v uint64
	for i := 0; i < size; i++ {
		b, ok := c.shadow[addr+uint64(i)]
		if !ok {
			b = c.base.LoadByte(addr + uint64(i))
		}
		v |= uint64(b) << (8 * uint(i))
	}
	return v
}

func (c *Checker) checkLoad(now uint64, seq uint64) {
	rec, ok := c.loads[seq]
	if !ok {
		c.fail("cycle %d: load seq %d accessed the cache but was never dispatched", now, seq)
		return
	}
	if older, found := c.oldestOverlapping(rec.addr, rec.size, seq); found {
		c.fail("cycle %d: load seq %d (addr %#x) bypassed older overlapping store seq %d still pending",
			now, seq, rec.addr, older)
		return
	}
	if got := c.shadowRead(rec.addr, rec.size); got != rec.value {
		c.fail("cycle %d: load seq %d at %#x: timed machine carries value %#x, oracle memory holds %#x",
			now, seq, rec.addr, rec.value, got)
		return
	}
	if c.keepValues {
		c.loadValues[seq] = rec.value
	}
	delete(c.loads, seq)
	c.sum.Loads++
}

// ObserveForward implements cpu.Verifier: the LSQ serviced loadSeq by
// forwarding from storeSeq instead of accessing the cache. The store must
// still be pending, older than the load, cover it entirely, carry the bytes
// the load's ground truth says, and no younger overlapping store may sit
// between them.
func (c *Checker) ObserveForward(now uint64, loadSeq, storeSeq uint64) {
	l, ok := c.loads[loadSeq]
	if !ok {
		c.fail("cycle %d: forward to load seq %d which was never dispatched (or already serviced)", now, loadSeq)
		return
	}
	s, ok := c.stores[storeSeq]
	if !ok {
		c.fail("cycle %d: load seq %d forwarded from store seq %d which is not pending", now, loadSeq, storeSeq)
		return
	}
	if storeSeq >= loadSeq {
		c.fail("cycle %d: load seq %d forwarded from younger store seq %d", now, loadSeq, storeSeq)
		return
	}
	if s.addr > l.addr || l.addr+uint64(l.size) > s.addr+uint64(s.size) {
		c.fail("cycle %d: load seq %d [%#x,+%d) forwarded from store seq %d [%#x,+%d) which does not cover it",
			now, loadSeq, l.addr, l.size, storeSeq, s.addr, s.size)
		return
	}
	// A pending store younger than the source but older than the load and
	// overlapping the load's bytes would make the forwarded value stale.
	lo, hi := granules(l.addr, l.size)
	for g := lo; g <= hi; g++ {
		for _, mid := range c.storeIdx[g] {
			if mid <= storeSeq || mid >= loadSeq {
				continue
			}
			if rec, ok := c.stores[mid]; ok && overlaps(rec, l.addr, l.size) {
				c.fail("cycle %d: load seq %d forwarded from store seq %d past newer overlapping store seq %d",
					now, loadSeq, storeSeq, mid)
				return
			}
		}
	}
	want := s.value >> (8 * uint(l.addr-s.addr))
	if l.size < 8 {
		want &= 1<<(8*uint(l.size)) - 1
	}
	if want != l.value {
		c.fail("cycle %d: load seq %d forwarded %#x from store seq %d, ground truth is %#x",
			now, loadSeq, l.value, storeSeq, want)
		return
	}
	if c.keepValues {
		c.loadValues[loadSeq] = l.value
	}
	delete(c.loads, loadSeq)
	c.sum.Forwards++
}

// Finish closes the run: every dispatched operation must have been serviced,
// and (when final is non-nil) the shadow memory must agree byte for byte
// with the reference machine's final memory. It returns the first violation
// recorded at any point in the run.
func (c *Checker) Finish(final *vm.Memory) error {
	if c.err != nil {
		return c.err
	}
	if n := len(c.stores); n != 0 {
		return fmt.Errorf("oracle: %d dispatched stores were never written to the cache", n)
	}
	if n := len(c.loads); n != 0 {
		return fmt.Errorf("oracle: %d dispatched loads were never serviced", n)
	}
	if final != nil {
		for addr, b := range c.shadow {
			if got := final.LoadByte(addr); got != b {
				return fmt.Errorf("oracle: final memory diverges at %#x: reference holds %#x, timed run implies %#x",
					addr, got, b)
			}
		}
	}
	return nil
}

// queueSource abstracts the two queue-backed arbiters for the FIFO monitor.
type queueSource interface {
	banks() int
	depth() int
	lines(b int, dst []uint64) []uint64
}

type lbicQueues struct{ a *core.LBIC }

func (q lbicQueues) banks() int                         { return q.a.Config().Banks }
func (q lbicQueues) depth() int                         { return q.a.Config().StoreQueueDepth }
func (q lbicQueues) lines(b int, dst []uint64) []uint64 { return q.a.StoreQueueLines(b, dst) }

type bsqQueues struct{ a *ports.BankedSQ }

func (q bsqQueues) banks() int                         { return q.a.Selector().Banks() }
func (q bsqQueues) depth() int                         { return q.a.Depth() }
func (q bsqQueues) lines(b int, dst []uint64) []uint64 { return q.a.StoreQueueLines(b, dst) }

// codedQueues adapts the coded arbiter's per-group code-update queues (one
// per parity bank) to the same FIFO monitor.
type codedQueues struct{ a *ports.Coded }

func (q codedQueues) banks() int                         { return q.a.Config().ParityBanks }
func (q codedQueues) depth() int                         { return q.a.Depth() }
func (q codedQueues) lines(b int, dst []uint64) []uint64 { return q.a.UpdateQueueLines(b, dst) }

// queueMonitor snapshots every store queue each cycle and asserts FIFO
// evolution: between consecutive cycles a queue either keeps its entries
// (possibly appending at the back) or retires exactly its front entry.
type queueMonitor struct {
	src  queueSource
	name string
	prev [][]uint64
	cur  [][]uint64
}

// newQueueMonitor returns a monitor for arb's store queues, or nil when the
// organization has none.
func newQueueMonitor(arb ports.Arbiter) *queueMonitor {
	var src queueSource
	switch a := arb.(type) {
	case *core.LBIC:
		src = lbicQueues{a}
	case *ports.BankedSQ:
		src = bsqQueues{a}
	case *ports.Coded:
		src = codedQueues{a}
	default:
		return nil
	}
	n := src.banks()
	return &queueMonitor{
		src:  src,
		name: arb.Name(),
		prev: make([][]uint64, n),
		cur:  make([][]uint64, n),
	}
}

func hasPrefix(q, prefix []uint64) bool {
	if len(prefix) > len(q) {
		return false
	}
	for i := range prefix {
		if q[i] != prefix[i] {
			return false
		}
	}
	return true
}

// check snapshots the queues after one Grant and validates the transition
// from the previous cycle.
func (m *queueMonitor) check(now uint64) error {
	for b := 0; b < m.src.banks(); b++ {
		m.cur[b] = m.src.lines(b, m.cur[b][:0])
		if len(m.cur[b]) > m.src.depth() {
			return fmt.Errorf("cycle %d: %s bank %d store queue holds %d lines, capacity %d",
				now, m.name, b, len(m.cur[b]), m.src.depth())
		}
		// A queue either keeps its entries (appending at the back) or —
		// on an idle bank cycle, when nothing can enqueue — retires
		// exactly its front entry.
		ok := hasPrefix(m.cur[b], m.prev[b]) ||
			(len(m.prev[b]) > 0 && len(m.cur[b]) == len(m.prev[b])-1 &&
				hasPrefix(m.prev[b][1:], m.cur[b]))
		if !ok {
			return fmt.Errorf("cycle %d: %s bank %d store queue %v did not evolve FIFO from %v",
				now, m.name, b, m.cur[b], m.prev[b])
		}
		m.prev[b], m.cur[b] = m.cur[b], m.prev[b]
	}
	return nil
}
