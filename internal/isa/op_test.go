package isa

import "testing"

func TestOpTableComplete(t *testing.T) {
	for op := Op(0); op < NumOps; op++ {
		if op.String() == "" {
			t.Errorf("op %d has no mnemonic", op)
		}
	}
}

func TestOpClasses(t *testing.T) {
	cases := []struct {
		op    Op
		class Class
	}{
		{Add, ClassIntALU}, {Slt, ClassIntALU}, {Li, ClassIntALU},
		{Mul, ClassIntMul}, {Div, ClassIntDiv}, {Rem, ClassIntDiv},
		{FAdd, ClassFPAdd}, {FSub, ClassFPAdd}, {FCmpLT, ClassFPAdd},
		{FMul, ClassFPMul}, {FDiv, ClassFPDiv},
		{Lw, ClassLoad}, {Fld, ClassLoad},
		{Sw, ClassStore}, {Fsd, ClassStore},
		{Beq, ClassIntALU}, {J, ClassIntALU}, {Jr, ClassIntALU},
		{Nop, ClassNone}, {Halt, ClassNone},
	}
	for _, c := range cases {
		if got := c.op.ClassOf(); got != c.class {
			t.Errorf("%s.ClassOf() = %s, want %s", c.op, got, c.class)
		}
	}
}

func TestOpMemPredicates(t *testing.T) {
	loads := []Op{Lb, Lbu, Lw, Lwu, Ld, Fld}
	stores := []Op{Sb, Sw, Sd, Fsd}
	for _, op := range loads {
		if !op.IsLoad() || op.IsStore() || !op.IsMem() {
			t.Errorf("%s: wrong load predicates", op)
		}
	}
	for _, op := range stores {
		if !op.IsStore() || op.IsLoad() || !op.IsMem() {
			t.Errorf("%s: wrong store predicates", op)
		}
	}
	if Add.IsMem() {
		t.Error("add must not be a memory op")
	}
}

func TestOpMemSize(t *testing.T) {
	cases := map[Op]int{
		Lb: 1, Lbu: 1, Sb: 1,
		Lw: 4, Lwu: 4, Sw: 4,
		Ld: 8, Fld: 8, Sd: 8, Fsd: 8,
		Add: 0, Beq: 0,
	}
	for op, want := range cases {
		if got := op.MemSize(); got != want {
			t.Errorf("%s.MemSize() = %d, want %d", op, got, want)
		}
	}
}

func TestOpIsBranch(t *testing.T) {
	branches := []Op{Beq, Bne, Blt, Bge, J, Jal, Jr}
	for _, op := range branches {
		if !op.IsBranch() {
			t.Errorf("%s.IsBranch() = false", op)
		}
	}
	for _, op := range []Op{Add, Lw, Sw, Halt, Nop} {
		if op.IsBranch() {
			t.Errorf("%s.IsBranch() = true", op)
		}
	}
}

func TestInvalidOp(t *testing.T) {
	bad := Op(250)
	if bad.Valid() {
		t.Error("Op(250).Valid() = true")
	}
	if bad.ClassOf() != ClassNone {
		t.Error("invalid op should report ClassNone")
	}
}

func TestInstSources(t *testing.T) {
	cases := []struct {
		in   Inst
		a, b Reg
	}{
		{Inst{Op: Add, Rd: R(1), Rs1: R(2), Rs2: R(3)}, R(2), R(3)},
		{Inst{Op: Addi, Rd: R(1), Rs1: R(2), Imm: 4}, R(2), RegNone},
		{Inst{Op: Li, Rd: R(1), Imm: 9}, RegNone, RegNone},
		{Inst{Op: Lw, Rd: R(1), Rs1: R(2)}, R(2), RegNone},
		{Inst{Op: Sw, Rs1: R(2), Rs2: R(3)}, R(2), R(3)},
		{Inst{Op: Add, Rd: R(1), Rs1: R(0), Rs2: R(3)}, RegNone, R(3)}, // r0 never a dep
		{Inst{Op: J, Imm: 0}, RegNone, RegNone},
		{Inst{Op: Jr, Rs1: R(5)}, R(5), RegNone},
	}
	for _, c := range cases {
		a, b := c.in.Sources()
		if a != c.a || b != c.b {
			t.Errorf("%s: Sources() = (%s,%s), want (%s,%s)", c.in, a, b, c.a, c.b)
		}
	}
}

func TestInstDest(t *testing.T) {
	cases := []struct {
		in   Inst
		want Reg
	}{
		{Inst{Op: Add, Rd: R(1), Rs1: R(2), Rs2: R(3)}, R(1)},
		{Inst{Op: Add, Rd: R(0), Rs1: R(2), Rs2: R(3)}, RegNone}, // r0 writes discarded
		{Inst{Op: Sw, Rs1: R(2), Rs2: R(3)}, RegNone},
		{Inst{Op: Beq, Rs1: R(1), Rs2: R(2)}, RegNone},
		{Inst{Op: Jal, Rd: R(31)}, R(31)},
		{Inst{Op: J}, RegNone},
		{Inst{Op: Lw, Rd: R(7), Rs1: R(2)}, R(7)},
		{Inst{Op: Halt}, RegNone},
	}
	for _, c := range cases {
		if got := c.in.Dest(); got != c.want {
			t.Errorf("%s: Dest() = %s, want %s", c.in, got, c.want)
		}
	}
}

func TestInstString(t *testing.T) {
	cases := []struct {
		in   Inst
		want string
	}{
		{Inst{Op: Add, Rd: R(1), Rs1: R(2), Rs2: R(3)}, "add r1, r2, r3"},
		{Inst{Op: Lw, Rd: R(1), Rs1: R(2), Imm: 8}, "lw r1, 8(r2)"},
		{Inst{Op: Sw, Rs2: R(3), Rs1: R(2), Imm: -4}, "sw r3, -4(r2)"},
		{Inst{Op: Beq, Rs1: R(1), Rs2: R(2), Imm: 10}, "beq r1, r2, 10"},
		{Inst{Op: Halt}, "halt"},
		{Inst{Op: Li, Rd: R(4), Imm: 77}, "li r4, 77"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
}
