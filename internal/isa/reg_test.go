package isa

import (
	"testing"
	"testing/quick"
)

func TestRegConstructors(t *testing.T) {
	for i := 0; i < 32; i++ {
		r := R(i)
		if !r.IsInt() || r.IsFP() {
			t.Errorf("R(%d): wrong class", i)
		}
		if r.Index() != i {
			t.Errorf("R(%d).Index() = %d", i, r.Index())
		}
		f := F(i)
		if !f.IsFP() || f.IsInt() {
			t.Errorf("F(%d): wrong class", i)
		}
		if f.Index() != i {
			t.Errorf("F(%d).Index() = %d", i, f.Index())
		}
	}
}

func TestRegZero(t *testing.T) {
	if !R(0).IsZero() {
		t.Error("R(0) must be the zero register")
	}
	if R(1).IsZero() {
		t.Error("R(1) must not be the zero register")
	}
	if F(0).IsZero() {
		t.Error("F(0) must not be the zero register")
	}
}

func TestRegNone(t *testing.T) {
	if RegNone.Valid() {
		t.Error("RegNone.Valid() = true")
	}
	if RegNone.IsInt() || RegNone.IsFP() {
		t.Error("RegNone must have no class")
	}
	if RegNone.Index() != -1 {
		t.Errorf("RegNone.Index() = %d, want -1", RegNone.Index())
	}
	if RegNone.String() != "-" {
		t.Errorf("RegNone.String() = %q", RegNone.String())
	}
}

func TestRegOutOfRangePanics(t *testing.T) {
	for _, f := range []func(){
		func() { R(-1) }, func() { R(32) },
		func() { F(-1) }, func() { F(32) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic for out-of-range register index")
				}
			}()
			f()
		}()
	}
}

func TestRegString(t *testing.T) {
	cases := []struct {
		r    Reg
		want string
	}{
		{R(0), "r0"}, {R(31), "r31"}, {F(0), "f0"}, {F(31), "f31"},
	}
	for _, c := range cases {
		if got := c.r.String(); got != c.want {
			t.Errorf("%d.String() = %q, want %q", uint8(c.r), got, c.want)
		}
	}
}

// Every Reg value is exactly one of: none, integer, FP, or invalid; and the
// classes partition the valid encodings.
func TestRegClassPartition(t *testing.T) {
	f := func(raw uint8) bool {
		r := Reg(raw)
		classes := 0
		if r.IsInt() {
			classes++
		}
		if r.IsFP() {
			classes++
		}
		if classes > 1 {
			return false
		}
		if r.Valid() != (classes == 1) {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLatencyTableMatchesPaper(t *testing.T) {
	cases := []struct {
		class        Class
		total, issue int
	}{
		{ClassIntALU, 1, 1},
		{ClassIntMul, 3, 1},
		{ClassIntDiv, 12, 12},
		{ClassFPAdd, 2, 1},
		{ClassFPMul, 4, 1},
		{ClassFPDiv, 12, 12},
		{ClassLoad, 1, 1},
		{ClassStore, 1, 1},
	}
	for _, c := range cases {
		lat := LatencyOf(c.class)
		if lat.Total != c.total || lat.Issue != c.issue {
			t.Errorf("LatencyOf(%s) = %d/%d, want %d/%d (Table 1)",
				c.class, lat.Total, lat.Issue, c.total, c.issue)
		}
	}
}

func TestLatencyOfOutOfRange(t *testing.T) {
	lat := LatencyOf(Class(200))
	if lat.Total != 1 || lat.Issue != 1 {
		t.Errorf("out-of-range class latency = %+v, want 1/1", lat)
	}
}

func TestClassStrings(t *testing.T) {
	for c := ClassNone; c < NumClasses; c++ {
		if s := c.String(); s == "" || s == "class(?)" {
			t.Errorf("Class(%d) has no name", c)
		}
	}
}
