package isa

// Class identifies the functional-unit class that executes an operation.
// The classes and their latencies follow Table 1 of the paper.
type Class uint8

const (
	// ClassNone is the class of Nop/Halt; such operations consume an issue
	// slot but no functional unit.
	ClassNone Class = iota
	// ClassIntALU executes integer add/logic/shift/compare and branches.
	ClassIntALU
	// ClassIntMul executes integer multiplies.
	ClassIntMul
	// ClassIntDiv executes integer divides and remainders (unpipelined).
	ClassIntDiv
	// ClassFPAdd executes FP add/subtract/compare/convert.
	ClassFPAdd
	// ClassFPMul executes FP multiplies.
	ClassFPMul
	// ClassFPDiv executes FP divides (unpipelined).
	ClassFPDiv
	// ClassLoad is the load/store unit servicing loads (address generation).
	ClassLoad
	// ClassStore is the load/store unit servicing stores (address generation).
	ClassStore

	// NumClasses is the number of distinct classes, for table sizing.
	NumClasses
)

// Latency describes a functional unit's timing: Total is the operation
// latency in cycles (result available Total cycles after issue), and Issue is
// the number of cycles before the unit can accept another operation
// (Issue == Total means unpipelined).
type Latency struct {
	Total int
	Issue int
}

// latencies mirrors Table 1 of the paper ("Functional Unit Latency
// (total/issue)"): integer ALU 1/1, integer MULT 3/1, integer DIV 12/12,
// FP adder 2/1, FP MULT 4/1, FP DIV 12/12, load/store 1/1.
var latencies = [NumClasses]Latency{
	ClassNone:   {Total: 1, Issue: 1},
	ClassIntALU: {Total: 1, Issue: 1},
	ClassIntMul: {Total: 3, Issue: 1},
	ClassIntDiv: {Total: 12, Issue: 12},
	ClassFPAdd:  {Total: 2, Issue: 1},
	ClassFPMul:  {Total: 4, Issue: 1},
	ClassFPDiv:  {Total: 12, Issue: 12},
	ClassLoad:   {Total: 1, Issue: 1},
	ClassStore:  {Total: 1, Issue: 1},
}

// LatencyOf returns the Table 1 latency for a functional-unit class.
func LatencyOf(c Class) Latency {
	if c >= NumClasses {
		return Latency{Total: 1, Issue: 1}
	}
	return latencies[c]
}

// String returns a short name for the class.
func (c Class) String() string {
	switch c {
	case ClassNone:
		return "none"
	case ClassIntALU:
		return "int-alu"
	case ClassIntMul:
		return "int-mul"
	case ClassIntDiv:
		return "int-div"
	case ClassFPAdd:
		return "fp-add"
	case ClassFPMul:
		return "fp-mul"
	case ClassFPDiv:
		return "fp-div"
	case ClassLoad:
		return "load"
	case ClassStore:
		return "store"
	default:
		return "class(?)"
	}
}
