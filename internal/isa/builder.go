package isa

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"
)

// Builder assembles a Program. Code is emitted sequentially; labels name code
// positions and may be referenced before they are defined. Data memory is
// carved out with Alloc and initialized with the Set* helpers.
//
// Builder methods panic on malformed input (bad register class, duplicate
// label); Build reports unresolved references as errors. Panics are
// appropriate here because builders run at program-construction time with
// static arguments, like a template.Must.
type Builder struct {
	name    string
	code    []Inst
	labels  map[string]int
	fixups  []fixup // branch instructions awaiting label resolution
	data    map[uint64][]byte
	brk     uint64 // data allocation cursor
	entry   int
	haveEnt bool
}

type fixup struct {
	pc    int
	label string
}

// DataBase is the lowest address handed out by Alloc. Addresses below it are
// never allocated, so stray near-nil pointers fault in the emulator.
const DataBase = 0x1_0000

// NewBuilder returns an empty builder for a program with the given name.
func NewBuilder(name string) *Builder {
	return &Builder{
		name:   name,
		labels: make(map[string]int),
		data:   make(map[uint64][]byte),
		brk:    DataBase,
	}
}

// PC returns the index the next emitted instruction will occupy.
func (b *Builder) PC() int { return len(b.code) }

// Label defines name at the current PC.
func (b *Builder) Label(name string) {
	if _, dup := b.labels[name]; dup {
		panic(fmt.Sprintf("isa: duplicate label %q in %s", name, b.name))
	}
	b.labels[name] = b.PC()
}

// Entry marks the current PC as the program entry point. If never called,
// entry is instruction 0.
func (b *Builder) Entry() {
	b.entry = b.PC()
	b.haveEnt = true
}

func (b *Builder) emit(in Inst) { b.code = append(b.code, in) }

func needInt(r Reg, op Op) Reg {
	if !r.IsInt() {
		panic(fmt.Sprintf("isa: %s requires an integer register, got %s", op, r))
	}
	return r
}

func needFP(r Reg, op Op) Reg {
	if !r.IsFP() {
		panic(fmt.Sprintf("isa: %s requires an fp register, got %s", op, r))
	}
	return r
}

// --- integer register-register ---

func (b *Builder) rrr(op Op, rd, rs1, rs2 Reg) {
	b.emit(Inst{Op: op, Rd: needInt(rd, op), Rs1: needInt(rs1, op), Rs2: needInt(rs2, op)})
}

// Add emits rd = rs1 + rs2.
func (b *Builder) Add(rd, rs1, rs2 Reg) { b.rrr(Add, rd, rs1, rs2) }

// Sub emits rd = rs1 - rs2.
func (b *Builder) Sub(rd, rs1, rs2 Reg) { b.rrr(Sub, rd, rs1, rs2) }

// And emits rd = rs1 & rs2.
func (b *Builder) And(rd, rs1, rs2 Reg) { b.rrr(And, rd, rs1, rs2) }

// Or emits rd = rs1 | rs2.
func (b *Builder) Or(rd, rs1, rs2 Reg) { b.rrr(Or, rd, rs1, rs2) }

// Xor emits rd = rs1 ^ rs2.
func (b *Builder) Xor(rd, rs1, rs2 Reg) { b.rrr(Xor, rd, rs1, rs2) }

// Sll emits rd = rs1 << (rs2 & 63).
func (b *Builder) Sll(rd, rs1, rs2 Reg) { b.rrr(Sll, rd, rs1, rs2) }

// Srl emits rd = rs1 >> (rs2 & 63), logical.
func (b *Builder) Srl(rd, rs1, rs2 Reg) { b.rrr(Srl, rd, rs1, rs2) }

// Sra emits rd = rs1 >> (rs2 & 63), arithmetic.
func (b *Builder) Sra(rd, rs1, rs2 Reg) { b.rrr(Sra, rd, rs1, rs2) }

// Slt emits rd = (rs1 < rs2) signed ? 1 : 0.
func (b *Builder) Slt(rd, rs1, rs2 Reg) { b.rrr(Slt, rd, rs1, rs2) }

// Sltu emits rd = (rs1 < rs2) unsigned ? 1 : 0.
func (b *Builder) Sltu(rd, rs1, rs2 Reg) { b.rrr(Sltu, rd, rs1, rs2) }

// Mul emits rd = rs1 * rs2.
func (b *Builder) Mul(rd, rs1, rs2 Reg) { b.rrr(Mul, rd, rs1, rs2) }

// Div emits rd = rs1 / rs2 (signed; all-ones on division by zero).
func (b *Builder) Div(rd, rs1, rs2 Reg) { b.rrr(Div, rd, rs1, rs2) }

// Rem emits rd = rs1 % rs2 (signed; rs1 on division by zero).
func (b *Builder) Rem(rd, rs1, rs2 Reg) { b.rrr(Rem, rd, rs1, rs2) }

// --- integer register-immediate ---

func (b *Builder) rri(op Op, rd, rs1 Reg, imm int64) {
	b.emit(Inst{Op: op, Rd: needInt(rd, op), Rs1: needInt(rs1, op), Imm: imm})
}

// Addi emits rd = rs1 + imm.
func (b *Builder) Addi(rd, rs1 Reg, imm int64) { b.rri(Addi, rd, rs1, imm) }

// Andi emits rd = rs1 & imm.
func (b *Builder) Andi(rd, rs1 Reg, imm int64) { b.rri(Andi, rd, rs1, imm) }

// Ori emits rd = rs1 | imm.
func (b *Builder) Ori(rd, rs1 Reg, imm int64) { b.rri(Ori, rd, rs1, imm) }

// Xori emits rd = rs1 ^ imm.
func (b *Builder) Xori(rd, rs1 Reg, imm int64) { b.rri(Xori, rd, rs1, imm) }

// Slli emits rd = rs1 << imm.
func (b *Builder) Slli(rd, rs1 Reg, imm int64) { b.rri(Slli, rd, rs1, imm) }

// Srli emits rd = rs1 >> imm, logical.
func (b *Builder) Srli(rd, rs1 Reg, imm int64) { b.rri(Srli, rd, rs1, imm) }

// Srai emits rd = rs1 >> imm, arithmetic.
func (b *Builder) Srai(rd, rs1 Reg, imm int64) { b.rri(Srai, rd, rs1, imm) }

// Slti emits rd = (rs1 < imm) signed ? 1 : 0.
func (b *Builder) Slti(rd, rs1 Reg, imm int64) { b.rri(Slti, rd, rs1, imm) }

// Li emits rd = imm.
func (b *Builder) Li(rd Reg, imm int64) {
	b.emit(Inst{Op: Li, Rd: needInt(rd, Li), Imm: imm})
}

// Mov emits rd = rs (integer), as an ALU op.
func (b *Builder) Mov(rd, rs Reg) { b.Add(rd, rs, Zero) }

// --- floating point ---

func (b *Builder) fff(op Op, rd, rs1, rs2 Reg) {
	b.emit(Inst{Op: op, Rd: needFP(rd, op), Rs1: needFP(rs1, op), Rs2: needFP(rs2, op)})
}

// FAdd emits rd = rs1 + rs2 (FP).
func (b *Builder) FAdd(rd, rs1, rs2 Reg) { b.fff(FAdd, rd, rs1, rs2) }

// FSub emits rd = rs1 - rs2 (FP).
func (b *Builder) FSub(rd, rs1, rs2 Reg) { b.fff(FSub, rd, rs1, rs2) }

// FMul emits rd = rs1 * rs2 (FP).
func (b *Builder) FMul(rd, rs1, rs2 Reg) { b.fff(FMul, rd, rs1, rs2) }

// FDiv emits rd = rs1 / rs2 (FP).
func (b *Builder) FDiv(rd, rs1, rs2 Reg) { b.fff(FDiv, rd, rs1, rs2) }

// FNeg emits rd = -rs1 (FP).
func (b *Builder) FNeg(rd, rs1 Reg) {
	b.emit(Inst{Op: FNeg, Rd: needFP(rd, FNeg), Rs1: needFP(rs1, FNeg)})
}

// FAbs emits rd = |rs1| (FP).
func (b *Builder) FAbs(rd, rs1 Reg) {
	b.emit(Inst{Op: FAbs, Rd: needFP(rd, FAbs), Rs1: needFP(rs1, FAbs)})
}

// CvtIF emits rd(F) = float64(rs1), converting integer to FP.
func (b *Builder) CvtIF(rd, rs1 Reg) {
	b.emit(Inst{Op: CvtIF, Rd: needFP(rd, CvtIF), Rs1: needInt(rs1, CvtIF)})
}

// CvtFI emits rd(int) = int64(rs1 F), truncating.
func (b *Builder) CvtFI(rd, rs1 Reg) {
	b.emit(Inst{Op: CvtFI, Rd: needInt(rd, CvtFI), Rs1: needFP(rs1, CvtFI)})
}

// FCmpLT emits rd(int) = (rs1 < rs2) ? 1 : 0 over FP operands.
func (b *Builder) FCmpLT(rd, rs1, rs2 Reg) {
	b.emit(Inst{Op: FCmpLT, Rd: needInt(rd, FCmpLT), Rs1: needFP(rs1, FCmpLT), Rs2: needFP(rs2, FCmpLT)})
}

// --- memory ---

func (b *Builder) load(op Op, rd, base Reg, off int64) {
	b.emit(Inst{Op: op, Rd: rd, Rs1: needInt(base, op), Imm: off})
}

func (b *Builder) store(op Op, src, base Reg, off int64) {
	b.emit(Inst{Op: op, Rs2: src, Rs1: needInt(base, op), Imm: off})
}

// Lb emits rd = sign-extended byte at off(base).
func (b *Builder) Lb(rd, base Reg, off int64) { b.load(Lb, needInt(rd, Lb), base, off) }

// Lbu emits rd = zero-extended byte at off(base).
func (b *Builder) Lbu(rd, base Reg, off int64) { b.load(Lbu, needInt(rd, Lbu), base, off) }

// Lw emits rd = sign-extended 32-bit word at off(base).
func (b *Builder) Lw(rd, base Reg, off int64) { b.load(Lw, needInt(rd, Lw), base, off) }

// Lwu emits rd = zero-extended 32-bit word at off(base).
func (b *Builder) Lwu(rd, base Reg, off int64) { b.load(Lwu, needInt(rd, Lwu), base, off) }

// Ld emits rd = 64-bit word at off(base).
func (b *Builder) Ld(rd, base Reg, off int64) { b.load(Ld, needInt(rd, Ld), base, off) }

// Fld emits rd(F) = 64-bit FP value at off(base).
func (b *Builder) Fld(rd, base Reg, off int64) { b.load(Fld, needFP(rd, Fld), base, off) }

// Sb emits byte store of src to off(base).
func (b *Builder) Sb(src, base Reg, off int64) { b.store(Sb, needInt(src, Sb), base, off) }

// Sw emits 32-bit store of src to off(base).
func (b *Builder) Sw(src, base Reg, off int64) { b.store(Sw, needInt(src, Sw), base, off) }

// Sd emits 64-bit store of src to off(base).
func (b *Builder) Sd(src, base Reg, off int64) { b.store(Sd, needInt(src, Sd), base, off) }

// Fsd emits 64-bit FP store of src(F) to off(base).
func (b *Builder) Fsd(src, base Reg, off int64) { b.store(Fsd, needFP(src, Fsd), base, off) }

// --- control ---

func (b *Builder) branch(op Op, rs1, rs2 Reg, label string) {
	b.fixups = append(b.fixups, fixup{pc: b.PC(), label: label})
	b.emit(Inst{Op: op, Rs1: rs1, Rs2: rs2})
}

// Beq emits a branch to label when rs1 == rs2.
func (b *Builder) Beq(rs1, rs2 Reg, label string) {
	b.branch(Beq, needInt(rs1, Beq), needInt(rs2, Beq), label)
}

// Bne emits a branch to label when rs1 != rs2.
func (b *Builder) Bne(rs1, rs2 Reg, label string) {
	b.branch(Bne, needInt(rs1, Bne), needInt(rs2, Bne), label)
}

// Blt emits a branch to label when rs1 < rs2 (signed).
func (b *Builder) Blt(rs1, rs2 Reg, label string) {
	b.branch(Blt, needInt(rs1, Blt), needInt(rs2, Blt), label)
}

// Bge emits a branch to label when rs1 >= rs2 (signed).
func (b *Builder) Bge(rs1, rs2 Reg, label string) {
	b.branch(Bge, needInt(rs1, Bge), needInt(rs2, Bge), label)
}

// J emits an unconditional jump to label.
func (b *Builder) J(label string) { b.branch(J, RegNone, RegNone, label) }

// Jal emits a jump to label, writing the return index into rd.
func (b *Builder) Jal(rd Reg, label string) {
	b.fixups = append(b.fixups, fixup{pc: b.PC(), label: label})
	b.emit(Inst{Op: Jal, Rd: needInt(rd, Jal)})
}

// Jr emits an indirect jump to the code index held in rs1.
func (b *Builder) Jr(rs1 Reg) {
	b.emit(Inst{Op: Jr, Rs1: needInt(rs1, Jr)})
}

// Inst emits a raw instruction; operand meaning follows the opcode format.
// Label-targeting opcodes (conditional branches, J, Jal) must go through
// BranchTo, J or Jal so their targets resolve. The assembler uses this
// generic entry point; Go-authored kernels should prefer the typed methods.
// Register classes are validated against the opcode, as the typed methods do.
func (b *Builder) Inst(op Op, rd, rs1, rs2 Reg, imm int64) {
	if op.IsBranch() && op != Jr {
		panic(fmt.Sprintf("isa: %s needs a label; use BranchTo/J/Jal", op))
	}
	check := func(r Reg, fp bool) {
		if r == RegNone {
			return
		}
		if fp {
			needFP(r, op)
		} else {
			needInt(r, op)
		}
	}
	switch {
	case op == Fld:
		check(rd, true)
		check(rs1, false)
	case op == Fsd:
		check(rs2, true)
		check(rs1, false)
	case op.IsMem():
		check(rd, false)
		check(rs1, false)
		check(rs2, false)
	case op == CvtIF:
		check(rd, true)
		check(rs1, false)
	case op == CvtFI:
		check(rd, false)
		check(rs1, true)
	case op == FCmpLT:
		check(rd, false)
		check(rs1, true)
		check(rs2, true)
	case op.ClassOf() == ClassFPAdd || op.ClassOf() == ClassFPMul || op.ClassOf() == ClassFPDiv:
		check(rd, true)
		check(rs1, true)
		check(rs2, true)
	default:
		check(rd, false)
		check(rs1, false)
		check(rs2, false)
	}
	b.emit(Inst{Op: op, Rd: rd, Rs1: rs1, Rs2: rs2, Imm: imm})
}

// BranchTo emits a conditional branch opcode targeting a label.
func (b *Builder) BranchTo(op Op, rs1, rs2 Reg, label string) {
	switch op {
	case Beq, Bne, Blt, Bge:
		b.branch(op, needInt(rs1, op), needInt(rs2, op), label)
	default:
		panic(fmt.Sprintf("isa: BranchTo does not handle %s", op))
	}
}

// Nop emits a no-op.
func (b *Builder) Nop() { b.emit(Inst{Op: Nop}) }

// Halt emits a program stop.
func (b *Builder) Halt() { b.emit(Inst{Op: Halt}) }

// --- data ---

// Alloc reserves size bytes of zeroed data memory with the given alignment
// (which must be a power of two) and returns the base address.
func (b *Builder) Alloc(size int, align uint64) uint64 {
	if size < 0 {
		panic("isa: negative allocation size")
	}
	if align == 0 || align&(align-1) != 0 {
		panic(fmt.Sprintf("isa: alignment %d is not a power of two", align))
	}
	base := (b.brk + align - 1) &^ (align - 1)
	b.brk = base + uint64(size)
	b.data[base] = make([]byte, size)
	return base
}

// AllocAt reserves size bytes at an exact address. It is used by kernels
// that need precise bank alignment between arrays. The region must not
// collide with previous allocations; Build verifies overlap.
func (b *Builder) AllocAt(base uint64, size int) uint64 {
	if size < 0 {
		panic("isa: negative allocation size")
	}
	b.data[base] = make([]byte, size)
	if end := base + uint64(size); end > b.brk {
		b.brk = end
	}
	return base
}

func (b *Builder) locate(addr uint64, n int) ([]byte, int) {
	for base, buf := range b.data {
		if addr >= base && addr+uint64(n) <= base+uint64(len(buf)) {
			return buf, int(addr - base)
		}
	}
	panic(fmt.Sprintf("isa: data initialization at %#x+%d outside any allocation", addr, n))
}

// SetByte initializes one byte of allocated data.
func (b *Builder) SetByte(addr uint64, v byte) {
	buf, off := b.locate(addr, 1)
	buf[off] = v
}

// SetWord32 initializes a 32-bit little-endian value in allocated data.
func (b *Builder) SetWord32(addr uint64, v uint32) {
	buf, off := b.locate(addr, 4)
	binary.LittleEndian.PutUint32(buf[off:], v)
}

// SetWord64 initializes a 64-bit little-endian value in allocated data.
func (b *Builder) SetWord64(addr uint64, v uint64) {
	buf, off := b.locate(addr, 8)
	binary.LittleEndian.PutUint64(buf[off:], v)
}

// SetFloat64 initializes a float64 in allocated data.
func (b *Builder) SetFloat64(addr uint64, v float64) {
	b.SetWord64(addr, math.Float64bits(v))
}

// SetBytes initializes a run of bytes in allocated data.
func (b *Builder) SetBytes(addr uint64, v []byte) {
	buf, off := b.locate(addr, len(v))
	copy(buf[off:], v)
}

// Build resolves labels and returns the validated program.
func (b *Builder) Build() (*Program, error) {
	code := make([]Inst, len(b.code))
	copy(code, b.code)
	for _, f := range b.fixups {
		target, ok := b.labels[f.label]
		if !ok {
			return nil, fmt.Errorf("isa: program %q: undefined label %q", b.name, f.label)
		}
		code[f.pc].Imm = int64(target)
	}
	bases := make([]uint64, 0, len(b.data))
	for base := range b.data {
		bases = append(bases, base)
	}
	sort.Slice(bases, func(i, j int) bool { return bases[i] < bases[j] })
	segs := make([]Segment, 0, len(bases))
	for _, base := range bases {
		segs = append(segs, Segment{Base: base, Bytes: b.data[base]})
	}
	p := &Program{Name: b.name, Code: code, Data: segs, Entry: b.entry}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

// MustBuild is Build, panicking on error. Kernels with static structure use
// it the way templates use template.Must.
func (b *Builder) MustBuild() *Program {
	p, err := b.Build()
	if err != nil {
		panic(err)
	}
	return p
}
