package isa

import "fmt"

// Inst is one static instruction. Operand meaning depends on the opcode
// format (see the Op documentation). Imm holds immediates, load/store
// offsets, and resolved branch targets (absolute code indices).
type Inst struct {
	Op  Op
	Rd  Reg
	Rs1 Reg
	Rs2 Reg
	Imm int64
}

// Sources returns the registers the instruction reads. Absent operands and
// the hardwired zero register are returned as RegNone so they never create
// dependencies.
func (in Inst) Sources() (a, b Reg) {
	dep := func(r Reg) Reg {
		if !r.Valid() || r.IsZero() {
			return RegNone
		}
		return r
	}
	switch in.Op {
	case Nop, Halt, J, Jal, Li:
		return RegNone, RegNone
	case Addi, Andi, Ori, Xori, Slli, Srli, Srai, Slti,
		Lb, Lbu, Lw, Lwu, Ld, Fld, Jr,
		FNeg, FAbs, CvtIF, CvtFI:
		return dep(in.Rs1), RegNone
	default:
		return dep(in.Rs1), dep(in.Rs2)
	}
}

// Dest returns the register the instruction writes, or RegNone. Writes to
// the hardwired zero register are reported as RegNone.
func (in Inst) Dest() Reg {
	if in.Op.IsStore() || in.Op.IsBranch() && in.Op != Jal {
		return RegNone
	}
	switch in.Op {
	case Nop, Halt, J, Jr:
		return RegNone
	}
	if !in.Rd.Valid() || in.Rd.IsZero() {
		return RegNone
	}
	return in.Rd
}

// String disassembles the instruction.
func (in Inst) String() string {
	switch {
	case in.Op == Nop || in.Op == Halt:
		return in.Op.String()
	case in.Op == Li:
		return fmt.Sprintf("%s %s, %d", in.Op, in.Rd, in.Imm)
	case in.Op.IsLoad():
		return fmt.Sprintf("%s %s, %d(%s)", in.Op, in.Rd, in.Imm, in.Rs1)
	case in.Op.IsStore():
		return fmt.Sprintf("%s %s, %d(%s)", in.Op, in.Rs2, in.Imm, in.Rs1)
	case in.Op == J:
		return fmt.Sprintf("%s %d", in.Op, in.Imm)
	case in.Op == Jal:
		return fmt.Sprintf("%s %s, %d", in.Op, in.Rd, in.Imm)
	case in.Op == Jr:
		return fmt.Sprintf("%s %s", in.Op, in.Rs1)
	case in.Op == Beq || in.Op == Bne || in.Op == Blt || in.Op == Bge:
		return fmt.Sprintf("%s %s, %s, %d", in.Op, in.Rs1, in.Rs2, in.Imm)
	case in.Rs2 == RegNone:
		return fmt.Sprintf("%s %s, %s, %d", in.Op, in.Rd, in.Rs1, in.Imm)
	default:
		return fmt.Sprintf("%s %s, %s, %s", in.Op, in.Rd, in.Rs1, in.Rs2)
	}
}
