// Package isa defines the small MIPS-like instruction set executed by the
// simulator: registers, opcodes, functional-unit classes and latencies,
// instruction and program containers, and an assembler-style program builder.
//
// The ISA is a stand-in for the SimpleScalar PISA instruction set used by the
// paper. It is deliberately minimal: 64-bit integer registers, 64-bit
// floating-point registers, loads and stores of 1, 4 and 8 bytes, and the
// arithmetic and control operations needed to express the workload kernels.
package isa

import "fmt"

// Reg names a register operand. The zero value means "no register"; integer
// registers r0..r31 occupy 1..32 (r0 is hardwired to zero), and floating
// point registers f0..f31 occupy 33..64. Encoding "none" as zero lets
// instruction operands default to absent.
type Reg uint8

// NumRegs is the size of a register file indexed directly by Reg.
// Index 0 is unused ("no register").
const NumRegs = 65

const (
	// RegNone marks an absent operand.
	RegNone    Reg = 0
	regIntBase     = 1
	regFPBase      = 33
)

// R returns the integer register ri. R(0) is the hardwired zero register.
func R(i int) Reg {
	if i < 0 || i > 31 {
		panic(fmt.Sprintf("isa: integer register index %d out of range", i))
	}
	return Reg(regIntBase + i)
}

// F returns the floating point register fi.
func F(i int) Reg {
	if i < 0 || i > 31 {
		panic(fmt.Sprintf("isa: fp register index %d out of range", i))
	}
	return Reg(regFPBase + i)
}

// Zero is the hardwired integer zero register r0: reads return 0 and writes
// are discarded. It never participates in dependencies.
var Zero = R(0)

// IsInt reports whether r is an integer register.
func (r Reg) IsInt() bool { return r >= regIntBase && r < regFPBase }

// IsFP reports whether r is a floating point register.
func (r Reg) IsFP() bool { return r >= regFPBase && r < regFPBase+32 }

// IsZero reports whether r is the hardwired zero register.
func (r Reg) IsZero() bool { return r == Zero }

// Valid reports whether r names an actual register (not RegNone).
func (r Reg) Valid() bool { return r != RegNone && r < NumRegs }

// Index returns the register's index within its file (0..31).
func (r Reg) Index() int {
	switch {
	case r.IsInt():
		return int(r - regIntBase)
	case r.IsFP():
		return int(r - regFPBase)
	default:
		return -1
	}
}

// String returns the assembly name of the register, e.g. "r4" or "f12".
func (r Reg) String() string {
	switch {
	case r == RegNone:
		return "-"
	case r.IsInt():
		return fmt.Sprintf("r%d", r.Index())
	case r.IsFP():
		return fmt.Sprintf("f%d", r.Index())
	default:
		return fmt.Sprintf("reg(%d)", uint8(r))
	}
}
