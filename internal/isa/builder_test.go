package isa

import (
	"bytes"
	"strings"
	"testing"
)

func TestBuilderLabelResolution(t *testing.T) {
	b := NewBuilder("loop")
	b.Li(R(1), 0)
	b.Label("top")
	b.Addi(R(1), R(1), 1)
	b.Blt(R(1), R(2), "top") // forward-defined label already resolved
	b.J("end")               // forward reference
	b.Label("end")
	b.Halt()
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if p.Code[2].Imm != 1 {
		t.Errorf("blt target = %d, want 1", p.Code[2].Imm)
	}
	if p.Code[3].Imm != 4 {
		t.Errorf("j target = %d, want 4", p.Code[3].Imm)
	}
}

func TestBuilderUndefinedLabel(t *testing.T) {
	b := NewBuilder("bad")
	b.J("nowhere")
	b.Halt()
	if _, err := b.Build(); err == nil || !strings.Contains(err.Error(), "nowhere") {
		t.Errorf("Build() error = %v, want undefined label", err)
	}
}

func TestBuilderDuplicateLabelPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for duplicate label")
		}
	}()
	b := NewBuilder("dup")
	b.Label("x")
	b.Label("x")
}

func TestBuilderRegisterClassChecks(t *testing.T) {
	cases := []func(b *Builder){
		func(b *Builder) { b.Add(F(1), R(1), R(2)) },
		func(b *Builder) { b.FAdd(R(1), F(1), F(2)) },
		func(b *Builder) { b.Lw(F(1), R(2), 0) },
		func(b *Builder) { b.Fld(R(1), R(2), 0) },
		func(b *Builder) { b.Sw(F(3), R(2), 0) },
		func(b *Builder) { b.Beq(F(1), R(2), "x") },
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic for wrong register class", i)
				}
			}()
			f(NewBuilder("chk"))
		}()
	}
}

func TestBuilderAlloc(t *testing.T) {
	b := NewBuilder("alloc")
	a1 := b.Alloc(100, 64)
	a2 := b.Alloc(10, 8)
	if a1%64 != 0 {
		t.Errorf("first alloc %#x not 64-aligned", a1)
	}
	if a2 < a1+100 {
		t.Errorf("second alloc %#x overlaps first ending %#x", a2, a1+100)
	}
	if a2%8 != 0 {
		t.Errorf("second alloc %#x not 8-aligned", a2)
	}
	if a1 < DataBase {
		t.Errorf("alloc %#x below DataBase", a1)
	}
}

func TestBuilderAllocBadAlignPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for non-power-of-two alignment")
		}
	}()
	NewBuilder("align").Alloc(8, 3)
}

func TestBuilderDataInit(t *testing.T) {
	b := NewBuilder("data")
	a := b.Alloc(32, 8)
	b.SetWord64(a, 0x1122334455667788)
	b.SetWord32(a+8, 0xdeadbeef)
	b.SetByte(a+12, 0x7f)
	b.SetFloat64(a+16, 3.5)
	b.SetBytes(a+24, []byte{1, 2, 3})
	b.Halt()
	p := b.MustBuild()
	if len(p.Data) != 1 {
		t.Fatalf("segments = %d, want 1", len(p.Data))
	}
	seg := p.Data[0]
	if seg.Base != a {
		t.Errorf("segment base %#x, want %#x", seg.Base, a)
	}
	if seg.Bytes[0] != 0x88 || seg.Bytes[7] != 0x11 {
		t.Error("SetWord64 wrong byte order")
	}
	if seg.Bytes[8] != 0xef {
		t.Error("SetWord32 wrong")
	}
	if seg.Bytes[12] != 0x7f {
		t.Error("SetByte wrong")
	}
	if seg.Bytes[24] != 1 || seg.Bytes[26] != 3 {
		t.Error("SetBytes wrong")
	}
}

func TestBuilderDataOutsideAllocationPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for initialization outside allocations")
		}
	}()
	b := NewBuilder("oob")
	a := b.Alloc(8, 8)
	b.SetWord64(a+4, 1) // straddles the end of the allocation
}

func TestBuilderEntry(t *testing.T) {
	b := NewBuilder("entry")
	b.Nop()
	b.Entry()
	b.Halt()
	p := b.MustBuild()
	if p.Entry != 1 {
		t.Errorf("entry = %d, want 1", p.Entry)
	}
}

func TestProgramValidateBranchTarget(t *testing.T) {
	p := &Program{Name: "bad", Code: []Inst{{Op: J, Imm: 99}}}
	if err := p.Validate(); err == nil {
		t.Error("expected branch-target validation error")
	}
}

func TestProgramValidateEmpty(t *testing.T) {
	p := &Program{Name: "empty"}
	if err := p.Validate(); err == nil {
		t.Error("expected error for empty program")
	}
}

func TestProgramValidateOverlappingSegments(t *testing.T) {
	p := &Program{
		Name: "overlap",
		Code: []Inst{{Op: Halt}},
		Data: []Segment{
			{Base: 0x1000, Bytes: make([]byte, 16)},
			{Base: 0x1008, Bytes: make([]byte, 16)},
		},
	}
	if err := p.Validate(); err == nil {
		t.Error("expected overlap validation error")
	}
}

func TestProgramSaveLoadRoundTrip(t *testing.T) {
	b := NewBuilder("rt")
	a := b.Alloc(16, 8)
	b.SetWord64(a, 42)
	b.Li(R(1), 7)
	b.Label("l")
	b.Addi(R(1), R(1), -1)
	b.Bne(R(1), R(0), "l")
	b.Halt()
	p := b.MustBuild()

	var buf bytes.Buffer
	if err := p.Save(&buf); err != nil {
		t.Fatal(err)
	}
	q, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if q.Name != p.Name || len(q.Code) != len(p.Code) || q.Entry != p.Entry {
		t.Errorf("round trip mismatch: %+v vs %+v", q, p)
	}
	for i := range p.Code {
		if p.Code[i] != q.Code[i] {
			t.Errorf("code[%d]: %v != %v", i, p.Code[i], q.Code[i])
		}
	}
	if !bytes.Equal(p.Data[0].Bytes, q.Data[0].Bytes) {
		t.Error("data mismatch after round trip")
	}
}

func TestProgramClone(t *testing.T) {
	b := NewBuilder("clone")
	b.Li(R(1), 1)
	b.Halt()
	p := b.MustBuild()
	q := p.Clone()
	q.Code[0].Imm = 99
	if p.Code[0].Imm == 99 {
		t.Error("Clone must deep-copy code")
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(strings.NewReader("not a gob")); err == nil {
		t.Error("expected decode error")
	}
}

func TestBuilderAllocAt(t *testing.T) {
	b := NewBuilder("at")
	base := b.AllocAt(0x40000, 128)
	if base != 0x40000 {
		t.Errorf("AllocAt returned %#x", base)
	}
	b.SetWord64(0x40000+120, 5)
	b.Halt()
	p := b.MustBuild()
	found := false
	for _, s := range p.Data {
		if s.Base == 0x40000 && len(s.Bytes) == 128 {
			found = true
		}
	}
	if !found {
		t.Error("AllocAt segment missing")
	}
}

func TestProgramDisassemble(t *testing.T) {
	b := NewBuilder("dis")
	a := b.Alloc(32, 8)
	b.Li(R(1), int64(a))
	b.Label("top")
	b.Addi(R(1), R(1), 1)
	b.Bne(R(1), R(0), "top")
	b.Halt()
	p := b.MustBuild()
	var sb bytes.Buffer
	if err := p.Disassemble(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{`program "dis"`, ".data", "addi r1, r1, 1", "L:", "halt"} {
		if !strings.Contains(out, want) {
			t.Errorf("disassembly missing %q:\n%s", want, out)
		}
	}
}
