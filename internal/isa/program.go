package isa

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"io"
)

// Segment is a contiguous chunk of initialized data memory.
type Segment struct {
	Base  uint64
	Bytes []byte
}

// Program is a complete executable: code, initial data image, and entry
// point. Programs are immutable once built.
type Program struct {
	Name  string
	Code  []Inst
	Data  []Segment
	Entry int
}

// Validate checks structural invariants: a non-empty code section, an entry
// point inside the code, branch targets inside the code, register operands in
// range, and non-overlapping data segments.
func (p *Program) Validate() error {
	if len(p.Code) == 0 {
		return fmt.Errorf("isa: program %q has no code", p.Name)
	}
	if p.Entry < 0 || p.Entry >= len(p.Code) {
		return fmt.Errorf("isa: program %q entry %d outside code [0,%d)", p.Name, p.Entry, len(p.Code))
	}
	for pc, in := range p.Code {
		if !in.Op.Valid() {
			return fmt.Errorf("isa: program %q pc %d: invalid opcode %d", p.Name, pc, uint8(in.Op))
		}
		if in.Op.IsBranch() && in.Op != Jr {
			if in.Imm < 0 || in.Imm >= int64(len(p.Code)) {
				return fmt.Errorf("isa: program %q pc %d: %s target %d outside code [0,%d)",
					p.Name, pc, in.Op, in.Imm, len(p.Code))
			}
		}
		for _, r := range []Reg{in.Rd, in.Rs1, in.Rs2} {
			if r != RegNone && !r.Valid() {
				return fmt.Errorf("isa: program %q pc %d: invalid register %d", p.Name, pc, uint8(r))
			}
		}
	}
	for i, s := range p.Data {
		for j := i + 1; j < len(p.Data); j++ {
			t := p.Data[j]
			if s.Base < t.Base+uint64(len(t.Bytes)) && t.Base < s.Base+uint64(len(s.Bytes)) {
				return fmt.Errorf("isa: program %q: data segments %d and %d overlap", p.Name, i, j)
			}
		}
	}
	return nil
}

// DataBytes returns the total number of initialized data bytes.
func (p *Program) DataBytes() int {
	n := 0
	for _, s := range p.Data {
		n += len(s.Bytes)
	}
	return n
}

// Save serializes the program to w.
func (p *Program) Save(w io.Writer) error {
	if err := gob.NewEncoder(w).Encode(p); err != nil {
		return fmt.Errorf("isa: saving program %q: %w", p.Name, err)
	}
	return nil
}

// Load deserializes a program previously written by Save and validates it.
func Load(r io.Reader) (*Program, error) {
	var p Program
	if err := gob.NewDecoder(r).Decode(&p); err != nil {
		return nil, fmt.Errorf("isa: loading program: %w", err)
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &p, nil
}

// Disassemble writes a listing of the program: data segment summary and the
// code with instruction indices and branch-target markers.
func (p *Program) Disassemble(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "program %q: %d instructions, entry %d\n", p.Name, len(p.Code), p.Entry); err != nil {
		return err
	}
	for _, s := range p.Data {
		if _, err := fmt.Fprintf(w, "  .data %#x  %d bytes\n", s.Base, len(s.Bytes)); err != nil {
			return err
		}
	}
	// Collect branch targets so the listing can mark them.
	targets := map[int]bool{}
	for _, in := range p.Code {
		if in.Op.IsBranch() && in.Op != Jr {
			targets[int(in.Imm)] = true
		}
	}
	for pc, in := range p.Code {
		mark := "  "
		if targets[pc] {
			mark = "L:"
		}
		if _, err := fmt.Fprintf(w, "%s %5d  %s\n", mark, pc, in); err != nil {
			return err
		}
	}
	return nil
}

// Clone returns a deep copy of the program.
func (p *Program) Clone() *Program {
	var buf bytes.Buffer
	if err := p.Save(&buf); err != nil {
		panic(err) // in-memory encode of a valid program cannot fail
	}
	q, err := Load(&buf)
	if err != nil {
		panic(err)
	}
	return q
}
