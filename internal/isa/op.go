package isa

import "fmt"

// Op is an operation code.
type Op uint8

// Operation codes. Formats:
//
//	R-type:  op rd, rs1, rs2
//	I-type:  op rd, rs1, imm
//	Load:    op rd, imm(rs1)
//	Store:   op rs2, imm(rs1)     (rs2 holds the value to store)
//	Branch:  op rs1, rs2, target  (target is an absolute code index)
//	Jump:    op target            (Jal also writes rd; Jr jumps to rs1)
const (
	Nop Op = iota

	// Integer ALU, register-register.
	Add
	Sub
	And
	Or
	Xor
	Sll
	Srl
	Sra
	Slt  // rd = (rs1 < rs2) signed ? 1 : 0
	Sltu // rd = (rs1 < rs2) unsigned ? 1 : 0

	// Integer ALU, register-immediate.
	Addi
	Andi
	Ori
	Xori
	Slli
	Srli
	Srai
	Slti
	Li // rd = imm (pseudo, one ALU op)

	// Integer multiply/divide.
	Mul
	Div // signed; division by zero yields all-ones quotient (no trap)
	Rem

	// Floating point (operands in F registers unless noted).
	FAdd
	FSub
	FMul
	FDiv
	FNeg
	FAbs
	CvtIF  // rd(F) = float64(rs1 int)
	CvtFI  // rd(int) = int64(rs1 F), truncating
	FCmpLT // rd(int) = (rs1 F < rs2 F) ? 1 : 0

	// Memory. L* sign-extend unless U-suffixed; sizes are 1, 4, 8 bytes.
	Lb
	Lbu
	Lw
	Lwu
	Ld
	Fld // load 8 bytes into an F register
	Sb
	Sw
	Sd
	Fsd // store 8 bytes from an F register

	// Control transfer. Targets are absolute code indices.
	Beq
	Bne
	Blt // signed
	Bge // signed
	J
	Jal // rd = index of next instruction; jump to target
	Jr  // jump to code index in rs1

	// Halt stops the program.
	Halt

	// NumOps is the number of opcodes, for table sizing.
	NumOps
)

// opInfo is static metadata about an opcode.
type opInfo struct {
	name  string
	class Class
}

var opTable = [NumOps]opInfo{
	Nop:    {"nop", ClassNone},
	Add:    {"add", ClassIntALU},
	Sub:    {"sub", ClassIntALU},
	And:    {"and", ClassIntALU},
	Or:     {"or", ClassIntALU},
	Xor:    {"xor", ClassIntALU},
	Sll:    {"sll", ClassIntALU},
	Srl:    {"srl", ClassIntALU},
	Sra:    {"sra", ClassIntALU},
	Slt:    {"slt", ClassIntALU},
	Sltu:   {"sltu", ClassIntALU},
	Addi:   {"addi", ClassIntALU},
	Andi:   {"andi", ClassIntALU},
	Ori:    {"ori", ClassIntALU},
	Xori:   {"xori", ClassIntALU},
	Slli:   {"slli", ClassIntALU},
	Srli:   {"srli", ClassIntALU},
	Srai:   {"srai", ClassIntALU},
	Slti:   {"slti", ClassIntALU},
	Li:     {"li", ClassIntALU},
	Mul:    {"mul", ClassIntMul},
	Div:    {"div", ClassIntDiv},
	Rem:    {"rem", ClassIntDiv},
	FAdd:   {"fadd", ClassFPAdd},
	FSub:   {"fsub", ClassFPAdd},
	FMul:   {"fmul", ClassFPMul},
	FDiv:   {"fdiv", ClassFPDiv},
	FNeg:   {"fneg", ClassFPAdd},
	FAbs:   {"fabs", ClassFPAdd},
	CvtIF:  {"cvt.i.f", ClassFPAdd},
	CvtFI:  {"cvt.f.i", ClassFPAdd},
	FCmpLT: {"fcmplt", ClassFPAdd},
	Lb:     {"lb", ClassLoad},
	Lbu:    {"lbu", ClassLoad},
	Lw:     {"lw", ClassLoad},
	Lwu:    {"lwu", ClassLoad},
	Ld:     {"ld", ClassLoad},
	Fld:    {"fld", ClassLoad},
	Sb:     {"sb", ClassStore},
	Sw:     {"sw", ClassStore},
	Sd:     {"sd", ClassStore},
	Fsd:    {"fsd", ClassStore},
	Beq:    {"beq", ClassIntALU},
	Bne:    {"bne", ClassIntALU},
	Blt:    {"blt", ClassIntALU},
	Bge:    {"bge", ClassIntALU},
	J:      {"j", ClassIntALU},
	Jal:    {"jal", ClassIntALU},
	Jr:     {"jr", ClassIntALU},
	Halt:   {"halt", ClassNone},
}

// Valid reports whether op is a defined opcode.
func (op Op) Valid() bool { return op < NumOps }

// String returns the assembly mnemonic.
func (op Op) String() string {
	if !op.Valid() {
		return fmt.Sprintf("op(%d)", uint8(op))
	}
	return opTable[op].name
}

// ClassOf returns the functional-unit class executing op.
func (op Op) ClassOf() Class {
	if !op.Valid() {
		return ClassNone
	}
	return opTable[op].class
}

// IsLoad reports whether op reads memory.
func (op Op) IsLoad() bool { return op.ClassOf() == ClassLoad }

// IsStore reports whether op writes memory.
func (op Op) IsStore() bool { return op.ClassOf() == ClassStore }

// IsMem reports whether op accesses memory.
func (op Op) IsMem() bool { return op.IsLoad() || op.IsStore() }

// IsBranch reports whether op may transfer control.
func (op Op) IsBranch() bool {
	switch op {
	case Beq, Bne, Blt, Bge, J, Jal, Jr:
		return true
	}
	return false
}

// MemSize returns the access width in bytes for memory operations, or 0.
func (op Op) MemSize() int {
	switch op {
	case Lb, Lbu, Sb:
		return 1
	case Lw, Lwu, Sw:
		return 4
	case Ld, Fld, Sd, Fsd:
		return 8
	}
	return 0
}
