package isa

import "testing"

// TestBuilderFullSurface drives every typed emitter once and checks the
// emitted opcode sequence, covering the whole builder surface.
func TestBuilderFullSurface(t *testing.T) {
	b := NewBuilder("surface")
	a := b.Alloc(64, 8)
	r1, r2, r3 := R(1), R(2), R(3)
	f1, f2, f3 := F(1), F(2), F(3)

	b.Li(r1, int64(a))
	b.Mov(r2, r1)
	b.Add(r3, r1, r2)
	b.Sub(r3, r1, r2)
	b.And(r3, r1, r2)
	b.Or(r3, r1, r2)
	b.Xor(r3, r1, r2)
	b.Sll(r3, r1, r2)
	b.Srl(r3, r1, r2)
	b.Sra(r3, r1, r2)
	b.Slt(r3, r1, r2)
	b.Sltu(r3, r1, r2)
	b.Mul(r3, r1, r2)
	b.Div(r3, r1, r2)
	b.Rem(r3, r1, r2)
	b.Addi(r3, r1, 1)
	b.Andi(r3, r1, 1)
	b.Ori(r3, r1, 1)
	b.Xori(r3, r1, 1)
	b.Slli(r3, r1, 1)
	b.Srli(r3, r1, 1)
	b.Srai(r3, r1, 1)
	b.Slti(r3, r1, 1)
	b.FAdd(f3, f1, f2)
	b.FSub(f3, f1, f2)
	b.FMul(f3, f1, f2)
	b.FDiv(f3, f1, f2)
	b.FNeg(f3, f1)
	b.FAbs(f3, f1)
	b.CvtIF(f3, r1)
	b.CvtFI(r3, f1)
	b.FCmpLT(r3, f1, f2)
	b.Lb(r3, r1, 0)
	b.Lbu(r3, r1, 0)
	b.Lw(r3, r1, 0)
	b.Lwu(r3, r1, 0)
	b.Ld(r3, r1, 0)
	b.Fld(f3, r1, 0)
	b.Sb(r3, r1, 0)
	b.Sw(r3, r1, 0)
	b.Sd(r3, r1, 0)
	b.Fsd(f3, r1, 0)
	b.Label("x")
	b.Beq(r1, r2, "x")
	b.Bne(r1, r2, "x")
	b.Blt(r1, r2, "x")
	b.Bge(r1, r2, "x")
	b.J("x")
	b.Jal(R(31), "x")
	b.Jr(R(31))
	b.Nop()
	b.Inst(Add, r3, r1, r2, 0)
	b.BranchTo(Beq, r1, r2, "x")
	b.Halt()

	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	// Spot-check a few emitted opcodes and the overall count.
	wantOps := []Op{Li, Add, Add, Sub, And, Or, Xor, Sll, Srl, Sra, Slt, Sltu,
		Mul, Div, Rem, Addi, Andi, Ori, Xori, Slli, Srli, Srai, Slti,
		FAdd, FSub, FMul, FDiv, FNeg, FAbs, CvtIF, CvtFI, FCmpLT,
		Lb, Lbu, Lw, Lwu, Ld, Fld, Sb, Sw, Sd, Fsd,
		Beq, Bne, Blt, Bge, J, Jal, Jr, Nop, Add, Beq, Halt}
	if len(p.Code) != len(wantOps) {
		t.Fatalf("emitted %d instructions, want %d", len(p.Code), len(wantOps))
	}
	for i, op := range wantOps {
		if p.Code[i].Op != op {
			t.Errorf("code[%d] = %s, want %s", i, p.Code[i].Op, op)
		}
	}
	if b.PC() != len(p.Code) {
		t.Errorf("PC() = %d, want %d", b.PC(), len(p.Code))
	}
}

func TestInstGenericPanics(t *testing.T) {
	cases := []func(*Builder){
		func(b *Builder) { b.Inst(Beq, RegNone, R(1), R(2), 0) },   // branch via Inst
		func(b *Builder) { b.Inst(Fld, R(1), R(2), RegNone, 0) },   // int rd on fld
		func(b *Builder) { b.Inst(Fsd, RegNone, R(1), R(2), 0) },   // int value on fsd
		func(b *Builder) { b.Inst(FAdd, R(1), F(1), F(2), 0) },     // int rd on fadd
		func(b *Builder) { b.Inst(CvtIF, R(1), R(2), RegNone, 0) }, // int rd on cvt.i.f
		func(b *Builder) { b.Inst(CvtFI, F(1), F(2), RegNone, 0) }, // fp rd on cvt.f.i
		func(b *Builder) { b.Inst(FCmpLT, F(1), F(2), F(3), 0) },   // fp rd on fcmplt
		func(b *Builder) { b.Inst(Lw, F(1), R(2), RegNone, 0) },    // fp rd on lw
		func(b *Builder) { b.BranchTo(J, R(1), R(2), "x") },        // J via BranchTo
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			f(NewBuilder("p"))
		}()
	}
}

func TestMustBuildPanicsOnError(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic from MustBuild on undefined label")
		}
	}()
	b := NewBuilder("bad")
	b.J("nowhere")
	b.MustBuild()
}

func TestOpStringInvalid(t *testing.T) {
	if Op(240).String() == "" {
		t.Error("invalid op should still stringify")
	}
	if Reg(200).String() == "" {
		t.Error("invalid reg should still stringify")
	}
}
