package ports

import "testing"

func TestSelectorKindStrings(t *testing.T) {
	cases := map[SelectorKind]string{
		BitSelect:        "bit-select",
		XorFold:          "xor-fold",
		WordInterleave:   "word-interleave",
		SelectorKind(99): "selector(?)",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", k, got, want)
		}
	}
}

func TestWordInterleaveSpreadsWithinLine(t *testing.T) {
	sel, err := NewBankSelectorKind(4, 32, WordInterleave)
	if err != nil {
		t.Fatal(err)
	}
	// The four words of one 32B line land in four different banks.
	base := uint64(0x1000)
	seen := map[int]bool{}
	for w := uint64(0); w < 4; w++ {
		seen[sel.BankOf(base+8*w)] = true
	}
	if len(seen) != 4 {
		t.Errorf("words of one line spread over %d banks, want 4", len(seen))
	}
	// Same line, so LineOf must still agree.
	if sel.LineOf(base) != sel.LineOf(base+24) {
		t.Error("LineOf must be line-granular regardless of selector")
	}
}

func TestBitSelectSameLineSameBank(t *testing.T) {
	sel, _ := NewBankSelectorKind(4, 32, BitSelect)
	if sel.BankOf(0x1000) != sel.BankOf(0x101f) {
		t.Error("bit-select must keep a line in one bank")
	}
}

func TestXorFoldDecorrelatesPowerOfTwoStrides(t *testing.T) {
	bit, _ := NewBankSelectorKind(4, 32, BitSelect)
	xor, _ := NewBankSelectorKind(4, 32, XorFold)
	// A 128-byte stride hits the same bank forever under bit selection
	// (4 banks x 32B lines) but spreads under xor folding.
	bitBanks := map[int]bool{}
	xorBanks := map[int]bool{}
	for i := uint64(0); i < 64; i++ {
		addr := 0x10000 + i*128
		bitBanks[bit.BankOf(addr)] = true
		xorBanks[xor.BankOf(addr)] = true
	}
	if len(bitBanks) != 1 {
		t.Errorf("bit-select spread %d banks for a 128B stride, want 1", len(bitBanks))
	}
	if len(xorBanks) < 3 {
		t.Errorf("xor-fold spread only %d banks for a 128B stride", len(xorBanks))
	}
	// And xor keeps whole lines together (no tag replication needed).
	if xor.BankOf(0x2000) != xor.BankOf(0x201f) {
		t.Error("xor-fold must keep a line in one bank")
	}
}

func TestBankedSelectorNames(t *testing.T) {
	a, err := NewBankedSelector(4, 32, XorFold)
	if err != nil {
		t.Fatal(err)
	}
	if a.Name() != "bank-4-xor-fold" {
		t.Errorf("Name() = %q", a.Name())
	}
	b, _ := NewBanked(4, 32)
	if b.Name() != "bank-4" {
		t.Errorf("Name() = %q", b.Name())
	}
	if a.Selector().Kind() != XorFold {
		t.Error("selector kind not preserved")
	}
}

func TestWordInterleaveRemovesSameLineConflicts(t *testing.T) {
	// Four references to one line: word-interleaved banking serves all in
	// one cycle; bit-selected banking serves one.
	mk := func(kind SelectorKind) []int {
		a, err := NewBankedSelector(4, 32, kind)
		if err != nil {
			t.Fatal(err)
		}
		ready := reqs(
			Request{Addr: 0x1000}, Request{Addr: 0x1008},
			Request{Addr: 0x1010}, Request{Addr: 0x1018},
		)
		return a.Grant(0, ready, nil)
	}
	if got := mk(WordInterleave); len(got) != 4 {
		t.Errorf("word-interleave granted %d of a same-line quartet, want 4", len(got))
	}
	if got := mk(BitSelect); len(got) != 1 {
		t.Errorf("bit-select granted %d of a same-line quartet, want 1", len(got))
	}
}
