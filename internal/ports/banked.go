package ports

import "fmt"

// Banked models a traditional multi-bank (interleaved) cache (§3.2, Fig 2b):
// the cache is split into M single-ported banks, line-interleaved by the
// bit-selection function, and a crossbar distributes requests. Each bank
// independently services one request per cycle; two ready requests whose
// lines live in the same bank conflict and the younger one waits, even when
// both touch the same line — the limitation the LBIC removes.
type Banked struct {
	sel   BankSelector
	busy  []bool
	lines []uint64 // line granted per bank this cycle, for conflict stats
	// Conflicts counts requests that stalled on a busy bank.
	Conflicts uint64
	// SameLineConflicts counts the stalled requests whose line matched the
	// line already granted in that bank — the same-line conflicts §4 shows
	// dominate (and that combining recovers).
	SameLineConflicts uint64
}

// NewBanked returns a multi-bank arbiter with the given bank count and line
// size, using the paper's bit-selection bank function.
func NewBanked(banks, lineSize int) (*Banked, error) {
	return NewBankedSelector(banks, lineSize, BitSelect)
}

// NewBankedSelector returns a multi-bank arbiter with an explicit bank
// selection function (for the §3.2 selection-function ablation).
func NewBankedSelector(banks, lineSize int, kind SelectorKind) (*Banked, error) {
	sel, err := NewBankSelectorKind(banks, lineSize, kind)
	if err != nil {
		return nil, err
	}
	return &Banked{sel: sel, busy: make([]bool, banks), lines: make([]uint64, banks)}, nil
}

// Name implements Arbiter.
func (a *Banked) Name() string {
	if a.sel.Kind() != BitSelect {
		return fmt.Sprintf("bank-%d-%s", a.sel.Banks(), a.sel.Kind())
	}
	return fmt.Sprintf("bank-%d", a.sel.Banks())
}

// PeakWidth implements Arbiter.
func (a *Banked) PeakWidth() int { return a.sel.Banks() }

// Selector returns the bank selection function.
func (a *Banked) Selector() BankSelector { return a.sel }

// Grant implements Arbiter: scan oldest-first, granting each request whose
// bank is still free this cycle.
func (a *Banked) Grant(_ uint64, ready []Request, dst []int) []int {
	for i := range a.busy {
		a.busy[i] = false
	}
	for i := range ready {
		b := a.sel.BankOf(ready[i].Addr)
		if a.busy[b] {
			a.Conflicts++
			if a.lines[b] == a.sel.LineOf(ready[i].Addr) {
				a.SameLineConflicts++
			}
			continue
		}
		a.busy[b] = true
		a.lines[b] = a.sel.LineOf(ready[i].Addr)
		dst = append(dst, i)
	}
	return dst
}
