package ports

import (
	"fmt"

	"lbic/internal/trace"
)

// Banked models a traditional multi-bank (interleaved) cache (§3.2, Fig 2b):
// the cache is split into M single-ported banks, line-interleaved by the
// bit-selection function, and a crossbar distributes requests. Each bank
// independently services one request per cycle; two ready requests whose
// lines live in the same bank conflict and the younger one waits, even when
// both touch the same line — the limitation the LBIC removes.
type Banked struct {
	sel   BankSelector
	busy  []bool
	lines []uint64 // line granted per bank this cycle, for conflict stats
	// Conflicts counts requests that stalled on a busy bank.
	Conflicts uint64
	// SameLineConflicts counts the stalled requests whose line matched the
	// line already granted in that bank — the same-line conflicts §4 shows
	// dominate (and that combining recovers).
	SameLineConflicts uint64

	bankAccess   []uint64
	bankConflict []uint64
	bankSameLine []uint64
	events       trace.EventSink
}

// NewBanked returns a multi-bank arbiter with the given bank count and line
// size, using the paper's bit-selection bank function.
func NewBanked(banks, lineSize int) (*Banked, error) {
	return NewBankedSelector(banks, lineSize, BitSelect)
}

// NewBankedSelector returns a multi-bank arbiter with an explicit bank
// selection function (for the §3.2 selection-function ablation).
func NewBankedSelector(banks, lineSize int, kind SelectorKind) (*Banked, error) {
	sel, err := NewBankSelectorKind(banks, lineSize, kind)
	if err != nil {
		return nil, err
	}
	return &Banked{
		sel:          sel,
		busy:         make([]bool, banks),
		lines:        make([]uint64, banks),
		bankAccess:   make([]uint64, banks),
		bankConflict: make([]uint64, banks),
		bankSameLine: make([]uint64, banks),
	}, nil
}

// Name implements Arbiter.
func (a *Banked) Name() string {
	if a.sel.Kind() != BitSelect {
		return fmt.Sprintf("bank-%d-%s", a.sel.Banks(), a.sel.Kind())
	}
	return fmt.Sprintf("bank-%d", a.sel.Banks())
}

// PeakWidth implements Arbiter.
func (a *Banked) PeakWidth() int { return a.sel.Banks() }

// Quiescent implements Quiescer: the arbiter carries no cross-cycle state.
func (a *Banked) Quiescent() bool { return true }

// Selector returns the bank selection function.
func (a *Banked) Selector() BankSelector { return a.sel }

// SetEventSink implements EventRecorder.
func (a *Banked) SetEventSink(s trace.EventSink) { a.events = s }

// BankAccesses implements BankObserver: grants per bank.
func (a *Banked) BankAccesses() []uint64 { return append([]uint64(nil), a.bankAccess...) }

// BankConflicts implements BankObserver: stalled requests per bank.
func (a *Banked) BankConflicts() []uint64 { return append([]uint64(nil), a.bankConflict...) }

// BankSameLineConflicts returns, per bank, the stalled requests whose line
// matched the already-granted line — the §4 same-line share.
func (a *Banked) BankSameLineConflicts() []uint64 { return append([]uint64(nil), a.bankSameLine...) }

// Grant implements Arbiter: scan oldest-first, granting each request whose
// bank is still free this cycle.
func (a *Banked) Grant(now uint64, ready []Request, dst []int) []int {
	for i := range a.busy {
		a.busy[i] = false
	}
	for i := range ready {
		b := a.sel.BankOf(ready[i].Addr)
		if a.busy[b] {
			a.Conflicts++
			a.bankConflict[b]++
			cause := "bank-busy"
			if a.lines[b] == a.sel.LineOf(ready[i].Addr) {
				a.SameLineConflicts++
				a.bankSameLine[b]++
				cause = "same-line"
			}
			if a.events != nil {
				a.events.Emit(trace.Event{Cycle: now, Kind: trace.EvConflict,
					Seq: int64(ready[i].Seq), Bank: b,
					Line: a.sel.LineOf(ready[i].Addr), Cause: cause})
			}
			continue
		}
		a.busy[b] = true
		a.lines[b] = a.sel.LineOf(ready[i].Addr)
		a.bankAccess[b]++
		dst = append(dst, i)
	}
	return dst
}
