package ports

import "fmt"

// Ideal models true multi-porting (§3.1): every port has its own data path
// to every entry, so up to P requests proceed per cycle regardless of the
// relationship among their addresses. It is the performance upper bound the
// other organizations are measured against.
type Ideal struct {
	ports int
}

// NewIdeal returns an ideal multi-ported arbiter with the given port count.
func NewIdeal(ports int) (*Ideal, error) {
	if ports < 1 {
		return nil, fmt.Errorf("ports: ideal port count %d is not positive", ports)
	}
	return &Ideal{ports: ports}, nil
}

// Name implements Arbiter.
func (a *Ideal) Name() string { return fmt.Sprintf("ideal-%d", a.ports) }

// Quiescent implements Quiescer: the arbiter carries no cross-cycle state.
func (a *Ideal) Quiescent() bool { return true }

// PeakWidth implements Arbiter.
func (a *Ideal) PeakWidth() int { return a.ports }

// Grant implements Arbiter: the oldest P requests win, addresses ignored.
func (a *Ideal) Grant(_ uint64, ready []Request, dst []int) []int {
	n := len(ready)
	if n > a.ports {
		n = a.ports
	}
	for i := 0; i < n; i++ {
		dst = append(dst, i)
	}
	return dst
}
