package ports

import (
	"fmt"
	"strings"

	"lbic/internal/trace"
)

// CodedConfig parameterizes the coded-banks organization.
type CodedConfig struct {
	// Banks is the number of single-ported data banks (a power of two).
	Banks int
	// ParityBanks is the number of XOR parity banks; the data banks are
	// split into ParityBanks contiguous groups of Banks/ParityBanks members
	// and parity bank g stores the XOR code across group g.
	ParityBanks int
	// LineSize is the interleaving granularity in bytes (a power of two).
	LineSize int
	// UpdateQueueDepth bounds the lines of pending code updates per parity
	// bank (0 selects 8). Stores stall when their group's queue is full.
	UpdateQueueDepth int
	// LinePorts, when >= 2, composes LBIC-style line-buffer combining over
	// the coded banks: up to LinePorts same-line accesses share one bank
	// port per cycle. 0 disables combining (the plain coded design).
	LinePorts int
	// Speculative selects the single-read reconstruction variant: a second
	// read of a busy bank issues one speculative parity access instead of
	// reading the whole group, and replays when the code is stale.
	Speculative bool
}

// CodedStats aggregates a coded-banks run's counters.
type CodedStats struct {
	// Conflicts counts requests stalled on a busy bank with no
	// reconstruction path available.
	Conflicts uint64 `json:"conflicts"`
	// Reconstructions counts second reads of a busy bank served through the
	// parity code instead of stalling.
	Reconstructions uint64 `json:"reconstructions"`
	// CodeUpdates counts parity-update lines retired on idle parity-bank
	// cycles — the write cost of keeping the code current.
	CodeUpdates uint64 `json:"code_updates"`
	// UpdateStalls counts stores stalled because their group's update queue
	// could not accept another line this cycle.
	UpdateStalls uint64 `json:"update_stalls"`
	// StaleCode counts reconstructions blocked by pending code updates
	// (non-speculative mode).
	StaleCode uint64 `json:"stale_code,omitempty"`
	// Replays counts speculative reconstructions squashed by stale code and
	// retried the next cycle (speculative mode).
	Replays uint64 `json:"replays,omitempty"`
	// Combined counts same-line accesses served through the composed line
	// buffers (LinePorts >= 2).
	Combined uint64 `json:"combined,omitempty"`
}

// Coded emulates multi-ported reads on single-ported banks with XOR coding,
// after "Achieving Multi-Port Memory Performance on Single-Port Memory with
// Coding Techniques": P parity banks each store the XOR of a group of data
// banks, so when two reads target the same busy bank in one cycle the second
// is reconstructed by reading the other group members plus the parity bank —
// consuming their idle ports — instead of stalling. The speculative variant
// issues a single parity read and replays on conflict (stale code), per the
// read-port-reduction follow-up. Writes pay a code-update cost: every store
// enqueues its line on the group's update queue (coalescing by line, the
// same slack machinery as BankedSQ's store queues) and the queue retires one
// line per idle parity-bank cycle; while updates are pending the group's
// code is stale and cannot serve reconstructions.
type Coded struct {
	cfg       CodedConfig
	sel       BankSelector
	groupSize int

	busy     []bool   // data bank port taken this cycle
	open     []uint64 // line opened by the bank's leading grant
	count    []int    // same-line grants in the bank this cycle (0 = consumed)
	pbusy    []bool   // parity bank port taken (reconstruction) this cycle
	accepted []bool   // an update entered this group's queue this cycle
	updateQ  []LineQueue

	stats        CodedStats
	bankAccess   []uint64 // data banks, then parity banks
	bankConflict []uint64
	events       trace.EventSink
}

// NewCoded returns a coded-banks arbiter.
func NewCoded(cfg CodedConfig) (*Coded, error) {
	if cfg.UpdateQueueDepth == 0 {
		cfg.UpdateQueueDepth = 8
	}
	if cfg.UpdateQueueDepth < 1 {
		return nil, fmt.Errorf("ports: code-update queue depth %d is not positive", cfg.UpdateQueueDepth)
	}
	if cfg.ParityBanks < 1 {
		return nil, fmt.Errorf("ports: coded parity bank count %d < 1", cfg.ParityBanks)
	}
	if cfg.Banks < cfg.ParityBanks || cfg.Banks%cfg.ParityBanks != 0 {
		return nil, fmt.Errorf("ports: %d parity banks do not evenly divide %d data banks", cfg.ParityBanks, cfg.Banks)
	}
	if cfg.LinePorts == 1 || cfg.LinePorts < 0 {
		return nil, fmt.Errorf("ports: coded line ports %d (want 0 for no combining, or >= 2)", cfg.LinePorts)
	}
	sel, err := NewBankSelector(cfg.Banks, cfg.LineSize)
	if err != nil {
		return nil, err
	}
	return &Coded{
		cfg:          cfg,
		sel:          sel,
		groupSize:    cfg.Banks / cfg.ParityBanks,
		busy:         make([]bool, cfg.Banks),
		open:         make([]uint64, cfg.Banks),
		count:        make([]int, cfg.Banks),
		pbusy:        make([]bool, cfg.ParityBanks),
		accepted:     make([]bool, cfg.ParityBanks),
		updateQ:      make([]LineQueue, cfg.ParityBanks),
		bankAccess:   make([]uint64, cfg.Banks+cfg.ParityBanks),
		bankConflict: make([]uint64, cfg.Banks+cfg.ParityBanks),
	}, nil
}

// Config returns the construction parameters (depth default resolved).
func (a *Coded) Config() CodedConfig { return a.cfg }

// Selector returns the bank selection function.
func (a *Coded) Selector() BankSelector { return a.sel }

// GroupOf returns the parity group of data bank b.
func (a *Coded) GroupOf(b int) int { return b / a.groupSize }

// Stats returns the run's aggregate coded-banks counters.
func (a *Coded) Stats() CodedStats { return a.stats }

// Name implements Arbiter, matching the registry's name grammar.
func (a *Coded) Name() string {
	name := fmt.Sprintf("coded-%dx%d", a.cfg.Banks, a.cfg.ParityBanks)
	if a.cfg.LinePorts >= 2 {
		name += fmt.Sprintf("-lb%d", a.cfg.LinePorts)
	}
	if a.cfg.Speculative {
		name += "-spec"
	}
	return name
}

// PeakWidth implements Arbiter: every data bank can serve its line-buffer
// width (one access without combining) and every parity bank can serve one
// reconstructed read.
func (a *Coded) PeakWidth() int {
	lp := a.cfg.LinePorts
	if lp < 1 {
		lp = 1
	}
	return a.cfg.Banks*lp + a.cfg.ParityBanks
}

// Quiescent implements Quiescer: with every update queue empty, an idle
// cycle neither drains nor changes state.
func (a *Coded) Quiescent() bool {
	for g := range a.updateQ {
		if a.updateQ[g].Len() > 0 {
			return false
		}
	}
	return true
}

// SetEventSink implements EventRecorder.
func (a *Coded) SetEventSink(s trace.EventSink) { a.events = s }

// BankAccesses implements BankObserver: grants per bank, data banks first,
// then one slot per parity bank (reconstructed reads).
func (a *Coded) BankAccesses() []uint64 { return append([]uint64(nil), a.bankAccess...) }

// BankConflicts implements BankObserver: stalled requests per bank.
func (a *Coded) BankConflicts() []uint64 { return append([]uint64(nil), a.bankConflict...) }

// UpdateQueueLen returns the pending code-update lines of parity group g.
func (a *Coded) UpdateQueueLen(g int) int { return a.updateQ[g].Len() }

// UpdateQueueLines appends group g's queued lines, front first, to dst and
// returns the extended slice.
func (a *Coded) UpdateQueueLines(g int, dst []uint64) []uint64 {
	return a.updateQ[g].Lines(dst)
}

// Depth returns the per-group code-update queue capacity.
func (a *Coded) Depth() int { return a.cfg.UpdateQueueDepth }

// DumpState implements StateDumper: per-group update-queue occupancy for
// hang diagnostics.
func (a *Coded) DumpState() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s:", a.Name())
	for g := range a.updateQ {
		fmt.Fprintf(&b, " group%d[upd %d/%d]", g, a.updateQ[g].Len(), a.cfg.UpdateQueueDepth)
	}
	return b.String()
}

// conflict records a stalled request against data bank b.
func (a *Coded) conflict(now uint64, r Request, b int, cause string) {
	a.stats.Conflicts++
	a.bankConflict[b]++
	if a.events != nil {
		a.events.Emit(trace.Event{Cycle: now, Kind: trace.EvConflict,
			Seq: int64(r.Seq), Bank: b, Line: a.sel.LineOf(r.Addr), Cause: cause})
	}
}

// acceptUpdate tries to publish a code update for line in group g: coalesced
// into an already-pending line for free, otherwise one fresh line per group
// per cycle while the queue has room.
func (a *Coded) acceptUpdate(g int, line uint64) bool {
	q := &a.updateQ[g]
	if q.Contains(line) {
		return true
	}
	if a.accepted[g] || q.Len() >= a.cfg.UpdateQueueDepth {
		return false
	}
	q.Push(line)
	a.accepted[g] = true
	return true
}

// Grant implements Arbiter, oldest first. The first request per data bank
// takes the bank's port. A later same-line access combines through the
// composed line buffer when LinePorts >= 2. Any other second read of a busy
// bank attempts code reconstruction: the group's parity port must be free
// and its code current (no pending updates); the non-speculative design
// additionally requires — and consumes — every other group member's idle
// port, while the speculative design reads only the parity bank and counts
// a replay whenever stale code squashes the attempt. Stores must also
// publish a code update; a full update queue stalls them. Idle parity banks
// retire one queued update line per cycle.
func (a *Coded) Grant(now uint64, ready []Request, dst []int) []int {
	for b := range a.busy {
		a.busy[b] = false
		a.count[b] = 0
	}
	for g := range a.pbusy {
		a.pbusy[g] = false
		a.accepted[g] = false
	}
	for i := range ready {
		r := ready[i]
		b := a.sel.BankOf(r.Addr)
		g := b / a.groupSize
		line := a.sel.LineOf(r.Addr)
		if !a.busy[b] {
			if r.Store && !a.acceptUpdate(g, line) {
				a.stats.UpdateStalls++
				a.conflict(now, r, b, "code-update")
				continue
			}
			a.busy[b] = true
			a.open[b] = line
			a.count[b] = 1
			a.bankAccess[b]++
			dst = append(dst, i)
			continue
		}
		if r.Store {
			a.conflict(now, r, b, "bank-busy")
			continue
		}
		if a.cfg.LinePorts >= 2 && a.count[b] >= 1 && line == a.open[b] && a.count[b] < a.cfg.LinePorts {
			a.count[b]++
			a.stats.Combined++
			a.bankAccess[b]++
			dst = append(dst, i)
			continue
		}
		// Second read of a busy bank: reconstruct through group g's code.
		if a.pbusy[g] {
			a.conflict(now, r, b, "parity-busy")
			continue
		}
		if a.updateQ[g].Len() > 0 {
			if a.cfg.Speculative {
				a.stats.Replays++
			} else {
				a.stats.StaleCode++
			}
			a.conflict(now, r, b, "stale-code")
			continue
		}
		if !a.cfg.Speculative {
			lo := g * a.groupSize
			free := true
			for o := lo; o < lo+a.groupSize; o++ {
				if o != b && a.busy[o] {
					free = false
					break
				}
			}
			if !free {
				a.conflict(now, r, b, "group-busy")
				continue
			}
			for o := lo; o < lo+a.groupSize; o++ {
				if o != b {
					a.busy[o] = true
				}
			}
		}
		a.pbusy[g] = true
		a.stats.Reconstructions++
		a.bankAccess[a.cfg.Banks+g]++
		dst = append(dst, i)
	}
	// Idle parity banks (no reconstruction and no fresh update accepted this
	// cycle) retire one queued code-update line.
	for g := range a.updateQ {
		if !a.pbusy[g] && !a.accepted[g] && a.updateQ[g].Len() > 0 {
			a.updateQ[g].PopFront()
			a.stats.CodeUpdates++
		}
	}
	return dst
}
