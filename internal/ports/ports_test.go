package ports

import (
	"testing"
	"testing/quick"
)

func reqs(specs ...Request) []Request {
	for i := range specs {
		specs[i].Seq = uint64(i)
	}
	return specs
}

func grant(t *testing.T, a Arbiter, ready []Request) []int {
	t.Helper()
	return a.Grant(0, ready, nil)
}

func TestBankSelector(t *testing.T) {
	sel, err := NewBankSelector(4, 32)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		addr uint64
		bank int
	}{
		{0x00, 0}, {0x1f, 0}, {0x20, 1}, {0x40, 2}, {0x60, 3}, {0x80, 0},
		{0x10000, 0}, {0x10020, 1},
	}
	for _, c := range cases {
		if got := sel.BankOf(c.addr); got != c.bank {
			t.Errorf("BankOf(%#x) = %d, want %d", c.addr, got, c.bank)
		}
	}
	if sel.LineOf(0x3f) != 1 || sel.LineOf(0x40) != 2 {
		t.Error("LineOf wrong")
	}
	if sel.Banks() != 4 {
		t.Error("Banks wrong")
	}
}

func TestBankSelectorValidation(t *testing.T) {
	if _, err := NewBankSelector(3, 32); err == nil {
		t.Error("expected error for non-power-of-two banks")
	}
	if _, err := NewBankSelector(4, 33); err == nil {
		t.Error("expected error for non-power-of-two line size")
	}
	if _, err := NewBankSelector(0, 32); err == nil {
		t.Error("expected error for zero banks")
	}
}

func TestIdealGrantsUpToP(t *testing.T) {
	a, err := NewIdeal(4)
	if err != nil {
		t.Fatal(err)
	}
	ready := reqs(
		Request{Addr: 0x100}, Request{Addr: 0x100}, Request{Addr: 0x100, Store: true},
		Request{Addr: 0x100}, Request{Addr: 0x200},
	)
	got := grant(t, a, ready)
	if len(got) != 4 {
		t.Fatalf("grants = %v, want 4 oldest", got)
	}
	for i, g := range got {
		if g != i {
			t.Errorf("grant %d = %d, want %d (oldest-first)", i, g, i)
		}
	}
	if a.Name() != "ideal-4" || a.PeakWidth() != 4 {
		t.Error("metadata wrong")
	}
}

func TestIdealFewRequests(t *testing.T) {
	a, _ := NewIdeal(8)
	got := grant(t, a, reqs(Request{Addr: 1 << 20}))
	if len(got) != 1 || got[0] != 0 {
		t.Errorf("grants = %v", got)
	}
	if g := grant(t, a, nil); len(g) != 0 {
		t.Errorf("empty ready should grant nothing, got %v", g)
	}
}

func TestReplicatedStoreExclusive(t *testing.T) {
	a, err := NewReplicated(4)
	if err != nil {
		t.Fatal(err)
	}
	// Oldest is a store: it is granted alone.
	ready := reqs(
		Request{Addr: 0x100, Store: true},
		Request{Addr: 0x200}, Request{Addr: 0x300},
	)
	got := grant(t, a, ready)
	if len(got) != 1 || got[0] != 0 {
		t.Fatalf("store cycle grants = %v, want [0]", got)
	}
	if a.StoreCycles != 1 {
		t.Error("store cycle not counted")
	}
}

func TestReplicatedLoadBurst(t *testing.T) {
	a, _ := NewReplicated(2)
	ready := reqs(
		Request{Addr: 0x100}, Request{Addr: 0x200}, Request{Addr: 0x300},
	)
	got := grant(t, a, ready)
	if len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Errorf("load cycle grants = %v, want [0 1]", got)
	}
}

func TestReplicatedLoadsStopAtStore(t *testing.T) {
	a, _ := NewReplicated(4)
	ready := reqs(
		Request{Addr: 0x100},
		Request{Addr: 0x200, Store: true},
		Request{Addr: 0x300},
	)
	got := grant(t, a, ready)
	if len(got) != 1 || got[0] != 0 {
		t.Errorf("grants = %v, want loads up to the store only", got)
	}
}

func TestBankedConflicts(t *testing.T) {
	a, err := NewBanked(4, 32)
	if err != nil {
		t.Fatal(err)
	}
	ready := reqs(
		Request{Addr: 0x000},              // bank 0
		Request{Addr: 0x020},              // bank 1
		Request{Addr: 0x008},              // bank 0: conflict, same line
		Request{Addr: 0x080},              // bank 0: conflict, diff line
		Request{Addr: 0x040},              // bank 2
		Request{Addr: 0x060, Store: true}, // bank 3 (stores are normal accesses)
	)
	got := grant(t, a, ready)
	want := []int{0, 1, 4, 5}
	if len(got) != len(want) {
		t.Fatalf("grants = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("grants = %v, want %v", got, want)
		}
	}
	if a.Conflicts != 2 {
		t.Errorf("conflicts = %d, want 2", a.Conflicts)
	}
	if a.SameLineConflicts != 1 {
		t.Errorf("same-line conflicts = %d, want 1", a.SameLineConflicts)
	}
}

func TestBankedYoungerRequestBypassesBusyBank(t *testing.T) {
	a, _ := NewBanked(2, 32)
	ready := reqs(
		Request{Addr: 0x000}, // bank 0
		Request{Addr: 0x040}, // bank 0: stalls
		Request{Addr: 0x020}, // bank 1: proceeds past the stalled one
	)
	got := grant(t, a, ready)
	if len(got) != 2 || got[0] != 0 || got[1] != 2 {
		t.Errorf("grants = %v, want [0 2] (memory reordering across banks)", got)
	}
}

func TestBankedOneGrantPerBankQuick(t *testing.T) {
	a, _ := NewBanked(4, 32)
	sel := a.Selector()
	f := func(addrs []uint32, stores []bool) bool {
		ready := make([]Request, 0, len(addrs))
		for i, raw := range addrs {
			r := Request{Seq: uint64(i), Addr: uint64(raw)}
			if i < len(stores) {
				r.Store = stores[i]
			}
			ready = append(ready, r)
		}
		got := a.Grant(0, ready, nil)
		used := map[int]bool{}
		prev := -1
		for _, g := range got {
			if g <= prev { // strictly increasing
				return false
			}
			prev = g
			b := sel.BankOf(ready[g].Addr)
			if used[b] {
				return false
			}
			used[b] = true
		}
		return len(got) <= 4
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// The oldest ready request is always granted by every arbiter (age priority).
func TestOldestAlwaysGrantedQuick(t *testing.T) {
	arbs := []Arbiter{}
	if a, err := NewIdeal(2); err == nil {
		arbs = append(arbs, a)
	}
	if a, err := NewReplicated(2); err == nil {
		arbs = append(arbs, a)
	}
	if a, err := NewBanked(4, 32); err == nil {
		arbs = append(arbs, a)
	}
	f := func(addrs []uint32, stores []bool) bool {
		if len(addrs) == 0 {
			return true
		}
		ready := make([]Request, 0, len(addrs))
		for i, raw := range addrs {
			r := Request{Seq: uint64(i), Addr: uint64(raw)}
			if i < len(stores) {
				r.Store = stores[i]
			}
			ready = append(ready, r)
		}
		for _, a := range arbs {
			got := a.Grant(0, ready, nil)
			if len(got) == 0 || got[0] != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestArbiterConstructorsReject(t *testing.T) {
	if _, err := NewIdeal(0); err == nil {
		t.Error("NewIdeal(0) should fail")
	}
	if _, err := NewReplicated(-1); err == nil {
		t.Error("NewReplicated(-1) should fail")
	}
	if _, err := NewBanked(5, 32); err == nil {
		t.Error("NewBanked(5,32) should fail")
	}
}
