package ports

import "testing"

func TestBankedSQLoadsBypassStores(t *testing.T) {
	a, err := NewBankedSQ(2, 32, 4)
	if err != nil {
		t.Fatal(err)
	}
	// A store and a load to the same bank in one cycle: both granted (the
	// store is queued, the load takes the array port).
	got := a.Grant(0, reqs(
		Request{Addr: 0x100, Store: true},
		Request{Addr: 0x180}, // same bank 0, different line
	), nil)
	if len(got) != 2 {
		t.Fatalf("grants = %v, want both (store queued, load via port)", got)
	}
	if a.StoreQueueLen(0) != 1 {
		t.Errorf("queue = %d, want 1", a.StoreQueueLen(0))
	}
	// Plain banked grants only one of the two.
	plain, err := NewBanked(2, 32)
	if err != nil {
		t.Fatal(err)
	}
	got = plain.Grant(0, reqs(
		Request{Addr: 0x100, Store: true},
		Request{Addr: 0x180},
	), nil)
	if len(got) != 1 {
		t.Fatalf("plain banked grants = %v, want 1", got)
	}
}

func TestBankedSQOneAcceptancePerBank(t *testing.T) {
	a, err := NewBankedSQ(2, 32, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Two stores to different lines of one bank: the second needs the array
	// port (direct write) since only one queue acceptance per cycle.
	got := a.Grant(0, reqs(
		Request{Addr: 0x100, Store: true},
		Request{Addr: 0x180, Store: true},
	), nil)
	if len(got) != 2 {
		t.Fatalf("grants = %v", got)
	}
	if a.DirectStores != 1 {
		t.Errorf("direct stores = %d, want 1", a.DirectStores)
	}
	// A load behind them now conflicts (port taken by the direct store).
	got = a.Grant(1, reqs(
		Request{Addr: 0x200, Store: true},
		Request{Addr: 0x280, Store: true},
		Request{Addr: 0x300},
	), nil)
	if len(got) != 2 {
		t.Fatalf("grants = %v, want store+direct-store only", got)
	}
	if a.Conflicts == 0 {
		t.Error("load should have conflicted with the direct store")
	}
}

func TestBankedSQDrainsOnIdle(t *testing.T) {
	a, err := NewBankedSQ(2, 32, 4)
	if err != nil {
		t.Fatal(err)
	}
	a.Grant(0, reqs(Request{Addr: 0x100, Store: true}), nil)
	if a.StoreQueueLen(0) != 1 {
		t.Fatal("store not queued")
	}
	a.Grant(1, nil, nil)
	if a.StoreQueueLen(0) != 0 {
		t.Error("idle cycle should drain the queue")
	}
	if a.StoreDrains != 1 {
		t.Errorf("drains = %d", a.StoreDrains)
	}
}

func TestBankedSQCoalesces(t *testing.T) {
	a, err := NewBankedSQ(2, 32, 2)
	if err != nil {
		t.Fatal(err)
	}
	a.Grant(0, reqs(Request{Addr: 0x100, Store: true}), nil)
	a.Grant(1, reqs(Request{Addr: 0x108, Store: true}), nil)
	// Same line: coalesced, still one queued line minus one idle drain.
	if n := a.StoreQueueLen(0); n > 1 {
		t.Errorf("queue = %d after coalescing, want <= 1", n)
	}
}

func TestBankedSQValidation(t *testing.T) {
	if _, err := NewBankedSQ(3, 32, 4); err == nil {
		t.Error("expected bank validation error")
	}
	if _, err := NewBankedSQ(4, 32, -1); err == nil {
		t.Error("expected depth validation error")
	}
	a, err := NewBankedSQ(4, 32, 0)
	if err != nil {
		t.Fatal(err)
	}
	if a.Name() != "banksq-4" || a.PeakWidth() != 8 {
		t.Error("metadata wrong")
	}
}
