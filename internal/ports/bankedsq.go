package ports

import (
	"fmt"
	"strings"
)

// BankedSQ is a multi-bank cache whose banks each carry a store queue, in
// the style of the HP PA8000 the paper cites (§5.2: "the LBIC relies on a
// store queue in each bank, as some current multi-bank implementations do
// [18]"). Stores deposit into their bank's queue when granted (coalescing by
// line) and the queues retire one line per idle bank cycle, so a store burst
// does not monopolize a bank's port the way it does in the plain banked
// design. There is no line buffer and no combining: this isolates how much
// of the LBIC's win comes from the store queues alone, and how much from
// combining.
type BankedSQ struct {
	sel      BankSelector
	depth    int
	busy     []bool
	accepted []bool // a store was accepted into this bank's queue this cycle
	storeQ   []LineQueue

	// Conflicts counts requests stalled on a busy bank.
	Conflicts uint64
	// StoreDrains counts store-queue lines retired on idle cycles.
	StoreDrains uint64
	// DirectStores counts stores that wrote the array directly because
	// their bank's queue was full.
	DirectStores uint64

	bankAccess   []uint64
	bankConflict []uint64
}

// NewBankedSQ returns a banked arbiter with per-bank store queues of the
// given line depth (0 selects depth 8).
func NewBankedSQ(banks, lineSize, depth int) (*BankedSQ, error) {
	if depth == 0 {
		depth = 8
	}
	if depth < 1 {
		return nil, fmt.Errorf("ports: store queue depth %d is not positive", depth)
	}
	sel, err := NewBankSelector(banks, lineSize)
	if err != nil {
		return nil, err
	}
	return &BankedSQ{
		sel:          sel,
		depth:        depth,
		busy:         make([]bool, banks),
		accepted:     make([]bool, banks),
		storeQ:       make([]LineQueue, banks),
		bankAccess:   make([]uint64, banks),
		bankConflict: make([]uint64, banks),
	}, nil
}

// BankAccesses implements BankObserver: grants per bank (array accesses and
// store-queue acceptances).
func (a *BankedSQ) BankAccesses() []uint64 { return append([]uint64(nil), a.bankAccess...) }

// BankConflicts implements BankObserver: stalled requests per bank.
func (a *BankedSQ) BankConflicts() []uint64 { return append([]uint64(nil), a.bankConflict...) }

// Name implements Arbiter.
func (a *BankedSQ) Name() string { return fmt.Sprintf("banksq-%d", a.sel.Banks()) }

// PeakWidth implements Arbiter: each bank can serve one array access and
// accept one store into its queue in the same cycle, so the ceiling is two
// grants per bank.
func (a *BankedSQ) PeakWidth() int { return 2 * a.sel.Banks() }

// StoreQueueLen returns the lines queued in bank b's store queue.
func (a *BankedSQ) StoreQueueLen(b int) int { return a.storeQ[b].Len() }

// StoreQueueLines appends bank b's queued lines, front first, to dst and
// returns the extended slice (see LBIC.StoreQueueLines).
func (a *BankedSQ) StoreQueueLines(b int, dst []uint64) []uint64 {
	return a.storeQ[b].Lines(dst)
}

// Quiescent implements Quiescer: with every store queue empty, an idle cycle
// neither drains nor changes state.
func (a *BankedSQ) Quiescent() bool {
	for b := range a.storeQ {
		if a.storeQ[b].Len() > 0 {
			return false
		}
	}
	return true
}

// Selector returns the bank selection function.
func (a *BankedSQ) Selector() BankSelector { return a.sel }

// DumpState implements StateDumper: per-bank store-queue occupancy for hang
// diagnostics.
func (a *BankedSQ) DumpState() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s:", a.Name())
	for bank := range a.storeQ {
		fmt.Fprintf(&b, " bank%d[sq %d/%d]", bank, a.storeQ[bank].Len(), a.depth)
	}
	return b.String()
}

// Depth returns the per-bank store queue capacity.
func (a *BankedSQ) Depth() int { return a.depth }

func (a *BankedSQ) enqueue(b int, line uint64) bool {
	q := &a.storeQ[b]
	if q.Contains(line) {
		return true
	}
	if q.Len() >= a.depth {
		return false
	}
	q.Push(line)
	return true
}

// Grant implements Arbiter, oldest first. Loads take their bank's single
// array port (one per bank per cycle). A store is accepted into its bank's
// queue — one acceptance per bank per cycle, no array port needed — so
// stores stop competing with loads; the queue retires one line per idle bank
// cycle. Only when the queue is full does a store fall back to a direct
// array write, occupying the bank like a plain banked store.
func (a *BankedSQ) Grant(_ uint64, ready []Request, dst []int) []int {
	for i := range a.busy {
		a.busy[i] = false
		a.accepted[i] = false
	}
	for i := range ready {
		b := a.sel.BankOf(ready[i].Addr)
		if ready[i].Store {
			if !a.accepted[b] && a.enqueue(b, a.sel.LineOf(ready[i].Addr)) {
				a.accepted[b] = true
				a.bankAccess[b]++
				dst = append(dst, i)
				continue
			}
			// Queue full (or acceptance used): direct write via the port.
			if a.busy[b] {
				a.Conflicts++
				a.bankConflict[b]++
				continue
			}
			a.busy[b] = true
			a.DirectStores++
			a.bankAccess[b]++
			dst = append(dst, i)
			continue
		}
		if a.busy[b] {
			a.Conflicts++
			a.bankConflict[b]++
			continue
		}
		a.busy[b] = true
		a.bankAccess[b]++
		dst = append(dst, i)
	}
	// Idle banks (no array access and no queue acceptance this cycle)
	// retire one queued line.
	for b := range a.storeQ {
		if !a.busy[b] && !a.accepted[b] && a.storeQ[b].Len() > 0 {
			a.storeQ[b].PopFront()
			a.StoreDrains++
		}
	}
	return dst
}
