package ports

import "fmt"

// Virtual models time-division multiplexed multi-porting (§1: the IBM Power2
// and DEC 21264 technique) — the cache SRAM runs P times the processor
// clock, servicing P accesses per processor cycle with no address
// restrictions. Within this simulator's single-clock view it grants exactly
// like an ideal P-port cache; the difference is entirely an implementation
// cost (an SRAM P times faster than the core), which is why the paper judges
// the technique infeasible beyond P=2 and drops it from its evaluation. It
// is provided to complete the paper's taxonomy and for cross-checks: a
// Virtual(P) run must match an Ideal(P) run cycle for cycle.
type Virtual struct {
	ideal *Ideal
	// ClockMultiple is the SRAM clock multiple the design implies.
	ClockMultiple int
}

// NewVirtual returns a time-division multiplexed arbiter with the given
// effective port count.
func NewVirtual(ports int) (*Virtual, error) {
	id, err := NewIdeal(ports)
	if err != nil {
		return nil, err
	}
	return &Virtual{ideal: id, ClockMultiple: ports}, nil
}

// Name implements Arbiter.
func (a *Virtual) Name() string { return fmt.Sprintf("virt-%d", a.ClockMultiple) }

// PeakWidth implements Arbiter.
func (a *Virtual) PeakWidth() int { return a.ideal.PeakWidth() }

// Quiescent implements Quiescer: the arbiter carries no cross-cycle state.
func (a *Virtual) Quiescent() bool { return true }

// Grant implements Arbiter: identical selection to ideal multi-porting.
func (a *Virtual) Grant(now uint64, ready []Request, dst []int) []int {
	return a.ideal.Grant(now, ready, dst)
}
