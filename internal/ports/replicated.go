package ports

import "fmt"

// Replicated models multi-porting by replication (§3.1, DEC 21164-style):
// each port is backed by its own complete copy of the cache. Loads proceed
// independently, one per port, but a store must be broadcast to every copy
// to keep them coherent, so a store occupies all ports and "cannot be sent
// to the cache in parallel with any other access". Committed stores are the
// oldest pending memory operations, so a pending store claims the next cycle
// exclusively — the serialization the paper identifies as this design's
// scalability limit.
type Replicated struct {
	ports int
	// StoreCycles counts cycles consumed exclusively by store broadcasts.
	StoreCycles uint64
}

// NewReplicated returns a replication arbiter with the given port count.
func NewReplicated(ports int) (*Replicated, error) {
	if ports < 1 {
		return nil, fmt.Errorf("ports: replicated port count %d is not positive", ports)
	}
	return &Replicated{ports: ports}, nil
}

// Name implements Arbiter.
func (a *Replicated) Name() string { return fmt.Sprintf("repl-%d", a.ports) }

// Quiescent implements Quiescer: the arbiter carries no cross-cycle state.
func (a *Replicated) Quiescent() bool { return true }

// PeakWidth implements Arbiter.
func (a *Replicated) PeakWidth() int { return a.ports }

// Grant implements Arbiter. If the oldest ready request is a store the cycle
// is a store broadcast: that store alone is granted. Otherwise loads are
// granted oldest-first, up to the port count, stopping at the first store
// (loads may not pass a store broadcast once one is pending; ready lists put
// committed stores first, so in practice a store-free prefix is granted).
func (a *Replicated) Grant(_ uint64, ready []Request, dst []int) []int {
	if len(ready) == 0 {
		return dst
	}
	if ready[0].Store {
		a.StoreCycles++
		return append(dst, 0)
	}
	for i := 0; i < len(ready) && len(dst) < a.ports; i++ {
		if ready[i].Store {
			break
		}
		dst = append(dst, i)
	}
	return dst
}
