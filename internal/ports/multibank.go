package ports

import "fmt"

// MultiPortedBanks generalizes the taxonomy's two practical axes into one
// design: M line-interleaved banks, each with P true ports, the kind of
// combination Sohi and Franklin propose in the study the paper builds on
// (§7: "different configurations, combinations and implementations of
// multi-ported and multi-bank caches"). M=1 degenerates to ideal
// multi-porting; P=1 to the traditional banked cache. Unlike the LBIC, the
// P ports serve any P requests in the bank — at true multi-porting's area
// cost per bank rather than a line buffer's.
type MultiPortedBanks struct {
	sel   BankSelector
	ports int
	used  []int

	// Conflicts counts requests stalled on a saturated bank.
	Conflicts uint64

	bankAccess   []uint64
	bankConflict []uint64
}

// NewMultiPortedBanks returns an M-bank, P-ports-per-bank arbiter.
func NewMultiPortedBanks(banks, portsPerBank, lineSize int) (*MultiPortedBanks, error) {
	if portsPerBank < 1 {
		return nil, fmt.Errorf("ports: ports per bank %d is not positive", portsPerBank)
	}
	sel, err := NewBankSelector(banks, lineSize)
	if err != nil {
		return nil, err
	}
	return &MultiPortedBanks{
		sel:          sel,
		ports:        portsPerBank,
		used:         make([]int, banks),
		bankAccess:   make([]uint64, banks),
		bankConflict: make([]uint64, banks),
	}, nil
}

// BankAccesses implements BankObserver: grants per bank.
func (a *MultiPortedBanks) BankAccesses() []uint64 { return append([]uint64(nil), a.bankAccess...) }

// BankConflicts implements BankObserver: stalled requests per bank.
func (a *MultiPortedBanks) BankConflicts() []uint64 { return append([]uint64(nil), a.bankConflict...) }

// Selector returns the bank selection function.
func (a *MultiPortedBanks) Selector() BankSelector { return a.sel }

// PortsPerBank returns P, the true ports per bank.
func (a *MultiPortedBanks) PortsPerBank() int { return a.ports }

// Name implements Arbiter, e.g. "mpb-4x2" (4 banks, 2 ports each).
func (a *MultiPortedBanks) Name() string {
	return fmt.Sprintf("mpb-%dx%d", a.sel.Banks(), a.ports)
}

// PeakWidth implements Arbiter.
func (a *MultiPortedBanks) PeakWidth() int { return a.sel.Banks() * a.ports }

// Quiescent implements Quiescer: the arbiter carries no cross-cycle state.
func (a *MultiPortedBanks) Quiescent() bool { return true }

// Grant implements Arbiter: oldest-first, each bank serving up to P
// requests per cycle regardless of their lines.
func (a *MultiPortedBanks) Grant(_ uint64, ready []Request, dst []int) []int {
	for i := range a.used {
		a.used[i] = 0
	}
	for i := range ready {
		b := a.sel.BankOf(ready[i].Addr)
		if a.used[b] >= a.ports {
			a.Conflicts++
			a.bankConflict[b]++
			continue
		}
		a.used[b]++
		a.bankAccess[b]++
		dst = append(dst, i)
	}
	return dst
}
