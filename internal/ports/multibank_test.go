package ports

import "testing"

func TestMultiPortedBanksGrants(t *testing.T) {
	a, err := NewMultiPortedBanks(2, 2, 32)
	if err != nil {
		t.Fatal(err)
	}
	if a.Name() != "mpb-2x2" || a.PeakWidth() != 4 {
		t.Error("metadata wrong")
	}
	// Three requests to bank 0 (two lines) and one to bank 1: the bank with
	// two ports serves two of the three regardless of lines.
	got := a.Grant(0, reqs(
		Request{Addr: 0x100},              // bank 0
		Request{Addr: 0x180},              // bank 0, different line: still served
		Request{Addr: 0x200, Store: true}, // bank 0: over the 2 ports
		Request{Addr: 0x120},              // bank 1
	), nil)
	want := []int{0, 1, 3}
	if len(got) != len(want) {
		t.Fatalf("grants = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("grants = %v, want %v", got, want)
		}
	}
	if a.Conflicts != 1 {
		t.Errorf("conflicts = %d, want 1", a.Conflicts)
	}
}

func TestMultiPortedBanksDegenerateCases(t *testing.T) {
	// M=1, P=4 behaves exactly like ideal-4.
	mpb, err := NewMultiPortedBanks(1, 4, 32)
	if err != nil {
		t.Fatal(err)
	}
	id, err := NewIdeal(4)
	if err != nil {
		t.Fatal(err)
	}
	ready := reqs(
		Request{Addr: 0x100}, Request{Addr: 0x180},
		Request{Addr: 0x200, Store: true}, Request{Addr: 0x220}, Request{Addr: 0x240},
	)
	g1 := mpb.Grant(0, ready, nil)
	g2 := id.Grant(0, ready, nil)
	if len(g1) != len(g2) {
		t.Fatalf("mpb-1x4 %v != ideal-4 %v", g1, g2)
	}
	for i := range g1 {
		if g1[i] != g2[i] {
			t.Fatalf("mpb-1x4 %v != ideal-4 %v", g1, g2)
		}
	}

	// M=4, P=1 behaves exactly like bank-4.
	mpb2, err := NewMultiPortedBanks(4, 1, 32)
	if err != nil {
		t.Fatal(err)
	}
	bank, err := NewBanked(4, 32)
	if err != nil {
		t.Fatal(err)
	}
	g3 := mpb2.Grant(0, ready, nil)
	g4 := bank.Grant(0, ready, nil)
	if len(g3) != len(g4) {
		t.Fatalf("mpb-4x1 %v != bank-4 %v", g3, g4)
	}
	for i := range g3 {
		if g3[i] != g4[i] {
			t.Fatalf("mpb-4x1 %v != bank-4 %v", g3, g4)
		}
	}
}

func TestMultiPortedBanksValidation(t *testing.T) {
	if _, err := NewMultiPortedBanks(3, 2, 32); err == nil {
		t.Error("expected bank count validation error")
	}
	if _, err := NewMultiPortedBanks(4, 0, 32); err == nil {
		t.Error("expected ports validation error")
	}
}
