// Package ports implements the three conventional high-bandwidth cache port
// organizations the paper evaluates in §3: ideal multi-porting (True),
// multi-porting by replication (Repl, DEC 21164-style), and multi-banking
// (Bank, MIPS R10000-style line-interleaved). The paper's proposed LBIC
// arbiter lives in internal/core and shares this package's interface.
package ports

import (
	"fmt"

	"lbic/internal/trace"
)

// Request is one memory operation competing for a cache port this cycle.
type Request struct {
	// Seq is the program-order sequence number; ready lists handed to
	// arbiters must be sorted ascending by Seq (oldest first).
	Seq uint64
	// Addr is the effective address.
	Addr uint64
	// Store distinguishes stores (which broadcast in replicated designs and
	// enter per-bank store queues in the LBIC) from loads.
	Store bool
}

// Arbiter selects which of the ready requests may access the cache in one
// cycle. Implementations are stateful only where the modeled hardware is
// (e.g. LBIC store queues); Grant is called exactly once per cycle.
type Arbiter interface {
	// Name returns a short identifier, e.g. "ideal-4" or "lbic-4x2".
	Name() string
	// PeakWidth returns the maximum number of grants per cycle.
	PeakWidth() int
	// Grant appends to dst the indices into ready (age-ordered, oldest
	// first) of the requests that access the cache this cycle, and returns
	// the extended slice. Granted indices are strictly increasing.
	Grant(now uint64, ready []Request, dst []int) []int
}

// Quiescer is implemented by arbiters that can prove they hold no deferred
// work: given an empty ready list, Grant would neither return a grant nor
// change observable state. Stateless designs are always quiescent; queueing
// designs (LBIC, BankedSQ) are quiescent when every queue is empty. The core
// only fast-forwards across idle cycles when the arbiter reports quiescence —
// an arbiter that does not implement the interface disables fast-forward.
type Quiescer interface {
	Quiescent() bool
}

// BankObserver is implemented by bank-organized arbiters that record
// per-bank grant and conflict counts; run reports export them as the
// per-bank histograms behind the paper's §3/§4 conflict characterization.
// The returned slices are copies, indexed by bank.
type BankObserver interface {
	BankAccesses() []uint64
	BankConflicts() []uint64
}

// EventRecorder is implemented by arbiters that can emit structured trace
// events (conflicts with their causes, combines). The sink must be set
// before the first Grant; a nil sink disables emission.
type EventRecorder interface {
	SetEventSink(s trace.EventSink)
}

// StateDumper is implemented by stateful arbiters that can describe their
// internal queues in one line. The forward-progress watchdog includes the
// dump in its hang diagnostics, so a starved bank or a store queue that
// never drains is visible from the error alone.
type StateDumper interface {
	DumpState() string
}

// SelectorKind chooses the bank selection function — how an address maps to
// a bank. §3.2 of the paper discusses the tradeoffs.
type SelectorKind int

const (
	// BitSelect is the paper's default (Fig 2c): the bank number is the low
	// bits of the line address, giving a line-interleaved layout. Simple
	// and fast, but regular strides can concentrate on one bank.
	BitSelect SelectorKind = iota
	// XorFold hashes the line address by folding its higher bits onto the
	// bank bits with XOR — a cheap pseudo-random interleaving in the spirit
	// of Rau's work the paper cites [11]. It decorrelates strides but, as
	// §4 predicts, cannot remove same-line conflicts.
	XorFold
	// WordInterleave banks at 8-byte word granularity, as vector machines
	// do: consecutive words of one line live in successive banks. It
	// removes same-line bank conflicts entirely, but a real implementation
	// must replicate or multi-port the tag store (the cost §4 of the paper
	// rejects for caches) — so it serves here as an ablation point, not a
	// practical design.
	WordInterleave
)

// String returns the selector's name.
func (k SelectorKind) String() string {
	switch k {
	case BitSelect:
		return "bit-select"
	case XorFold:
		return "xor-fold"
	case WordInterleave:
		return "word-interleave"
	default:
		return "selector(?)"
	}
}

// MarshalText encodes the selector as its canonical name, so SelectorKind
// fields serialize readably in JSON configs and service requests.
func (k SelectorKind) MarshalText() ([]byte, error) {
	switch k {
	case BitSelect, XorFold, WordInterleave:
		return []byte(k.String()), nil
	}
	return nil, fmt.Errorf("ports: unknown selector kind %d", int(k))
}

// UnmarshalText is the inverse of MarshalText.
func (k *SelectorKind) UnmarshalText(text []byte) error {
	p, err := ParseSelectorKind(string(text))
	if err != nil {
		return err
	}
	*k = p
	return nil
}

// ParseSelectorKind maps a canonical selector name back to its kind.
func ParseSelectorKind(name string) (SelectorKind, error) {
	switch name {
	case "bit-select":
		return BitSelect, nil
	case "xor-fold":
		return XorFold, nil
	case "word-interleave":
		return WordInterleave, nil
	}
	return 0, fmt.Errorf("ports: unknown selector kind %q (have bit-select, xor-fold, word-interleave)", name)
}

// BankSelector maps addresses to banks.
type BankSelector struct {
	kind     SelectorKind
	lineBits uint
	bankBits uint
	bankMask uint64
	banks    int
}

// NewBankSelector returns a bit-select selector for the given bank count and
// line size, both powers of two — the paper's configuration.
func NewBankSelector(banks, lineSize int) (BankSelector, error) {
	return NewBankSelectorKind(banks, lineSize, BitSelect)
}

// NewBankSelectorKind returns a selector with an explicit selection function.
func NewBankSelectorKind(banks, lineSize int, kind SelectorKind) (BankSelector, error) {
	if banks <= 0 || banks&(banks-1) != 0 {
		return BankSelector{}, fmt.Errorf("ports: bank count %d is not a positive power of two", banks)
	}
	if lineSize <= 0 || lineSize&(lineSize-1) != 0 {
		return BankSelector{}, fmt.Errorf("ports: line size %d is not a positive power of two", lineSize)
	}
	lb, bb := uint(0), uint(0)
	for 1<<lb < lineSize {
		lb++
	}
	for 1<<bb < banks {
		bb++
	}
	return BankSelector{kind: kind, lineBits: lb, bankBits: bb, bankMask: uint64(banks - 1), banks: banks}, nil
}

// Banks returns the number of banks.
func (s BankSelector) Banks() int { return s.banks }

// Kind returns the selection function in use.
func (s BankSelector) Kind() SelectorKind { return s.kind }

// BankOf returns the bank holding addr (for WordInterleave, the bank holding
// addr's word).
func (s BankSelector) BankOf(addr uint64) int {
	switch s.kind {
	case XorFold:
		line := addr >> s.lineBits
		h := line
		h ^= line >> s.bankBits
		h ^= line >> (2 * s.bankBits)
		h ^= line >> (3 * s.bankBits)
		return int(h & s.bankMask)
	case WordInterleave:
		return int((addr >> 3) & s.bankMask)
	default:
		return int((addr >> s.lineBits) & s.bankMask)
	}
}

// LineOf returns addr's global line number; two addresses with equal LineOf
// share a cache line.
func (s BankSelector) LineOf(addr uint64) uint64 {
	return addr >> s.lineBits
}
