package ports

// LineQueue is a FIFO of cache line numbers with a consumed-head index, so
// the per-cycle pop reuses the backing array instead of leaking its prefix
// the way a `q = q[1:]` re-slice does (that pattern forces a reallocation on
// every later append once the capacity window slides off). The zero value is
// an empty queue.
type LineQueue struct {
	buf  []uint64
	head int
}

// Len returns the number of queued lines.
func (q *LineQueue) Len() int { return len(q.buf) - q.head }

// Contains reports whether line is queued.
func (q *LineQueue) Contains(line uint64) bool {
	for _, l := range q.buf[q.head:] {
		if l == line {
			return true
		}
	}
	return false
}

// Push appends line to the back.
func (q *LineQueue) Push(line uint64) {
	q.buf = append(q.buf, line)
}

// PopFront removes and returns the front line.
func (q *LineQueue) PopFront() uint64 {
	l := q.buf[q.head]
	q.head++
	switch {
	case q.head == len(q.buf):
		q.buf = q.buf[:0]
		q.head = 0
	case q.head > 32 && q.head*2 >= len(q.buf):
		n := copy(q.buf, q.buf[q.head:])
		q.buf = q.buf[:n]
		q.head = 0
	}
	return l
}

// Lines appends the queued lines, front first, to dst and returns the
// extended slice.
func (q *LineQueue) Lines(dst []uint64) []uint64 {
	return append(dst, q.buf[q.head:]...)
}
