package cache

import "testing"

func newHier(t *testing.T) *Hierarchy {
	t.Helper()
	h, err := NewHierarchy(DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	return h
}

// drainUntil steps the hierarchy until a completion for token arrives,
// returning its At cycle.
func drainUntil(t *testing.T, h *Hierarchy, start uint64, token int64, limit uint64) uint64 {
	t.Helper()
	for now := start; now < start+limit; now++ {
		for _, c := range h.Drain() {
			if c.Token == token {
				return c.At
			}
		}
		h.Advance(now + 1)
	}
	t.Fatalf("token %d never completed", token)
	return 0
}

func TestHitLatency(t *testing.T) {
	h := newHier(t)
	h.Advance(0)
	// Warm the line.
	h.Access(0, 0x10000, false, 1)
	at := drainUntil(t, h, 0, 1, 64)
	missDone := at
	h.Advance(missDone)
	h.Access(missDone, 0x10000, false, 2)
	at = drainUntil(t, h, missDone, 2, 8)
	if at != missDone+1 {
		t.Errorf("hit completion at %d, want %d (1-cycle hit)", at, missDone+1)
	}
}

func TestMissLatencyL2Hit(t *testing.T) {
	h := newHier(t)
	// Warm L2 with the line by missing once and letting it fill.
	h.Advance(0)
	h.Access(0, 0x20000, false, 1)
	drainUntil(t, h, 0, 1, 64)
	// Evict from L1 by touching the conflicting line (32KB apart).
	conflict := uint64(0x20000 + 32<<10)
	now := uint64(40)
	h.Advance(now)
	h.Access(now, conflict, false, 2)
	drainUntil(t, h, now, 2, 64)
	// Now 0x20000 is out of L1 but in L2: the miss should take L2Lat + 1.
	now = 80
	h.Advance(now)
	if out := h.Access(now, 0x20000, false, 3); out != Miss {
		t.Fatalf("expected miss, got %v", out)
	}
	at := drainUntil(t, h, now, 3, 64)
	want := now + uint64(DefaultParams().L2Lat) + 1
	if at != want {
		t.Errorf("L2-hit miss completed at %d, want %d", at, want)
	}
}

func TestMissLatencyL2Miss(t *testing.T) {
	h := newHier(t)
	now := uint64(5)
	h.Advance(now)
	if out := h.Access(now, 0x30000, false, 7); out != Miss {
		t.Fatalf("expected miss, got %v", out)
	}
	at := drainUntil(t, h, now, 7, 64)
	p := DefaultParams()
	want := now + uint64(p.L2Lat+p.MemLat) + 1
	if at != want {
		t.Errorf("cold miss completed at %d, want %d", at, want)
	}
	s := h.Stats()
	if s.L2Misses != 1 || s.MissesNew != 1 {
		t.Errorf("stats = %+v", s)
	}
}

func TestMissCombining(t *testing.T) {
	h := newHier(t)
	now := uint64(0)
	h.Advance(now)
	h.Access(now, 0x40000, false, 1)
	h.Access(now, 0x40008, false, 2) // same 32B line
	h.Access(now, 0x40010, true, 3)  // store to same line
	s := h.Stats()
	if s.MissesNew != 1 || s.MissesMerge != 2 {
		t.Fatalf("expected 1 new + 2 merged misses, got %+v", s)
	}
	at1 := drainUntil(t, h, now, 1, 64)
	// All three complete at the same fill.
	h2 := newHier(t)
	h2.Advance(0)
	h2.Access(0, 0x40000, false, 1)
	h2.Access(0, 0x40008, false, 2)
	var got []Completion
	for n := uint64(0); n < 40; n++ {
		got = append(got, h2.Drain()...)
		h2.Advance(n + 1)
	}
	if len(got) != 2 || got[0].At != got[1].At {
		t.Errorf("combined completions = %+v", got)
	}
	_ = at1
	// The store flag must make the fill dirty.
	if !h.L1().Dirty(0x40000) {
		t.Error("line with waiting store should fill dirty")
	}
}

func TestOneRequestPerCycleToL2(t *testing.T) {
	h := newHier(t)
	now := uint64(0)
	h.Advance(now)
	// Two misses to different lines in the same cycle: second must wait a cycle.
	h.Access(now, 0x50000, false, 1)
	h.Access(now, 0x51000, false, 2)
	at1 := drainUntil(t, h, now, 1, 64)
	h2 := newHier(t)
	h2.Advance(0)
	h2.Access(0, 0x50000, false, 1)
	h2.Access(0, 0x51000, false, 2)
	var at2 uint64
	for n := uint64(0); n < 40 && at2 == 0; n++ {
		for _, c := range h2.Drain() {
			if c.Token == 2 {
				at2 = c.At
			}
		}
		h2.Advance(n + 1)
	}
	if at2 != at1+1 {
		t.Errorf("second miss completed at %d, want %d (one L2 request per cycle)", at2, at1+1)
	}
}

func TestMSHRExhaustionBlocks(t *testing.T) {
	p := DefaultParams()
	p.MSHRs = 2
	h, err := NewHierarchy(p)
	if err != nil {
		t.Fatal(err)
	}
	h.Advance(0)
	h.Access(0, 0x60000, false, 1)
	h.Access(0, 0x61000, false, 2)
	if out := h.Access(0, 0x62000, false, 3); out != Blocked {
		t.Errorf("third distinct miss = %v, want Blocked", out)
	}
	if h.Stats().Blocked != 1 {
		t.Error("blocked stat not counted")
	}
}

func TestMSHRTargetOverflowBlocks(t *testing.T) {
	p := DefaultParams()
	p.MaxTargets = 2
	h, err := NewHierarchy(p)
	if err != nil {
		t.Fatal(err)
	}
	h.Advance(0)
	h.Access(0, 0x70000, false, 1)
	h.Access(0, 0x70008, false, 2)
	if out := h.Access(0, 0x70010, false, 3); out != Blocked {
		t.Errorf("target overflow = %v, want Blocked", out)
	}
}

func TestWriteAllocateStoreMiss(t *testing.T) {
	h := newHier(t)
	h.Advance(0)
	if out := h.Access(0, 0x80000, true, 1); out != Miss {
		t.Fatalf("store miss = %v", out)
	}
	drainUntil(t, h, 0, 1, 64)
	if !h.L1().Probe(0x80000) {
		t.Error("store miss must allocate the line")
	}
	if !h.L1().Dirty(0x80000) {
		t.Error("allocated store line must be dirty")
	}
}

func TestDirtyVictimWritebackToL2(t *testing.T) {
	h := newHier(t)
	// Fill 0x90000, dirty it, then evict with the 32KB-conflicting line.
	h.Advance(0)
	h.Access(0, 0x90000, true, 1)
	drainUntil(t, h, 0, 1, 64)
	now := uint64(50)
	h.Advance(now)
	h.Access(now, 0x90000+32<<10, false, 2)
	drainUntil(t, h, now, 2, 64)
	if h.Stats().Writebacks != 1 {
		t.Errorf("writebacks = %d, want 1", h.Stats().Writebacks)
	}
	// The victim line should be dirty in L2 now.
	if !h.L2().Dirty(0x90000) {
		t.Error("victim must be dirty in L2")
	}
}

func TestOutstandingMissCount(t *testing.T) {
	h := newHier(t)
	h.Advance(0)
	h.Access(0, 0xa0000, false, 1)
	h.Access(0, 0xa1000, false, 2)
	if h.OutstandingMisses() != 2 {
		t.Errorf("outstanding = %d, want 2", h.OutstandingMisses())
	}
	drainUntil(t, h, 0, 1, 64)
	drainUntil(t, h, 20, 2, 64)
	if h.OutstandingMisses() != 0 {
		t.Errorf("outstanding after fills = %d", h.OutstandingMisses())
	}
}

func TestParamsValidate(t *testing.T) {
	bad := []func(*Params){
		func(p *Params) { p.L1.LineSize = 3 },
		func(p *Params) { p.L2.LineSize = 16 }, // smaller than L1's 32
		func(p *Params) { p.HitLat = 0 },
		func(p *Params) { p.MSHRs = 0 },
		func(p *Params) { p.MaxPending = 0 },
	}
	for i, mut := range bad {
		p := DefaultParams()
		mut(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
	if err := DefaultParams().Validate(); err != nil {
		t.Errorf("default params invalid: %v", err)
	}
}

func TestMissRateStat(t *testing.T) {
	h := newHier(t)
	h.Advance(0)
	h.Access(0, 0xb0000, false, 1)
	drainUntil(t, h, 0, 1, 64)
	now := uint64(30)
	h.Advance(now)
	h.Access(now, 0xb0000, false, 2)
	h.Drain()
	s := h.Stats()
	if s.MissRate() != 0.5 {
		t.Errorf("miss rate = %v, want 0.5", s.MissRate())
	}
}

func TestDrainBufferOwnership(t *testing.T) {
	h := newHier(t)
	h.Advance(0)
	h.Access(0, 0xc0000, false, 1)
	// Warm hit to generate a completion.
	first := drainUntil(t, h, 0, 1, 64)
	h.Advance(first)
	h.Access(first, 0xc0000, false, 2)
	got := h.Drain()
	if len(got) != 1 || got[0].Token != 2 {
		t.Fatalf("drain = %+v", got)
	}
	// A new completion must not clobber the previously drained slice.
	h.Advance(first + 1)
	h.Access(first+1, 0xc0000, false, 3)
	if got[0].Token != 2 {
		t.Error("previous drain result was overwritten")
	}
}
