package cache

import (
	"testing"
	"testing/quick"
)

func dm32k() Geometry { return Geometry{Size: 32 << 10, LineSize: 32, Assoc: 1} }

// mustArray builds an array from a geometry known to be valid, failing the
// test otherwise (NewArray no longer has a panicking variant).
func mustArray(t *testing.T, g Geometry) *Array {
	t.Helper()
	a, err := NewArray(g)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestGeometryValidate(t *testing.T) {
	good := []Geometry{
		dm32k(),
		{Size: 512 << 10, LineSize: 64, Assoc: 4},
		{Size: 1 << 10, LineSize: 16, Assoc: 2},
	}
	for _, g := range good {
		if err := g.Validate(); err != nil {
			t.Errorf("%+v: %v", g, err)
		}
	}
	bad := []Geometry{
		{Size: 0, LineSize: 32, Assoc: 1},
		{Size: 32 << 10, LineSize: 31, Assoc: 1},
		{Size: 32 << 10, LineSize: 32, Assoc: 0},
		{Size: 100, LineSize: 32, Assoc: 1},
		{Size: 96 * 32, LineSize: 32, Assoc: 1}, // 96 sets: not a power of two
	}
	for _, g := range bad {
		if err := g.Validate(); err == nil {
			t.Errorf("%+v: expected validation error", g)
		}
	}
}

func TestGeometryHelpers(t *testing.T) {
	g := dm32k()
	if g.Sets() != 1024 {
		t.Errorf("Sets() = %d, want 1024", g.Sets())
	}
	if g.LineBits() != 5 {
		t.Errorf("LineBits() = %d, want 5", g.LineBits())
	}
	if g.LineAddr(0x12345) != 0x12340 {
		t.Errorf("LineAddr = %#x", g.LineAddr(0x12345))
	}
}

func TestArrayHitMiss(t *testing.T) {
	a := mustArray(t, dm32k())
	if a.Access(0x1000, false) {
		t.Error("cold access should miss")
	}
	a.Install(0x1000, false)
	if !a.Access(0x1000, false) {
		t.Error("installed line should hit")
	}
	if !a.Access(0x101f, false) {
		t.Error("same line, different offset should hit")
	}
	if a.Access(0x1020, false) {
		t.Error("next line should miss")
	}
}

func TestArrayDirectMappedConflict(t *testing.T) {
	a := mustArray(t, dm32k())
	// Two addresses 32KB apart map to the same set in a direct-mapped 32KB.
	a.Install(0x10000, false)
	victim, dirty, evicted := a.Install(0x10000+32<<10, false)
	if !evicted {
		t.Fatal("conflicting install should evict")
	}
	if dirty {
		t.Error("clean victim reported dirty")
	}
	if victim != 0x10000 {
		t.Errorf("victim = %#x, want 0x10000", victim)
	}
	if a.Probe(0x10000) {
		t.Error("evicted line still present")
	}
}

func TestArrayDirtyWriteback(t *testing.T) {
	a := mustArray(t, dm32k())
	a.Install(0x2000, false)
	a.Access(0x2000, true) // dirty it
	if !a.Dirty(0x2000) {
		t.Fatal("write hit should mark dirty")
	}
	_, dirty, evicted := a.Install(0x2000+32<<10, false)
	if !evicted || !dirty {
		t.Error("dirty victim not reported")
	}
	if a.Writebacks != 1 {
		t.Errorf("writebacks = %d, want 1", a.Writebacks)
	}
}

func TestArrayLRU(t *testing.T) {
	g := Geometry{Size: 4 * 32, LineSize: 32, Assoc: 4} // one set, 4 ways
	a := mustArray(t, g)
	addrs := []uint64{0x1000, 0x2000, 0x3000, 0x4000}
	for _, ad := range addrs {
		a.Install(ad, false)
	}
	// Touch all but 0x2000; it becomes LRU.
	a.Access(0x1000, false)
	a.Access(0x3000, false)
	a.Access(0x4000, false)
	victim, _, evicted := a.Install(0x5000, false)
	if !evicted || victim != 0x2000 {
		t.Errorf("victim = %#x (evicted=%v), want 0x2000", victim, evicted)
	}
}

func TestArrayInstallExisting(t *testing.T) {
	a := mustArray(t, dm32k())
	a.Install(0x3000, false)
	_, _, evicted := a.Install(0x3000, true)
	if evicted {
		t.Error("reinstalling a present line must not evict")
	}
	if !a.Dirty(0x3000) {
		t.Error("reinstall with dirty should dirty the line")
	}
	if a.Lines() != 1 {
		t.Errorf("Lines() = %d, want 1", a.Lines())
	}
}

func TestArrayMissRateAndReset(t *testing.T) {
	a := mustArray(t, dm32k())
	a.Access(0x1000, false) // miss
	a.Install(0x1000, false)
	a.Access(0x1000, false) // hit
	if a.MissRate() != 0.5 {
		t.Errorf("miss rate = %v, want 0.5", a.MissRate())
	}
	a.Reset()
	if a.Accesses != 0 || a.Lines() != 0 || a.MissRate() != 0 {
		t.Error("Reset incomplete")
	}
}

func TestNewArrayRejectsBadGeometry(t *testing.T) {
	if _, err := NewArray(Geometry{Size: 3, LineSize: 2, Assoc: 1}); err == nil {
		t.Error("expected geometry error")
	}
}

// Property: after installing any set of lines into a large-enough cache,
// every installed line probes as present, and reconstruct round-trips the
// victim addresses (victim is always line-aligned and maps to the same set).
func TestArrayVictimSameSetQuick(t *testing.T) {
	g := Geometry{Size: 8 << 10, LineSize: 32, Assoc: 2}
	f := func(addrs []uint32) bool {
		a := mustArray(t, g)
		for _, raw := range addrs {
			addr := uint64(raw)
			victim, _, evicted := a.Install(addr, false)
			if !a.Probe(addr) {
				return false
			}
			if evicted {
				if victim%uint64(g.LineSize) != 0 {
					return false
				}
				// Victim must map to the same set as the new line.
				sets := uint64(g.Sets())
				if (victim>>5)%sets != (addr>>5)%sets {
					return false
				}
				if a.Probe(victim) && g.LineAddr(victim) != g.LineAddr(addr) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: an access that hits never changes the resident line count, and a
// miss never increases it (allocation only happens via Install).
func TestArrayAccessPreservesContentsQuick(t *testing.T) {
	g := Geometry{Size: 4 << 10, LineSize: 32, Assoc: 4}
	f := func(install []uint16, probe []uint16) bool {
		a := mustArray(t, g)
		for _, p := range install {
			a.Install(uint64(p)*8, false)
		}
		lines := a.Lines()
		for _, p := range probe {
			a.Access(uint64(p)*8, p%2 == 0)
			if a.Lines() != lines {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: the number of resident lines never exceeds capacity.
func TestArrayCapacityQuick(t *testing.T) {
	g := Geometry{Size: 2 << 10, LineSize: 32, Assoc: 2}
	capacity := g.Size / g.LineSize
	f := func(addrs []uint32) bool {
		a := mustArray(t, g)
		for _, raw := range addrs {
			a.Install(uint64(raw), false)
			if a.Lines() > capacity {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
