// Package cache models the data memory hierarchy of the paper's processor
// (Table 1 / §2.1): a non-blocking 32KB direct-mapped write-back
// write-allocate L1 with 32-byte lines and single-cycle hits, a 512KB 4-way
// L2 with 64-byte lines and 4-cycle access, fully pipelined with up to 64
// outstanding misses, and a flat 10-cycle main memory behind it.
package cache

import (
	"fmt"
	"math/bits"
)

// Geometry describes one cache level.
type Geometry struct {
	// Size is the total capacity in bytes.
	Size int
	// LineSize is the block size in bytes (a power of two).
	LineSize int
	// Assoc is the set associativity (1 = direct mapped).
	Assoc int
}

// Validate checks that the geometry is internally consistent.
func (g Geometry) Validate() error {
	switch {
	case g.LineSize <= 0 || g.LineSize&(g.LineSize-1) != 0:
		return fmt.Errorf("cache: line size %d is not a positive power of two", g.LineSize)
	case g.Assoc <= 0:
		return fmt.Errorf("cache: associativity %d is not positive", g.Assoc)
	case g.Size <= 0 || g.Size%(g.LineSize*g.Assoc) != 0:
		return fmt.Errorf("cache: size %d is not a multiple of line size %d x assoc %d",
			g.Size, g.LineSize, g.Assoc)
	}
	sets := g.Sets()
	if sets&(sets-1) != 0 {
		return fmt.Errorf("cache: set count %d is not a power of two", sets)
	}
	return nil
}

// Sets returns the number of sets.
func (g Geometry) Sets() int { return g.Size / (g.LineSize * g.Assoc) }

// LineBits returns log2 of the line size.
func (g Geometry) LineBits() int { return bits.TrailingZeros(uint(g.LineSize)) }

// LineAddr returns the line-aligned address containing addr.
func (g Geometry) LineAddr(addr uint64) uint64 {
	return addr &^ uint64(g.LineSize-1)
}

// way is one cache frame.
type way struct {
	tag   uint64
	valid bool
	dirty bool
	used  uint64 // LRU stamp
}

// Array is a set-associative cache array with per-set LRU replacement.
// It tracks only tags and state: the simulator never moves data.
type Array struct {
	geom     Geometry
	lineBits uint
	setMask  uint64
	ways     []way // sets x assoc, row-major
	assoc    int
	clock    uint64

	// Accesses, Misses and Writebacks count demand behaviour for
	// characterization runs.
	Accesses   uint64
	Misses     uint64
	Writebacks uint64
}

// NewArray returns an empty array with the given geometry.
func NewArray(g Geometry) (*Array, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return &Array{
		geom:     g,
		lineBits: uint(g.LineBits()),
		setMask:  uint64(g.Sets() - 1),
		ways:     make([]way, g.Sets()*g.Assoc),
		assoc:    g.Assoc,
	}, nil
}

// Geometry returns the array's geometry.
func (a *Array) Geometry() Geometry { return a.geom }

func (a *Array) set(addr uint64) (int, uint64) {
	line := addr >> a.lineBits
	return int(line&a.setMask) * a.assoc, line >> uint(bits.TrailingZeros(uint(a.geom.Sets())))
}

// Probe reports whether addr's line is present, without touching LRU state
// or counters.
func (a *Array) Probe(addr uint64) bool {
	base, tag := a.set(addr)
	for i := 0; i < a.assoc; i++ {
		if w := &a.ways[base+i]; w.valid && w.tag == tag {
			return true
		}
	}
	return false
}

// Access looks up addr, updating LRU state and counters. A write hit marks
// the line dirty. It reports whether the access hit; a miss changes no line
// state (allocation is the caller's decision, via Install).
func (a *Array) Access(addr uint64, write bool) bool {
	a.Accesses++
	a.clock++
	base, tag := a.set(addr)
	for i := 0; i < a.assoc; i++ {
		if w := &a.ways[base+i]; w.valid && w.tag == tag {
			w.used = a.clock
			if write {
				w.dirty = true
			}
			return true
		}
	}
	a.Misses++
	return false
}

// Install allocates addr's line, evicting the LRU way if the set is full.
// dirty marks the new line dirty immediately (write-allocate fill that
// performs the store). It returns the victim line address and whether a
// dirty victim was evicted; evicted is false when a free way existed.
func (a *Array) Install(addr uint64, dirty bool) (victim uint64, victimDirty, evicted bool) {
	a.clock++
	base, tag := a.set(addr)
	pick := -1
	for i := 0; i < a.assoc; i++ {
		w := &a.ways[base+i]
		if w.valid && w.tag == tag {
			// Already present (e.g. two MSHR paths raced); just update state.
			w.used = a.clock
			w.dirty = w.dirty || dirty
			return 0, false, false
		}
		if !w.valid {
			pick = i
		}
	}
	if pick < 0 {
		oldest := uint64(1<<64 - 1)
		for i := 0; i < a.assoc; i++ {
			if w := &a.ways[base+i]; w.used < oldest {
				oldest, pick = w.used, i
			}
		}
		w := &a.ways[base+pick]
		victim = a.reconstruct(base/a.assoc, w.tag)
		victimDirty = w.dirty
		evicted = true
		if victimDirty {
			a.Writebacks++
		}
	}
	a.ways[base+pick] = way{tag: tag, valid: true, dirty: dirty, used: a.clock}
	return victim, victimDirty, evicted
}

// reconstruct rebuilds a line-aligned address from set index and tag.
func (a *Array) reconstruct(setIdx int, tag uint64) uint64 {
	setBits := uint(bits.TrailingZeros(uint(a.geom.Sets())))
	return ((tag << setBits) | uint64(setIdx)) << a.lineBits
}

// Dirty reports whether addr's line is present and dirty.
func (a *Array) Dirty(addr uint64) bool {
	base, tag := a.set(addr)
	for i := 0; i < a.assoc; i++ {
		if w := &a.ways[base+i]; w.valid && w.tag == tag {
			return w.dirty
		}
	}
	return false
}

// Lines returns the number of valid lines currently resident.
func (a *Array) Lines() int {
	n := 0
	for i := range a.ways {
		if a.ways[i].valid {
			n++
		}
	}
	return n
}

// MissRate returns Misses/Accesses, or 0 before any access.
func (a *Array) MissRate() float64 {
	if a.Accesses == 0 {
		return 0
	}
	return float64(a.Misses) / float64(a.Accesses)
}

// Reset clears all lines and counters.
func (a *Array) Reset() {
	for i := range a.ways {
		a.ways[i] = way{}
	}
	a.clock, a.Accesses, a.Misses, a.Writebacks = 0, 0, 0, 0
}
