package cache

import (
	"fmt"
	"math"

	"lbic/internal/metrics"
	"lbic/internal/trace"
)

// Params configures the hierarchy timing. The zero value is not valid; use
// DefaultParams for the paper's Table 1 baseline.
type Params struct {
	L1 Geometry
	L2 Geometry
	// HitLat is the L1 hit latency in cycles.
	HitLat int
	// L2Lat is the L1-miss to L2 access latency in cycles.
	L2Lat int
	// MemLat is the additional main-memory latency on an L2 miss.
	MemLat int
	// MSHRs bounds concurrently outstanding missed lines.
	MSHRs int
	// MaxTargets bounds requests attached to one MSHR.
	MaxTargets int
	// MaxPending bounds in-flight L1-to-L2 requests.
	MaxPending int
	// L2PerCycle is how many new miss requests the L1-to-L2 path accepts
	// per cycle; the paper's fully pipelined path accepts one (0 = 1).
	L2PerCycle int
}

// DefaultParams returns the paper's Table 1 / §2.1 memory system: 32KB
// direct-mapped L1 with 32B lines and 1-cycle hits, 512KB 4-way L2 with 64B
// lines and 4-cycle access, 10-cycle main memory, 64 outstanding misses.
func DefaultParams() Params {
	return Params{
		L1:         Geometry{Size: 32 << 10, LineSize: 32, Assoc: 1},
		L2:         Geometry{Size: 512 << 10, LineSize: 64, Assoc: 4},
		HitLat:     1,
		L2Lat:      4,
		MemLat:     10,
		MSHRs:      64,
		MaxTargets: 16,
		MaxPending: 64,
	}
}

// Validate checks the parameters.
func (p Params) Validate() error {
	if err := p.L1.Validate(); err != nil {
		return fmt.Errorf("L1: %w", err)
	}
	if err := p.L2.Validate(); err != nil {
		return fmt.Errorf("L2: %w", err)
	}
	if p.L2.LineSize < p.L1.LineSize {
		return fmt.Errorf("cache: L2 line size %d smaller than L1 line size %d", p.L2.LineSize, p.L1.LineSize)
	}
	if p.HitLat < 1 || p.L2Lat < 1 || p.MemLat < 0 {
		return fmt.Errorf("cache: invalid latencies hit=%d l2=%d mem=%d", p.HitLat, p.L2Lat, p.MemLat)
	}
	if p.MSHRs < 1 || p.MaxTargets < 1 || p.MaxPending < 1 {
		return fmt.Errorf("cache: invalid mshr configuration %d/%d/%d", p.MSHRs, p.MaxTargets, p.MaxPending)
	}
	if p.L2PerCycle < 0 {
		return fmt.Errorf("cache: negative L2 bandwidth %d", p.L2PerCycle)
	}
	return nil
}

// Outcome classifies an Access.
type Outcome int

const (
	// Hit: the request completes after HitLat cycles.
	Hit Outcome = iota
	// Miss: the request is attached to an MSHR and completes when the fill
	// arrives (a Completion will be emitted).
	Miss
	// Blocked: no MSHR or target slot was available; the requester must
	// retry. The consumed port cycle is lost, as in real hardware.
	Blocked
)

// String returns the outcome name.
func (o Outcome) String() string {
	switch o {
	case Hit:
		return "hit"
	case Miss:
		return "miss"
	case Blocked:
		return "blocked"
	default:
		return "outcome(?)"
	}
}

// Completion reports a finished request. Token is the caller's opaque
// request identifier; At is the cycle the result is available to dependents.
type Completion struct {
	Token int64
	At    uint64
}

// Stats aggregates hierarchy activity.
type Stats struct {
	Accesses    uint64 // L1 lookups performed
	Hits        uint64
	MissesNew   uint64 // demand misses allocating an MSHR
	MissesMerge uint64 // misses attached to an existing MSHR
	Blocked     uint64 // accesses rejected for MSHR/target exhaustion
	L2Accesses  uint64
	L2Misses    uint64
	Writebacks  uint64 // dirty L1 victims written to L2
	Fills       uint64
}

// MissRate returns demand misses (new + merged) over accesses.
func (s Stats) MissRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.MissesNew+s.MissesMerge) / float64(s.Accesses)
}

type mshr struct {
	line    uint64 // L1 line address
	store   bool   // a store is waiting: install dirty
	sent    bool
	targets []int64
}

// Hierarchy is the timed two-level memory system. Drive it one cycle at a
// time: call Advance(now) once per cycle (before issuing that cycle's
// accesses), then Access for each granted request, then collect Completions
// with Drain.
type Hierarchy struct {
	params    Params
	l1        *Array
	l2        *Array
	mshrs     map[uint64]*mshr
	mshrPool  []*mshr    // retired mshr structs, recycled to avoid allocation
	queue     []uint64   // line addresses with unsent L2 requests, FIFO from qHead
	qHead     int        // consumed prefix of queue (compacted, never regrown)
	fills     [][]uint64 // fill events, a ring indexed by cycle
	fillMask  uint64
	sendBW    int // L2 requests per cycle
	sendLeft  int // request slots remaining this cycle
	pendingL2 int

	completed []Completion
	drained   []Completion // previous Drain result, recycled as next buffer
	stats     Stats

	// Observability: per-cycle MSHR occupancy (sampled in Advance) and an
	// optional structured event sink.
	mshrOcc   *metrics.Histogram
	events    trace.EventSink
	lineShift uint // log2(L1 line size), for event line numbers
}

// NewHierarchy returns an empty hierarchy.
func NewHierarchy(p Params) (*Hierarchy, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	bw := p.L2PerCycle
	if bw == 0 {
		bw = 1
	}
	// Size the fill ring to the next power of two above the total miss
	// latency, so any configured latency fits.
	ring := 2
	for ring <= p.L2Lat+p.MemLat+1 {
		ring *= 2
	}
	l1, err := NewArray(p.L1)
	if err != nil {
		return nil, fmt.Errorf("cache: L1: %w", err)
	}
	l2, err := NewArray(p.L2)
	if err != nil {
		return nil, fmt.Errorf("cache: L2: %w", err)
	}
	return &Hierarchy{
		params:   p,
		l1:       l1,
		l2:       l2,
		mshrs:    make(map[uint64]*mshr),
		sendBW:   bw,
		fills:    make([][]uint64, ring),
		fillMask: uint64(ring - 1),
		mshrOcc: metrics.NewHistogram("mem.mshr_occupancy",
			"live MSHRs per cycle (memory-level parallelism in flight)",
			"mshrs", p.MSHRs+1),
		lineShift: uint(p.L1.LineBits()),
	}, nil
}

// SetEventSink directs the structured event trace to s (nil disables it).
func (h *Hierarchy) SetEventSink(s trace.EventSink) { h.events = s }

// MSHROccupancy returns the live per-cycle MSHR occupancy histogram.
func (h *Hierarchy) MSHROccupancy() *metrics.Histogram { return h.mshrOcc }

// Params returns the configured parameters.
func (h *Hierarchy) Params() Params { return h.params }

// L1 exposes the L1 array for inspection.
func (h *Hierarchy) L1() *Array { return h.l1 }

// L2 exposes the L2 array for inspection.
func (h *Hierarchy) L2() *Array { return h.l2 }

// Stats returns a snapshot of the counters.
func (h *Hierarchy) Stats() Stats { return h.stats }

// OutstandingMisses returns the number of live MSHRs.
func (h *Hierarchy) OutstandingMisses() int { return len(h.mshrs) }

// Advance performs the per-cycle work for cycle now: deliver fills due this
// cycle (installing lines, completing attached requests) and send at most one
// queued miss request to L2. Call exactly once per cycle, before Access.
func (h *Hierarchy) Advance(now uint64) {
	h.mshrOcc.Observe(len(h.mshrs))
	// Deliver fills scheduled for this cycle.
	slot := now & h.fillMask
	for _, line := range h.fills[slot] {
		h.fill(now, line)
	}
	h.fills[slot] = h.fills[slot][:0]

	// Up to sendBW new L2 requests per cycle, queued misses first.
	h.sendLeft = h.sendBW
	for h.sendLeft > 0 && h.qHead < len(h.queue) && h.pendingL2 < h.params.MaxPending {
		line := h.queue[h.qHead]
		h.qHead++
		h.send(now, line)
		h.sendLeft--
	}
	if h.qHead == len(h.queue) {
		h.queue = h.queue[:0]
		h.qHead = 0
	}
}

// NextActivity returns the earliest cycle strictly after now at which the
// hierarchy has self-scheduled work — a fill due, or a queued L2 request it
// could send. It returns MaxUint64 when fully idle. The core's fast-forward
// uses it to bound how far it may safely skip.
func (h *Hierarchy) NextActivity(now uint64) uint64 {
	if h.qHead < len(h.queue) && h.pendingL2 < h.params.MaxPending {
		return now + 1
	}
	ring := uint64(len(h.fills))
	for d := uint64(1); d < ring; d++ {
		if len(h.fills[(now+d)&h.fillMask]) > 0 {
			return now + d
		}
	}
	return math.MaxUint64
}

// SkipCycles accounts n elided idle cycles. On a cycle with no fill due and
// nothing sendable, Advance's only observable effect is the MSHR occupancy
// sample, which is constant across the span — so a fast-forwarded run's
// histogram is bit-identical to a stepped run's.
func (h *Hierarchy) SkipCycles(n uint64) {
	h.mshrOcc.ObserveN(len(h.mshrs), n)
}

// send issues the L2 lookup for an L1 line and schedules its fill.
func (h *Hierarchy) send(now uint64, line uint64) {
	m := h.mshrs[line]
	if m == nil || m.sent {
		return
	}
	m.sent = true
	h.pendingL2++
	h.stats.L2Accesses++
	lat := h.params.L2Lat
	if !h.l2.Access(line, false) {
		h.stats.L2Misses++
		lat += h.params.MemLat
		// Allocate in L2 now; a dirty L2 victim goes to memory (no timing
		// effect at 10-cycle flat latency, but it is counted by the array).
		h.l2.Install(line, false)
	}
	at := now + uint64(lat)
	h.fills[at&h.fillMask] = append(h.fills[at&h.fillMask], line)
}

// fill installs a returned line into L1 and completes attached requests.
func (h *Hierarchy) fill(now uint64, line uint64) {
	m := h.mshrs[line]
	if m == nil {
		return
	}
	delete(h.mshrs, line)
	h.pendingL2--
	h.stats.Fills++
	victim, victimDirty, evicted := h.l1.Install(line, m.store)
	if evicted && victimDirty {
		h.stats.Writebacks++
		if h.events != nil {
			h.events.Emit(trace.Event{Cycle: now, Kind: trace.EvWriteback, Seq: -1,
				Bank: -1, Line: victim >> h.lineShift})
		}
		// Write the victim back into L2 (it may itself miss there; the
		// write buffer absorbs the latency, so only state is updated).
		if !h.l2.Access(victim, true) {
			h.l2.Install(victim, true)
		}
	}
	for _, t := range m.targets {
		h.completed = append(h.completed, Completion{Token: t, At: now + 1})
	}
	h.mshrPool = append(h.mshrPool, m)
}

// newMSHR recycles a retired mshr or allocates the pool's first few.
func (h *Hierarchy) newMSHR(line uint64) *mshr {
	if n := len(h.mshrPool); n > 0 {
		m := h.mshrPool[n-1]
		h.mshrPool = h.mshrPool[:n-1]
		*m = mshr{line: line, targets: m.targets[:0]}
		return m
	}
	return &mshr{line: line}
}

// Access performs one granted L1 access at cycle now. The token identifies
// the request in later Completions. On Hit a Completion at now+HitLat is
// queued immediately.
func (h *Hierarchy) Access(now uint64, addr uint64, write bool, token int64) Outcome {
	h.stats.Accesses++
	if h.l1.Access(addr, write) {
		h.stats.Hits++
		h.completed = append(h.completed, Completion{Token: token, At: now + uint64(h.params.HitLat)})
		return Hit
	}
	line := h.params.L1.LineAddr(addr)
	m := h.mshrs[line]
	if m == nil {
		if len(h.mshrs) >= h.params.MSHRs {
			h.stats.Blocked++
			return Blocked
		}
		m = h.newMSHR(line)
		h.mshrs[line] = m
		h.stats.MissesNew++
		if h.events != nil {
			h.events.Emit(trace.Event{Cycle: now, Kind: trace.EvMiss, Seq: -1,
				Bank: -1, Line: line >> h.lineShift})
		}
		// Send immediately if a request slot remains this cycle, else queue.
		if h.sendLeft > 0 && h.pendingL2 < h.params.MaxPending {
			h.sendLeft--
			if write {
				m.store = true
			}
			m.targets = append(m.targets, token)
			h.send(now, line)
			return Miss
		}
		h.queue = append(h.queue, line)
	} else {
		if len(m.targets) >= h.params.MaxTargets {
			h.stats.Blocked++
			return Blocked
		}
		h.stats.MissesMerge++
	}
	if write {
		m.store = true
	}
	m.targets = append(m.targets, token)
	return Miss
}

// Drain returns the completions accumulated since the last call. The caller
// owns the returned slice until the next Drain (the two buffers alternate).
func (h *Hierarchy) Drain() []Completion {
	c := h.completed
	h.completed = h.drained[:0]
	h.drained = c
	return c
}
