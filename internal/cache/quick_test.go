package cache

import (
	"testing"
	"testing/quick"
)

// Hierarchy property tests: drive random access sequences through the timed
// hierarchy and check global invariants.

type hierOp struct {
	addr  uint64
	write bool
	gap   uint8 // idle cycles before this access
}

func genOps(addrs []uint32, writes []bool, gaps []uint8) []hierOp {
	n := len(addrs)
	ops := make([]hierOp, 0, n)
	for i := 0; i < n; i++ {
		op := hierOp{addr: 0x10000 + uint64(addrs[i])%(1<<22)}
		if i < len(writes) {
			op.write = writes[i]
		}
		if i < len(gaps) {
			op.gap = gaps[i] % 4
		}
		ops = append(ops, op)
	}
	return ops
}

// Every access eventually yields exactly one completion (hit or via fill),
// unless it was Blocked; and accounting identities hold throughout.
func TestHierarchyCompletionConservationQuick(t *testing.T) {
	f := func(addrs []uint32, writes []bool, gaps []uint8) bool {
		h, err := NewHierarchy(DefaultParams())
		if err != nil {
			return false
		}
		ops := genOps(addrs, writes, gaps)
		now := uint64(0)
		issued := 0
		completions := 0
		token := int64(0)
		for _, op := range ops {
			for g := uint8(0); g <= op.gap; g++ {
				h.Advance(now)
				completions += len(h.Drain())
				now++
			}
			// Access within the last advanced cycle.
			switch h.Access(now-1, op.addr, op.write, token) {
			case Blocked:
			default:
				issued++
			}
			token++
		}
		// Drain everything outstanding.
		for i := 0; i < 64; i++ {
			h.Advance(now)
			completions += len(h.Drain())
			now++
		}
		if completions != issued {
			return false
		}
		s := h.Stats()
		if s.Hits+s.MissesNew+s.MissesMerge+s.Blocked != s.Accesses {
			return false
		}
		if h.OutstandingMisses() != 0 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// The L1 never exceeds its capacity and the fill count matches the demand
// misses that were not blocked.
func TestHierarchyFillAccountingQuick(t *testing.T) {
	f := func(addrs []uint32) bool {
		h, err := NewHierarchy(DefaultParams())
		if err != nil {
			return false
		}
		now := uint64(0)
		for i, raw := range addrs {
			h.Advance(now)
			h.Drain()
			h.Access(now, 0x10000+uint64(raw)%(1<<24), i%3 == 0, int64(i))
			now++
		}
		for i := 0; i < 64; i++ {
			h.Advance(now)
			h.Drain()
			now++
		}
		s := h.Stats()
		if s.Fills != s.MissesNew {
			return false
		}
		capacity := DefaultParams().L1.Size / DefaultParams().L1.LineSize
		return h.L1().Lines() <= capacity
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Repeating the same address stream twice costs the same or fewer misses the
// second time (the cache only gets warmer; with a bounded stream inside
// capacity it must be strictly warmer).
func TestHierarchyWarmupQuick(t *testing.T) {
	f := func(addrs []uint16) bool {
		if len(addrs) == 0 {
			return true
		}
		h, err := NewHierarchy(DefaultParams())
		if err != nil {
			return false
		}
		now := uint64(0)
		pass := func() uint64 {
			before := h.Stats().MissesNew + h.Stats().MissesMerge
			for i, raw := range addrs {
				h.Advance(now)
				h.Drain()
				// Confine to 16KB so both passes fit in the 32KB L1.
				h.Access(now, 0x10000+uint64(raw)%(16<<10), i%4 == 0, int64(i))
				now++
			}
			for i := 0; i < 64; i++ {
				h.Advance(now)
				h.Drain()
				now++
			}
			return h.Stats().MissesNew + h.Stats().MissesMerge - before
		}
		first := pass()
		second := pass()
		return second <= first
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
