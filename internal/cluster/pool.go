package cluster

import (
	"context"
	"log/slog"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"lbic/client"
)

// PoolOptions configures worker membership tracking.
type PoolOptions struct {
	// Interval is the heartbeat period. Default 1s.
	Interval time.Duration
	// Timeout bounds each heartbeat probe. Default: Interval.
	Timeout time.Duration
	// EvictAfter is how many consecutive missed heartbeats evict a worker.
	// One successful heartbeat readmits it. Default 3.
	EvictAfter int
	// HTTPClient issues the probes (and is shared with dispatch when the
	// Dispatcher is built over this pool). Default: a client with sane
	// connection reuse.
	HTTPClient *http.Client
	// Log receives membership transitions. Default: discard.
	Log *slog.Logger
}

func (o PoolOptions) withDefaults() PoolOptions {
	if o.Interval <= 0 {
		o.Interval = time.Second
	}
	if o.Timeout <= 0 {
		o.Timeout = o.Interval
	}
	if o.EvictAfter <= 0 {
		o.EvictAfter = 3
	}
	if o.HTTPClient == nil {
		o.HTTPClient = &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: 16}}
	}
	if o.Log == nil {
		o.Log = slog.New(discardHandler{})
	}
	return o
}

// discardHandler is a no-op slog.Handler (slog.DiscardHandler is go1.24+;
// keep an explicit one so the package's floor stays the module's).
type discardHandler struct{}

func (discardHandler) Enabled(context.Context, slog.Level) bool  { return false }
func (discardHandler) Handle(context.Context, slog.Record) error { return nil }
func (discardHandler) WithAttrs([]slog.Attr) slog.Handler        { return discardHandler{} }
func (discardHandler) WithGroup(string) slog.Handler             { return discardHandler{} }

// Worker is one cluster member as the coordinator tracks it.
type Worker struct {
	addr string
	c    *client.Client

	mu       sync.Mutex
	healthy  bool
	fails    int
	lastSeen time.Time
	maxPar   int
	queued   int

	dispatched atomic.Uint64
	served     atomic.Uint64
	errors     atomic.Uint64
}

// Addr returns the worker's base URL.
func (w *Worker) Addr() string { return w.addr }

// Client returns the worker's API client.
func (w *Worker) Client() *client.Client { return w.c }

// Healthy reports the current heartbeat verdict.
func (w *Worker) Healthy() bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.healthy
}

// Pool tracks a fixed set of workers by periodic heartbeat — a poll of each
// worker's /healthz, whose response carries the worker's advertised
// capacity. A worker that misses EvictAfter consecutive heartbeats is
// evicted (no longer offered cells); the next successful heartbeat readmits
// it. Eviction re-shards automatically: the ring is built over all
// configured workers, and Sequence filters to the currently-healthy ones, so
// a dead worker's keys deterministically fall to their next-preferred
// member and return home when it is readmitted.
type Pool struct {
	opts    PoolOptions
	workers []*Worker
	byAddr  map[string]*Worker
	ring    *Ring
}

// NewPool returns a pool over the worker base URLs. Workers start
// optimistically healthy — a cold coordinator should try dispatching before
// its first heartbeat round lands — and are evicted on real failures.
func NewPool(addrs []string, opts PoolOptions) *Pool {
	opts = opts.withDefaults()
	p := &Pool{opts: opts, byAddr: make(map[string]*Worker, len(addrs))}
	for _, a := range addrs {
		if a == "" || p.byAddr[a] != nil {
			continue
		}
		c := client.New(a)
		c.HTTPClient = opts.HTTPClient
		w := &Worker{addr: a, c: c, healthy: true}
		p.workers = append(p.workers, w)
		p.byAddr[a] = w
	}
	members := make([]string, len(p.workers))
	for i, w := range p.workers {
		members[i] = w.addr
	}
	p.ring = NewRing(members)
	return p
}

// Len returns the number of configured workers.
func (p *Pool) Len() int { return len(p.workers) }

// Start launches the heartbeat loop (an immediate probe round, then one per
// interval) until ctx is done.
func (p *Pool) Start(ctx context.Context) {
	go func() {
		p.ProbeAll(ctx)
		t := time.NewTicker(p.opts.Interval)
		defer t.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case <-t.C:
				p.ProbeAll(ctx)
			}
		}
	}()
}

// ProbeAll heartbeats every worker once, concurrently, and applies the
// eviction/readmission rules. Exported for tests and for callers that want
// a synchronous membership refresh before a critical dispatch.
func (p *Pool) ProbeAll(ctx context.Context) {
	var wg sync.WaitGroup
	for _, w := range p.workers {
		wg.Add(1)
		go func(w *Worker) {
			defer wg.Done()
			p.probe(ctx, w)
		}(w)
	}
	wg.Wait()
}

func (p *Pool) probe(ctx context.Context, w *Worker) {
	hctx, cancel := context.WithTimeout(ctx, p.opts.Timeout)
	defer cancel()
	h, err := w.c.Health(hctx)
	w.mu.Lock()
	wasHealthy := w.healthy
	if err != nil {
		w.fails++
		if w.fails >= p.opts.EvictAfter {
			w.healthy = false
		}
	} else {
		w.fails = 0
		w.healthy = true
		w.lastSeen = time.Now()
		w.maxPar = h.MaxParallel
		w.queued = h.QueuedCells
	}
	isHealthy := w.healthy
	fails := w.fails
	w.mu.Unlock()
	if wasHealthy && !isHealthy {
		p.opts.Log.Warn("cluster: worker evicted", "addr", w.addr, "consecutive_fails", fails, "err", err)
	} else if !wasHealthy && isHealthy {
		p.opts.Log.Info("cluster: worker readmitted", "addr", w.addr)
	}
}

// Sequence returns the key's preference-ordered healthy workers: the
// consistent-hash walk over all configured workers, filtered to members
// that are currently admitted. Empty when every worker is evicted — the
// caller should degrade to local execution.
func (p *Pool) Sequence(key string) []*Worker {
	var out []*Worker
	for _, addr := range p.ring.Sequence(key, 0) {
		if w := p.byAddr[addr]; w != nil && w.Healthy() {
			out = append(out, w)
		}
	}
	return out
}

// HealthyCount returns how many workers are currently admitted.
func (p *Pool) HealthyCount() int {
	n := 0
	for _, w := range p.workers {
		if w.Healthy() {
			n++
		}
	}
	return n
}

// Status snapshots every worker's membership state for /v1/cluster.
func (p *Pool) Status() []client.ClusterWorker {
	out := make([]client.ClusterWorker, 0, len(p.workers))
	for _, w := range p.workers {
		w.mu.Lock()
		cw := client.ClusterWorker{
			Addr:               w.addr,
			Healthy:            w.healthy,
			ConsecutiveFails:   w.fails,
			LastSeenAgeSeconds: -1,
			MaxParallel:        w.maxPar,
			QueuedCells:        w.queued,
		}
		if !w.lastSeen.IsZero() {
			cw.LastSeenAgeSeconds = time.Since(w.lastSeen).Seconds()
		}
		w.mu.Unlock()
		cw.Dispatched = w.dispatched.Load()
		cw.Served = w.served.Load()
		cw.Errors = w.errors.Load()
		out = append(out, cw)
	}
	return out
}
