package cluster

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

func TestStoreRoundTrip(t *testing.T) {
	s, err := OpenStore(t.TempDir(), "fp-1")
	if err != nil {
		t.Fatal(err)
	}
	const key = "sim/compress/lbic-4x2/i1000000"
	report := []byte(`{"schema":"lbic-run-report/v1","cycles":42}`)
	if _, ok := s.Get(key); ok {
		t.Fatal("Get on empty store hit")
	}
	s.Put(key, report)
	got, ok := s.Get(key)
	if !ok {
		t.Fatal("Get missed after Put")
	}
	if !bytes.Equal(got, report) {
		t.Errorf("Get = %s, want the exact stored bytes %s", got, report)
	}
	st := s.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Puts != 1 {
		t.Errorf("Stats = %+v, want 1 hit / 1 miss / 1 put", st)
	}
}

func TestStoreSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	s1, err := OpenStore(dir, "fp-1")
	if err != nil {
		t.Fatal(err)
	}
	s1.Put("k", []byte(`{"x":1}`))
	s2, err := OpenStore(dir, "fp-1")
	if err != nil {
		t.Fatal(err)
	}
	if got, ok := s2.Get("k"); !ok || !bytes.Equal(got, []byte(`{"x":1}`)) {
		t.Errorf("reopened store Get = %s, %v; want the stored report", got, ok)
	}
}

func TestStoreFingerprintIsolation(t *testing.T) {
	dir := t.TempDir()
	s1, _ := OpenStore(dir, "rev-a")
	s2, _ := OpenStore(dir, "rev-b")
	s1.Put("k", []byte(`{"x":1}`))
	if _, ok := s2.Get("k"); ok {
		t.Error("a report computed under rev-a was served under rev-b")
	}
}

func TestStoreRejectsTamperedEntry(t *testing.T) {
	dir := t.TempDir()
	s, _ := OpenStore(dir, "fp")
	s.Put("k", []byte(`{"x":1}`))
	// Corrupt the entry on disk; the read-time address re-verification must
	// turn it into a miss, never into served garbage.
	var path string
	filepath.Walk(dir, func(p string, info os.FileInfo, err error) error {
		if err == nil && !info.IsDir() {
			path = p
		}
		return nil
	})
	if path == "" {
		t.Fatal("no entry written")
	}
	if err := os.WriteFile(path, []byte(`{"schema":"lbic-sim-request/v1","fingerprint":"fp","key":"OTHER","report":{"x":1}}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get("k"); ok {
		t.Error("tampered entry served")
	}
	if err := os.WriteFile(path, []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get("k"); ok {
		t.Error("corrupt entry served")
	}
}

func TestStoreNilSafe(t *testing.T) {
	var s *Store
	if _, ok := s.Get("k"); ok {
		t.Error("nil store hit")
	}
	s.Put("k", []byte("x")) // must not panic
	if st := s.Stats(); st != (StoreStats{}) {
		t.Errorf("nil store Stats = %+v", st)
	}
}
