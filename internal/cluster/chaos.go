package cluster

import (
	"log/slog"
	"math/rand"
	"net/http"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"
)

// ChaosOptions configures the fault-injection middleware a worker mounts in
// front of its handler. Chaos is the drill ground for the cluster's
// robustness story: dropped connections exercise retry-onto-another-worker,
// injected latency exercises hedging, and self-SIGKILL exercises eviction,
// re-sharding, and the byte-identical-completion guarantee.
type ChaosOptions struct {
	// DropRate is the probability in [0, 1] that an API request's connection
	// is severed without a response (the client sees a transport error, as if
	// the process died mid-request).
	DropRate float64
	// Slow adds fixed latency before handling each API request.
	Slow time.Duration
	// KillAfter > 0 SIGKILLs this process after serving that many
	// /v1/simulate requests — a crash mid-job, not a graceful drain.
	KillAfter int
	// Seed makes the drop pattern reproducible. 0 seeds from the clock.
	Seed int64
	// Log announces injected faults. Default: discard.
	Log *slog.Logger
}

// Chaos wraps next with fault injection per opts. Faults apply to /v1/*
// routes only: /healthz and /metrics stay honest so membership and drill
// observability describe the truth while the load path misbehaves.
// (A SIGKILL takes the whole process, heartbeats included — that is the
// point.) With zero options the handler is returned unwrapped.
func Chaos(next http.Handler, opts ChaosOptions) http.Handler {
	if opts.DropRate <= 0 && opts.Slow <= 0 && opts.KillAfter <= 0 {
		return next
	}
	log := opts.Log
	if log == nil {
		log = slog.New(discardHandler{})
	}
	seed := opts.Seed
	if seed == 0 {
		seed = time.Now().UnixNano()
	}
	c := &chaos{next: next, opts: opts, log: log, rng: rand.New(rand.NewSource(seed))}
	return c
}

type chaos struct {
	next   http.Handler
	opts   ChaosOptions
	log    *slog.Logger
	mu     sync.Mutex
	rng    *rand.Rand
	served atomic.Int64
}

func (c *chaos) roll() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.rng.Float64()
}

func (c *chaos) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if !strings.HasPrefix(r.URL.Path, "/v1/") {
		c.next.ServeHTTP(w, r)
		return
	}
	if c.opts.DropRate > 0 && c.roll() < c.opts.DropRate {
		c.log.Warn("chaos: dropping connection", "path", r.URL.Path)
		// ErrAbortHandler tears the connection down with no response — the
		// client-visible signature of a process dying mid-request.
		panic(http.ErrAbortHandler)
	}
	if c.opts.Slow > 0 {
		select {
		case <-time.After(c.opts.Slow):
		case <-r.Context().Done():
			return
		}
	}
	c.next.ServeHTTP(w, r)
	if c.opts.KillAfter > 0 && r.URL.Path == "/v1/simulate" {
		if n := c.served.Add(1); int(n) == c.opts.KillAfter {
			c.log.Warn("chaos: kill-after reached, SIGKILLing self", "served", n)
			syscall.Kill(os.Getpid(), syscall.SIGKILL)
		}
	}
}
