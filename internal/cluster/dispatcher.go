package cluster

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"sync/atomic"
	"time"

	"lbic/client"
	"lbic/internal/runner"
)

// ErrUnavailable wraps the terminal dispatch failure when the cluster could
// not serve a cell — no healthy workers, or every attempt failed. The
// coordinator's server reacts by degrading gracefully: it runs the cell
// in-process and the sweep completes anyway.
var ErrUnavailable = errors.New("cluster: cell unavailable")

// Options configures a Dispatcher.
type Options struct {
	// Attempts bounds dispatch attempts per cell, each onto the next worker
	// in the key's preference sequence. Default 3.
	Attempts int
	// Backoff schedules the wait between attempts (deterministic per cell
	// key, shared with internal/runner). Zero value = runner.DefaultBackoff.
	Backoff runner.Backoff
	// AttemptTimeout bounds one attempt (primary plus its hedge). Default
	// 5m, matching the server's default per-cell deadline; < 0 for none.
	AttemptTimeout time.Duration
	// HedgeAfter fires a duplicate dispatch onto the next preferred worker
	// when the primary has not answered within this window; the first result
	// wins and the loser's request is canceled. 0 disables hedging.
	HedgeAfter time.Duration
	// Log receives dispatch-level warnings. Default: discard.
	Log *slog.Logger
}

func (o Options) withDefaults() Options {
	if o.Attempts <= 0 {
		o.Attempts = 3
	}
	if o.AttemptTimeout == 0 {
		o.AttemptTimeout = 5 * time.Minute
	} else if o.AttemptTimeout < 0 {
		o.AttemptTimeout = 0
	}
	if o.Log == nil {
		o.Log = slog.New(discardHandler{})
	}
	return o
}

// Dispatcher routes cells onto a Pool of workers with the full robustness
// story: content-addressed store lookup first, then consistent-hash
// placement, per-cell retry with capped exponential backoff onto a
// different worker, hedged duplicate dispatch for stragglers, and a
// terminal ErrUnavailable that tells the caller to degrade to local
// execution. It implements the server's RemoteExecutor contract.
type Dispatcher struct {
	pool  *Pool
	store *Store // nil = no persistent store
	opts  Options

	dispatched  atomic.Uint64
	remoteOK    atomic.Uint64
	retries     atomic.Uint64
	hedges      atomic.Uint64
	hedgeWins   atomic.Uint64
	unavailable atomic.Uint64
}

// NewDispatcher builds a dispatcher over a pool and an optional store.
func NewDispatcher(pool *Pool, store *Store, opts Options) *Dispatcher {
	return &Dispatcher{pool: pool, store: store, opts: opts.withDefaults()}
}

// Pool returns the dispatcher's worker pool.
func (d *Dispatcher) Pool() *Pool { return d.pool }

// Execute serves one cell from the cluster: store hit, or a worker dispatch
// with retry and hedging. A non-nil error means the cluster could not
// produce the report (wrapped ErrUnavailable unless the context ended) and
// the caller should run the cell locally.
func (d *Dispatcher) Execute(ctx context.Context, req client.SimulateRequest, key string) ([]byte, error) {
	d.dispatched.Add(1)
	if b, ok := d.store.Get(key); ok {
		return b, nil
	}
	lastErr := errors.New("no healthy workers")
	for attempt := 0; attempt < d.opts.Attempts; attempt++ {
		// Re-read the membership every attempt: a worker evicted while this
		// cell was in flight drops out of the sequence, which is exactly the
		// automatic re-sharding of in-flight work.
		seq := d.pool.Sequence(key)
		if len(seq) == 0 {
			break
		}
		if attempt > 0 {
			d.retries.Add(1)
			if err := sleepCtx(ctx, d.opts.Backoff.Delay(key, attempt)); err != nil {
				return nil, err
			}
		}
		primary := seq[attempt%len(seq)]
		var backup *Worker
		if len(seq) > 1 {
			backup = seq[(attempt+1)%len(seq)]
		}
		b, err := d.attempt(ctx, primary, backup, req)
		if err == nil {
			d.remoteOK.Add(1)
			d.store.Put(key, b)
			return b, nil
		}
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		lastErr = err
		d.opts.Log.Warn("cluster: attempt failed", "key", key, "attempt", attempt+1,
			"worker", primary.Addr(), "err", err)
		var apiErr *client.APIError
		if errors.As(err, &apiErr) && apiErr.StatusCode == http.StatusBadRequest {
			// Every worker will reject the same request the same way; let
			// the local (authoritative) execution produce the error.
			break
		}
	}
	d.unavailable.Add(1)
	return nil, fmt.Errorf("%w: %q after %d attempts: %v", ErrUnavailable, key, d.opts.Attempts, lastErr)
}

// attempt runs one dispatch: the primary worker, plus — when the primary
// stalls past HedgeAfter and a distinct backup exists — a hedged duplicate.
// The first success wins and cancels the other request; when both fail the
// primary's error is preferred (the hedge usually fails for the same
// reason, one hop later).
func (d *Dispatcher) attempt(ctx context.Context, primary, backup *Worker, req client.SimulateRequest) ([]byte, error) {
	actx, cancel := context.WithCancel(ctx)
	if d.opts.AttemptTimeout > 0 {
		actx, cancel = context.WithTimeout(ctx, d.opts.AttemptTimeout)
	}
	defer cancel()

	type result struct {
		b     []byte
		err   error
		hedge bool
	}
	ch := make(chan result, 2)
	call := func(w *Worker, hedge bool) {
		w.dispatched.Add(1)
		b, err := w.c.Simulate(actx, req)
		if err != nil {
			w.errors.Add(1)
		} else {
			w.served.Add(1)
		}
		ch <- result{b, err, hedge}
	}
	go call(primary, false)

	var hedgeC <-chan time.Time
	if backup != nil && backup != primary && d.opts.HedgeAfter > 0 {
		t := time.NewTimer(d.opts.HedgeAfter)
		defer t.Stop()
		hedgeC = t.C
	}

	outstanding := 1
	var firstErr error
	for outstanding > 0 {
		select {
		case <-hedgeC:
			hedgeC = nil
			outstanding++
			d.hedges.Add(1)
			go call(backup, true)
		case r := <-ch:
			outstanding--
			if r.err == nil {
				if r.hedge {
					d.hedgeWins.Add(1)
				}
				cancel() // the loser's request is torn down
				return r.b, nil
			}
			if firstErr == nil {
				firstErr = r.err
			}
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	return nil, firstErr
}

// Status snapshots the cluster for GET /v1/cluster.
func (d *Dispatcher) Status() client.ClusterStatus {
	st := client.ClusterStatus{
		Fingerprint: Fingerprint(),
		Workers:     d.pool.Status(),
		Dispatched:  d.dispatched.Load(),
		RemoteOK:    d.remoteOK.Load(),
		Retries:     d.retries.Load(),
		Hedges:      d.hedges.Load(),
		HedgeWins:   d.hedgeWins.Load(),
		Unavailable: d.unavailable.Load(),
	}
	if d.store != nil {
		st.Fingerprint = d.store.Fingerprint()
		ss := d.store.Stats()
		st.StoreHits, st.StoreMisses, st.StorePuts = ss.Hits, ss.Misses, ss.Puts
	}
	return st
}

// sleepCtx waits for d or ctx, whichever first.
func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
