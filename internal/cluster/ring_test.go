package cluster

import (
	"fmt"
	"reflect"
	"testing"
)

func TestRingSequenceDeterministicAndDistinct(t *testing.T) {
	members := []string{"a", "b", "c", "d"}
	r := NewRing(members)
	if r.Len() != 4 {
		t.Fatalf("Len = %d, want 4", r.Len())
	}
	for _, key := range []string{"sim/compress/lbic-4x2/i1000000", "sim/li/bank-4/i1000000", "x"} {
		seq := r.Sequence(key, 0)
		if len(seq) != 4 {
			t.Fatalf("Sequence(%q) = %v, want 4 distinct members", key, seq)
		}
		seen := map[string]bool{}
		for _, m := range seq {
			if seen[m] {
				t.Errorf("Sequence(%q) repeats %q: %v", key, m, seq)
			}
			seen[m] = true
		}
		if again := r.Sequence(key, 0); !reflect.DeepEqual(seq, again) {
			t.Errorf("Sequence(%q) not deterministic: %v vs %v", key, seq, again)
		}
		if r.Owner(key) != seq[0] {
			t.Errorf("Owner(%q) = %q, want sequence head %q", key, r.Owner(key), seq[0])
		}
	}
	if got := r.Sequence("k", 2); len(got) != 2 {
		t.Errorf("Sequence(k, 2) = %v, want 2 members", got)
	}
}

func TestRingRemovalOnlyRemapsOwnedKeys(t *testing.T) {
	full := NewRing([]string{"a", "b", "c"})
	without := NewRing([]string{"a", "b"})
	moved, kept := 0, 0
	for i := 0; i < 2000; i++ {
		key := fmt.Sprintf("sim/bench%d/port/i%d", i, i)
		before := full.Owner(key)
		after := without.Owner(key)
		if before == "c" {
			moved++
			continue // c's keys must move somewhere; anywhere is fine
		}
		if before != after {
			t.Fatalf("key %q moved %q -> %q though its owner stayed a member", key, before, after)
		}
		kept++
	}
	if moved == 0 || kept == 0 {
		t.Fatalf("degenerate distribution: moved=%d kept=%d", moved, kept)
	}
}

func TestRingRoughBalance(t *testing.T) {
	r := NewRing([]string{"w1", "w2", "w3"})
	counts := map[string]int{}
	const n = 3000
	for i := 0; i < n; i++ {
		counts[r.Owner(fmt.Sprintf("sim/k%d", i))]++
	}
	if len(counts) != 3 {
		t.Fatalf("only %d members own keys: %v", len(counts), counts)
	}
	for m, c := range counts {
		// 64 vnodes/member leaves real skew; the bound only catches gross
		// imbalance (a member starved or hoarding).
		if c < n/10 || c > 3*n/4 {
			t.Errorf("member %s owns %d of %d keys — imbalanced: %v", m, c, n, counts)
		}
	}
}

func TestRingEmptyAndDuplicates(t *testing.T) {
	if got := NewRing(nil).Sequence("k", 0); got != nil {
		t.Errorf("empty ring Sequence = %v, want nil", got)
	}
	if got := NewRing(nil).Owner("k"); got != "" {
		t.Errorf("empty ring Owner = %q, want empty", got)
	}
	r := NewRing([]string{"a", "a", "", "b"})
	if r.Len() != 2 {
		t.Errorf("Len = %d, want 2 (duplicates and empties dropped)", r.Len())
	}
}
