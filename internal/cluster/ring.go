// Package cluster turns lbicd into a fault-tolerant sharded sweep plane: a
// coordinator consistent-hashes stable cell keys onto worker processes that
// each serve single cells over the existing lbic-sim-request/v1 API. The
// robustness machinery lives here — worker membership by heartbeat with
// eviction and readmission, per-cell retry with backoff onto a different
// worker, hedged duplicate dispatch for stragglers, a content-addressed
// result store that survives restarts, and a chaos layer for drilling all of
// it. The coordinator's server falls back to in-process execution when no
// worker is reachable, so a cluster of zero workers degrades to exactly the
// single-process lbicd it grew out of.
package cluster

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// ringVnodes is how many virtual nodes each member contributes. 64 keeps
// the load imbalance across a handful of workers in the few-percent range
// while membership changes stay cheap (a rebuild is a sort of N*64 points).
const ringVnodes = 64

// Ring is a consistent-hash ring over member names (worker addresses). A
// key's preference sequence is the ring walk clockwise from the key's hash:
// the first member is its home, the rest are the deterministic fallback
// order. Removing a member only remaps the keys it owned — every other
// key's home is untouched — which is exactly the re-sharding guarantee the
// coordinator leans on when a worker is evicted mid-sweep.
type Ring struct {
	points []ringPoint // sorted by hash
	names  []string    // distinct members, in insertion order
}

type ringPoint struct {
	hash   uint64
	member int // index into names
}

// NewRing builds a ring over the given members. Order does not matter;
// duplicates are ignored.
func NewRing(members []string) *Ring {
	r := &Ring{}
	seen := make(map[string]bool, len(members))
	for _, m := range members {
		if m == "" || seen[m] {
			continue
		}
		seen[m] = true
		idx := len(r.names)
		r.names = append(r.names, m)
		for v := 0; v < ringVnodes; v++ {
			h := fnv.New64a()
			fmt.Fprintf(h, "%s#%d", m, v)
			r.points = append(r.points, ringPoint{hash: mix64(h.Sum64()), member: idx})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].member < r.points[j].member
	})
	return r
}

// Members returns the ring's member names in insertion order.
func (r *Ring) Members() []string { return append([]string(nil), r.names...) }

// Len returns the number of distinct members.
func (r *Ring) Len() int { return len(r.names) }

// Sequence returns up to n distinct members in the key's preference order:
// the walk clockwise around the ring from the key's hash. Deterministic for
// a given membership; n <= 0 or n > Len() returns all members.
func (r *Ring) Sequence(key string, n int) []string {
	if len(r.names) == 0 {
		return nil
	}
	if n <= 0 || n > len(r.names) {
		n = len(r.names)
	}
	h := fnv.New64a()
	h.Write([]byte(key))
	target := mix64(h.Sum64())
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= target })
	out := make([]string, 0, n)
	taken := make(map[int]bool, n)
	for i := 0; i < len(r.points) && len(out) < n; i++ {
		p := r.points[(start+i)%len(r.points)]
		if !taken[p.member] {
			taken[p.member] = true
			out = append(out, r.names[p.member])
		}
	}
	return out
}

// mix64 is the splitmix64 finalizer. FNV over short, similar strings
// ("addr#0", "addr#1", ...) leaves correlated high bits that bunch a
// member's vnodes together on the ring; the finalizer spreads them so the
// per-member load stays near 1/N.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Owner returns the key's home member ("" for an empty ring).
func (r *Ring) Owner(key string) string {
	seq := r.Sequence(key, 1)
	if len(seq) == 0 {
		return ""
	}
	return seq[0]
}
