package cluster

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime/debug"
	"sync"
	"sync/atomic"

	"lbic/client"
)

// Fingerprint identifies the simulation code that produced a report: the
// binary's VCS revision (suffixed "+dirty" for a modified checkout), or
// "dev" when no build info is embedded (go test, go run). Store entries are
// keyed by it so a rebuilt cluster never serves a report computed by
// different code as if it were current.
func Fingerprint() string {
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return "dev"
	}
	rev, dirty := "", false
	for _, kv := range bi.Settings {
		switch kv.Key {
		case "vcs.revision":
			rev = kv.Value
		case "vcs.modified":
			dirty = kv.Value == "true"
		}
	}
	if rev == "" {
		return "dev"
	}
	if dirty {
		return rev + "+dirty"
	}
	return rev
}

// Store is a content-addressed result store: finished cell reports on disk,
// addressed by SHA-256 of (request schema version, cell key, code
// fingerprint). Any worker or coordinator pointed at the same directory —
// including one restarted after a crash, or a whole new cluster — serves a
// cached cell without re-simulating it. Writes are atomic (temp file +
// rename) so a SIGKILL mid-write never leaves a readable-but-wrong entry,
// and every read re-verifies the address fields before trusting the bytes.
type Store struct {
	dir         string
	fingerprint string

	mu   sync.Mutex // serializes writers of the same entry
	hits atomic.Uint64
	miss atomic.Uint64
	puts atomic.Uint64
}

// storeEntry is the on-disk document. The address fields are stored
// alongside the report so a hash collision or a mis-filed entry is detected
// on read instead of silently served. The report rides as a JSON string, not
// an embedded object: string escaping round-trips the served bytes exactly,
// where re-marshaling an embedded RawMessage would compact them and break
// the byte-identical guarantee.
type storeEntry struct {
	Schema      string `json:"schema"`
	Fingerprint string `json:"fingerprint"`
	Key         string `json:"key"`
	Report      string `json:"report"`
}

// OpenStore opens (creating if needed) a store rooted at dir, keyed under
// the given code fingerprint (empty selects Fingerprint()).
func OpenStore(dir, fingerprint string) (*Store, error) {
	if fingerprint == "" {
		fingerprint = Fingerprint()
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("cluster: opening store: %w", err)
	}
	return &Store{dir: dir, fingerprint: fingerprint}, nil
}

// Fingerprint returns the code fingerprint this store reads and writes under.
func (s *Store) Fingerprint() string { return s.fingerprint }

// path maps a cell key to its content address under the store root. Two
// hex digits of fan-out keep directories small at millions of cells.
func (s *Store) path(key string) string {
	sum := sha256.Sum256([]byte(client.RequestSchema + "\x00" + s.fingerprint + "\x00" + key))
	name := hex.EncodeToString(sum[:])
	return filepath.Join(s.dir, name[:2], name+".json")
}

// Get returns the stored report for a cell key, if present and addressed by
// the same schema version and code fingerprint. A nil Store always misses.
func (s *Store) Get(key string) ([]byte, bool) {
	if s == nil {
		return nil, false
	}
	raw, err := os.ReadFile(s.path(key))
	if err != nil {
		s.miss.Add(1)
		return nil, false
	}
	var e storeEntry
	if json.Unmarshal(raw, &e) != nil ||
		e.Schema != client.RequestSchema || e.Fingerprint != s.fingerprint ||
		e.Key != key || len(e.Report) == 0 {
		s.miss.Add(1)
		return nil, false
	}
	s.hits.Add(1)
	return []byte(e.Report), true
}

// Put stores a cell's report. Errors are deliberately swallowed after
// counting — the store is a cache, and a full disk must degrade service to
// "slower", never to "failed".
func (s *Store) Put(key string, report []byte) {
	if s == nil || len(report) == 0 {
		return
	}
	e, err := json.Marshal(storeEntry{
		Schema:      client.RequestSchema,
		Fingerprint: s.fingerprint,
		Key:         key,
		Report:      string(report),
	})
	if err != nil {
		return
	}
	path := s.path(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), ".put-*")
	if err != nil {
		return
	}
	_, werr := tmp.Write(append(e, '\n'))
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		os.Remove(tmp.Name())
		return
	}
	if os.Rename(tmp.Name(), path) != nil {
		os.Remove(tmp.Name())
		return
	}
	s.puts.Add(1)
}

// StoreStats is a snapshot of the store's counters.
type StoreStats struct {
	Hits   uint64 `json:"hits"`
	Misses uint64 `json:"misses"`
	Puts   uint64 `json:"puts"`
}

// Stats snapshots the store's counters. Safe on a nil Store.
func (s *Store) Stats() StoreStats {
	if s == nil {
		return StoreStats{}
	}
	return StoreStats{Hits: s.hits.Load(), Misses: s.miss.Load(), Puts: s.puts.Load()}
}
