package cluster_test

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"lbic"
	"lbic/client"
	"lbic/internal/cluster"
	"lbic/internal/runner"
	"lbic/internal/server"
)

const testInsts = 20_000

// noDelay turns every retry wait off so dispatcher tests never sleep.
var noDelay = runner.Backoff{Base: -1}

// newWorker boots a real lbicd serving plane behind httptest.
func newWorker(t *testing.T) *httptest.Server {
	t.Helper()
	srv := server.New(server.Options{Role: "worker"})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() { ts.Close(); srv.Close() })
	return ts
}

// directReport computes the authoritative bytes for a benchmark cell the
// same way a standalone lbicd would serve them.
func directReport(t *testing.T, bench, portName string, insts uint64) []byte {
	t.Helper()
	prog, err := lbic.BuildBenchmark(bench)
	if err != nil {
		t.Fatal(err)
	}
	port, err := lbic.ParsePortName(portName)
	if err != nil {
		t.Fatal(err)
	}
	cfg := lbic.DefaultConfig()
	cfg.Port = port
	cfg.MaxInsts = insts
	res, err := lbic.Simulate(prog, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := lbic.NewReport(res).WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func simReq(bench, port string) client.SimulateRequest {
	return client.SimulateRequest{
		Schema:    client.RequestSchema,
		Benchmark: bench,
		Port:      client.Port(port),
		Insts:     testInsts,
	}
}

func TestDispatcherServesByteIdenticalReports(t *testing.T) {
	w1, w2 := newWorker(t), newWorker(t)
	pool := cluster.NewPool([]string{w1.URL, w2.URL}, cluster.PoolOptions{})
	d := cluster.NewDispatcher(pool, nil, cluster.Options{Backoff: noDelay})
	got, err := d.Execute(context.Background(), simReq("compress", "lbic-4x2"), "sim/compress/lbic-4x2/i20000")
	if err != nil {
		t.Fatal(err)
	}
	want := directReport(t, "compress", "lbic-4x2", testInsts)
	if !bytes.Equal(got, want) {
		t.Errorf("cluster-served report differs from direct simulation:\n got %s\nwant %s", got, want)
	}
	st := d.Status()
	if st.RemoteOK != 1 || st.Dispatched != 1 {
		t.Errorf("Status = %+v, want 1 dispatched / 1 remoteOK", st)
	}
}

func TestDispatcherRetriesOntoAnotherWorker(t *testing.T) {
	// A worker whose API plane always severs the connection, beside a real
	// one. Whichever is the key's home, every cell must still complete.
	dead := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if strings.HasPrefix(r.URL.Path, "/v1/") {
			panic(http.ErrAbortHandler)
		}
		w.WriteHeader(http.StatusOK)
	}))
	t.Cleanup(dead.Close)
	live := newWorker(t)

	pool := cluster.NewPool([]string{dead.URL, live.URL}, cluster.PoolOptions{})
	d := cluster.NewDispatcher(pool, nil, cluster.Options{Attempts: 3, Backoff: noDelay})

	// Pick a key homed on the dead worker so the first attempt must fail.
	key := ""
	for i := 0; i < 256; i++ {
		k := fmt.Sprintf("sim/compress/lbic-4x2/i20000/k%d", i)
		if seq := pool.Sequence(k); len(seq) > 0 && seq[0].Addr() == dead.URL {
			key = k
			break
		}
	}
	if key == "" {
		t.Fatal("no key homed on the dead worker in 256 tries")
	}
	got, err := d.Execute(context.Background(), simReq("compress", "lbic-4x2"), key)
	if err != nil {
		t.Fatalf("Execute failed despite a healthy fallback worker: %v", err)
	}
	if want := directReport(t, "compress", "lbic-4x2", testInsts); !bytes.Equal(got, want) {
		t.Error("retried report not byte-identical to direct simulation")
	}
	if st := d.Status(); st.Retries == 0 {
		t.Errorf("Status.Retries = 0, want at least one retry; status %+v", st)
	}
}

func TestDispatcherUnavailableWithNoWorkers(t *testing.T) {
	pool := cluster.NewPool(nil, cluster.PoolOptions{})
	d := cluster.NewDispatcher(pool, nil, cluster.Options{Backoff: noDelay})
	_, err := d.Execute(context.Background(), simReq("compress", "true-1"), "k")
	if !errors.Is(err, cluster.ErrUnavailable) {
		t.Errorf("err = %v, want ErrUnavailable", err)
	}
	if st := d.Status(); st.Unavailable != 1 {
		t.Errorf("Status.Unavailable = %d, want 1", st.Unavailable)
	}
}

func TestDispatcherBadRequestShortCircuits(t *testing.T) {
	w := newWorker(t)
	pool := cluster.NewPool([]string{w.URL}, cluster.PoolOptions{})
	d := cluster.NewDispatcher(pool, nil, cluster.Options{Attempts: 5, Backoff: noDelay})
	req := simReq("no-such-benchmark", "true-1")
	_, err := d.Execute(context.Background(), req, "k")
	if !errors.Is(err, cluster.ErrUnavailable) {
		t.Fatalf("err = %v, want wrapped ErrUnavailable (caller degrades to authoritative local error)", err)
	}
	// A 400 means every worker would reject identically: exactly one attempt.
	if st := d.Status(); st.Retries != 0 {
		t.Errorf("Status.Retries = %d, want 0 (400 must not retry)", st.Retries)
	}
}

func TestDispatcherStoreHitSkipsWorkers(t *testing.T) {
	store, err := cluster.OpenStore(t.TempDir(), "fp")
	if err != nil {
		t.Fatal(err)
	}
	canned := []byte(`{"canned":true}`)
	store.Put("k", canned)
	// No workers at all: only the store can serve this.
	d := cluster.NewDispatcher(cluster.NewPool(nil, cluster.PoolOptions{}), store, cluster.Options{Backoff: noDelay})
	got, err := d.Execute(context.Background(), simReq("compress", "true-1"), "k")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, canned) {
		t.Errorf("store hit returned %s, want %s", got, canned)
	}
}

func TestDispatcherPopulatesStore(t *testing.T) {
	w := newWorker(t)
	store, err := cluster.OpenStore(t.TempDir(), "fp")
	if err != nil {
		t.Fatal(err)
	}
	pool := cluster.NewPool([]string{w.URL}, cluster.PoolOptions{})
	d := cluster.NewDispatcher(pool, store, cluster.Options{Backoff: noDelay})
	const key = "sim/compress/true-1/i20000"
	first, err := d.Execute(context.Background(), simReq("compress", "true-1"), key)
	if err != nil {
		t.Fatal(err)
	}
	// Kill the worker; the store must now serve the same bytes alone.
	w.Close()
	again, err := d.Execute(context.Background(), simReq("compress", "true-1"), key)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first, again) {
		t.Error("store replay differs from the originally served report")
	}
}

func TestDispatcherHedgeWinsOnStraggler(t *testing.T) {
	live := newWorker(t)
	// A straggler that stalls API calls until the dispatcher cancels it (the
	// body read lets the server notice the client-side cancel; the timer
	// bounds teardown if it never arrives).
	slow := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if strings.HasPrefix(r.URL.Path, "/v1/") {
			io.Copy(io.Discard, r.Body)
			select {
			case <-r.Context().Done():
			case <-time.After(5 * time.Second):
			}
			return
		}
		w.WriteHeader(http.StatusOK)
	}))
	t.Cleanup(slow.Close)

	pool := cluster.NewPool([]string{slow.URL, live.URL}, cluster.PoolOptions{})
	d := cluster.NewDispatcher(pool, nil, cluster.Options{
		Backoff:    noDelay,
		HedgeAfter: 20 * time.Millisecond,
	})
	key := ""
	for i := 0; i < 256; i++ {
		k := fmt.Sprintf("hedge/k%d", i)
		if seq := pool.Sequence(k); len(seq) > 0 && seq[0].Addr() == slow.URL {
			key = k
			break
		}
	}
	if key == "" {
		t.Fatal("no key homed on the slow worker in 256 tries")
	}
	got, err := d.Execute(context.Background(), simReq("compress", "true-1"), key)
	if err != nil {
		t.Fatal(err)
	}
	if want := directReport(t, "compress", "true-1", testInsts); !bytes.Equal(got, want) {
		t.Error("hedged report not byte-identical to direct simulation")
	}
	st := d.Status()
	if st.Hedges != 1 || st.HedgeWins != 1 {
		t.Errorf("Status hedges=%d hedgeWins=%d, want 1/1", st.Hedges, st.HedgeWins)
	}
}

func TestPoolEvictionAndReadmission(t *testing.T) {
	srv := server.New(server.Options{Role: "worker"})
	t.Cleanup(srv.Close)
	var failing atomic.Bool
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if failing.Load() {
			w.WriteHeader(http.StatusInternalServerError)
			return
		}
		srv.Handler().ServeHTTP(w, r)
	}))
	t.Cleanup(ts.Close)

	pool := cluster.NewPool([]string{ts.URL}, cluster.PoolOptions{EvictAfter: 3})
	ctx := context.Background()

	pool.ProbeAll(ctx)
	if pool.HealthyCount() != 1 {
		t.Fatal("worker not healthy after a clean probe")
	}

	failing.Store(true)
	pool.ProbeAll(ctx)
	pool.ProbeAll(ctx)
	if pool.HealthyCount() != 1 {
		t.Fatal("worker evicted before EvictAfter consecutive failures")
	}
	pool.ProbeAll(ctx)
	if pool.HealthyCount() != 0 {
		t.Fatal("worker not evicted after EvictAfter consecutive failures")
	}
	if seq := pool.Sequence("k"); len(seq) != 0 {
		t.Errorf("Sequence offers an evicted worker: %v", seq)
	}

	failing.Store(false)
	pool.ProbeAll(ctx)
	if pool.HealthyCount() != 1 {
		t.Fatal("worker not readmitted on the first successful heartbeat")
	}
	if seq := pool.Sequence("k"); len(seq) != 1 {
		t.Errorf("Sequence does not offer the readmitted worker: %v", seq)
	}
}

func TestPoolHeartbeatCarriesCapacity(t *testing.T) {
	w := newWorker(t)
	pool := cluster.NewPool([]string{w.URL}, cluster.PoolOptions{})
	pool.ProbeAll(context.Background())
	st := pool.Status()
	if len(st) != 1 {
		t.Fatalf("Status has %d workers, want 1", len(st))
	}
	if st[0].MaxParallel <= 0 {
		t.Errorf("heartbeat did not carry MaxParallel: %+v", st[0])
	}
	if st[0].LastSeenAgeSeconds < 0 {
		t.Errorf("worker never seen despite successful probe: %+v", st[0])
	}
}

func TestChaosZeroOptionsUnwrapped(t *testing.T) {
	h := http.NewServeMux()
	if got := cluster.Chaos(h, cluster.ChaosOptions{}); got != http.Handler(h) {
		t.Error("zero-option Chaos did not return the handler unwrapped")
	}
}

func TestChaosDropSparesHealthEndpoints(t *testing.T) {
	inner := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "ok")
	})
	ts := httptest.NewServer(cluster.Chaos(inner, cluster.ChaosOptions{DropRate: 1, Seed: 1}))
	t.Cleanup(ts.Close)

	// Membership probes must keep telling the truth while the API misbehaves.
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatalf("/healthz dropped under chaos: %v", err)
	}
	resp.Body.Close()

	if resp, err := http.Get(ts.URL + "/v1/simulate"); err == nil {
		resp.Body.Close()
		t.Fatal("DropRate=1 let an API request through")
	}
}

func TestChaosSlowInjectsLatency(t *testing.T) {
	inner := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {})
	const delay = 60 * time.Millisecond
	ts := httptest.NewServer(cluster.Chaos(inner, cluster.ChaosOptions{Slow: delay}))
	t.Cleanup(ts.Close)
	start := time.Now()
	resp, err := http.Get(ts.URL + "/v1/jobs/x")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if elapsed := time.Since(start); elapsed < delay {
		t.Errorf("request took %v, want at least the injected %v", elapsed, delay)
	}
}
