// Package emu is the functional emulator: it executes an isa.Program against
// a vm.Memory image and yields the dynamic instruction stream consumed by the
// timing core. It plays the role SimpleScalar's functional simulator plays
// underneath sim-outorder.
package emu

import (
	"fmt"
	"math"

	"lbic/internal/isa"
	"lbic/internal/trace"
	"lbic/internal/vm"
)

// Machine executes one program. It implements trace.Stream.
type Machine struct {
	prog *isa.Program
	mem  *vm.Memory
	pc   int
	seq  uint64
	halt bool
	regs [isa.NumRegs]uint64 // FP registers hold float64 bits
}

// New returns a machine ready to execute prog from its entry point, with the
// program's data segments loaded.
func New(prog *isa.Program) (*Machine, error) {
	if err := prog.Validate(); err != nil {
		return nil, err
	}
	m := &Machine{prog: prog, mem: vm.NewMemory(), pc: prog.Entry}
	for _, s := range prog.Data {
		m.mem.Copy(s.Base, s.Bytes)
	}
	return m, nil
}

// Mem exposes the memory image (for tests and post-run inspection).
func (m *Machine) Mem() *vm.Memory { return m.mem }

// Reg returns the current value of an integer register.
func (m *Machine) Reg(r isa.Reg) uint64 {
	if !r.IsInt() {
		panic(fmt.Sprintf("emu: Reg called with non-integer register %s", r))
	}
	return m.regs[r]
}

// FReg returns the current value of an FP register.
func (m *Machine) FReg(r isa.Reg) float64 {
	if !r.IsFP() {
		panic(fmt.Sprintf("emu: FReg called with non-fp register %s", r))
	}
	return math.Float64frombits(m.regs[r])
}

// Halted reports whether the program has executed Halt or run off the end of
// its code.
func (m *Machine) Halted() bool { return m.halt }

// Executed returns the number of dynamic instructions executed so far.
func (m *Machine) Executed() uint64 { return m.seq }

func (m *Machine) get(r isa.Reg) uint64 {
	if r.IsZero() {
		return 0
	}
	return m.regs[r]
}

func (m *Machine) set(r isa.Reg, v uint64) {
	if !r.Valid() || r.IsZero() {
		return
	}
	m.regs[r] = v
}

func (m *Machine) getF(r isa.Reg) float64 { return math.Float64frombits(m.regs[r]) }

func (m *Machine) setF(r isa.Reg, v float64) { m.regs[r] = math.Float64bits(v) }

// Next executes one instruction and fills d with its dynamic record,
// implementing trace.Stream. It returns false once the machine has halted.
// Invalid memory accesses panic with *vm.Fault.
func (m *Machine) Next(d *trace.Dyn) bool {
	if m.halt {
		return false
	}
	if m.pc < 0 || m.pc >= len(m.prog.Code) {
		m.halt = true
		return false
	}
	in := m.prog.Code[m.pc]
	src1, src2 := in.Sources()
	*d = trace.Dyn{
		Seq:   m.seq,
		PC:    m.pc,
		Op:    in.Op,
		Class: in.Op.ClassOf(),
		Src1:  src1,
		Src2:  src2,
		Dst:   in.Dest(),
	}
	m.seq++
	next := m.pc + 1

	switch in.Op {
	case isa.Nop:
	case isa.Halt:
		m.halt = true

	case isa.Add:
		m.set(in.Rd, m.get(in.Rs1)+m.get(in.Rs2))
	case isa.Sub:
		m.set(in.Rd, m.get(in.Rs1)-m.get(in.Rs2))
	case isa.And:
		m.set(in.Rd, m.get(in.Rs1)&m.get(in.Rs2))
	case isa.Or:
		m.set(in.Rd, m.get(in.Rs1)|m.get(in.Rs2))
	case isa.Xor:
		m.set(in.Rd, m.get(in.Rs1)^m.get(in.Rs2))
	case isa.Sll:
		m.set(in.Rd, m.get(in.Rs1)<<(m.get(in.Rs2)&63))
	case isa.Srl:
		m.set(in.Rd, m.get(in.Rs1)>>(m.get(in.Rs2)&63))
	case isa.Sra:
		m.set(in.Rd, uint64(int64(m.get(in.Rs1))>>(m.get(in.Rs2)&63)))
	case isa.Slt:
		m.set(in.Rd, b2u(int64(m.get(in.Rs1)) < int64(m.get(in.Rs2))))
	case isa.Sltu:
		m.set(in.Rd, b2u(m.get(in.Rs1) < m.get(in.Rs2)))

	case isa.Addi:
		m.set(in.Rd, m.get(in.Rs1)+uint64(in.Imm))
	case isa.Andi:
		m.set(in.Rd, m.get(in.Rs1)&uint64(in.Imm))
	case isa.Ori:
		m.set(in.Rd, m.get(in.Rs1)|uint64(in.Imm))
	case isa.Xori:
		m.set(in.Rd, m.get(in.Rs1)^uint64(in.Imm))
	case isa.Slli:
		m.set(in.Rd, m.get(in.Rs1)<<(uint64(in.Imm)&63))
	case isa.Srli:
		m.set(in.Rd, m.get(in.Rs1)>>(uint64(in.Imm)&63))
	case isa.Srai:
		m.set(in.Rd, uint64(int64(m.get(in.Rs1))>>(uint64(in.Imm)&63)))
	case isa.Slti:
		m.set(in.Rd, b2u(int64(m.get(in.Rs1)) < in.Imm))
	case isa.Li:
		m.set(in.Rd, uint64(in.Imm))

	case isa.Mul:
		m.set(in.Rd, m.get(in.Rs1)*m.get(in.Rs2))
	case isa.Div:
		den := int64(m.get(in.Rs2))
		if den == 0 {
			m.set(in.Rd, ^uint64(0))
		} else {
			m.set(in.Rd, uint64(int64(m.get(in.Rs1))/den))
		}
	case isa.Rem:
		den := int64(m.get(in.Rs2))
		if den == 0 {
			m.set(in.Rd, m.get(in.Rs1))
		} else {
			m.set(in.Rd, uint64(int64(m.get(in.Rs1))%den))
		}

	case isa.FAdd:
		m.setF(in.Rd, m.getF(in.Rs1)+m.getF(in.Rs2))
	case isa.FSub:
		m.setF(in.Rd, m.getF(in.Rs1)-m.getF(in.Rs2))
	case isa.FMul:
		m.setF(in.Rd, m.getF(in.Rs1)*m.getF(in.Rs2))
	case isa.FDiv:
		m.setF(in.Rd, m.getF(in.Rs1)/m.getF(in.Rs2))
	case isa.FNeg:
		m.setF(in.Rd, -m.getF(in.Rs1))
	case isa.FAbs:
		m.setF(in.Rd, math.Abs(m.getF(in.Rs1)))
	case isa.CvtIF:
		m.setF(in.Rd, float64(int64(m.get(in.Rs1))))
	case isa.CvtFI:
		m.set(in.Rd, uint64(int64(m.getF(in.Rs1))))
	case isa.FCmpLT:
		m.set(in.Rd, b2u(m.getF(in.Rs1) < m.getF(in.Rs2)))

	case isa.Lb, isa.Lbu, isa.Lw, isa.Lwu, isa.Ld, isa.Fld:
		addr := m.get(in.Rs1) + uint64(in.Imm)
		size := in.Op.MemSize()
		d.Addr, d.Size = addr, uint8(size)
		v := m.mem.Read(addr, size)
		d.Value = v
		switch in.Op {
		case isa.Lb:
			v = uint64(int64(int8(v)))
		case isa.Lw:
			v = uint64(int64(int32(v)))
		}
		m.set(in.Rd, v)

	case isa.Sb, isa.Sw, isa.Sd, isa.Fsd:
		addr := m.get(in.Rs1) + uint64(in.Imm)
		size := in.Op.MemSize()
		d.Addr, d.Size = addr, uint8(size)
		v := m.get(in.Rs2)
		if size < 8 {
			v &= 1<<(8*uint(size)) - 1
		}
		d.Value = v
		m.mem.Write(addr, size, v)

	case isa.Beq:
		if m.get(in.Rs1) == m.get(in.Rs2) {
			next = int(in.Imm)
		}
	case isa.Bne:
		if m.get(in.Rs1) != m.get(in.Rs2) {
			next = int(in.Imm)
		}
	case isa.Blt:
		if int64(m.get(in.Rs1)) < int64(m.get(in.Rs2)) {
			next = int(in.Imm)
		}
	case isa.Bge:
		if int64(m.get(in.Rs1)) >= int64(m.get(in.Rs2)) {
			next = int(in.Imm)
		}
	case isa.J:
		next = int(in.Imm)
	case isa.Jal:
		m.set(in.Rd, uint64(m.pc+1))
		next = int(in.Imm)
	case isa.Jr:
		next = int(m.get(in.Rs1))

	default:
		// A guest-level fault, not an API misuse: unvalidated opcodes can
		// reach here from hand-built programs, and routing through *vm.Fault
		// lets Simulate report "program faulted" instead of panicking.
		panic(&vm.Fault{Addr: uint64(m.pc), Why: fmt.Sprintf(
			"emu: program %q pc %d: unimplemented opcode %s", m.prog.Name, m.pc, in.Op)})
	}

	m.pc = next
	return true
}

func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}
