package emu

import (
	"testing"

	"lbic/internal/isa"
	"lbic/internal/trace"
	"lbic/internal/vm"
)

// run executes the program to completion (or max steps) and returns the
// machine and collected dynamic stream.
func run(t *testing.T, p *isa.Program, max int) (*Machine, []trace.Dyn) {
	t.Helper()
	m, err := New(p)
	if err != nil {
		t.Fatal(err)
	}
	var dyns []trace.Dyn
	var d trace.Dyn
	for i := 0; i < max && m.Next(&d); i++ {
		dyns = append(dyns, d)
	}
	return m, dyns
}

func r(i int) isa.Reg { return isa.R(i) }
func f(i int) isa.Reg { return isa.F(i) }

func TestIntArithmetic(t *testing.T) {
	b := isa.NewBuilder("arith")
	b.Li(r(1), 10)
	b.Li(r(2), 3)
	b.Add(r(3), r(1), r(2))  // 13
	b.Sub(r(4), r(1), r(2))  // 7
	b.Mul(r(5), r(1), r(2))  // 30
	b.Div(r(6), r(1), r(2))  // 3
	b.Rem(r(7), r(1), r(2))  // 1
	b.And(r(8), r(1), r(2))  // 2
	b.Or(r(9), r(1), r(2))   // 11
	b.Xor(r(10), r(1), r(2)) // 9
	b.Halt()
	m, _ := run(t, b.MustBuild(), 100)
	want := map[int]uint64{3: 13, 4: 7, 5: 30, 6: 3, 7: 1, 8: 2, 9: 11, 10: 9}
	for reg, v := range want {
		if got := m.Reg(r(reg)); got != v {
			t.Errorf("r%d = %d, want %d", reg, got, v)
		}
	}
}

func TestShiftsAndCompares(t *testing.T) {
	b := isa.NewBuilder("shift")
	b.Li(r(1), -8)
	b.Slli(r(2), r(1), 2)  // -32
	b.Srai(r(3), r(1), 1)  // -4
	b.Srli(r(4), r(1), 60) // high bits of two's complement -8
	b.Slti(r(5), r(1), 0)  // 1
	b.Li(r(6), 5)
	b.Slt(r(7), r(1), r(6))  // 1 (signed)
	b.Sltu(r(8), r(1), r(6)) // 0 (unsigned: huge > 5)
	b.Halt()
	m, _ := run(t, b.MustBuild(), 100)
	if got := int64(m.Reg(r(2))); got != -32 {
		t.Errorf("slli = %d, want -32", got)
	}
	if got := int64(m.Reg(r(3))); got != -4 {
		t.Errorf("srai = %d, want -4", got)
	}
	if got := m.Reg(r(4)); got != 0xf {
		t.Errorf("srli = %#x, want 0xf", got)
	}
	if m.Reg(r(5)) != 1 || m.Reg(r(7)) != 1 || m.Reg(r(8)) != 0 {
		t.Errorf("compares = %d,%d,%d want 1,1,0", m.Reg(r(5)), m.Reg(r(7)), m.Reg(r(8)))
	}
}

func TestDivisionByZero(t *testing.T) {
	b := isa.NewBuilder("div0")
	b.Li(r(1), 42)
	b.Div(r(2), r(1), r(0))
	b.Rem(r(3), r(1), r(0))
	b.Halt()
	m, _ := run(t, b.MustBuild(), 10)
	if m.Reg(r(2)) != ^uint64(0) {
		t.Errorf("div by zero = %#x, want all ones", m.Reg(r(2)))
	}
	if m.Reg(r(3)) != 42 {
		t.Errorf("rem by zero = %d, want dividend", m.Reg(r(3)))
	}
}

func TestZeroRegisterHardwired(t *testing.T) {
	b := isa.NewBuilder("zero")
	b.Li(r(0), 99) // write discarded
	b.Add(r(1), r(0), r(0))
	b.Halt()
	m, _ := run(t, b.MustBuild(), 10)
	if m.Reg(r(0)) != 0 {
		t.Errorf("r0 = %d, want 0", m.Reg(r(0)))
	}
	if m.Reg(r(1)) != 0 {
		t.Errorf("r1 = %d, want 0", m.Reg(r(1)))
	}
}

func TestFloatingPoint(t *testing.T) {
	b := isa.NewBuilder("fp")
	a := b.Alloc(32, 8)
	b.SetFloat64(a, 1.5)
	b.SetFloat64(a+8, 2.5)
	b.Li(r(1), int64(a))
	b.Fld(f(1), r(1), 0)
	b.Fld(f(2), r(1), 8)
	b.FAdd(f(3), f(1), f(2)) // 4.0
	b.FSub(f(4), f(2), f(1)) // 1.0
	b.FMul(f(5), f(1), f(2)) // 3.75
	b.FDiv(f(6), f(2), f(1)) // 5/3
	b.FNeg(f(7), f(1))       // -1.5
	b.FAbs(f(8), f(7))       // 1.5
	b.FCmpLT(r(2), f(1), f(2))
	b.Fsd(f(3), r(1), 16)
	b.Halt()
	m, _ := run(t, b.MustBuild(), 100)
	if m.FReg(f(3)) != 4.0 || m.FReg(f(4)) != 1.0 || m.FReg(f(5)) != 3.75 {
		t.Errorf("fp arith wrong: %v %v %v", m.FReg(f(3)), m.FReg(f(4)), m.FReg(f(5)))
	}
	if m.FReg(f(7)) != -1.5 || m.FReg(f(8)) != 1.5 {
		t.Errorf("fneg/fabs wrong: %v %v", m.FReg(f(7)), m.FReg(f(8)))
	}
	if m.Reg(r(2)) != 1 {
		t.Error("fcmplt wrong")
	}
	if got := m.Mem().Read(a+16, 8); got != 0x4010000000000000 { // 4.0 bits
		t.Errorf("fsd stored %#x", got)
	}
}

func TestConversions(t *testing.T) {
	b := isa.NewBuilder("cvt")
	b.Li(r(1), -7)
	b.CvtIF(f(1), r(1))
	b.CvtFI(r(2), f(1))
	b.Halt()
	m, _ := run(t, b.MustBuild(), 10)
	if m.FReg(f(1)) != -7.0 {
		t.Errorf("cvt.i.f = %v", m.FReg(f(1)))
	}
	if int64(m.Reg(r(2))) != -7 {
		t.Errorf("cvt.f.i = %d", int64(m.Reg(r(2))))
	}
}

func TestLoadSignExtension(t *testing.T) {
	b := isa.NewBuilder("signext")
	a := b.Alloc(16, 8)
	b.SetByte(a, 0xff)
	b.SetWord32(a+4, 0xffffffff)
	b.Li(r(1), int64(a))
	b.Lb(r(2), r(1), 0)
	b.Lbu(r(3), r(1), 0)
	b.Lw(r(4), r(1), 4)
	b.Lwu(r(5), r(1), 4)
	b.Halt()
	m, _ := run(t, b.MustBuild(), 10)
	if int64(m.Reg(r(2))) != -1 {
		t.Errorf("lb = %d, want -1", int64(m.Reg(r(2))))
	}
	if m.Reg(r(3)) != 0xff {
		t.Errorf("lbu = %#x, want 0xff", m.Reg(r(3)))
	}
	if int64(m.Reg(r(4))) != -1 {
		t.Errorf("lw = %d, want -1", int64(m.Reg(r(4))))
	}
	if m.Reg(r(5)) != 0xffffffff {
		t.Errorf("lwu = %#x", m.Reg(r(5)))
	}
}

func TestLoopAndBranches(t *testing.T) {
	// Sum 1..10 with a loop.
	b := isa.NewBuilder("sum")
	b.Li(r(1), 0)  // sum
	b.Li(r(2), 1)  // i
	b.Li(r(3), 11) // limit
	b.Label("loop")
	b.Add(r(1), r(1), r(2))
	b.Addi(r(2), r(2), 1)
	b.Blt(r(2), r(3), "loop")
	b.Halt()
	m, dyns := run(t, b.MustBuild(), 1000)
	if m.Reg(r(1)) != 55 {
		t.Errorf("sum = %d, want 55", m.Reg(r(1)))
	}
	if len(dyns) != 3+3*10+1 {
		t.Errorf("dynamic count = %d, want 34", len(dyns))
	}
}

func TestJalJr(t *testing.T) {
	b := isa.NewBuilder("call")
	b.Li(r(10), 5)
	b.Jal(r(31), "fn")
	b.Add(r(11), r(10), r(10)) // executes after return: r11 = 12
	b.Halt()
	b.Label("fn")
	b.Addi(r(10), r(10), 1) // r10 = 6
	b.Jr(r(31))
	m, _ := run(t, b.MustBuild(), 100)
	if m.Reg(r(10)) != 6 {
		t.Errorf("fn did not run: r10 = %d", m.Reg(r(10)))
	}
	if m.Reg(r(11)) != 12 {
		t.Errorf("return path wrong: r11 = %d", m.Reg(r(11)))
	}
}

func TestMemcpyProgram(t *testing.T) {
	b := isa.NewBuilder("memcpy")
	src := b.Alloc(64, 8)
	dst := b.Alloc(64, 8)
	for i := 0; i < 8; i++ {
		b.SetWord64(src+uint64(8*i), uint64(i*i+1))
	}
	b.Li(r(1), int64(src))
	b.Li(r(2), int64(dst))
	b.Li(r(3), 8) // count
	b.Label("loop")
	b.Ld(r(4), r(1), 0)
	b.Sd(r(4), r(2), 0)
	b.Addi(r(1), r(1), 8)
	b.Addi(r(2), r(2), 8)
	b.Addi(r(3), r(3), -1)
	b.Bne(r(3), r(0), "loop")
	b.Halt()
	m, dyns := run(t, b.MustBuild(), 1000)
	for i := 0; i < 8; i++ {
		want := uint64(i*i + 1)
		if got := m.Mem().Read(dst+uint64(8*i), 8); got != want {
			t.Errorf("dst[%d] = %d, want %d", i, got, want)
		}
	}
	// Check the dynamic stream has the right memory records.
	loads, stores := 0, 0
	for i := range dyns {
		if dyns[i].IsLoad() {
			loads++
			if dyns[i].Size != 8 {
				t.Errorf("load size %d", dyns[i].Size)
			}
		}
		if dyns[i].IsStore() {
			stores++
		}
	}
	if loads != 8 || stores != 8 {
		t.Errorf("loads/stores = %d/%d, want 8/8", loads, stores)
	}
}

func TestDynRecords(t *testing.T) {
	b := isa.NewBuilder("dyn")
	a := b.Alloc(8, 8)
	b.Li(r(1), int64(a))
	b.Lw(r(2), r(1), 4)
	b.Halt()
	_, dyns := run(t, b.MustBuild(), 10)
	if len(dyns) != 3 {
		t.Fatalf("dyn count = %d", len(dyns))
	}
	ld := dyns[1]
	if !ld.IsLoad() || ld.Addr != a+4 || ld.Size != 4 {
		t.Errorf("load dyn = %+v", ld)
	}
	if ld.Src1 != r(1) || ld.Dst != r(2) {
		t.Errorf("load regs = %s -> %s", ld.Src1, ld.Dst)
	}
	if ld.Seq != 1 {
		t.Errorf("seq = %d, want 1", ld.Seq)
	}
	if dyns[0].Dst != r(1) || dyns[0].Src1 != isa.RegNone {
		t.Errorf("li dyn = %+v", dyns[0])
	}
}

func TestHaltStopsStream(t *testing.T) {
	b := isa.NewBuilder("halt")
	b.Halt()
	b.Li(r(1), 1) // unreachable
	m, dyns := run(t, b.MustBuild(), 10)
	if len(dyns) != 1 {
		t.Errorf("dyn count = %d, want 1", len(dyns))
	}
	if !m.Halted() {
		t.Error("machine should be halted")
	}
	var d trace.Dyn
	if m.Next(&d) {
		t.Error("Next after halt should return false")
	}
}

func TestRunOffEndHalts(t *testing.T) {
	p := &isa.Program{Name: "falloff", Code: []isa.Inst{{Op: isa.Nop}}}
	m, err := New(p)
	if err != nil {
		t.Fatal(err)
	}
	var d trace.Dyn
	if !m.Next(&d) {
		t.Fatal("first Next should succeed")
	}
	if m.Next(&d) {
		t.Error("running off the end should halt")
	}
}

func TestGuardFaultPanics(t *testing.T) {
	b := isa.NewBuilder("nullderef")
	b.Lw(r(1), r(0), 16) // address 16: guard region
	b.Halt()
	m, err := New(b.MustBuild())
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Error("expected fault panic")
		}
	}()
	var d trace.Dyn
	m.Next(&d)
}

func TestDataSegmentsLoaded(t *testing.T) {
	b := isa.NewBuilder("segs")
	a1 := b.Alloc(8, 4096) // force two separate pages
	a2 := b.Alloc(8, 4096)
	b.SetWord64(a1, 111)
	b.SetWord64(a2, 222)
	b.Halt()
	m, _ := run(t, b.MustBuild(), 10)
	if m.Mem().Read(a1, 8) != 111 || m.Mem().Read(a2, 8) != 222 {
		t.Error("data segments not loaded")
	}
}

func TestExecutedCounter(t *testing.T) {
	b := isa.NewBuilder("count")
	b.Nop()
	b.Nop()
	b.Halt()
	m, dyns := run(t, b.MustBuild(), 10)
	if m.Executed() != 3 || len(dyns) != 3 {
		t.Errorf("executed = %d, dyns = %d, want 3", m.Executed(), len(dyns))
	}
}

// TestOpcodeCoverage: every defined opcode executes somewhere in this test
// suite's programs plus this catch-all program, guarding against opcodes
// that decode but were never exercised.
func TestOpcodeCoverage(t *testing.T) {
	b := isa.NewBuilder("coverage")
	a := b.Alloc(64, 8)
	b.SetFloat64(a, 2.0)
	b.SetFloat64(a+8, 4.0)
	r1, r2, r3 := isa.R(1), isa.R(2), isa.R(3)
	f1, f2 := isa.F(1), isa.F(2)
	b.Li(r1, int64(a))
	b.Li(r2, 6)
	b.Nop()
	b.Add(r3, r2, r2)
	b.Sub(r3, r3, r2)
	b.And(r3, r3, r2)
	b.Or(r3, r3, r2)
	b.Xor(r3, r3, r2)
	b.Sll(r3, r3, r2)
	b.Srl(r3, r3, r2)
	b.Sra(r3, r3, r2)
	b.Slt(r3, r3, r2)
	b.Sltu(r3, r3, r2)
	b.Addi(r3, r3, 1)
	b.Andi(r3, r3, 7)
	b.Ori(r3, r3, 8)
	b.Xori(r3, r3, 1)
	b.Slli(r3, r3, 2)
	b.Srli(r3, r3, 1)
	b.Srai(r3, r3, 1)
	b.Slti(r3, r3, 100)
	b.Mul(r3, r3, r2)
	b.Div(r3, r3, r2)
	b.Rem(r3, r3, r2)
	b.Fld(f1, r1, 0)
	b.Fld(f2, r1, 8)
	b.FAdd(f2, f2, f1)
	b.FSub(f2, f2, f1)
	b.FMul(f2, f2, f1)
	b.FDiv(f2, f2, f1)
	b.FNeg(f2, f2)
	b.FAbs(f2, f2)
	b.CvtIF(f2, r2)
	b.CvtFI(r3, f2)
	b.FCmpLT(r3, f1, f2)
	b.Lb(r3, r1, 0)
	b.Lbu(r3, r1, 0)
	b.Lw(r3, r1, 0)
	b.Lwu(r3, r1, 0)
	b.Ld(r3, r1, 0)
	b.Sb(r3, r1, 16)
	b.Sw(r3, r1, 16)
	b.Sd(r3, r1, 16)
	b.Fsd(f1, r1, 24)
	b.Beq(r3, r3, "next")
	b.Label("next")
	b.Bne(r3, r2, "next2")
	b.Label("next2")
	b.Blt(r2, r3, "next3")
	b.Label("next3")
	b.Bge(r3, r2, "next4")
	b.Label("next4")
	b.Jal(isa.R(31), "fn")
	b.J("end")
	b.Label("fn")
	b.Jr(isa.R(31))
	b.Label("end")
	b.Halt()
	p := b.MustBuild()

	m, err := New(p)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[isa.Op]bool{}
	var d trace.Dyn
	for m.Next(&d) {
		seen[d.Op] = true
	}
	for op := isa.Op(0); op < isa.NumOps; op++ {
		if !seen[op] {
			t.Errorf("opcode %s never executed", op)
		}
	}
	if len(seen) != int(isa.NumOps) {
		t.Errorf("executed %d distinct opcodes, have %d defined", len(seen), isa.NumOps)
	}
}

func TestUnimplementedOpcodePanicsWithFault(t *testing.T) {
	// An opcode that slips past validation (here: injected after New) must
	// panic with *vm.Fault so Simulate's recovery turns it into a "program
	// faulted" error rather than a process abort.
	b := isa.NewBuilder("bad-op")
	b.Nop()
	b.Halt()
	p := b.MustBuild()
	m, err := New(p)
	if err != nil {
		t.Fatal(err)
	}
	p.Code[0] = isa.Inst{Op: isa.NumOps} // out-of-table opcode
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("Next did not panic on an unimplemented opcode")
		}
		if _, ok := r.(*vm.Fault); !ok {
			t.Fatalf("panic value %T (%v), want *vm.Fault", r, r)
		}
	}()
	var d trace.Dyn
	m.Next(&d)
}
