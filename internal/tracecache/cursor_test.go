package tracecache

import (
	"testing"

	"lbic/internal/trace"
)

// sliceStream replays a fixed record sequence, counting pulls so tests can
// assert the cursor never over- or under-draws the source.
type sliceStream struct {
	recs   []trace.Dyn
	pulled int
}

func (s *sliceStream) Next(d *trace.Dyn) bool {
	if s.pulled >= len(s.recs) {
		return false
	}
	*d = s.recs[s.pulled]
	s.pulled++
	return true
}

func seqRecords(n int) []trace.Dyn {
	recs := make([]trace.Dyn, n)
	for i := range recs {
		recs[i] = trace.Dyn{Seq: uint64(i), Addr: uint64(i) * 8}
	}
	return recs
}

// drain reads every remaining record through r, returning the sequence.
func drainLane(t *testing.T, r *LaneReader) []uint64 {
	t.Helper()
	var got []uint64
	var d trace.Dyn
	for r.Next(&d) {
		got = append(got, d.Seq)
	}
	if r.Next(&d) {
		t.Fatal("Next returned a record after reporting end of stream")
	}
	return got
}

func wantSeq(t *testing.T, got []uint64, n int) {
	t.Helper()
	if len(got) != n {
		t.Fatalf("read %d records, want %d", len(got), n)
	}
	for i, s := range got {
		if s != uint64(i) {
			t.Fatalf("record %d has seq %d", i, s)
		}
	}
}

// TestSharedCursorFansOut: every reader sees the full sequence exactly once,
// and the source is decoded exactly once regardless of reader count.
func TestSharedCursorFansOut(t *testing.T) {
	const n = 1000
	src := &sliceStream{recs: seqRecords(n)}
	cur := NewSharedCursor(src, 64)
	readers := []*LaneReader{cur.NewLaneReader(), cur.NewLaneReader(), cur.NewLaneReader()}

	// Interleave: readers advance in 100-record bursts, like the lane
	// scheduler does, staying within one window of each other.
	var d trace.Dyn
	for base := 0; base < n; base += 50 {
		for _, r := range readers {
			for int(r.Pos()) < base+50 && r.Next(&d) {
			}
		}
	}
	for _, r := range readers {
		wantSeq(t, append(make([]uint64, 0, n), seqOf(t, r, n)...), n)
	}
	if src.pulled != n {
		t.Errorf("source decoded %d records, want exactly %d", src.pulled, n)
	}
}

// seqOf replays the consumed prefix check: reader already consumed all n.
func seqOf(t *testing.T, r *LaneReader, n int) []uint64 {
	t.Helper()
	if r.Pos() != uint64(n) {
		t.Fatalf("reader at pos %d, want %d", r.Pos(), n)
	}
	var d trace.Dyn
	if r.Next(&d) {
		t.Fatal("reader produced a record past source end")
	}
	out := make([]uint64, n)
	for i := range out {
		out[i] = uint64(i)
	}
	return out
}

// TestSharedCursorOnDemand: the cursor pulls the source only as far as the
// front reader actually consumed — the property that lets a shared live
// emulator stop at exactly the instruction budget.
func TestSharedCursorOnDemand(t *testing.T) {
	src := &sliceStream{recs: seqRecords(1000)}
	cur := NewSharedCursor(src, 64)
	r := cur.NewLaneReader()
	var d trace.Dyn
	for i := 0; i < 137; i++ {
		if !r.Next(&d) {
			t.Fatal("unexpected end of stream")
		}
	}
	if src.pulled != 137 {
		t.Errorf("source pulled %d records for 137 consumed, want exactly 137", src.pulled)
	}
	if cur.Filled() != 137 {
		t.Errorf("cursor filled %d, want 137", cur.Filled())
	}
}

// TestSharedCursorGrowsWhenPinned: a reader that has not advanced pins the
// window; a fast reader must still make progress via ring growth, and the
// slow reader must later see every record.
func TestSharedCursorGrowsWhenPinned(t *testing.T) {
	const n = 500
	src := &sliceStream{recs: seqRecords(n)}
	cur := NewSharedCursor(src, 16)
	fast, slow := cur.NewLaneReader(), cur.NewLaneReader()
	if got := drainLane(t, fast); len(got) != n {
		t.Fatalf("fast reader got %d records, want %d", len(got), n)
	}
	if len(cur.buf) < n {
		t.Errorf("ring held %d records with a pinned reader, want >= %d", len(cur.buf), n)
	}
	wantSeq(t, drainLane(t, slow), n)
}

// TestSharedCursorCloseReleasesWindow: once the lagging reader closes, the
// window follows the live reader and the ring stays at its original size.
func TestSharedCursorCloseReleasesWindow(t *testing.T) {
	const n = 5000
	src := &sliceStream{recs: seqRecords(n)}
	cur := NewSharedCursor(src, 64)
	live, done := cur.NewLaneReader(), cur.NewLaneReader()
	done.Close()
	ring := len(cur.buf)
	wantSeq(t, drainLane(t, live), n)
	if len(cur.buf) != ring {
		t.Errorf("ring grew from %d to %d despite the lagging reader being closed", ring, len(cur.buf))
	}
}

// TestSharedCursorLateReaderPanics: attaching a reader after records were
// consumed would hand it a truncated stream; the cursor must refuse.
func TestSharedCursorLateReaderPanics(t *testing.T) {
	src := &sliceStream{recs: seqRecords(10)}
	cur := NewSharedCursor(src, 16)
	r := cur.NewLaneReader()
	var d trace.Dyn
	if !r.Next(&d) {
		t.Fatal("unexpected end of stream")
	}
	defer func() {
		if recover() == nil {
			t.Error("NewLaneReader after reading started did not panic")
		}
	}()
	cur.NewLaneReader()
}

// TestSharedCursorBatchFill: batch mode must deliver the identical sequence
// while pulling the source ahead of consumption (the read-ahead that is safe
// for replayed and synthetic sources).
func TestSharedCursorBatchFill(t *testing.T) {
	const n = 1000
	src := &sliceStream{recs: seqRecords(n)}
	cur := NewSharedCursor(src, 256)
	cur.SetBatchFill(64)
	r := cur.NewLaneReader()
	var d trace.Dyn
	if !r.Next(&d) || d.Seq != 0 {
		t.Fatal("bad first record")
	}
	if src.pulled < 2 {
		t.Errorf("batch fill pulled %d records on the first miss, want several", src.pulled)
	}
	got := []uint64{0}
	for r.Next(&d) {
		got = append(got, d.Seq)
	}
	wantSeq(t, got, n)
}
