// External trace interchange: lbic-trace-stream/v1.
//
// A stream file is the in-memory Trace encoding plus a self-describing
// header, so address traces can be written by one process (or one machine)
// and replayed by another. The layout is byte-exact and versioned; see
// WORKLOADS.md for the normative specification. All multi-byte integers are
// unsigned LEB128 varints unless noted.
//
//	magic    8 bytes  "LBICTS1\n"
//	flags    uvarint  bit 0: memory value bytes elided (replay yields 0)
//	name     uvarint length (<= 255) + UTF-8 bytes, no control characters
//	statics  uvarint count (<= 1<<20), then per static instruction:
//	           pc uvarint (<= MaxInt32), then 7 bytes:
//	           op, class, src1, src2, dst, size, mem
//	n        uvarint  dynamic instruction count (<= len(data))
//	datalen  uvarint  byte length of the data section (<= 1<<30)
//	data     the per-instruction stream: uvarint static ID; for memory
//	         ops a zigzag-varint address delta, then (unless values are
//	         elided) size value bytes, little-endian
//	crc      4 bytes  little-endian IEEE CRC-32 of everything above
//
// ReadStream treats its input as untrusted: every field is bounds-checked,
// the data section is fully validated (varint termination, static IDs in
// range, exactly n instructions consuming exactly datalen bytes) before a
// Reader ever touches it, and memory use is proportional to the bytes
// actually supplied, never to a length a hostile header claims.

package tracecache

import (
	"bufio"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"unicode/utf8"

	"lbic/internal/isa"
)

// StreamSchema names the external trace format implemented by WriteStream
// and ReadStream.
const StreamSchema = "lbic-trace-stream/v1"

const (
	streamMagic   = "LBICTS1\n"
	flagNoValues  = 1 << 0
	maxNameLen    = 255
	maxStatics    = 1 << 20
	maxDataLen    = 1 << 30
	maxVarintLen  = 10
	staticRecTail = 7 // fixed bytes after the pc varint
)

// ErrBadStream wraps every ReadStream parse failure.
var ErrBadStream = errors.New("malformed " + StreamSchema)

func badStream(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrBadStream, fmt.Sprintf(format, args...))
}

// ValuesElided reports whether memory value bytes were dropped at record
// time; replaying such a trace yields Value 0 for every access.
func (t *Trace) ValuesElided() bool { return t.noValues }

// checkName enforces the header name constraints shared by reader and
// writer: short, valid UTF-8, no control characters.
func checkName(name string) error {
	if len(name) > maxNameLen {
		return fmt.Errorf("stream name %d bytes, max %d", len(name), maxNameLen)
	}
	if !utf8.ValidString(name) {
		return errors.New("stream name is not valid UTF-8")
	}
	for _, r := range name {
		if r < 0x20 || r == 0x7f {
			return fmt.Errorf("stream name contains control character %q", r)
		}
	}
	return nil
}

// checkStatic enforces per-static-instruction consistency: a defined opcode,
// the class the opTable assigns it, in-range registers, and a size/mem pair
// derived from the opcode. This is what makes a decoded trace safe to hand
// to the timing core.
func checkStatic(si staticInst) error {
	if !si.op.Valid() {
		return fmt.Errorf("undefined opcode %d", uint8(si.op))
	}
	if si.class != si.op.ClassOf() {
		return fmt.Errorf("op %v declares class %d, want %d", si.op, si.class, si.op.ClassOf())
	}
	if si.src1 >= isa.NumRegs || si.src2 >= isa.NumRegs || si.dst >= isa.NumRegs {
		return fmt.Errorf("op %v has out-of-range register", si.op)
	}
	mem := si.op.IsMem()
	if si.mem != mem {
		return fmt.Errorf("op %v mem flag %v, want %v", si.op, si.mem, mem)
	}
	wantSize := uint8(0)
	if mem {
		wantSize = uint8(si.op.MemSize())
	}
	if si.size != wantSize {
		return fmt.Errorf("op %v size %d, want %d", si.op, si.size, wantSize)
	}
	if si.pc < 0 {
		return fmt.Errorf("op %v negative pc %d", si.op, si.pc)
	}
	return nil
}

// WriteStream writes t, labeled name, in the lbic-trace-stream/v1 format.
// It fails rather than emit a file ReadStream would reject.
func WriteStream(w io.Writer, name string, t *Trace) error {
	if err := checkName(name); err != nil {
		return fmt.Errorf("tracecache: %w", err)
	}
	for i, si := range t.insts {
		if err := checkStatic(si); err != nil {
			return fmt.Errorf("tracecache: static %d not encodable: %w", i, err)
		}
	}
	if len(t.data) > maxDataLen {
		return fmt.Errorf("tracecache: data section %d bytes exceeds format limit %d", len(t.data), maxDataLen)
	}

	hdr := make([]byte, 0, 64+len(name)+len(t.insts)*12)
	hdr = append(hdr, streamMagic...)
	var flags uint64
	if t.noValues {
		flags |= flagNoValues
	}
	hdr = appendUvarint(hdr, flags)
	hdr = appendUvarint(hdr, uint64(len(name)))
	hdr = append(hdr, name...)
	hdr = appendUvarint(hdr, uint64(len(t.insts)))
	for _, si := range t.insts {
		hdr = appendUvarint(hdr, uint64(si.pc))
		mem := byte(0)
		if si.mem {
			mem = 1
		}
		hdr = append(hdr, byte(si.op), byte(si.class), byte(si.src1), byte(si.src2), byte(si.dst), si.size, mem)
	}
	hdr = appendUvarint(hdr, t.n)
	hdr = appendUvarint(hdr, uint64(len(t.data)))

	crc := crc32.Update(0, crc32.IEEETable, hdr)
	crc = crc32.Update(crc, crc32.IEEETable, t.data)
	if _, err := w.Write(hdr); err != nil {
		return err
	}
	if _, err := w.Write(t.data); err != nil {
		return err
	}
	_, err := w.Write([]byte{byte(crc), byte(crc >> 8), byte(crc >> 16), byte(crc >> 24)})
	return err
}

// sreader reads the stream while maintaining a CRC over every logical byte
// consumed, independent of any buffering readahead.
type sreader struct {
	br  *bufio.Reader
	crc uint32
}

func (s *sreader) byte() (byte, error) {
	b, err := s.br.ReadByte()
	if err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return 0, err
	}
	s.crc = crc32.Update(s.crc, crc32.IEEETable, []byte{b})
	return b, nil
}

func (s *sreader) full(buf []byte) error {
	if _, err := io.ReadFull(s.br, buf); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return err
	}
	s.crc = crc32.Update(s.crc, crc32.IEEETable, buf)
	return nil
}

func (s *sreader) uvarint() (uint64, error) {
	var v uint64
	for i := 0; i < maxVarintLen; i++ {
		b, err := s.byte()
		if err != nil {
			return 0, err
		}
		if i == maxVarintLen-1 && b > 1 {
			return 0, badStream("varint overflows 64 bits")
		}
		v |= uint64(b&0x7f) << (7 * i)
		if b < 0x80 {
			return v, nil
		}
	}
	return 0, badStream("varint longer than %d bytes", maxVarintLen)
}

// ReadStream parses an lbic-trace-stream/v1 file from untrusted input.
// On success the returned Trace replays through NewReader exactly like the
// Trace that was written.
func ReadStream(r io.Reader) (name string, t *Trace, err error) {
	s := &sreader{br: bufio.NewReader(r)}

	magic := make([]byte, len(streamMagic))
	if err := s.full(magic); err != nil {
		return "", nil, badStream("short magic: %v", err)
	}
	if string(magic) != streamMagic {
		return "", nil, badStream("bad magic %q", magic)
	}
	flags, err := s.uvarint()
	if err != nil {
		return "", nil, badStream("flags: %v", err)
	}
	if flags&^uint64(flagNoValues) != 0 {
		return "", nil, badStream("unknown flag bits %#x", flags)
	}
	nameLen, err := s.uvarint()
	if err != nil {
		return "", nil, badStream("name length: %v", err)
	}
	if nameLen > maxNameLen {
		return "", nil, badStream("name length %d exceeds %d", nameLen, maxNameLen)
	}
	nb := make([]byte, nameLen)
	if err := s.full(nb); err != nil {
		return "", nil, badStream("name: %v", err)
	}
	name = string(nb)
	if err := checkName(name); err != nil {
		return "", nil, badStream("%v", err)
	}

	nStatics, err := s.uvarint()
	if err != nil {
		return "", nil, badStream("static count: %v", err)
	}
	if nStatics > maxStatics {
		return "", nil, badStream("static count %d exceeds %d", nStatics, maxStatics)
	}
	t = &Trace{noValues: flags&flagNoValues != 0}
	if nStatics > 0 {
		t.insts = make([]staticInst, 0, min(nStatics, 4096))
	}
	var rec [staticRecTail]byte
	for i := uint64(0); i < nStatics; i++ {
		pc, err := s.uvarint()
		if err != nil {
			return "", nil, badStream("static %d pc: %v", i, err)
		}
		if pc > math.MaxInt32 {
			return "", nil, badStream("static %d pc %d exceeds MaxInt32", i, pc)
		}
		if err := s.full(rec[:]); err != nil {
			return "", nil, badStream("static %d: %v", i, err)
		}
		if rec[6] > 1 {
			return "", nil, badStream("static %d mem flag %d", i, rec[6])
		}
		si := staticInst{
			pc:    int32(pc),
			op:    isa.Op(rec[0]),
			class: isa.Class(rec[1]),
			src1:  isa.Reg(rec[2]),
			src2:  isa.Reg(rec[3]),
			dst:   isa.Reg(rec[4]),
			size:  rec[5],
			mem:   rec[6] == 1,
		}
		if err := checkStatic(si); err != nil {
			return "", nil, badStream("static %d: %v", i, err)
		}
		t.insts = append(t.insts, si)
	}

	n, err := s.uvarint()
	if err != nil {
		return "", nil, badStream("instruction count: %v", err)
	}
	dataLen, err := s.uvarint()
	if err != nil {
		return "", nil, badStream("data length: %v", err)
	}
	if dataLen > maxDataLen {
		return "", nil, badStream("data length %d exceeds %d", dataLen, maxDataLen)
	}
	if n > dataLen {
		return "", nil, badStream("instruction count %d exceeds data length %d", n, dataLen)
	}
	t.n = n

	// Read the data section in bounded chunks so a header that lies about
	// dataLen cannot make us allocate more than the input actually holds.
	const chunk = 1 << 20
	t.data = make([]byte, 0, min(dataLen, chunk))
	for read := uint64(0); read < dataLen; {
		m := min(dataLen-read, chunk)
		off := len(t.data)
		t.data = append(t.data, make([]byte, m)...)
		if err := s.full(t.data[off:]); err != nil {
			return "", nil, badStream("data section: %v", err)
		}
		read += m
	}

	if err := validateData(t); err != nil {
		return "", nil, err
	}

	var got [4]byte
	if _, err := io.ReadFull(s.br, got[:]); err != nil {
		return "", nil, badStream("missing CRC footer")
	}
	want := uint32(got[0]) | uint32(got[1])<<8 | uint32(got[2])<<16 | uint32(got[3])<<24
	if s.crc != want {
		return "", nil, badStream("CRC mismatch: computed %#08x, footer %#08x", s.crc, want)
	}
	if _, err := s.br.ReadByte(); err != io.EOF {
		return "", nil, badStream("trailing data after CRC footer")
	}
	return name, t, nil
}

// validateData walks the data section exactly as Reader.Next will, proving
// every varint terminates in bounds, every static ID resolves, every value
// byte is present, and the section holds exactly n instructions. After this
// pass the allocation-free Reader can skip all bounds checks.
func validateData(t *Trace) error {
	b := t.data
	pos := 0
	for i := uint64(0); i < t.n; i++ {
		id, np, err := checkedUvarint(b, pos)
		if err != nil {
			return badStream("instruction %d: static id %v", i, err)
		}
		pos = np
		if id >= uint64(len(t.insts)) {
			return badStream("instruction %d: static id %d out of range (have %d)", i, id, len(t.insts))
		}
		si := &t.insts[id]
		if si.mem {
			_, np, err := checkedUvarint(b, pos)
			if err != nil {
				return badStream("instruction %d: address delta %v", i, err)
			}
			pos = np
			if !t.noValues {
				if pos+int(si.size) > len(b) {
					return badStream("instruction %d: truncated value bytes", i)
				}
				pos += int(si.size)
			}
		}
	}
	if pos != len(b) {
		return badStream("data section has %d trailing bytes after %d instructions", len(b)-pos, t.n)
	}
	return nil
}

// checkedUvarint is the bounds-checked twin of the Reader's varint decode.
func checkedUvarint(b []byte, pos int) (uint64, int, error) {
	var v uint64
	for i := 0; i < maxVarintLen; i++ {
		if pos >= len(b) {
			return 0, 0, errors.New("truncated")
		}
		c := b[pos]
		pos++
		if i == maxVarintLen-1 && c > 1 {
			return 0, 0, errors.New("overflows 64 bits")
		}
		v |= uint64(c&0x7f) << (7 * i)
		if c < 0x80 {
			return v, pos, nil
		}
	}
	return 0, 0, errors.New("longer than 10 bytes")
}
