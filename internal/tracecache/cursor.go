package tracecache

import "lbic/internal/trace"

// SharedCursor decodes an instruction stream exactly once and fans the
// decoded records out to K lane readers that each consume it at their own
// pace. It is the stream side of vectorized multi-config stepping: a sweep
// that steps the same benchmark under K port organizations attaches K lane
// readers to one cursor, so each dynamic instruction is decoded (or, for a
// live source, emulated / generated) once instead of K times.
//
// The cursor holds a bounded power-of-two ring of decoded records. A record
// is produced on demand — only when the front-most reader asks for an
// instruction nobody has decoded yet — so the source is never pulled past
// what the lanes actually consume. That property is load-bearing: a shared
// live emulator must stop at exactly the instruction budget for the oracle's
// final-memory check to hold, and it is also what makes lane runs consume
// the source exactly like the scalar path does.
//
// A reader that finishes (or fails) calls Close to stop holding the window
// back; if a slow reader pins the window while a fast one needs room, the
// ring grows rather than deadlocking. The cursor is not safe for concurrent
// use — the lane scheduler (cpu.RunLanes) steps lanes from one goroutine.
type SharedCursor struct {
	src  trace.Stream
	buf  []trace.Dyn
	mask uint64
	// filled is the absolute count of records decoded from src so far; the
	// record with absolute index i (i < filled, i within the window) lives
	// at buf[i&mask].
	filled uint64
	// limit is how far filled may advance before reader positions must be
	// re-examined; it is min(live reader pos) + len(buf), recomputed only
	// when reached, so the common fill path is one bounds check.
	limit   uint64
	eof     bool
	batch   int
	readers []*LaneReader
}

// NewSharedCursor wraps src in a cursor whose ring holds at least window
// decoded records (rounded up to a power of two, minimum 16). Attach every
// reader with NewLaneReader before the first Next call.
func NewSharedCursor(src trace.Stream, window int) *SharedCursor {
	n := 16
	for n < window {
		n <<= 1
	}
	return &SharedCursor{src: src, buf: make([]trace.Dyn, n), mask: uint64(n - 1)}
}

// NewLaneReader attaches and returns a new reader positioned at the start of
// the stream. It must be called before any reader consumes a record: late
// readers would need records the window may already have dropped.
func (c *SharedCursor) NewLaneReader() *LaneReader {
	if c.filled > 0 {
		panic("tracecache: NewLaneReader after reading started")
	}
	r := &LaneReader{c: c}
	c.readers = append(c.readers, r)
	return r
}

// Filled reports how many records have been decoded from the source so far.
func (c *SharedCursor) Filled() uint64 { return c.filled }

// SetBatchFill lets fill pull up to n records from the source per frontier
// miss instead of exactly one. Only valid for sources that may be read past
// what the lanes consume — replayed recordings and synthetic generators,
// where read-ahead is free. It must stay off for a shared live emulator:
// overdrawing one would advance architectural state past the instruction
// budget and break the oracle's final-memory check.
func (c *SharedCursor) SetBatchFill(n int) { c.batch = n }

// fill decodes at least one more record into the ring, reporting false at
// source end with nothing decoded.
func (c *SharedCursor) fill() bool {
	if c.eof {
		return false
	}
	if c.filled == c.limit {
		c.advanceLimit()
	}
	if !c.src.Next(&c.buf[c.filled&c.mask]) {
		c.eof = true
		return false
	}
	c.filled++
	// Batch mode amortizes the per-record call overhead of the frontier
	// lane: run the decode loop to the window edge (or the batch cap) now,
	// so the next few thousand Next calls stay on the buffered fast path.
	for n := c.batch - 1; n > 0 && c.filled < c.limit; n-- {
		if !c.src.Next(&c.buf[c.filled&c.mask]) {
			c.eof = true
			break
		}
		c.filled++
	}
	return true
}

// advanceLimit recomputes how far decoding may run ahead of the slowest live
// reader, growing the ring when a pinned window leaves no room.
func (c *SharedCursor) advanceLimit() {
	for {
		min := c.filled
		for _, r := range c.readers {
			if !r.closed && r.pos < min {
				min = r.pos
			}
		}
		if lim := min + uint64(len(c.buf)); lim > c.filled {
			c.limit = lim
			return
		}
		c.grow(min)
	}
}

// grow doubles the ring, re-seating the live window [min, filled) at the new
// mask. Absolute indexing makes this a straight copy: record i moves from
// old[i&oldMask] to new[i&newMask].
func (c *SharedCursor) grow(min uint64) {
	old, oldMask := c.buf, c.mask
	c.buf = make([]trace.Dyn, 2*len(old))
	c.mask = uint64(len(c.buf) - 1)
	for i := min; i < c.filled; i++ {
		c.buf[i&c.mask] = old[i&oldMask]
	}
}

// LaneReader is one lane's view of a SharedCursor. It implements
// trace.Stream; Pos exposes the lane's absolute stream position so a lane
// scheduler can keep the readers within one window of each other.
type LaneReader struct {
	c      *SharedCursor
	pos    uint64
	closed bool
}

// Next delivers the lane's next record, decoding through the shared cursor
// when this reader is at the decode frontier. It returns false only at the
// true end of the underlying source, exactly like a private reader would.
func (r *LaneReader) Next(d *trace.Dyn) bool {
	c := r.c
	if r.pos == c.filled && !c.fill() {
		return false
	}
	*d = c.buf[r.pos&c.mask]
	r.pos++
	return true
}

// Pos returns the number of records this lane has consumed.
func (r *LaneReader) Pos() uint64 { return r.pos }

// Close releases the reader's hold on the window; the cursor no longer
// waits for it. Reading after Close is invalid.
func (r *LaneReader) Close() { r.closed = true }
