package tracecache

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"lbic/internal/isa"
	"lbic/internal/trace"
)

// testDyns builds a small mixed stream: ALU ops, loads and stores of every
// width, forward and backward address deltas.
func testDyns() []trace.Dyn {
	return []trace.Dyn{
		{PC: 0, Op: isa.Addi, Src1: isa.R(1), Dst: isa.R(2)},
		{PC: 1, Op: isa.Ld, Src1: isa.R(2), Dst: isa.R(3), Addr: 0x1000, Size: 8, Value: 0xdeadbeefcafe},
		{PC: 2, Op: isa.Lw, Src1: isa.R(2), Dst: isa.R(4), Addr: 0x0008, Size: 4, Value: 0x1234},
		{PC: 3, Op: isa.Sb, Src1: isa.R(2), Src2: isa.R(4), Addr: 0xffff_ff00, Size: 1, Value: 0x7f},
		{PC: 4, Op: isa.Bne, Src1: isa.R(3), Src2: isa.R(4)},
		{PC: 1, Op: isa.Ld, Src1: isa.R(2), Dst: isa.R(3), Addr: 0x1008, Size: 8, Value: 1},
		{PC: 5, Op: isa.Fsd, Src1: isa.R(2), Src2: isa.F(0), Addr: 0x2000, Size: 8, Value: 0x3ff0000000000000},
	}
}

func recordDyns(t *testing.T, omitValues bool) *Trace {
	t.Helper()
	return RecordWith(trace.NewSliceStream(testDyns()), RecordOptions{OmitValues: omitValues})
}

func drain(t *testing.T, s trace.Stream) []trace.Dyn {
	t.Helper()
	var out []trace.Dyn
	var d trace.Dyn
	for s.Next(&d) {
		out = append(out, d)
		if len(out) > 1<<20 {
			t.Fatal("stream did not terminate")
		}
	}
	return out
}

func TestStreamRoundTrip(t *testing.T) {
	for _, omit := range []bool{false, true} {
		tr := recordDyns(t, omit)
		var buf bytes.Buffer
		if err := WriteStream(&buf, "unit/test stream", tr); err != nil {
			t.Fatalf("omit=%v: WriteStream: %v", omit, err)
		}
		name, got, err := ReadStream(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("omit=%v: ReadStream: %v", omit, err)
		}
		if name != "unit/test stream" {
			t.Fatalf("omit=%v: name = %q", omit, name)
		}
		if got.Len() != tr.Len() || got.ValuesElided() != omit {
			t.Fatalf("omit=%v: Len=%d elided=%v, want %d/%v", omit, got.Len(), got.ValuesElided(), tr.Len(), omit)
		}
		want := drain(t, tr.NewReader())
		have := drain(t, got.NewReader())
		if len(want) != len(have) {
			t.Fatalf("omit=%v: replay lengths differ: %d vs %d", omit, len(want), len(have))
		}
		for i := range want {
			if want[i] != have[i] {
				t.Fatalf("omit=%v: inst %d differs:\n written %+v\n decoded %+v", omit, i, want[i], have[i])
			}
		}
		// Re-encoding the decoded trace must be byte-identical: the format
		// has one canonical encoding per trace.
		var buf2 bytes.Buffer
		if err := WriteStream(&buf2, name, got); err != nil {
			t.Fatalf("omit=%v: re-encode: %v", omit, err)
		}
		if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
			t.Fatalf("omit=%v: re-encoded stream differs from original", omit)
		}
	}
}

func TestStreamOmitValuesZeroesReplay(t *testing.T) {
	tr := recordDyns(t, true)
	for i, d := range drain(t, tr.NewReader()) {
		if d.Value != 0 {
			t.Fatalf("inst %d: Value = %#x with values elided", i, d.Value)
		}
	}
	full := recordDyns(t, false)
	if tr.SizeBytes() >= full.SizeBytes() {
		t.Fatalf("elided trace (%d B) not smaller than full trace (%d B)", tr.SizeBytes(), full.SizeBytes())
	}
}

func TestStreamEmptyTrace(t *testing.T) {
	tr := Record(trace.NewSliceStream(nil), 0)
	var buf bytes.Buffer
	if err := WriteStream(&buf, "empty", tr); err != nil {
		t.Fatal(err)
	}
	name, got, err := ReadStream(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if name != "empty" || got.Len() != 0 {
		t.Fatalf("got name %q len %d", name, got.Len())
	}
	var d trace.Dyn
	if got.NewReader().Next(&d) {
		t.Fatal("empty trace yielded an instruction")
	}
}

func TestWriteStreamRejectsBadName(t *testing.T) {
	tr := recordDyns(t, false)
	for _, name := range []string{strings.Repeat("x", 256), "bad\nname", "bad\x00name", string([]byte{0xff, 0xfe})} {
		if err := WriteStream(&bytes.Buffer{}, name, tr); err == nil {
			t.Errorf("WriteStream accepted name %q", name)
		}
	}
}

func encoded(t *testing.T) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteStream(&buf, "corrupt-me", recordDyns(t, false)); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestReadStreamRejectsCorruption flips, truncates and extends an encoded
// stream and requires a clean ErrBadStream (never a panic) every time.
func TestReadStreamRejectsCorruption(t *testing.T) {
	good := encoded(t)
	if _, _, err := ReadStream(bytes.NewReader(good)); err != nil {
		t.Fatalf("baseline decode failed: %v", err)
	}

	t.Run("truncations", func(t *testing.T) {
		for n := 0; n < len(good); n++ {
			if _, _, err := ReadStream(bytes.NewReader(good[:n])); !errors.Is(err, ErrBadStream) {
				t.Fatalf("truncation at %d: err = %v, want ErrBadStream", n, err)
			}
		}
	})
	t.Run("bitflips", func(t *testing.T) {
		for i := 0; i < len(good); i++ {
			for bit := 0; bit < 8; bit++ {
				mut := bytes.Clone(good)
				mut[i] ^= 1 << bit
				_, _, err := ReadStream(bytes.NewReader(mut))
				if err == nil {
					t.Fatalf("bitflip at byte %d bit %d decoded cleanly past the CRC", i, bit)
				}
			}
		}
	})
	t.Run("trailing-garbage", func(t *testing.T) {
		if _, _, err := ReadStream(bytes.NewReader(append(bytes.Clone(good), 0))); !errors.Is(err, ErrBadStream) {
			t.Fatalf("trailing byte: err = %v, want ErrBadStream", err)
		}
	})
}

// TestReadStreamHostileHeaders feeds headers that lie about lengths; decode
// must error without large allocations.
func TestReadStreamHostileHeaders(t *testing.T) {
	mk := func(build func(b []byte) []byte) []byte {
		return build([]byte("LBICTS1\n"))
	}
	huge := func(v uint64) []byte { return appendUvarint(nil, v) }
	cases := map[string][]byte{
		"bad-magic": []byte("NOTLBIC\n\x00"),
		"unknown-flags": mk(func(b []byte) []byte {
			return append(b, 0x02)
		}),
		"giant-name": mk(func(b []byte) []byte {
			b = append(b, 0x00)
			return append(b, huge(1<<40)...)
		}),
		"giant-static-count": mk(func(b []byte) []byte {
			b = append(b, 0x00, 0x00)
			return append(b, huge(1<<40)...)
		}),
		"giant-data-len": mk(func(b []byte) []byte {
			b = append(b, 0x00, 0x00, 0x00) // flags, name len 0, 0 statics
			b = append(b, 0x00)             // n = 0
			return append(b, huge(1<<40)...)
		}),
		"count-exceeds-data": mk(func(b []byte) []byte {
			b = append(b, 0x00, 0x00, 0x00)
			b = append(b, huge(100)...) // n = 100
			return append(b, 0x01)      // datalen = 1
		}),
		"varint-too-long": mk(func(b []byte) []byte {
			return append(b, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80)
		}),
	}
	for label, input := range cases {
		if _, _, err := ReadStream(bytes.NewReader(input)); !errors.Is(err, ErrBadStream) {
			t.Errorf("%s: err = %v, want ErrBadStream", label, err)
		}
	}
}
