package tracecache

import (
	"context"
	"fmt"
	"sync"

	"lbic/internal/emu"
	"lbic/internal/isa"
	"lbic/internal/trace"
)

// Key identifies one recordable stream: a program (by name and content
// fingerprint, so two distinct programs sharing a name never alias) at one
// instruction budget. The budget is part of the identity because a recording
// is truncated at the budget — replaying a shorter recording under a larger
// budget would silently shorten the run.
type Key struct {
	Name        string
	Fingerprint uint64
	Insts       uint64
}

// Stats is a snapshot of the cache's counters; run reports embed it.
type Stats struct {
	// Hits counts requests served from a present or in-flight recording.
	Hits uint64 `json:"hits"`
	// Records counts recordings started (one per distinct key, thanks to
	// singleflight, unless an entry was evicted and re-recorded).
	Records uint64 `json:"records"`
	// RecordFailures counts recordings that errored or panicked.
	RecordFailures uint64 `json:"record_failures,omitempty"`
	// Evictions counts entries removed by the byte-budget LRU.
	Evictions uint64 `json:"evictions,omitempty"`
	// Oversize counts recordings larger than the whole budget: they are
	// handed to their waiters once, then dropped rather than cached.
	Oversize uint64 `json:"oversize,omitempty"`
	// Entries is the number of resident recordings.
	Entries int `json:"entries"`
	// BytesLive and BytesPeak track resident recording bytes.
	BytesLive int64 `json:"bytes_live"`
	BytesPeak int64 `json:"bytes_peak"`
	// BudgetBytes echoes the configured budget (0 = unlimited).
	BudgetBytes int64 `json:"budget_bytes,omitempty"`
}

type cacheEntry struct {
	ready   chan struct{} // closed when trace/err is settled
	trace   *Trace
	err     error
	size    int64
	lastUse uint64
}

// Cache is a concurrency-safe record-once/replay-many trace store. The zero
// value is not usable; construct with New. A nil *Cache is a valid "always
// record live" handle: Stream falls back to a fresh emulator.
type Cache struct {
	mu      sync.Mutex
	budget  int64 // bytes; <= 0 means unlimited
	tick    uint64
	entries map[Key]*cacheEntry
	fps     map[*isa.Program]uint64 // memoized fingerprints (see keyFor)
	stats   Stats
}

// New returns an empty cache bounded to budgetBytes of recorded trace data
// (<= 0 for unlimited).
func New(budgetBytes int64) *Cache {
	return &Cache{
		budget:  budgetBytes,
		entries: make(map[Key]*cacheEntry),
		fps:     make(map[*isa.Program]uint64),
	}
}

// Stats returns a snapshot of the counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := c.stats
	s.Entries = len(c.entries)
	s.BudgetBytes = c.budget
	if s.BudgetBytes < 0 {
		s.BudgetBytes = 0
	}
	return s
}

// GetOrRecord returns the trace for key, invoking record to produce it on
// the first request. Concurrent requests for the same key share one
// recording (singleflight); waiters block until it settles or ctx is done.
// A failed or panicking recording is not cached — the failure propagates to
// the waiters of this flight and the next request records again.
func (c *Cache) GetOrRecord(ctx context.Context, key Key, record func() (*Trace, error)) (*Trace, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	c.mu.Lock()
	c.tick++
	if e, ok := c.entries[key]; ok {
		e.lastUse = c.tick
		c.stats.Hits++
		c.mu.Unlock()
		select {
		case <-e.ready:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
		if e.err != nil {
			return nil, e.err
		}
		return e.trace, nil
	}
	e := &cacheEntry{ready: make(chan struct{}), lastUse: c.tick}
	c.entries[key] = e
	c.stats.Records++
	c.mu.Unlock()

	settled := false
	defer func() {
		if !settled { // the recording panicked; release waiters, re-panic
			c.fail(key, e, fmt.Errorf("tracecache: recording %q panicked", key.Name))
		}
	}()
	tr, err := record()
	settled = true
	if err != nil {
		c.fail(key, e, err)
		return nil, err
	}
	c.install(key, e, tr)
	return tr, nil
}

// fail removes a broken in-flight entry and releases its waiters with err.
func (c *Cache) fail(key Key, e *cacheEntry, err error) {
	c.mu.Lock()
	delete(c.entries, key)
	c.stats.RecordFailures++
	c.mu.Unlock()
	e.err = err
	close(e.ready)
}

// install publishes a finished recording, evicting least-recently-used
// settled entries while over budget. A recording larger than the entire
// budget is published to this flight's waiters but not retained.
func (c *Cache) install(key Key, e *cacheEntry, tr *Trace) {
	size := tr.SizeBytes()
	c.mu.Lock()
	e.trace = tr
	e.size = size
	if c.budget > 0 && size > c.budget {
		delete(c.entries, key)
		c.stats.Oversize++
	} else {
		c.stats.BytesLive += size
		if c.stats.BytesLive > c.stats.BytesPeak {
			c.stats.BytesPeak = c.stats.BytesLive
		}
		for c.budget > 0 && c.stats.BytesLive > c.budget {
			if !c.evictOldest(key) {
				break // everything else is in flight; tolerate the overshoot
			}
		}
	}
	c.mu.Unlock()
	close(e.ready)
}

// evictOldest removes the least-recently-used settled entry other than keep;
// it reports whether anything was evicted. Caller holds mu.
func (c *Cache) evictOldest(keep Key) bool {
	var (
		victim   Key
		victimE  *cacheEntry
		haveVict bool
	)
	for k, e := range c.entries {
		if k == keep || e.trace == nil {
			continue // in flight, or the entry being installed
		}
		if !haveVict || e.lastUse < victimE.lastUse {
			victim, victimE, haveVict = k, e, true
		}
	}
	if !haveVict {
		return false
	}
	delete(c.entries, victim)
	c.stats.BytesLive -= victimE.size
	c.stats.Evictions++
	return true
}

// Contains reports whether a settled recording for prog at the given budget
// is resident, without counting a hit or touching the LRU order. It answers
// "would a run right now replay?" for observability; an in-flight recording
// reports false (the run would block on it, then replay).
func (c *Cache) Contains(prog *isa.Program, insts uint64) bool {
	if c == nil || insts == 0 {
		return false
	}
	key := c.keyFor(prog, insts)
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[key]
	return ok && e.trace != nil
}

// KeyFor builds the cache key for prog at the given budget.
func KeyFor(prog *isa.Program, insts uint64) Key {
	return Key{Name: prog.Name, Fingerprint: Fingerprint(prog), Insts: insts}
}

// keyFor is KeyFor with the fingerprint memoized per program instance:
// hashing a program's full data image costs more than replaying its trace,
// and a sweep requests the same few immutable-once-built programs thousands
// of times. The memo lives (and dies) with the cache.
func (c *Cache) keyFor(prog *isa.Program, insts uint64) Key {
	c.mu.Lock()
	fp, ok := c.fps[prog]
	c.mu.Unlock()
	if !ok {
		fp = Fingerprint(prog) // outside the lock: hashing is slow
		c.mu.Lock()
		c.fps[prog] = fp
		c.mu.Unlock()
	}
	return Key{Name: prog.Name, Fingerprint: fp, Insts: insts}
}

// Stream returns a replayable stream of prog's first insts committed
// instructions, recording via a fresh emulator on the first request. A nil
// cache returns a live emulator, so callers can thread an optional cache
// without branching. insts must be positive for a non-nil cache: an
// unbounded recording of a non-halting program would never finish.
func (c *Cache) Stream(ctx context.Context, prog *isa.Program, insts uint64) (trace.Stream, error) {
	if c == nil {
		return emu.New(prog)
	}
	tr, err := c.Recorded(ctx, prog, insts)
	if err != nil {
		return nil, err
	}
	return tr.NewReader(), nil
}

// Recorded returns the recording of prog's first insts committed
// instructions, recording via a fresh emulator on the first request. It is
// Stream without the reader wrapper, for callers that attach several readers
// to one recording (a SharedCursor stepping K lanes decodes it once).
func (c *Cache) Recorded(ctx context.Context, prog *isa.Program, insts uint64) (*Trace, error) {
	if insts == 0 {
		return nil, fmt.Errorf("tracecache: zero instruction budget for %q", prog.Name)
	}
	return c.GetOrRecord(ctx, c.keyFor(prog, insts), func() (*Trace, error) {
		m, err := emu.New(prog)
		if err != nil {
			return nil, err
		}
		return Record(m, insts), nil
	})
}

// Fingerprint hashes a program's full content (code, data image, entry,
// name) with FNV-1a, so the cache key distinguishes any two programs that
// could produce different streams.
func Fingerprint(p *isa.Program) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	byte1 := func(b byte) {
		h = (h ^ uint64(b)) * prime
	}
	word := func(v uint64) {
		for i := 0; i < 8; i++ {
			byte1(byte(v >> (8 * i)))
		}
	}
	for i := 0; i < len(p.Name); i++ {
		byte1(p.Name[i])
	}
	word(uint64(p.Entry))
	word(uint64(len(p.Code)))
	for _, in := range p.Code {
		word(uint64(in.Op) | uint64(in.Rd)<<8 | uint64(in.Rs1)<<16 | uint64(in.Rs2)<<24)
		word(uint64(in.Imm))
	}
	word(uint64(len(p.Data)))
	for _, s := range p.Data {
		word(s.Base)
		word(uint64(len(s.Bytes)))
		for _, b := range s.Bytes {
			byte1(b)
		}
	}
	return h
}
