package tracecache

import (
	"bytes"
	"testing"

	"lbic/internal/trace"
)

// FuzzTraceStreamDecode hammers the external-format parser with untrusted
// bytes. The invariants: ReadStream never panics and never allocates beyond
// the input's own size class; any input it accepts replays exactly Len()
// instructions and survives a write→read round trip that preserves the
// replayed stream.
func FuzzTraceStreamDecode(f *testing.F) {
	valid := func(omit bool) []byte {
		var buf bytes.Buffer
		tr := RecordWith(trace.NewSliceStream(testDyns()), RecordOptions{OmitValues: omit})
		if err := WriteStream(&buf, "fuzz-seed", tr); err != nil {
			f.Fatal(err)
		}
		return buf.Bytes()
	}
	full := valid(false)
	f.Add(full)
	f.Add(valid(true))
	f.Add(full[:len(full)/2])                                // truncated mid-stream
	f.Add([]byte("LBICTS1\n"))                               // magic only
	f.Add(append(bytes.Clone(full), 0xff))                   // trailing garbage
	f.Add(bytes.Repeat([]byte{0x80}, 64))                    // unterminated varints
	f.Add([]byte("LBICTS1\n\x00\x00\x00\x00\xff\xff\xff\t")) // lying lengths

	f.Fuzz(func(t *testing.T, data []byte) {
		name, tr, err := ReadStream(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Accepted: replay must terminate after exactly Len() instructions.
		r := tr.NewReader()
		var d trace.Dyn
		var n uint64
		for r.Next(&d) {
			n++
			if n > tr.Len() {
				t.Fatalf("replay overran Len()=%d", tr.Len())
			}
		}
		if n != tr.Len() {
			t.Fatalf("replay yielded %d instructions, Len()=%d", n, tr.Len())
		}
		// Round trip: re-encode, re-decode, compare replays.
		var buf bytes.Buffer
		if err := WriteStream(&buf, name, tr); err != nil {
			t.Fatalf("re-encode of accepted stream failed: %v", err)
		}
		name2, tr2, err := ReadStream(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("re-decode of re-encoded stream failed: %v", err)
		}
		if name2 != name || tr2.Len() != tr.Len() || tr2.ValuesElided() != tr.ValuesElided() {
			t.Fatalf("round trip changed header: %q/%d/%v vs %q/%d/%v",
				name, tr.Len(), tr.ValuesElided(), name2, tr2.Len(), tr2.ValuesElided())
		}
		ra, rb := tr.NewReader(), tr2.NewReader()
		var da, db trace.Dyn
		for ra.Next(&da) {
			if !rb.Next(&db) {
				t.Fatal("round-tripped replay ended early")
			}
			if da != db {
				t.Fatalf("round-tripped replay differs at seq %d:\n a %+v\n b %+v", da.Seq, da, db)
			}
		}
		if rb.Next(&db) {
			t.Fatal("round-tripped replay ran long")
		}
	})
}
