// Package tracecache is a record-once/replay-many layer for dynamic
// instruction streams. Every cell of a sweep re-executes the same functional
// emulation — ten workloads, dozens of port organizations — so the first run
// of a (program, budget) pair records the committed stream into a compact
// in-memory encoding and every later run replays it through a zero-copy
// trace.Stream, with singleflight across concurrent sweep workers and a
// byte-budget LRU bounding residency.
//
// The encoding exploits that almost every Dyn field is static: PC, opcode,
// class, register operands and access size are properties of the static
// instruction, repeated millions of times by hot loops. Each distinct static
// tuple is interned once into a struct-of-arrays table; the per-instruction
// stream is then just a varint intern ID, plus (for memory operations) a
// zigzag-varint delta from the previous memory address and the access's
// value bytes. Typical cost is 1-2 bytes per ALU instruction and 4-12 per
// memory instruction, versus the ~64 bytes a naive []trace.Dyn would spend.
package tracecache

import (
	"lbic/internal/isa"
	"lbic/internal/trace"
)

// staticInst is one interned static-instruction tuple. Dyn fields that do
// not vary across dynamic instances of the same static instruction live
// here, once.
type staticInst struct {
	pc    int32
	op    isa.Op
	class isa.Class
	src1  isa.Reg
	src2  isa.Reg
	dst   isa.Reg
	size  uint8
	mem   bool
}

const staticInstBytes = 16 // accounting size of one interned tuple

// Trace is an immutable recorded dynamic instruction stream. It is safe for
// concurrent replay: readers carry all mutable state.
type Trace struct {
	insts    []staticInst // interned static tuples, first-seen order
	data     []byte       // per-instruction encoded stream
	n        uint64       // dynamic instruction count
	noValues bool         // memory value bytes elided; replay yields Value 0
}

// Len returns the number of recorded dynamic instructions.
func (t *Trace) Len() uint64 { return t.n }

// SizeBytes returns the trace's accounted memory footprint, the unit of the
// cache's byte budget.
func (t *Trace) SizeBytes() int64 {
	return int64(len(t.data)) + int64(len(t.insts))*staticInstBytes
}

// RecordOptions tunes Record. The zero value matches the historical
// behavior: unbounded recording with memory values preserved.
type RecordOptions struct {
	// MaxInsts bounds the recording; 0 records until the stream ends.
	MaxInsts uint64
	// OmitValues drops memory value bytes from the encoding. Replay then
	// yields Value 0 for every access — fine for timing-only streams
	// (the synthetic generators), unacceptable for -verify oracle runs.
	OmitValues bool
}

// Record drains up to max instructions from s (all of them when max is 0)
// into a new Trace. The timing core never pulls more than its MaxInsts
// budget from a stream, so recording min(len, max) instructions replays
// identically to the live stream under the same budget.
func Record(s trace.Stream, max uint64) *Trace {
	return RecordWith(s, RecordOptions{MaxInsts: max})
}

// RecordWith is Record with explicit options.
func RecordWith(s trace.Stream, opt RecordOptions) *Trace {
	max := opt.MaxInsts
	t := &Trace{noValues: opt.OmitValues}
	ids := make(map[staticInst]uint32)
	var (
		d        trace.Dyn
		prevAddr uint64
	)
	for max == 0 || t.n < max {
		if !s.Next(&d) {
			break
		}
		si := staticInst{
			pc:    int32(d.PC),
			op:    d.Op,
			class: d.Class,
			src1:  d.Src1,
			src2:  d.Src2,
			dst:   d.Dst,
			size:  d.Size,
			mem:   d.IsMem(),
		}
		id, ok := ids[si]
		if !ok {
			id = uint32(len(t.insts))
			ids[si] = id
			t.insts = append(t.insts, si)
		}
		t.data = appendUvarint(t.data, uint64(id))
		if si.mem {
			delta := int64(d.Addr - prevAddr)
			t.data = appendUvarint(t.data, uint64(delta<<1)^uint64(delta>>63))
			prevAddr = d.Addr
			if !t.noValues {
				for i := uint8(0); i < si.size; i++ {
					t.data = append(t.data, byte(d.Value>>(8*i)))
				}
			}
		}
		t.n++
	}
	return t
}

func appendUvarint(b []byte, v uint64) []byte {
	for v >= 0x80 {
		b = append(b, byte(v)|0x80)
		v >>= 7
	}
	return append(b, byte(v))
}

// Reader replays a Trace as a trace.Stream. Each reader is an independent
// cursor; create one per concurrent consumer. Next never allocates.
type Reader struct {
	t        *Trace
	pos      int
	seq      uint64
	prevAddr uint64
}

// NewReader returns a fresh cursor over the trace.
func (t *Trace) NewReader() *Reader { return &Reader{t: t} }

// Next implements trace.Stream. Sequence numbers are consecutive from 0,
// exactly as the emulator assigns them. The cursor is kept in locals with a
// single-byte fast path for both varints: this is the sweep's innermost
// decode loop, and spilling r.pos through the pointer on every byte costs
// more than the decode itself.
func (r *Reader) Next(d *trace.Dyn) bool {
	t := r.t
	b := t.data
	pos := r.pos
	if pos >= len(b) {
		return false
	}
	u := uint64(b[pos])
	pos++
	if u >= 0x80 {
		u, pos = uvarintSlow(b, pos, u)
	}
	si := &t.insts[u]
	*d = trace.Dyn{
		Seq:   r.seq,
		PC:    int(si.pc),
		Op:    si.op,
		Class: si.class,
		Src1:  si.src1,
		Src2:  si.src2,
		Dst:   si.dst,
	}
	r.seq++
	if si.mem {
		z := uint64(b[pos])
		pos++
		if z >= 0x80 {
			z, pos = uvarintSlow(b, pos, z)
		}
		r.prevAddr += uint64(int64(z>>1) ^ -int64(z&1))
		d.Addr = r.prevAddr
		d.Size = si.size
		if !t.noValues {
			var v uint64
			for i := uint8(0); i < si.size; i++ {
				v |= uint64(b[pos]) << (8 * i)
				pos++
			}
			d.Value = v
		}
	}
	r.pos = pos
	return true
}

// uvarintSlow finishes a varint whose first byte (already consumed, passed as
// v with its continuation bit set) did not terminate it.
func uvarintSlow(b []byte, pos int, v uint64) (uint64, int) {
	v &= 0x7f
	for shift := uint(7); ; shift += 7 {
		c := b[pos]
		pos++
		v |= uint64(c&0x7f) << shift
		if c < 0x80 {
			return v, pos
		}
	}
}

var _ trace.Stream = (*Reader)(nil)
