package tracecache

import (
	"context"
	"errors"
	"sync"
	"testing"

	"lbic/internal/emu"
	"lbic/internal/isa"
	"lbic/internal/trace"
	"lbic/internal/workload"
)

// TestRoundTrip replays every workload's recording against a fresh emulator
// and requires Dyn-for-Dyn equality — the property the whole layer rests on.
func TestRoundTrip(t *testing.T) {
	for _, in := range workload.All() {
		in := in
		t.Run(in.Name, func(t *testing.T) {
			prog := in.Build()
			const n = 20_000
			m, err := emu.New(prog)
			if err != nil {
				t.Fatal(err)
			}
			tr := Record(m, n)
			if tr.Len() != n {
				t.Fatalf("recorded %d instructions, want %d", tr.Len(), n)
			}
			if got, naive := tr.SizeBytes(), int64(n*64); got >= naive/4 {
				t.Errorf("trace is %d bytes; want well under a naive encoding's %d", got, naive)
			}
			ref, err := emu.New(prog)
			if err != nil {
				t.Fatal(err)
			}
			r := tr.NewReader()
			var want, got trace.Dyn
			for i := 0; i < n; i++ {
				if !ref.Next(&want) {
					t.Fatalf("reference stream ended early at %d", i)
				}
				if !r.Next(&got) {
					t.Fatalf("replay ended early at %d", i)
				}
				if got != want {
					t.Fatalf("inst %d: replay %+v, want %+v", i, got, want)
				}
			}
			if r.Next(&got) {
				t.Fatalf("replay yielded more than %d instructions", n)
			}
		})
	}
}

// TestReadersAreIndependent runs two interleaved cursors over one trace.
func TestReadersAreIndependent(t *testing.T) {
	prog := mustBench(t, "compress")
	m, err := emu.New(prog)
	if err != nil {
		t.Fatal(err)
	}
	tr := Record(m, 5000)
	a, b := tr.NewReader(), tr.NewReader()
	var da, db trace.Dyn
	for i := 0; i < 5000; i++ {
		if !a.Next(&da) || !b.Next(&db) {
			t.Fatalf("cursor ended early at %d", i)
		}
		if da != db {
			t.Fatalf("inst %d: cursors diverge: %+v vs %+v", i, da, db)
		}
	}
}

// TestSingleflight hammers one key from many goroutines: exactly one
// recording must run, and every caller must get the same trace.
func TestSingleflight(t *testing.T) {
	c := New(0)
	prog := mustBench(t, "gcc")
	const workers = 16
	var (
		wg  sync.WaitGroup
		mu  sync.Mutex
		got = map[trace.Stream]bool{}
	)
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s, err := c.Stream(context.Background(), prog, 10_000)
			if err != nil {
				t.Error(err)
				return
			}
			mu.Lock()
			got[s] = true
			mu.Unlock()
		}()
	}
	wg.Wait()
	st := c.Stats()
	if st.Records != 1 {
		t.Errorf("Records = %d, want 1 (singleflight)", st.Records)
	}
	if st.Hits != workers-1 {
		t.Errorf("Hits = %d, want %d", st.Hits, workers-1)
	}
	if len(got) != workers {
		t.Errorf("got %d distinct readers, want %d (one cursor per caller)", len(got), workers)
	}
}

// TestRecordFailureNotCached asserts a failed recording propagates and the
// next request records afresh.
func TestRecordFailureNotCached(t *testing.T) {
	c := New(0)
	key := Key{Name: "broken", Insts: 10}
	boom := errors.New("boom")
	if _, err := c.GetOrRecord(context.Background(), key, func() (*Trace, error) {
		return nil, boom
	}); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want %v", err, boom)
	}
	tr, err := c.GetOrRecord(context.Background(), key, func() (*Trace, error) {
		return &Trace{}, nil
	})
	if err != nil || tr == nil {
		t.Fatalf("retry after failure: trace=%v err=%v", tr, err)
	}
	st := c.Stats()
	if st.RecordFailures != 1 || st.Records != 2 {
		t.Errorf("stats = %+v, want 1 failure and 2 records", st)
	}
}

// TestRecordPanicReleasesWaiters asserts a panicking recording re-panics in
// the recorder but leaves the entry absent (no wedged waiters, no poison).
func TestRecordPanicReleasesWaiters(t *testing.T) {
	c := New(0)
	key := Key{Name: "panicky", Insts: 10}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("panic did not propagate")
			}
		}()
		c.GetOrRecord(context.Background(), key, func() (*Trace, error) {
			panic("kaboom")
		})
	}()
	if st := c.Stats(); st.Entries != 0 || st.RecordFailures != 1 {
		t.Errorf("after panic: stats = %+v, want no entries and 1 failure", st)
	}
}

// TestEvictionLRU fills a small budget and asserts the least-recently-used
// entry goes first.
func TestEvictionLRU(t *testing.T) {
	mk := func(bytes int) func() (*Trace, error) {
		return func() (*Trace, error) {
			return &Trace{data: make([]byte, bytes), n: 1}, nil
		}
	}
	c := New(300)
	ctx := context.Background()
	keyA := Key{Name: "a", Insts: 1}
	keyB := Key{Name: "b", Insts: 1}
	keyC := Key{Name: "c", Insts: 1}
	c.GetOrRecord(ctx, keyA, mk(120))
	c.GetOrRecord(ctx, keyB, mk(120))
	c.GetOrRecord(ctx, keyA, mk(120)) // touch A: B is now LRU
	c.GetOrRecord(ctx, keyC, mk(120)) // over budget: evict B
	st := c.Stats()
	if st.Evictions != 1 || st.Entries != 2 {
		t.Fatalf("stats = %+v, want 1 eviction and 2 entries", st)
	}
	c.GetOrRecord(ctx, keyA, mk(999)) // must hit, not re-record
	if st := c.Stats(); st.Records != 3 {
		t.Errorf("Records = %d, want 3 (A survived eviction)", st.Records)
	}
}

// TestOversizeNotRetained: a recording bigger than the whole budget serves
// its flight but is not cached.
func TestOversizeNotRetained(t *testing.T) {
	c := New(100)
	tr, err := c.GetOrRecord(context.Background(), Key{Name: "big", Insts: 1}, func() (*Trace, error) {
		return &Trace{data: make([]byte, 500), n: 1}, nil
	})
	if err != nil || tr == nil {
		t.Fatalf("oversize flight: trace=%v err=%v", tr, err)
	}
	st := c.Stats()
	if st.Oversize != 1 || st.Entries != 0 || st.BytesLive != 0 {
		t.Errorf("stats = %+v, want oversize dropped", st)
	}
}

// TestFingerprintDistinguishesPrograms: same name, different content must
// not alias.
func TestFingerprintDistinguishesPrograms(t *testing.T) {
	build := func(imm int64) *isa.Program {
		b := isa.NewBuilder("same-name")
		b.Addi(isa.R(1), isa.R(0), imm)
		b.Halt()
		p, err := b.Build()
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	if Fingerprint(build(1)) == Fingerprint(build(2)) {
		t.Fatal("programs differing only in an immediate share a fingerprint")
	}
	if Fingerprint(build(1)) != Fingerprint(build(1)) {
		t.Fatal("fingerprint is not deterministic")
	}
}

// TestStreamNilCache: a nil *Cache serves a live emulator.
func TestStreamNilCache(t *testing.T) {
	var c *Cache
	s, err := c.Stream(context.Background(), mustBench(t, "compress"), 100)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := s.(*emu.Machine); !ok {
		t.Fatalf("nil cache returned %T, want *emu.Machine", s)
	}
}

// TestStreamBudgetIsPartOfKey: different budgets are distinct recordings.
func TestStreamBudgetIsPartOfKey(t *testing.T) {
	c := New(0)
	prog := mustBench(t, "compress")
	ctx := context.Background()
	for _, n := range []uint64{1000, 2000} {
		s, err := c.Stream(ctx, prog, n)
		if err != nil {
			t.Fatal(err)
		}
		var d trace.Dyn
		count := uint64(0)
		for s.Next(&d) {
			count++
		}
		if count != n {
			t.Fatalf("budget %d replayed %d instructions", n, count)
		}
	}
	if st := c.Stats(); st.Records != 2 {
		t.Errorf("Records = %d, want 2 (budget in key)", st.Records)
	}
}

// TestStreamContextCanceled: a waiter with a dead context fails fast even if
// it would otherwise hit.
func TestStreamContextCanceled(t *testing.T) {
	c := New(0)
	prog := mustBench(t, "compress")
	if _, err := c.Stream(context.Background(), prog, 1000); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := c.Stream(ctx, prog, 1000); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func mustBench(t *testing.T, name string) *isa.Program {
	t.Helper()
	in, ok := workload.ByName(name)
	if !ok {
		t.Fatalf("unknown workload %q", name)
	}
	return in.Build()
}

func BenchmarkReplay(b *testing.B) {
	prog := mustBenchB(b, "compress")
	m, err := emu.New(prog)
	if err != nil {
		b.Fatal(err)
	}
	tr := Record(m, 100_000)
	b.ReportAllocs()
	b.ResetTimer()
	var d trace.Dyn
	for i := 0; i < b.N; i++ {
		r := tr.NewReader()
		for r.Next(&d) {
		}
	}
	b.SetBytes(int64(tr.Len()))
}

func mustBenchB(b *testing.B, name string) *isa.Program {
	b.Helper()
	in, ok := workload.ByName(name)
	if !ok {
		b.Fatalf("unknown workload %q", name)
	}
	return in.Build()
}
