package workload

import "lbic/internal/isa"

// gccKernel models SPEC95 126.gcc: pointer-intensive traversal of linked IR
// nodes with in-place attribute updates, a push-down scratch stack, and
// periodic probes of a large cold symbol table. Two independent list walks
// are interleaved for instruction-level parallelism, as a compiler walking
// several chains (use-def, RTL, notes) exhibits. Table 2 targets: 36.7%
// memory instructions, store-to-load ratio 0.59, 2.4% miss rate — the low
// miss rate reflects gcc's mostly-resident working set.
func init() {
	register(Info{
		Name:  "gcc",
		Suite: "int",
		Build: buildGCC,
		Description: "two interleaved linked-list walks over a resident node " +
			"pool with per-node updates, scratch-stack pushes, and periodic " +
			"cold symbol-table probes",
		PaperMemPct:      36.7,
		PaperStoreToLoad: 0.59,
		PaperMissRate:    0.0240,
	})
}

const (
	gccPoolBase  = 0x10_0000
	gccNodeSize  = 32
	gccNodes     = 768       // 24KB pool: resident in a 32KB L1
	gccStackBase = 0x20_6000 // skewed: disjoint L1 sets from the pool
	gccStackSize = 512
	gccColdBase  = 0x30_0000
	gccColdSize  = 256 << 10
	gccLists     = 2
)

func buildGCC() *isa.Program {
	b := isa.NewBuilder("gcc")
	b.AllocAt(gccPoolBase, gccNodes*gccNodeSize)
	b.AllocAt(gccStackBase, gccStackSize)
	b.AllocAt(gccColdBase, gccColdSize)

	// Node layout: next(8) | val(4) | flag(4) | sum(8) | pad(8).
	// Links are mostly sequential (nodes allocated in traversal order) with
	// a pseudo-random jump every eighth node, like lists after some editing.
	rng := newPRNG(0x6CC)
	for i := 0; i < gccNodes; i++ {
		next := (i + 1) % gccNodes
		if i%8 == 7 {
			next = int(rng.intn(gccNodes))
		}
		addr := uint64(gccPoolBase + i*gccNodeSize)
		b.SetWord64(addr, uint64(gccPoolBase+next*gccNodeSize))
		b.SetWord32(addr+8, uint32(rng.next()))
	}

	var (
		rI       = isa.R(1)
		rSP      = isa.R(2) // scratch stack cursor
		rCold    = isa.R(3)
		rColdAcc = isa.R(17) // sink for cold-probe results
		rHashK   = isa.R(18)
		rN       = isa.R(31)
	)
	// Walk cursors r4..r7, per-walk sums r8..r11, scratch r12..r20.
	ptr := func(w int) isa.Reg { return isa.R(4 + w) }
	sum := func(w int) isa.Reg { return isa.R(8 + w) }

	b.Li(rI, 0)
	b.Li(rSP, gccStackBase)
	b.Li(rCold, gccColdBase)
	b.Li(rColdAcc, 0)
	b.Li(rHashK, 0x9E3779B1)
	b.Li(rN, 1<<40)
	for w := 0; w < gccLists; w++ {
		// Start the walks spread across the pool.
		b.Li(ptr(w), gccPoolBase+int64(w)*(gccNodes/gccLists)*gccNodeSize)
		b.Li(sum(w), 0)
	}

	b.Label("loop")
	for w := 0; w < gccLists; w++ {
		rT, rV := isa.R(12), isa.R(13)
		b.Ld(rT, ptr(w), 0)       // next pointer
		b.Lw(rV, ptr(w), 8)       // val
		b.Add(sum(w), sum(w), rV) // accumulate
		b.Ld(rV, ptr(w), 16)      // attribute word
		b.Add(sum(w), sum(w), rV)
		b.Xor(rV, rV, sum(w)) // attribute compute
		b.Srai(rV, rV, 3)
		b.Sw(rV, ptr(w), 12) // flag update (resident: hits)
		b.Mov(ptr(w), rT)    // advance
	}
	// Push one summary word per iteration onto the scratch stack.
	b.Sd(sum(0), rSP, 0)
	b.Addi(rSP, rSP, 8)
	b.Andi(rSP, rSP, gccStackBase|(gccStackSize-1))
	// Every fourth iteration, probe the cold symbol table. The probe's
	// result accumulates into a sink that never feeds an address, so cold
	// misses overlap instead of chaining into one another.
	b.Andi(isa.R(14), rI, 3)
	b.Bne(isa.R(14), isa.Zero, "nocold")
	b.Mul(isa.R(15), sum(0), rHashK) // pseudo-random index off resident data
	b.Andi(isa.R(15), isa.R(15), gccColdSize-8)
	b.Add(isa.R(15), rCold, isa.R(15))
	b.Ld(isa.R(16), isa.R(15), 0)
	b.Add(rColdAcc, rColdAcc, isa.R(16))
	b.Label("nocold")
	b.Addi(rI, rI, 1)
	b.Blt(rI, rN, "loop")
	b.Halt()
	return b.MustBuild()
}
