package workload

import "lbic/internal/isa"

// swimKernel models SPEC95 102.swim: the shallow-water finite-difference
// sweep over six multi-megabyte arrays (U, V, P and their updates). The
// arrays are deliberately placed at offsets that are multiples of 256 bytes
// apart — so U[i][j], V[i][j] and P[i][j] land in the *same bank* of any
// line-interleaved cache of up to 8 banks but on *different lines*: this is
// the B-diff-line signature Figure 3 reports for swim (33.8%, the highest in
// the suite), which plain multi-banking cannot combine away. The offsets
// differ by 13x256 bytes modulo the 32KB L1, so the direct-mapped cache does
// not thrash. Table 2 targets: 29.5% memory instructions, store-to-load
// ratio 0.28, 6.15% miss rate (three-point row reuse per array).
func init() {
	register(Info{
		Name:  "swim",
		Suite: "fp",
		Build: buildSwim,
		Description: "shallow-water stencil over six large arrays aligned to " +
			"the same bank (B-diff-line conflicts), three-point row reuse",
		PaperMemPct:      29.5,
		PaperStoreToLoad: 0.28,
		PaperMissRate:    0.0615,
	})
}

const (
	swimCols     = 384 // 3KB rows keep the nine active rows resident
	swimRows     = 512
	swimRowBytes = swimCols * 8
	// Array bases: 4MB apart plus 13x256B so banks align but L1 sets differ.
	swimSkew  = 13 * 256
	swimUBase = 0x100_0000
	swimVBase = 0x200_0000 + 1*swimSkew
	swimPBase = 0x300_0000 + 2*swimSkew
	// The update arrays sit at different bank offsets (+32/+64/+96 bytes),
	// as real swim's many arrays do; only U, V, P share a bank.
	swimUNew = 0x400_0000 + 3*swimSkew + 32
	swimVNew = 0x500_0000 + 4*swimSkew + 64
	swimPNew = 0x600_0000 + 5*swimSkew + 96
)

func buildSwim() *isa.Program {
	b := isa.NewBuilder("swim")
	for _, base := range []uint64{swimUBase, swimVBase, swimPBase, swimUNew, swimVNew, swimPNew} {
		b.AllocAt(base, swimRows*swimRowBytes)
	}
	rng := newPRNG(0x5717)
	for j := 0; j < swimCols; j++ {
		v := float64(rng.intn(997)) / 997
		b.SetFloat64(swimUBase+uint64(8*j), v)
		b.SetFloat64(swimVBase+uint64(8*j), 1-v)
		b.SetFloat64(swimPBase+uint64(8*j), v*v)
	}

	var (
		rOff = isa.R(1) // byte offset along the row
		rEnd = isa.R(2)
		rU   = isa.R(3) // row bases
		rV   = isa.R(4)
		rP   = isa.R(5)
		rUN  = isa.R(6)
		rVN  = isa.R(7)
		rPN  = isa.R(8)
		rT1  = isa.R(9)
		rT2  = isa.R(10)
		rT3  = isa.R(11)
		rT4  = isa.R(12)
		rRow = isa.R(13)
		rLim = isa.R(14)
	)
	fU0, fU1, fU2 := isa.F(0), isa.F(1), isa.F(2)
	fV0, fV1, fV2 := isa.F(3), isa.F(4), isa.F(5)
	fP0, fP1, fP2 := isa.F(6), isa.F(7), isa.F(8)
	fA, fB2, fC := isa.F(9), isa.F(10), isa.F(11)
	fRes := isa.F(12)

	b.Label("sweep")
	b.Li(rRow, 1)
	b.Li(rLim, swimRows-1)
	b.Li(rU, swimUBase+swimRowBytes)
	b.Li(rV, int64(swimVBase)+swimRowBytes)
	b.Li(rP, int64(swimPBase)+swimRowBytes)
	b.Li(rUN, int64(swimUNew)+swimRowBytes)
	b.Li(rVN, int64(swimVNew)+swimRowBytes)
	b.Li(rPN, int64(swimPNew)+swimRowBytes)

	b.Label("rows")
	b.Li(rOff, 8)
	b.Li(rEnd, swimRowBytes-8)

	b.Label("cols")
	// Consecutive references U[j], V[j], P[j]: same bank, different lines.
	b.Add(rT1, rU, rOff)
	b.Add(rT2, rV, rOff)
	b.Add(rT3, rP, rOff)
	b.Fld(fU0, rT1, -8)
	b.Fld(fU1, rT1, 0) // same-line pair with fU0
	b.Fld(fV0, rT2, -8)
	b.Fld(fP0, rT3, -8)
	b.Fld(fV1, rT2, 0)
	b.Fld(fP1, rT3, 0)
	b.Fld(fU2, rT1, 8)
	b.Fld(fV2, rT2, 8)
	b.Fld(fP2, rT3, 8)
	// Finite-difference updates.
	b.FSub(fA, fU2, fU0)
	b.FSub(fB2, fV2, fV0)
	b.FSub(fC, fP2, fP0)
	b.FMul(fA, fA, fP1)
	b.FMul(fB2, fB2, fU1)
	b.FMul(fC, fC, fV1)
	b.FAdd(fA, fA, fV1)
	b.FAdd(fB2, fB2, fP1)
	b.FAdd(fC, fC, fU1)
	// Coriolis/viscosity correction terms.
	b.FMul(fU0, fU0, fP2)
	b.FAdd(fA, fA, fU0)
	b.FMul(fV0, fV0, fU2)
	b.FAdd(fB2, fB2, fV0)
	// Stores: UNEW every point, VNEW every point, PNEW every fourth point
	// (store-to-load ratio 9 loads : 2.25 stores = 0.25).
	b.Add(rT4, rUN, rOff)
	b.Fsd(fA, rT4, 0)
	b.Add(rT4, rVN, rOff)
	b.Fsd(fB2, rT4, 0)
	b.Andi(rT4, rOff, 31)
	b.Bne(rT4, isa.Zero, "nopn")
	b.Add(rT4, rPN, rOff)
	b.Fsd(fC, rT4, 0)
	b.Label("nopn")
	// Loop-carried residual: one chained add sets the ILP ceiling.
	b.FAdd(fRes, fRes, fA)
	b.Addi(rOff, rOff, 8)
	b.Blt(rOff, rEnd, "cols")

	for _, r := range []isa.Reg{rU, rV, rP, rUN, rVN, rPN} {
		b.Addi(r, r, swimRowBytes)
	}
	b.Addi(rRow, rRow, 1)
	b.Blt(rRow, rLim, "rows")
	b.J("sweep")
	return b.MustBuild()
}
