package workload

import "lbic/internal/isa"

// compress models SPEC95 129.compress: an LZW-style loop that reads an input
// byte stream sequentially, hashes each symbol, probes a hot code table,
// appends a code to the output stream, pushes bookkeeping onto a small
// stack, and occasionally (on a dictionary miss) inserts a new table entry
// and probes the cold overflow dictionary. Table 2 targets: 37.4% memory
// instructions, store-to-load ratio 0.81, 5.4% L1 miss rate.
//
// Store placement is deliberate: almost all stores (output appends, stack
// pushes) have pointer-chained addresses known long before younger loads
// reach the memory-ordering check ("loads may execute when all prior store
// addresses are known", Table 1). Only the rare dictionary insertion has a
// load-dependent address — as in real compress, where table stores happen
// only when the dictionary grows. Making every table probe a store would
// serialize the whole reference stream through that rule and no port
// organization could help, which is not the behaviour the paper measured.
func init() {
	register(Info{
		Name:  "compress",
		Suite: "int",
		Build: buildCompress,
		Description: "LZW-style symbol loop: sequential input, hot hash-table " +
			"probes, sequential output appends and stack pushes, rare " +
			"dictionary insertions, periodic cold dictionary probes",
		PaperMemPct:      37.4,
		PaperStoreToLoad: 0.81,
		PaperMissRate:    0.0542,
	})
}

const (
	compInBase    = 0x10_0000
	compInSize    = 256 << 10
	compOutBase   = 0x20_0D20 // skewed sets AND +1 bank from the lockstep input cursor
	compOutSize   = 256 << 10
	compStackBase = 0x28_4000 // skewed: disjoint L1 sets from other regions
	compStackSize = 1 << 10
	compHotBase   = 0x30_0000
	compHotSize   = 16 << 10
	compColdBase  = 0x40_0000
	compColdSize  = 512 << 10
	compHashMul   = 0x9E37_79B1
)

func buildCompress() *isa.Program {
	b := isa.NewBuilder("compress")
	b.AllocAt(compInBase, compInSize)
	b.SetBytes(compInBase, newPRNG(0xC0335).byteStream(compInSize))
	b.AllocAt(compOutBase, compOutSize)
	b.AllocAt(compStackBase, compStackSize)
	b.AllocAt(compHotBase, compHotSize)
	b.AllocAt(compColdBase, compColdSize)

	var (
		rI    = isa.R(1) // iteration counter
		rIn   = isa.R(2) // input cursor
		rOut  = isa.R(3) // output cursor
		rHot  = isa.R(4) // hot table base
		rCold = isa.R(5) // cold dictionary base
		rSP   = isa.R(25)
		rSlot = isa.R(26) // most recent probe slot, for the rare insertion
		rAcc  = isa.R(27)
		rMul  = isa.R(30)
		rN    = isa.R(31)
	)

	b.Li(rI, 0)
	b.Li(rIn, compInBase)
	b.Li(rOut, compOutBase)
	b.Li(rHot, compHotBase)
	b.Li(rCold, compColdBase)
	b.Li(rSP, compStackBase)
	b.Li(rSlot, compHotBase)
	b.Li(rAcc, 0)
	b.Li(rMul, compHashMul)
	b.Li(rN, 1<<40)

	// body emits one symbol step: read input byte, hash, probe this symbol's
	// table slot, append the code to the output. appendOut=false swaps the
	// append for a cold-dictionary probe.
	body := func(t0, t1, t2 int, appendOut bool) {
		r6, r7, r9 := isa.R(t0), isa.R(t1), isa.R(t2)
		b.Lbu(r6, rIn, 0)
		b.Addi(rIn, rIn, 1)
		b.Mul(r7, r6, rMul)
		b.Xor(r7, r7, rIn) // mix the position: distinct symbols alone are too few
		b.Andi(r9, r7, compHotSize-8)
		b.Add(rSlot, rHot, r9)
		b.Ld(r9, rSlot, 0)        // probe: code field
		b.Ld(isa.R(28), rSlot, 8) // probe: prefix field (same-line pair)
		b.Add(rAcc, rAcc, r9)
		b.Add(rAcc, rAcc, isa.R(28))
		if appendOut {
			b.Sb(r6, rOut, 0)
			b.Addi(rOut, rOut, 1)
		} else {
			b.Srli(r7, r7, 7)
			b.Andi(r7, r7, compColdSize-8)
			b.Add(r7, rCold, r7)
			b.Ld(r9, r7, 0)
			b.Sb(r6, rOut, 0)
			b.Addi(rOut, rOut, 1)
		}
	}

	b.Label("loop")
	body(6, 7, 8, true)
	body(9, 10, 11, true)
	body(12, 13, 14, true)
	body(15, 16, 17, false)
	// Bookkeeping pushes: pointer-chained addresses, known immediately.
	b.Sd(rAcc, rSP, 0)
	b.Sd(rIn, rSP, 8)
	b.Sd(rOut, rSP, 16)
	b.Sd(rI, rSP, 24)
	b.Addi(rSP, rSP, 32)
	b.Andi(rSP, rSP, compStackBase|(compStackSize-8))
	// Dictionary insertion every other group: the only load-dependent store
	// address, reaching ~8 symbols back.
	b.Andi(isa.R(18), rI, 1)
	b.Bne(isa.R(18), isa.Zero, "noinsert")
	b.Sd(rAcc, rSlot, 0)
	b.Label("noinsert")
	// Wrap the streaming cursors (bases are power-of-two aligned well above
	// the region size, so AND restores the base when the cursor overflows).
	b.Andi(rIn, rIn, compInBase|(compInSize-1))
	b.Li(isa.R(19), compOutBase+compOutSize)
	b.Blt(rOut, isa.R(19), "outok")
	b.Li(rOut, compOutBase)
	b.Label("outok")
	b.Addi(rI, rI, 1)
	b.Blt(rI, rN, "loop")
	b.Halt()
	return b.MustBuild()
}
