package workload

import (
	"testing"

	"lbic/internal/emu"
	"lbic/internal/trace"
)

const charInsts = 400_000

func TestRegistryComplete(t *testing.T) {
	names := Names()
	want := []string{
		"compress", "gcc", "go", "li", "perl",
		"hydro2d", "mgrid", "su2cor", "swim", "wave5",
	}
	if len(names) != len(want) {
		t.Fatalf("kernels = %v, want %v", names, want)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Errorf("kernel %d = %s, want %s", i, names[i], want[i])
		}
	}
}

func TestByName(t *testing.T) {
	if _, ok := ByName("compress"); !ok {
		t.Error("compress not found")
	}
	if _, ok := ByName("nonesuch"); ok {
		t.Error("nonesuch should not resolve")
	}
}

func TestAllKernelsBuildAndValidate(t *testing.T) {
	for _, in := range All() {
		in := in
		t.Run(in.Name, func(t *testing.T) {
			p := in.Build()
			if err := p.Validate(); err != nil {
				t.Fatal(err)
			}
			if p.Name != in.Name {
				t.Errorf("program name %q != kernel name %q", p.Name, in.Name)
			}
		})
	}
}

func TestAllKernelsRunWithoutFault(t *testing.T) {
	for _, in := range All() {
		in := in
		t.Run(in.Name, func(t *testing.T) {
			m, err := emu.New(in.Build())
			if err != nil {
				t.Fatal(err)
			}
			var d trace.Dyn
			for i := 0; i < charInsts; i++ {
				if !m.Next(&d) {
					t.Fatalf("kernel halted after %d instructions; kernels must run indefinitely", i)
				}
			}
		})
	}
}

func TestKernelsDeterministic(t *testing.T) {
	in, _ := ByName("compress")
	s1, err := Characterize(in.Build(), 50_000)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := Characterize(in.Build(), 50_000)
	if err != nil {
		t.Fatal(err)
	}
	if s1 != s2 {
		t.Errorf("characterization not deterministic: %+v vs %+v", s1, s2)
	}
}

// within checks |got-want| <= tol*want (relative tolerance).
func within(got, want, tol float64) bool {
	d := got - want
	if d < 0 {
		d = -d
	}
	return d <= tol*want
}

// TestTable2Characteristics verifies each kernel approximates its SPEC95
// namesake's published memory behaviour (Table 2 of the paper). Tolerances
// are deliberately loose — these are synthetic stand-ins — but tight enough
// that a regression in a kernel's structure is caught.
func TestTable2Characteristics(t *testing.T) {
	if testing.Short() {
		t.Skip("characterization is slow")
	}
	for _, in := range All() {
		in := in
		t.Run(in.Name, func(t *testing.T) {
			s, err := Characterize(in.Build(), charInsts)
			if err != nil {
				t.Fatal(err)
			}
			t.Logf("%-9s mem%%=%5.1f (paper %5.1f)  s/l=%4.2f (paper %4.2f)  miss=%6.4f (paper %6.4f)",
				in.Name, s.MemPct, in.PaperMemPct, s.StoreToLoad, in.PaperStoreToLoad,
				s.MissRate, in.PaperMissRate)
			if !within(s.MemPct, in.PaperMemPct, 0.25) {
				t.Errorf("mem%% = %.1f, paper %.1f (tolerance 25%%)", s.MemPct, in.PaperMemPct)
			}
			if !within(s.StoreToLoad, in.PaperStoreToLoad, 0.35) {
				t.Errorf("store/load = %.2f, paper %.2f (tolerance 35%%)", s.StoreToLoad, in.PaperStoreToLoad)
			}
			// Miss rates get a wide band: same order of magnitude and regime.
			if s.MissRate > 3*in.PaperMissRate+0.01 || s.MissRate < in.PaperMissRate/4 {
				t.Errorf("miss rate = %.4f, paper %.4f (outside [x/4, 3x+0.01])",
					s.MissRate, in.PaperMissRate)
			}
		})
	}
}
