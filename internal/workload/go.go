package workload

import "lbic/internal/isa"

// goKernel models SPEC95 099.go: evaluation of board positions — byte loads
// from a small resident board with neighbor inspection, heavy branching on
// cell contents, influence-map read-modify-writes, a move-history push, and
// periodic lookups in a large pattern library. go is the least
// memory-intensive SPECint program (28.7% memory instructions,
// store-to-load ratio 0.36, 2.7% miss rate): most work is integer compute
// and control flow over resident data.
func init() {
	register(Info{
		Name:  "go",
		Suite: "int",
		Build: buildGo,
		Description: "board-position evaluation: neighbor byte loads on a " +
			"resident board, branchy liberty counting, influence-map " +
			"read-modify-writes, periodic cold pattern-library probes",
		PaperMemPct:      28.7,
		PaperStoreToLoad: 0.36,
		PaperMissRate:    0.0271,
	})
}

const (
	goBoardBase = 0x10_0000
	goBoardSize = 2 << 10   // 2KB board with sentinel ring, resident
	goInflBase  = 0x20_0800 // skewed: disjoint L1 sets from the board
	goInflSize  = 8 << 10   // influence map, resident
	goHistBase  = 0x28_2800 // skewed past the influence map's sets
	goHistSize  = 4 << 10   // move history ring
	goPatBase   = 0x30_0000
	goPatSize   = 256 << 10 // pattern library, cold
	goHashMul   = 0x85EB_CA77
)

func buildGo() *isa.Program {
	b := isa.NewBuilder("go")
	b.AllocAt(goBoardBase, goBoardSize)
	rng := newPRNG(0x60)
	for i := 0; i < goBoardSize; i++ {
		b.SetByte(goBoardBase+uint64(i), byte(rng.intn(3))) // empty/black/white
	}
	b.AllocAt(goInflBase, goInflSize)
	b.AllocAt(goHistBase, goHistSize)
	b.AllocAt(goPatBase, goPatSize)

	var (
		rI     = isa.R(1)
		rBoard = isa.R(2)
		rInfl  = isa.R(3)
		rPat   = isa.R(4)
		rMul   = isa.R(5)
		rHist  = isa.R(6)
		rIdx   = isa.R(7)
		rC     = isa.R(8)
		rN1    = isa.R(9)
		rT     = isa.R(10)
		rU     = isa.R(11)
		rT1    = isa.R(13)
		rAcc   = isa.R(12)
		rN     = isa.R(31)
	)

	b.Li(rI, 0)
	b.Li(rBoard, goBoardBase)
	b.Li(rInfl, goInflBase)
	b.Li(rHist, goHistBase)
	b.Li(rPat, goPatBase)
	b.Li(rMul, goHashMul)
	b.Li(rAcc, 0)
	b.Li(rN, 1<<40)

	b.Label("loop")
	// Pick a pseudo-random interior point from the iteration counter.
	b.Mul(rIdx, rI, rMul)
	b.Andi(rIdx, rIdx, goBoardSize-64) // keep sentinel headroom
	b.Add(rIdx, rBoard, rIdx)
	// Inspect the cell and one neighbor; a second ring only when they clash.
	b.Lbu(rC, rIdx, 33)
	b.Lbu(rN1, rIdx, 32)
	b.Add(rT, rC, rN1)
	b.Beq(rC, rN1, "calm")
	b.Lbu(rU, rIdx, 1) // second-ring look
	b.Xor(rT, rT, rU)
	b.Slli(rT, rT, 1)
	b.Label("calm")
	b.Add(rAcc, rAcc, rT)
	// Influence-map read-modify-write for the evaluated point.
	b.Andi(rT, rIdx, goInflSize-4)
	b.Add(rT, rInfl, rT)
	b.Lw(rU, rT, 0)
	b.Add(rU, rU, rAcc)
	b.Sw(rU, rT, 0)
	// Consult the most recent history entry, then record a move every
	// fourth evaluation.
	b.Lw(rT1, rHist, 0)
	b.Add(rAcc, rAcc, rT1)
	b.Andi(rT, rI, 1)
	b.Bne(rT, isa.Zero, "nohist")
	b.Sw(rAcc, rHist, 0)
	b.Addi(rHist, rHist, 4)
	b.Andi(rHist, rHist, goHistBase|(goHistSize-1))
	b.Label("nohist")
	// Every 16th evaluation consults the cold pattern library.
	b.Andi(rT, rI, 15)
	b.Bne(rT, isa.Zero, "nopat")
	b.Mul(rT, rAcc, rMul)
	b.Andi(rT, rT, goPatSize-8)
	b.Add(rT, rPat, rT)
	b.Ld(rT, rT, 0)
	b.Add(rAcc, rAcc, rT)
	b.Label("nopat")
	b.Addi(rI, rI, 1)
	b.Blt(rI, rN, "loop")
	b.Halt()
	return b.MustBuild()
}
