package workload

import "lbic/internal/isa"

// wave5Kernel models SPEC95 146.wave5: a particle-in-cell plasma step.
// Particle coordinates and velocities stream sequentially; each particle
// gathers field values from a grid cell derived from its coordinate,
// updates them (scatter-add), and advances its position. Because particles
// are spatially sorted with jitter, grid accesses show windowed locality —
// wave5's 11% miss rate sits between the streaming and resident extremes.
// Table 2 targets: 31.6% memory instructions, store-to-load ratio 0.39.
func init() {
	register(Info{
		Name:  "wave5",
		Suite: "fp",
		Build: buildWave5,
		Description: "particle-in-cell step: sequential particle streams, " +
			"jittered windowed gather/scatter into a field grid",
		PaperMemPct:      31.6,
		PaperStoreToLoad: 0.39,
		PaperMissRate:    0.1103,
	})
}

const (
	waveParts    = 64 << 10 // particles per sweep
	waveXBase    = 0x100_0000
	waveVBase    = 0x200_0D00 // skewed: disjoint L1 sets from X
	waveGridBase = 0x300_1A00 // skewed past V's sets
	waveGridSize = 512 << 10  // field grid
	waveWindow   = 32 << 10   // jitter window within the grid
	waveDepBase  = 0x400_2700 // deposit buffer (skewed sets)
	waveDepSize  = 2 << 10
)

func buildWave5() *isa.Program {
	b := isa.NewBuilder("wave5")
	b.AllocAt(waveXBase, waveParts*8)
	b.AllocAt(waveVBase, waveParts*8)
	b.AllocAt(waveGridBase, waveGridSize)
	b.AllocAt(waveDepBase, waveDepSize)
	rng := newPRNG(0x3435)
	// Sorted positions with jitter: position ~ particle index scaled, so the
	// gather window slides as the particle loop advances.
	for i := 0; i < waveParts; i++ {
		pos := float64(i)*float64(waveGridSize)/float64(waveParts) +
			float64(rng.intn(waveWindow))
		b.SetFloat64(waveXBase+uint64(8*i), pos)
		b.SetFloat64(waveVBase+uint64(8*i), float64(rng.intn(997))/997-0.5)
	}

	var (
		rP    = isa.R(1) // particle cursor (byte offset)
		rEnd  = isa.R(2)
		rX    = isa.R(3)
		rV    = isa.R(4)
		rGrid = isa.R(5)
		rC    = isa.R(6) // cell address
		rDep  = isa.R(8) // deposit buffer cursor
		rT    = isa.R(7)
	)
	fX, fV, fE1, fE2 := isa.F(0), isa.F(1), isa.F(2), isa.F(3)
	fDT, fQ := isa.F(4), isa.F(5)
	fT1, fT2 := isa.F(6), isa.F(7)
	fEn := isa.F(8) // loop-carried energy accumulation

	coeff := b.Alloc(16, 8)
	b.SetFloat64(coeff, 0.0078125) // dt
	b.SetFloat64(coeff+8, 1.5)     // charge weight
	b.Li(rT, int64(coeff))
	b.Fld(fDT, rT, 0)
	b.Fld(fQ, rT, 8)
	b.Li(rX, waveXBase)
	b.Li(rV, waveVBase)
	b.Li(rGrid, waveGridBase)
	b.Li(rDep, waveDepBase)

	b.Label("sweep")
	b.Li(rP, 0)
	b.Li(rEnd, waveParts*8)

	b.Label("part")
	b.Add(rT, rX, rP)
	b.Fld(fX, rT, 0) // position (sequential)
	b.Add(rT, rV, rP)
	b.Fld(fV, rT, 0) // velocity (sequential)
	// Cell index from the position: windowed locality.
	b.CvtFI(rC, fX)
	b.Andi(rC, rC, (waveGridSize-32)&^7) // bound and 8-byte align
	b.Add(rC, rGrid, rC)
	// Gather three field values from the cell's line.
	b.Fld(fE1, rC, 0)
	b.Fld(fE2, rC, 8)
	b.Fld(fT2, rC, 16)
	b.FAdd(fE2, fE2, fT2)
	// Field update and scatter-add.
	b.FMul(fT1, fV, fQ)
	b.FAdd(fE1, fE1, fT1)
	b.FSub(fE2, fE2, fT1)
	// Deposit buffering: the charge contribution is appended to a small
	// sequential deposit buffer (applied to the grid in bulk by a later
	// phase), a standard particle-in-cell optimization. The deposit
	// store's address is pointer-chained and thus known immediately; a
	// scatter store aimed at the gathered cell would hang its address off
	// this particle's position load and serialize the whole reference
	// stream through the Table 1 memory-ordering rule.
	b.Fsd(fE1, rDep, 0)
	b.Addi(rDep, rDep, 8)
	b.Andi(rDep, rDep, waveDepBase|(waveDepSize-8))
	// Particle push.
	b.FMul(fT2, fE2, fDT)
	b.FAdd(fV, fV, fT2)
	b.FMul(fT2, fV, fDT)
	b.FAdd(fX, fX, fT2)
	b.Add(rT, rX, rP)
	b.Fsd(fX, rT, 0) // position update (hits: same line as the load)
	// Energy accumulation (loop-carried).
	b.FMul(fT1, fV, fV)
	b.FAdd(fEn, fEn, fT1)
	b.FAdd(fEn, fEn, fT2)
	b.Addi(rP, rP, 8)
	b.Blt(rP, rEnd, "part")
	b.J("sweep")
	return b.MustBuild()
}
