package workload

import (
	"fmt"

	"lbic/internal/isa"
)

// Synthetic access-pattern microbenchmarks. Unlike the SPEC95-like kernels,
// these isolate one reference-stream property each, so a port organization's
// response can be read off directly: unit strides reward any banking,
// same-line bursts reward combining, single-bank strides defeat bit
// selection, random streams behave statistically, and pointer chases remove
// memory parallelism altogether.

// PatternInfo describes one microbenchmark pattern.
type PatternInfo struct {
	Name        string
	Description string
	Build       func() *isa.Program
}

var patterns = []PatternInfo{
	{
		Name: "unit-stride",
		Description: "sequential 8-byte loads with one store per four loads; " +
			"the friendliest stream for every organization",
		Build: func() *isa.Program { return buildStride("unit-stride", 8, 1<<20, 4) },
	},
	{
		Name: "line-stride",
		Description: "loads one cache line apart: consecutive references " +
			"always change bank under bit selection",
		Build: func() *isa.Program { return buildStride("line-stride", 32, 16<<10, 4) }, // resident: isolates port behaviour
	},
	{
		Name: "bank-stride",
		Description: "loads 128 bytes apart: every reference maps to the " +
			"same bank of a 4-bank bit-selected cache (the pathological " +
			"stride), though pseudo-random selection spreads it",
		Build: func() *isa.Program { return buildStride("bank-stride", 128, 16<<10, 4) }, // resident: isolates port behaviour
	},
	{
		Name: "same-line-burst",
		Description: "four references to each line before moving on: the " +
			"pattern access combining exists for",
		Build: buildSameLineBurst,
	},
	{
		Name: "random",
		Description: "uniform pseudo-random loads over 1MB: statistically " +
			"balanced banks, ~100% misses, the multi-bank design's best case",
		Build: buildRandom,
	},
	{
		Name: "pointer-chase",
		Description: "a serial dependent chain through an 8KB ring: no " +
			"memory parallelism for any organization to exploit",
		Build: buildChase,
	},
	{
		Name: "store-burst",
		Description: "three stores per load over a resident region: the " +
			"replicated design's worst case",
		Build: buildStoreBurst,
	},
}

// Patterns lists the access-pattern microbenchmarks.
func Patterns() []PatternInfo {
	out := make([]PatternInfo, len(patterns))
	copy(out, patterns)
	return out
}

// PatternByName finds a microbenchmark pattern.
func PatternByName(name string) (PatternInfo, bool) {
	for _, p := range patterns {
		if p.Name == name {
			return p, true
		}
	}
	return PatternInfo{}, false
}

const patBase = 0x100_0000

// buildStride emits independent loads at the given byte stride over a
// region, with one store per storeEvery loads (0 = no stores). Iterations
// are unrolled four ways so ample parallelism reaches the memory system.
func buildStride(name string, stride int64, region int, storeEvery int) *isa.Program {
	b := isa.NewBuilder(name)
	b.AllocAt(patBase, region)
	var (
		rP   = isa.R(1)
		rEnd = isa.R(2)
	)
	// One accumulator per unrolled lane: a single accumulator would chain
	// four one-cycle adds per iteration and hide every port effect.
	acc := func(k int) isa.Reg { return isa.R(8 + k) }
	b.Li(rP, patBase)
	b.Li(rEnd, patBase+int64(region)-4*stride)
	b.Label("loop")
	for k := 0; k < 4; k++ {
		r := isa.R(4 + k)
		b.Ld(r, rP, int64(k)*stride)
		b.Add(acc(k), acc(k), r)
		if storeEvery > 0 && k == 3 {
			b.Sd(acc(k), rP, int64(k)*stride) // write back the line just read
		}
	}
	b.Addi(rP, rP, 4*stride)
	b.Blt(rP, rEnd, "loop")
	b.Li(rP, patBase)
	b.J("loop")
	return b.MustBuild()
}

// buildSameLineBurst touches each 32-byte line with four references (three
// loads and a store) before advancing.
func buildSameLineBurst() *isa.Program {
	b := isa.NewBuilder("same-line-burst")
	region := 16 << 10 // resident: isolates the combining effect
	b.AllocAt(patBase, region)
	var (
		rP   = isa.R(1)
		rEnd = isa.R(2)
		rAcc = isa.R(3)
	)
	b.Li(rP, patBase)
	b.Li(rEnd, patBase+int64(region)-64)
	b.Label("loop")
	for k := 0; k < 2; k++ { // two lines per iteration
		off := int64(k) * 32
		b.Ld(isa.R(4), rP, off)
		b.Ld(isa.R(5), rP, off+8)
		b.Ld(isa.R(6), rP, off+16)
		b.Add(rAcc, isa.R(4), isa.R(5))
		b.Sd(rAcc, rP, off+24)
	}
	b.Addi(rP, rP, 64)
	b.Blt(rP, rEnd, "loop")
	b.Li(rP, patBase)
	b.J("loop")
	return b.MustBuild()
}

// buildRandom emits independent pseudo-random loads over 1MB via a multiply
// hash of the iteration counter (no load-to-address chains, so misses
// overlap freely).
func buildRandom() *isa.Program {
	b := isa.NewBuilder("random")
	region := 1 << 20
	b.AllocAt(patBase, region)
	var (
		rI   = isa.R(1)
		rMul = isa.R(2)
		rB   = isa.R(3)
		rN   = isa.R(31)
	)
	acc := func(k int) isa.Reg { return isa.R(13 + k) }
	b.Li(rI, 0)
	b.Li(rMul, 0x9E3779B97F4A7C15-1<<63) // golden-ratio constant, wrapped to int64
	b.Li(rB, patBase)
	b.Li(rN, 1<<40)
	b.Label("loop")
	for k := 0; k < 4; k++ {
		rT := isa.R(5 + 2*k)
		rV := isa.R(6 + 2*k)
		b.Addi(rT, rI, int64(k))
		b.Mul(rT, rT, rMul)
		b.Srli(rT, rT, 24)
		b.Andi(rT, rT, int64(region-8))
		b.Add(rT, rB, rT)
		b.Ld(rV, rT, 0)
		b.Add(acc(k), acc(k), rV)
	}
	b.Addi(rI, rI, 4)
	b.Blt(rI, rN, "loop")
	b.Halt()
	return b.MustBuild()
}

// buildChase walks a pre-linked pointer ring: each load's address is the
// previous load's data, so at most one access is ever ready.
func buildChase() *isa.Program {
	b := isa.NewBuilder("pointer-chase")
	const cells = 512 // 8KB ring, resident
	b.AllocAt(patBase, cells*16)
	rng := newPRNG(0xCAFE)
	// Random permutation cycle so hardware prefetch-like regularity is absent.
	perm := make([]int, cells)
	for i := range perm {
		perm[i] = i
	}
	for i := cells - 1; i > 0; i-- {
		j := int(rng.intn(uint64(i + 1)))
		perm[i], perm[j] = perm[j], perm[i]
	}
	for i := 0; i < cells; i++ {
		from, to := perm[i], perm[(i+1)%cells]
		b.SetWord64(patBase+uint64(from*16), uint64(patBase+to*16))
	}
	var (
		rP = isa.R(1)
		rN = isa.R(31)
		rI = isa.R(2)
	)
	b.Li(rP, patBase+int64(perm[0])*16)
	b.Li(rI, 0)
	b.Li(rN, 1<<40)
	b.Label("loop")
	b.Ld(rP, rP, 0) // the chain
	b.Addi(rI, rI, 1)
	b.Blt(rI, rN, "loop")
	b.Halt()
	return b.MustBuild()
}

// buildStoreBurst emits three stores per load over a resident region, all
// with pointer-chained addresses.
func buildStoreBurst() *isa.Program {
	b := isa.NewBuilder("store-burst")
	region := 16 << 10
	b.AllocAt(patBase, region)
	var (
		rP   = isa.R(1)
		rEnd = isa.R(2)
		rV   = isa.R(3)
	)
	b.Li(rP, patBase)
	b.Li(rEnd, patBase+int64(region)-64)
	b.Label("loop")
	b.Ld(rV, rP, 0)
	b.Sd(rV, rP, 64)
	b.Sd(rV, rP, 128)
	b.Sd(rV, rP, 192)
	b.Addi(rP, rP, 8)
	b.Blt(rP, rEnd, "loop")
	b.Li(rP, patBase)
	b.J("loop")
	return b.MustBuild()
}

// String returns the pattern's name for display.
func (p PatternInfo) String() string { return fmt.Sprintf("%s: %s", p.Name, p.Description) }
