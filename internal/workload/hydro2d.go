package workload

import "lbic/internal/isa"

// hydro2dKernel models SPEC95 104.hydro2d: a five-point stencil sweep of a
// 2D hydrodynamics grid far larger than the L1 (each array ~3.3MB), with a
// flux side-array written every other column and a loop-carried residual
// reduction. Row working sets fit in the 32KB L1, so vertical neighbors are
// reused across row sweeps and the miss rate comes from the leading-edge
// streams, landing near the paper's 10.1%. Table 2 targets: 25.9% memory
// instructions (hydro2d is compute-dense), store-to-load ratio 0.30.
func init() {
	register(Info{
		Name:  "hydro2d",
		Suite: "fp",
		Build: buildHydro2d,
		Description: "five-point stencil over a multi-megabyte 2D grid with " +
			"flux writes and a residual reduction; row reuse bounds misses",
		PaperMemPct:      25.9,
		PaperStoreToLoad: 0.30,
		PaperMissRate:    0.1010,
	})
}

const (
	hydroCols     = 448 // row length in doubles (3.5KB rows: two sweeps of rows stay resident)
	hydroRows     = 640
	hydroRowBytes = hydroCols * 8
	// Distinct row strides (classic array padding): with equal strides the
	// three arrays' rows tile the direct-mapped index space in lockstep and
	// thrash; differing pads make conflicts drift and wash out.
	hydroStrideA = hydroRowBytes + 64  // drifts one bank every two rows
	hydroStrideB = hydroRowBytes + 160 // drifts: B's three live rows span banks
	hydroStrideF = hydroRowBytes + 224
	hydroABase   = 0x100_0000
	hydroBBase   = 0x200_0D00 // skewed: disjoint L1 sets from A
	hydroFBase   = 0x300_1A00 // skewed past B's sets
)

func buildHydro2d() *isa.Program {
	b := isa.NewBuilder("hydro2d")
	b.AllocAt(hydroABase, hydroRows*hydroStrideA)
	b.AllocAt(hydroBBase, hydroRows*hydroStrideB)
	b.AllocAt(hydroFBase, hydroRows*hydroStrideF)
	// Seed the first source row; the sweep propagates values downward.
	rng := newPRNG(0x4D20)
	for j := 0; j < hydroCols; j++ {
		b.SetFloat64(hydroBBase+uint64(8*j), float64(rng.intn(1000))/997)
	}

	var (
		rI   = isa.R(1) // row index
		rOff = isa.R(2) // byte offset within the row
		rEnd = isa.R(3) // row end offset
		rB   = isa.R(4) // &b[i][0]
		rBm  = isa.R(5) // &b[i-1][0]
		rBp  = isa.R(6) // &b[i+1][0]
		rA   = isa.R(7) // &a[i][0]
		rF   = isa.R(8) // &flux[i][0]
		rT1  = isa.R(9)
		rT2  = isa.R(10)
		rT3  = isa.R(11)
		rT4  = isa.R(12)
		rT5  = isa.R(13)
		rLim = isa.R(14) // last interior row base
		f0   = isa.F(0)  // coefficient c0
		f1   = isa.F(1)  // coefficient c1
		fRes = isa.F(2)  // loop-carried residual
	)

	// Load coefficients (0.25 and 0.5) from a small constant pool.
	coeff := b.Alloc(16, 8)
	b.SetFloat64(coeff, 0.25)
	b.SetFloat64(coeff+8, 0.5)
	b.Li(rT1, int64(coeff))
	b.Fld(f0, rT1, 0)
	b.Fld(f1, rT1, 8)

	b.Li(rI, 1)
	b.Li(rB, hydroBBase+hydroStrideB)
	b.Li(rA, hydroABase+hydroStrideA)
	b.Li(rF, hydroFBase+hydroStrideF)
	b.Li(rLim, hydroBBase+int64(hydroRows-2)*hydroStrideB)

	b.Label("rows")
	b.Addi(rBm, rB, -hydroStrideB)
	b.Addi(rBp, rB, hydroStrideB)
	b.Li(rOff, 8)
	b.Li(rEnd, hydroRowBytes-16)

	b.Label("cols")
	// Two stencil points per iteration; the second also writes the flux.
	body := func(d int64, flux bool) {
		fW, fE, fN, fS := isa.F(8), isa.F(9), isa.F(10), isa.F(11)
		fC, fX := isa.F(12), isa.F(13)
		b.Add(rT1, rB, rOff)
		b.Add(rT2, rBm, rOff)
		b.Add(rT3, rBp, rOff)
		b.Add(rT4, rA, rOff)
		b.Fld(fW, rT1, d-8)
		b.Fld(fE, rT1, d+8)
		b.Fld(fN, rT2, d)
		b.Fld(fS, rT3, d)
		b.Fld(fC, rT4, d) // previous value of the destination point
		b.FAdd(fW, fW, fE)
		b.FAdd(fN, fN, fS)
		b.FAdd(fW, fW, fN)
		b.FMul(fW, fW, f0) // neighbor average
		b.FMul(fC, fC, f1)
		b.FAdd(fX, fW, fC) // relaxation step
		b.FMul(fN, fN, f1) // higher-order correction terms
		b.FAdd(fX, fX, fN)
		b.FMul(fS, fS, f0)
		b.FAdd(fX, fX, fS)
		b.Fsd(fX, rT4, d)
		if flux {
			b.Add(rT5, rF, rOff)
			b.FSub(fE, fE, fW)
			b.Fsd(fE, rT5, d)
		}
		b.FAdd(fRes, fRes, fX) // loop-carried residual reduction
	}
	body(0, false)
	body(8, true)
	b.Addi(rOff, rOff, 16)
	b.Blt(rOff, rEnd, "cols")

	// Advance one row; wrap the sweep when the grid bottom is reached.
	b.Addi(rB, rB, hydroStrideB)
	b.Addi(rA, rA, hydroStrideA)
	b.Addi(rF, rF, hydroStrideF)
	b.Addi(rI, rI, 1)
	b.Blt(rB, rLim, "rows")
	b.Li(rI, 1)
	b.Li(rB, hydroBBase+hydroStrideB)
	b.Li(rA, hydroABase+hydroStrideA)
	b.Li(rF, hydroFBase+hydroStrideF)
	b.J("rows")
	return b.MustBuild()
}
