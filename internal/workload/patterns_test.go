package workload

import (
	"testing"

	"lbic/internal/emu"
	"lbic/internal/trace"
)

func TestPatternRegistry(t *testing.T) {
	pats := Patterns()
	if len(pats) != 7 {
		t.Fatalf("patterns = %d, want 7", len(pats))
	}
	if _, ok := PatternByName("unit-stride"); !ok {
		t.Error("unit-stride missing")
	}
	if _, ok := PatternByName("bogus"); ok {
		t.Error("bogus pattern resolved")
	}
	for _, p := range pats {
		if p.Description == "" || p.String() == "" {
			t.Errorf("%s: missing description", p.Name)
		}
	}
}

func TestPatternsBuildAndRun(t *testing.T) {
	for _, p := range Patterns() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			prog := p.Build()
			if err := prog.Validate(); err != nil {
				t.Fatal(err)
			}
			m, err := emu.New(prog)
			if err != nil {
				t.Fatal(err)
			}
			var d trace.Dyn
			for i := 0; i < 50_000; i++ {
				if !m.Next(&d) {
					t.Fatalf("pattern halted after %d instructions", i)
				}
			}
		})
	}
}

func TestPatternStreamShapes(t *testing.T) {
	// Each pattern must actually exhibit the stream property it names.
	stream := func(name string, n int) []trace.Dyn {
		in, ok := PatternByName(name)
		if !ok {
			t.Fatalf("pattern %s missing", name)
		}
		m, err := emu.New(in.Build())
		if err != nil {
			t.Fatal(err)
		}
		var out []trace.Dyn
		var d trace.Dyn
		for len(out) < n && m.Next(&d) {
			if d.IsMem() {
				out = append(out, d)
			}
		}
		return out
	}

	// unit-stride: monotone addresses within a sweep, 8 bytes apart.
	refs := stream("unit-stride", 64)
	loads := 0
	for _, r := range refs {
		if r.IsLoad() {
			loads++
		}
	}
	if loads*1 < len(refs)*3/5 {
		t.Errorf("unit-stride loads = %d of %d, want >= 4:1 mix", loads, len(refs))
	}

	// bank-stride: every reference in the same bank (4 banks, 32B lines).
	for _, r := range stream("bank-stride", 64) {
		if (r.Addr>>5)&3 != (uint64(patBase)>>5)&3 {
			t.Fatalf("bank-stride reference %#x leaves the base bank", r.Addr)
		}
	}

	// same-line-burst: runs of four references per line.
	line := uint64(0xffffffff)
	runLen, minRun := 0, 99
	bursts := stream("same-line-burst", 64)
	for i, r := range bursts {
		if r.Addr>>5 == line {
			runLen++
			continue
		}
		if i > 0 && runLen < minRun {
			minRun = runLen
		}
		line = r.Addr >> 5
		runLen = 1
	}
	if minRun < 4 {
		t.Errorf("same-line-burst min run = %d, want 4", minRun)
	}

	// pointer-chase: every load's address equals the previous load's value
	// by construction; just confirm it is all loads with irregular deltas.
	chase := stream("pointer-chase", 64)
	regular := 0
	for i := 1; i < len(chase); i++ {
		if !chase[i].IsLoad() {
			t.Fatal("pointer-chase emitted a store")
		}
		if chase[i].Addr == chase[i-1].Addr+16 {
			regular++
		}
	}
	if regular > len(chase)/2 {
		t.Errorf("pointer-chase looks sequential (%d of %d steps)", regular, len(chase))
	}

	// store-burst: stores dominate 3:1.
	stores := 0
	sb := stream("store-burst", 64)
	for _, r := range sb {
		if r.IsStore() {
			stores++
		}
	}
	if stores*4 < len(sb)*11/4 {
		t.Errorf("store-burst stores = %d of %d, want ~3:1", stores, len(sb))
	}
}

func TestPatternsDeterministic(t *testing.T) {
	in, _ := PatternByName("random")
	a, err := Characterize(in.Build(), 20_000)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Characterize(in.Build(), 20_000)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("random pattern not deterministic across builds")
	}
}
