package workload

import "lbic/internal/isa"

// mgridKernel models SPEC95 107.mgrid: the 27-point stencil of the multigrid
// smoother over a 3D grid. Each point reads 27 neighbors and writes one
// result, giving mgrid its extreme load dominance (store-to-load ratio 0.04,
// the lowest in SPEC95) and massive data parallelism — the reason it scales
// best with ideal ports in the paper (18.6 IPC at 16 ports). Nine row base
// addresses are computed per (i,j) pair, and the inner k loop streams along
// rows, so consecutive references hit the same line three at a time.
func init() {
	register(Info{
		Name:  "mgrid",
		Suite: "fp",
		Build: buildMgrid,
		Description: "27-point multigrid smoother over a 3D grid: 27 loads and " +
			"one store per point, row-streaming with heavy line reuse",
		PaperMemPct:      36.8,
		PaperStoreToLoad: 0.04,
		PaperMissRate:    0.0402,
	})
}

const (
	mgridN        = 48 // grid edge: 48^3 doubles ≈ 864KB per array
	mgridRowBytes = mgridN * 8
	mgridPlane    = mgridN * mgridRowBytes
	mgridUBase    = 0x100_0000 // source grid
	mgridRBase    = 0x200_0D00 // result grid, skewed to disjoint L1 sets
)

func buildMgrid() *isa.Program {
	b := isa.NewBuilder("mgrid")
	b.AllocAt(mgridUBase, mgridN*mgridPlane)
	b.AllocAt(mgridRBase, mgridN*mgridPlane)
	rng := newPRNG(0x369)
	// Seed one plane; values propagate as the smoother iterates.
	for j := 0; j < mgridN; j++ {
		for k := 0; k < mgridN; k++ {
			b.SetFloat64(mgridUBase+uint64(j*mgridRowBytes+k*8),
				float64(rng.intn(997))/997)
		}
	}

	var (
		rI    = isa.R(1) // plane index base address (&u[i][0][0])
		rJ    = isa.R(2) // row address within the plane (&u[i][j][0])
		rOff  = isa.R(3) // byte offset along k
		rEnd  = isa.R(4)
		rRes  = isa.R(5)  // &r[i][j][0]
		rT    = isa.R(20) // scratch address
		rILim = isa.R(29)
		rJLim = isa.R(30)
	)
	// Nine row bases: rows (di, dj) for di,dj in {-1,0,1}.
	rowReg := func(n int) isa.Reg { return isa.R(6 + n) } // r6..r14

	coeff := b.Alloc(32, 8)
	b.SetFloat64(coeff, 1.0/6)
	b.SetFloat64(coeff+8, 1.0/12)
	b.SetFloat64(coeff+16, 1.0/24)
	b.SetFloat64(coeff+24, 0.5)
	fC0, fC1, fC2, fC3 := isa.F(0), isa.F(1), isa.F(2), isa.F(3)
	fRes := isa.F(4) // loop-carried residual chain
	b.Li(rT, int64(coeff))
	b.Fld(fC0, rT, 0)
	b.Fld(fC1, rT, 8)
	b.Fld(fC2, rT, 16)
	b.Fld(fC3, rT, 24)

	b.Label("sweep")
	b.Li(rI, mgridUBase+mgridPlane)
	b.Li(rILim, mgridUBase+int64(mgridN-2)*mgridPlane)

	b.Label("planes")
	b.Addi(rJ, rI, mgridRowBytes)
	b.Addi(rJLim, rI, (mgridN-2)*mgridRowBytes)

	b.Label("rows")
	// Compute the nine row bases for (i±1, j±1).
	n := 0
	for di := -1; di <= 1; di++ {
		for dj := -1; dj <= 1; dj++ {
			b.Addi(rowReg(n), rJ, int64(di)*mgridPlane+int64(dj)*mgridRowBytes)
			n++
		}
	}
	// Result row: r + (rJ - u).
	b.Li(rT, mgridRBase-mgridUBase)
	b.Add(rRes, rJ, rT)
	b.Li(rOff, 8)
	b.Li(rEnd, mgridRowBytes-8)

	b.Label("k")
	// 27 loads: three per row (k-1, k, k+1), summed in three weight groups:
	// center row gets c0 on its middle element, faces c1, edges/corners c2.
	fSumF, fSumE, fSumC := isa.F(8), isa.F(9), isa.F(10)
	fA, fB2, fC4 := isa.F(11), isa.F(12), isa.F(13)
	fCtr, fT := isa.F(14), isa.F(15)
	first := true
	for row := 0; row < 9; row++ {
		b.Add(rT, rowReg(row), rOff)
		b.Fld(fA, rT, -8)
		b.Fld(fB2, rT, 0)
		b.Fld(fC4, rT, 8)
		center := row == 4
		if center {
			b.FAdd(fT, fA, fC4)    // faces along k
			b.FAdd(fCtr, fB2, fB2) // center value (doubled, rescaled below)
		} else {
			b.FAdd(fT, fA, fC4)
			b.FAdd(fT, fT, fB2)
		}
		if first {
			b.FSub(fSumF, fT, fT) // zero the group accumulators
			b.FSub(fSumE, fT, fT)
			b.FAdd(fSumC, fT, fSumF)
			first = false
		} else {
			switch {
			case center:
				b.FAdd(fSumF, fSumF, fT)
			case row%2 == 1: // face-adjacent rows
				b.FAdd(fSumE, fSumE, fT)
			default: // corner rows
				b.FAdd(fSumC, fSumC, fT)
			}
		}
	}
	b.FMul(fSumF, fSumF, fC0)
	b.FMul(fSumE, fSumE, fC1)
	b.FMul(fSumC, fSumC, fC2)
	b.FMul(fCtr, fCtr, fC3)
	b.FAdd(fSumF, fSumF, fSumE)
	b.FAdd(fSumC, fSumC, fCtr)
	b.FAdd(fSumF, fSumF, fSumC)
	b.Add(rT, rRes, rOff)
	b.Fsd(fSumF, rT, 0)
	// Two chained residual adds bound the loop ILP near the paper's level.
	b.FAdd(fRes, fRes, fSumF)
	b.FAdd(fRes, fRes, fSumC)
	b.Addi(rOff, rOff, 8)
	b.Blt(rOff, rEnd, "k")

	b.Addi(rJ, rJ, mgridRowBytes)
	b.Blt(rJ, rJLim, "rows")
	b.Addi(rI, rI, mgridPlane)
	b.Blt(rI, rILim, "planes")
	b.J("sweep")
	return b.MustBuild()
}
