package workload

// prng is a small deterministic xorshift64* generator used to synthesize
// kernel input data (compressed streams, particle positions, pointer pools).
// Workloads must be reproducible run to run, so kernels never depend on
// wall-clock or math/rand global state.
type prng struct{ s uint64 }

func newPRNG(seed uint64) *prng {
	if seed == 0 {
		seed = 0x9e3779b97f4a7c15
	}
	return &prng{s: seed}
}

func (p *prng) next() uint64 {
	p.s ^= p.s >> 12
	p.s ^= p.s << 25
	p.s ^= p.s >> 27
	return p.s * 0x2545f4914f6cdd1d
}

// intn returns a value in [0, n).
func (p *prng) intn(n uint64) uint64 { return p.next() % n }

// byteStream fills a buffer with skewed pseudo-random bytes (a rough stand-in
// for English-ish text with repeated symbols, as a compressor would see).
func (p *prng) byteStream(n int) []byte {
	buf := make([]byte, n)
	for i := range buf {
		v := p.next()
		// Skew toward a small alphabet: half the bytes from 16 hot symbols.
		if v&1 == 0 {
			buf[i] = byte(97 + (v>>1)%16)
		} else {
			buf[i] = byte(v >> 3)
		}
	}
	return buf
}
