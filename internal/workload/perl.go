package workload

import "lbic/internal/isa"

// perlKernel models SPEC95 134.perl: string scanning and hashing — paired
// per-byte loads from a text corpus, paired buffer-copy stores, comparison
// re-reads of stored keys, and a hash-table probe/update per string chunk.
// perl is store-rich (store-to-load 0.69) and memory-dense (43.7%) with a
// modest miss rate (2.65%): strings stream through a hot buffer while the
// corpus is read sequentially. Byte accesses pair up (perl's word-at-a-time
// scanning), so consecutive references frequently share a cache line — the
// >40% same-line locality Figure 3 reports for perl.
//
// The table update uses the previous chunk's hash so its store address is
// known early (Table 1 memory-ordering rule); real perl likewise overlaps
// scanning the next key with inserting the last.
func init() {
	register(Info{
		Name:  "perl",
		Suite: "int",
		Build: buildPerl,
		Description: "string hashing: paired corpus loads and buffer-copy " +
			"stores, key compare re-reads, pipelined hash-table probe/update",
		PaperMemPct:      43.7,
		PaperStoreToLoad: 0.69,
		PaperMissRate:    0.0265,
	})
}

const (
	perlCorpusBase = 0x10_0000
	perlCorpusSize = 256 << 10
	perlBufBase    = 0x20_0420 // skewed sets AND +1 bank from the corpus
	perlBufSize    = 1 << 10   // hot copy buffer
	perlTableBase  = 0x30_0000
	perlTableSize  = 32 << 10 // hash table: partially resident
	perlStrLen     = 8        // bytes hashed per "string" chunk
	perlHashMul    = 0x0101_0101_01F1
)

func buildPerl() *isa.Program {
	b := isa.NewBuilder("perl")
	b.AllocAt(perlCorpusBase, perlCorpusSize)
	b.SetBytes(perlCorpusBase, newPRNG(0x9E41).byteStream(perlCorpusSize))
	b.AllocAt(perlBufBase, perlBufSize)
	b.AllocAt(perlTableBase, perlTableSize)

	var (
		rI    = isa.R(1)
		rSrc  = isa.R(2)
		rBuf  = isa.R(3)
		rTab  = isa.R(4)
		rMul  = isa.R(5)
		rHash = isa.R(6)
		rC    = isa.R(7)
		rC2   = isa.R(8)
		rK    = isa.R(9)
		rT    = isa.R(10)
		rT2   = isa.R(11)
		rH1   = isa.R(12) // previous chunk's hash
		rH2   = isa.R(13) // second partial hash
		rEnd  = isa.R(14)
		rN    = isa.R(31)
	)

	b.Li(rI, 0)
	b.Li(rSrc, perlCorpusBase)
	b.Li(rBuf, perlBufBase)
	b.Li(rTab, perlTableBase)
	b.Li(rMul, perlHashMul)
	b.Li(rHash, 0)
	b.Li(rH1, 0)
	b.Li(rH2, 0)
	b.Li(rN, 1<<40)

	b.Label("loop")
	// Hash one 8-byte chunk two bytes at a time: paired corpus loads,
	// paired buffer-copy stores (same-line reference pairs), and a stored-
	// key compare per pair. Two partial hashes accumulate in parallel.
	b.Mov(rHash, rI)
	b.Mov(rH2, rI)
	for j := int64(0); j < perlStrLen; j += 2 {
		b.Lbu(rC, rSrc, j)
		b.Lbu(rC2, rSrc, j+1) // same line as the previous load
		b.Mul(rT, rC, rMul)
		b.Add(rHash, rHash, rT)
		b.Mul(rT2, rC2, rMul)
		b.Add(rH2, rH2, rT2)
		b.Sb(rC, rBuf, j)
		b.Sb(rC2, rBuf, j+1) // same line as the previous store
		if j >= 2 {
			skip := "cmp" + string(rune('0'+j))
			b.Lbu(rK, rBuf, j-2) // compare against the stored key
			b.Bne(rK, rC, skip)
			b.Label(skip) // fall through either way: compare only
		}
	}
	b.Xor(rHash, rHash, rH2)
	b.Addi(rSrc, rSrc, perlStrLen)
	b.Andi(rSrc, rSrc, perlCorpusBase|(perlCorpusSize-1))
	b.Addi(rBuf, rBuf, perlStrLen)
	b.Li(rEnd, perlBufBase+perlBufSize)
	b.Blt(rBuf, rEnd, "bufok")
	b.Li(rBuf, perlBufBase)
	b.Label("bufok")
	// Probe and update the hash table for the PREVIOUS chunk: the store's
	// address is available early instead of serializing younger loads
	// behind the just-computed hash (the Table 1 memory-ordering rule).
	b.Andi(rT, rH1, perlTableSize-16)
	b.Add(rT, rTab, rT)
	b.Ld(rK, rT, 0)
	b.Ld(rT2, rT, 8) // entry's value field: a same-line pair
	b.Add(rK, rK, rH1)
	b.Add(rK, rK, rT2)
	b.Sd(rK, rT, 0)
	b.Mov(rH1, rHash)
	b.Addi(rI, rI, 1)
	b.Blt(rI, rN, "loop")
	b.Halt()
	return b.MustBuild()
}
