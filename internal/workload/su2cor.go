package workload

import "lbic/internal/isa"

// su2corKernel models SPEC95 103.su2cor: quantum-chromodynamics lattice
// sweeps that gather a complex 3x3 link matrix per site and apply it twice in
// succession (link products), first to a resident spinor and then to the
// first product, writing the result back into the site. The strided site
// gather gives su2cor the highest L1 miss rate in the paper's suite (13.1%),
// while the second pass re-reads the same lines (hits) — matching the refs-
// per-missed-line density of the original. The chained passes bound ILP: the
// second multiply depends on the first, as successive link multiplications do.
func init() {
	register(Info{
		Name:  "su2cor",
		Suite: "fp",
		Build: buildSu2cor,
		Description: "lattice QCD site sweep: strided gather of complex 3x3 " +
			"matrices applied twice in sequence, in-site result writeback",
		PaperMemPct:      32.0,
		PaperStoreToLoad: 0.32,
		PaperMissRate:    0.1307,
	})
}

const (
	su2SiteSize = 256      // bytes per lattice site (matrix + result + padding)
	su2Sites    = 16 << 10 // 4MB lattice
	su2Base     = 0x100_0000
	su2VecBase  = 0x20_0D00 // hot spinor vector (skewed sets)
)

func buildSu2cor() *isa.Program {
	b := isa.NewBuilder("su2cor")
	b.AllocAt(su2Base, su2Sites*su2SiteSize)
	b.AllocAt(su2VecBase, 64)
	rng := newPRNG(0x5172)
	for k := 0; k < 6; k++ {
		b.SetFloat64(su2VecBase+uint64(8*k), float64(rng.intn(997))/997)
	}
	// Seed the first few sites; the sweep recycles values after that.
	for s := 0; s < 64; s++ {
		for d := 0; d < 18; d++ {
			b.SetFloat64(su2Base+uint64(s*su2SiteSize+8*d), float64(rng.intn(997))/991)
		}
	}

	var (
		rSite = isa.R(1) // current site base
		rVec  = isa.R(2)
		rEnd  = isa.R(3)
		rT    = isa.R(4)
	)
	// Input vector f0..f5 (3 complex values); pass-1 product f8..f13;
	// pass-2 product f22..f27; matrix/temporary scratch f16..f19.
	vre := func(i int) isa.Reg { return isa.F(2 * i) }
	vim := func(i int) isa.Reg { return isa.F(2*i + 1) }
	p1re := func(i int) isa.Reg { return isa.F(8 + 2*i) }
	p1im := func(i int) isa.Reg { return isa.F(9 + 2*i) }
	p2re := func(i int) isa.Reg { return isa.F(22 + 2*i) }
	p2im := func(i int) isa.Reg { return isa.F(23 + 2*i) }
	fMr, fMi := isa.F(16), isa.F(17)
	fT1, fT2 := isa.F(18), isa.F(19)
	fNorm := isa.F(20)

	b.Li(rVec, su2VecBase)
	for i := 0; i < 3; i++ {
		b.Fld(vre(i), rVec, int64(16*i))
		b.Fld(vim(i), rVec, int64(16*i+8))
	}

	// matvec emits product_i = sum_j M[i][j] * in[j] over complex triples.
	matvec := func(inRe, inIm, outRe, outIm func(int) isa.Reg) {
		for i := 0; i < 3; i++ {
			for j := 0; j < 3; j++ {
				off := int64(16 * (3*i + j))
				b.Fld(fMr, rSite, off)
				b.Fld(fMi, rSite, off+8)
				b.FMul(fT1, fMr, inRe(j))
				b.FMul(fT2, fMi, inIm(j))
				b.FSub(fT1, fT1, fT2)
				if j == 0 {
					b.FAdd(outRe(i), fT1, fT2)
					b.FSub(outIm(i), fT1, fT2)
				} else {
					b.FAdd(outRe(i), outRe(i), fT1)
					b.FAdd(outIm(i), outIm(i), fT2)
				}
			}
		}
	}

	b.Label("sweep")
	b.Li(rSite, su2Base)
	b.Li(rEnd, su2Base+su2Sites*su2SiteSize)

	b.Label("site")
	// Pass 1 gathers the matrix (strided: cold lines). Pass 2 re-reads the
	// same matrix (hits) and multiplies the pass-1 product.
	matvec(vre, vim, p1re, p1im)
	matvec(p1re, p1im, p2re, p2im)
	// Write the 6-double result into the site's tail (bytes 144..191 share
	// the matrix's last lines).
	for i := 0; i < 3; i++ {
		b.Fsd(p2re(i), rSite, int64(144+16*i))
		b.Fsd(p2im(i), rSite, int64(152+16*i))
	}
	// The intermediate product is also kept (both link products persist).
	for i := 0; i < 3; i++ {
		b.Fsd(p1re(i), rSite, int64(192+16*i))
		b.Fsd(p1im(i), rSite, int64(200+16*i))
	}
	// Norm accumulation: the loop-carried reduction su2cor's sweeps carry.
	b.FAdd(fNorm, fNorm, p2re(0))
	b.FAdd(fNorm, fNorm, p2im(0))
	b.FAdd(fNorm, fNorm, p2re(2))
	b.FAdd(fNorm, fNorm, p2im(2))
	// Integer site/neighbor bookkeeping.
	b.Srli(rT, rSite, 8)
	b.Xor(rT, rT, rSite)
	b.Addi(rSite, rSite, su2SiteSize)
	b.Blt(rSite, rEnd, "site")
	b.J("sweep")
	return b.MustBuild()
}
