package workload

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"lbic/internal/trace"
)

var updateGolden = flag.Bool("update", false, "rewrite generator golden files")

func genDyns(t *testing.T, p GenParams, n int) []trace.Dyn {
	t.Helper()
	s, err := p.Stream()
	if err != nil {
		t.Fatalf("%s: Stream: %v", p.Kind, err)
	}
	out := make([]trace.Dyn, n)
	for i := range out {
		if !s.Next(&out[i]) {
			t.Fatalf("%s: stream ended at %d", p.Kind, i)
		}
	}
	return out
}

func TestGenDeterminism(t *testing.T) {
	for _, g := range Generators() {
		a := genDyns(t, GenParams{Kind: g.Kind}, 5000)
		b := genDyns(t, GenParams{Kind: g.Kind}, 5000)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s: two streams from identical params diverge at %d:\n %+v\n %+v", g.Kind, i, a[i], b[i])
			}
		}
		c := genDyns(t, GenParams{Kind: g.Kind, Seed: 99}, 5000)
		same := true
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
		if same && g.Kind != "gcsweep" { // gcsweep is seed-free except marks
			t.Errorf("%s: seed change did not change the stream", g.Kind)
		}
	}
}

func TestGenStreamInvariants(t *testing.T) {
	const n = 20000
	for _, g := range Generators() {
		p, err := GenParams{Kind: g.Kind}.Resolve()
		if err != nil {
			t.Fatal(err)
		}
		dyns := genDyns(t, p, n)
		var mem int
		for i, d := range dyns {
			if d.Seq != uint64(i) {
				t.Fatalf("%s: inst %d has Seq %d", g.Kind, i, d.Seq)
			}
			if d.Class != d.Op.ClassOf() {
				t.Fatalf("%s: inst %d class %v, op %v wants %v", g.Kind, i, d.Class, d.Op, d.Op.ClassOf())
			}
			if d.IsMem() {
				mem++
				if d.Addr%8 != 0 || d.Size != 8 {
					t.Fatalf("%s: inst %d misaligned access addr=%#x size=%d", g.Kind, i, d.Addr, d.Size)
				}
			}
		}
		gotPct := float64(mem) * 100 / n
		if diff := gotPct - float64(p.MemPct); diff < -2 || diff > 2 {
			t.Errorf("%s: memory fraction %.1f%%, want %d%% ±2", g.Kind, gotPct, p.MemPct)
		}
	}
}

func TestGenValidate(t *testing.T) {
	bad := []GenParams{
		{Kind: "nope"},
		{Kind: "zipf", MemPct: 96},
		{Kind: "zipf", Keys: GenMaxKeys + 1},
		{Kind: "zipf", RecordBytes: 12}, // not a multiple of 8
		{Kind: "gcsweep", Stride: 4},
		{Kind: "multiprog", Contexts: 9},
		{Kind: "chase", Footprint: 128 << 20},
	}
	for _, p := range bad {
		if _, err := p.Resolve(); err == nil {
			t.Errorf("Resolve accepted %+v", p)
		}
	}
	for _, g := range Generators() {
		if _, err := (GenParams{Kind: g.Kind}).Resolve(); err != nil {
			t.Errorf("%s: catalog defaults do not validate: %v", g.Kind, err)
		}
		if err := g.Defaults.Validate(); err != nil {
			t.Errorf("%s: Defaults incomplete: %v", g.Kind, err)
		}
	}
}

func TestGenKeyStable(t *testing.T) {
	seen := map[string]string{}
	for _, g := range Generators() {
		k := GenParams{Kind: g.Kind}.Key()
		if prev, dup := seen[k]; dup {
			t.Fatalf("key %q shared by %s and %s", k, prev, g.Kind)
		}
		seen[k] = g.Kind
		if k != g.Defaults.Key() {
			t.Errorf("%s: zero-params key %q != defaults key %q", g.Kind, k, g.Defaults.Key())
		}
	}
	a := GenParams{Kind: "zipf", SkewPct: 50}.Key()
	b := GenParams{Kind: "zipf", SkewPct: 60}.Key()
	if a == b {
		t.Error("different skew, same key")
	}
}

// TestGeneratorGolden pins the first 64 memory accesses of every catalog
// generator. A diff here means generator drift: every golden table, trace
// file and adversarial regression built on these streams shifts with it.
// Regenerate deliberately with scripts/regen-golden.
func TestGeneratorGolden(t *testing.T) {
	for _, g := range Generators() {
		t.Run(g.Kind, func(t *testing.T) {
			var buf bytes.Buffer
			fmt.Fprintf(&buf, "# first 64 memory accesses of %q (catalog defaults)\n", g.Kind)
			fmt.Fprintf(&buf, "# seq  op  pc  addr  size\n")
			s, err := GenParams{Kind: g.Kind}.Stream()
			if err != nil {
				t.Fatal(err)
			}
			var d trace.Dyn
			for n := 0; n < 64; {
				if !s.Next(&d) {
					t.Fatal("stream ended early")
				}
				if !d.IsMem() {
					continue
				}
				fmt.Fprintf(&buf, "%6d %-4s %3d 0x%08x %d\n", d.Seq, d.Op, d.PC, d.Addr, d.Size)
				n++
			}
			path := filepath.Join("testdata", "golden", "gen-"+g.Kind+".golden")
			if *updateGolden {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("%v (regenerate with scripts/regen-golden)", err)
			}
			if !bytes.Equal(want, buf.Bytes()) {
				t.Errorf("golden mismatch for %s (regenerate deliberately with scripts/regen-golden)\n got:\n%s\nwant:\n%s",
					g.Kind, buf.Bytes(), want)
			}
		})
	}
}
