// Package workload provides the ten benchmark kernels standing in for the
// paper's SPEC95 programs (§2.3, Table 2), plus characterization utilities.
//
// The original SPEC95 binaries and reference inputs are proprietary and
// cannot be run here, so each kernel is a synthetic program in our ISA,
// hand-written to present the same *memory reference stream shape* the paper
// reports for its namesake: the fraction of memory instructions, the
// store-to-load ratio, the 32KB direct-mapped L1 miss rate (Table 2), and
// the consecutive-reference bank/line locality (Figure 3). Since every
// experiment in the paper measures how cache port organizations respond to
// the reference stream, matching the stream statistics preserves the
// behaviour under study. EXPERIMENTS.md records measured-versus-paper
// characteristics for every kernel.
package workload

import (
	"fmt"
	"sort"

	"lbic/internal/cache"
	"lbic/internal/emu"
	"lbic/internal/isa"
	"lbic/internal/trace"
)

// Info describes one benchmark kernel.
type Info struct {
	// Name is the SPEC95 program the kernel models, e.g. "compress".
	Name string
	// Suite is "int" or "fp".
	Suite string
	// Build constructs the program (deterministic).
	Build func() *isa.Program
	// Description says what behaviour of the original the kernel models.
	Description string

	// Paper-reported Table 2 characteristics, for comparison.
	PaperMemPct      float64 // % of instructions that are loads/stores
	PaperStoreToLoad float64 // stores per load
	PaperMissRate    float64 // 32KB direct-mapped L1 miss rate
}

var registry []Info

func register(in Info) {
	registry = append(registry, in)
}

// All returns the benchmark kernels: SPECint first, then SPECfp, each in the
// paper's Table 2 order.
func All() []Info {
	out := make([]Info, len(registry))
	copy(out, registry)
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Suite != out[j].Suite {
			return out[i].Suite == "int"
		}
		return order[out[i].Name] < order[out[j].Name]
	})
	return out
}

var order = map[string]int{
	"compress": 0, "gcc": 1, "go": 2, "li": 3, "perl": 4,
	"hydro2d": 0, "mgrid": 1, "su2cor": 2, "swim": 3, "wave5": 4,
}

// Names returns all kernel names in canonical order.
func Names() []string {
	infos := All()
	names := make([]string, len(infos))
	for i, in := range infos {
		names[i] = in.Name
	}
	return names
}

// ByName finds a kernel by name.
func ByName(name string) (Info, bool) {
	for _, in := range registry {
		if in.Name == name {
			return in, true
		}
	}
	return Info{}, false
}

// Stats summarizes a kernel's functional reference stream, mirroring the
// columns of the paper's Table 2.
type Stats struct {
	Insts       uint64
	Loads       uint64
	Stores      uint64
	MemPct      float64 // 100 * (loads+stores) / insts
	StoreToLoad float64
	MissRate    float64 // 32KB direct-mapped, 32B lines (demand misses)
}

// Characterize runs the program functionally for up to maxInsts instructions
// and measures its Table 2 statistics against the paper's 32KB direct-mapped
// L1.
func Characterize(prog *isa.Program, maxInsts uint64) (Stats, error) {
	return CharacterizeWith(prog, maxInsts, cache.Geometry{Size: 32 << 10, LineSize: 32, Assoc: 1})
}

// CharacterizeWith is Characterize against an arbitrary cache geometry,
// for capacity/associativity sensitivity studies.
func CharacterizeWith(prog *isa.Program, maxInsts uint64, geom cache.Geometry) (Stats, error) {
	m, err := emu.New(prog)
	if err != nil {
		return Stats{}, err
	}
	return CharacterizeStream(prog.Name, m, maxInsts, geom)
}

// CharacterizeStream is CharacterizeWith over an already-constructed dynamic
// stream — a live emulator or a trace-cache replay; name labels errors.
func CharacterizeStream(name string, m trace.Stream, maxInsts uint64, geom cache.Geometry) (Stats, error) {
	l1, err := cache.NewArray(geom)
	if err != nil {
		return Stats{}, err
	}
	var s Stats
	var d trace.Dyn
	for s.Insts < maxInsts && m.Next(&d) {
		s.Insts++
		switch {
		case d.IsLoad():
			s.Loads++
		case d.IsStore():
			s.Stores++
		default:
			continue
		}
		if !l1.Access(d.Addr, d.IsStore()) {
			l1.Install(d.Addr, d.IsStore())
		}
	}
	if s.Insts == 0 {
		return s, fmt.Errorf("workload: program %q produced no instructions", name)
	}
	mem := s.Loads + s.Stores
	s.MemPct = 100 * float64(mem) / float64(s.Insts)
	if s.Loads > 0 {
		s.StoreToLoad = float64(s.Stores) / float64(s.Loads)
	}
	s.MissRate = l1.MissRate()
	return s, nil
}
