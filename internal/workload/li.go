package workload

import "lbic/internal/isa"

// liKernel models SPEC95 130.li, the xlisp interpreter: cons-cell allocation
// (two stores per fresh cell), traversal of recently built lists through cdr
// chains (loads dominate), and in-place car updates. The arena is tiny and
// recycled, giving li its near-zero miss rate (0.84%) and very high memory
// density (47.6% of instructions touch memory). Cells are 16 bytes, so
// allocation-order traversal touches two cells per cache line — the same-line
// consecutive-reference locality Figure 3 reports for li (>40%).
//
// Three independent cdr walks run in parallel; each advances two cells per
// iteration, bounding the serial chain while keeping IPC near the paper's.
func init() {
	register(Info{
		Name:  "li",
		Suite: "int",
		Build: buildLi,
		Description: "lisp interpreter heap: cons-cell allocation in a small " +
			"recycled arena, parallel cdr-chain walks, in-place car updates",
		PaperMemPct:      47.6,
		PaperStoreToLoad: 0.59,
		PaperMissRate:    0.0084,
	})
}

const (
	liArenaBase = 0x10_0000
	liCellSize  = 16
	liCells     = 512 // 8KB arena, recycled
	liArenaSize = liCells * liCellSize
	liEnvBase   = 0x20_2000 // skewed: disjoint L1 sets from the arena
	liEnvSize   = 64 << 10  // environment/symbol pages, occasionally touched
	liWalks     = 3
)

func buildLi() *isa.Program {
	b := isa.NewBuilder("li")
	b.AllocAt(liArenaBase, liArenaSize)
	// Pre-link the arena into a ring of cons cells: cdr points to the next
	// cell (allocation order), car holds a small tagged value.
	for i := 0; i < liCells; i++ {
		addr := uint64(liArenaBase + i*liCellSize)
		b.SetWord64(addr, uint64(i*3+1))                                    // car
		b.SetWord64(addr+8, uint64(liArenaBase+((i+1)%liCells)*liCellSize)) // cdr
	}
	b.AllocAt(liEnvBase, liEnvSize)

	var (
		rI     = isa.R(1)
		rAlloc = isa.R(2) // bump allocator cursor
		rEnv   = isa.R(3)
		rV     = isa.R(12)
		rT     = isa.R(13)
		rN     = isa.R(31)
	)
	walk := func(w int) isa.Reg { return isa.R(4 + w) } // walk cursors
	acc := func(w int) isa.Reg { return isa.R(8 + w) }  // per-walk accumulators

	b.Li(rI, 0)
	b.Li(rAlloc, liArenaBase)
	b.Li(rEnv, liEnvBase)
	b.Li(rN, 1<<40)
	for w := 0; w < liWalks; w++ {
		// Stagger the walks so that, with everything advancing one line per
		// iteration in lockstep, the allocator and the three walks occupy
		// the four distinct banks of a 4-bank cache: the walk spacing of
		// 170 cells is 85 lines (1 mod 4), so a uniform +2-cell offset
		// puts the walks on lines = 85w+1, i.e. banks 1, 2, 3.
		start := (int64(w)*(liCells/liWalks) + 2) * liCellSize
		b.Li(walk(w), liArenaBase+start)
		b.Li(acc(w), 0)
	}

	b.Label("loop")
	// Allocate two cons cells: car/cdr stores through the bump cursor. The
	// cdr links to the ring successor, preserving the arena's list
	// structure across recycling (a cdr aimed at an arbitrary live cell
	// would collapse every walk onto one trajectory after the first wrap).
	rSucc := isa.R(19)
	for c := 0; c < 2; c++ {
		b.Add(rV, rI, rAlloc) // fresh car value
		b.Sd(rV, rAlloc, 0)
		b.Addi(rSucc, rAlloc, liCellSize)
		b.Andi(rSucc, rSucc, liArenaBase|(liArenaSize-1))
		b.Sd(rSucc, rAlloc, 8) // cdr = ring successor
		b.Mov(rAlloc, rSucc)
	}
	// Walk each list two cells, phase-interleaved across the walks: all
	// first-cell car/cdr pairs, then the setcar updates, then all
	// second-cell pairs. Each car/cdr pair is a same-line reference pair
	// (cells are half a cache line), while successive pairs come from
	// different walks — and hence usually different banks — as an
	// interpreter juggling several live lists naturally produces.
	car := func(w int) isa.Reg { return isa.R(12 + w) }
	cdr := func(w int) isa.Reg { return isa.R(16 + w) }
	for w := 0; w < liWalks; w++ {
		b.Ld(car(w), walk(w), 0)
		b.Ld(cdr(w), walk(w), 8)
	}
	for w := 0; w < liWalks; w++ {
		b.Add(acc(w), acc(w), car(w))
		b.Sd(acc(w), walk(w), 0) // setcar on the visited cell
	}
	for w := 0; w < liWalks; w++ {
		b.Ld(car(w), cdr(w), 0) // second cell's car
		b.Ld(cdr(w), cdr(w), 8) // second cell's cdr
	}
	for w := 0; w < liWalks; w++ {
		b.Add(acc(w), acc(w), car(w))
		b.Mov(walk(w), cdr(w))
	}
	// Every 16th iteration touches an environment page (cold-ish).
	b.Andi(rT, rI, 15)
	b.Bne(rT, isa.Zero, "noenv")
	b.Slli(rT, rI, 6)
	b.Andi(rT, rT, liEnvSize-8)
	b.Add(rT, rEnv, rT)
	b.Ld(rV, rT, 0)
	b.Add(acc(0), acc(0), rV)
	b.Label("noenv")
	b.Addi(rI, rI, 1)
	b.Blt(rI, rN, "loop")
	b.Halt()
	return b.MustBuild()
}
