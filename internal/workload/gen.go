package workload

import (
	"fmt"
	"math/bits"
	"strings"

	"lbic/internal/isa"
	"lbic/internal/trace"
)

// The generator family synthesizes modern reference-stream shapes the 1997
// paper never saw: zipfian key-value GETs, hash-join probes, pointer
// chasing, GC-style sweeps, and context-interleaved multiprogrammed
// mixes. Unlike the SPEC95 kernels (real programs run through the
// emulator), a generator emits trace.Dyn records directly — there is no
// functional machine behind it, so memory values are always zero and
// streams are infinite (the simulation budget bounds them). Every
// generator is a pure function of its GenParams: same params, same stream,
// on every platform — the property the golden tests and the adversarial
// regression corpus depend on. All arithmetic is integer-only for exactly
// that reason.

// GenParams selects and parameterizes one synthetic stream generator.
// Zero-valued fields take the kind's defaults (see Generators). The struct
// is the unit of mutation for the adversarial search: every field is an
// integer with a documented range, enforced by Validate.
type GenParams struct {
	// Kind is the generator family: "zipf", "hashjoin", "chase", "gcsweep"
	// or "multiprog".
	Kind string `json:"kind"`
	// Seed drives all pseudo-randomness (0 means a fixed default seed).
	Seed uint64 `json:"seed,omitempty"`
	// MemPct is the percentage of instructions that access memory (1..95).
	MemPct int `json:"mem_pct,omitempty"`
	// Footprint is the working-set size in bytes, rounded up to a power of
	// two. Meaning varies by kind: probe-relation bytes (hashjoin), total
	// pointer pool (chase), heap bytes (gcsweep), per-context window
	// (multiprog). zipf derives its footprint from Keys×RecordBytes.
	Footprint int64 `json:"footprint,omitempty"`

	// zipf: Keys records of RecordBytes each; popularity skew SkewPct
	// (0 uniform .. 99 extreme); UpdatePct% of operations also write.
	Keys        int `json:"keys,omitempty"`
	RecordBytes int `json:"record_bytes,omitempty"`
	SkewPct     int `json:"skew_pct,omitempty"`
	UpdatePct   int `json:"update_pct,omitempty"`

	// hashjoin: Buckets hash buckets, Chain dependent hops per probe.
	Buckets int `json:"buckets,omitempty"`
	Chain   int `json:"chain,omitempty"`

	// chase: Lanes independent pointer chains advancing in lockstep.
	Lanes int `json:"lanes,omitempty"`

	// gcsweep: Stride bytes between object headers; MarkPct% of objects
	// take a mark write.
	Stride  int64 `json:"stride,omitempty"`
	MarkPct int   `json:"mark_pct,omitempty"`

	// multiprog: Contexts interleaved programs, switching every Quantum
	// instructions.
	Contexts int `json:"contexts,omitempty"`
	Quantum  int `json:"quantum,omitempty"`
}

// GenInfo describes one generator kind.
type GenInfo struct {
	Kind        string
	Description string
	// Defaults is the catalog configuration: every field a zero-valued
	// GenParams of this kind resolves to.
	Defaults GenParams
}

var genRegistry = []GenInfo{
	{
		Kind: "zipf",
		Description: "key-value GETs over a record heap with zipfian-style popularity; " +
			"UpdatePct of operations rewrite the record",
		Defaults: GenParams{
			Kind: "zipf", Seed: 1, MemPct: 40,
			Keys: 1 << 16, RecordBytes: 64, SkewPct: 90, UpdatePct: 10,
		},
	},
	{
		Kind: "hashjoin",
		Description: "sequential probe-relation scan, hashed bucket lookup, then Chain " +
			"dependent hops down the bucket chain",
		Defaults: GenParams{
			Kind: "hashjoin", Seed: 1, MemPct: 45,
			Footprint: 1 << 20, Buckets: 1 << 15, Chain: 2,
		},
	},
	{
		Kind: "chase",
		Description: "pointer chasing: Lanes serial dependence chains walking a shuffled " +
			"pointer pool in lockstep",
		Defaults: GenParams{
			Kind: "chase", Seed: 1, MemPct: 25,
			Footprint: 1 << 20, Lanes: 1,
		},
	},
	{
		Kind: "gcsweep",
		Description: "garbage-collector sweep: strided object-header scan over the heap " +
			"with MarkPct mark writes",
		Defaults: GenParams{
			Kind: "gcsweep", Seed: 1, MemPct: 35,
			Footprint: 4 << 20, Stride: 48, MarkPct: 20,
		},
	},
	{
		Kind: "multiprog",
		Description: "Contexts independent programs (streaming, strided, hot-set) " +
			"interleaved on one cache every Quantum instructions",
		Defaults: GenParams{
			Kind: "multiprog", Seed: 1, MemPct: 40,
			Footprint: 1 << 19, Contexts: 4, Quantum: 64,
		},
	},
}

// Generators returns the generator catalog in canonical order.
func Generators() []GenInfo {
	out := make([]GenInfo, len(genRegistry))
	copy(out, genRegistry)
	return out
}

// GenKinds returns the generator kind names in canonical order.
func GenKinds() []string {
	out := make([]string, len(genRegistry))
	for i, g := range genRegistry {
		out[i] = g.Kind
	}
	return out
}

// GenByKind finds a generator kind.
func GenByKind(kind string) (GenInfo, bool) {
	for _, g := range genRegistry {
		if g.Kind == kind {
			return g, true
		}
	}
	return GenInfo{}, false
}

// DefaultGenParams returns the catalog defaults for kind.
func DefaultGenParams(kind string) (GenParams, error) {
	g, ok := GenByKind(kind)
	if !ok {
		return GenParams{}, fmt.Errorf("workload: unknown generator kind %q (have %s)",
			kind, strings.Join(GenKinds(), ", "))
	}
	return g.Defaults, nil
}

// withDefaults fills zero-valued fields from the kind's catalog entry.
func (p GenParams) withDefaults() (GenParams, error) {
	def, err := DefaultGenParams(p.Kind)
	if err != nil {
		return p, err
	}
	if p.Seed == 0 {
		p.Seed = def.Seed
	}
	fill := func(f *int, d int) {
		if *f == 0 {
			*f = d
		}
	}
	fill(&p.MemPct, def.MemPct)
	if p.Footprint == 0 {
		p.Footprint = def.Footprint
	}
	fill(&p.Keys, def.Keys)
	fill(&p.RecordBytes, def.RecordBytes)
	fill(&p.SkewPct, def.SkewPct)
	fill(&p.UpdatePct, def.UpdatePct)
	fill(&p.Buckets, def.Buckets)
	fill(&p.Chain, def.Chain)
	fill(&p.Lanes, def.Lanes)
	if p.Stride == 0 {
		p.Stride = def.Stride
	}
	fill(&p.MarkPct, def.MarkPct)
	fill(&p.Contexts, def.Contexts)
	fill(&p.Quantum, def.Quantum)
	return p, nil
}

// Field ranges, shared with the adversarial mutator. A range of [0,0] for a
// kind means the field is unused there.
const (
	GenMaxKeys      = 1 << 22
	GenMaxRecord    = 1 << 12
	GenMaxBuckets   = 1 << 20
	GenMaxChain     = 64
	GenMaxLanes     = 8
	GenMaxStride    = 1 << 20
	GenMaxContexts  = 8
	GenMaxQuantum   = 4096
	GenMaxFootprint = 64 << 20
	GenMinFootprint = 1 << 12
)

// GenField describes one mutable parameter of a generator kind: its JSON
// name, bounds, and accessor. The adversarial mutator walks this table
// rather than hand-rolling per-kind perturbation code.
type GenField struct {
	Name   string
	Min    int64
	Max    int64
	Step   int64 // smallest meaningful change (and required multiple)
	Acc    func(*GenParams) *int64
	intAcc func(*GenParams) *int
}

// Get reads the field's current value.
func (f GenField) Get(p *GenParams) int64 {
	if f.Acc != nil {
		return *f.Acc(p)
	}
	return int64(*f.intAcc(p))
}

// Set writes the field (callers clamp to [Min, Max] first).
func (f GenField) Set(p *GenParams, v int64) {
	if f.Acc != nil {
		*f.Acc(p) = v
		return
	}
	*f.intAcc(p) = int(v)
}

func fInt(name string, lo, hi, step int64, acc func(*GenParams) *int) GenField {
	return GenField{Name: name, Min: lo, Max: hi, Step: step, intAcc: acc}
}

func f64(name string, lo, hi, step int64, acc func(*GenParams) *int64) GenField {
	return GenField{Name: name, Min: lo, Max: hi, Step: step, Acc: acc}
}

var (
	fieldMemPct    = fInt("mem_pct", 1, 95, 1, func(p *GenParams) *int { return &p.MemPct })
	fieldFootprint = f64("footprint", GenMinFootprint, GenMaxFootprint, 8, func(p *GenParams) *int64 { return &p.Footprint })
	fieldKeys      = fInt("keys", 1, GenMaxKeys, 1, func(p *GenParams) *int { return &p.Keys })
	fieldRecord    = fInt("record_bytes", 8, GenMaxRecord, 8, func(p *GenParams) *int { return &p.RecordBytes })
	fieldSkew      = fInt("skew_pct", 0, 99, 1, func(p *GenParams) *int { return &p.SkewPct })
	fieldUpdate    = fInt("update_pct", 0, 100, 1, func(p *GenParams) *int { return &p.UpdatePct })
	fieldBuckets   = fInt("buckets", 1, GenMaxBuckets, 1, func(p *GenParams) *int { return &p.Buckets })
	fieldChain     = fInt("chain", 1, GenMaxChain, 1, func(p *GenParams) *int { return &p.Chain })
	fieldLanes     = fInt("lanes", 1, GenMaxLanes, 1, func(p *GenParams) *int { return &p.Lanes })
	fieldStride    = f64("stride", 8, GenMaxStride, 8, func(p *GenParams) *int64 { return &p.Stride })
	fieldMark      = fInt("mark_pct", 0, 100, 1, func(p *GenParams) *int { return &p.MarkPct })
	fieldContexts  = fInt("contexts", 1, GenMaxContexts, 1, func(p *GenParams) *int { return &p.Contexts })
	fieldQuantum   = fInt("quantum", 1, GenMaxQuantum, 1, func(p *GenParams) *int { return &p.Quantum })
)

// genFields maps each kind to the fields it uses; fields outside this list
// must be zero for the kind.
var genFields = map[string][]GenField{
	"zipf":      {fieldMemPct, fieldKeys, fieldRecord, fieldSkew, fieldUpdate},
	"hashjoin":  {fieldMemPct, fieldFootprint, fieldBuckets, fieldChain},
	"chase":     {fieldMemPct, fieldFootprint, fieldLanes},
	"gcsweep":   {fieldMemPct, fieldFootprint, fieldStride, fieldMark},
	"multiprog": {fieldMemPct, fieldFootprint, fieldContexts, fieldQuantum},
}

// GenFieldsOf returns the mutable field descriptors for kind, in canonical
// order (nil for unknown kinds).
func GenFieldsOf(kind string) []GenField { return genFields[kind] }

var allGenFields = []GenField{
	fieldMemPct, fieldFootprint, fieldKeys, fieldRecord, fieldSkew, fieldUpdate,
	fieldBuckets, fieldChain, fieldLanes, fieldStride, fieldMark, fieldContexts, fieldQuantum,
}

// Validate checks the fields p.Kind uses against their documented ranges
// and requires every other field to be zero, keeping one canonical struct
// per stream. It does not fill defaults; call Resolve for that.
func (p GenParams) Validate() error {
	used, ok := genFields[p.Kind]
	if !ok {
		return fmt.Errorf("workload: unknown generator kind %q", p.Kind)
	}
	inUse := func(f GenField) bool {
		for _, u := range used {
			if u.Name == f.Name {
				return true
			}
		}
		return false
	}
	for _, f := range allGenFields {
		v := f.Get(&p)
		if !inUse(f) {
			if v != 0 {
				return fmt.Errorf("workload: %s generator does not use %s (got %d)", p.Kind, f.Name, v)
			}
			continue
		}
		if v < f.Min || v > f.Max {
			return fmt.Errorf("workload: %s generator %s = %d outside [%d, %d]", p.Kind, f.Name, v, f.Min, f.Max)
		}
		if f.Step > 1 && v%f.Step != 0 {
			return fmt.Errorf("workload: %s generator %s = %d not a multiple of %d", p.Kind, f.Name, v, f.Step)
		}
	}
	return nil
}

// Resolve fills defaults and validates, returning the canonical params that
// Stream and Key operate on.
func (p GenParams) Resolve() (GenParams, error) {
	q, err := p.withDefaults()
	if err != nil {
		return p, err
	}
	return q, q.Validate()
}

// Key returns a canonical compact encoding of the resolved params: stable
// across processes, unique per distinct stream, legal as a cache-cell token
// and a trace-stream name. Kind-irrelevant fields are omitted.
func (p GenParams) Key() string {
	q, err := p.Resolve()
	if err != nil {
		// An invalid param set still needs a distinguishable key (the
		// search journal logs them); make one from the raw struct.
		return fmt.Sprintf("gen:%s:invalid:%+v", p.Kind, p)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "gen:%s:s%d:m%d", q.Kind, q.Seed, q.MemPct)
	switch q.Kind {
	case "zipf":
		fmt.Fprintf(&b, ":k%d:r%d:z%d:u%d", q.Keys, q.RecordBytes, q.SkewPct, q.UpdatePct)
	case "hashjoin":
		fmt.Fprintf(&b, ":f%d:b%d:c%d", q.Footprint, q.Buckets, q.Chain)
	case "chase":
		fmt.Fprintf(&b, ":f%d:l%d", q.Footprint, q.Lanes)
	case "gcsweep":
		fmt.Fprintf(&b, ":f%d:t%d:k%d", q.Footprint, q.Stride, q.MarkPct)
	case "multiprog":
		fmt.Fprintf(&b, ":f%d:c%d:q%d", q.Footprint, q.Contexts, q.Quantum)
	}
	return b.String()
}

// Stream returns the infinite deterministic instruction stream for p.
// Callers bound it with their simulation budget (Config.MaxInsts or
// tracecache.RecordOptions.MaxInsts).
func (p GenParams) Stream() (trace.Stream, error) {
	q, err := p.Resolve()
	if err != nil {
		return nil, err
	}
	g := &genStream{memPct: q.MemPct, rng: *newPRNG(q.Seed)}
	switch q.Kind {
	case "zipf":
		g.fill = q.fillZipf
	case "hashjoin":
		g.fill = q.fillHashJoin
	case "chase":
		g.fill = q.fillChase
	case "gcsweep":
		g.fill = q.fillGCSweep
	case "multiprog":
		g.fill = q.fillMultiprog
	}
	return g, nil
}

// Generator address-space layout. Generators run trace-only (no functional
// machine), so addresses are arbitrary physical bits; distinct regions keep
// the shapes from aliasing each other.
const (
	genHeapBase   = 0x4000_0000 // primary region (records, probes, heap)
	genTableBase  = 0x8000_0000 // secondary region (hash buckets)
	genCtxSpacing = 0x0800_0000 // multiprog per-context window spacing
)

// Register convention for synthesized streams. Base registers are never
// written, so address operands are always ready and accesses are limited
// only by the cache ports — except where a generator deliberately threads a
// loaded value into the next address (pointer chases, bucket chains).
var (
	genBase  = isa.R(1) // primary base pointer, never written
	genBase2 = isa.R(2) // secondary base pointer, never written
	genCtr   = isa.R(5) // loop counter stand-in, never written
	genCtr2  = isa.R(6)
)

func genLoadDst(i int) isa.Reg { return isa.R(8 + i%16) } // rotating load targets
func genAluAcc(i int) isa.Reg  { return isa.R(24 + i%8) } // rotating ALU accumulators
func genLaneReg(l int) isa.Reg { return isa.R(8 + l%16) } // pointer-chase lane registers

// genStream synthesizes instructions in batches: Next drains a small
// buffer; fill appends the next loop iteration. All state is by-value
// inside the struct, so a params→stream construction is repeatable.
type genStream struct {
	seq    uint64
	rng    prng
	buf    []trace.Dyn
	head   int
	fill   func(g *genStream)
	memPct  int
	nMem    int // memory ops emitted (rotation index)
	nNonMem int // every other op, fixed or filler
	nAlu    int // filler ops emitted (rotation index)
}

// Next implements trace.Stream; the stream never ends.
func (g *genStream) Next(d *trace.Dyn) bool {
	for g.head >= len(g.buf) {
		g.buf = g.buf[:0]
		g.head = 0
		g.fill(g)
	}
	*d = g.buf[g.head]
	g.head++
	return true
}

func (g *genStream) push(d trace.Dyn) {
	d.Seq = g.seq
	g.seq++
	if d.Class == isa.ClassLoad || d.Class == isa.ClassStore {
		g.nMem++
	} else {
		g.nNonMem++
	}
	g.buf = append(g.buf, d)
}

// load emits an 8-byte load at addr (8-aligned) and returns its target
// register. base is the address operand; pass a chain register to make the
// access depend on a previous load.
func (g *genStream) load(pc int, dst, base isa.Reg, addr uint64) {
	g.push(trace.Dyn{PC: pc, Op: isa.Ld, Class: isa.ClassLoad, Src1: base, Dst: dst, Addr: addr &^ 7, Size: 8})
}

func (g *genStream) store(pc int, base, val isa.Reg, addr uint64) {
	g.push(trace.Dyn{PC: pc, Op: isa.Sd, Class: isa.ClassStore, Src1: base, Src2: val, Addr: addr &^ 7, Size: 8})
}

// filler emits non-memory instructions until the stream's running memory
// fraction settles at memPct: each call tops the non-memory count up to
// floor(nMem·(100-memPct)/memPct), so fixed compute a generator emits
// itself (hash ops, say) counts toward the quota and the ratio holds
// exactly with no drift. dep threads a recently loaded register into the
// compute so the filler isn't infinitely parallel; every fourth filler op
// is a branch, approximating real basic-block sizes.
func (g *genStream) filler(pcBase int, dep isa.Reg) {
	for (g.nNonMem+1)*g.memPct <= g.nMem*(100-g.memPct) {
		if g.nAlu%4 == 3 {
			g.push(trace.Dyn{PC: pcBase + 1, Op: isa.Bne, Class: isa.ClassIntALU, Src1: genCtr, Src2: genCtr2})
		} else {
			acc := genAluAcc(g.nAlu)
			g.push(trace.Dyn{PC: pcBase, Op: isa.Add, Class: isa.ClassIntALU, Src1: acc, Src2: dep, Dst: acc})
		}
		g.nAlu++
	}
}

// pow2 rounds v up to a power of two (at least 1).
func pow2(v uint64) uint64 {
	if v <= 1 {
		return 1
	}
	return 1 << bits.Len64(v-1)
}

// scatter is an affine bijection on [0, n) for power-of-two n: it turns
// popularity rank into a storage slot, so the hot keys of a skewed
// distribution are spread across the address space the way a real hash
// table spreads them.
func scatter(rank, n, seed uint64) uint64 {
	return (rank*0x9e3779b97f4a7c15 + seed) & (n - 1)
}

// zipfRank samples an approximately zipfian popularity rank in [0, n):
// repeatedly keep the hotter half of the candidate range with probability
// skewPct/100, then pick uniformly in what remains. Integer-only, so
// bit-reproducible everywhere; skew 0 is uniform, 99 is near-degenerate.
func zipfRank(rng *prng, n uint64, skewPct int) uint64 {
	size := n
	for size > 1 && rng.intn(100) < uint64(skewPct) {
		size = (size + 1) / 2
	}
	return rng.intn(size)
}

// fillZipf emits one key-value operation: pick a record by skewed
// popularity, load it (one load per 64B of record up to 2), and with
// UpdatePct probability write it back.
func (p GenParams) fillZipf(g *genStream) {
	keys := pow2(uint64(p.Keys))
	rank := zipfRank(&g.rng, keys, p.SkewPct)
	slot := scatter(rank, keys, p.Seed)
	rec := genHeapBase + slot*uint64(p.RecordBytes)
	off := g.rng.intn(uint64(p.RecordBytes)/8) * 8
	dst := genLoadDst(g.nMem)
	g.load(0, dst, genBase, rec+off)
	g.filler(8, dst)
	if g.rng.intn(100) < uint64(p.UpdatePct) {
		g.store(1, genBase, dst, rec+off)
		g.filler(8, dst)
	}
}

// fillHashJoin emits one probe: a sequential scan load of the probe tuple,
// a couple of hash ops, then Chain dependent hops through the bucket table.
func (p GenParams) fillHashJoin(g *genStream) {
	probeRegion := pow2(uint64(p.Footprint))
	probe := genHeapBase + (uint64(g.nMem)*16)&(probeRegion-1)
	dst := genLoadDst(g.nMem)
	g.load(0, dst, genBase, probe)
	// The hash: multiply + shift on the loaded key. The bucket access
	// below reads the hash result, so it cannot issue before the probe
	// load returns — the join's serial core.
	h := genAluAcc(0)
	g.push(trace.Dyn{PC: 1, Op: isa.Mul, Class: isa.ClassIntMul, Src1: dst, Src2: genBase2, Dst: h})
	g.push(trace.Dyn{PC: 2, Op: isa.Srli, Class: isa.ClassIntALU, Src1: h, Dst: h})
	buckets := pow2(uint64(p.Buckets))
	prev := h
	for hop := 0; hop < p.Chain; hop++ {
		b := genTableBase + g.rng.intn(buckets)*64
		dst := genLoadDst(g.nMem)
		g.load(3+hop, dst, prev, b)
		prev = dst
	}
	g.filler(100, prev)
}

// fillChase advances every lane one hop into a random cell of the lane's
// pool slice; the load's address operand is the lane's own previous
// result, so each lane is a pure serial dependence chain and the lanes
// advance in lockstep.
func (p GenParams) fillChase(g *genStream) {
	cells := pow2(uint64(p.Footprint) / 16)
	per := cells / pow2(uint64(p.Lanes))
	if per == 0 {
		per = 1
	}
	for l := 0; l < p.Lanes; l++ {
		idx := g.rng.intn(per)
		reg := genLaneReg(l)
		g.load(l, reg, reg, genHeapBase+(uint64(l)*per+idx)*16)
		g.filler(40, reg)
	}
}

// fillGCSweep emits one object visit: load the header Stride bytes past
// the previous one (wrapping over the heap), and mark MarkPct of objects
// with a store to the header's second word.
func (p GenParams) fillGCSweep(g *genStream) {
	heap := pow2(uint64(p.Footprint))
	pos := (uint64(g.nMem) * uint64(p.Stride)) & (heap - 1)
	dst := genLoadDst(g.nMem)
	g.load(0, dst, genBase, genHeapBase+pos)
	g.filler(8, dst)
	if g.rng.intn(100) < uint64(p.MarkPct) {
		g.store(1, genBase, dst, genHeapBase+pos+8)
		g.filler(8, dst)
	}
}

// fillMultiprog emits one quantum of the current context, then rotates.
// Context behaviors cycle streaming / strided / hot-set — three programs
// that individually have unremarkable streams but fight over banks when
// interleaved.
func (p GenParams) fillMultiprog(g *genStream) {
	window := pow2(uint64(p.Footprint))
	// Which context's turn: quanta rotate round-robin.
	turn := g.seq / uint64(p.Quantum) % uint64(p.Contexts)
	ctx := int(turn)
	base := uint64(genHeapBase) + uint64(ctx)*genCtxSpacing
	dst := isa.R(8 + ctx%8)
	start := g.seq
	for g.seq-start < uint64(p.Quantum) {
		var addr uint64
		switch ctx % 3 {
		case 0: // streaming: unit-stride scan
			addr = base + (uint64(g.nMem)*8)&(window-1)
		case 1: // strided: row walk whose stride grows with the context
			stride := uint64(64 << (ctx / 3 % 3))
			addr = base + (uint64(g.nMem)*stride)&(window-1)
		default: // hot-set: skewed reuse of a few cache lines
			addr = base + scatter(zipfRank(&g.rng, window/64, 85), window/64, uint64(ctx))*64
		}
		g.load(ctx*8, dst, genBase, addr)
		g.filler(ctx*8+4, dst)
	}
}
