package experiments

// Laned sweep execution: simulation cells that consume identical dynamic
// instruction streams — the same (program, budget) point under different port
// organizations or core mutations — are grouped into lane batches and stepped
// in lockstep off one shared decode cursor (lbic.SimulateBatch /
// lbic.SimulateGeneratorBatch), so each dynamic instruction is decoded or
// synthesized once per batch instead of once per cell. Cell keys, journaled
// values, table output, and the failure log are identical to the scalar path;
// only the execution schedule changes.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"strconv"
	"sync"
	"time"

	"lbic"
	"lbic/internal/runner"
)

// simSpec is the batchable description of one simulation cell: everything the
// laned runner needs to rebuild the cell's Config inside a batch. Cells
// sharing a group consume byte-identical dynamic streams and may ride in one
// batch; memoKey identifies the simulated point across key namespaces (two
// views of one simulation memoize a single Result).
type simSpec struct {
	group   string
	insts   uint64
	port    lbic.PortConfig
	mut     func(*lbic.Config)
	build   func() (*lbic.Program, error) // nil for generator cells
	gen     *lbic.GenParams               // non-nil for generator cells
	pick    func(*lbic.Result) float64
	memoKey string
}

// specRegistry maps cell keys to their batchable descriptions. Cells without
// a registered spec (characterization, miss-rate grids) always run scalar.
type specRegistry struct {
	mu sync.Mutex
	m  map[string]simSpec
}

func (r *specRegistry) put(key string, s simSpec) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.m[key] = s
}

func (r *specRegistry) get(key string) (simSpec, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	s, ok := r.m[key]
	return s, ok
}

// resultMemo caches completed simulation Results by memoKey for the lifetime
// of one sweep, so the same simulated point feeding two tables (e.g. the IPC
// and conflict-rate views of one generator run) is executed once. Replay
// determinism makes the second Result identical, so reuse cannot change any
// output.
type resultMemo struct {
	mu sync.Mutex
	m  map[string]*lbic.Result
}

func (m *resultMemo) get(key string) (*lbic.Result, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	r, ok := m.m[key]
	return r, ok
}

func (m *resultMemo) put(key string, r *lbic.Result) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.m[key] = r
}

// laneOut is one member cell's outcome inside a batch cell's value. It is
// JSON-serializable so a batch cell round-trips through the journal, though
// in practice a completed batch journals its members individually and is
// never itself resumed (the member pre-filter changes the batch composition,
// and with it the batch key).
type laneOut struct {
	Key string  `json:"key"`
	Val float64 `json:"val"`
	Err string  `json:"err,omitempty"`
}

// laned reports whether this sweep routes simulation cells through the
// batched runner. Fault injection forces the scalar path: injected faults
// must land on exactly the named cell, not a whole batch.
func (sw *Sweep) laned() bool {
	return (sw.Lanes >= 2 || sw.Lanes < 0) && len(sw.InjectPanic) == 0 && len(sw.InjectHang) == 0
}

// cellNotifier serializes OnCell callbacks issued from inside concurrently
// running batch cells, matching the runner's own serialization guarantee.
type cellNotifier struct {
	mu sync.Mutex
	fn func(key string, err error)
}

func (n *cellNotifier) settle(key string, err error) {
	if n.fn == nil {
		return
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	n.fn(key, err)
}

// member pairs a cell with its registered spec for batching.
type member struct {
	cell runner.Cell[float64]
	spec simSpec
}

// runLaned is sweepRun's batched execution path. It settles journal- and
// memo-cached cells up front, groups the rest by shared stream, runs lane
// batches (width capped by Sweep.Lanes when >= 2) followed by the scalar
// remainder, and demultiplexes per-member outcomes into the same map and
// failure log the scalar path produces.
func (sw *Sweep) runLaned(cells []runner.Cell[float64]) (map[string]float64, error) {
	ctx := sw.context()
	out := make(map[string]float64, len(cells))
	failed := make(map[string]error)
	notify := &cellNotifier{fn: sw.OnCell}

	var (
		scalar []runner.Cell[float64]
		groups = map[string][]member{}
		order  []string
	)
	for _, c := range cells {
		if sw.Journal != nil {
			if raw, ok := sw.Journal.Lookup(c.Key); ok {
				var v float64
				if json.Unmarshal(raw, &v) == nil {
					out[c.Key] = v
					notify.settle(c.Key, nil)
					continue
				}
			}
		}
		spec, ok := sw.specs.get(c.Key)
		if !ok {
			scalar = append(scalar, c)
			continue
		}
		if res, hit := sw.memo.get(spec.memoKey); hit {
			v := spec.pick(res)
			out[c.Key] = v
			if sw.Journal != nil {
				sw.Journal.Record(c.Key, v)
			}
			notify.settle(c.Key, nil)
			continue
		}
		if _, seen := groups[spec.group]; !seen {
			order = append(order, spec.group)
		}
		groups[spec.group] = append(groups[spec.group], member{c, spec})
	}

	var (
		batches      []runner.Cell[[]laneOut]
		batchMembers [][]member
		maxWidth     int
	)
	for _, g := range order {
		ms := groups[g]
		for len(ms) > 0 {
			k := len(ms)
			if sw.Lanes >= 2 && sw.Lanes < k {
				k = sw.Lanes
			}
			if k < 2 {
				// A group (or cap remainder) of one gains nothing from the
				// batch plumbing; its cell already runs the scalar simulator.
				scalar = append(scalar, ms[0].cell)
				ms = ms[1:]
				continue
			}
			chunk := ms[:k:k]
			ms = ms[k:]
			batches = append(batches, sw.batchCell(g, chunk, notify))
			batchMembers = append(batchMembers, chunk)
			if k > maxWidth {
				maxWidth = k
			}
		}
	}

	bopts := sw.options()
	bopts.OnCell = nil  // members notify individually from inside each batch
	bopts.Journal = nil // members checkpoint individually; batch keys vary with width
	if bopts.Timeout > 0 && maxWidth > 1 {
		// The per-cell timeout budgets one simulation; a K-wide batch is one
		// runner cell doing K lanes of work (less, after decode amortization).
		bopts.Timeout *= time.Duration(maxWidth)
	}
	bout, _ := runner.Run(ctx, batches, bopts)
	for bi, r := range bout.Results {
		outs := r.Value
		if len(outs) == 0 {
			// Batch-level failure or skip before any lane settled: charge
			// every member. These members were never notified from inside Run.
			for _, m := range batchMembers[bi] {
				err := r.Err
				if err == nil {
					err = fmt.Errorf("batch %q returned no lane outcomes", r.Key)
				}
				sw.log.add(CellError{Key: m.cell.Key, Err: err})
				if !errors.Is(err, runner.ErrSkipped) {
					failed[m.cell.Key] = err
				}
				notify.settle(m.cell.Key, err)
			}
			continue
		}
		for _, o := range outs {
			if o.Err != "" {
				err := errors.New(o.Err)
				sw.log.add(CellError{Key: o.Key, Err: err})
				failed[o.Key] = err
				continue
			}
			out[o.Key] = o.Val
		}
	}

	if err := ctx.Err(); err != nil {
		return out, err
	}
	if len(failed) > 0 && !sw.KeepGoing {
		// Fail-fast parity with the scalar path: the scalar remainder never
		// starts, and the sweep error names the first failed member cell.
		for _, c := range scalar {
			sw.log.add(CellError{Key: c.Key, Err: runner.ErrSkipped})
			notify.settle(c.Key, runner.ErrSkipped)
		}
		return out, firstFailure(cells, failed)
	}

	sout, _ := runner.Run(ctx, scalar, sw.options())
	for _, r := range sout.Results {
		if r.Err == nil {
			out[r.Key] = r.Value
			continue
		}
		sw.log.add(CellError{Key: r.Key, Err: r.Err})
		if !errors.Is(r.Err, runner.ErrSkipped) {
			failed[r.Key] = r.Err
		}
	}
	if err := ctx.Err(); err != nil {
		return out, err
	}
	if len(failed) > 0 && !sw.KeepGoing {
		return out, firstFailure(cells, failed)
	}
	return out, nil
}

// firstFailure renders the fail-fast sweep error for the first failed cell in
// input order, matching the scalar runner's format.
func firstFailure(cells []runner.Cell[float64], failed map[string]error) error {
	for _, c := range cells {
		if err, ok := failed[c.Key]; ok {
			return fmt.Errorf("runner: cell %q: %w", c.Key, err)
		}
	}
	return nil
}

// batchCell wraps one lane batch as a single runner cell. The key encodes the
// stream group, width, and a digest of the member keys, so a journaled batch
// entry can never be replayed against a different composition. Members are
// journaled and memoized individually from inside Run as they settle.
func (sw *Sweep) batchCell(group string, ms []member, notify *cellNotifier) runner.Cell[[]laneOut] {
	h := fnv.New64a()
	for _, m := range ms {
		h.Write([]byte(m.cell.Key))
		h.Write([]byte{0})
	}
	key := fmt.Sprintf("lane/%s/k%d/%x", group, len(ms), h.Sum64())
	keepGoing := sw.KeepGoing
	return runner.Cell[[]laneOut]{
		Key:    key,
		Labels: []string{"lanes", strconv.Itoa(len(ms))},
		Run: func(ctx context.Context) ([]laneOut, error) {
			cfgs := make([]lbic.Config, len(ms))
			for i, m := range ms {
				cfg := lbic.DefaultConfig()
				cfg.Port = m.spec.port
				cfg.MaxInsts = m.spec.insts
				if m.spec.gen == nil {
					cfg.Trace = sw.traceCache()
				}
				if m.spec.mut != nil {
					m.spec.mut(&cfg)
				}
				cfgs[i] = cfg
			}
			var (
				results []lbic.Result
				errs    []error
				err     error
			)
			if gp := ms[0].spec.gen; gp != nil {
				results, errs, err = lbic.SimulateGeneratorBatch(ctx, *gp, cfgs)
			} else {
				prog, berr := ms[0].spec.build()
				if berr != nil {
					return nil, berr
				}
				results, errs, err = lbic.SimulateBatch(ctx, prog, cfgs)
			}
			if err != nil {
				return nil, err
			}
			outs := make([]laneOut, len(ms))
			var firstErr error
			for i, m := range ms {
				if errs[i] != nil {
					outs[i] = laneOut{Key: m.cell.Key, Err: errs[i].Error()}
					if firstErr == nil {
						firstErr = errs[i]
					}
					notify.settle(m.cell.Key, errs[i])
					continue
				}
				res := results[i]
				v := m.spec.pick(&res)
				outs[i] = laneOut{Key: m.cell.Key, Val: v}
				sw.memo.put(m.spec.memoKey, &res)
				if sw.Journal != nil {
					sw.Journal.Record(m.cell.Key, v)
				}
				notify.settle(m.cell.Key, nil)
			}
			if firstErr != nil && !keepGoing {
				// Surface the failure so the runner stops the sweep; the lane
				// outcomes still ride in the value for demultiplexing.
				return outs, firstErr
			}
			return outs, nil
		},
	}
}
