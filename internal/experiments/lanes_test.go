package experiments

import (
	"path/filepath"
	"strings"
	"testing"

	"lbic"
	"lbic/internal/runner"
	"lbic/internal/stats"
)

// renderGrid runs testGrid on sw and returns its JSON + rendered text, the
// canonical "what the user sees" bytes the laned path must reproduce.
func renderGrid(t *testing.T, sw *Sweep) string {
	t.Helper()
	tab, err := testGrid(sw)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := tab.JSON(&sb); err != nil {
		t.Fatal(err)
	}
	if err := tab.Render(&sb); err != nil {
		t.Fatal(err)
	}
	return sb.String()
}

// TestSweepLanedMatchesScalar: the same grid rendered scalar, with the full
// port axis batched (Lanes=-1), and with a capped width must be identical —
// lane batching is a scheduling change, never a results change.
func TestSweepLanedMatchesScalar(t *testing.T) {
	scalar := renderGrid(t, NewSweep(5_000))
	for _, lanes := range []int{-1, 2, 4} {
		sw := NewSweep(5_000)
		sw.Lanes = lanes
		sw.Jobs = 4
		if got := renderGrid(t, sw); got != scalar {
			t.Errorf("Lanes=%d output differs from scalar:\n--- scalar ---\n%s\n--- laned ---\n%s", lanes, scalar, got)
		}
	}
}

// TestWorkloadMatrixLanedMatchesScalar covers the generator-backed cells:
// lanes share one synthetic stream, and the IPC and conflict views of one
// (generator, port, budget) simulation come from a single laned run.
func TestWorkloadMatrixLanedMatchesScalar(t *testing.T) {
	render := func(sw *Sweep) string {
		var sb strings.Builder
		for _, gen := range []func(*Sweep) (*stats.Table, error){WorkloadMatrix, WorkloadConflicts} {
			tab, err := gen(sw)
			if err != nil {
				t.Fatal(err)
			}
			if err := tab.JSON(&sb); err != nil {
				t.Fatal(err)
			}
		}
		return sb.String()
	}
	scalar := render(testSweep(tinyInsts))
	laned := testSweep(tinyInsts)
	laned.Lanes = -1
	if got := render(laned); got != scalar {
		t.Errorf("laned workload tables differ from scalar:\n--- scalar ---\n%s\n--- laned ---\n%s", scalar, got)
	}
}

// TestSweepLanedJournalInterop: a journal written by a laned sweep must serve
// a scalar resume, and one written scalar must serve a laned resume — cell
// keys are identical across lane widths, so checkpoints survive a -lanes
// change in either direction.
func TestSweepLanedJournalInterop(t *testing.T) {
	for _, dir := range []struct {
		name           string
		first, second  int // Lanes for the writing and resuming sweep
		sabotageSecond bool
	}{
		{"laned-then-scalar", -1, 1, true},
		{"scalar-then-laned", 1, -1, false},
	} {
		t.Run(dir.name, func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "sweep.jsonl")
			j, err := runner.OpenJournal(path, false)
			if err != nil {
				t.Fatal(err)
			}
			sw := NewSweep(5_000)
			sw.Lanes = dir.first
			sw.Journal = j
			first := renderGrid(t, sw)
			if j.Len() != 4 {
				t.Fatalf("journal has %d cells after first pass, want 4", j.Len())
			}
			if err := j.Close(); err != nil {
				t.Fatal(err)
			}

			j2, err := runner.OpenJournal(path, true)
			if err != nil {
				t.Fatal(err)
			}
			defer j2.Close()
			if j2.Resumed() != 4 {
				t.Fatalf("Resumed() = %d, want 4", j2.Resumed())
			}
			sw2 := NewSweep(5_000)
			sw2.Lanes = dir.second
			sw2.Journal = j2
			if dir.sabotageSecond {
				// Injected faults would fail any cell that actually reran —
				// they also force the scalar path, which is exactly the
				// resuming side this direction wants to prove.
				sw2.InjectPanic = []string{"pat:unit-stride", "pat:random"}
			}
			second := renderGrid(t, sw2)
			if second != first {
				t.Errorf("resumed output differs:\n--- first ---\n%s\n--- resumed ---\n%s", first, second)
			}
			if fails := sw2.Failures(); len(fails) != 0 {
				t.Errorf("resumed pass reran cells: %v", fails)
			}
			if j2.Len() != 4 {
				t.Errorf("journal has %d cells after resume, want 4", j2.Len())
			}
		})
	}
}

// TestSweepLanedFaultInjectionFallsBackToScalar: fault injection targets
// individual cells, so a sweep carrying injections must refuse to batch —
// and the injected faults must still land exactly as they do scalar.
func TestSweepLanedFaultInjectionFallsBackToScalar(t *testing.T) {
	sw := NewSweep(5_000)
	sw.Lanes = -1
	sw.KeepGoing = true
	sw.InjectPanic = []string{"pat:unit-stride/true-1"}
	if sw.laned() {
		t.Fatal("sweep with injected faults still reports the laned path")
	}
	tab, err := testGrid(sw)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := tab.Render(&sb); err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(sb.String(), errCell); got != 1 {
		t.Errorf("rendered table has %d ERR cells, want 1:\n%s", got, sb.String())
	}
}

// TestSweepLanedFailFast: without KeepGoing, a lane failure must surface as
// the same "runner: cell ..." error the scalar path returns, naming the
// failed member cell, not the internal batch.
func TestSweepLanedFailFast(t *testing.T) {
	sw := NewSweep(5_000)
	sw.Lanes = -1
	// An unbuildable benchmark fails inside the batch cell at build time.
	cell := sw.simBench("no-such-benchmark", lbic.BankedPort(4))
	_, err := sw.runLaned([]runner.Cell[float64]{cell})
	if err == nil {
		t.Fatal("laned run with an unbuildable lane returned nil error")
	}
	if !strings.Contains(err.Error(), "runner: cell ") || !strings.Contains(err.Error(), cell.Key) {
		t.Errorf("error %q does not carry the member cell key %q", err, cell.Key)
	}
}
