package experiments

import (
	"context"
	"fmt"

	"lbic"
	"lbic/internal/runner"
	"lbic/internal/stats"
)

// workloadPorts is the port-organization axis of the workload tables: the
// registry's representative configurations per family (so a newly registered
// port kind joins these tables without edits here), matching the
// access-pattern matrix so the two tables read side by side.
func workloadPorts() []lbic.PortConfig { return lbic.PortAxis() }

// simGen is one workload generator (at its catalog-default parameters)
// under one port organization at the sweep budget. The cell key embeds the
// fully resolved parameter key, so any change to a generator's defaults
// invalidates journaled cells instead of silently reusing them.
func (sw *Sweep) simGen(kind string, port lbic.PortConfig) runner.Cell[float64] {
	return sw.genCell(kind, port, "", func(r *lbic.Result) float64 { return r.IPC })
}

// simGenConflict is simGen reduced to the same-bank conflict rate. Distinct
// key namespace: the journaled value differs.
func (sw *Sweep) simGenConflict(kind string, port lbic.PortConfig) runner.Cell[float64] {
	return sw.genCell(kind, port, "conf/", func(r *lbic.Result) float64 { return r.PortConflictRate() })
}

func (sw *Sweep) genCell(kind string, port lbic.PortConfig, ns string, pick func(*lbic.Result) float64) runner.Cell[float64] {
	insts := sw.Insts
	params := lbic.GenParams{Kind: kind}
	rp, err := params.Resolve()
	if err != nil {
		key := fmt.Sprintf("sim/%sgen:%s/%s/i%d", ns, kind, port.Key(), insts)
		return runner.Cell[float64]{Key: key, Run: func(context.Context) (float64, error) { return 0, err }}
	}
	key := fmt.Sprintf("sim/%s%s/%s/i%d", ns, rp.Key(), port.Key(), insts)
	// The memo key strips the namespace: the IPC and conflict-rate views of
	// one (generator, port, budget) point are the same simulation, so the
	// second table reuses the first's Result instead of re-synthesizing the
	// stream.
	memoKey := fmt.Sprintf("sim/%s/%s/i%d", rp.Key(), port.Key(), insts)
	group := fmt.Sprintf("gen/%s/i%d", rp.Key(), insts)
	sw.specs.put(key, simSpec{
		group: group, insts: insts, port: port, gen: &params,
		pick: pick, memoKey: memoKey,
	})
	return runner.Cell[float64]{Key: key, Labels: scalarLaneLabels, Run: func(ctx context.Context) (float64, error) {
		if res, ok := sw.memo.get(memoKey); ok {
			return pick(res), nil
		}
		cfg := lbic.DefaultConfig()
		cfg.Port = port
		cfg.MaxInsts = insts
		res, err := lbic.SimulateGenerator(ctx, params, cfg)
		if err != nil {
			return 0, err
		}
		sw.memo.put(memoKey, &res)
		return pick(&res), nil
	}}
}

// WorkloadMatrix simulates every catalog workload generator against a
// representative of each port-organization family and reports IPC. It is
// the modern-workload companion to the access-pattern matrix: where the
// patterns isolate single access shapes, the generators model whole
// post-SPEC95 reference streams (KV lookups, hash joins, pointer chasing,
// GC sweeps, multiprogrammed interleavings).
func WorkloadMatrix(sw *Sweep) (*stats.Table, error) {
	return workloadGrid(sw, "Workload-generator matrix (IPC)",
		(*Sweep).simGen, stats.FormatIPC)
}

// WorkloadConflicts is the same sweep viewed through the port subsystem:
// same-bank conflicts per access on each organization. Rates can exceed 1 —
// a request that stalls re-conflicts every cycle it waits — which is
// exactly the pressure the adversarial search maximizes.
func WorkloadConflicts(sw *Sweep) (*stats.Table, error) {
	return workloadGrid(sw, "Workload-generator matrix (bank conflicts per access)",
		(*Sweep).simGenConflict, formatRate)
}

func workloadGrid(sw *Sweep, tableTitle string, cell func(*Sweep, string, lbic.PortConfig) runner.Cell[float64], format func(float64) string) (*stats.Table, error) {
	ports := workloadPorts()
	names := lbic.GeneratorKinds()
	cols := make([]column, len(ports))
	for i, port := range ports {
		port := port
		cols[i] = column{header: port.Name(), cell: func(kind string) runner.Cell[float64] {
			return cell(sw, kind, port)
		}}
	}
	return grid(sw, tableTitle, names, cols, format, false)
}

// formatRate renders a conflicts-per-access rate.
func formatRate(v float64) string { return fmt.Sprintf("%.3f", v) }
