package experiments

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"time"

	"lbic"
	"lbic/internal/runner"
	"lbic/internal/stats"
)

// Sweep carries the execution policy for a set of experiment runs: the
// instruction budget, parallelism, per-cell timeout and retry policy, the
// checkpoint journal, and graceful-shutdown plumbing. Every table and figure
// generator takes one, so a single panicking port design, hung pipeline, or
// ^C costs individual cells (rendered as ERR) rather than the whole
// evaluation. The zero value of every field is the conservative default:
// serial, no timeout, no retries, fail-fast, no journal.
type Sweep struct {
	// Insts is the per-run instruction budget.
	Insts uint64
	// Ctx cancels the whole sweep (nil = background).
	Ctx context.Context
	// Jobs bounds concurrently running cells (0 or 1 = serial).
	Jobs int
	// Timeout bounds each cell attempt (0 = none).
	Timeout time.Duration
	// Retries re-attempts failed (non-timeout) cells.
	Retries int
	// KeepGoing renders tables with ERR cells instead of stopping at the
	// first failure.
	KeepGoing bool
	// Journal checkpoints completed cells for -resume.
	Journal *runner.Journal
	// Trace, when non-nil, records each program's dynamic trace once and
	// replays it for every cell at the same instruction budget — simulation
	// cells, Table 2 characterization, and Figure 3 reference-stream
	// analysis all share one recording. Results are bit-identical with and
	// without it (cell keys deliberately ignore it), so journals stay
	// compatible either way.
	Trace *lbic.TraceCache
	// Spans, when non-nil, records every cell of this sweep as spans on the
	// trace (cell attempts, retries, deadline slack from the runner; cycles
	// and trace-cache attribution from the simulator). Export the tree with
	// lbic.WriteChromeTrace or lbic.WriteTraceJSONL.
	Spans *lbic.RequestTrace
	// Stop requests graceful shutdown: in-flight cells finish, the rest are
	// skipped.
	Stop <-chan struct{}
	// OnCell observes every settled cell (progress reporting).
	OnCell func(key string, err error)
	// InjectPanic and InjectHang are key substrings marking cells to
	// sabotage — a panic or a never-returning hang — for exercising the
	// fault-isolation machinery end to end.
	InjectPanic []string
	InjectHang  []string
	// Lanes controls vectorized multi-config stepping: simulation cells that
	// share one (program, budget) instruction stream are grouped into lane
	// batches stepping off a shared decode cursor (see lbic.SimulateBatch),
	// so each dynamic instruction is decoded once per batch instead of once
	// per cell. 0 or 1 runs every cell on the scalar path (the zero-value
	// default); < 0 batches a whole shared-stream group (the full port
	// axis); >= 2 caps the batch width. Results are byte-identical at any
	// width, and cell keys — the journal identity — do not change, so
	// journals resume across widths in both directions. Fault injection
	// disables batching: injected faults must land on exactly the named
	// cell, not a whole batch.
	Lanes int

	log   *failureLog
	progs *progCache
	specs *specRegistry
	memo  *resultMemo
	// local is the sweep-private trace cache serving cells when Trace is
	// nil: without it, every cell of the same benchmark re-ran the emulator
	// to regenerate an identical stream once per cell.
	local *lbic.TraceCache
}

// localTraceBudget bounds the sweep-private trace cache. Matches the
// lbictables default budget; eviction only costs a re-recording.
const localTraceBudget = 256 << 20

// NewSweep returns a sweep with the given budget and default policy.
func NewSweep(insts uint64) *Sweep {
	return &Sweep{
		Insts: insts,
		log:   &failureLog{},
		progs: &progCache{m: map[string]*lbic.Program{}},
		specs: &specRegistry{m: map[string]simSpec{}},
		memo:  &resultMemo{m: map[string]*lbic.Result{}},
		local: lbic.NewTraceCache(localTraceBudget),
	}
}

// traceCache returns the cache cells stream from: the caller-provided one,
// or the sweep-private cache, so a sweep without an explicit Trace still
// records each (program, budget) stream once and replays it for every cell.
func (sw *Sweep) traceCache() *lbic.TraceCache {
	if sw.Trace != nil {
		return sw.Trace
	}
	return sw.local
}

// progCache builds each program once per sweep. Programs are immutable once
// built, so cells share instances — which both skips redundant synthesis and
// lets the trace cache memoize program fingerprints by identity.
type progCache struct {
	mu sync.Mutex
	m  map[string]*lbic.Program
}

func (pc *progCache) get(key string, build func() (*lbic.Program, error)) (*lbic.Program, error) {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	if p, ok := pc.m[key]; ok {
		return p, nil
	}
	p, err := build()
	if err != nil {
		return nil, err
	}
	pc.m[key] = p
	return p, nil
}

// benchProg returns the sweep's shared instance of a benchmark kernel.
func (sw *Sweep) benchProg(name string) (*lbic.Program, error) {
	return sw.progs.get("bench/"+name, func() (*lbic.Program, error) { return lbic.BuildBenchmark(name) })
}

// patternProg returns the sweep's shared instance of a pattern microbenchmark.
func (sw *Sweep) patternProg(name string) (*lbic.Program, error) {
	return sw.progs.get("pat/"+name, func() (*lbic.Program, error) { return lbic.BuildPattern(name) })
}

// WithInsts returns a copy of the sweep at a different budget, sharing the
// failure log (lbictables runs ablations at a reduced budget but reports one
// combined failure appendix).
func (sw *Sweep) WithInsts(insts uint64) *Sweep {
	c := *sw
	c.Insts = insts
	return &c
}

// CellError is one failed or skipped cell.
type CellError struct {
	Key string
	Err error
}

type failureLog struct {
	mu   sync.Mutex
	list []CellError
}

func (l *failureLog) add(e CellError) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.list = append(l.list, e)
}

// Failures returns every cell that failed or was skipped across all
// experiments run through this sweep (and any WithInsts copies), in
// completion order.
func (sw *Sweep) Failures() []CellError {
	sw.log.mu.Lock()
	defer sw.log.mu.Unlock()
	return append([]CellError(nil), sw.log.list...)
}

func (sw *Sweep) context() context.Context {
	ctx := sw.Ctx
	if ctx == nil {
		ctx = context.Background()
	}
	if sw.Spans != nil {
		ctx = lbic.WithTrace(ctx, sw.Spans)
	}
	return ctx
}

func (sw *Sweep) options() runner.Options {
	return runner.Options{
		Jobs:      sw.Jobs,
		Timeout:   sw.Timeout,
		Retries:   sw.Retries,
		KeepGoing: sw.KeepGoing,
		Journal:   sw.Journal,
		Stop:      sw.Stop,
		OnCell:    sw.OnCell,
	}
}

// sweepRun executes cells under the sweep's policy and returns the
// successful values keyed by cell key; failed and skipped cells are recorded
// in the failure log and simply absent from the map. The error is nil unless
// the context was canceled or (without KeepGoing) a cell failed.
func sweepRun[T any](sw *Sweep, cells []runner.Cell[T]) (map[string]T, error) {
	// Simulation sweeps (float64 grids) route through the laned runner when
	// batching is enabled: cells sharing a stream step in lockstep off one
	// cursor. Fault injection forces the scalar path — see Sweep.Lanes.
	if fc, ok := any(cells).([]runner.Cell[float64]); ok && sw.laned() {
		m, err := sw.runLaned(fc)
		return any(m).(map[string]T), err
	}
	injectFaults(sw, cells)
	out, err := runner.Run(sw.context(), cells, sw.options())
	m := make(map[string]T, len(out.Results))
	for _, r := range out.Results {
		if r.Err == nil {
			m[r.Key] = r.Value
		} else {
			sw.log.add(CellError{Key: r.Key, Err: r.Err})
		}
	}
	return m, err
}

// injectFaults sabotages cells whose key matches an injection substring.
func injectFaults[T any](sw *Sweep, cells []runner.Cell[T]) {
	if len(sw.InjectPanic) == 0 && len(sw.InjectHang) == 0 {
		return
	}
	for i := range cells {
		key := cells[i].Key
		switch {
		case matchAny(key, sw.InjectPanic):
			cells[i].Run = func(context.Context) (T, error) {
				panic(fmt.Sprintf("injected panic in cell %s", key))
			}
		case matchAny(key, sw.InjectHang):
			cells[i].Run = func(context.Context) (T, error) {
				select {} // deliberately ignores ctx: models a wedged cell
			}
		}
	}
}

func matchAny(key string, subs []string) bool {
	for _, s := range subs {
		if s != "" && strings.Contains(key, s) {
			return true
		}
	}
	return false
}

// --- cell constructors ---
// Keys are stable, human-readable encodings of the full cell configuration;
// they are the journal's checkpoint identity, so anything that changes the
// simulated configuration must appear in the key.

// simBench is one benchmark under one port organization at the sweep budget.
func (sw *Sweep) simBench(name string, port lbic.PortConfig) runner.Cell[float64] {
	return sw.simBenchMut(name, port, "", nil)
}

// simBenchMut is simBench with a Config mutation; suffix must uniquely
// encode the mutation (e.g. "lsq32") since PortConfig.Name does not see it.
func (sw *Sweep) simBenchMut(name string, port lbic.PortConfig, suffix string, mut func(*lbic.Config)) runner.Cell[float64] {
	key := fmt.Sprintf("sim/%s/%s/i%d", name, port.Key(), sw.Insts)
	if suffix != "" {
		key += "/" + suffix
	}
	group := fmt.Sprintf("bench/%s/i%d", name, sw.Insts)
	build := func() (*lbic.Program, error) { return sw.benchProg(name) }
	return sw.simCell(key, group, build, port, mut)
}

// simPattern is one access-pattern microbenchmark under one port
// organization.
func (sw *Sweep) simPattern(name string, port lbic.PortConfig) runner.Cell[float64] {
	key := fmt.Sprintf("sim/pat:%s/%s/i%d", name, port.Key(), sw.Insts)
	group := fmt.Sprintf("pat/%s/i%d", name, sw.Insts)
	build := func() (*lbic.Program, error) { return sw.patternProg(name) }
	return sw.simCell(key, group, build, port, nil)
}

func (sw *Sweep) simCell(key, group string, build func() (*lbic.Program, error), port lbic.PortConfig, mut func(*lbic.Config)) runner.Cell[float64] {
	insts := sw.Insts
	// The full cell key doubles as the duplicate-sim memo identity: the
	// same (program, port, budget, mutation) point appearing in two tables
	// of one invocation is simulated once (replay determinism makes the
	// second Result identical, so reusing it cannot change any output).
	sw.specs.put(key, simSpec{
		group: group, insts: insts, port: port, mut: mut, build: build,
		pick: pickIPC, memoKey: key,
	})
	return runner.Cell[float64]{Key: key, Labels: scalarLaneLabels, Run: func(ctx context.Context) (float64, error) {
		if res, ok := sw.memo.get(key); ok {
			return pickIPC(res), nil
		}
		prog, err := build()
		if err != nil {
			return 0, err
		}
		cfg := lbic.DefaultConfig()
		cfg.Port = port
		cfg.MaxInsts = insts
		cfg.Trace = sw.traceCache()
		if mut != nil {
			mut(&cfg)
		}
		res, err := lbic.SimulateContext(ctx, prog, cfg)
		if err != nil {
			return 0, err
		}
		sw.memo.put(key, &res)
		return res.IPC, nil
	}}
}

// simBenchConflict is simBench reduced to the port conflict rate (stalled
// requests per granted access). Distinct key namespace — the journaled value
// differs — but the memo key matches the IPC cell's, so the same
// (benchmark, port, budget) point appearing in an IPC table and a conflict
// table is simulated once.
func (sw *Sweep) simBenchConflict(name string, port lbic.PortConfig) runner.Cell[float64] {
	insts := sw.Insts
	key := fmt.Sprintf("sim/conf/%s/%s/i%d", name, port.Key(), insts)
	memoKey := fmt.Sprintf("sim/%s/%s/i%d", name, port.Key(), insts)
	group := fmt.Sprintf("bench/%s/i%d", name, insts)
	build := func() (*lbic.Program, error) { return sw.benchProg(name) }
	pick := func(r *lbic.Result) float64 { return r.PortConflictRate() }
	sw.specs.put(key, simSpec{
		group: group, insts: insts, port: port, build: build,
		pick: pick, memoKey: memoKey,
	})
	return runner.Cell[float64]{Key: key, Labels: scalarLaneLabels, Run: func(ctx context.Context) (float64, error) {
		if res, ok := sw.memo.get(memoKey); ok {
			return pick(res), nil
		}
		prog, err := build()
		if err != nil {
			return 0, err
		}
		cfg := lbic.DefaultConfig()
		cfg.Port = port
		cfg.MaxInsts = insts
		cfg.Trace = sw.traceCache()
		res, err := lbic.SimulateContext(ctx, prog, cfg)
		if err != nil {
			return 0, err
		}
		sw.memo.put(memoKey, &res)
		return pick(&res), nil
	}}
}

func pickIPC(r *lbic.Result) float64 { return r.IPC }

// scalarLaneLabels tag an unbatched simulation cell's profile samples.
var scalarLaneLabels = []string{"lanes", "1"}

// charCell measures a benchmark's Table 2 characteristics against a given
// L1 geometry.
// charCell (and missRateCell, refCell below) streams from the caller's
// trace cache only: a characterization pass is a single sequential read, so
// replaying costs the same as re-emulating and a sweep-private recording
// would never be repaid within the cell's own table.
func (sw *Sweep) charCell(name string, geom lbic.Geometry) runner.Cell[lbic.BenchmarkStats] {
	insts := sw.Insts
	tc := sw.Trace
	key := fmt.Sprintf("char/%s/%s/i%d", name, geomKey(geom), insts)
	return runner.Cell[lbic.BenchmarkStats]{Key: key, Run: func(ctx context.Context) (lbic.BenchmarkStats, error) {
		prog, err := sw.benchProg(name)
		if err != nil {
			return lbic.BenchmarkStats{}, err
		}
		return lbic.Characterize(ctx, prog, lbic.CharacterizeOptions{Insts: insts, Geom: geom, Trace: tc})
	}}
}

// missRateCell is charCell reduced to the miss rate, for the capacity and
// associativity grids. Distinct key namespace: the journaled value differs.
func (sw *Sweep) missRateCell(name string, geom lbic.Geometry) runner.Cell[float64] {
	insts := sw.Insts
	tc := sw.Trace
	key := fmt.Sprintf("miss/%s/%s/i%d", name, geomKey(geom), insts)
	return runner.Cell[float64]{Key: key, Run: func(ctx context.Context) (float64, error) {
		prog, err := sw.benchProg(name)
		if err != nil {
			return 0, err
		}
		s, err := lbic.Characterize(ctx, prog, lbic.CharacterizeOptions{Insts: insts, Geom: geom, Trace: tc})
		if err != nil {
			return 0, err
		}
		return s.MissRate, nil
	}}
}

func geomKey(g lbic.Geometry) string {
	return fmt.Sprintf("s%d-a%d-l%d", g.Size, g.Assoc, g.LineSize)
}

// refCell computes a benchmark's consecutive-reference distribution over an
// infinite banks-way line-interleaved cache.
func (sw *Sweep) refCell(name string, banks, lineSize int) runner.Cell[lbic.Distribution] {
	insts := sw.Insts
	tc := sw.Trace
	key := fmt.Sprintf("refs/%s/b%d-l%d/i%d", name, banks, lineSize, insts)
	return runner.Cell[lbic.Distribution]{Key: key, Run: func(ctx context.Context) (lbic.Distribution, error) {
		prog, err := sw.benchProg(name)
		if err != nil {
			return lbic.Distribution{}, err
		}
		return lbic.AnalyzeRefStream(ctx, prog, lbic.RefStreamOptions{Banks: banks, LineSize: lineSize, Insts: insts, Trace: tc})
	}}
}

// --- grid rendering ---

// errCell is how a failed or skipped cell renders in tables; the failure
// appendix carries the details.
const errCell = "ERR"

// fmtCell renders a value or ERR.
func fmtCell(v float64, ok bool, format func(float64) string) string {
	if !ok {
		return errCell
	}
	return format(v)
}

// column is one column of an IPC (or miss-rate) grid: a header and a cell
// constructor per benchmark.
type column struct {
	header string
	cell   func(bench string) runner.Cell[float64]
}

// grid runs a benches x columns sweep and renders it with a per-column
// average row over the successful cells (the historical hard-coded /10
// denominators silently mis-averaged partial sweeps; stats.Mean over the
// values actually present does not).
func grid(sw *Sweep, tableTitle string, benches []string, cols []column, format func(float64) string, withAvg bool) (*stats.Table, error) {
	if format == nil {
		format = stats.FormatIPC
	}
	keys := make([][]string, len(benches))
	var cells []runner.Cell[float64]
	for bi, b := range benches {
		keys[bi] = make([]string, len(cols))
		for ci, c := range cols {
			cell := c.cell(b)
			keys[bi][ci] = cell.Key
			cells = append(cells, cell)
		}
	}
	got, err := sweepRun(sw, cells)
	if err != nil {
		return nil, err
	}
	headers := []string{"Program"}
	for _, c := range cols {
		headers = append(headers, c.header)
	}
	t := stats.NewTable(tableTitle, headers...)
	colVals := make([][]float64, len(cols))
	for bi, b := range benches {
		row := []string{title(b)}
		for ci := range cols {
			v, ok := got[keys[bi][ci]]
			if ok {
				colVals[ci] = append(colVals[ci], v)
			}
			row = append(row, fmtCell(v, ok, format))
		}
		t.AddRow(row...)
	}
	if withAvg {
		row := []string{"Average"}
		for ci := range cols {
			row = append(row, fmtCell(stats.Mean(colVals[ci]), len(colVals[ci]) > 0, format))
		}
		t.AddRow(row...)
	}
	return t, nil
}
