package experiments

import (
	"fmt"

	"lbic"
	"lbic/internal/runner"
	"lbic/internal/stats"
)

// Ablation studies: design-choice sweeps the paper argues about in prose.
// Each returns a rendered table; cmd/lbictables -ablations prints them all.
// Like the main tables, every study runs through the Sweep policy: failed
// cells render as ERR and column averages cover the cells that succeeded
// (the old hand-rolled sum/10 averages silently assumed all ten benchmarks
// completed).

// AblationInsts is the default per-run budget for ablations (secondary
// studies run at a reduced budget).
const AblationInsts = 300_000

// fmtMissRate renders a miss rate for the capacity/associativity grids.
func fmtMissRate(v float64) string { return fmt.Sprintf("%.4f", v) }

// AblationBankSelection compares bank selection functions on the 4-bank
// cache (§3.2: "the choice of a selection function may not be as critical as
// we thought since much of the loss of bandwidth due to same bank collisions
// map to the same cache line"). Word interleaving is the §4 counterpoint:
// it removes same-line conflicts but costs tag replication.
func AblationBankSelection(sw *Sweep) (*stats.Table, error) {
	kinds := []struct {
		header string
		kind   lbic.BankSelectorKind
	}{
		{"bit-select", lbic.BitSelect},
		{"xor-fold", lbic.XorFold},
		{"word-interleave", lbic.WordInterleave},
	}
	cols := make([]column, len(kinds))
	for i, k := range kinds {
		kind := k.kind
		cols[i] = column{header: k.header, cell: func(b string) runner.Cell[float64] {
			port := lbic.BankedPort(4)
			port.Selector = kind
			return sw.simBench(b, port)
		}}
	}
	return grid(sw, "Ablation: bank selection function (4 banks, IPC)",
		lbic.BenchmarkNames(), cols, stats.FormatIPC, true)
}

// AblationCombiningPolicy compares the paper's leading-request LBIC with the
// §5.2 proposed enhancement (open the line with the largest combinable
// group, with periodic age rotation against starvation). Bespoke rendering:
// the delta column needs both the leading and greedy cells of a row, so a
// row with either half failed renders the delta as ERR too.
func AblationCombiningPolicy(sw *Sweep) (*stats.Table, error) {
	greedyPort := lbic.LBICPort(4, 2)
	greedyPort.Greedy = true
	names := lbic.BenchmarkNames()
	var cells []runner.Cell[float64]
	lKeys := make(map[string]string, len(names))
	gKeys := make(map[string]string, len(names))
	for _, name := range names {
		l := sw.simBench(name, lbic.LBICPort(4, 2))
		g := sw.simBench(name, greedyPort)
		lKeys[name], gKeys[name] = l.Key, g.Key
		cells = append(cells, l, g)
	}
	got, err := sweepRun(sw, cells)
	if err != nil {
		return nil, err
	}
	t := stats.NewTable(
		"Ablation: LBIC line selection policy (4x2, IPC)",
		"Program", "leading", "greedy", "delta")
	var lVals, gVals []float64
	for _, name := range names {
		l, lok := got[lKeys[name]]
		g, gok := got[gKeys[name]]
		delta := errCell
		if lok && gok && l != 0 {
			delta = fmt.Sprintf("%+.1f%%", 100*(g-l)/l)
		}
		t.AddRow(title(name),
			fmtCell(l, lok, stats.FormatIPC), fmtCell(g, gok, stats.FormatIPC), delta)
		if lok {
			lVals = append(lVals, l)
		}
		if gok {
			gVals = append(gVals, g)
		}
	}
	lAvg, gAvg := stats.Mean(lVals), stats.Mean(gVals)
	avgDelta := errCell
	if len(lVals) > 0 && len(gVals) > 0 && lAvg != 0 {
		avgDelta = fmt.Sprintf("%+.1f%%", 100*(gAvg-lAvg)/lAvg)
	}
	t.AddRow("Average",
		fmtCell(lAvg, len(lVals) > 0, stats.FormatIPC),
		fmtCell(gAvg, len(gVals) > 0, stats.FormatIPC), avgDelta)
	return t, nil
}

// AblationLSQDepth sweeps the load/store queue depth under the 4x2 LBIC
// (§5.2: "performance of the scheme depends on the depth of the LSQ. Deeper
// LSQs will help to minimize possible performance degradation due to
// insufficient data requests for combining").
func AblationLSQDepth(sw *Sweep) (*stats.Table, error) {
	depths := []int{16, 32, 64, 128, 512}
	cols := make([]column, len(depths))
	for i, d := range depths {
		d := d
		cols[i] = column{header: fmt.Sprintf("LSQ %d", d), cell: func(b string) runner.Cell[float64] {
			return sw.simBenchMut(b, lbic.LBICPort(4, 2), fmt.Sprintf("lsq%d", d), func(cfg *lbic.Config) {
				cpu := defaultCPU()
				cpu.LSQSize = d
				cfg.CPU = &cpu
			})
		}}
	}
	return grid(sw, "Ablation: LSQ depth under the 4x2 LBIC (IPC)",
		lbic.BenchmarkNames(), cols, stats.FormatIPC, true)
}

// AblationStoreQueueDepth sweeps the LBIC per-bank store queue depth on the
// store-heavy integer codes (§5.2's PA8000-style store queue).
func AblationStoreQueueDepth(sw *Sweep) (*stats.Table, error) {
	depths := []int{1, 2, 4, 8, 32}
	cols := make([]column, len(depths))
	for i, d := range depths {
		d := d
		cols[i] = column{header: fmt.Sprintf("SQ %d", d), cell: func(b string) runner.Cell[float64] {
			port := lbic.LBICPort(4, 2)
			port.StoreQueueDepth = d
			return sw.simBench(b, port)
		}}
	}
	return grid(sw, "Ablation: LBIC per-bank store queue depth (4x2, IPC, SPECint)",
		IntNames(), cols, stats.FormatIPC, true)
}

// AblationStoreQueueDecomposition separates the LBIC's two mechanisms on the
// store-heavy integer suite: plain banking, banking plus PA8000-style store
// queues (no combining), and the full LBIC (store queues plus combining).
func AblationStoreQueueDecomposition(sw *Sweep) (*stats.Table, error) {
	cfgs := []lbic.PortConfig{
		lbic.BankedPort(4),
		lbic.BankedSQPort(4),
		lbic.LBICPort(4, 2),
		lbic.LBICPort(4, 4),
	}
	cols := make([]column, len(cfgs))
	for i, c := range cfgs {
		c := c
		cols[i] = column{header: c.Name(), cell: func(b string) runner.Cell[float64] {
			return sw.simBench(b, c)
		}}
	}
	return grid(sw, "Ablation: store queues vs combining (4 banks, IPC)",
		lbic.BenchmarkNames(), cols, stats.FormatIPC, true)
}

// AblationScanDepth sweeps the LSQ scheduling window (how many ready
// requests the arbiter sees per cycle) for the banked cache, quantifying the
// §5 claim that memory re-ordering lets multi-banking fill independent
// banks.
func AblationScanDepth(sw *Sweep) (*stats.Table, error) {
	widths := []int{1, 4, 16, 64, 256}
	cols := make([]column, len(widths))
	for i, w := range widths {
		w := w
		cols[i] = column{header: fmt.Sprintf("scan %d", w), cell: func(b string) runner.Cell[float64] {
			return sw.simBenchMut(b, lbic.BankedPort(4), fmt.Sprintf("scan%d", w), func(cfg *lbic.Config) {
				cpu := defaultCPU()
				cpu.MemScanDepth = w
				cfg.CPU = &cpu
			})
		}}
	}
	return grid(sw, "Ablation: LSQ scheduling window under bank-4 (IPC)",
		lbic.BenchmarkNames(), cols, stats.FormatIPC, true)
}

// lineSizeMut builds the Config mutation for an L1 line-size override.
func lineSizeMut(lineSize int) func(*lbic.Config) {
	return func(cfg *lbic.Config) {
		mem := lbic.DefaultMemParams()
		mem.L1.LineSize = lineSize
		if mem.L2.LineSize < lineSize {
			mem.L2.LineSize = lineSize
		}
		cfg.Mem = &mem
	}
}

// AblationLineSize sweeps the L1 line size under the 4x2 LBIC and the plain
// 4-bank cache. Larger lines put more consecutive references on one line:
// more combining opportunity for the LBIC, more same-line conflicts for the
// plain banked design — the tradeoff behind the paper's footnote-a choice of
// line interleaving.
func AblationLineSize(sw *Sweep) (*stats.Table, error) {
	lineSizes := []int{16, 32, 64, 128}
	var cols []column
	for _, ls := range lineSizes {
		ls := ls
		cols = append(cols, column{header: fmt.Sprintf("bank %dB", ls), cell: func(b string) runner.Cell[float64] {
			return sw.simBenchMut(b, lbic.BankedPort(4), fmt.Sprintf("ls%d", ls), lineSizeMut(ls))
		}})
	}
	for _, ls := range lineSizes {
		ls := ls
		cols = append(cols, column{header: fmt.Sprintf("lbic %dB", ls), cell: func(b string) runner.Cell[float64] {
			return sw.simBenchMut(b, lbic.LBICPort(4, 2), fmt.Sprintf("ls%d", ls), lineSizeMut(ls))
		}})
	}
	return grid(sw, "Ablation: L1 line size, 4-bank vs 4x2 LBIC (IPC)",
		lbic.BenchmarkNames(), cols, stats.FormatIPC, true)
}

// AblationAssociativity reports each kernel's miss rate as the 32KB L1 gains
// associativity: conflict misses (go, perl, compress hot structures) fall,
// compulsory streaming misses (the FP codes) do not.
func AblationAssociativity(sw *Sweep) (*stats.Table, error) {
	assocs := []int{1, 2, 4, 8}
	cols := make([]column, len(assocs))
	for i, a := range assocs {
		a := a
		cols[i] = column{header: fmt.Sprintf("%d-way", a), cell: func(b string) runner.Cell[float64] {
			return sw.missRateCell(b, lbic.Geometry{Size: 32 << 10, LineSize: 32, Assoc: a})
		}}
	}
	return grid(sw, "Ablation: 32KB L1 associativity vs miss rate",
		lbic.BenchmarkNames(), cols, fmtMissRate, false)
}

// AblationEqualPorts compares designs with the SAME total of eight ports:
// one ideal 8-port array, multi-ported banks at 2x4/4x2, eight single-ported
// banks, and — at far lower cost than any of them — the 4x2 LBIC's eight
// effective ports (four single-ported banks plus line buffers). This is the
// cost/performance frontier the paper's conclusion argues about.
func AblationEqualPorts(sw *Sweep) (*stats.Table, error) {
	cfgs := []lbic.PortConfig{
		lbic.IdealPort(8),
		lbic.MultiPortedBanksPort(2, 4),
		lbic.MultiPortedBanksPort(4, 2),
		lbic.BankedPort(8),
		lbic.LBICPort(4, 2),
	}
	cols := make([]column, len(cfgs))
	for i, c := range cfgs {
		c := c
		cols[i] = column{header: c.Name(), cell: func(b string) runner.Cell[float64] {
			return sw.simBench(b, c)
		}}
	}
	return grid(sw, "Ablation: eight total ports, five ways (IPC)",
		lbic.BenchmarkNames(), cols, stats.FormatIPC, true)
}

// AblationMemoryLatency sweeps the main-memory latency under true-4 and the
// 4x2 LBIC. The paper stresses bandwidth rather than latency (§2.1, a flat
// 10-cycle memory); this sweep verifies the design ranking it reports is
// stable as memory gets slower.
func AblationMemoryLatency(sw *Sweep) (*stats.Table, error) {
	lats := []int{10, 25, 50, 100}
	memLatMut := func(lat int) func(*lbic.Config) {
		return func(cfg *lbic.Config) {
			mem := lbic.DefaultMemParams()
			mem.MemLat = lat
			cfg.Mem = &mem
		}
	}
	var cols []column
	for _, l := range lats {
		l := l
		cols = append(cols, column{header: fmt.Sprintf("true-4 @%d", l), cell: func(b string) runner.Cell[float64] {
			return sw.simBenchMut(b, lbic.IdealPort(4), fmt.Sprintf("mlat%d", l), memLatMut(l))
		}})
	}
	for _, l := range lats {
		l := l
		cols = append(cols, column{header: fmt.Sprintf("lbic @%d", l), cell: func(b string) runner.Cell[float64] {
			return sw.simBenchMut(b, lbic.LBICPort(4, 2), fmt.Sprintf("mlat%d", l), memLatMut(l))
		}})
	}
	return grid(sw, "Ablation: main-memory latency (IPC)",
		lbic.BenchmarkNames(), cols, stats.FormatIPC, true)
}

// AblationL2Bandwidth sweeps how many miss requests the L1-to-L2 path
// accepts per cycle under 16 ideal ports. The paper's §2.1 path accepts one
// per cycle; the streaming FP kernels turn out to be bound by exactly that,
// so widening it exposes how much of their port headroom the memory system
// was absorbing.
func AblationL2Bandwidth(sw *Sweep) (*stats.Table, error) {
	widths := []int{1, 2, 4}
	cols := make([]column, len(widths))
	for i, w := range widths {
		w := w
		cols[i] = column{header: fmt.Sprintf("%d/cycle", w), cell: func(b string) runner.Cell[float64] {
			return sw.simBenchMut(b, lbic.IdealPort(16), fmt.Sprintf("l2bw%d", w), func(cfg *lbic.Config) {
				mem := lbic.DefaultMemParams()
				mem.L2PerCycle = w
				cfg.Mem = &mem
			})
		}}
	}
	return grid(sw, "Ablation: L1-to-L2 request bandwidth under true-16 (IPC)",
		lbic.BenchmarkNames(), cols, stats.FormatIPC, true)
}

// AblationAGUs sweeps the load/store (address generation) unit count under
// four ideal ports — Table 1's "varying # of L/S units". With fewer AGUs
// than ports, address generation throttles the memory stream before the
// ports can.
func AblationAGUs(sw *Sweep) (*stats.Table, error) {
	counts := []int{1, 2, 4, 64}
	cols := make([]column, len(counts))
	for i, n := range counts {
		n := n
		cols[i] = column{header: fmt.Sprintf("%d L/S", n), cell: func(b string) runner.Cell[float64] {
			return sw.simBenchMut(b, lbic.IdealPort(4), fmt.Sprintf("agu%d", n), func(cfg *lbic.Config) {
				cpu := defaultCPU()
				cpu.FUCount[lbic.ClassLoad] = n
				cpu.FUCount[lbic.ClassStore] = n
				cfg.CPU = &cpu
			})
		}}
	}
	return grid(sw, "Ablation: load/store unit count under true-4 (IPC)",
		lbic.BenchmarkNames(), cols, stats.FormatIPC, true)
}

// AblationCacheSize sweeps the L1 capacity and reports the miss rate of each
// kernel, verifying the working sets respond to capacity the way their
// SPEC95 namesakes' footprints suggest.
func AblationCacheSize(sw *Sweep) (*stats.Table, error) {
	sizes := []int{8 << 10, 16 << 10, 32 << 10, 64 << 10, 128 << 10}
	cols := make([]column, len(sizes))
	for i, size := range sizes {
		size := size
		cols[i] = column{header: fmt.Sprintf("%dKB", size>>10), cell: func(b string) runner.Cell[float64] {
			return sw.missRateCell(b, lbic.Geometry{Size: size, LineSize: 32, Assoc: 1})
		}}
	}
	return grid(sw, "Ablation: L1 capacity vs miss rate (direct-mapped, 32B lines)",
		lbic.BenchmarkNames(), cols, fmtMissRate, false)
}

// defaultCPU mirrors the simulator's Table 1 baseline for overriding.
func defaultCPU() lbic.CPUConfig {
	return lbic.DefaultCPUConfig()
}

// Ablations runs every ablation study under the sweep's policy.
func Ablations(sw *Sweep, progress func(string)) ([]*stats.Table, error) {
	studies := []struct {
		name string
		run  func(*Sweep) (*stats.Table, error)
	}{
		{"bank selection", AblationBankSelection},
		{"combining policy", AblationCombiningPolicy},
		{"LSQ depth", AblationLSQDepth},
		{"store queue depth", AblationStoreQueueDepth},
		{"store queues vs combining", AblationStoreQueueDecomposition},
		{"scheduling window", AblationScanDepth},
		{"cache size", AblationCacheSize},
		{"line size", AblationLineSize},
		{"L2 bandwidth", AblationL2Bandwidth},
		{"equal total ports", AblationEqualPorts},
		{"memory latency", AblationMemoryLatency},
		{"load/store units", AblationAGUs},
		{"associativity", AblationAssociativity},
		{"access patterns", PatternMatrix},
		{"infinite banks", Figure3Banks},
		{"coded conflict decomposition", AblationCodedConflicts},
	}
	var tables []*stats.Table
	for _, s := range studies {
		if progress != nil {
			progress(s.name)
		}
		t, err := s.run(sw)
		if err != nil {
			return nil, fmt.Errorf("ablation %s: %w", s.name, err)
		}
		tables = append(tables, t)
	}
	return tables, nil
}
