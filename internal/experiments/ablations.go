package experiments

import (
	"fmt"

	"lbic"
	"lbic/internal/stats"
)

// Ablation studies: design-choice sweeps the paper argues about in prose.
// Each returns a rendered table; cmd/lbictables -ablations prints them all.

// AblationInsts is the default per-run budget for ablations (secondary
// studies run at a reduced budget).
const AblationInsts = 300_000

// AblationBankSelection compares bank selection functions on the 4-bank
// cache (§3.2: "the choice of a selection function may not be as critical as
// we thought since much of the loss of bandwidth due to same bank collisions
// map to the same cache line"). Word interleaving is the §4 counterpoint:
// it removes same-line conflicts but costs tag replication.
func AblationBankSelection(insts uint64) (*stats.Table, error) {
	kinds := []lbic.BankSelectorKind{lbic.BitSelect, lbic.XorFold, lbic.WordInterleave}
	t := stats.NewTable(
		"Ablation: bank selection function (4 banks, IPC)",
		"Program", "bit-select", "xor-fold", "word-interleave")
	sums := make([]float64, len(kinds))
	for _, name := range lbic.BenchmarkNames() {
		cells := []string{title(name)}
		for i, kind := range kinds {
			port := lbic.BankedPort(4)
			port.Selector = kind
			res, err := simulate(name, port, insts)
			if err != nil {
				return nil, err
			}
			cells = append(cells, stats.FormatIPC(res.IPC))
			sums[i] += res.IPC
		}
		t.AddRow(cells...)
	}
	cells := []string{"Average"}
	for _, s := range sums {
		cells = append(cells, stats.FormatIPC(s/10))
	}
	t.AddRow(cells...)
	return t, nil
}

// AblationCombiningPolicy compares the paper's leading-request LBIC with the
// §5.2 proposed enhancement (open the line with the largest combinable
// group, with periodic age rotation against starvation).
func AblationCombiningPolicy(insts uint64) (*stats.Table, error) {
	t := stats.NewTable(
		"Ablation: LBIC line selection policy (4x2, IPC)",
		"Program", "leading", "greedy", "delta")
	var lSum, gSum float64
	for _, name := range lbic.BenchmarkNames() {
		leading, err := simulate(name, lbic.LBICPort(4, 2), insts)
		if err != nil {
			return nil, err
		}
		port := lbic.LBICPort(4, 2)
		port.Greedy = true
		greedy, err := simulate(name, port, insts)
		if err != nil {
			return nil, err
		}
		lSum += leading.IPC
		gSum += greedy.IPC
		t.AddRow(title(name), stats.FormatIPC(leading.IPC), stats.FormatIPC(greedy.IPC),
			fmt.Sprintf("%+.1f%%", 100*(greedy.IPC-leading.IPC)/leading.IPC))
	}
	t.AddRow("Average", stats.FormatIPC(lSum/10), stats.FormatIPC(gSum/10),
		fmt.Sprintf("%+.1f%%", 100*(gSum-lSum)/lSum))
	return t, nil
}

// AblationLSQDepth sweeps the load/store queue depth under the 4x2 LBIC
// (§5.2: "performance of the scheme depends on the depth of the LSQ. Deeper
// LSQs will help to minimize possible performance degradation due to
// insufficient data requests for combining").
func AblationLSQDepth(insts uint64) (*stats.Table, error) {
	depths := []int{16, 32, 64, 128, 512}
	headers := []string{"Program"}
	for _, d := range depths {
		headers = append(headers, fmt.Sprintf("LSQ %d", d))
	}
	t := stats.NewTable("Ablation: LSQ depth under the 4x2 LBIC (IPC)", headers...)
	sums := make([]float64, len(depths))
	for _, name := range lbic.BenchmarkNames() {
		prog, err := lbic.BuildBenchmark(name)
		if err != nil {
			return nil, err
		}
		cells := []string{title(name)}
		for i, d := range depths {
			cfg := lbic.DefaultConfig()
			cfg.Port = lbic.LBICPort(4, 2)
			cfg.MaxInsts = insts
			cpu := defaultCPU()
			cpu.LSQSize = d
			cfg.CPU = &cpu
			res, err := lbic.Simulate(prog, cfg)
			if err != nil {
				return nil, err
			}
			cells = append(cells, stats.FormatIPC(res.IPC))
			sums[i] += res.IPC
		}
		t.AddRow(cells...)
	}
	cells := []string{"Average"}
	for _, s := range sums {
		cells = append(cells, stats.FormatIPC(s/10))
	}
	t.AddRow(cells...)
	return t, nil
}

// AblationStoreQueueDepth sweeps the LBIC per-bank store queue depth on the
// store-heavy integer codes (§5.2's PA8000-style store queue).
func AblationStoreQueueDepth(insts uint64) (*stats.Table, error) {
	depths := []int{1, 2, 4, 8, 32}
	headers := []string{"Program"}
	for _, d := range depths {
		headers = append(headers, fmt.Sprintf("SQ %d", d))
	}
	t := stats.NewTable("Ablation: LBIC per-bank store queue depth (4x2, IPC, SPECint)", headers...)
	sums := make([]float64, len(depths))
	for _, name := range IntNames() {
		cells := []string{title(name)}
		for i, d := range depths {
			port := lbic.LBICPort(4, 2)
			port.StoreQueueDepth = d
			res, err := simulate(name, port, insts)
			if err != nil {
				return nil, err
			}
			cells = append(cells, stats.FormatIPC(res.IPC))
			sums[i] += res.IPC
		}
		t.AddRow(cells...)
	}
	cells := []string{"Average"}
	for _, s := range sums {
		cells = append(cells, stats.FormatIPC(s/float64(len(IntNames()))))
	}
	t.AddRow(cells...)
	return t, nil
}

// AblationStoreQueueDecomposition separates the LBIC's two mechanisms on the
// store-heavy integer suite: plain banking, banking plus PA8000-style store
// queues (no combining), and the full LBIC (store queues plus combining).
func AblationStoreQueueDecomposition(insts uint64) (*stats.Table, error) {
	cfgs := []lbic.PortConfig{
		lbic.BankedPort(4),
		lbic.BankedSQPort(4),
		lbic.LBICPort(4, 2),
		lbic.LBICPort(4, 4),
	}
	headers := []string{"Program"}
	for _, c := range cfgs {
		headers = append(headers, c.Name())
	}
	t := stats.NewTable("Ablation: store queues vs combining (4 banks, IPC)", headers...)
	sums := make([]float64, len(cfgs))
	for _, name := range lbic.BenchmarkNames() {
		cells := []string{title(name)}
		for i, c := range cfgs {
			res, err := simulate(name, c, insts)
			if err != nil {
				return nil, err
			}
			cells = append(cells, stats.FormatIPC(res.IPC))
			sums[i] += res.IPC
		}
		t.AddRow(cells...)
	}
	cells := []string{"Average"}
	for _, s := range sums {
		cells = append(cells, stats.FormatIPC(s/10))
	}
	t.AddRow(cells...)
	return t, nil
}

// AblationScanDepth sweeps the LSQ scheduling window (how many ready
// requests the arbiter sees per cycle) for the banked cache, quantifying the
// §5 claim that memory re-ordering lets multi-banking fill independent
// banks.
func AblationScanDepth(insts uint64) (*stats.Table, error) {
	widths := []int{1, 4, 16, 64, 256}
	headers := []string{"Program"}
	for _, w := range widths {
		headers = append(headers, fmt.Sprintf("scan %d", w))
	}
	t := stats.NewTable("Ablation: LSQ scheduling window under bank-4 (IPC)", headers...)
	sums := make([]float64, len(widths))
	for _, name := range lbic.BenchmarkNames() {
		prog, err := lbic.BuildBenchmark(name)
		if err != nil {
			return nil, err
		}
		cells := []string{title(name)}
		for i, w := range widths {
			cfg := lbic.DefaultConfig()
			cfg.Port = lbic.BankedPort(4)
			cfg.MaxInsts = insts
			cpu := defaultCPU()
			cpu.MemScanDepth = w
			cfg.CPU = &cpu
			res, err := lbic.Simulate(prog, cfg)
			if err != nil {
				return nil, err
			}
			cells = append(cells, stats.FormatIPC(res.IPC))
			sums[i] += res.IPC
		}
		t.AddRow(cells...)
	}
	cells := []string{"Average"}
	for _, s := range sums {
		cells = append(cells, stats.FormatIPC(s/10))
	}
	t.AddRow(cells...)
	return t, nil
}

// AblationLineSize sweeps the L1 line size under the 4x2 LBIC and the plain
// 4-bank cache. Larger lines put more consecutive references on one line:
// more combining opportunity for the LBIC, more same-line conflicts for the
// plain banked design — the tradeoff behind the paper's footnote-a choice of
// line interleaving.
func AblationLineSize(insts uint64) (*stats.Table, error) {
	lineSizes := []int{16, 32, 64, 128}
	headers := []string{"Program"}
	for _, ls := range lineSizes {
		headers = append(headers, fmt.Sprintf("bank %dB", ls))
	}
	for _, ls := range lineSizes {
		headers = append(headers, fmt.Sprintf("lbic %dB", ls))
	}
	t := stats.NewTable("Ablation: L1 line size, 4-bank vs 4x2 LBIC (IPC)", headers...)
	run := func(name string, port lbic.PortConfig, lineSize int) (float64, error) {
		prog, err := lbic.BuildBenchmark(name)
		if err != nil {
			return 0, err
		}
		cfg := lbic.DefaultConfig()
		cfg.Port = port
		cfg.MaxInsts = insts
		mem := lbic.DefaultMemParams()
		mem.L1.LineSize = lineSize
		if mem.L2.LineSize < lineSize {
			mem.L2.LineSize = lineSize
		}
		cfg.Mem = &mem
		res, err := lbic.Simulate(prog, cfg)
		if err != nil {
			return 0, err
		}
		return res.IPC, nil
	}
	sums := make([]float64, 2*len(lineSizes))
	for _, name := range lbic.BenchmarkNames() {
		cells := []string{title(name)}
		for i, ls := range lineSizes {
			v, err := run(name, lbic.BankedPort(4), ls)
			if err != nil {
				return nil, err
			}
			cells = append(cells, stats.FormatIPC(v))
			sums[i] += v
		}
		for i, ls := range lineSizes {
			v, err := run(name, lbic.LBICPort(4, 2), ls)
			if err != nil {
				return nil, err
			}
			cells = append(cells, stats.FormatIPC(v))
			sums[len(lineSizes)+i] += v
		}
		t.AddRow(cells...)
	}
	cells := []string{"Average"}
	for _, s := range sums {
		cells = append(cells, stats.FormatIPC(s/10))
	}
	t.AddRow(cells...)
	return t, nil
}

// AblationAssociativity reports each kernel's miss rate as the 32KB L1 gains
// associativity: conflict misses (go, perl, compress hot structures) fall,
// compulsory streaming misses (the FP codes) do not.
func AblationAssociativity(insts uint64) (*stats.Table, error) {
	assocs := []int{1, 2, 4, 8}
	headers := []string{"Program"}
	for _, a := range assocs {
		headers = append(headers, fmt.Sprintf("%d-way", a))
	}
	t := stats.NewTable("Ablation: 32KB L1 associativity vs miss rate", headers...)
	for _, name := range lbic.BenchmarkNames() {
		prog, err := lbic.BuildBenchmark(name)
		if err != nil {
			return nil, err
		}
		cells := []string{title(name)}
		for _, a := range assocs {
			s, err := lbic.CharacterizeWith(prog, insts,
				lbic.Geometry{Size: 32 << 10, LineSize: 32, Assoc: a})
			if err != nil {
				return nil, err
			}
			cells = append(cells, fmt.Sprintf("%.4f", s.MissRate))
		}
		t.AddRow(cells...)
	}
	return t, nil
}

// AblationEqualPorts compares designs with the SAME total of eight ports:
// one ideal 8-port array, multi-ported banks at 2x4/4x2, eight single-ported
// banks, and — at far lower cost than any of them — the 4x2 LBIC's eight
// effective ports (four single-ported banks plus line buffers). This is the
// cost/performance frontier the paper's conclusion argues about.
func AblationEqualPorts(insts uint64) (*stats.Table, error) {
	cfgs := []lbic.PortConfig{
		lbic.IdealPort(8),
		lbic.MultiPortedBanksPort(2, 4),
		lbic.MultiPortedBanksPort(4, 2),
		lbic.BankedPort(8),
		lbic.LBICPort(4, 2),
	}
	headers := []string{"Program"}
	for _, c := range cfgs {
		headers = append(headers, c.Name())
	}
	t := stats.NewTable("Ablation: eight total ports, five ways (IPC)", headers...)
	sums := make([]float64, len(cfgs))
	for _, name := range lbic.BenchmarkNames() {
		cells := []string{title(name)}
		for i, c := range cfgs {
			res, err := simulate(name, c, insts)
			if err != nil {
				return nil, err
			}
			cells = append(cells, stats.FormatIPC(res.IPC))
			sums[i] += res.IPC
		}
		t.AddRow(cells...)
	}
	cells := []string{"Average"}
	for _, s := range sums {
		cells = append(cells, stats.FormatIPC(s/10))
	}
	t.AddRow(cells...)
	return t, nil
}

// AblationMemoryLatency sweeps the main-memory latency under true-4 and the
// 4x2 LBIC. The paper stresses bandwidth rather than latency (§2.1, a flat
// 10-cycle memory); this sweep verifies the design ranking it reports is
// stable as memory gets slower.
func AblationMemoryLatency(insts uint64) (*stats.Table, error) {
	lats := []int{10, 25, 50, 100}
	headers := []string{"Program"}
	for _, l := range lats {
		headers = append(headers, fmt.Sprintf("true-4 @%d", l))
	}
	for _, l := range lats {
		headers = append(headers, fmt.Sprintf("lbic @%d", l))
	}
	t := stats.NewTable("Ablation: main-memory latency (IPC)", headers...)
	run := func(name string, port lbic.PortConfig, lat int) (float64, error) {
		prog, err := lbic.BuildBenchmark(name)
		if err != nil {
			return 0, err
		}
		cfg := lbic.DefaultConfig()
		cfg.Port = port
		cfg.MaxInsts = insts
		mem := lbic.DefaultMemParams()
		mem.MemLat = lat
		cfg.Mem = &mem
		res, err := lbic.Simulate(prog, cfg)
		if err != nil {
			return 0, err
		}
		return res.IPC, nil
	}
	sums := make([]float64, 2*len(lats))
	for _, name := range lbic.BenchmarkNames() {
		cells := []string{title(name)}
		for i, l := range lats {
			v, err := run(name, lbic.IdealPort(4), l)
			if err != nil {
				return nil, err
			}
			cells = append(cells, stats.FormatIPC(v))
			sums[i] += v
		}
		for i, l := range lats {
			v, err := run(name, lbic.LBICPort(4, 2), l)
			if err != nil {
				return nil, err
			}
			cells = append(cells, stats.FormatIPC(v))
			sums[len(lats)+i] += v
		}
		t.AddRow(cells...)
	}
	cells := []string{"Average"}
	for _, s := range sums {
		cells = append(cells, stats.FormatIPC(s/10))
	}
	t.AddRow(cells...)
	return t, nil
}

// AblationL2Bandwidth sweeps how many miss requests the L1-to-L2 path
// accepts per cycle under 16 ideal ports. The paper's §2.1 path accepts one
// per cycle; the streaming FP kernels turn out to be bound by exactly that,
// so widening it exposes how much of their port headroom the memory system
// was absorbing.
func AblationL2Bandwidth(insts uint64) (*stats.Table, error) {
	widths := []int{1, 2, 4}
	headers := []string{"Program"}
	for _, w := range widths {
		headers = append(headers, fmt.Sprintf("%d/cycle", w))
	}
	t := stats.NewTable("Ablation: L1-to-L2 request bandwidth under true-16 (IPC)", headers...)
	sums := make([]float64, len(widths))
	for _, name := range lbic.BenchmarkNames() {
		prog, err := lbic.BuildBenchmark(name)
		if err != nil {
			return nil, err
		}
		cells := []string{title(name)}
		for i, w := range widths {
			cfg := lbic.DefaultConfig()
			cfg.Port = lbic.IdealPort(16)
			cfg.MaxInsts = insts
			mem := lbic.DefaultMemParams()
			mem.L2PerCycle = w
			cfg.Mem = &mem
			res, err := lbic.Simulate(prog, cfg)
			if err != nil {
				return nil, err
			}
			cells = append(cells, stats.FormatIPC(res.IPC))
			sums[i] += res.IPC
		}
		t.AddRow(cells...)
	}
	cells := []string{"Average"}
	for _, s := range sums {
		cells = append(cells, stats.FormatIPC(s/10))
	}
	t.AddRow(cells...)
	return t, nil
}

// AblationAGUs sweeps the load/store (address generation) unit count under
// four ideal ports — Table 1's "varying # of L/S units". With fewer AGUs
// than ports, address generation throttles the memory stream before the
// ports can.
func AblationAGUs(insts uint64) (*stats.Table, error) {
	counts := []int{1, 2, 4, 64}
	headers := []string{"Program"}
	for _, n := range counts {
		headers = append(headers, fmt.Sprintf("%d L/S", n))
	}
	t := stats.NewTable("Ablation: load/store unit count under true-4 (IPC)", headers...)
	sums := make([]float64, len(counts))
	for _, name := range lbic.BenchmarkNames() {
		prog, err := lbic.BuildBenchmark(name)
		if err != nil {
			return nil, err
		}
		cells := []string{title(name)}
		for i, n := range counts {
			cfg := lbic.DefaultConfig()
			cfg.Port = lbic.IdealPort(4)
			cfg.MaxInsts = insts
			cpu := defaultCPU()
			cpu.FUCount[lbic.ClassLoad] = n
			cpu.FUCount[lbic.ClassStore] = n
			cfg.CPU = &cpu
			res, err := lbic.Simulate(prog, cfg)
			if err != nil {
				return nil, err
			}
			cells = append(cells, stats.FormatIPC(res.IPC))
			sums[i] += res.IPC
		}
		t.AddRow(cells...)
	}
	cells := []string{"Average"}
	for _, s := range sums {
		cells = append(cells, stats.FormatIPC(s/10))
	}
	t.AddRow(cells...)
	return t, nil
}

// AblationCacheSize sweeps the L1 capacity and reports the miss rate of each
// kernel, verifying the working sets respond to capacity the way their
// SPEC95 namesakes' footprints suggest.
func AblationCacheSize(insts uint64) (*stats.Table, error) {
	sizes := []int{8 << 10, 16 << 10, 32 << 10, 64 << 10, 128 << 10}
	headers := []string{"Program"}
	for _, s := range sizes {
		headers = append(headers, fmt.Sprintf("%dKB", s>>10))
	}
	t := stats.NewTable("Ablation: L1 capacity vs miss rate (direct-mapped, 32B lines)", headers...)
	for _, name := range lbic.BenchmarkNames() {
		prog, err := lbic.BuildBenchmark(name)
		if err != nil {
			return nil, err
		}
		cells := []string{title(name)}
		for _, size := range sizes {
			s, err := lbic.CharacterizeWith(prog, insts,
				lbic.Geometry{Size: size, LineSize: 32, Assoc: 1})
			if err != nil {
				return nil, err
			}
			cells = append(cells, fmt.Sprintf("%.4f", s.MissRate))
		}
		t.AddRow(cells...)
	}
	return t, nil
}

// defaultCPU mirrors the simulator's Table 1 baseline for overriding.
func defaultCPU() lbic.CPUConfig {
	return lbic.DefaultCPUConfig()
}

// Ablations runs every ablation study.
func Ablations(insts uint64, progress func(string)) ([]*stats.Table, error) {
	studies := []struct {
		name string
		run  func(uint64) (*stats.Table, error)
	}{
		{"bank selection", AblationBankSelection},
		{"combining policy", AblationCombiningPolicy},
		{"LSQ depth", AblationLSQDepth},
		{"store queue depth", AblationStoreQueueDepth},
		{"store queues vs combining", AblationStoreQueueDecomposition},
		{"scheduling window", AblationScanDepth},
		{"cache size", AblationCacheSize},
		{"line size", AblationLineSize},
		{"L2 bandwidth", AblationL2Bandwidth},
		{"equal total ports", AblationEqualPorts},
		{"memory latency", AblationMemoryLatency},
		{"load/store units", AblationAGUs},
		{"associativity", AblationAssociativity},
		{"access patterns", PatternMatrix},
		{"infinite banks", Figure3Banks},
	}
	var tables []*stats.Table
	for _, s := range studies {
		if progress != nil {
			progress(s.name)
		}
		t, err := s.run(insts)
		if err != nil {
			return nil, fmt.Errorf("ablation %s: %w", s.name, err)
		}
		tables = append(tables, t)
	}
	return tables, nil
}
