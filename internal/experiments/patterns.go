package experiments

import (
	"lbic"
	"lbic/internal/stats"
)

// PatternMatrix simulates every access-pattern microbenchmark against a
// representative set of port organizations — the cleanest view of which
// stream property each design responds to: combining wins same-line bursts,
// banking wins balanced strides and random streams, replication loses store
// bursts, and nothing helps a pointer chase.
func PatternMatrix(insts uint64) (*stats.Table, error) {
	ports := []lbic.PortConfig{
		lbic.IdealPort(1),
		lbic.IdealPort(4),
		lbic.ReplicatedPort(4),
		lbic.BankedPort(4),
		bankedXor(4),
		lbic.LBICPort(4, 2),
		lbic.LBICPort(4, 4),
	}
	headers := []string{"Pattern"}
	for _, p := range ports {
		headers = append(headers, p.Name())
	}
	t := stats.NewTable("Access-pattern matrix (IPC)", headers...)
	for _, pat := range lbic.Patterns() {
		prog := pat.Build()
		cells := []string{pat.Name}
		for _, port := range ports {
			cfg := lbic.DefaultConfig()
			cfg.Port = port
			cfg.MaxInsts = insts
			res, err := lbic.Simulate(prog, cfg)
			if err != nil {
				return nil, err
			}
			cells = append(cells, stats.FormatIPC(res.IPC))
		}
		t.AddRow(cells...)
	}
	return t, nil
}

func bankedXor(banks int) lbic.PortConfig {
	p := lbic.BankedPort(banks)
	p.Selector = lbic.XorFold
	return p
}
