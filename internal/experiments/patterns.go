package experiments

import (
	"lbic"
	"lbic/internal/runner"
	"lbic/internal/stats"
)

// PatternMatrix simulates every access-pattern microbenchmark against a
// representative set of port organizations — the cleanest view of which
// stream property each design responds to: combining wins same-line bursts,
// banking wins balanced strides and random streams, replication loses store
// bursts, and nothing helps a pointer chase.
func PatternMatrix(sw *Sweep) (*stats.Table, error) {
	ports := []lbic.PortConfig{
		lbic.IdealPort(1),
		lbic.IdealPort(4),
		lbic.ReplicatedPort(4),
		lbic.BankedPort(4),
		bankedXor(4),
		lbic.LBICPort(4, 2),
		lbic.LBICPort(4, 4),
	}
	var names []string
	for _, pat := range lbic.Patterns() {
		names = append(names, pat.Name)
	}
	cols := make([]column, len(ports))
	for i, port := range ports {
		port := port
		cols[i] = column{header: port.Name(), cell: func(pat string) runner.Cell[float64] {
			return sw.simPattern(pat, port)
		}}
	}
	return grid(sw, "Access-pattern matrix (IPC)", names, cols, stats.FormatIPC, false)
}

func bankedXor(banks int) lbic.PortConfig {
	p := lbic.BankedPort(banks)
	p.Selector = lbic.XorFold
	return p
}
