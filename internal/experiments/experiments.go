// Package experiments regenerates every table and figure of the paper's
// evaluation: Table 2 (benchmark memory characteristics), Table 3 (IPC of
// ideal/replicated/banked port organizations at 1-16 ports), Figure 3
// (consecutive-reference bank mapping for an infinite 4-bank cache), and
// Table 4 (IPC of six MxN LBIC configurations). The cmd/lbictables binary,
// the root-level benchmarks, and the integration tests all drive this
// package, so the numbers reported everywhere come from one implementation.
package experiments

import (
	"fmt"

	"lbic"
	"lbic/internal/stats"
)

// DefaultInsts is the per-run instruction budget for table generation. The
// paper ran 0.5-1.5 billion instructions per benchmark; our kernels are
// steady-state loops whose stream statistics converge within a few hundred
// thousand references, so one million instructions reproduces the same
// contrasts at laptop scale (EXPERIMENTS.md records the convergence check).
const DefaultInsts = 1_000_000

// Names of the SPECint and SPECfp benchmark groups, in the paper's order.
func intNames() []string { return []string{"compress", "gcc", "go", "li", "perl"} }
func fpNames() []string  { return []string{"hydro2d", "mgrid", "su2cor", "swim", "wave5"} }

func title(name string) string {
	// Benchmark display names follow the paper's capitalization.
	switch name {
	case "compress":
		return "Compress"
	case "gcc":
		return "Gcc"
	case "go":
		return "Go"
	case "li":
		return "Li"
	case "perl":
		return "Perl"
	case "hydro2d":
		return "Hydro2d"
	case "mgrid":
		return "Mgrid"
	case "su2cor":
		return "Su2cor"
	case "swim":
		return "Swim"
	case "wave5":
		return "Wave5"
	}
	return name
}

// simulate runs one benchmark under one port configuration.
func simulate(name string, port lbic.PortConfig, insts uint64) (lbic.Result, error) {
	prog, err := lbic.BuildBenchmark(name)
	if err != nil {
		return lbic.Result{}, err
	}
	cfg := lbic.DefaultConfig()
	cfg.Port = port
	cfg.MaxInsts = insts
	return lbic.Simulate(prog, cfg)
}

// --- Table 2 ---

// Table2Row is one benchmark's measured characteristics next to the paper's.
type Table2Row struct {
	Name  string
	Suite string
	Stats lbic.BenchmarkStats

	PaperMemPct      float64
	PaperStoreToLoad float64
	PaperMissRate    float64
}

// Table2 measures every kernel's Table 2 characteristics.
func Table2(insts uint64) ([]Table2Row, error) {
	var rows []Table2Row
	for _, in := range lbic.Benchmarks() {
		s, err := lbic.Characterize(in.Build(), insts)
		if err != nil {
			return nil, fmt.Errorf("characterizing %s: %w", in.Name, err)
		}
		rows = append(rows, Table2Row{
			Name:             in.Name,
			Suite:            in.Suite,
			Stats:            s,
			PaperMemPct:      in.PaperMemPct,
			PaperStoreToLoad: in.PaperStoreToLoad,
			PaperMissRate:    in.PaperMissRate,
		})
	}
	return rows, nil
}

// Table2Table renders Table 2 with measured-vs-paper columns.
func Table2Table(rows []Table2Row) *stats.Table {
	t := stats.NewTable(
		"Table 2: benchmark memory characteristics (measured vs paper)",
		"Program", "Mem Instr % (paper)", "Store-to-Load (paper)", "L1 Miss Rate 32KB (paper)")
	for _, r := range rows {
		t.AddRow(
			title(r.Name),
			fmt.Sprintf("%.1f (%.1f)", r.Stats.MemPct, r.PaperMemPct),
			fmt.Sprintf("%.2f (%.2f)", r.Stats.StoreToLoad, r.PaperStoreToLoad),
			fmt.Sprintf("%.4f (%.4f)", r.Stats.MissRate, r.PaperMissRate),
		)
	}
	return t
}

// --- Table 3 ---

// PortCounts are the port/bank counts swept in Table 3.
var PortCounts = []int{2, 4, 8, 16}

// Table3Data holds IPC per benchmark: the shared single-port baseline plus
// True/Repl/Bank at each port count.
type Table3Data struct {
	Insts uint64
	// Base is single-ported IPC per benchmark (identical across designs).
	Base map[string]float64
	// IPC[kind][ports][bench]; kind is "True", "Repl" or "Bank".
	IPC map[string]map[int]map[string]float64
}

// Table3 runs the full Table 3 sweep: ideal, replicated and banked
// organizations at 1, 2, 4, 8 and 16 ports for every benchmark.
func Table3(insts uint64, progress func(string)) (*Table3Data, error) {
	d := &Table3Data{
		Insts: insts,
		Base:  map[string]float64{},
		IPC: map[string]map[int]map[string]float64{
			"True": {}, "Repl": {}, "Bank": {},
		},
	}
	for _, kind := range []string{"True", "Repl", "Bank"} {
		for _, p := range PortCounts {
			d.IPC[kind][p] = map[string]float64{}
		}
	}
	for _, name := range lbic.BenchmarkNames() {
		if progress != nil {
			progress(name)
		}
		res, err := simulate(name, lbic.IdealPort(1), insts)
		if err != nil {
			return nil, err
		}
		d.Base[name] = res.IPC
		for _, p := range PortCounts {
			for kind, port := range map[string]lbic.PortConfig{
				"True": lbic.IdealPort(p),
				"Repl": lbic.ReplicatedPort(p),
				"Bank": lbic.BankedPort(p),
			} {
				res, err := simulate(name, port, insts)
				if err != nil {
					return nil, fmt.Errorf("%s on %s: %w", name, port.Name(), err)
				}
				d.IPC[kind][p][name] = res.IPC
			}
		}
	}
	return d, nil
}

// Average returns the mean IPC over a benchmark group for one design/ports.
func (d *Table3Data) Average(kind string, ports int, names []string) float64 {
	var vs []float64
	for _, n := range names {
		vs = append(vs, d.IPC[kind][ports][n])
	}
	return stats.Mean(vs)
}

// BaseAverage returns the mean single-port IPC over a benchmark group.
func (d *Table3Data) BaseAverage(names []string) float64 {
	var vs []float64
	for _, n := range names {
		vs = append(vs, d.Base[n])
	}
	return stats.Mean(vs)
}

// Table3Table renders the Table 3 layout: one row per benchmark plus group
// averages, columns 1-port then True/Repl/Bank at 2, 4, 8, 16.
func Table3Table(d *Table3Data) *stats.Table {
	headers := []string{"Program", "1"}
	for _, p := range PortCounts {
		for _, kind := range []string{"True", "Repl", "Bank"} {
			headers = append(headers, fmt.Sprintf("%s-%d", kind, p))
		}
	}
	t := stats.NewTable("Table 3: IPC for ideal (True), replicated (Repl) and multi-bank (Bank)", headers...)
	addRow := func(label string, base float64, get func(kind string, ports int) float64) {
		cells := []string{label, stats.FormatIPC(base)}
		for _, p := range PortCounts {
			for _, kind := range []string{"True", "Repl", "Bank"} {
				cells = append(cells, stats.FormatIPC(get(kind, p)))
			}
		}
		t.AddRow(cells...)
	}
	for _, name := range intNames() {
		name := name
		addRow(title(name), d.Base[name], func(k string, p int) float64 { return d.IPC[k][p][name] })
	}
	addRow("SPECint Ave.", d.BaseAverage(intNames()), func(k string, p int) float64 {
		return d.Average(k, p, intNames())
	})
	for _, name := range fpNames() {
		name := name
		addRow(title(name), d.Base[name], func(k string, p int) float64 { return d.IPC[k][p][name] })
	}
	addRow("SPECfp Ave.", d.BaseAverage(fpNames()), func(k string, p int) float64 {
		return d.Average(k, p, fpNames())
	})
	return t
}

// --- Figure 3 ---

// Figure3Row is one benchmark's consecutive-reference distribution.
type Figure3Row struct {
	Name string
	Dist lbic.Distribution
}

// Figure3 computes the Figure 3 distributions (infinite 4-bank cache, 32B
// lines) for every benchmark.
func Figure3(insts uint64) ([]Figure3Row, error) {
	var rows []Figure3Row
	for _, name := range lbic.BenchmarkNames() {
		prog, err := lbic.BuildBenchmark(name)
		if err != nil {
			return nil, err
		}
		dist, err := lbic.AnalyzeRefStream(prog, 4, 32, insts)
		if err != nil {
			return nil, fmt.Errorf("analyzing %s: %w", name, err)
		}
		rows = append(rows, Figure3Row{Name: name, Dist: dist})
	}
	return rows, nil
}

// figure3Avg averages the distribution fractions over a group.
func figure3Avg(rows []Figure3Row, names []string) [5]float64 {
	var sum [5]float64
	for _, n := range names {
		for _, r := range rows {
			if r.Name == n {
				sum[0] += r.Dist.SameLineFrac()
				sum[1] += r.Dist.DiffLineFrac()
				sum[2] += r.Dist.OtherBankFrac(1)
				sum[3] += r.Dist.OtherBankFrac(2)
				sum[4] += r.Dist.OtherBankFrac(3)
			}
		}
	}
	for i := range sum {
		sum[i] /= float64(len(names))
	}
	return sum
}

// Figure3Table renders the Figure 3 histogram as a table (the paper shows a
// stacked bar chart; the segments here are the bar heights).
func Figure3Table(rows []Figure3Row) *stats.Table {
	t := stats.NewTable(
		"Figure 3: consecutive reference mapping, infinite 4-bank cache, 32B lines",
		"Program", "B-same line", "B-diff line", "(B+1)mod4", "(B+2)mod4", "(B+3)mod4")
	add := func(label string, f [5]float64) {
		t.AddRow(label, stats.FormatPct(f[0]), stats.FormatPct(f[1]),
			stats.FormatPct(f[2]), stats.FormatPct(f[3]), stats.FormatPct(f[4]))
	}
	for _, r := range rows {
		if contains(intNames(), r.Name) {
			add(title(r.Name), [5]float64{
				r.Dist.SameLineFrac(), r.Dist.DiffLineFrac(),
				r.Dist.OtherBankFrac(1), r.Dist.OtherBankFrac(2), r.Dist.OtherBankFrac(3)})
		}
	}
	add("SPECint Ave.", figure3Avg(rows, intNames()))
	for _, r := range rows {
		if contains(fpNames(), r.Name) {
			add(title(r.Name), [5]float64{
				r.Dist.SameLineFrac(), r.Dist.DiffLineFrac(),
				r.Dist.OtherBankFrac(1), r.Dist.OtherBankFrac(2), r.Dist.OtherBankFrac(3)})
		}
	}
	add("SPECfp Ave.", figure3Avg(rows, fpNames()))
	return t
}

func contains(ss []string, s string) bool {
	for _, v := range ss {
		if v == s {
			return true
		}
	}
	return false
}

// Figure3Banks quantifies §4's "even with an infinite number of banks, a
// substantial fraction of the bank conflicts we see in these programs could
// remain since they are caused by items mapping to the same cache line":
// as the bank count grows, the same-bank-different-line fraction of
// consecutive references falls toward zero, but the same-line fraction — the
// part only combining can recover — is invariant.
func Figure3Banks(insts uint64) (*stats.Table, error) {
	bankCounts := []int{2, 4, 16, 64}
	headers := []string{"Program"}
	for _, b := range bankCounts {
		headers = append(headers, fmt.Sprintf("same-bank @%d", b))
	}
	headers = append(headers, "same-line (any)")
	t := stats.NewTable(
		"Figure 3 extension: same-bank fraction vs bank count (same-line floor)",
		headers...)
	for _, name := range lbic.BenchmarkNames() {
		prog, err := lbic.BuildBenchmark(name)
		if err != nil {
			return nil, err
		}
		cells := []string{title(name)}
		var sameLine float64
		for _, b := range bankCounts {
			d, err := lbic.AnalyzeRefStream(prog, b, 32, insts)
			if err != nil {
				return nil, err
			}
			cells = append(cells, stats.FormatPct(d.SameBankFrac()))
			sameLine = d.SameLineFrac() // line mapping is bank-count invariant
		}
		cells = append(cells, stats.FormatPct(sameLine))
		t.AddRow(cells...)
	}
	return t, nil
}

// --- Table 4 ---

// LBICConfigs are the six MxN configurations of Table 4.
var LBICConfigs = [][2]int{{2, 2}, {2, 4}, {4, 2}, {4, 4}, {8, 2}, {8, 4}}

// Table4Data holds LBIC IPC per benchmark and configuration.
type Table4Data struct {
	Insts uint64
	// IPC[config][bench], config formatted "MxN".
	IPC map[string]map[string]float64
}

// ConfigKey formats an MxN configuration key.
func ConfigKey(m, n int) string { return fmt.Sprintf("%dx%d", m, n) }

// Table4 runs the Table 4 sweep: six MxN LBIC configurations per benchmark.
func Table4(insts uint64, progress func(string)) (*Table4Data, error) {
	d := &Table4Data{Insts: insts, IPC: map[string]map[string]float64{}}
	for _, c := range LBICConfigs {
		d.IPC[ConfigKey(c[0], c[1])] = map[string]float64{}
	}
	for _, name := range lbic.BenchmarkNames() {
		if progress != nil {
			progress(name)
		}
		for _, c := range LBICConfigs {
			res, err := simulate(name, lbic.LBICPort(c[0], c[1]), insts)
			if err != nil {
				return nil, fmt.Errorf("%s on lbic-%dx%d: %w", name, c[0], c[1], err)
			}
			d.IPC[ConfigKey(c[0], c[1])][name] = res.IPC
		}
	}
	return d, nil
}

// Average returns the mean IPC over a benchmark group for one configuration.
func (d *Table4Data) Average(key string, names []string) float64 {
	var vs []float64
	for _, n := range names {
		vs = append(vs, d.IPC[key][n])
	}
	return stats.Mean(vs)
}

// Table4Table renders Table 4: one row per benchmark plus group averages.
func Table4Table(d *Table4Data) *stats.Table {
	headers := []string{"Program"}
	for _, c := range LBICConfigs {
		headers = append(headers, ConfigKey(c[0], c[1]))
	}
	t := stats.NewTable("Table 4: IPC for six MxN LBIC configurations", headers...)
	addRow := func(label string, get func(key string) float64) {
		cells := []string{label}
		for _, c := range LBICConfigs {
			cells = append(cells, stats.FormatIPC(get(ConfigKey(c[0], c[1]))))
		}
		t.AddRow(cells...)
	}
	for _, name := range intNames() {
		name := name
		addRow(title(name), func(k string) float64 { return d.IPC[k][name] })
	}
	addRow("SPECint Ave.", func(k string) float64 { return d.Average(k, intNames()) })
	for _, name := range fpNames() {
		name := name
		addRow(title(name), func(k string) float64 { return d.IPC[k][name] })
	}
	addRow("SPECfp Ave.", func(k string) float64 { return d.Average(k, fpNames()) })
	return t
}

// IntNames returns the SPECint kernel names.
func IntNames() []string { return intNames() }

// FPNames returns the SPECfp kernel names.
func FPNames() []string { return fpNames() }
