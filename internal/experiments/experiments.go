// Package experiments regenerates every table and figure of the paper's
// evaluation: Table 2 (benchmark memory characteristics), Table 3 (IPC of
// ideal/replicated/banked port organizations at 1-16 ports), Figure 3
// (consecutive-reference bank mapping for an infinite 4-bank cache), and
// Table 4 (IPC of six MxN LBIC configurations). The cmd/lbictables binary,
// the root-level benchmarks, and the integration tests all drive this
// package, so the numbers reported everywhere come from one implementation.
//
// Every generator takes a *Sweep, which carries the execution policy:
// parallelism, per-cell timeouts and retries, checkpoint/resume, and
// graceful shutdown. Failed cells render as ERR and are listed in
// Sweep.Failures; with Sweep.KeepGoing a partial sweep still produces every
// table.
package experiments

import (
	"fmt"

	"lbic"
	"lbic/internal/runner"
	"lbic/internal/stats"
)

// DefaultInsts is the per-run instruction budget for table generation. The
// paper ran 0.5-1.5 billion instructions per benchmark; our kernels are
// steady-state loops whose stream statistics converge within a few hundred
// thousand references, so one million instructions reproduces the same
// contrasts at laptop scale (EXPERIMENTS.md records the convergence check).
const DefaultInsts = 1_000_000

// Names of the SPECint and SPECfp benchmark groups, in the paper's order.
func intNames() []string { return []string{"compress", "gcc", "go", "li", "perl"} }
func fpNames() []string  { return []string{"hydro2d", "mgrid", "su2cor", "swim", "wave5"} }

func title(name string) string {
	// Benchmark display names follow the paper's capitalization.
	switch name {
	case "compress":
		return "Compress"
	case "gcc":
		return "Gcc"
	case "go":
		return "Go"
	case "li":
		return "Li"
	case "perl":
		return "Perl"
	case "hydro2d":
		return "Hydro2d"
	case "mgrid":
		return "Mgrid"
	case "su2cor":
		return "Su2cor"
	case "swim":
		return "Swim"
	case "wave5":
		return "Wave5"
	}
	return name
}

// --- Table 2 ---

// Table2Row is one benchmark's measured characteristics next to the paper's.
type Table2Row struct {
	Name  string
	Suite string
	Stats lbic.BenchmarkStats
	// Err is non-nil when the characterization cell failed; Stats is then
	// zero and the row renders as ERR.
	Err error

	PaperMemPct      float64
	PaperStoreToLoad float64
	PaperMissRate    float64
}

// table2Geom is the paper's 32KB direct-mapped, 32B-line L1.
func table2Geom() lbic.Geometry { return lbic.Geometry{Size: 32 << 10, LineSize: 32, Assoc: 1} }

// Table2 measures every kernel's Table 2 characteristics.
func Table2(sw *Sweep) ([]Table2Row, error) {
	infos := lbic.Benchmarks()
	cells := make([]runner.Cell[lbic.BenchmarkStats], len(infos))
	for i, in := range infos {
		cells[i] = sw.charCell(in.Name, table2Geom())
	}
	got, err := sweepRun(sw, cells)
	if err != nil {
		return nil, err
	}
	rows := make([]Table2Row, len(infos))
	for i, in := range infos {
		rows[i] = Table2Row{
			Name:             in.Name,
			Suite:            in.Suite,
			PaperMemPct:      in.PaperMemPct,
			PaperStoreToLoad: in.PaperStoreToLoad,
			PaperMissRate:    in.PaperMissRate,
		}
		if s, ok := got[cells[i].Key]; ok {
			rows[i].Stats = s
		} else {
			rows[i].Err = fmt.Errorf("characterizing %s failed", in.Name)
		}
	}
	return rows, nil
}

// Table2Table renders Table 2 with measured-vs-paper columns.
func Table2Table(rows []Table2Row) *stats.Table {
	t := stats.NewTable(
		"Table 2: benchmark memory characteristics (measured vs paper)",
		"Program", "Mem Instr % (paper)", "Store-to-Load (paper)", "L1 Miss Rate 32KB (paper)")
	for _, r := range rows {
		if r.Err != nil {
			t.AddRow(title(r.Name), errCell, errCell, errCell)
			continue
		}
		t.AddRow(
			title(r.Name),
			fmt.Sprintf("%.1f (%.1f)", r.Stats.MemPct, r.PaperMemPct),
			fmt.Sprintf("%.2f (%.2f)", r.Stats.StoreToLoad, r.PaperStoreToLoad),
			fmt.Sprintf("%.4f (%.4f)", r.Stats.MissRate, r.PaperMissRate),
		)
	}
	return t
}

// --- Table 3 ---

// PortCounts are the port/bank counts swept in Table 3.
var PortCounts = []int{2, 4, 8, 16}

// table3Kinds maps the Table 3 design names to port constructors.
func table3Port(kind string, p int) lbic.PortConfig {
	switch kind {
	case "Repl":
		return lbic.ReplicatedPort(p)
	case "Bank":
		return lbic.BankedPort(p)
	default:
		return lbic.IdealPort(p)
	}
}

// Table3Data holds IPC per benchmark: the shared single-port baseline plus
// True/Repl/Bank at each port count. Failed cells are absent from the maps;
// use Get/GetBase for presence-aware access.
type Table3Data struct {
	Insts uint64
	// Base is single-ported IPC per benchmark (identical across designs).
	Base map[string]float64
	// IPC[kind][ports][bench]; kind is "True", "Repl" or "Bank".
	IPC map[string]map[int]map[string]float64
}

// Get returns the IPC of one cell and whether it is present.
func (d *Table3Data) Get(kind string, ports int, name string) (float64, bool) {
	v, ok := d.IPC[kind][ports][name]
	return v, ok
}

// GetBase returns the single-port baseline IPC and whether it is present.
func (d *Table3Data) GetBase(name string) (float64, bool) {
	v, ok := d.Base[name]
	return v, ok
}

// Table3 runs the full Table 3 sweep: ideal, replicated and banked
// organizations at 1, 2, 4, 8 and 16 ports for every benchmark.
func Table3(sw *Sweep) (*Table3Data, error) {
	d := &Table3Data{
		Insts: sw.Insts,
		Base:  map[string]float64{},
		IPC: map[string]map[int]map[string]float64{
			"True": {}, "Repl": {}, "Bank": {},
		},
	}
	for _, kind := range []string{"True", "Repl", "Bank"} {
		for _, p := range PortCounts {
			d.IPC[kind][p] = map[string]float64{}
		}
	}
	var cells []runner.Cell[float64]
	type slot struct {
		kind  string
		ports int
		name  string
	}
	slots := map[string]slot{}
	add := func(s slot, c runner.Cell[float64]) {
		slots[c.Key] = s
		cells = append(cells, c)
	}
	for _, name := range lbic.BenchmarkNames() {
		add(slot{"", 1, name}, sw.simBench(name, lbic.IdealPort(1)))
		for _, p := range PortCounts {
			for _, kind := range []string{"True", "Repl", "Bank"} {
				add(slot{kind, p, name}, sw.simBench(name, table3Port(kind, p)))
			}
		}
	}
	got, err := sweepRun(sw, cells)
	if err != nil {
		return nil, err
	}
	for key, v := range got {
		s := slots[key]
		if s.kind == "" {
			d.Base[s.name] = v
		} else {
			d.IPC[s.kind][s.ports][s.name] = v
		}
	}
	return d, nil
}

// Average returns the mean IPC over a benchmark group for one design/ports,
// over the cells that succeeded.
func (d *Table3Data) Average(kind string, ports int, names []string) float64 {
	var vs []float64
	for _, n := range names {
		if v, ok := d.Get(kind, ports, n); ok {
			vs = append(vs, v)
		}
	}
	return stats.Mean(vs)
}

// BaseAverage returns the mean single-port IPC over a benchmark group, over
// the cells that succeeded.
func (d *Table3Data) BaseAverage(names []string) float64 {
	var vs []float64
	for _, n := range names {
		if v, ok := d.GetBase(n); ok {
			vs = append(vs, v)
		}
	}
	return stats.Mean(vs)
}

// Table3Table renders the Table 3 layout: one row per benchmark plus group
// averages, columns 1-port then True/Repl/Bank at 2, 4, 16. Cells whose
// simulation failed render as ERR; group averages cover the remaining cells.
func Table3Table(d *Table3Data) *stats.Table {
	headers := []string{"Program", "1"}
	for _, p := range PortCounts {
		for _, kind := range []string{"True", "Repl", "Bank"} {
			headers = append(headers, fmt.Sprintf("%s-%d", kind, p))
		}
	}
	t := stats.NewTable("Table 3: IPC for ideal (True), replicated (Repl) and multi-bank (Bank)", headers...)
	addRow := func(label string, base string, get func(kind string, ports int) string) {
		cells := []string{label, base}
		for _, p := range PortCounts {
			for _, kind := range []string{"True", "Repl", "Bank"} {
				cells = append(cells, get(kind, p))
			}
		}
		t.AddRow(cells...)
	}
	benchRow := func(name string) {
		base, ok := d.GetBase(name)
		addRow(title(name), fmtCell(base, ok, stats.FormatIPC), func(k string, p int) string {
			v, ok := d.Get(k, p, name)
			return fmtCell(v, ok, stats.FormatIPC)
		})
	}
	avgRow := func(label string, names []string) {
		hasBase := false
		for _, n := range names {
			if _, ok := d.GetBase(n); ok {
				hasBase = true
			}
		}
		addRow(label, fmtCell(d.BaseAverage(names), hasBase, stats.FormatIPC), func(k string, p int) string {
			has := false
			for _, n := range names {
				if _, ok := d.Get(k, p, n); ok {
					has = true
				}
			}
			return fmtCell(d.Average(k, p, names), has, stats.FormatIPC)
		})
	}
	for _, name := range intNames() {
		benchRow(name)
	}
	avgRow("SPECint Ave.", intNames())
	for _, name := range fpNames() {
		benchRow(name)
	}
	avgRow("SPECfp Ave.", fpNames())
	return t
}

// --- Figure 3 ---

// Figure3Row is one benchmark's consecutive-reference distribution.
type Figure3Row struct {
	Name string
	Dist lbic.Distribution
	// Err is non-nil when the analysis cell failed; the row renders as ERR.
	Err error
}

// Figure3 computes the Figure 3 distributions (infinite 4-bank cache, 32B
// lines) for every benchmark.
func Figure3(sw *Sweep) ([]Figure3Row, error) {
	names := lbic.BenchmarkNames()
	cells := make([]runner.Cell[lbic.Distribution], len(names))
	for i, name := range names {
		cells[i] = sw.refCell(name, 4, 32)
	}
	got, err := sweepRun(sw, cells)
	if err != nil {
		return nil, err
	}
	rows := make([]Figure3Row, len(names))
	for i, name := range names {
		rows[i] = Figure3Row{Name: name}
		if d, ok := got[cells[i].Key]; ok {
			rows[i].Dist = d
		} else {
			rows[i].Err = fmt.Errorf("analyzing %s failed", name)
		}
	}
	return rows, nil
}

// figure3Avg averages the distribution fractions over the group members
// whose analysis succeeded; ok is false when none did.
func figure3Avg(rows []Figure3Row, names []string) (avg [5]float64, ok bool) {
	var sum [5]float64
	n := 0
	for _, want := range names {
		for _, r := range rows {
			if r.Name != want || r.Err != nil {
				continue
			}
			sum[0] += r.Dist.SameLineFrac()
			sum[1] += r.Dist.DiffLineFrac()
			sum[2] += r.Dist.OtherBankFrac(1)
			sum[3] += r.Dist.OtherBankFrac(2)
			sum[4] += r.Dist.OtherBankFrac(3)
			n++
		}
	}
	if n == 0 {
		return sum, false
	}
	for i := range sum {
		sum[i] /= float64(n)
	}
	return sum, true
}

// Figure3Table renders the Figure 3 histogram as a table (the paper shows a
// stacked bar chart; the segments here are the bar heights).
func Figure3Table(rows []Figure3Row) *stats.Table {
	t := stats.NewTable(
		"Figure 3: consecutive reference mapping, infinite 4-bank cache, 32B lines",
		"Program", "B-same line", "B-diff line", "(B+1)mod4", "(B+2)mod4", "(B+3)mod4")
	add := func(label string, f [5]float64, ok bool) {
		t.AddRow(label,
			fmtCell(f[0], ok, stats.FormatPct), fmtCell(f[1], ok, stats.FormatPct),
			fmtCell(f[2], ok, stats.FormatPct), fmtCell(f[3], ok, stats.FormatPct),
			fmtCell(f[4], ok, stats.FormatPct))
	}
	rowFor := func(r Figure3Row) {
		add(title(r.Name), [5]float64{
			r.Dist.SameLineFrac(), r.Dist.DiffLineFrac(),
			r.Dist.OtherBankFrac(1), r.Dist.OtherBankFrac(2), r.Dist.OtherBankFrac(3)},
			r.Err == nil)
	}
	for _, r := range rows {
		if contains(intNames(), r.Name) {
			rowFor(r)
		}
	}
	avg, ok := figure3Avg(rows, intNames())
	add("SPECint Ave.", avg, ok)
	for _, r := range rows {
		if contains(fpNames(), r.Name) {
			rowFor(r)
		}
	}
	avg, ok = figure3Avg(rows, fpNames())
	add("SPECfp Ave.", avg, ok)
	return t
}

func contains(ss []string, s string) bool {
	for _, v := range ss {
		if v == s {
			return true
		}
	}
	return false
}

// Figure3Banks quantifies §4's "even with an infinite number of banks, a
// substantial fraction of the bank conflicts we see in these programs could
// remain since they are caused by items mapping to the same cache line":
// as the bank count grows, the same-bank-different-line fraction of
// consecutive references falls toward zero, but the same-line fraction — the
// part only combining can recover — is invariant.
func Figure3Banks(sw *Sweep) (*stats.Table, error) {
	bankCounts := []int{2, 4, 16, 64}
	names := lbic.BenchmarkNames()
	var cells []runner.Cell[lbic.Distribution]
	keys := make(map[string]map[int]string, len(names)) // bench -> banks -> key
	for _, name := range names {
		keys[name] = map[int]string{}
		for _, b := range bankCounts {
			c := sw.refCell(name, b, 32)
			keys[name][b] = c.Key
			cells = append(cells, c)
		}
	}
	got, err := sweepRun(sw, cells)
	if err != nil {
		return nil, err
	}
	headers := []string{"Program"}
	for _, b := range bankCounts {
		headers = append(headers, fmt.Sprintf("same-bank @%d", b))
	}
	headers = append(headers, "same-line (any)")
	t := stats.NewTable(
		"Figure 3 extension: same-bank fraction vs bank count (same-line floor)",
		headers...)
	for _, name := range names {
		row := []string{title(name)}
		var sameLine float64
		haveLine := false
		for _, b := range bankCounts {
			d, ok := got[keys[name][b]]
			row = append(row, fmtCell(d.SameBankFrac(), ok, stats.FormatPct))
			if ok {
				sameLine = d.SameLineFrac() // line mapping is bank-count invariant
				haveLine = true
			}
		}
		row = append(row, fmtCell(sameLine, haveLine, stats.FormatPct))
		t.AddRow(row...)
	}
	return t, nil
}

// --- Table 4 ---

// LBICConfigs are the six MxN configurations of Table 4.
var LBICConfigs = [][2]int{{2, 2}, {2, 4}, {4, 2}, {4, 4}, {8, 2}, {8, 4}}

// Table4Data holds LBIC IPC per benchmark and configuration. Failed cells
// are absent; use Get.
type Table4Data struct {
	Insts uint64
	// IPC[config][bench], config formatted "MxN".
	IPC map[string]map[string]float64
}

// Get returns one cell's IPC and whether it is present.
func (d *Table4Data) Get(key, name string) (float64, bool) {
	v, ok := d.IPC[key][name]
	return v, ok
}

// ConfigKey formats an MxN configuration key.
func ConfigKey(m, n int) string { return fmt.Sprintf("%dx%d", m, n) }

// Table4 runs the Table 4 sweep: six MxN LBIC configurations per benchmark.
func Table4(sw *Sweep) (*Table4Data, error) {
	d := &Table4Data{Insts: sw.Insts, IPC: map[string]map[string]float64{}}
	for _, c := range LBICConfigs {
		d.IPC[ConfigKey(c[0], c[1])] = map[string]float64{}
	}
	var cells []runner.Cell[float64]
	type slot struct{ cfg, name string }
	slots := map[string]slot{}
	for _, name := range lbic.BenchmarkNames() {
		for _, c := range LBICConfigs {
			cell := sw.simBench(name, lbic.LBICPort(c[0], c[1]))
			slots[cell.Key] = slot{ConfigKey(c[0], c[1]), name}
			cells = append(cells, cell)
		}
	}
	got, err := sweepRun(sw, cells)
	if err != nil {
		return nil, err
	}
	for key, v := range got {
		s := slots[key]
		d.IPC[s.cfg][s.name] = v
	}
	return d, nil
}

// Average returns the mean IPC over a benchmark group for one configuration,
// over the cells that succeeded.
func (d *Table4Data) Average(key string, names []string) float64 {
	var vs []float64
	for _, n := range names {
		if v, ok := d.Get(key, n); ok {
			vs = append(vs, v)
		}
	}
	return stats.Mean(vs)
}

// Table4Table renders Table 4: one row per benchmark plus group averages.
// Failed cells render as ERR; averages cover the remaining cells.
func Table4Table(d *Table4Data) *stats.Table {
	headers := []string{"Program"}
	for _, c := range LBICConfigs {
		headers = append(headers, ConfigKey(c[0], c[1]))
	}
	t := stats.NewTable("Table 4: IPC for six MxN LBIC configurations", headers...)
	addRow := func(label string, get func(key string) string) {
		cells := []string{label}
		for _, c := range LBICConfigs {
			cells = append(cells, get(ConfigKey(c[0], c[1])))
		}
		t.AddRow(cells...)
	}
	for _, name := range intNames() {
		name := name
		addRow(title(name), func(k string) string {
			v, ok := d.Get(k, name)
			return fmtCell(v, ok, stats.FormatIPC)
		})
	}
	addRow("SPECint Ave.", func(k string) string {
		has := false
		for _, n := range intNames() {
			if _, ok := d.Get(k, n); ok {
				has = true
			}
		}
		return fmtCell(d.Average(k, intNames()), has, stats.FormatIPC)
	})
	for _, name := range fpNames() {
		name := name
		addRow(title(name), func(k string) string {
			v, ok := d.Get(k, name)
			return fmtCell(v, ok, stats.FormatIPC)
		})
	}
	addRow("SPECfp Ave.", func(k string) string {
		has := false
		for _, n := range fpNames() {
			if _, ok := d.Get(k, n); ok {
				has = true
			}
		}
		return fmtCell(d.Average(k, fpNames()), has, stats.FormatIPC)
	})
	return t
}

// IntNames returns the SPECint kernel names.
func IntNames() []string { return intNames() }

// FPNames returns the SPECfp kernel names.
func FPNames() []string { return fpNames() }
