package experiments

import (
	"lbic"
	"lbic/internal/runner"
	"lbic/internal/stats"
)

// Coded-banks studies: where does XOR-coded multi-port emulation (arXiv
// 2001.09599) beat the paper's LBIC line buffers, and do the two compose?
// The axis holds port cost roughly constant at four single-ported data banks
// and varies what backs them: nothing (the baseline banked cache), one or
// two parity banks (strict reconstruction), the speculative single-read
// variant (arXiv 2502.00147), the 4x2 LBIC, and LBIC-over-coded-banks.

// codedAxis is the column set of both coded tables.
func codedAxis() []lbic.PortConfig {
	spec := lbic.CodedPort(4, 2)
	spec.Speculative = true
	composed := lbic.CodedPort(4, 2)
	composed.LinePorts = 2
	return []lbic.PortConfig{
		lbic.BankedPort(4),
		lbic.CodedPort(4, 1),
		lbic.CodedPort(4, 2),
		spec,
		lbic.LBICPort(4, 2),
		composed,
	}
}

// CodedTable reports IPC of every kernel under the coded-banks axis — the
// headline "coding vs. line buffers" comparison.
func CodedTable(sw *Sweep) (*stats.Table, error) {
	axis := codedAxis()
	cols := make([]column, len(axis))
	for i, port := range axis {
		port := port
		cols[i] = column{header: port.Name(), cell: func(b string) runner.Cell[float64] {
			return sw.simBench(b, port)
		}}
	}
	return grid(sw, "Coded banks vs. line buffers (4 data banks, IPC)",
		lbic.BenchmarkNames(), cols, stats.FormatIPC, true)
}

// AblationCodedConflicts is the same axis viewed through the port subsystem:
// stalled requests per granted access. Coding converts same-bank read
// conflicts into parity reconstructions, so its win over the banked baseline
// shows up here first; what remains on the coded columns is store pressure
// (code updates) plus reads the single parity port could not absorb, which
// is exactly the share the composed LBIC-over-coded column attacks.
func AblationCodedConflicts(sw *Sweep) (*stats.Table, error) {
	axis := codedAxis()
	cols := make([]column, len(axis))
	for i, port := range axis {
		port := port
		cols[i] = column{header: port.Name(), cell: func(b string) runner.Cell[float64] {
			return sw.simBenchConflict(b, port)
		}}
	}
	return grid(sw, "Ablation: coded vs. LBIC vs. composed (conflicts per access)",
		lbic.BenchmarkNames(), cols, formatRate, true)
}
