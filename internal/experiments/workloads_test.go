package experiments

import (
	"strings"
	"testing"

	"lbic"
	"lbic/internal/stats"
)

func TestWorkloadMatrices(t *testing.T) {
	sw := testSweep(tinyInsts)
	for _, gen := range []struct {
		name string
		run  func(*Sweep) (*stats.Table, error)
	}{
		{"ipc", WorkloadMatrix},
		{"conflicts", WorkloadConflicts},
	} {
		t.Run(gen.name, func(t *testing.T) {
			tbl, err := gen.run(sw)
			if err != nil {
				t.Fatal(err)
			}
			var sb strings.Builder
			if err := tbl.Render(&sb); err != nil {
				t.Fatal(err)
			}
			out := sb.String()
			for _, kind := range lbic.GeneratorKinds() {
				if !strings.Contains(strings.ToLower(out), kind) {
					t.Errorf("table missing generator row %q", kind)
				}
			}
			if strings.Contains(out, errCell) {
				t.Errorf("table has ERR cells:\n%s", out)
			}
		})
	}
}

// TestGenCellKeyEncodesParams pins the journal-identity contract: the cell
// key carries the fully resolved generator parameters, so a defaults change
// cannot silently reuse checkpointed values.
func TestGenCellKeyEncodesParams(t *testing.T) {
	sw := testSweep(tinyInsts)
	cell := sw.simGen("zipf", lbic.BankedPort(4))
	rp, err := lbic.GenParams{Kind: "zipf"}.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	if want := "sim/" + rp.Key() + "/bank-4/i20000"; cell.Key != want {
		t.Errorf("cell key = %q, want %q", cell.Key, want)
	}
	conf := sw.simGenConflict("zipf", lbic.BankedPort(4))
	if !strings.HasPrefix(conf.Key, "sim/conf/") {
		t.Errorf("conflict cell key %q not namespaced", conf.Key)
	}
}
