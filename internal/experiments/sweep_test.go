package experiments

import (
	"path/filepath"
	"strings"
	"testing"
	"time"

	"lbic"
	"lbic/internal/runner"
	"lbic/internal/stats"
)

// testGrid is a tiny pattern x port grid that exercises the sweep machinery
// end to end: four cells at a 5k budget, keys
// sim/pat:{unit-stride,random}/{true-1,bank-4}/i5000.
func testGrid(sw *Sweep) (*stats.Table, error) {
	ports := []lbic.PortConfig{lbic.IdealPort(1), lbic.BankedPort(4)}
	cols := make([]column, len(ports))
	for i, port := range ports {
		port := port
		cols[i] = column{header: port.Name(), cell: func(pat string) runner.Cell[float64] {
			return sw.simPattern(pat, port)
		}}
	}
	return grid(sw, "test grid", []string{"unit-stride", "random"}, cols, stats.FormatIPC, true)
}

// One injected panicking cell and one injected hung cell must cost exactly
// those two cells: the table still renders, bad cells as ERR, and the
// failure log names both.
func TestSweepRendersERRForInjectedFaults(t *testing.T) {
	sw := NewSweep(5_000)
	sw.Jobs = 4
	sw.KeepGoing = true
	sw.Timeout = 500 * time.Millisecond
	sw.InjectPanic = []string{"pat:unit-stride/true-1"}
	sw.InjectHang = []string{"pat:random/bank-4"}

	tab, err := testGrid(sw)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := tab.Render(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if got := strings.Count(out, errCell); got != 2 {
		t.Errorf("rendered table has %d ERR cells, want 2:\n%s", got, out)
	}
	// Each column keeps one healthy cell, so the average row stays numeric.
	if strings.Contains(strings.SplitAfter(out, "Average")[1], errCell) {
		t.Errorf("average row has ERR despite surviving cells:\n%s", out)
	}

	fails := sw.Failures()
	if len(fails) != 2 {
		t.Fatalf("Failures() = %d entries, want 2: %v", len(fails), fails)
	}
	msgs := map[string]string{}
	for _, f := range fails {
		msgs[f.Key] = f.Err.Error()
	}
	if m := msgs["sim/pat:unit-stride/true-1/i5000"]; !strings.Contains(m, "injected panic") {
		t.Errorf("panic cell error = %q, want injected panic", m)
	}
	if m := msgs["sim/pat:random/bank-4/i5000"]; !strings.Contains(m, "deadline") {
		t.Errorf("hung cell error = %q, want deadline exceeded", m)
	}
}

// A resumed sweep must serve completed cells from the journal and rerun only
// the failed ones. The second pass injects panics into every previously
// successful cell: if any of them reran instead of being served from the
// checkpoint, the table would show ERR.
func TestSweepResumeRerunsOnlyFailedCells(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.jsonl")

	j, err := runner.OpenJournal(path, false)
	if err != nil {
		t.Fatal(err)
	}
	sw := NewSweep(5_000)
	sw.KeepGoing = true
	sw.Journal = j
	sw.InjectPanic = []string{"pat:random/bank-4"}
	tab, err := testGrid(sw)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := tab.Render(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), errCell) {
		t.Fatalf("first pass should have one ERR cell:\n%s", sb.String())
	}
	if j.Len() != 3 {
		t.Fatalf("journal has %d cells after first pass, want 3", j.Len())
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	j2, err := runner.OpenJournal(path, true)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if j2.Resumed() != 3 {
		t.Fatalf("Resumed() = %d, want 3", j2.Resumed())
	}
	sw2 := NewSweep(5_000)
	sw2.Journal = j2
	// Sabotage the three checkpointed cells; only the failed one may run.
	sw2.InjectPanic = []string{"pat:unit-stride", "pat:random/true-1"}
	tab2, err := testGrid(sw2)
	if err != nil {
		t.Fatal(err)
	}
	sb.Reset()
	if err := tab2.Render(&sb); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(sb.String(), errCell) {
		t.Errorf("resumed pass reran checkpointed cells:\n%s", sb.String())
	}
	if fails := sw2.Failures(); len(fails) != 0 {
		t.Errorf("resumed pass failures: %v", fails)
	}
	if j2.Len() != 4 {
		t.Errorf("journal has %d cells after resume, want 4", j2.Len())
	}
}

// The rendered output must be identical whether cells run serially or on
// eight workers: results are keyed, not ordered by completion.
func TestSweepDeterministicAcrossJobs(t *testing.T) {
	render := func(jobs int) string {
		sw := NewSweep(5_000)
		sw.Jobs = jobs
		tab, err := testGrid(sw)
		if err != nil {
			t.Fatalf("jobs=%d: %v", jobs, err)
		}
		var sb strings.Builder
		if err := tab.JSON(&sb); err != nil {
			t.Fatalf("jobs=%d: %v", jobs, err)
		}
		if err := tab.Render(&sb); err != nil {
			t.Fatalf("jobs=%d: %v", jobs, err)
		}
		return sb.String()
	}
	serial := render(1)
	parallel := render(8)
	if serial != parallel {
		t.Errorf("serial and jobs=8 output differ:\n--- serial ---\n%s\n--- jobs=8 ---\n%s", serial, parallel)
	}
}

// A sweep with Spans set must record every cell and its simulate child as a
// validated span tree, including on faulted cells.
func TestSweepSpansRecorded(t *testing.T) {
	sw := NewSweep(5_000)
	sw.Jobs = 2
	sw.KeepGoing = true
	sw.Timeout = 500 * time.Millisecond
	sw.InjectPanic = []string{"pat:unit-stride/true-1"}
	sw.Spans = lbic.NewRequestTrace()

	if _, err := testGrid(sw); err != nil {
		t.Fatal(err)
	}
	spans := sw.Spans.Snapshot()
	if _, err := lbic.ValidateTraceTree(spans, false); err != nil {
		t.Fatalf("span tree invalid: %v", err)
	}
	var cells, sims int
	for _, sp := range spans {
		if sp.Open {
			t.Errorf("span %q left open after the sweep", sp.Name)
		}
		switch {
		case strings.HasPrefix(sp.Name, "cell "):
			cells++
			if strings.Contains(sp.Name, "pat:unit-stride/true-1") && sp.Attrs["error"] == nil {
				t.Errorf("injected-panic cell span missing error attr: %v", sp.Attrs)
			}
		case strings.HasPrefix(sp.Name, "simulate "):
			sims++
			if sp.Attrs["cycles"] == nil {
				t.Errorf("simulate span %q missing cycles attr: %v", sp.Name, sp.Attrs)
			}
		}
	}
	// Four cells in the grid; the panicking cell (with one retry) never
	// reaches SimulateContext, so it contributes no simulate span.
	if cells != 4 || sims != 3 {
		t.Errorf("spans = %d cells, %d sims; want 4 and 3", cells, sims)
	}
}
