package experiments

import (
	"fmt"
	"strings"
	"testing"
)

// Tiny budgets: these tests verify plumbing and table structure, not
// measured values (the lbic package's integration tests cover shapes).
const tinyInsts = 20_000

// testSweep runs with mild parallelism to keep the sweep tests quick.
func testSweep(insts uint64) *Sweep {
	sw := NewSweep(insts)
	sw.Jobs = 4
	return sw
}

func TestTable2(t *testing.T) {
	rows, err := Table2(testSweep(tinyInsts))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 10 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Stats.Insts == 0 || r.Stats.MemPct <= 0 {
			t.Errorf("%s: empty stats %+v", r.Name, r.Stats)
		}
		if r.PaperMemPct == 0 {
			t.Errorf("%s: missing paper reference", r.Name)
		}
	}
	var sb strings.Builder
	if err := Table2Table(rows).Render(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "Compress") {
		t.Error("table missing Compress row")
	}
}

func TestFigure3(t *testing.T) {
	rows, err := Figure3(testSweep(tinyInsts))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 10 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		total := r.Dist.SameLineFrac() + r.Dist.DiffLineFrac() +
			r.Dist.OtherBankFrac(1) + r.Dist.OtherBankFrac(2) + r.Dist.OtherBankFrac(3)
		if total < 0.999 || total > 1.001 {
			t.Errorf("%s: fractions sum to %v", r.Name, total)
		}
	}
	var sb strings.Builder
	if err := Figure3Table(rows).Render(&sb); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"SPECint Ave.", "SPECfp Ave.", "B-same line"} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("figure table missing %q", want)
		}
	}
}

func TestTable3SingleBench(t *testing.T) {
	if testing.Short() {
		t.Skip("table sweep is slow")
	}
	d, err := Table3(testSweep(tinyInsts))
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"compress", "swim"} {
		if d.Base[name] <= 0 {
			t.Errorf("%s: base IPC %v", name, d.Base[name])
		}
		for _, kind := range []string{"True", "Repl", "Bank"} {
			for _, p := range PortCounts {
				if d.IPC[kind][p][name] <= 0 {
					t.Errorf("%s %s-%d: IPC missing", name, kind, p)
				}
			}
		}
	}
	if a := d.Average("True", 4, IntNames()); a <= 0 {
		t.Error("int average missing")
	}
	var sb strings.Builder
	if err := Table3Table(d).Render(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "SPECfp Ave.") {
		t.Error("table missing averages")
	}
}

func TestTable4(t *testing.T) {
	if testing.Short() {
		t.Skip("table sweep is slow")
	}
	d, err := Table4(testSweep(tinyInsts))
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range LBICConfigs {
		key := ConfigKey(c[0], c[1])
		for _, name := range []string{"li", "mgrid"} {
			if d.IPC[key][name] <= 0 {
				t.Errorf("%s %s: IPC missing", key, name)
			}
		}
	}
	var sb strings.Builder
	if err := Table4Table(d).Render(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "2x2") {
		t.Error("table missing 2x2 column")
	}
}

func TestConfigKey(t *testing.T) {
	if ConfigKey(4, 2) != "4x2" {
		t.Error("ConfigKey wrong")
	}
}

func TestGroupNames(t *testing.T) {
	if len(IntNames()) != 5 || len(FPNames()) != 5 {
		t.Error("group sizes wrong")
	}
	if IntNames()[0] != "compress" || FPNames()[0] != "hydro2d" {
		t.Error("group order wrong")
	}
}

// Ablation drivers: structure smoke tests at tiny budgets.
func TestAblationsSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("ablation sweeps are slow")
	}
	tables, err := Ablations(testSweep(5_000), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 16 {
		t.Fatalf("ablation tables = %d, want 16", len(tables))
	}
	for _, tab := range tables {
		if tab.Title == "" || len(tab.Headers) < 2 || len(tab.Rows) < 5 {
			t.Errorf("malformed ablation table %q: %d headers, %d rows",
				tab.Title, len(tab.Headers), len(tab.Rows))
		}
		var sb strings.Builder
		if err := tab.Render(&sb); err != nil {
			t.Errorf("%q: render: %v", tab.Title, err)
		}
	}
}

func TestFigure3Banks(t *testing.T) {
	tab, err := Figure3Banks(testSweep(20_000))
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 10 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	// The same-bank fraction must fall (or hold) as banks grow, per §4.
	for _, row := range tab.Rows {
		parse := func(cell string) float64 {
			var v float64
			fmt.Sscanf(cell, "%f%%", &v)
			return v
		}
		at2, at64 := parse(row[1]), parse(row[4])
		if at64 > at2+1e-9 {
			t.Errorf("%s: same-bank grew with banks: %v", row[0], row)
		}
	}
}
