// Package asm is a text assembler for the simulator's ISA, so programs can
// be written as .s files and run with cmd/lbicasm rather than constructed
// through the Go builder API.
//
// Syntax, one statement per line ('#' or ';' start a comment):
//
//	.alloc  table 4096 64     # reserve 4096 bytes, 64-aligned; 'table' is its address
//	.at     grid 0x100000 8192    # reserve at a fixed address
//	.word64 table+16 123      # initialize 8 bytes at table+16
//	.float  table+24 2.5      # initialize a float64
//	.byte   table 0xff        # initialize one byte
//
//	start:                    # label
//	    li   r1, table        # immediates may be numbers or data symbols
//	    lw   r2, 8(r1)        # loads:  op rd, off(base)
//	    sw   r2, -4(r1)       # stores: op rs, off(base)
//	    add  r3, r2, r2
//	    fld  f1, 0(r1)
//	    fadd f2, f1, f1
//	    beq  r3, r0, start    # branches target labels
//	    jal  r31, start
//	    jr   r31
//	    halt
//
// The entry point is the first instruction unless a ".entry" directive
// appears before an instruction.
package asm

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"lbic/internal/isa"
)

// Error reports an assembly failure with its line number.
type Error struct {
	Line int
	Msg  string
}

// Error implements error.
func (e *Error) Error() string { return fmt.Sprintf("asm: line %d: %s", e.Line, e.Msg) }

type format uint8

const (
	fRRR    format = iota // op rd, rs1, rs2
	fRRI                  // op rd, rs1, imm
	fRI                   // op rd, imm
	fLoad                 // op rd, off(base)
	fStore                // op rs, off(base)
	fBranch               // op rs1, rs2, label
	fJump                 // op label
	fJal                  // op rd, label
	fJr                   // op rs
	fRR                   // op rd, rs
	fNone                 // op
)

type opSpec struct {
	op     isa.Op
	format format
}

var mnemonics = map[string]opSpec{
	"add": {isa.Add, fRRR}, "sub": {isa.Sub, fRRR}, "and": {isa.And, fRRR},
	"or": {isa.Or, fRRR}, "xor": {isa.Xor, fRRR}, "sll": {isa.Sll, fRRR},
	"srl": {isa.Srl, fRRR}, "sra": {isa.Sra, fRRR}, "slt": {isa.Slt, fRRR},
	"sltu": {isa.Sltu, fRRR}, "mul": {isa.Mul, fRRR}, "div": {isa.Div, fRRR},
	"rem": {isa.Rem, fRRR},

	"addi": {isa.Addi, fRRI}, "andi": {isa.Andi, fRRI}, "ori": {isa.Ori, fRRI},
	"xori": {isa.Xori, fRRI}, "slli": {isa.Slli, fRRI}, "srli": {isa.Srli, fRRI},
	"srai": {isa.Srai, fRRI}, "slti": {isa.Slti, fRRI},

	"li": {isa.Li, fRI},

	"fadd": {isa.FAdd, fRRR}, "fsub": {isa.FSub, fRRR}, "fmul": {isa.FMul, fRRR},
	"fdiv": {isa.FDiv, fRRR}, "fneg": {isa.FNeg, fRR}, "fabs": {isa.FAbs, fRR},
	"cvt.i.f": {isa.CvtIF, fRR}, "cvt.f.i": {isa.CvtFI, fRR}, "fcmplt": {isa.FCmpLT, fRRR},

	"lb": {isa.Lb, fLoad}, "lbu": {isa.Lbu, fLoad}, "lw": {isa.Lw, fLoad},
	"lwu": {isa.Lwu, fLoad}, "ld": {isa.Ld, fLoad}, "fld": {isa.Fld, fLoad},
	"sb": {isa.Sb, fStore}, "sw": {isa.Sw, fStore}, "sd": {isa.Sd, fStore},
	"fsd": {isa.Fsd, fStore},

	"beq": {isa.Beq, fBranch}, "bne": {isa.Bne, fBranch},
	"blt": {isa.Blt, fBranch}, "bge": {isa.Bge, fBranch},
	"j": {isa.J, fJump}, "jal": {isa.Jal, fJal}, "jr": {isa.Jr, fJr},

	"nop": {isa.Nop, fNone}, "halt": {isa.Halt, fNone},
}

type assembler struct {
	b       *isa.Builder
	symbols map[string]uint64 // data symbols -> addresses
	line    int
}

// Assemble parses source text and returns the built program.
func Assemble(name, src string) (*isa.Program, error) {
	a := &assembler{
		b:       isa.NewBuilder(name),
		symbols: make(map[string]uint64),
	}
	for i, raw := range strings.Split(src, "\n") {
		a.line = i + 1
		if err := a.statement(raw); err != nil {
			return nil, err
		}
	}
	p, err := a.b.Build()
	if err != nil {
		return nil, fmt.Errorf("asm: %w", err)
	}
	return p, nil
}

func (a *assembler) errf(formatStr string, args ...any) error {
	return &Error{Line: a.line, Msg: fmt.Sprintf(formatStr, args...)}
}

func stripComment(s string) string {
	for _, marker := range []string{"#", ";"} {
		if i := strings.Index(s, marker); i >= 0 {
			s = s[:i]
		}
	}
	return strings.TrimSpace(s)
}

func (a *assembler) statement(raw string) (err error) {
	defer func() {
		// The builder panics on malformed operands; report with line info.
		if r := recover(); r != nil {
			err = a.errf("%v", r)
		}
	}()
	s := stripComment(raw)
	if s == "" {
		return nil
	}
	// Labels may share a line with an instruction: "loop: addi r1, r1, 1".
	for {
		i := strings.Index(s, ":")
		if i < 0 {
			break
		}
		label := strings.TrimSpace(s[:i])
		if !isIdent(label) {
			return a.errf("bad label %q", label)
		}
		a.b.Label(label)
		s = strings.TrimSpace(s[i+1:])
		if s == "" {
			return nil
		}
	}
	if strings.HasPrefix(s, ".") {
		return a.directive(s)
	}
	return a.instruction(s)
}

func (a *assembler) directive(s string) error {
	fields := strings.Fields(s)
	switch fields[0] {
	case ".entry":
		a.b.Entry()
		return nil
	case ".alloc": // .alloc name size [align]
		if len(fields) < 3 || len(fields) > 4 {
			return a.errf(".alloc wants: name size [align]")
		}
		name := fields[1]
		if !isIdent(name) {
			return a.errf("bad symbol %q", name)
		}
		if _, dup := a.symbols[name]; dup {
			return a.errf("duplicate symbol %q", name)
		}
		size, err := a.number(fields[2])
		if err != nil {
			return err
		}
		align := int64(8)
		if len(fields) == 4 {
			if align, err = a.number(fields[3]); err != nil {
				return err
			}
		}
		if size < 0 || align <= 0 {
			return a.errf("bad size/alignment %d/%d", size, align)
		}
		a.symbols[name] = a.b.Alloc(int(size), uint64(align))
		return nil
	case ".at": // .at name addr size
		if len(fields) != 4 {
			return a.errf(".at wants: name addr size")
		}
		name := fields[1]
		if !isIdent(name) {
			return a.errf("bad symbol %q", name)
		}
		if _, dup := a.symbols[name]; dup {
			return a.errf("duplicate symbol %q", name)
		}
		addr, err := a.number(fields[2])
		if err != nil {
			return err
		}
		size, err := a.number(fields[3])
		if err != nil {
			return err
		}
		a.symbols[name] = a.b.AllocAt(uint64(addr), int(size))
		return nil
	case ".word64", ".word32", ".byte", ".float": // .word64 addrexpr value
		if len(fields) != 3 {
			return a.errf("%s wants: address value", fields[0])
		}
		addr, err := a.addrExpr(fields[1])
		if err != nil {
			return err
		}
		switch fields[0] {
		case ".float":
			v, err := strconv.ParseFloat(fields[2], 64)
			if err != nil {
				return a.errf("bad float %q", fields[2])
			}
			a.b.SetFloat64(addr, v)
		default:
			v, err := a.number(fields[2])
			if err != nil {
				return err
			}
			switch fields[0] {
			case ".word64":
				a.b.SetWord64(addr, uint64(v))
			case ".word32":
				if v < math.MinInt32 || v > math.MaxUint32 {
					return a.errf("value %d out of 32-bit range", v)
				}
				a.b.SetWord32(addr, uint32(v))
			case ".byte":
				if v < -128 || v > 255 {
					return a.errf("value %d out of byte range", v)
				}
				a.b.SetByte(addr, byte(v))
			}
		}
		return nil
	default:
		return a.errf("unknown directive %q", fields[0])
	}
}

func (a *assembler) instruction(s string) error {
	mnemonic, rest, _ := strings.Cut(s, " ")
	mnemonic = strings.ToLower(strings.TrimSpace(mnemonic))
	spec, ok := mnemonics[mnemonic]
	if !ok {
		return a.errf("unknown instruction %q", mnemonic)
	}
	args := splitArgs(rest)
	switch spec.format {
	case fNone:
		if len(args) != 0 {
			return a.errf("%s takes no operands", mnemonic)
		}
		a.b.Inst(spec.op, isa.RegNone, isa.RegNone, isa.RegNone, 0)
	case fRRR:
		rd, rs1, rs2, err := a.regs3(mnemonic, args)
		if err != nil {
			return err
		}
		a.b.Inst(spec.op, rd, rs1, rs2, 0)
	case fRR:
		if len(args) != 2 {
			return a.errf("%s wants: rd, rs", mnemonic)
		}
		rd, err := a.reg(args[0])
		if err != nil {
			return err
		}
		rs, err := a.reg(args[1])
		if err != nil {
			return err
		}
		a.b.Inst(spec.op, rd, rs, isa.RegNone, 0)
	case fRRI:
		if len(args) != 3 {
			return a.errf("%s wants: rd, rs1, imm", mnemonic)
		}
		rd, err := a.reg(args[0])
		if err != nil {
			return err
		}
		rs1, err := a.reg(args[1])
		if err != nil {
			return err
		}
		imm, err := a.immediate(args[2])
		if err != nil {
			return err
		}
		a.b.Inst(spec.op, rd, rs1, isa.RegNone, imm)
	case fRI:
		if len(args) != 2 {
			return a.errf("%s wants: rd, imm", mnemonic)
		}
		rd, err := a.reg(args[0])
		if err != nil {
			return err
		}
		imm, err := a.immediate(args[1])
		if err != nil {
			return err
		}
		a.b.Inst(spec.op, rd, isa.RegNone, isa.RegNone, imm)
	case fLoad, fStore:
		if len(args) != 2 {
			return a.errf("%s wants: reg, off(base)", mnemonic)
		}
		r, err := a.reg(args[0])
		if err != nil {
			return err
		}
		off, base, err := a.memOperand(args[1])
		if err != nil {
			return err
		}
		if spec.format == fLoad {
			a.b.Inst(spec.op, r, base, isa.RegNone, off)
		} else {
			a.b.Inst(spec.op, isa.RegNone, base, r, off)
		}
	case fBranch:
		if len(args) != 3 {
			return a.errf("%s wants: rs1, rs2, label", mnemonic)
		}
		rs1, err := a.reg(args[0])
		if err != nil {
			return err
		}
		rs2, err := a.reg(args[1])
		if err != nil {
			return err
		}
		if !isIdent(args[2]) {
			return a.errf("bad branch target %q", args[2])
		}
		a.b.BranchTo(spec.op, rs1, rs2, args[2])
	case fJump:
		if len(args) != 1 || !isIdent(args[0]) {
			return a.errf("j wants a label")
		}
		a.b.J(args[0])
	case fJal:
		if len(args) != 2 || !isIdent(args[1]) {
			return a.errf("jal wants: rd, label")
		}
		rd, err := a.reg(args[0])
		if err != nil {
			return err
		}
		a.b.Jal(rd, args[1])
	case fJr:
		if len(args) != 1 {
			return a.errf("jr wants one register")
		}
		rs, err := a.reg(args[0])
		if err != nil {
			return err
		}
		a.b.Jr(rs)
	}
	return nil
}

func splitArgs(s string) []string {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	for i := range parts {
		parts[i] = strings.TrimSpace(parts[i])
	}
	return parts
}

func (a *assembler) reg(s string) (isa.Reg, error) {
	if len(s) < 2 {
		return 0, a.errf("bad register %q", s)
	}
	n, err := strconv.Atoi(s[1:])
	if err != nil || n < 0 || n > 31 {
		return 0, a.errf("bad register %q", s)
	}
	switch s[0] {
	case 'r', 'R':
		return isa.R(n), nil
	case 'f', 'F':
		return isa.F(n), nil
	}
	return 0, a.errf("bad register %q", s)
}

func (a *assembler) regs3(mnemonic string, args []string) (rd, rs1, rs2 isa.Reg, err error) {
	if len(args) != 3 {
		return 0, 0, 0, a.errf("%s wants: rd, rs1, rs2", mnemonic)
	}
	if rd, err = a.reg(args[0]); err != nil {
		return
	}
	if rs1, err = a.reg(args[1]); err != nil {
		return
	}
	rs2, err = a.reg(args[2])
	return
}

// memOperand parses "off(base)"; the offset may be omitted.
func (a *assembler) memOperand(s string) (int64, isa.Reg, error) {
	open := strings.Index(s, "(")
	if open < 0 || !strings.HasSuffix(s, ")") {
		return 0, 0, a.errf("bad memory operand %q, want off(base)", s)
	}
	off := int64(0)
	if offStr := strings.TrimSpace(s[:open]); offStr != "" {
		v, err := a.number(offStr)
		if err != nil {
			return 0, 0, err
		}
		off = v
	}
	base, err := a.reg(strings.TrimSpace(s[open+1 : len(s)-1]))
	if err != nil {
		return 0, 0, err
	}
	return off, base, nil
}

// number parses a decimal or 0x-prefixed integer.
func (a *assembler) number(s string) (int64, error) {
	v, err := strconv.ParseInt(s, 0, 64)
	if err != nil {
		// Allow big unsigned hex values too.
		if u, uerr := strconv.ParseUint(s, 0, 64); uerr == nil {
			return int64(u), nil
		}
		return 0, a.errf("bad number %q", s)
	}
	return v, nil
}

// immediate is a number or a data symbol (optionally symbol+offset).
func (a *assembler) immediate(s string) (int64, error) {
	if v, err := strconv.ParseInt(s, 0, 64); err == nil {
		return v, nil
	}
	addr, err := a.addrExpr(s)
	if err != nil {
		return 0, a.errf("bad immediate %q (number or data symbol)", s)
	}
	return int64(addr), nil
}

// addrExpr resolves "symbol" or "symbol+offset".
func (a *assembler) addrExpr(s string) (uint64, error) {
	sym, offStr, hasOff := strings.Cut(s, "+")
	base, ok := a.symbols[sym]
	if !ok {
		if v, err := strconv.ParseUint(s, 0, 64); err == nil {
			return v, nil
		}
		return 0, a.errf("unknown symbol %q", sym)
	}
	if !hasOff {
		return base, nil
	}
	off, err := strconv.ParseInt(offStr, 0, 64)
	if err != nil {
		return 0, a.errf("bad offset %q", offStr)
	}
	return base + uint64(off), nil
}

func isIdent(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_':
		case r >= '0' && r <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}
