package asm

import (
	"strings"
	"testing"
)

// FuzzAssemble: the assembler must never panic — any input yields either a
// valid program or an *Error with a line number.
func FuzzAssemble(f *testing.F) {
	seeds := []string{
		"li r1, 5\nhalt",
		".alloc buf 64 8\nld r1, 0(r2)\nhalt",
		"loop: addi r1, r1, 1\nblt r1, r2, loop\nhalt",
		"fadd f1, f2, f3",
		".word64 buf+8 42",
		".at x 0x100000 64\n.float x 1.5",
		"# comment only",
		"add r1, r2",
		"lw r1, (r2)",
		"lw r1, 0(f2)",
		"beq r1, r2, 7bad",
		".alloc 64",
		"li r1, 0xffffffffffffffff",
		"jal r31, fn\nfn: jr r31\nhalt",
		strings.Repeat("nop\n", 100) + "halt",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		p, err := Assemble("fuzz", src)
		if err != nil {
			if p != nil {
				t.Error("error with non-nil program")
			}
			return
		}
		if err := p.Validate(); err != nil {
			t.Errorf("assembled program fails validation: %v", err)
		}
	})
}
