package asm

import (
	"strings"
	"testing"

	"lbic/internal/emu"
	"lbic/internal/isa"
	"lbic/internal/trace"
)

// run assembles and executes src, returning the machine after completion.
func run(t *testing.T, src string) *emu.Machine {
	t.Helper()
	p, err := Assemble("test", src)
	if err != nil {
		t.Fatal(err)
	}
	m, err := emu.New(p)
	if err != nil {
		t.Fatal(err)
	}
	var d trace.Dyn
	for i := 0; i < 100000 && m.Next(&d); i++ {
	}
	if !m.Halted() {
		t.Fatal("program did not halt")
	}
	return m
}

func TestAssembleArithmetic(t *testing.T) {
	m := run(t, `
		li   r1, 10
		li   r2, 3
		add  r3, r1, r2
		mul  r4, r1, r2
		sub  r5, r1, r2
		addi r6, r1, -4
		halt
	`)
	if m.Reg(isa.R(3)) != 13 || m.Reg(isa.R(4)) != 30 || m.Reg(isa.R(5)) != 7 {
		t.Errorf("arith wrong: %d %d %d", m.Reg(isa.R(3)), m.Reg(isa.R(4)), m.Reg(isa.R(5)))
	}
	if m.Reg(isa.R(6)) != 6 {
		t.Errorf("addi = %d", m.Reg(isa.R(6)))
	}
}

func TestAssembleLoop(t *testing.T) {
	m := run(t, `
		# sum 1..10
		li r1, 0
		li r2, 1
		li r3, 11
	loop:
		add  r1, r1, r2
		addi r2, r2, 1
		blt  r2, r3, loop
		halt
	`)
	if m.Reg(isa.R(1)) != 55 {
		t.Errorf("sum = %d, want 55", m.Reg(isa.R(1)))
	}
}

func TestAssembleDataAndMemory(t *testing.T) {
	m := run(t, `
		.alloc buf 64 8
		.word64 buf 42
		.word64 buf+8 100
		.word32 buf+16 7
		.byte   buf+20 0xff

		li  r1, buf
		ld  r2, 0(r1)
		ld  r3, 8(r1)
		lw  r4, 16(r1)
		lbu r5, 20(r1)
		add r6, r2, r3
		sd  r6, 24(r1)
		halt
	`)
	if m.Reg(isa.R(6)) != 142 {
		t.Errorf("sum = %d", m.Reg(isa.R(6)))
	}
	if m.Reg(isa.R(4)) != 7 || m.Reg(isa.R(5)) != 0xff {
		t.Errorf("lw/lbu = %d/%d", m.Reg(isa.R(4)), m.Reg(isa.R(5)))
	}
	if got := m.Mem().Read(m.Reg(isa.R(1))+24, 8); got != 142 {
		t.Errorf("stored %d", got)
	}
}

func TestAssembleFloat(t *testing.T) {
	m := run(t, `
		.alloc c 16 8
		.float c 1.5
		.float c+8 2.0
		li   r1, c
		fld  f1, 0(r1)
		fld  f2, 8(r1)
		fmul f3, f1, f2
		fadd f4, f3, f1
		fsd  f4, 0(r1)
		fcmplt r2, f1, f2
		halt
	`)
	if m.FReg(isa.F(4)) != 4.5 {
		t.Errorf("f4 = %v", m.FReg(isa.F(4)))
	}
	if m.Reg(isa.R(2)) != 1 {
		t.Error("fcmplt wrong")
	}
}

func TestAssembleJalJr(t *testing.T) {
	m := run(t, `
		li  r10, 1
		jal r31, fn
		addi r10, r10, 100
		halt
	fn:
		addi r10, r10, 10
		jr  r31
	`)
	if m.Reg(isa.R(10)) != 111 {
		t.Errorf("r10 = %d, want 111", m.Reg(isa.R(10)))
	}
}

func TestAssembleAt(t *testing.T) {
	m := run(t, `
		.at region 0x200000 64
		.word64 region+8 9
		li r1, region
		ld r2, 8(r1)
		halt
	`)
	if m.Reg(isa.R(1)) != 0x200000 || m.Reg(isa.R(2)) != 9 {
		t.Errorf("at/ld wrong: %#x %d", m.Reg(isa.R(1)), m.Reg(isa.R(2)))
	}
}

func TestAssembleEntry(t *testing.T) {
	m := run(t, `
		li r1, 1
		.entry
		li r2, 2
		halt
	`)
	if m.Reg(isa.R(1)) != 0 {
		t.Error("instruction before .entry should not run")
	}
	if m.Reg(isa.R(2)) != 2 {
		t.Error("entry path did not run")
	}
}

func TestAssembleLabelOnSameLine(t *testing.T) {
	m := run(t, `
		li r1, 3
	loop: addi r1, r1, -1
		bne r1, r0, loop
		halt
	`)
	if m.Reg(isa.R(1)) != 0 {
		t.Errorf("r1 = %d", m.Reg(isa.R(1)))
	}
}

func TestAssembleComments(t *testing.T) {
	run(t, `
		li r1, 5   # trailing comment
		; whole-line comment
		halt       ; done
	`)
}

func TestAssembleErrors(t *testing.T) {
	cases := []struct {
		src  string
		want string
	}{
		{"frob r1, r2, r3\nhalt", "unknown instruction"},
		{"add r1, r2\nhalt", "wants: rd, rs1, rs2"},
		{"li r40, 1\nhalt", "bad register"},
		{"li x1, 1\nhalt", "bad register"},
		{"ld r1, nonsense\nhalt", "memory operand"},
		{"beq r1, r2, 7eleven\nhalt", "bad branch target"},
		{".alloc 9bad 64\nhalt", "bad symbol"},
		{".alloc a 64\n.alloc a 64\nhalt", "duplicate symbol"},
		{".word64 nosuch 1\nhalt", "unknown symbol"},
		{".blah 1 2\nhalt", "unknown directive"},
		{"j nowhere\nhalt", "undefined label"},
		{"addi r1, r1, zzz\nhalt", "bad immediate"},
		{"lw f1, 0(r1)\nhalt", "integer register"},
		{".byte", "wants: address value"},
	}
	for _, c := range cases {
		_, err := Assemble("bad", c.src)
		if err == nil {
			t.Errorf("src %q: expected error containing %q", c.src, c.want)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("src %q: error %q does not contain %q", c.src, err, c.want)
		}
	}
}

func TestErrorLineNumbers(t *testing.T) {
	_, err := Assemble("bad", "li r1, 1\nli r2, 2\nbogus r1\nhalt")
	var ae *Error
	if !errorsAs(err, &ae) {
		t.Fatalf("error type %T", err)
	}
	if ae.Line != 3 {
		t.Errorf("error line = %d, want 3", ae.Line)
	}
}

func errorsAs(err error, target **Error) bool {
	for err != nil {
		if e, ok := err.(*Error); ok {
			*target = e
			return true
		}
		u, ok := err.(interface{ Unwrap() error })
		if !ok {
			return false
		}
		err = u.Unwrap()
	}
	return false
}

func TestAssembleHexNumbers(t *testing.T) {
	m := run(t, `
		li r1, 0xff
		andi r2, r1, 0x0f
		halt
	`)
	if m.Reg(isa.R(2)) != 0xf {
		t.Errorf("r2 = %#x", m.Reg(isa.R(2)))
	}
}

func TestAssembleNegativeOffsets(t *testing.T) {
	m := run(t, `
		.alloc buf 32 8
		.word64 buf 5
		li r1, buf+8
		ld r2, -8(r1)
		halt
	`)
	if m.Reg(isa.R(2)) != 5 {
		t.Errorf("r2 = %d", m.Reg(isa.R(2)))
	}
}
