// Package advsearch hunts for adversarial workloads: generator parameter
// settings that maximize same-bank conflict pressure (or minimize IPC) on a
// chosen cache port organization. It is a seeded mutation/hill-climbing
// loop over the internal/workload generator family — the catalog defaults
// seed a population, each round simulates every not-yet-scored candidate,
// the best survivors are perturbed field-by-field via the GenField
// descriptor table, and after a fixed number of rounds the full scored
// population is returned ranked. Everything is deterministic for a given
// Options: the same search finds the same winners on every machine, which
// is what lets discovered workloads become checked-in regression artifacts
// (testdata/adversarial).
package advsearch

import (
	"context"
	"fmt"
	"sort"

	"lbic"
	"lbic/internal/runner"
)

// Score is one candidate's measured behaviour on the target port
// organization, extracted from the run's lbic-run-report/v1 metrics.
type Score struct {
	// Conflicts is the total same-bank conflict count ("port.bank_conflicts").
	Conflicts uint64 `json:"conflicts"`
	// Accesses is the total granted bank accesses ("port.bank_accesses").
	Accesses uint64 `json:"accesses"`
	// ConflictRate is Conflicts/Accesses, the primary objective.
	ConflictRate float64 `json:"conflict_rate"`
	IPC          float64 `json:"ipc"`
	Cycles       uint64  `json:"cycles"`
}

// Candidate is one scored parameter setting.
type Candidate struct {
	Params lbic.GenParams `json:"params"`
	Score  Score          `json:"score"`
}

// Fitness is the scalar the search maximizes: the conflict rate, or -IPC
// when the objective is minimizing IPC.
func (c Candidate) Fitness(minimizeIPC bool) float64 {
	if minimizeIPC {
		return -c.Score.IPC
	}
	return c.Score.ConflictRate
}

// Evaluator scores one candidate. The default simulates the generator on
// the target port; tests substitute cheap synthetic landscapes.
type Evaluator func(ctx context.Context, p lbic.GenParams) (Score, error)

// Options configures a search. The zero value of every field takes the
// documented default.
type Options struct {
	// Port is the organization under attack (required).
	Port lbic.PortConfig
	// Insts is the per-candidate simulation budget (required).
	Insts uint64
	// Kinds restricts the searched generator kinds; empty means the whole
	// catalog.
	Kinds []string
	// Rounds is the number of mutation rounds after the seed evaluation
	// (default 4).
	Rounds int
	// Survivors is how many top candidates breed each round (default 3).
	Survivors int
	// MutantsPerSurvivor is the brood size (default 4).
	MutantsPerSurvivor int
	// Seed drives all mutation randomness (default 1).
	Seed uint64
	// Parallel bounds concurrently simulated candidates (default 1, which
	// is also the deterministic-log choice; scores are deterministic at any
	// parallelism).
	Parallel int
	// MinimizeIPC switches the objective from maximizing the conflict rate
	// to minimizing IPC.
	MinimizeIPC bool
	// Evaluate overrides the simulation-backed evaluator (tests).
	Evaluate Evaluator
	// Log, when non-nil, receives one line per round.
	Log func(format string, args ...any)
}

func (opt *Options) fill() error {
	if opt.Insts == 0 && opt.Evaluate == nil {
		return fmt.Errorf("advsearch: Insts must be positive")
	}
	if len(opt.Kinds) == 0 {
		opt.Kinds = lbic.GeneratorKinds()
	}
	for _, k := range opt.Kinds {
		if len(lbic.GeneratorFields(k)) == 0 {
			return fmt.Errorf("advsearch: unknown generator kind %q", k)
		}
	}
	if opt.Rounds == 0 {
		opt.Rounds = 4
	}
	if opt.Survivors == 0 {
		opt.Survivors = 3
	}
	if opt.MutantsPerSurvivor == 0 {
		opt.MutantsPerSurvivor = 4
	}
	if opt.Seed == 0 {
		opt.Seed = 1
	}
	if opt.Parallel == 0 {
		opt.Parallel = 1
	}
	if opt.Evaluate == nil {
		port, insts := opt.Port, opt.Insts
		opt.Evaluate = func(ctx context.Context, p lbic.GenParams) (Score, error) {
			cfg := lbic.DefaultConfig()
			cfg.Port = port
			cfg.MaxInsts = insts
			res, err := lbic.SimulateGenerator(ctx, p, cfg)
			if err != nil {
				return Score{}, err
			}
			return Score{
				Conflicts:    res.PortConflicts(),
				Accesses:     res.PortAccesses(),
				ConflictRate: res.PortConflictRate(),
				IPC:          res.IPC,
				Cycles:       res.Cycles,
			}, nil
		}
	}
	if opt.Log == nil {
		opt.Log = func(string, ...any) {}
	}
	return nil
}

// Search runs the hill-climbing loop and returns every evaluated candidate,
// best first. A candidate whose evaluation fails is dropped (its parameters
// are remembered so it is not retried); ctx cancellation returns the
// partial ranking with the context's error.
func Search(ctx context.Context, opt Options) ([]Candidate, error) {
	if err := opt.fill(); err != nil {
		return nil, err
	}
	rng := prng{s: opt.Seed*0x9E3779B97F4A7C15 + 1}

	scored := make(map[string]Candidate)
	attempted := make(map[string]bool)

	// Seed population: the catalog defaults of every searched kind, plus one
	// brood of mutants each so round 0 already explores.
	var pop []lbic.GenParams
	for _, kind := range opt.Kinds {
		base, err := lbic.DefaultGeneratorParams(kind)
		if err != nil {
			return nil, err
		}
		pop = append(pop, base)
		for i := 0; i < opt.MutantsPerSurvivor; i++ {
			pop = append(pop, mutate(&rng, base))
		}
	}

	for round := 0; round <= opt.Rounds; round++ {
		var fresh []lbic.GenParams
		for _, p := range pop {
			if k := p.Key(); !attempted[k] {
				attempted[k] = true
				fresh = append(fresh, p)
			}
		}
		if len(fresh) == 0 {
			break
		}
		cells := make([]runner.Cell[Score], len(fresh))
		for i, p := range fresh {
			p := p
			cells[i] = runner.Cell[Score]{
				Key: fmt.Sprintf("adv/%s/%s/i%d", p.Key(), opt.Port.Key(), opt.Insts),
				Run: func(ctx context.Context) (Score, error) { return opt.Evaluate(ctx, p) },
			}
		}
		out, err := runner.Run(ctx, cells, runner.Options{Jobs: opt.Parallel, KeepGoing: true})
		for i, r := range out.Results {
			if r.Err == nil {
				scored[fresh[i].Key()] = Candidate{Params: fresh[i], Score: r.Value}
			} else {
				opt.Log("advsearch: %s failed: %v", fresh[i].Key(), r.Err)
			}
		}
		if err != nil {
			return ranked(scored, opt.MinimizeIPC), err
		}

		top := ranked(scored, opt.MinimizeIPC)
		if len(top) > opt.Survivors {
			top = top[:opt.Survivors]
		}
		if len(top) > 0 {
			b := top[0]
			opt.Log("round %d: %d evaluated, best %s fitness %.4f (rate %.4f, ipc %.3f)",
				round, len(scored), b.Params.Key(), b.Fitness(opt.MinimizeIPC), b.Score.ConflictRate, b.Score.IPC)
		}
		pop = pop[:0]
		for _, c := range top {
			for i := 0; i < opt.MutantsPerSurvivor; i++ {
				pop = append(pop, mutate(&rng, c.Params))
			}
		}
	}
	return ranked(scored, opt.MinimizeIPC), nil
}

// ranked sorts the scored population best-first, tie-breaking on the
// canonical key so the order is fully deterministic.
func ranked(scored map[string]Candidate, minimizeIPC bool) []Candidate {
	out := make([]Candidate, 0, len(scored))
	for _, c := range scored {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool {
		fi, fj := out[i].Fitness(minimizeIPC), out[j].Fitness(minimizeIPC)
		if fi != fj {
			return fi > fj
		}
		return out[i].Params.Key() < out[j].Params.Key()
	})
	return out
}

// mutate perturbs one or two fields of a resolved parameter set, snapping
// to each field's step and range; occasionally it reseeds the stream's
// randomness instead. Mutation never produces an invalid setting.
func mutate(rng *prng, p lbic.GenParams) lbic.GenParams {
	q, err := p.Resolve()
	if err != nil {
		// Unreachable for catalog-derived parents; fall back to defaults.
		q, _ = lbic.DefaultGeneratorParams(p.Kind)
	}
	fields := lbic.GeneratorFields(q.Kind)
	nMut := 1 + rng.n(2)
	for i := 0; i < nMut; i++ {
		if rng.n(8) == 0 {
			q.Seed = rng.next()%1_000_000 + 1
			continue
		}
		f := fields[rng.n(len(fields))]
		cur := f.Get(&q)
		var next int64
		switch rng.n(4) {
		case 0:
			next = cur * 2
		case 1:
			next = cur / 2
		case 2:
			next = cur + f.Step<<rng.n(5)
		default:
			next = cur - f.Step<<rng.n(5)
		}
		if next > f.Max {
			next = f.Max
		}
		if f.Step > 1 {
			next -= next % f.Step
		}
		if next < f.Min {
			next = f.Min
		}
		f.Set(&q, next)
	}
	return q
}

// prng is the same xorshift64* the generators use: deterministic and
// platform-independent.
type prng struct{ s uint64 }

func (r *prng) next() uint64 {
	r.s ^= r.s >> 12
	r.s ^= r.s << 25
	r.s ^= r.s >> 27
	return r.s * 0x2545F4914F6CDD1D
}

func (r *prng) n(n int) int { return int(r.next() % uint64(n)) }
