// Package advsearch hunts for adversarial workloads: generator parameter
// settings that maximize same-bank conflict pressure (or minimize IPC) on a
// chosen cache port organization. It is a seeded mutation/hill-climbing
// loop over the internal/workload generator family — the catalog defaults
// seed a population, each round simulates every not-yet-scored candidate,
// the best survivors are perturbed field-by-field via the GenField
// descriptor table, and after a fixed number of rounds the full scored
// population is returned ranked. Everything is deterministic for a given
// Options: the same search finds the same winners on every machine, which
// is what lets discovered workloads become checked-in regression artifacts
// (testdata/adversarial).
package advsearch

import (
	"context"
	"fmt"
	"sort"

	"lbic"
	"lbic/internal/runner"
)

// Score is one candidate's measured behaviour on the target port
// organization, extracted from the run's lbic-run-report/v1 metrics.
type Score struct {
	// Conflicts is the total same-bank conflict count ("port.bank_conflicts").
	Conflicts uint64 `json:"conflicts"`
	// Accesses is the total granted bank accesses ("port.bank_accesses").
	Accesses uint64 `json:"accesses"`
	// ConflictRate is Conflicts/Accesses, the primary objective.
	ConflictRate float64 `json:"conflict_rate"`
	IPC          float64 `json:"ipc"`
	Cycles       uint64  `json:"cycles"`
}

// Candidate is one scored parameter setting.
type Candidate struct {
	Params lbic.GenParams `json:"params"`
	// Port is the organization the candidate was scored on when the search
	// roams the port axis (Options.SearchPorts); nil means the fixed
	// Options.Port.
	Port  *lbic.PortConfig `json:"port,omitempty"`
	Score Score            `json:"score"`
}

// key is the candidate's identity in the scored population.
func (c Candidate) key() string {
	if c.Port != nil {
		return c.Params.Key() + "@" + c.Port.Key()
	}
	return c.Params.Key()
}

// Fitness is the scalar the search maximizes: the conflict rate, or -IPC
// when the objective is minimizing IPC.
func (c Candidate) Fitness(minimizeIPC bool) float64 {
	if minimizeIPC {
		return -c.Score.IPC
	}
	return c.Score.ConflictRate
}

// Evaluator scores one candidate on one port organization. The default
// simulates the generator on the port; tests substitute cheap synthetic
// landscapes.
type Evaluator func(ctx context.Context, p lbic.GenParams, port lbic.PortConfig) (Score, error)

// Options configures a search. The zero value of every field takes the
// documented default.
type Options struct {
	// Port is the organization under attack (required).
	Port lbic.PortConfig
	// Insts is the per-candidate simulation budget (required).
	Insts uint64
	// Kinds restricts the searched generator kinds; empty means the whole
	// catalog.
	Kinds []string
	// Rounds is the number of mutation rounds after the seed evaluation
	// (default 4).
	Rounds int
	// Survivors is how many top candidates breed each round (default 3).
	Survivors int
	// MutantsPerSurvivor is the brood size (default 4).
	MutantsPerSurvivor int
	// Seed drives all mutation randomness (default 1).
	Seed uint64
	// Parallel bounds concurrently simulated candidates (default 1, which
	// is also the deterministic-log choice; scores are deterministic at any
	// parallelism).
	Parallel int
	// MinimizeIPC switches the objective from maximizing the conflict rate
	// to minimizing IPC.
	MinimizeIPC bool
	// SearchPorts extends the search space to the port-organization axis:
	// mutation may hop a candidate onto another registered organization, so
	// the search answers "which workload on which organization" instead of
	// attacking one fixed port. Port then only anchors the mutant broods.
	SearchPorts bool
	// PortAxis is the organization axis for SearchPorts; empty selects
	// lbic.PortAxis(), every registered kind's representatives.
	PortAxis []lbic.PortConfig
	// Evaluate overrides the simulation-backed evaluator (tests).
	Evaluate Evaluator
	// Log, when non-nil, receives one line per round.
	Log func(format string, args ...any)
}

func (opt *Options) fill() error {
	if opt.Insts == 0 && opt.Evaluate == nil {
		return fmt.Errorf("advsearch: Insts must be positive")
	}
	if len(opt.Kinds) == 0 {
		opt.Kinds = lbic.GeneratorKinds()
	}
	for _, k := range opt.Kinds {
		if len(lbic.GeneratorFields(k)) == 0 {
			return fmt.Errorf("advsearch: unknown generator kind %q", k)
		}
	}
	if opt.Rounds == 0 {
		opt.Rounds = 4
	}
	if opt.Survivors == 0 {
		opt.Survivors = 3
	}
	if opt.MutantsPerSurvivor == 0 {
		opt.MutantsPerSurvivor = 4
	}
	if opt.Seed == 0 {
		opt.Seed = 1
	}
	if opt.Parallel == 0 {
		opt.Parallel = 1
	}
	if opt.SearchPorts && len(opt.PortAxis) == 0 {
		opt.PortAxis = lbic.PortAxis()
	}
	if opt.Evaluate == nil {
		insts := opt.Insts
		opt.Evaluate = func(ctx context.Context, p lbic.GenParams, port lbic.PortConfig) (Score, error) {
			cfg := lbic.DefaultConfig()
			cfg.Port = port
			cfg.MaxInsts = insts
			res, err := lbic.SimulateGenerator(ctx, p, cfg)
			if err != nil {
				return Score{}, err
			}
			return Score{
				Conflicts:    res.PortConflicts(),
				Accesses:     res.PortAccesses(),
				ConflictRate: res.PortConflictRate(),
				IPC:          res.IPC,
				Cycles:       res.Cycles,
			}, nil
		}
	}
	if opt.Log == nil {
		opt.Log = func(string, ...any) {}
	}
	return nil
}

// Search runs the hill-climbing loop and returns every evaluated candidate,
// best first. A candidate whose evaluation fails is dropped (its parameters
// are remembered so it is not retried); ctx cancellation returns the
// partial ranking with the context's error.
func Search(ctx context.Context, opt Options) ([]Candidate, error) {
	if err := opt.fill(); err != nil {
		return nil, err
	}
	rng := prng{s: opt.Seed*0x9E3779B97F4A7C15 + 1}

	scored := make(map[string]Candidate)
	attempted := make(map[string]bool)

	// Seed population: the catalog defaults of every searched kind, plus one
	// brood of mutants each so round 0 already explores. A port-axis search
	// seeds every kind's defaults on every organization.
	var pop []spec
	for _, kind := range opt.Kinds {
		base, err := lbic.DefaultGeneratorParams(kind)
		if err != nil {
			return nil, err
		}
		if opt.SearchPorts {
			for _, port := range opt.PortAxis {
				pop = append(pop, spec{params: base, port: port})
			}
		} else {
			pop = append(pop, spec{params: base, port: opt.Port})
		}
		for i := 0; i < opt.MutantsPerSurvivor; i++ {
			pop = append(pop, mutateSpec(&rng, &opt, spec{params: base, port: opt.Port}))
		}
	}

	for round := 0; round <= opt.Rounds; round++ {
		var fresh []spec
		for _, s := range pop {
			if k := s.key(opt.SearchPorts); !attempted[k] {
				attempted[k] = true
				fresh = append(fresh, s)
			}
		}
		if len(fresh) == 0 {
			break
		}
		cells := make([]runner.Cell[Score], len(fresh))
		for i, s := range fresh {
			s := s
			cells[i] = runner.Cell[Score]{
				Key: fmt.Sprintf("adv/%s/%s/i%d", s.params.Key(), s.port.Key(), opt.Insts),
				Run: func(ctx context.Context) (Score, error) { return opt.Evaluate(ctx, s.params, s.port) },
			}
		}
		out, err := runner.Run(ctx, cells, runner.Options{Jobs: opt.Parallel, KeepGoing: true})
		for i, r := range out.Results {
			if r.Err == nil {
				scored[fresh[i].key(opt.SearchPorts)] = fresh[i].candidate(opt.SearchPorts, r.Value)
			} else {
				opt.Log("advsearch: %s failed: %v", fresh[i].key(opt.SearchPorts), r.Err)
			}
		}
		if err != nil {
			return ranked(scored, opt.MinimizeIPC), err
		}

		top := ranked(scored, opt.MinimizeIPC)
		if len(top) > opt.Survivors {
			top = top[:opt.Survivors]
		}
		if len(top) > 0 {
			b := top[0]
			opt.Log("round %d: %d evaluated, best %s fitness %.4f (rate %.4f, ipc %.3f)",
				round, len(scored), b.key(), b.Fitness(opt.MinimizeIPC), b.Score.ConflictRate, b.Score.IPC)
		}
		pop = pop[:0]
		for _, c := range top {
			parent := spec{params: c.Params, port: opt.Port}
			if c.Port != nil {
				parent.port = *c.Port
			}
			for i := 0; i < opt.MutantsPerSurvivor; i++ {
				pop = append(pop, mutateSpec(&rng, &opt, parent))
			}
		}
	}
	return ranked(scored, opt.MinimizeIPC), nil
}

// spec is one point of the search space: a generator parameter setting and
// the organization it is scored on (fixed at Options.Port unless the search
// roams the port axis).
type spec struct {
	params lbic.GenParams
	port   lbic.PortConfig
}

// key is the point's identity for dedup; the port only distinguishes points
// when the search actually varies it.
func (s spec) key(searchPorts bool) string {
	if searchPorts {
		return s.params.Key() + "@" + s.port.Key()
	}
	return s.params.Key()
}

// candidate converts the scored point to its public form.
func (s spec) candidate(searchPorts bool, sc Score) Candidate {
	c := Candidate{Params: s.params, Score: sc}
	if searchPorts {
		port := s.port
		c.Port = &port
	}
	return c
}

// ranked sorts the scored population best-first, tie-breaking on the
// canonical key so the order is fully deterministic.
func ranked(scored map[string]Candidate, minimizeIPC bool) []Candidate {
	out := make([]Candidate, 0, len(scored))
	for _, c := range scored {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool {
		fi, fj := out[i].Fitness(minimizeIPC), out[j].Fitness(minimizeIPC)
		if fi != fj {
			return fi > fj
		}
		return out[i].key() < out[j].key()
	})
	return out
}

// mutateSpec perturbs one search point: usually its generator parameters
// (see mutate), occasionally — when the search roams the port axis — hopping
// the same workload onto another registered organization. The port-hop draw
// is only taken under SearchPorts, so fixed-port searches consume the rng
// stream exactly as before and stay reproducible against minted artifacts.
func mutateSpec(rng *prng, opt *Options, s spec) spec {
	if opt.SearchPorts && len(opt.PortAxis) > 1 && rng.n(4) == 0 {
		s.port = opt.PortAxis[rng.n(len(opt.PortAxis))]
		return s
	}
	s.params = mutate(rng, s.params)
	return s
}

// mutate perturbs one or two fields of a resolved parameter set, snapping
// to each field's step and range; occasionally it reseeds the stream's
// randomness instead. Mutation never produces an invalid setting.
func mutate(rng *prng, p lbic.GenParams) lbic.GenParams {
	q, err := p.Resolve()
	if err != nil {
		// Unreachable for catalog-derived parents; fall back to defaults.
		q, _ = lbic.DefaultGeneratorParams(p.Kind)
	}
	fields := lbic.GeneratorFields(q.Kind)
	nMut := 1 + rng.n(2)
	for i := 0; i < nMut; i++ {
		if rng.n(8) == 0 {
			q.Seed = rng.next()%1_000_000 + 1
			continue
		}
		f := fields[rng.n(len(fields))]
		cur := f.Get(&q)
		var next int64
		switch rng.n(4) {
		case 0:
			next = cur * 2
		case 1:
			next = cur / 2
		case 2:
			next = cur + f.Step<<rng.n(5)
		default:
			next = cur - f.Step<<rng.n(5)
		}
		if next > f.Max {
			next = f.Max
		}
		if f.Step > 1 {
			next -= next % f.Step
		}
		if next < f.Min {
			next = f.Min
		}
		f.Set(&q, next)
	}
	return q
}

// prng is the same xorshift64* the generators use: deterministic and
// platform-independent.
type prng struct{ s uint64 }

func (r *prng) next() uint64 {
	r.s ^= r.s >> 12
	r.s ^= r.s << 25
	r.s ^= r.s >> 27
	return r.s * 0x2545F4914F6CDD1D
}

func (r *prng) n(n int) int { return int(r.next() % uint64(n)) }
