package advsearch

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"lbic"
)

// MetaSchema identifies the .meta.json provenance record written next to
// minted traces.
const MetaSchema = "lbic-adversarial-meta/v1"

// SearchCoords pins the search invocation that discovered a workload, so
// the artifact can be re-derived from scratch.
type SearchCoords struct {
	Seed      uint64 `json:"seed"`
	Rounds    int    `json:"rounds"`
	Objective string `json:"objective"`
	Kinds     string `json:"kinds,omitempty"`
}

// Meta is the provenance record of one minted adversarial stream.
type Meta struct {
	Schema string `json:"schema"`
	// Name is the artifact base name; the stream inside the .lbictrace file
	// carries the generator parameter key instead.
	Name string `json:"name"`
	// Port is the organization the stream was optimized against.
	Port string `json:"port"`
	// Insts is the recording and replay budget.
	Insts uint64 `json:"insts"`
	// Params regenerates the stream; Score is its measured behaviour.
	Params lbic.GenParams `json:"params"`
	Score  Score          `json:"score"`
	// Search pins the coordinates that found it.
	Search SearchCoords `json:"search"`
}

// LoadMeta reads and validates one .meta.json file.
func LoadMeta(path string) (Meta, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return Meta{}, err
	}
	var m Meta
	if err := json.Unmarshal(raw, &m); err != nil {
		return Meta{}, fmt.Errorf("%s: %w", path, err)
	}
	if m.Schema != MetaSchema {
		return Meta{}, fmt.Errorf("%s: schema %q, want %q", path, m.Schema, MetaSchema)
	}
	return m, nil
}

// Mint writes a discovered candidate as a regression artifact triple under
// dir: <base>.lbictrace (the serialized lbic-trace-stream/v1 recording at
// insts instructions), <base>.report.json (the byte-exact
// lbic-run-report/v1 of replaying that stream on port), and
// <base>.meta.json (provenance). The report is produced by replaying the
// serialized trace — exactly what the regression test and `lbicsim
// -trace-in` do — so the stored bytes are reproducible from the stored
// stream alone.
func Mint(dir, base string, port lbic.PortConfig, insts uint64, win Candidate, coords SearchCoords) (Meta, error) {
	if win.Port != nil {
		// A port-axis search records which organization the candidate beat;
		// the artifact replays against that one, not the search anchor.
		port = *win.Port
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return Meta{}, err
	}
	rt, err := lbic.RecordGeneratorTrace(win.Params, insts)
	if err != nil {
		return Meta{}, err
	}
	f, err := os.Create(filepath.Join(dir, base+".lbictrace"))
	if err != nil {
		return Meta{}, err
	}
	if err := lbic.WriteTraceStream(f, rt); err != nil {
		f.Close()
		return Meta{}, err
	}
	if err := f.Close(); err != nil {
		return Meta{}, err
	}

	cfg := lbic.DefaultConfig()
	cfg.Port = port
	cfg.MaxInsts = 0 // whole trace
	res, err := lbic.SimulateTrace(context.Background(), rt, cfg)
	if err != nil {
		return Meta{}, err
	}
	rf, err := os.Create(filepath.Join(dir, base+".report.json"))
	if err != nil {
		return Meta{}, err
	}
	if err := lbic.NewReport(res).WriteJSON(rf); err != nil {
		rf.Close()
		return Meta{}, err
	}
	if err := rf.Close(); err != nil {
		return Meta{}, err
	}

	m := Meta{
		Schema: MetaSchema,
		Name:   base,
		Port:   port.Key(),
		Insts:  insts,
		Params: win.Params,
		Score:  win.Score,
		Search: coords,
	}
	enc, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return Meta{}, err
	}
	if err := os.WriteFile(filepath.Join(dir, base+".meta.json"), append(enc, '\n'), 0o644); err != nil {
		return Meta{}, err
	}
	return m, nil
}
