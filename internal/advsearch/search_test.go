package advsearch

import (
	"context"
	"errors"
	"sync"
	"testing"

	"lbic"
)

// landscape is a cheap synthetic evaluator: fitness grows with mem_pct, so
// the search should climb it without running any simulations.
func landscape(calls *sync.Map) Evaluator {
	return func(_ context.Context, p lbic.GenParams, _ lbic.PortConfig) (Score, error) {
		rp, err := p.Resolve()
		if err != nil {
			return Score{}, err
		}
		if _, dup := calls.LoadOrStore(rp.Key(), true); dup {
			return Score{}, errors.New("evaluated the same candidate twice")
		}
		rate := float64(rp.MemPct) / 100
		return Score{ConflictRate: rate, Conflicts: uint64(rp.MemPct), Accesses: 100, IPC: 8 - rate}, nil
	}
}

func TestSearchClimbsAndDedupes(t *testing.T) {
	var calls sync.Map
	got, err := Search(context.Background(), Options{
		Kinds:    []string{"zipf", "chase"},
		Evaluate: landscape(&calls),
		Rounds:   6,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) == 0 {
		t.Fatal("no candidates scored")
	}
	base, err := lbic.DefaultGeneratorParams("zipf")
	if err != nil {
		t.Fatal(err)
	}
	baseScore := float64(base.MemPct) / 100
	if got[0].Score.ConflictRate <= baseScore {
		t.Errorf("best fitness %.3f did not improve on the catalog default %.3f", got[0].Score.ConflictRate, baseScore)
	}
	for i := 1; i < len(got); i++ {
		if got[i-1].Fitness(false) < got[i].Fitness(false) {
			t.Fatalf("ranking not sorted at %d", i)
		}
	}
}

func TestSearchDeterministic(t *testing.T) {
	run := func() []Candidate {
		var calls sync.Map
		got, err := Search(context.Background(), Options{
			Kinds:    []string{"hashjoin"},
			Evaluate: landscape(&calls),
			Rounds:   4,
			Parallel: 4,
		})
		if err != nil {
			t.Fatal(err)
		}
		return got
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("runs evaluated %d vs %d candidates", len(a), len(b))
	}
	for i := range a {
		if a[i].Params != b[i].Params || a[i].Score != b[i].Score {
			t.Fatalf("runs diverge at rank %d:\n %+v\n %+v", i, a[i], b[i])
		}
	}
}

func TestSearchMinimizeIPCObjective(t *testing.T) {
	var calls sync.Map
	got, err := Search(context.Background(), Options{
		Kinds:       []string{"gcsweep"},
		Evaluate:    landscape(&calls),
		Rounds:      3,
		MinimizeIPC: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(got); i++ {
		if got[i-1].Score.IPC > got[i].Score.IPC {
			t.Fatalf("minimize-IPC ranking not ascending in IPC at %d", i)
		}
	}
}

func TestSearchSurvivesFailingCandidates(t *testing.T) {
	n := 0
	got, err := Search(context.Background(), Options{
		Kinds: []string{"zipf"},
		Evaluate: func(_ context.Context, p lbic.GenParams, _ lbic.PortConfig) (Score, error) {
			n++
			if n%3 == 0 {
				return Score{}, errors.New("synthetic failure")
			}
			rp, _ := p.Resolve()
			return Score{ConflictRate: float64(rp.SkewPct) / 100}, nil
		},
		Rounds: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) == 0 {
		t.Fatal("every candidate dropped")
	}
}

func TestSearchRejectsBadOptions(t *testing.T) {
	if _, err := Search(context.Background(), Options{Port: lbic.BankedPort(4)}); err == nil {
		t.Error("accepted zero Insts without an Evaluate override")
	}
	if _, err := Search(context.Background(), Options{Kinds: []string{"nope"}, Insts: 1}); err == nil {
		t.Error("accepted unknown kind")
	}
}

// TestMutateAlwaysValid hammers the mutator: every mutant must resolve
// cleanly, for every kind.
func TestMutateAlwaysValid(t *testing.T) {
	rng := prng{s: 7}
	for _, kind := range lbic.GeneratorKinds() {
		p, err := lbic.DefaultGeneratorParams(kind)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 2000; i++ {
			p = mutate(&rng, p)
			if _, err := p.Resolve(); err != nil {
				t.Fatalf("%s: mutant %d invalid: %v (%+v)", kind, i, err, p)
			}
		}
	}
}
