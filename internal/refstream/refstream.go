// Package refstream reproduces the paper's §4 memory-reference-stream
// analysis (Figure 3): for consecutive memory references, how often does the
// successor map to the same bank and same line, the same bank but a
// different line, or each of the other banks of an infinitely large
// line-interleaved multi-bank cache? The skew toward same-bank — and within
// it, same-line — is the observation that motivates the LBIC.
package refstream

import (
	"fmt"

	"lbic/internal/ports"
	"lbic/internal/trace"
)

// Distribution is the Figure 3 histogram for one program: consecutive
// reference pairs classified by where the successor lands relative to its
// predecessor's bank B.
type Distribution struct {
	Banks int
	Pairs uint64
	// SameBankSameLine counts successors in the same bank and same line
	// ("B - same line").
	SameBankSameLine uint64
	// SameBankDiffLine counts successors in the same bank but a different
	// line ("B - diff line") — the conflicts combining cannot remove.
	SameBankDiffLine uint64
	// OtherBank[i-1] counts successors in bank (B + i) mod Banks, i >= 1.
	OtherBank []uint64
}

// Frac returns count/Pairs, or 0 before any pair.
func (d *Distribution) frac(c uint64) float64 {
	if d.Pairs == 0 {
		return 0
	}
	return float64(c) / float64(d.Pairs)
}

// SameLineFrac returns the B-same-line fraction.
func (d *Distribution) SameLineFrac() float64 { return d.frac(d.SameBankSameLine) }

// DiffLineFrac returns the B-diff-line fraction.
func (d *Distribution) DiffLineFrac() float64 { return d.frac(d.SameBankDiffLine) }

// SameBankFrac returns the total same-bank fraction.
func (d *Distribution) SameBankFrac() float64 {
	return d.frac(d.SameBankSameLine + d.SameBankDiffLine)
}

// OtherBankFrac returns the fraction landing in bank (B+i) mod Banks.
func (d *Distribution) OtherBankFrac(i int) float64 {
	if i < 1 || i > len(d.OtherBank) {
		return 0
	}
	return d.frac(d.OtherBank[i-1])
}

// Analyzer ingests a dynamic reference stream.
type Analyzer struct {
	sel  ports.BankSelector
	dist Distribution
	prev uint64
	have bool
}

// NewAnalyzer returns an analyzer for the given bank count and line size.
// The paper's Figure 3 uses 4 banks and 32-byte lines.
func NewAnalyzer(banks, lineSize int) (*Analyzer, error) {
	sel, err := ports.NewBankSelector(banks, lineSize)
	if err != nil {
		return nil, fmt.Errorf("refstream: %w", err)
	}
	return &Analyzer{
		sel: sel,
		dist: Distribution{
			Banks:     banks,
			OtherBank: make([]uint64, banks-1),
		},
	}, nil
}

// Note records one memory reference address.
func (a *Analyzer) Note(addr uint64) {
	if a.have {
		pb, cb := a.sel.BankOf(a.prev), a.sel.BankOf(addr)
		if pb == cb {
			if a.sel.LineOf(a.prev) == a.sel.LineOf(addr) {
				a.dist.SameBankSameLine++
			} else {
				a.dist.SameBankDiffLine++
			}
		} else {
			i := (cb - pb + a.dist.Banks) % a.dist.Banks
			a.dist.OtherBank[i-1]++
		}
		a.dist.Pairs++
	}
	a.prev = addr
	a.have = true
}

// Distribution returns the accumulated histogram.
func (a *Analyzer) Distribution() Distribution {
	d := a.dist
	d.OtherBank = append([]uint64(nil), a.dist.OtherBank...)
	return d
}

// Analyze consumes up to maxInsts instructions from the stream and returns
// the distribution over its memory references.
func Analyze(s trace.Stream, banks, lineSize int, maxInsts uint64) (Distribution, error) {
	a, err := NewAnalyzer(banks, lineSize)
	if err != nil {
		return Distribution{}, err
	}
	var d trace.Dyn
	for n := uint64(0); n < maxInsts && s.Next(&d); n++ {
		if d.IsMem() {
			a.Note(d.Addr)
		}
	}
	return a.Distribution(), nil
}
