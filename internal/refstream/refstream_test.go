package refstream

import (
	"math"
	"testing"

	"lbic/internal/isa"
	"lbic/internal/trace"
)

func note(t *testing.T, addrs ...uint64) Distribution {
	t.Helper()
	a, err := NewAnalyzer(4, 32)
	if err != nil {
		t.Fatal(err)
	}
	for _, ad := range addrs {
		a.Note(ad)
	}
	return a.Distribution()
}

func TestSameLineClassification(t *testing.T) {
	d := note(t, 0x100, 0x104, 0x11f)
	if d.Pairs != 2 || d.SameBankSameLine != 2 {
		t.Errorf("dist = %+v, want 2 same-line pairs", d)
	}
	if d.SameLineFrac() != 1 {
		t.Errorf("same-line frac = %v", d.SameLineFrac())
	}
}

func TestDiffLineClassification(t *testing.T) {
	// 0x100 and 0x180 are 128 bytes apart: same bank (4 banks x 32B), diff line.
	d := note(t, 0x100, 0x180)
	if d.SameBankDiffLine != 1 {
		t.Errorf("dist = %+v, want 1 diff-line pair", d)
	}
}

func TestOtherBankClassification(t *testing.T) {
	d := note(t, 0x100, 0x120, 0x160, 0x1c0, 0x1a0)
	// 0x100->0x120: +1; 0x120->0x160: +2; 0x160->0x1c0: +3... banks are
	// (addr>>5)&3: 0x100->0 (8&3=0), 0x120->1, 0x160->3 (+2), 0x1c0->2 (+3),
	// 0x1a0->1 (+3).
	if d.OtherBankFrac(1) != 0.25 {
		t.Errorf("+1 frac = %v", d.OtherBankFrac(1))
	}
	if d.OtherBankFrac(2) != 0.25 {
		t.Errorf("+2 frac = %v", d.OtherBankFrac(2))
	}
	if d.OtherBankFrac(3) != 0.5 {
		t.Errorf("+3 frac = %v", d.OtherBankFrac(3))
	}
}

func TestFractionsSumToOne(t *testing.T) {
	addrs := []uint64{}
	rng := uint64(12345)
	for i := 0; i < 1000; i++ {
		rng = rng*6364136223846793005 + 1442695040888963407
		addrs = append(addrs, 0x10000+(rng>>33)%65536)
	}
	d := note(t, addrs...)
	sum := d.SameLineFrac() + d.DiffLineFrac() +
		d.OtherBankFrac(1) + d.OtherBankFrac(2) + d.OtherBankFrac(3)
	if math.Abs(sum-1) > 1e-12 {
		t.Errorf("fractions sum to %v", sum)
	}
	if d.Pairs != 999 {
		t.Errorf("pairs = %d", d.Pairs)
	}
}

func TestAnalyzeStreamFiltersMemOps(t *testing.T) {
	dyns := []trace.Dyn{
		{Op: isa.Add, Class: isa.ClassIntALU},
		{Op: isa.Ld, Class: isa.ClassLoad, Addr: 0x100, Size: 8},
		{Op: isa.Add, Class: isa.ClassIntALU},
		{Op: isa.Sd, Class: isa.ClassStore, Addr: 0x108, Size: 8},
	}
	d, err := Analyze(trace.NewSliceStream(dyns), 4, 32, 100)
	if err != nil {
		t.Fatal(err)
	}
	if d.Pairs != 1 || d.SameBankSameLine != 1 {
		t.Errorf("dist = %+v", d)
	}
}

func TestAnalyzerValidation(t *testing.T) {
	if _, err := NewAnalyzer(3, 32); err == nil {
		t.Error("expected bank validation error")
	}
	if _, err := NewAnalyzer(4, 24); err == nil {
		t.Error("expected line-size validation error")
	}
}

func TestEmptyDistribution(t *testing.T) {
	d := note(t)
	if d.SameLineFrac() != 0 || d.SameBankFrac() != 0 || d.OtherBankFrac(1) != 0 {
		t.Error("empty distribution must report zero fractions")
	}
	if d.OtherBankFrac(0) != 0 || d.OtherBankFrac(9) != 0 {
		t.Error("out-of-range OtherBankFrac must be 0")
	}
}
