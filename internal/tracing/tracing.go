// Package tracing is the serving plane's request-to-cycle span tracer: a
// lightweight, allocation-conscious way to answer "where did this request's
// wall-clock time go — admission, trace recording, cell simulation, or
// encoding?". A Trace is a per-request (or per-job) buffer of Spans; each
// Span has a name, start/end time, a parent, and free-form attributes and
// point events. Spans propagate through context.Context, so the HTTP layer,
// the sweep runner, and lbic.Simulate each contribute their own level of the
// tree without knowing about each other.
//
// The design goals, in order:
//
//  1. Zero cost when disabled. Start on a context with no trace returns a
//     nil *Span whose methods are nil-safe no-ops; no allocation, no atomic,
//     no branch in the caller. The simulator's hot loop never sees a span at
//     all — spans terminate at the per-run level.
//  2. Lock-free append. Concurrent cells publish finished spans onto the
//     trace with a single compare-and-swap onto an intrusive list; there is
//     no mutex for goroutines to convoy on.
//  3. Exportable two ways: JSON Lines (one span per line, schema
//     lbic-trace/v1) for programmatic consumers and the Chrome trace-event
//     format for chrome://tracing / Perfetto.
//
// A Span is owned by the goroutine that started it until End; SetAttr and
// Event must not race with each other from different goroutines. End is
// idempotent — the first call wins — and publishing happens at Start, so a
// snapshot taken mid-request sees in-flight spans (marked open).
package tracing

import (
	"context"
	"sort"
	"sync/atomic"
	"time"
)

// Attr is one key/value annotation on a span.
type Attr struct {
	Key   string
	Value any
}

// EventData is a point-in-time annotation within a span.
type EventData struct {
	Name string `json:"name"`
	// AtNS is nanoseconds since the trace start.
	AtNS int64 `json:"at_ns"`
}

// Span is one timed operation in a trace. The zero of *Span (nil) is a
// valid no-op span: every method is nil-safe, so call sites never branch on
// whether tracing is enabled.
type Span struct {
	// next links the trace's intrusive publish list (newest first).
	next *Span
	tr   *Trace

	id     uint64
	parent uint64
	name   string
	// startNS is nanoseconds since the trace start.
	startNS int64
	// endNS is nanoseconds since the trace start, plus one so that a span
	// ending in the trace's first nanosecond is distinguishable from an open
	// span; 0 means still open.
	endNS atomic.Int64

	attrs  []Attr
	events []EventData
}

// ID returns the span's trace-local identifier (0 for a no-op span).
func (s *Span) ID() uint64 {
	if s == nil {
		return 0
	}
	return s.id
}

// SetAttr annotates the span. Owner-goroutine only, before End.
func (s *Span) SetAttr(key string, value any) {
	if s == nil {
		return
	}
	s.attrs = append(s.attrs, Attr{Key: key, Value: value})
}

// Event records a named instant within the span. Owner-goroutine only,
// before End.
func (s *Span) Event(name string) {
	if s == nil {
		return
	}
	s.events = append(s.events, EventData{Name: name, AtNS: s.tr.since()})
}

// End closes the span. The first call wins; later calls are no-ops, so a
// span defended by both a defer and an explicit End closes exactly once.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.endNS.CompareAndSwap(0, s.tr.since()+1)
}

// Ended reports whether End has been called.
func (s *Span) Ended() bool {
	return s != nil && s.endNS.Load() != 0
}

// Trace is one request's (or job's) span buffer. Create with New, thread
// with NewContext/Start, and export with Snapshot.
type Trace struct {
	start  time.Time
	nextID atomic.Uint64
	head   atomic.Pointer[Span]
	// count tracks published spans so Snapshot can size its slice.
	count atomic.Int64
}

// New returns an empty trace whose clock starts now.
func New() *Trace {
	return &Trace{start: time.Now()}
}

// Start opens a span as a child of ctx's current span (a root span if ctx
// carries none) and returns a context carrying the new span. The span is
// published to the trace immediately, so snapshots see open spans.
func (t *Trace) Start(ctx context.Context, name string) (context.Context, *Span) {
	if t == nil {
		return ctx, nil
	}
	var parent uint64
	if p := SpanFromContext(ctx); p != nil && p.tr == t {
		parent = p.id
	}
	s := &Span{
		tr:      t,
		id:      t.nextID.Add(1),
		parent:  parent,
		name:    name,
		startNS: t.since(),
	}
	for {
		head := t.head.Load()
		s.next = head
		if t.head.CompareAndSwap(head, s) {
			break
		}
	}
	t.count.Add(1)
	return context.WithValue(ctx, spanKey{}, s), s
}

// since is nanoseconds since the trace epoch.
func (t *Trace) since() int64 { return time.Since(t.start).Nanoseconds() }

// Epoch returns the trace's start time.
func (t *Trace) Epoch() time.Time { return t.start }

// spanKey carries the current *Span (and through it the *Trace).
type spanKey struct{}

// NewContext returns ctx carrying tr with no current span: the next Start
// opens a root span.
func NewContext(ctx context.Context, tr *Trace) context.Context {
	if tr == nil {
		return ctx
	}
	return context.WithValue(ctx, spanKey{}, &Span{tr: tr})
}

// FromContext returns the trace ctx carries, or nil.
func FromContext(ctx context.Context) *Trace {
	if s, ok := ctx.Value(spanKey{}).(*Span); ok {
		return s.tr
	}
	return nil
}

// SpanFromContext returns ctx's current span, or nil. A NewContext anchor
// (trace attached, no span started yet) also returns nil.
func SpanFromContext(ctx context.Context) *Span {
	s, ok := ctx.Value(spanKey{}).(*Span)
	if !ok || s.id == 0 {
		return nil
	}
	return s
}

// Start opens a span on ctx's trace; with no trace attached it returns ctx
// unchanged and a nil (no-op) span, costing nothing.
func Start(ctx context.Context, name string) (context.Context, *Span) {
	s, ok := ctx.Value(spanKey{}).(*Span)
	if !ok {
		return ctx, nil
	}
	return s.tr.Start(ctx, name)
}

// Adopt returns base carrying from's trace and current span, so work that
// must outlive a caller's cancellation (base is typically the server
// lifetime context) still records into the caller's trace. With no trace on
// from it returns base unchanged.
func Adopt(base, from context.Context) context.Context {
	if s, ok := from.Value(spanKey{}).(*Span); ok {
		return context.WithValue(base, spanKey{}, s)
	}
	return base
}

// SpanData is a span's exportable state (one JSONL line of the
// lbic-trace/v1 stream).
type SpanData struct {
	ID     uint64 `json:"id"`
	Parent uint64 `json:"parent,omitempty"`
	Name   string `json:"name"`
	// StartNS is nanoseconds since the trace epoch.
	StartNS int64 `json:"start_ns"`
	// DurNS is the span's duration; for a span still open at snapshot time
	// it is the time to the snapshot and Open is true.
	DurNS int64 `json:"dur_ns"`
	Open  bool  `json:"open,omitempty"`

	Attrs  map[string]any `json:"attrs,omitempty"`
	Events []EventData    `json:"events,omitempty"`
}

// Snapshot returns the trace's spans ordered by start time (ties by ID).
// Open spans are included with their duration clamped to now. Attributes of
// open spans owned by other goroutines are deliberately not read — SetAttr
// is unsynchronized by design — so open spans export with nil Attrs.
func (t *Trace) Snapshot() []SpanData {
	if t == nil {
		return nil
	}
	now := t.since()
	out := make([]SpanData, 0, t.count.Load())
	for s := t.head.Load(); s != nil; s = s.next {
		d := SpanData{
			ID:      s.id,
			Parent:  s.parent,
			Name:    s.name,
			StartNS: s.startNS,
		}
		if end := s.endNS.Load(); end != 0 {
			d.DurNS = (end - 1) - s.startNS
			d.Attrs = attrMap(s.attrs)
			if len(s.events) > 0 {
				d.Events = append([]EventData(nil), s.events...)
			}
		} else {
			d.DurNS = now - s.startNS
			d.Open = true
		}
		out = append(out, d)
	}
	// The publish list is newest-first, but concurrent Starts can publish
	// out of ID order; sort into start order with IDs breaking ties.
	sort.Slice(out, func(i, j int) bool {
		if out[i].StartNS != out[j].StartNS {
			return out[i].StartNS < out[j].StartNS
		}
		return out[i].ID < out[j].ID
	})
	return out
}

func attrMap(attrs []Attr) map[string]any {
	if len(attrs) == 0 {
		return nil
	}
	m := make(map[string]any, len(attrs))
	for _, a := range attrs {
		m[a.Key] = a.Value
	}
	return m
}
