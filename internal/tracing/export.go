package tracing

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
)

// Schema identifies the JSONL trace layout: a header line carrying the
// trace-level fields, then one SpanData object per line.
const Schema = "lbic-trace/v1"

// Header is the first line of a JSONL trace export.
type Header struct {
	Schema string `json:"schema"`
	// Name labels the trace (the job ID, the request ID, the command line).
	Name string `json:"name,omitempty"`
	// EpochUnixNS anchors span offsets to wall-clock time.
	EpochUnixNS int64 `json:"epoch_unix_ns,omitempty"`
	// Spans counts the span lines that follow.
	Spans int `json:"spans"`
}

// WriteJSONL writes the lbic-trace/v1 stream: a header line, then one span
// per line in snapshot order.
func WriteJSONL(w io.Writer, name string, epochUnixNS int64, spans []SpanData) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	enc.SetEscapeHTML(false)
	if err := enc.Encode(Header{Schema: Schema, Name: name, EpochUnixNS: epochUnixNS, Spans: len(spans)}); err != nil {
		return err
	}
	for _, s := range spans {
		if err := enc.Encode(s); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadJSONL parses a stream written by WriteJSONL. A missing or malformed
// header is an error; span lines must all parse.
func ReadJSONL(r io.Reader) (Header, []SpanData, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 64<<20)
	var h Header
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return h, nil, err
		}
		return h, nil, fmt.Errorf("tracing: empty trace stream")
	}
	if err := json.Unmarshal(sc.Bytes(), &h); err != nil {
		return h, nil, fmt.Errorf("tracing: parsing trace header: %w", err)
	}
	if h.Schema != Schema {
		return h, nil, fmt.Errorf("tracing: unknown trace schema %q (want %q)", h.Schema, Schema)
	}
	var spans []SpanData
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var s SpanData
		if err := json.Unmarshal(line, &s); err != nil {
			return h, spans, fmt.Errorf("tracing: parsing span line %d: %w", len(spans)+2, err)
		}
		spans = append(spans, s)
	}
	return h, spans, sc.Err()
}

// chromeEvent is one entry of the Chrome trace-event format
// (https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU).
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"` // microseconds
	Dur  float64        `json:"dur,omitempty"`
	PID  int            `json:"pid"`
	TID  uint64         `json:"tid"`
	Cat  string         `json:"cat,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// chromeDoc is the JSON-object form of the trace-event format, which both
// chrome://tracing and Perfetto load.
type chromeDoc struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// WriteChrome renders spans as a chrome://tracing-loadable document. Spans
// are complete ("X") events; each direct child of a root span gets its own
// thread lane (deeper descendants inherit their ancestor's lane), so
// concurrent sweep cells render side by side with their sub-spans nested.
func WriteChrome(w io.Writer, name string, spans []SpanData) error {
	// Lane assignment: roots on lane 0; each direct child of a root opens
	// the next lane; everything deeper inherits.
	lane := make(map[uint64]uint64, len(spans))
	parentOf := make(map[uint64]uint64, len(spans))
	isRoot := make(map[uint64]bool, len(spans))
	var nextLane uint64
	for _, s := range spans {
		parentOf[s.ID] = s.Parent
		if s.Parent == 0 {
			isRoot[s.ID] = true
			lane[s.ID] = 0
		}
	}
	for _, s := range spans {
		if s.Parent == 0 {
			continue
		}
		if isRoot[s.Parent] {
			nextLane++
			lane[s.ID] = nextLane
			continue
		}
		// Inherit the nearest assigned ancestor (spans arrive in start
		// order, so parents are assigned before children; orphans fall back
		// to lane 0).
		lane[s.ID] = lane[s.Parent]
	}

	doc := chromeDoc{DisplayTimeUnit: "ms", TraceEvents: make([]chromeEvent, 0, len(spans)+1)}
	doc.TraceEvents = append(doc.TraceEvents, chromeEvent{
		Name: "process_name", Ph: "M", PID: 1,
		Args: map[string]any{"name": name},
	})
	for _, s := range spans {
		args := make(map[string]any, len(s.Attrs)+2)
		for k, v := range s.Attrs {
			args[k] = v
		}
		if s.Open {
			args["open"] = true
		}
		doc.TraceEvents = append(doc.TraceEvents, chromeEvent{
			Name: s.Name,
			Ph:   "X",
			TS:   float64(s.StartNS) / 1e3,
			Dur:  float64(s.DurNS) / 1e3,
			PID:  1,
			TID:  lane[s.ID],
			Cat:  "lbic",
			Args: args,
		})
		for _, ev := range s.Events {
			doc.TraceEvents = append(doc.TraceEvents, chromeEvent{
				Name: ev.Name,
				Ph:   "i",
				TS:   float64(ev.AtNS) / 1e3,
				PID:  1,
				TID:  lane[s.ID],
				Cat:  "lbic",
			})
		}
	}
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	return enc.Encode(doc)
}

// ValidateTree checks the structural invariants an exported span set must
// hold: exactly one root when requireSingleRoot, every parent reference
// resolving, no cycles, and every span reaching a root. It returns the root
// IDs found.
func ValidateTree(spans []SpanData, requireSingleRoot bool) ([]uint64, error) {
	byID := make(map[uint64]SpanData, len(spans))
	var roots []uint64
	for _, s := range spans {
		if _, dup := byID[s.ID]; dup {
			return nil, fmt.Errorf("tracing: duplicate span id %d", s.ID)
		}
		byID[s.ID] = s
		if s.Parent == 0 {
			roots = append(roots, s.ID)
		}
	}
	if requireSingleRoot && len(roots) != 1 {
		return roots, fmt.Errorf("tracing: %d root spans, want 1", len(roots))
	}
	for _, s := range spans {
		seen := map[uint64]bool{}
		for cur := s; cur.Parent != 0; {
			if seen[cur.ID] {
				return roots, fmt.Errorf("tracing: span %d is in a parent cycle", s.ID)
			}
			seen[cur.ID] = true
			p, ok := byID[cur.Parent]
			if !ok {
				return roots, fmt.Errorf("tracing: span %d (%s) has unknown parent %d", cur.ID, cur.Name, cur.Parent)
			}
			cur = p
		}
	}
	return roots, nil
}
