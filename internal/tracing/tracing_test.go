package tracing

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestSpanParenting(t *testing.T) {
	tr := New()
	ctx := NewContext(context.Background(), tr)
	ctx, root := tr.Start(ctx, "root")
	cctx, child := Start(ctx, "child")
	_, grand := Start(cctx, "grandchild")
	grand.End()
	child.End()
	root.End()

	spans := tr.Snapshot()
	if len(spans) != 3 {
		t.Fatalf("got %d spans, want 3", len(spans))
	}
	if spans[0].Name != "root" || spans[0].Parent != 0 {
		t.Errorf("root = %+v", spans[0])
	}
	if spans[1].Name != "child" || spans[1].Parent != spans[0].ID {
		t.Errorf("child = %+v (root id %d)", spans[1], spans[0].ID)
	}
	if spans[2].Name != "grandchild" || spans[2].Parent != spans[1].ID {
		t.Errorf("grandchild = %+v (child id %d)", spans[2], spans[1].ID)
	}
	if _, err := ValidateTree(spans, true); err != nil {
		t.Errorf("ValidateTree: %v", err)
	}
	for _, s := range spans {
		if s.Open {
			t.Errorf("span %q still open", s.Name)
		}
		if s.DurNS < 0 {
			t.Errorf("span %q has negative duration %d", s.Name, s.DurNS)
		}
	}
}

func TestSiblingsShareParent(t *testing.T) {
	tr := New()
	ctx, root := tr.Start(NewContext(context.Background(), tr), "root")
	// Two siblings started from the same parent context: each gets the root
	// as parent, not each other.
	_, a := Start(ctx, "a")
	a.End()
	_, b := Start(ctx, "b")
	b.End()
	root.End()
	spans := tr.Snapshot()
	if len(spans) != 3 {
		t.Fatalf("got %d spans", len(spans))
	}
	for _, s := range spans[1:] {
		if s.Parent != spans[0].ID {
			t.Errorf("%s parent = %d, want root %d", s.Name, s.Parent, spans[0].ID)
		}
	}
}

func TestAttrsAndEvents(t *testing.T) {
	tr := New()
	_, sp := tr.Start(NewContext(context.Background(), tr), "cell")
	sp.SetAttr("key", "sim/compress/lbic-4x2/i1000")
	sp.SetAttr("cycles", uint64(1234))
	sp.Event("retry")
	sp.End()
	spans := tr.Snapshot()
	if got := spans[0].Attrs["key"]; got != "sim/compress/lbic-4x2/i1000" {
		t.Errorf("attr key = %v", got)
	}
	if got := spans[0].Attrs["cycles"]; got != uint64(1234) {
		t.Errorf("attr cycles = %v (%T)", got, got)
	}
	if len(spans[0].Events) != 1 || spans[0].Events[0].Name != "retry" {
		t.Errorf("events = %+v", spans[0].Events)
	}
}

func TestEndIdempotent(t *testing.T) {
	tr := New()
	_, sp := tr.Start(NewContext(context.Background(), tr), "x")
	sp.End()
	first := tr.Snapshot()[0].DurNS
	time.Sleep(2 * time.Millisecond)
	sp.End() // must not move the end time
	if got := tr.Snapshot()[0].DurNS; got != first {
		t.Errorf("second End moved duration %d -> %d", first, got)
	}
}

func TestOpenSpansInSnapshot(t *testing.T) {
	tr := New()
	ctx, root := tr.Start(NewContext(context.Background(), tr), "root")
	_, child := Start(ctx, "child")
	child.End()
	spans := tr.Snapshot()
	if len(spans) != 2 {
		t.Fatalf("got %d spans", len(spans))
	}
	if !spans[0].Open {
		t.Errorf("root should be open in a mid-flight snapshot")
	}
	if spans[1].Open {
		t.Errorf("ended child marked open")
	}
	root.End()
}

// TestNoopSpanZeroAlloc pins the disabled-tracing cost: a context without a
// trace must make Start free.
func TestNoopSpanZeroAlloc(t *testing.T) {
	ctx := context.Background()
	allocs := testing.AllocsPerRun(1000, func() {
		ctx2, sp := Start(ctx, "ignored")
		sp.SetAttr("k", 1)
		sp.Event("e")
		sp.End()
		if ctx2 != ctx {
			t.Fatal("no-op Start must return the original context")
		}
	})
	if allocs != 0 {
		t.Errorf("no-op span path allocates %v/op, want 0", allocs)
	}
	// Nil receivers throughout.
	var nilSpan *Span
	nilSpan.SetAttr("k", "v")
	nilSpan.Event("e")
	nilSpan.End()
	if nilSpan.Ended() || nilSpan.ID() != 0 {
		t.Error("nil span should report unended, id 0")
	}
	var nilTrace *Trace
	if nilTrace.Snapshot() != nil {
		t.Error("nil trace snapshot should be nil")
	}
}

// TestConcurrentPublish exercises the lock-free append under the race
// detector: many goroutines start and end child spans concurrently.
func TestConcurrentPublish(t *testing.T) {
	tr := New()
	ctx, root := tr.Start(NewContext(context.Background(), tr), "root")
	const workers, per = 16, 50
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				_, sp := Start(ctx, fmt.Sprintf("w%d-%d", w, i))
				sp.SetAttr("worker", w)
				sp.End()
			}
		}(w)
	}
	wg.Wait()
	root.End()
	spans := tr.Snapshot()
	if len(spans) != workers*per+1 {
		t.Fatalf("got %d spans, want %d", len(spans), workers*per+1)
	}
	if _, err := ValidateTree(spans, true); err != nil {
		t.Fatal(err)
	}
	ids := make(map[uint64]bool)
	for _, s := range spans {
		if ids[s.ID] {
			t.Fatalf("duplicate id %d", s.ID)
		}
		ids[s.ID] = true
		if s.Name != "root" && s.Parent != root.ID() {
			t.Errorf("span %s parent = %d, want %d", s.Name, s.Parent, root.ID())
		}
	}
}

func TestAdopt(t *testing.T) {
	tr := New()
	reqCtx, root := tr.Start(NewContext(context.Background(), tr), "request")
	base, cancelBase := context.WithCancel(context.Background())
	defer cancelBase()
	adopted := Adopt(base, reqCtx)
	_, sp := Start(adopted, "long-lived")
	sp.End()
	root.End()
	spans := tr.Snapshot()
	if len(spans) != 2 || spans[1].Parent != spans[0].ID {
		t.Fatalf("adopted span not parented to request root: %+v", spans)
	}
	// Adopt from a traceless context is a no-op.
	if got := Adopt(base, context.Background()); got != base {
		t.Error("Adopt without a trace should return base unchanged")
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	tr := New()
	ctx, root := tr.Start(NewContext(context.Background(), tr), "job job-1")
	_, sp := Start(ctx, "cell sim/compress/bank-4/i1000")
	sp.SetAttr("result_cache", "miss")
	sp.End()
	root.End()
	spans := tr.Snapshot()

	var buf bytes.Buffer
	if err := WriteJSONL(&buf, "job-1", tr.Epoch().UnixNano(), spans); err != nil {
		t.Fatal(err)
	}
	h, got, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if h.Schema != Schema || h.Name != "job-1" || h.Spans != len(spans) {
		t.Errorf("header = %+v", h)
	}
	if len(got) != len(spans) {
		t.Fatalf("round-tripped %d spans, want %d", len(got), len(spans))
	}
	if got[1].Attrs["result_cache"] != "miss" {
		t.Errorf("attrs lost: %+v", got[1])
	}
	if _, err := ValidateTree(got, true); err != nil {
		t.Error(err)
	}
}

func TestReadJSONLRejectsBadInput(t *testing.T) {
	if _, _, err := ReadJSONL(bytes.NewReader(nil)); err == nil {
		t.Error("empty stream should fail")
	}
	if _, _, err := ReadJSONL(bytes.NewReader([]byte("{\"schema\":\"nope/v9\",\"spans\":0}\n"))); err == nil {
		t.Error("unknown schema should fail")
	}
	bad := "{\"schema\":\"" + Schema + "\",\"spans\":1}\nnot json\n"
	if _, _, err := ReadJSONL(bytes.NewReader([]byte(bad))); err == nil {
		t.Error("malformed span line should fail")
	}
}

// TestChromeExport checks that the Chrome trace document is valid JSON in
// the trace-event shape chrome://tracing loads: an object with a
// traceEvents array of events each carrying name/ph/ts/pid/tid.
func TestChromeExport(t *testing.T) {
	tr := New()
	ctx, root := tr.Start(NewContext(context.Background(), tr), "job")
	c1ctx, c1 := Start(ctx, "cell a")
	_, s1 := Start(c1ctx, "simulate a")
	s1.SetAttr("cycles", 99)
	s1.End()
	c1.End()
	_, c2 := Start(ctx, "cell b")
	c2.End()
	root.End()

	var buf bytes.Buffer
	if err := WriteChrome(&buf, "test", tr.Snapshot()); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("chrome export is not valid JSON: %v\n%s", err, buf.String())
	}
	// Metadata event + 4 spans.
	if len(doc.TraceEvents) != 5 {
		t.Fatalf("got %d trace events, want 5", len(doc.TraceEvents))
	}
	lanes := map[string]float64{}
	for _, ev := range doc.TraceEvents[1:] {
		for _, k := range []string{"name", "ph", "ts", "pid", "tid"} {
			if _, ok := ev[k]; !ok {
				t.Errorf("event %v missing %q", ev, k)
			}
		}
		if ev["ph"] != "X" {
			t.Errorf("span event ph = %v, want X", ev["ph"])
		}
		lanes[ev["name"].(string)] = ev["tid"].(float64)
	}
	// The two cells get distinct lanes; the nested simulate inherits cell
	// a's, and the root sits on lane 0.
	if lanes["cell a"] == lanes["cell b"] {
		t.Errorf("sibling cells share lane %v", lanes["cell a"])
	}
	if lanes["simulate a"] != lanes["cell a"] {
		t.Errorf("nested span lane %v != parent lane %v", lanes["simulate a"], lanes["cell a"])
	}
	if lanes["job"] != 0 {
		t.Errorf("root lane = %v, want 0", lanes["job"])
	}
}

func TestValidateTreeRejects(t *testing.T) {
	if _, err := ValidateTree([]SpanData{{ID: 1}, {ID: 1}}, false); err == nil {
		t.Error("duplicate id should fail")
	}
	if _, err := ValidateTree([]SpanData{{ID: 1, Parent: 99}}, false); err == nil {
		t.Error("unknown parent should fail")
	}
	if _, err := ValidateTree([]SpanData{{ID: 1}, {ID: 2}}, true); err == nil {
		t.Error("two roots should fail when one is required")
	}
}
