package core

import (
	"testing"
	"testing/quick"

	"lbic/internal/ports"
)

func newLBIC(t *testing.T, m, n int) *LBIC {
	t.Helper()
	a, err := New(Config{Banks: m, LinePorts: n, LineSize: 32})
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func reqs(specs ...ports.Request) []ports.Request {
	for i := range specs {
		specs[i].Seq = uint64(i)
	}
	return specs
}

func TestLBICName(t *testing.T) {
	a := newLBIC(t, 4, 2)
	if a.Name() != "lbic-4x2" {
		t.Errorf("Name() = %q", a.Name())
	}
	if a.PeakWidth() != 8 {
		t.Errorf("PeakWidth() = %d, want 8", a.PeakWidth())
	}
	if a.Config().StoreQueueDepth != DefaultStoreQueueDepth {
		t.Error("default store queue depth not applied")
	}
}

func TestLBICValidation(t *testing.T) {
	if _, err := New(Config{Banks: 3, LinePorts: 2, LineSize: 32}); err == nil {
		t.Error("expected error for non-power-of-two banks")
	}
	if _, err := New(Config{Banks: 4, LinePorts: 0, LineSize: 32}); err == nil {
		t.Error("expected error for zero line ports")
	}
	if _, err := New(Config{Banks: 4, LinePorts: 4, LineSize: 32, StoreQueueDepth: -1}); err == nil {
		t.Error("expected error for negative store queue depth")
	}
}

func TestLBICCombinesSameLine(t *testing.T) {
	a := newLBIC(t, 4, 4)
	ready := reqs(
		ports.Request{Addr: 0x100}, // bank 0 (0x100>>5 = 8, bank 0)
		ports.Request{Addr: 0x104}, // same line: combines
		ports.Request{Addr: 0x118}, // same line: combines
		ports.Request{Addr: 0x180}, // bank 0, different line: conflict
		ports.Request{Addr: 0x120}, // bank 1: leads
	)
	got := a.Grant(0, ready, nil)
	want := []int{0, 1, 2, 4}
	if len(got) != len(want) {
		t.Fatalf("grants = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("grants = %v, want %v", got, want)
		}
	}
	s := a.Stats()
	if s.Leading != 2 || s.Combined != 2 || s.LineConflicts != 1 {
		t.Errorf("stats = %+v", s)
	}
}

func TestLBICLinePortLimit(t *testing.T) {
	a := newLBIC(t, 2, 2)
	ready := reqs(
		ports.Request{Addr: 0x100},
		ports.Request{Addr: 0x108},
		ports.Request{Addr: 0x110}, // third access to the same line: over N=2
	)
	got := a.Grant(0, ready, nil)
	if len(got) != 2 {
		t.Fatalf("grants = %v, want 2", got)
	}
	if a.Stats().PortSaturation != 1 {
		t.Errorf("port saturation = %d, want 1", a.Stats().PortSaturation)
	}
}

// Figure 4c of the paper: a store (bank0,line12), two loads (bank1,line10),
// and a store (bank0,line12). A 2x2 LBIC handles all four in one cycle; a
// 2-bank cache needs two cycles; a 2-port replicated cache needs three.
func TestFigure4cScenario(t *testing.T) {
	pattern := func() []ports.Request {
		return reqs(
			ports.Request{Addr: 12*64 + 0, Store: true}, // bank 0, line 12 (2 banks, 32B lines)
			ports.Request{Addr: 10*64 + 32 + 4},         // bank 1, line 10
			ports.Request{Addr: 10*64 + 32 + 8},         // bank 1, line 10
			ports.Request{Addr: 12*64 + 12, Store: true},
		)
	}
	cycles := func(a ports.Arbiter) int {
		ready := pattern()
		n := 0
		for now := uint64(0); len(ready) > 0; now++ {
			n++
			granted := a.Grant(now, ready, nil)
			for i := len(granted) - 1; i >= 0; i-- {
				ready = append(ready[:granted[i]], ready[granted[i]+1:]...)
			}
			if n > 10 {
				t.Fatal("scenario did not drain")
			}
		}
		return n
	}

	lbic := newLBIC(t, 2, 2)
	if got := cycles(lbic); got != 1 {
		t.Errorf("2x2 LBIC took %d cycles, want 1", got)
	}
	bank, err := ports.NewBanked(2, 32)
	if err != nil {
		t.Fatal(err)
	}
	if got := cycles(bank); got != 2 {
		t.Errorf("2-bank took %d cycles, want 2", got)
	}
	repl, err := ports.NewReplicated(2)
	if err != nil {
		t.Fatal(err)
	}
	if got := cycles(repl); got != 3 {
		t.Errorf("2-port replicated took %d cycles, want 3", got)
	}
}

func TestLBICStoreQueueCoalescesAndDrains(t *testing.T) {
	a, err := New(Config{Banks: 2, LinePorts: 2, LineSize: 32, StoreQueueDepth: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Two stores to bank 0, same line: both granted, one queued line.
	got := a.Grant(0, reqs(
		ports.Request{Addr: 0x100, Store: true},
		ports.Request{Addr: 0x108, Store: true},
	), nil)
	if len(got) != 2 {
		t.Fatalf("grants = %v", got)
	}
	if a.StoreQueueLen(0) != 1 {
		t.Fatalf("store queue = %d lines, want 1 (coalesced)", a.StoreQueueLen(0))
	}
	// A store to a second line of bank 0 takes the second slot.
	a.Grant(1, reqs(ports.Request{Addr: 0x180, Store: true}), nil)
	if a.StoreQueueLen(0) != 2 {
		t.Fatalf("store queue = %d lines, want 2", a.StoreQueueLen(0))
	}
	// A leading store to a third line finds the queue full: it writes the
	// array directly (banked-cache behaviour) and closes the bank's line
	// ports, so a same-line load behind it stalls this cycle.
	got = a.Grant(2, reqs(
		ports.Request{Addr: 0x200, Store: true},
		ports.Request{Addr: 0x208},
	), nil)
	if len(got) != 1 || got[0] != 0 {
		t.Fatalf("full-queue grant = %v, want the direct store only", got)
	}
	if a.Stats().DirectStores != 1 {
		t.Error("direct store not counted")
	}
	if a.StoreQueueLen(0) != 2 {
		t.Errorf("store queue = %d, want 2 (no drain while busy)", a.StoreQueueLen(0))
	}
	// An idle cycle drains one line; then a new line is accepted again.
	a.Grant(3, nil, nil)
	if a.StoreQueueLen(0) != 1 {
		t.Errorf("store queue after idle = %d, want 1 (drained)", a.StoreQueueLen(0))
	}
	got = a.Grant(4, reqs(ports.Request{Addr: 0x200, Store: true}), nil)
	if len(got) != 1 {
		t.Errorf("retry grant = %v", got)
	}
	if a.StoreQueueLen(0) != 2 {
		t.Errorf("store queue = %d, want 2", a.StoreQueueLen(0))
	}
}

// A store to a line already queued coalesces even when the queue is full.
func TestLBICStoreQueueCoalesceWhenFull(t *testing.T) {
	a, err := New(Config{Banks: 2, LinePorts: 2, LineSize: 32, StoreQueueDepth: 2})
	if err != nil {
		t.Fatal(err)
	}
	a.Grant(0, reqs(ports.Request{Addr: 0x100, Store: true}), nil)
	a.Grant(1, reqs(ports.Request{Addr: 0x180, Store: true}), nil)
	if a.StoreQueueLen(0) != 2 {
		t.Fatal("queue should be full")
	}
	// Same line as the first queued store: granted, no direct write.
	got := a.Grant(2, reqs(ports.Request{Addr: 0x108, Store: true}), nil)
	if len(got) != 1 {
		t.Fatalf("grants = %v", got)
	}
	if a.Stats().DirectStores != 0 {
		t.Error("coalescing store must not go direct")
	}
	if a.StoreQueueLen(0) != 2 {
		t.Errorf("store queue = %d, want 2 (coalesced)", a.StoreQueueLen(0))
	}
}

// A combining (non-leading) store to a new line stalls on a full queue.
func TestLBICCombiningStoreStallsOnFullQueue(t *testing.T) {
	a, err := New(Config{Banks: 2, LinePorts: 4, LineSize: 32, StoreQueueDepth: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Fill the single slot with a store to one line of bank 0.
	a.Grant(0, reqs(ports.Request{Addr: 0x100, Store: true}), nil)
	// A leading LOAD opens a different line; a combining store to that
	// line needs a fresh queue slot and stalls.
	got := a.Grant(1, reqs(
		ports.Request{Addr: 0x180},
		ports.Request{Addr: 0x188, Store: true},
	), nil)
	if len(got) != 1 || got[0] != 0 {
		t.Fatalf("grants = %v, want only the leading load", got)
	}
	if a.Stats().StoreQueueStalls != 1 {
		t.Error("combining store stall not counted")
	}
}

func TestLBICIdleCycleDrainsAllBanks(t *testing.T) {
	a := newLBIC(t, 2, 2)
	a.Grant(0, reqs(
		ports.Request{Addr: 0x100, Store: true}, // bank 0
		ports.Request{Addr: 0x120, Store: true}, // bank 1
	), nil)
	if a.StoreQueueLen(0) != 1 || a.StoreQueueLen(1) != 1 {
		t.Fatal("stores not queued")
	}
	a.Grant(1, nil, nil) // fully idle cycle
	if a.StoreQueueLen(0) != 0 || a.StoreQueueLen(1) != 0 {
		t.Error("idle cycle should drain both banks")
	}
	if a.Stats().StoreDrains != 2 {
		t.Errorf("drains = %d, want 2", a.Stats().StoreDrains)
	}
}

func TestLBICBusyBankDoesNotDrain(t *testing.T) {
	a := newLBIC(t, 2, 2)
	a.Grant(0, reqs(ports.Request{Addr: 0x100, Store: true}), nil)
	// Bank 0 busy with a load next cycle: no drain there.
	a.Grant(1, reqs(ports.Request{Addr: 0x180}), nil)
	if a.StoreQueueLen(0) != 1 {
		t.Errorf("busy bank drained: queue = %d, want 1", a.StoreQueueLen(0))
	}
}

func TestLBICLoadAndStoreSameLineSameCycle(t *testing.T) {
	// §5.2: "a load followed by a store to the same memory location" can be
	// accepted in the same cycle.
	a := newLBIC(t, 2, 2)
	got := a.Grant(0, reqs(
		ports.Request{Addr: 0x100},
		ports.Request{Addr: 0x100, Store: true},
	), nil)
	if len(got) != 2 {
		t.Errorf("grants = %v, want both", got)
	}
}

// Invariants: grants strictly increasing; at most N per (bank,line); at most
// one line per bank per cycle; every granted store fits the store queue.
func TestLBICInvariantsQuick(t *testing.T) {
	f := func(addrs []uint16, stores []bool) bool {
		a, err := New(Config{Banks: 4, LinePorts: 2, LineSize: 32})
		if err != nil {
			return false
		}
		sel := a.Selector()
		ready := make([]ports.Request, 0, len(addrs))
		for i, raw := range addrs {
			r := ports.Request{Seq: uint64(i), Addr: uint64(raw)}
			if i < len(stores) {
				r.Store = stores[i]
			}
			ready = append(ready, r)
		}
		got := a.Grant(0, ready, nil)
		perBank := map[int]int{}
		lineOf := map[int]uint64{}
		prev := -1
		for _, g := range got {
			if g <= prev {
				return false
			}
			prev = g
			b := sel.BankOf(ready[g].Addr)
			l := sel.LineOf(ready[g].Addr)
			if n, seen := perBank[b], lineOf[b]; n > 0 && seen != l {
				return false // two different lines in one bank
			}
			perBank[b]++
			lineOf[b] = l
			if perBank[b] > 2 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// The LBIC always grants at least as many requests per cycle as the plain
// banked cache with the same bank count (combining only adds grants).
func TestLBICDominatesBankedQuick(t *testing.T) {
	f := func(addrs []uint16) bool {
		lb, err := New(Config{Banks: 4, LinePorts: 4, LineSize: 32})
		if err != nil {
			return false
		}
		bk, err := ports.NewBanked(4, 32)
		if err != nil {
			return false
		}
		ready := make([]ports.Request, 0, len(addrs))
		for i, raw := range addrs {
			ready = append(ready, ports.Request{Seq: uint64(i), Addr: uint64(raw)})
		}
		return len(lb.Grant(0, ready, nil)) >= len(bk.Grant(0, ready, nil))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
