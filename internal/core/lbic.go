// Package core implements the paper's contribution: the Locality-Based
// Interleaved Cache (LBIC, §5). An MxN LBIC is a traditional M-bank
// line-interleaved cache in which each bank carries a single N-ported line
// buffer and a small store queue. Each cycle the oldest ready request per
// bank (the "leading" request) gates its line into that bank's line buffer,
// and up to N-1 further ready requests to the same line combine with it:
// loads read their offsets from the buffer, stores deposit into the bank's
// store queue, which retires to the array on idle bank cycles. Requests to a
// busy bank's other lines conflict and wait, exactly as in a traditional
// multi-bank cache — the LBIC's gain is that same-line bank conflicts, which
// §4 shows dominate, become combined accesses instead.
package core

import (
	"fmt"
	"strings"

	"lbic/internal/ports"
	"lbic/internal/trace"
)

// DefaultStoreQueueDepth is the per-bank store queue capacity used when a
// Config leaves it zero; the PA8000-style store queue the paper cites holds
// "up to some number of words", and eight matches its line of 32 bytes.
const DefaultStoreQueueDepth = 8

// Policy selects how each bank chooses the line it opens in a cycle.
type Policy int

const (
	// PolicyLeading opens the line of the oldest ready request per bank —
	// "fair and simple", the policy the paper evaluates (§5.2).
	PolicyLeading Policy = iota
	// PolicyGreedy opens the line with the most combinable ready requests,
	// the enhancement §5.2 proposes ("larger access groups can be given
	// priority over smaller groups... the smaller groups may grow larger by
	// the time they are selected"). To bound the starvation this invites,
	// every greedyRotate-th cycle reverts to the leading request.
	PolicyGreedy
)

// String returns the policy name.
func (p Policy) String() string {
	switch p {
	case PolicyLeading:
		return "leading"
	case PolicyGreedy:
		return "greedy"
	default:
		return "policy(?)"
	}
}

// greedyRotate is the anti-starvation period of PolicyGreedy: one cycle in
// this many uses the leading request regardless of group sizes.
const greedyRotate = 8

// Config describes an MxN LBIC.
type Config struct {
	// Banks is M, the number of single-ported, line-interleaved banks.
	Banks int
	// LinePorts is N, the number of ports on each bank's line buffer — the
	// maximum accesses to one line of one bank per cycle.
	LinePorts int
	// LineSize is the cache line size in bytes (bank selection granularity).
	LineSize int
	// StoreQueueDepth is the per-bank store queue capacity; 0 selects
	// DefaultStoreQueueDepth.
	StoreQueueDepth int
	// Policy is the per-bank line selection policy; the zero value is the
	// paper's leading-request policy.
	Policy Policy
}

// Stats counts LBIC-specific events.
type Stats struct {
	// Leading counts leading requests granted (one per active bank-cycle).
	Leading uint64
	// Combined counts requests granted by combining with a leading request.
	Combined uint64
	// LineConflicts counts requests stalled because their bank was open on a
	// different line.
	LineConflicts uint64
	// PortSaturation counts requests stalled because their line already had
	// N grants this cycle.
	PortSaturation uint64
	// StoreQueueStalls counts combining stores stalled on a full store queue.
	StoreQueueStalls uint64
	// StoreDrains counts store-queue entries retired on idle bank cycles.
	StoreDrains uint64
	// DirectStores counts leading stores that wrote the array directly
	// because their bank's store queue was full — the degenerate case in
	// which the LBIC behaves exactly like a traditional banked cache.
	DirectStores uint64
	// GreedyOverrides counts bank-cycles where PolicyGreedy opened a line
	// other than the oldest ready request's.
	GreedyOverrides uint64
}

// LBIC is the MxN arbiter. It implements ports.Arbiter.
type LBIC struct {
	cfg Config
	sel ports.BankSelector

	// storeQ holds, per bank, the FIFO of cache lines with queued store
	// data. Stores to a line already queued coalesce into its entry (the
	// store queue is a write-combining buffer, as in the PA8000 design the
	// paper cites); draining retires one line per idle bank cycle.
	storeQ []ports.LineQueue

	// Per-cycle scratch, reset in Grant.
	leadSet []bool
	blocked []bool
	line    []uint64
	count   []int
	// chosen holds, under PolicyGreedy, the line each bank opens this cycle
	// (valid where chosenSet is true); greedyN is its group size.
	chosen    []uint64
	chosenSet []bool
	greedyN   []int

	stats Stats

	// Observability: per-bank grant/conflict counts, the distribution of
	// combining-group widths (widths[n] = bank-cycles that granted n
	// same-line accesses), and an optional structured event sink.
	bankAccess   []uint64
	bankConflict []uint64
	widths       []uint64
	events       trace.EventSink
}

// New returns an MxN LBIC arbiter.
func New(cfg Config) (*LBIC, error) {
	if cfg.StoreQueueDepth == 0 {
		cfg.StoreQueueDepth = DefaultStoreQueueDepth
	}
	if cfg.LinePorts < 1 {
		return nil, fmt.Errorf("core: LBIC line ports %d is not positive", cfg.LinePorts)
	}
	if cfg.StoreQueueDepth < 1 {
		return nil, fmt.Errorf("core: LBIC store queue depth %d is not positive", cfg.StoreQueueDepth)
	}
	sel, err := ports.NewBankSelector(cfg.Banks, cfg.LineSize)
	if err != nil {
		return nil, err
	}
	if words := cfg.LineSize / 4; cfg.LinePorts > words {
		return nil, fmt.Errorf("core: LBIC combining width %d exceeds the %d four-byte words of a %d-byte line",
			cfg.LinePorts, words, cfg.LineSize)
	}
	return &LBIC{
		cfg:          cfg,
		sel:          sel,
		storeQ:       make([]ports.LineQueue, cfg.Banks),
		leadSet:      make([]bool, cfg.Banks),
		blocked:      make([]bool, cfg.Banks),
		line:         make([]uint64, cfg.Banks),
		count:        make([]int, cfg.Banks),
		chosen:       make([]uint64, cfg.Banks),
		chosenSet:    make([]bool, cfg.Banks),
		greedyN:      make([]int, cfg.Banks),
		bankAccess:   make([]uint64, cfg.Banks),
		bankConflict: make([]uint64, cfg.Banks),
		widths:       make([]uint64, cfg.LinePorts+1),
	}, nil
}

// Name implements ports.Arbiter, e.g. "lbic-4x2" or "lbic-4x2-greedy".
func (a *LBIC) Name() string {
	if a.cfg.Policy == PolicyGreedy {
		return fmt.Sprintf("lbic-%dx%d-greedy", a.cfg.Banks, a.cfg.LinePorts)
	}
	return fmt.Sprintf("lbic-%dx%d", a.cfg.Banks, a.cfg.LinePorts)
}

// PeakWidth implements ports.Arbiter: M banks times N line ports.
func (a *LBIC) PeakWidth() int { return a.cfg.Banks * a.cfg.LinePorts }

// Config returns the configuration (with defaults applied).
func (a *LBIC) Config() Config { return a.cfg }

// Selector returns the bank selection function.
func (a *LBIC) Selector() ports.BankSelector { return a.sel }

// Stats returns a snapshot of the counters.
func (a *LBIC) Stats() Stats { return a.stats }

// StoreQueueLen returns the lines queued in bank b's store queue.
func (a *LBIC) StoreQueueLen(b int) int { return a.storeQ[b].Len() }

// StoreQueueLines appends bank b's queued lines, front first, to dst and
// returns the extended slice; the verification oracle snapshots queues this
// way every cycle to assert FIFO draining without per-call allocation.
func (a *LBIC) StoreQueueLines(b int, dst []uint64) []uint64 {
	return a.storeQ[b].Lines(dst)
}

// Quiescent implements ports.Quiescer: with every store queue empty, an idle
// cycle neither drains nor changes state, which lets the core fast-forward.
func (a *LBIC) Quiescent() bool {
	for b := range a.storeQ {
		if a.storeQ[b].Len() > 0 {
			return false
		}
	}
	return true
}

// SetEventSink implements ports.EventRecorder.
func (a *LBIC) SetEventSink(s trace.EventSink) { a.events = s }

// DumpState implements ports.StateDumper: per-bank store-queue occupancy for
// the forward-progress watchdog's hang diagnostics.
func (a *LBIC) DumpState() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s:", a.Name())
	for bank := range a.storeQ {
		fmt.Fprintf(&b, " bank%d[sq %d/%d]", bank, a.storeQ[bank].Len(), a.cfg.StoreQueueDepth)
	}
	return b.String()
}

// BankAccesses implements ports.BankObserver: grants per bank.
func (a *LBIC) BankAccesses() []uint64 { return append([]uint64(nil), a.bankAccess...) }

// BankConflicts implements ports.BankObserver: stalled requests per bank
// (line conflicts, port saturation, and store-queue stalls).
func (a *LBIC) BankConflicts() []uint64 { return append([]uint64(nil), a.bankConflict...) }

// CombineWidths returns the combining-width distribution: element n counts
// the bank-cycles whose open line served exactly n accesses (n in
// 1..LinePorts; element 0 is unused). Mass above width 1 is bandwidth a
// traditional banked cache would have lost to same-line conflicts.
func (a *LBIC) CombineWidths() []uint64 { return append([]uint64(nil), a.widths...) }

// conflict records one stalled request with its cause.
func (a *LBIC) conflict(now uint64, r *ports.Request, b int, counter *uint64, cause string) {
	*counter++
	a.bankConflict[b]++
	if a.events != nil {
		a.events.Emit(trace.Event{Cycle: now, Kind: trace.EvConflict,
			Seq: int64(r.Seq), Bank: b, Line: a.sel.LineOf(r.Addr), Cause: cause})
	}
}

// chooseGreedy implements PolicyGreedy's selection pass: per bank, the line
// with the most combinable ready requests (group sizes cap at LinePorts, so
// excess beyond the buffer's ports confers no priority); ties keep the
// oldest request's line.
func (a *LBIC) chooseGreedy(ready []ports.Request) {
	for i := range ready {
		b := a.sel.BankOf(ready[i].Addr)
		line := a.sel.LineOf(ready[i].Addr)
		first := true
		for j := 0; j < i; j++ {
			if a.sel.BankOf(ready[j].Addr) == b && a.sel.LineOf(ready[j].Addr) == line {
				first = false
				break
			}
		}
		if !first {
			continue
		}
		n := 1
		for j := i + 1; j < len(ready) && n < a.cfg.LinePorts; j++ {
			if a.sel.BankOf(ready[j].Addr) == b && a.sel.LineOf(ready[j].Addr) == line {
				n++
			}
		}
		switch {
		case !a.chosenSet[b]:
			a.chosen[b], a.chosenSet[b], a.greedyN[b] = line, true, n
		case n > a.greedyN[b]:
			a.chosen[b], a.greedyN[b] = line, n
			a.stats.GreedyOverrides++
		}
	}
}

// enqueueStore records a granted store's line in bank b's queue; a store to
// an already-queued line coalesces for free. It reports whether the store
// was accepted.
func (a *LBIC) enqueueStore(b int, line uint64) bool {
	q := &a.storeQ[b]
	if q.Contains(line) {
		return true
	}
	if q.Len() >= a.cfg.StoreQueueDepth {
		return false
	}
	q.Push(line)
	return true
}

// Grant implements ports.Arbiter. Scanning oldest-first: the first request
// to touch a bank leads it and gates its line; subsequent requests combine
// while they match the gated line and ports remain; mismatching lines
// conflict. Stores additionally need a store-queue slot. Idle banks drain
// one store-queue entry.
func (a *LBIC) Grant(now uint64, ready []ports.Request, dst []int) []int {
	for b := 0; b < a.cfg.Banks; b++ {
		a.leadSet[b] = false
		a.blocked[b] = false
		a.count[b] = 0
		a.chosenSet[b] = false
	}
	if a.cfg.Policy == PolicyGreedy && now%greedyRotate != 0 {
		a.chooseGreedy(ready)
	}
	for i := range ready {
		r := &ready[i]
		b := a.sel.BankOf(r.Addr)
		if a.blocked[b] {
			continue
		}
		line := a.sel.LineOf(r.Addr)
		if a.chosenSet[b] && !a.leadSet[b] && line != a.chosen[b] {
			// Greedy policy reserved this bank for a larger group; requests
			// to other lines wait even if older.
			a.conflict(now, r, b, &a.stats.LineConflicts, "greedy-bypass")
			continue
		}
		switch {
		case !a.leadSet[b]:
			a.leadSet[b] = true
			a.line[b] = line
			a.count[b] = 1
			a.stats.Leading++
			a.bankAccess[b]++
			if r.Store && !a.enqueueStore(b, line) {
				// Queue full: the leading store writes the array directly,
				// exactly as in a traditional banked cache, and closes the
				// bank's line ports for this cycle (the single array port
				// is busy with the write).
				a.stats.DirectStores++
				a.blocked[b] = true
			}
			dst = append(dst, i)
		case a.line[b] != line:
			a.conflict(now, r, b, &a.stats.LineConflicts, "line-conflict")
		case a.count[b] >= a.cfg.LinePorts:
			a.conflict(now, r, b, &a.stats.PortSaturation, "port-saturation")
		case r.Store && !a.enqueueStore(b, line):
			a.conflict(now, r, b, &a.stats.StoreQueueStalls, "store-queue-full")
		default:
			a.count[b]++
			a.stats.Combined++
			a.bankAccess[b]++
			if a.events != nil {
				a.events.Emit(trace.Event{Cycle: now, Kind: trace.EvCombine,
					Seq: int64(r.Seq), Bank: b, Line: line})
			}
			dst = append(dst, i)
		}
	}
	// Store queues use idle cycles to perform their writes (§5.2): one
	// queued line retires per idle bank cycle. Active banks record their
	// combining-group width.
	for b := 0; b < a.cfg.Banks; b++ {
		if a.count[b] == 0 && a.storeQ[b].Len() > 0 {
			a.storeQ[b].PopFront()
			a.stats.StoreDrains++
		}
		if a.count[b] > 0 {
			a.widths[a.count[b]]++
		}
	}
	return dst
}
