package core

import (
	"testing"

	"lbic/internal/ports"
)

func newGreedy(t *testing.T, m, n int) *LBIC {
	t.Helper()
	a, err := New(Config{Banks: m, LinePorts: n, LineSize: 32, Policy: PolicyGreedy})
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestPolicyStrings(t *testing.T) {
	if PolicyLeading.String() != "leading" || PolicyGreedy.String() != "greedy" {
		t.Error("policy names wrong")
	}
	if Policy(9).String() != "policy(?)" {
		t.Error("unknown policy name wrong")
	}
}

func TestGreedyName(t *testing.T) {
	a := newGreedy(t, 4, 2)
	if a.Name() != "lbic-4x2-greedy" {
		t.Errorf("Name() = %q", a.Name())
	}
}

// An older lone request loses its bank to a younger two-request group under
// the greedy policy (on a non-rotation cycle), but wins under leading.
func TestGreedyPrefersLargerGroup(t *testing.T) {
	ready := reqs(
		ports.Request{Addr: 0x1000}, // oldest: line 0x80, bank 0, alone
		ports.Request{Addr: 0x1100}, // line 0x88, bank 0
		ports.Request{Addr: 0x1108}, // line 0x88, bank 0: group of two
		ports.Request{Addr: 0x1020}, // bank 1 (so the cycle grants something there too)
	)

	greedy := newGreedy(t, 4, 2)
	got := greedy.Grant(1, ready, nil) // cycle 1: not a rotation cycle
	want := []int{1, 2, 3}
	if len(got) != len(want) {
		t.Fatalf("greedy grants = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("greedy grants = %v, want %v", got, want)
		}
	}
	if greedy.Stats().GreedyOverrides != 1 {
		t.Errorf("overrides = %d, want 1", greedy.Stats().GreedyOverrides)
	}

	leading := newLBIC(t, 4, 2)
	got = leading.Grant(1, ready, nil)
	if len(got) != 2 || got[0] != 0 || got[1] != 3 {
		t.Fatalf("leading grants = %v, want [0 3]", got)
	}
}

// Rotation cycles fall back to the leading request, bounding starvation.
func TestGreedyRotationServesOldest(t *testing.T) {
	ready := reqs(
		ports.Request{Addr: 0x1000}, // oldest, alone on its line
		ports.Request{Addr: 0x1100},
		ports.Request{Addr: 0x1108},
	)
	greedy := newGreedy(t, 4, 2)
	got := greedy.Grant(0, ready, nil) // cycle 0: rotation cycle
	if len(got) == 0 || got[0] != 0 {
		t.Fatalf("rotation grants = %v, want the oldest first", got)
	}
}

// Greedy never grants fewer requests than leading on the same ready set.
func TestGreedyNeverWorseSingleCycle(t *testing.T) {
	patterns := [][]ports.Request{
		reqs(ports.Request{Addr: 0x1000}, ports.Request{Addr: 0x1100}, ports.Request{Addr: 0x1108}),
		reqs(ports.Request{Addr: 0x1000}, ports.Request{Addr: 0x1008}),
		reqs(ports.Request{Addr: 0x1000}),
	}
	for _, p := range patterns {
		g := newGreedy(t, 4, 2).Grant(1, append([]ports.Request(nil), p...), nil)
		l := newLBIC(t, 4, 2).Grant(1, append([]ports.Request(nil), p...), nil)
		if len(g) < len(l) {
			t.Errorf("greedy granted %d < leading %d on %v", len(g), len(l), p)
		}
	}
}

// Group sizes cap at LinePorts when scoring: a 4-request group confers no
// more priority than a 2-request group on an N=2 buffer.
func TestGreedyGroupSizeCapsAtN(t *testing.T) {
	ready := reqs(
		ports.Request{Addr: 0x1100}, // line A of bank 0: first (oldest)
		ports.Request{Addr: 0x1108}, // line A: group of 2 (= N)
		ports.Request{Addr: 0x1200}, // line B of bank 0
		ports.Request{Addr: 0x1208},
		ports.Request{Addr: 0x1210},
		ports.Request{Addr: 0x1218}, // line B: group of 4, caps at 2
	)
	a := newGreedy(t, 4, 2)
	got := a.Grant(1, ready, nil)
	// Tie at capped size 2: the older line A must win.
	if len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Fatalf("grants = %v, want line A's pair", got)
	}
	if a.Stats().GreedyOverrides != 0 {
		t.Error("capped tie must not count as an override")
	}
}
