package cpu

// CPI stall accounting. Every simulated cycle is attributed to exactly one
// cause, so the resulting stall stack sums to the run's cycle count and a
// cycle of lost IPC can be charged to the structure that lost it — the
// visibility the paper's §3 characterization of banked-cache plateaus
// rests on.
//
// Attribution follows the oldest instruction in the window (the commit
// bottleneck), with structural dispatch stalls charged only when the head
// itself is not blocked on memory: a cycle in which the head waits on a
// cache port while the RUU is also full is a port problem, not a window
// problem — enlarging the window would not commit anything sooner.

// StallCause classifies one simulated cycle.
type StallCause int

const (
	// StallCommitting: at least one instruction committed this cycle.
	StallCommitting StallCause = iota
	// StallStoreBufFull: commit halted because the store buffer was full.
	StallStoreBufFull
	// StallMemWait: the head is a memory access in flight in the cache
	// hierarchy (a miss, or a hit's latency) — "waiting on miss".
	StallMemWait
	// StallMemPort: the head is a load that has its address but no cache
	// port grant — "waiting on port", the cost the LBIC attacks.
	StallMemPort
	// StallLSQFull: nothing committed and dispatch stalled on a full LSQ.
	StallLSQFull
	// StallROBFull: nothing committed and dispatch stalled on a full RUU.
	StallROBFull
	// StallExec: the head is waiting on operands, a functional unit, or an
	// in-flight execution (including a store awaiting its data).
	StallExec
	// StallDrained: the window is empty — the stream is exhausted (or the
	// instruction budget reached) and only the store buffer drains.
	StallDrained

	// NumStallCauses sizes per-cause arrays.
	NumStallCauses = int(StallDrained) + 1
)

var stallCauseNames = [NumStallCauses]string{
	"committing",
	"store-buffer-full",
	"waiting-on-miss",
	"waiting-on-port",
	"lsq-full",
	"rob-full",
	"exec",
	"drained",
}

// String returns the cause's report name.
func (s StallCause) String() string {
	if s < 0 || int(s) >= NumStallCauses {
		return "cause(?)"
	}
	return stallCauseNames[s]
}

// StallCauseNames returns the report names in StallCause order.
func StallCauseNames() []string {
	names := make([]string, NumStallCauses)
	copy(names, stallCauseNames[:])
	return names
}

// accountCycle attributes the cycle that just executed. The arguments are
// the relevant counters' values at the start of the cycle; comparing
// against the live stats reveals what happened during it.
func (c *Core) accountCycle(commit0, sbStall0, ruuStall0, lsqStall0 uint64) {
	s := &c.stats
	var cause StallCause
	switch {
	case s.Committed > commit0:
		cause = StallCommitting
	case s.CommitStallStoreBuf > sbStall0:
		cause = StallStoreBufFull
	case c.count == 0:
		cause = StallDrained
	default:
		switch c.entries[c.head].state {
		case stMemWait:
			cause = StallMemWait
		case stMemPending:
			cause = StallMemPort
		default:
			switch {
			case s.DispatchStallLSQ > lsqStall0:
				cause = StallLSQFull
			case s.DispatchStallRUU > ruuStall0:
				cause = StallROBFull
			default:
				cause = StallExec
			}
		}
	}
	s.StallCycles[cause]++

	// Occupancy is sampled at commit boundaries, not wall cycles: the gauges
	// describe the window the program actually uses when it makes progress,
	// and stall cycles — which fast-forward elides in bulk — contribute no
	// samples, so a fast-forwarded run reports identical occupancy.
	if cause == StallCommitting {
		c.ruuOcc.Sample(uint64(c.count))
		c.lsqOcc.Sample(uint64(c.lsqCount))
		c.sbOcc.Sample(uint64(c.storeLive))
	}
}

// accountSkipped bulk-attributes n fast-forwarded idle cycles exactly as n
// Step calls would have: the same stall cause, the same per-cycle dispatch
// and commit stall counters, and n empty-grant histogram observations. It
// must only be called under idleCycles' guarantees (no commit, no event, no
// grantable request for the whole span), under which every per-cycle decision
// below is constant.
func (c *Core) accountSkipped(n uint64) {
	s := &c.stats
	commitBlockedOnSB := false
	if c.count > 0 {
		e := &c.entries[c.head]
		if e.state == stDone && e.dyn.IsStore() && c.sbCount == c.cfg.StoreBufferSize {
			commitBlockedOnSB = true
			s.CommitStallStoreBuf += n
		}
	}
	dispatchRUU, dispatchLSQ := false, false
	if !c.fetchExhausted() {
		if c.count == c.cfg.RUUSize {
			dispatchRUU = true
			s.DispatchStallRUU += n
		} else if dyn, ok := c.peek(); ok && dyn.IsMem() && c.lsqCount == c.cfg.LSQSize {
			dispatchLSQ = true
			s.DispatchStallLSQ += n
		}
	}
	var cause StallCause
	switch {
	case commitBlockedOnSB:
		cause = StallStoreBufFull
	case c.count == 0:
		cause = StallDrained
	default:
		switch c.entries[c.head].state {
		case stMemWait:
			cause = StallMemWait
		case stMemPending:
			cause = StallMemPort
		default:
			switch {
			case dispatchLSQ:
				cause = StallLSQFull
			case dispatchRUU:
				cause = StallROBFull
			default:
				cause = StallExec
			}
		}
	}
	s.StallCycles[cause] += n
	c.grantHist.ObserveN(0, n)
}
