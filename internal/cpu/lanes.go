package cpu

import (
	"context"
	"fmt"
)

// LanePos is the extra contract a stream must satisfy to drive a lane under
// RunLanes: the scheduler reads Pos to keep all lanes inside one shared
// decode window, and Close releases a finished lane's hold on that window
// (see tracecache.SharedCursor / LaneReader).
type LanePos interface {
	Pos() uint64
	Close()
}

// LaneChunk is the burst length of the lane scheduler, in instructions:
// each lane steps until its stream position reaches the current chunk
// boundary before the next lane runs. Chunked bursts keep the lanes within
// one window of the shared cursor (bounding decoded-record reuse distance)
// while leaving each lane a long run of consecutive cycles over hot,
// lane-private state between switches. The value trades those two against
// each other: 16K instructions per burst measured fastest across lane
// widths 2..10 on the full table sweep — short bursts (4K) pay a
// measurable cold-state penalty re-walking RUU and cache-array metadata
// every switch, while longer bursts only grow the shared ring.
const LaneChunk = 16384

// RunLanes steps K independent cores to completion in loose lockstep off
// one shared stream cursor. Every core must have been constructed over a
// stream implementing LanePos, with all such streams reading one
// tracecache.SharedCursor; the scheduler advances the lane frontier one
// LaneChunk at a time so the cursor decodes each dynamic instruction once
// and every lane consumes it while it is still resident.
//
// Each lane's simulation is exactly the scalar RunContext loop — same step,
// idle-skip, watchdog, and cancellation behavior — so per-lane Stats are
// bit-identical to a scalar run of the same configuration. Errors are
// per-lane: errs[i] is nil when lane i completed, its failure otherwise.
// Cancellation of ctx fails every unfinished lane with the scalar path's
// cancellation error.
func RunLanes(ctx context.Context, cores []*Core) []error {
	errs := make([]error, len(cores))
	streams := make([]LanePos, len(cores))
	for i, c := range cores {
		s, ok := c.stream.(LanePos)
		if !ok {
			for j := range errs {
				errs[j] = fmt.Errorf("cpu: lane %d stream %T does not implement LanePos", i, c.stream)
			}
			return errs
		}
		streams[i] = s
	}
	live := len(cores)
	var target uint64
	countdown := uint64(0)
	for live > 0 {
		target += LaneChunk
		for i, c := range cores {
			if streams[i] == nil {
				continue // lane already settled
			}
			for !c.Done() {
				// A lane that is no longer fetching (budget reached, or
				// stream end) drains to completion now — it takes nothing
				// more from the cursor, so there is no reason to keep its
				// in-flight state live across further rounds.
				if !c.fetchExhausted() && streams[i].Pos() >= target {
					break
				}
				if countdown == 0 {
					if err := ctx.Err(); err != nil {
						cancelLanes(cores, streams, errs, err)
						return errs
					}
					countdown = ctxCheckInterval
				}
				countdown--
				if err := c.Step(); err != nil {
					errs[i] = err
					break
				}
				if n := c.idleCycles(); n > 0 {
					c.skipIdle(n)
				}
			}
			if errs[i] != nil || c.Done() {
				streams[i].Close()
				streams[i] = nil
				live--
			}
		}
	}
	return errs
}

// cancelLanes fails every still-running lane with the scalar path's
// cancellation error, carrying that lane's own progress coordinates.
func cancelLanes(cores []*Core, streams []LanePos, errs []error, cause error) {
	for i, c := range cores {
		if streams[i] == nil {
			continue
		}
		errs[i] = fmt.Errorf("cpu: run canceled at cycle %d (committed %d of %d dispatched): %w",
			c.now, c.stats.Committed, c.stats.Dispatched, cause)
		streams[i].Close()
		streams[i] = nil
	}
}
